// Suspension: deformable cells in a vessel — the "full model" of the
// paper's Eq. 2 with the cells terms active. Three immersed-boundary
// cells ride a force-driven cylindrical flow; the run reports the Eq. 2
// cost split (fluid bytes vs cell-coupling bytes), writes a VTK snapshot
// for ParaView, and exercises checkpoint/restore mid-campaign, as a
// preemptible cloud run would.
//
// Run with: go run ./examples/suspension
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"repro/internal/cells"
	"repro/internal/geometry"
	"repro/internal/lbm"
)

func main() {
	dom, err := geometry.Cylinder(48, 10)
	if err != nil {
		log.Fatal(err)
	}
	fluid, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, PeriodicX: true, Force: [3]float64{5e-6, 0, 0}})
	if err != nil {
		log.Fatal(err)
	}
	cy, cz := float64(dom.NY-1)/2, float64(dom.NZ-1)/2
	var cellList []*cells.Cell
	for i, x := range []float64{10, 22, 34} {
		c, err := cells.NewSphereCell(geometry.Vec3{X: x, Y: cy + float64(i-1)*2, Z: cz}, 2.5, 24, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		cellList = append(cellList, c)
	}
	sp, err := cells.NewSuspension(fluid, cellList)
	if err != nil {
		log.Fatal(err)
	}
	// Compliant vessel wall: markers on every third wall site, anchored.
	wall, err := cells.NewVesselWall(fluid, 0.05, 3)
	if err != nil {
		log.Fatal(err)
	}
	if err := sp.AddWalls(wall); err != nil {
		log.Fatal(err)
	}

	// Eq. 2 cost split for this configuration.
	fluidBytes := fluid.BytesSerial(lbm.HarveyAccess())
	acct := sp.Account()
	wallAcct := sp.WallAccounting()
	fmt.Printf("suspension: %d cells (%d markers) + compliant wall (%d markers) in %d fluid points\n",
		len(cellList), sp.Markers(), sp.WallMarkers(), fluid.N())
	fmt.Printf("per-step traffic: fluid %.2f MB, cells %.4f MB, walls %.4f MB\n",
		fluidBytes/1e6, acct.Total()/1e6, wallAcct.Total()/1e6)

	// First half of the campaign.
	if err := sp.Run(150); err != nil {
		log.Fatal(err)
	}
	// Checkpoint mid-flight (as before an instance preemption)...
	var ckpt bytes.Buffer
	if err := fluid.Checkpoint(&ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint taken at step %d: %d bytes\n", fluid.Steps(), ckpt.Len())
	// ...and restore into the same solver to prove the state survives.
	if err := fluid.Restore(bytes.NewReader(ckpt.Bytes())); err != nil {
		log.Fatal(err)
	}
	if err := sp.Run(150); err != nil {
		log.Fatal(err)
	}

	for i, c := range cellList {
		ctr := c.Centroid()
		fmt.Printf("cell %d: centroid (%.1f, %.1f, %.1f), deformation %.3f\n",
			i, ctr.X, ctr.Y, ctr.Z, c.Deformation())
	}
	fmt.Printf("wall deflection: %.4f lattice units (max)\n", wall.MaxDeflection())

	// Wall shear stress — the clinical readout.
	drag := 0.0
	forces := fluid.WallForces()
	for _, f := range forces {
		drag += f.Magnitude()
	}
	fmt.Printf("wall shear: %d wall sites, mean force magnitude %.3g\n",
		len(forces), drag/float64(len(forces)))

	out, err := os.Create("suspension.vtk")
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	if err := fluid.WriteVTK(out, "cell suspension in cylindrical vessel"); err != nil {
		log.Fatal(err)
	}
	fi, err := out.Stat()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote suspension.vtk (%d KiB) — load it in ParaView\n", fi.Size()/1024)
	fmt.Println("OK: coupled cells advected stably with Eq. 2 accounting")
}
