// Costplanner: plan a multi-job simulation campaign under a hard dollar
// budget. The performance model prices every (instance, core-count)
// option; the planner picks the cheapest option meeting a turnaround
// deadline for each patient case, and the campaign runner enforces the
// model-driven guard so a mispredicted job cannot blow the budget — the
// paper's "protection against inadvertent cost overruns".
//
// Run with: go run ./examples/costplanner
package main

import (
	"fmt"
	"log"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dashboard"
	"repro/internal/geometry"
	"repro/internal/lbm"
	"repro/internal/machine"
)

func main() {
	fw, err := core.NewFramework(machine.Catalog(), 5, 99)
	if err != nil {
		log.Fatal(err)
	}

	// Three patient cases of increasing difficulty.
	cases := []struct {
		name  string
		build func() (*geometry.Domain, error)
		steps int
	}{
		{"patient-A-cylinder", func() (*geometry.Domain, error) { return geometry.Cylinder(64, 10) }, 4000},
		{"patient-B-aorta", func() (*geometry.Domain, error) { return geometry.Aorta(7) }, 6000},
		{"patient-C-cerebral", func() (*geometry.Domain, error) { return geometry.Cerebral(3, 4) }, 6000},
	}

	const (
		budgetUSD = 0.50 // total campaign budget
		deadline  = 30.0 // per-job turnaround requirement, seconds
		ranks     = 64
	)
	campaign := cloud.Campaign{Provider: fw.Provider, BudgetUSD: budgetUSD}
	var specs []cloud.JobSpec

	for _, c := range cases {
		dom, err := c.build()
		if err != nil {
			log.Fatal(err)
		}
		anatomy, err := fw.PrepareAnatomy(c.name, dom, lbm.Params{Tau: 0.9, UMax: 0.02})
		if err != nil {
			log.Fatal(err)
		}
		as, err := fw.Assess(anatomy, ranks, c.steps)
		if err != nil {
			log.Fatal(err)
		}
		best, err := dashboard.Recommend(as, dashboard.MinCost, deadline)
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		fmt.Printf("%-20s -> %-12s predicted %6.1f MFLUPS, %6.2f s, $%.4f\n",
			c.name, best.System, best.MFLUPS, best.Seconds, best.USD)
		// 25% tolerance: the uncalibrated model is optimistically biased;
		// refinement tightens this to the paper's 10% over a campaign.
		spec, err := fw.PlanJob(anatomy, best.System, ranks, c.steps, 0.25)
		if err != nil {
			log.Fatal(err)
		}
		specs = append(specs, spec)
	}

	if err := campaign.Run(specs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncampaign: %d jobs run, %d skipped, total spend $%.4f of $%.2f budget\n",
		len(campaign.Results), len(campaign.Skipped), fw.Provider.TotalSpend(), budgetUSD)
	for _, r := range campaign.Results {
		status := "completed"
		if r.Aborted {
			status = "ABORTED: " + r.AbortReason
		}
		fmt.Printf("  %-20s %6d steps  %6.1f MFLUPS  $%.4f  %s\n",
			r.Result.Workload, r.StepsDone, r.Result.MFLUPS, r.USD, status)
	}
	if fw.Provider.TotalSpend() > budgetUSD*1.2 {
		log.Fatal("budget overrun — guard failed")
	}
	fmt.Println("OK: campaign stayed within budget")
}
