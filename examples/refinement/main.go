// Refinement: the iterative model-refinement loop of the paper's title.
// The uncalibrated models overpredict by a consistent amount (the
// simulator charges kernel overhead that a pure bytes/bandwidth model
// cannot see, as the real HARVEY runs did). Every measurement is stored
// with its prediction; the refiner learns a per-system correction and the
// error collapses over successive campaign rounds. The record store is
// serialized to JSON the way a production deployment would persist it.
//
// Run with: go run ./examples/refinement
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/lbm"
	"repro/internal/machine"
)

func main() {
	fw, err := core.NewFramework(machine.Catalog(), 5, 2024)
	if err != nil {
		log.Fatal(err)
	}
	dom, err := geometry.Aorta(8)
	if err != nil {
		log.Fatal(err)
	}
	anatomy, err := fw.PrepareAnatomy("aorta", dom, lbm.Params{Tau: 0.9, UMax: 0.02})
	if err != nil {
		log.Fatal(err)
	}

	const system = "CSP-2"
	fmt.Printf("%-6s %-8s %12s %12s %10s\n", "round", "ranks", "predicted", "measured", "error")
	rankSchedule := []int{18, 36, 72, 144, 36, 72, 144, 18}
	var firstErr, lastErr float64
	for round, ranks := range rankSchedule {
		pred, err := fw.PredictDirect(anatomy, system, ranks)
		if err != nil {
			log.Fatal(err)
		}
		meas, err := fw.Measure(anatomy, system, ranks, 50)
		if err != nil {
			log.Fatal(err)
		}
		relErr := (pred.MFLUPS - meas.MFLUPS) / meas.MFLUPS
		fmt.Printf("%-6d %-8d %12.2f %12.2f %+9.1f%%\n",
			round+1, ranks, pred.MFLUPS, meas.MFLUPS, relErr*100)
		if round == 0 {
			firstErr = abs(relErr)
		}
		lastErr = abs(relErr)
		if err := fw.Record(anatomy, pred, meas); err != nil {
			log.Fatal(err)
		}
	}

	before, after, n := fw.Refiner.MAPE(system, "direct")
	fmt.Printf("\nstored records: %d; MAPE raw %.1f%%, calibrated %.1f%%\n",
		n, before*100, after*100)
	fmt.Printf("first-round error %.1f%%, final-round error %.1f%%\n", firstErr*100, lastErr*100)

	// Persist and restore the record store.
	var buf bytes.Buffer
	if err := fw.Refiner.Save(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("record store serialized: %d bytes of JSON\n", buf.Len())
	if lastErr > firstErr {
		log.Fatal("refinement failed to reduce the prediction error")
	}
	fmt.Println("OK: iterative refinement converged")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
