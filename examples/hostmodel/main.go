// Hostmodel: the paper's methodology executed on real hardware — this
// machine. The host is characterized with the genuine microbenchmarks
// (STREAM Copy thread sweep, goroutine PingPong), the direct performance
// model predicts the LBM proxy app's throughput from those fits alone,
// the kernel is actually run and timed, and the mismatch is fed into the
// refinement loop, which learns the host's kernel overhead the same way
// the paper's loop learns the cloud systems'.
//
// Run with: go run ./examples/hostmodel
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/decomp"
	"repro/internal/lbm"
	"repro/internal/perfmodel"
	"repro/internal/simcloud"
)

func main() {
	fmt.Println("characterizing this machine (STREAM + PingPong)...")
	char, err := perfmodel.CharacterizeHost(1<<24, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("memory model: %s\n", char.Mem)
	fmt.Printf("message link: b=%.0f MB/s, l=%.2f µs\n\n",
		char.Intra.BandwidthMBps, char.Intra.LatencyUS)

	// The workload: the unrolled SOA-AA proxy kernel on a cylinder.
	cfg := lbm.KernelConfig{Layout: lbm.SOA, Pattern: lbm.AA, Unrolled: true}
	proxy, err := lbm.NewProxy(cfg, 64, 10, lbm.Params{Tau: 0.9, Force: [3]float64{1e-5, 0, 0}})
	if err != nil {
		log.Fatal(err)
	}
	// Describe the same lattice for the model via the sparse indexer.
	ref, err := lbm.NewSparse(proxy.Dom, lbm.Params{Tau: 0.9, PeriodicX: true})
	if err != nil {
		log.Fatal(err)
	}
	part, err := decomp.RCB(ref, 1, lbm.ProxyAccess(cfg))
	if err != nil {
		log.Fatal(err)
	}
	w := simcloud.FromPartition("proxy", ref.N(), part)

	pred, err := char.Predict(perfmodel.Request{Model: perfmodel.ModelDirect, Workload: &w})
	if err != nil {
		log.Fatal(err)
	}

	// Measure the real kernel.
	proxy.Run(4) // warm-up
	const steps = 30
	start := time.Now()
	proxy.Run(steps)
	secs := time.Since(start).Seconds()
	measured := lbm.MFLUPS(proxy.FluidPoints(), steps, secs)

	fmt.Printf("predicted from microbenchmarks: %8.2f MFLUPS\n", pred.MFLUPS)
	fmt.Printf("measured on this machine:       %8.2f MFLUPS (ratio %.2fx)\n\n",
		measured, pred.MFLUPS/measured)

	// Close the loop: one recorded run calibrates the host model.
	var refiner perfmodel.Refiner
	if err := refiner.Add(perfmodel.Record{
		Workload: "proxy", System: char.System, Model: pred.Model,
		Ranks: 1, Predicted: pred.MFLUPS, Measured: measured,
	}); err != nil {
		log.Fatal(err)
	}
	refined := refiner.Refine(pred)
	fmt.Printf("after one refinement record:    %8.2f MFLUPS\n", refined.MFLUPS)
	fmt.Println("\nThe raw gap is the host's kernel overhead (instruction issue,")
	fmt.Println("bounds checks, partial cache lines) that a pure bytes-over-")
	fmt.Println("bandwidth model cannot see — the same consistent bias the paper")
	fmt.Println("reports and its iterative refinement removes.")
	if refined.MFLUPS <= 0 {
		log.Fatal("refinement produced a non-positive prediction")
	}
	fmt.Println("OK")
}
