// Aorta: a real hemodynamic simulation on the synthetic aorta — Poiseuille
// inflow at the root, zero-pressure outlets at the descending aorta and
// arch branches — run in parallel on the host with goroutine ranks and
// real halo exchange, then physically sanity-checked: the flow develops,
// stays stable, and the parallel run matches a serial run bitwise.
//
// Run with: go run ./examples/aorta
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/decomp"
	"repro/internal/geometry"
	"repro/internal/lbm"
	"repro/internal/par"
)

func main() {
	dom, err := geometry.Aorta(7)
	if err != nil {
		log.Fatal(err)
	}
	stats := dom.Stats()
	fmt.Printf("synthetic aorta: %dx%dx%d sites, %d fluid (bulk:wall %.2f)\n",
		dom.NX, dom.NY, dom.NZ, stats.Fluid, stats.BulkWallRatio)

	params := lbm.Params{Tau: 0.9, UMax: 0.02}

	// Serial reference.
	serial, err := lbm.NewSparse(dom, params)
	if err != nil {
		log.Fatal(err)
	}
	const steps = 150
	t0 := time.Now()
	serial.Run(steps)
	serialSecs := time.Since(t0).Seconds()

	// Parallel run over 8 goroutine ranks from the same initial state.
	dom2, err := geometry.Aorta(7)
	if err != nil {
		log.Fatal(err)
	}
	solver, err := lbm.NewSparse(dom2, params)
	if err != nil {
		log.Fatal(err)
	}
	partition, err := decomp.RCB(solver, 8, lbm.HarveyAccess())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decomposition: 8 tasks, load imbalance z = %.3f, max events %d\n",
		partition.Imbalance(), partition.MaxEvents())
	runner, err := par.NewRunner(solver, partition)
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	runner.Run(steps)
	parSecs := time.Since(t0).Seconds()

	// Verify: bitwise agreement with the serial engine.
	mismatches := 0
	for si := 0; si < serial.N(); si++ {
		if serial.Cell(si) != runner.Cell(si) {
			mismatches++
		}
	}
	fmt.Printf("serial %.2f MFLUPS, parallel(8) %.2f MFLUPS, mismatching sites: %d\n",
		lbm.MFLUPS(serial.N(), steps, serialSecs),
		lbm.MFLUPS(serial.N(), steps, parSecs), mismatches)
	if mismatches != 0 {
		log.Fatal("parallel run diverged from serial")
	}

	// Physics: the inflow jet has developed and the flow is stable.
	runner.WriteBack(solver)
	var peak float64
	var inletFlux float64
	for si := 0; si < solver.N(); si++ {
		_, ux, uy, uz := solver.Macro(si)
		v := ux*ux + uy*uy + uz*uz
		if v > peak {
			peak = v
		}
		if solver.Type(si) == geometry.Inlet {
			inletFlux += ux
		}
	}
	fmt.Printf("inlet flux %.4f lattice units, peak speed %.4f (stable below 0.3)\n",
		inletFlux, peak)
	if peak > 0.09 { // peak speed squared
		log.Fatal("flow unstable")
	}
	fmt.Println("OK: aorta flow developed, parallel == serial, physics stable")
}
