// FFR: non-invasive fractional flow reserve from simulation — the
// FDA-approved clinical application the paper's introduction motivates
// (FFR-CT). A stenosed vessel is simulated to steady state; the
// trans-lesion pressure ratio P_distal/P_proximal (lattice pressure is
// density/3) approximates FFR, and the wall-shear hotspot localizes at
// the throat. A healthy vessel is run as the control.
//
// Run with: go run ./examples/ffr
package main

import (
	"fmt"
	"log"

	"repro/internal/geometry"
	"repro/internal/lbm"
)

// meanPressure returns the mean lattice pressure (rho/3) over the
// cross-section at plane x.
func meanPressure(s *lbm.Sparse, x int) float64 {
	var sum float64
	n := 0
	for si := 0; si < s.N(); si++ {
		sx, _, _ := s.SiteCoords(si)
		if sx != x {
			continue
		}
		rho, _, _, _ := s.Macro(si)
		sum += rho / 3
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// runVessel simulates a vessel to near steady state and reports the
// FFR-like pressure ratio across the middle segment and the axial
// location of the peak wall shear.
func runVessel(dom *geometry.Domain) (ffr float64, peakShearX int, err error) {
	s, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, UMax: 0.04})
	if err != nil {
		return 0, 0, err
	}
	s.Run(3000)
	// Proximal and distal planes, clear of inlet/outlet boundary layers.
	prox := dom.NX / 6
	dist := dom.NX * 5 / 6
	pa := meanPressure(s, prox)
	pd := meanPressure(s, dist)
	// Reference the pressures to the outlet (pinned at rho=1): FFR-like
	// ratio of driving pressures Delta relative to the reference 1/3.
	const pRef = 1.0 / 3
	ffr = (pd - pRef + pRef) / (pa - pRef + pRef) // = pd/pa, spelled out
	// Search the interior only: the equilibrium inlet/outlet overrides
	// create thin artificial boundary layers at the end planes.
	var peak float64
	for _, w := range s.WallForces() {
		if w.X < prox || w.X > dist {
			continue
		}
		if m := w.Shear(); m > peak {
			peak = m
			peakShearX = w.X
		}
	}
	return ffr, peakShearX, nil
}

func main() {
	const nx, radius = 96, 9
	healthyDom, err := geometry.Cylinder(nx, radius)
	if err != nil {
		log.Fatal(err)
	}
	stenosedDom, err := geometry.StenosedCylinder(nx, radius, 0.5, 6)
	if err != nil {
		log.Fatal(err)
	}
	hs, ss := healthyDom.Stats(), stenosedDom.Stats()
	fmt.Printf("healthy vessel: %d fluid points; stenosed: %d (lumen loss %.0f%%)\n",
		hs.Fluid, ss.Fluid, (1-float64(ss.Fluid)/float64(hs.Fluid))*100)

	healthyFFR, _, err := runVessel(healthyDom)
	if err != nil {
		log.Fatal(err)
	}
	stenosedFFR, throatX, err := runVessel(stenosedDom)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy  FFR-like ratio: %.4f\n", healthyFFR)
	fmt.Printf("stenosed FFR-like ratio: %.4f (throat shear peak at x=%d, lesion center x=%d)\n",
		stenosedFFR, throatX, nx/2)

	if stenosedFFR >= healthyFFR {
		log.Fatal("stenosis did not depress the distal pressure ratio")
	}
	if throatX < nx/2-10 || throatX > nx/2+10 {
		log.Fatal("wall-shear peak not localized at the lesion")
	}
	fmt.Println("OK: stenosis depresses the trans-lesion pressure ratio and focuses wall shear at the throat")
}
