// Quickstart: the framework end to end in one screen.
//
//  1. Characterize the cloud catalog into a CSP Option Dashboard.
//  2. Tune the performance model to an anatomy (a cylindrical vessel).
//  3. Predict performance per instance and pick one.
//  4. Run the job with a model-driven budget guard.
//  5. Feed the measurement back into the model.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dashboard"
	"repro/internal/geometry"
	"repro/internal/lbm"
	"repro/internal/machine"
)

func main() {
	// 1. Phase one of Figure 1: microbenchmark every instance type.
	fw, err := core.NewFramework(machine.Catalog(), 5, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Phase two: an anatomy and its tuned model.
	dom, err := geometry.Cylinder(96, 12)
	if err != nil {
		log.Fatal(err)
	}
	anatomy, err := fw.PrepareAnatomy("vessel", dom, lbm.Params{Tau: 0.9, UMax: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anatomy %q: %d fluid points\n", anatomy.Name, anatomy.Summary.Points)

	// 3. Assess every instance for a 5000-step job on 64 cores and pick
	// the best value per dollar.
	const ranks, steps = 64, 5000
	as, err := fw.Assess(anatomy, ranks, steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(dashboard.RenderAssessments(as))
	best, err := dashboard.Recommend(as, dashboard.MaxValue, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chosen instance: %s\n\n", best.System)

	// 4. Plan the job with a guard and run it. The uncalibrated model
	// carries a known optimistic bias (it cannot see kernel overheads), so
	// a first job gets a generous 25% tolerance; after refinement the
	// tolerance can drop to the paper's 10%.
	spec, err := fw.PlanJob(anatomy, best.System, ranks, steps, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	res, err := fw.Provider.RunJob(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job: %d/%d steps, %.2f MFLUPS, $%.4f (aborted: %v)\n",
		res.StepsDone, steps, res.Result.MFLUPS, res.USD, res.Aborted)

	// 5. Close the loop: record measured vs predicted.
	pred, err := fw.PredictDirect(anatomy, best.System, ranks)
	if err != nil {
		log.Fatal(err)
	}
	if err := fw.Record(anatomy, pred, res.Result); err != nil {
		log.Fatal(err)
	}
	refined, err := fw.PredictDirect(anatomy, best.System, ranks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prediction before refinement: %.2f MFLUPS, after: %.2f (measured %.2f)\n",
		pred.MFLUPS, refined.MFLUPS, res.Result.MFLUPS)
}
