package machine

import "fmt"

// The five systems of Table I. Memory-model and inter-node link parameters
// are taken directly from the paper's Table III fits where published (TRC,
// CSP-2, CSP-2 EC, CSP-1, CSP-2 Hyp.); CSP-2 Small parameters are derived
// from its hardware class (same Haswell generation as CSP-1/CSP-2, small
// 8-core nodes on the slow 10 Gbit/s fabric). Intra-node links are not
// tabulated in the paper beyond "much less runtime than memory accesses";
// they are set to shared-memory-copy scale (GB/s bandwidth, sub-µs
// latency), which keeps them subdominant exactly as Figure 9 shows.
//
// Prices are synthetic (the paper withholds dollar figures) but keep the
// ratios of 2022-era published on-demand rates for comparable instances,
// which is all the cost-weighted decision metrics consume.

// NewTRC returns the traditional compute cluster: dual-socket Broadwell
// nodes on 56 Gbit/s InfiniBand.
func NewTRC() *System {
	return &System{
		Name:                "Traditional Compute Cluster",
		Abbrev:              "TRC",
		CPU:                 "Intel Xeon E5-2699 v4",
		ClockGHz:            2.19,
		TotalCores:          2000,
		CoresPerNode:        40,
		VCPUsPerCore:        1,
		MemPerNodeGB:        471,
		InterconnectGbps:    56,
		PublishedMemBWMBps:  76800,
		Mem:                 MemoryModel{A1: 6768.24, A2: 369.16, A3: 6.39, PostKneeCV: 0.008, HTEfficiency: 1},
		InterNode:           LinkModel{BandwidthMBps: 5066.57, LatencyUS: 2.01},
		IntraNode:           LinkModel{BandwidthMBps: 9800, LatencyUS: 0.45},
		NoiseCV:             0.006,
		PricePerNodeHourUSD: 2.20,  // amortized allocation-equivalent rate
		ProvisionDelayS:     14400, // queue wait at a busy center (≈4 h median)
		Dedicated:           true,
	}
}

// NewCSP1 returns Cloud 1, the dedicated 16-core-node instance on a
// 10 Gbit/s fabric used for the noise study.
func NewCSP1() *System {
	return &System{
		Name:                "Cloud 1 - Dedicated",
		Abbrev:              "CSP-1",
		CPU:                 "Intel Xeon E5-2667 v3",
		ClockGHz:            3.19,
		TotalCores:          48,
		CoresPerNode:        16,
		VCPUsPerCore:        1,
		MemPerNodeGB:        16,
		InterconnectGbps:    10,
		PublishedMemBWMBps:  68000,
		Mem:                 MemoryModel{A1: 18092.64, A2: -62.79, A3: 4.15, PostKneeCV: 0.012, HTEfficiency: 0.97},
		InterNode:           LinkModel{BandwidthMBps: 1030, LatencyUS: 31.5},
		IntraNode:           LinkModel{BandwidthMBps: 8200, LatencyUS: 0.6},
		NoiseCV:             0.015,
		PricePerNodeHourUSD: 1.60,
		ProvisionDelayS:     95,
		Dedicated:           true,
	}
}

// NewCSP2Small returns the small 8-core on-demand node type of Cloud 2
// used in the noise-variability study.
func NewCSP2Small() *System {
	return &System{
		Name:                "Cloud 2 - Small",
		Abbrev:              "CSP-2 Small",
		CPU:                 "Intel Xeon E5-2666 v3",
		ClockGHz:            2.42,
		TotalCores:          128,
		CoresPerNode:        8,
		VCPUsPerCore:        2,
		MemPerNodeGB:        30,
		InterconnectGbps:    10,
		PublishedMemBWMBps:  59700,
		Mem:                 MemoryModel{A1: 7430.0, A2: 815.0, A3: 4.6, PostKneeCV: 0.02, HTEfficiency: 0.96},
		InterNode:           LinkModel{BandwidthMBps: 1065, LatencyUS: 28.8},
		IntraNode:           LinkModel{BandwidthMBps: 7600, LatencyUS: 0.62},
		NoiseCV:             0.013,
		PricePerNodeHourUSD: 0.40,
		ProvisionDelayS:     70,
	}
}

// NewCSP2 returns Cloud 2's large 36-core node type on the provider's
// unnamed slower (25 Gbit/s) interconnect.
func NewCSP2() *System {
	return &System{
		Name:                "Cloud 2 - No EC",
		Abbrev:              "CSP-2",
		CPU:                 "Intel Xeon Platinum 8124M",
		ClockGHz:            3.41,
		TotalCores:          144,
		CoresPerNode:        36,
		VCPUsPerCore:        2,
		MemPerNodeGB:        144,
		InterconnectGbps:    25,
		PublishedMemBWMBps:  162720,
		Mem:                 MemoryModel{A1: 7790.02, A2: 1264.80, A3: 9.00, PostKneeCV: 0.045, HTEfficiency: 0.95},
		InterNode:           LinkModel{BandwidthMBps: 1804.84, LatencyUS: 23.59},
		IntraNode:           LinkModel{BandwidthMBps: 8900, LatencyUS: 0.55},
		NoiseCV:             0.012,
		PricePerNodeHourUSD: 3.06,
		ProvisionDelayS:     80,
	}
}

// NewCSP2EC returns Cloud 2's large node type with the proprietary
// Enhanced Communicator 100 Gbit/s interconnect.
func NewCSP2EC() *System {
	return &System{
		Name:                "Cloud 2 - With EC",
		Abbrev:              "CSP-2 EC",
		CPU:                 "Intel Xeon Platinum 8124M",
		ClockGHz:            3.40,
		TotalCores:          144,
		CoresPerNode:        36,
		VCPUsPerCore:        2,
		MemPerNodeGB:        192,
		InterconnectGbps:    100,
		PublishedMemBWMBps:  162720,
		Mem:                 MemoryModel{A1: 7605.85, A2: 1269.95, A3: 11.00, PostKneeCV: 0.040, HTEfficiency: 0.95},
		InterNode:           LinkModel{BandwidthMBps: 2016.77, LatencyUS: 20.94},
		IntraNode:           LinkModel{BandwidthMBps: 8900, LatencyUS: 0.55},
		NoiseCV:             0.012,
		PricePerNodeHourUSD: 3.89,
		ProvisionDelayS:     85,
	}
}

// Catalog returns all Table I systems in the paper's column order.
func Catalog() []*System {
	return []*System{NewTRC(), NewCSP1(), NewCSP2Small(), NewCSP2EC(), NewCSP2()}
}

// FullCatalog returns the Table I systems plus the GPU instance type the
// extension studies add.
func FullCatalog() []*System {
	return append(Catalog(), NewCSP2GPU())
}

// ByAbbrev returns the catalog system (including the GPU instance) with
// the given abbreviation.
func ByAbbrev(abbrev string) (*System, error) {
	for _, s := range FullCatalog() {
		if s.Abbrev == abbrev {
			return s, nil
		}
	}
	return nil, fmt.Errorf("machine: unknown system %q", abbrev)
}
