package machine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMemoryModelTwoRegimes(t *testing.T) {
	m := MemoryModel{A1: 1000, A2: 100, A3: 8}
	if got := m.Bandwidth(4); got != 4000 {
		t.Errorf("Bandwidth(4) = %v, want 4000", got)
	}
	// At the knee the two branches must agree.
	atKnee := m.Bandwidth(8)
	if atKnee != 8000 {
		t.Errorf("Bandwidth(8) = %v, want 8000", atKnee)
	}
	if got := m.Bandwidth(16); got != 100*16+8*(1000-100) {
		t.Errorf("Bandwidth(16) = %v, want %v", got, 100*16+8*900)
	}
	if got := m.Saturation(); got != 8000 {
		t.Errorf("Saturation = %v, want 8000", got)
	}
	// Clamp below 1 thread.
	if got := m.Bandwidth(0); got != 1000 {
		t.Errorf("Bandwidth(0) = %v, want clamp to 1 thread = 1000", got)
	}
}

func TestMemoryModelContinuityProperty(t *testing.T) {
	f := func(a1, a2, a3 float64) bool {
		m := MemoryModel{A1: math.Abs(a1), A2: math.Abs(a2), A3: 1 + math.Abs(a3)}
		if m.A3 > 1e6 || m.A1 > 1e12 || m.A2 > 1e12 {
			return true
		}
		left := m.Bandwidth(m.A3 - 1e-9)
		right := m.Bandwidth(m.A3 + 1e-9)
		return math.Abs(left-right) <= 1e-3*math.Max(1, right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinkModelTime(t *testing.T) {
	l := LinkModel{BandwidthMBps: 1000, LatencyUS: 20}
	if got := l.TimeUS(0); got != 20 {
		t.Errorf("TimeUS(0) = %v, want latency 20", got)
	}
	// 1 MB at 1000 MB/s is 1 ms = 1000 µs, plus latency.
	if got := l.TimeUS(1e6); math.Abs(got-1020) > 1e-9 {
		t.Errorf("TimeUS(1MB) = %v, want 1020", got)
	}
}

func TestNodesRounding(t *testing.T) {
	s := NewCSP2() // 36 cores per node
	cases := []struct{ ranks, want int }{
		{1, 1}, {36, 1}, {37, 2}, {72, 2}, {144, 4},
	}
	for _, c := range cases {
		if got := s.Nodes(c.ranks); got != c.want {
			t.Errorf("Nodes(%d) = %d, want %d", c.ranks, got, c.want)
		}
	}
}

func TestNodesPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for ranks <= 0")
		}
	}()
	NewTRC().Nodes(0)
}

func TestRanksOnNode(t *testing.T) {
	s := NewCSP1() // 16 cores per node
	if got := s.RanksOnNode(5); got != 5 {
		t.Errorf("RanksOnNode(5) = %d, want 5", got)
	}
	if got := s.RanksOnNode(48); got != 16 {
		t.Errorf("RanksOnNode(48) = %d, want 16", got)
	}
}

func TestCatalogMatchesTable1(t *testing.T) {
	cat := Catalog()
	if len(cat) != 5 {
		t.Fatalf("catalog has %d systems, want 5", len(cat))
	}
	byAbbrev := map[string]*System{}
	for _, s := range cat {
		byAbbrev[s.Abbrev] = s
	}
	// Spot-check Table I values.
	trc := byAbbrev["TRC"]
	if trc.CoresPerNode != 40 || trc.TotalCores != 2000 || trc.InterconnectGbps != 56 {
		t.Errorf("TRC catalog row wrong: %+v", trc)
	}
	csp2 := byAbbrev["CSP-2"]
	if csp2.CoresPerNode != 36 || csp2.MemPerNodeGB != 144 || csp2.InterconnectGbps != 25 {
		t.Errorf("CSP-2 catalog row wrong: %+v", csp2)
	}
	ec := byAbbrev["CSP-2 EC"]
	if ec.InterconnectGbps != 100 || ec.MemPerNodeGB != 192 {
		t.Errorf("CSP-2 EC catalog row wrong: %+v", ec)
	}
	small := byAbbrev["CSP-2 Small"]
	if small.CoresPerNode != 8 || small.TotalCores != 128 {
		t.Errorf("CSP-2 Small catalog row wrong: %+v", small)
	}
	csp1 := byAbbrev["CSP-1"]
	if csp1.CoresPerNode != 16 || csp1.TotalCores != 48 {
		t.Errorf("CSP-1 catalog row wrong: %+v", csp1)
	}
}

func TestTable3ParametersEmbedded(t *testing.T) {
	// The ground-truth memory models must carry the paper's Table III fits.
	trc := NewTRC()
	if trc.Mem.A1 != 6768.24 || trc.Mem.A2 != 369.16 || trc.Mem.A3 != 6.39 {
		t.Errorf("TRC memory model diverges from Table III: %+v", trc.Mem)
	}
	csp2 := NewCSP2()
	if csp2.InterNode.BandwidthMBps != 1804.84 || csp2.InterNode.LatencyUS != 23.59 {
		t.Errorf("CSP-2 link model diverges from Table III: %+v", csp2.InterNode)
	}
	ec := NewCSP2EC()
	if ec.InterNode.BandwidthMBps != 2016.77 || ec.InterNode.LatencyUS != 20.94 {
		t.Errorf("CSP-2 EC link model diverges from Table III: %+v", ec.InterNode)
	}
}

func TestECBeatsNoECOnComm(t *testing.T) {
	// Table III: EC has 211.93 MB/s more bandwidth and 2.65 µs less latency.
	ec, noEC := NewCSP2EC().InterNode, NewCSP2().InterNode
	dBW := ec.BandwidthMBps - noEC.BandwidthMBps
	dLat := noEC.LatencyUS - ec.LatencyUS
	if math.Abs(dBW-211.93) > 1e-9 {
		t.Errorf("EC bandwidth delta = %v, want 211.93", dBW)
	}
	if math.Abs(dLat-2.65) > 1e-9 {
		t.Errorf("EC latency delta = %v, want 2.65", dLat)
	}
	for _, bytes := range []float64{0, 1024, 1 << 20} {
		if ec.TimeUS(bytes) >= noEC.TimeUS(bytes) {
			t.Errorf("EC slower than no-EC at %v bytes", bytes)
		}
	}
}

func TestByAbbrev(t *testing.T) {
	s, err := ByAbbrev("CSP-2 EC")
	if err != nil || s.Abbrev != "CSP-2 EC" {
		t.Errorf("ByAbbrev(CSP-2 EC) = %v, %v", s, err)
	}
	if _, err := ByAbbrev("nope"); err == nil {
		t.Error("want error for unknown system")
	}
}

func TestSampleBandwidthNoiseIsCentered(t *testing.T) {
	s := NewCSP2()
	rng := rand.New(rand.NewSource(1))
	const n = 4000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.SampleBandwidth(18, false, rng)
	}
	mean := sum / n
	want := s.Mem.Bandwidth(18)
	if math.Abs(mean-want)/want > 0.01 {
		t.Errorf("mean sampled bandwidth %v deviates from model %v", mean, want)
	}
}

func TestSampleBandwidthHyperthreadedPlateaus(t *testing.T) {
	s := NewCSP2() // 36 physical cores, 72 vCPUs
	rng := rand.New(rand.NewSource(2))
	var at36, at72 float64
	const n = 500
	for i := 0; i < n; i++ {
		at36 += s.SampleBandwidth(36, true, rng)
		at72 += s.SampleBandwidth(72, true, rng)
	}
	at36 /= n
	at72 /= n
	if at72 > at36 {
		t.Errorf("hyperthreading increased bandwidth: %v > %v", at72, at36)
	}
	// Paper: HT bandwidth tends 20-40%% below published; at minimum it must
	// be visibly below the non-HT curve extrapolation, not catastrophic.
	if at72 < 0.5*at36 {
		t.Errorf("HT penalty too severe: %v vs %v", at72, at36)
	}
}

func TestRunNoiseStats(t *testing.T) {
	s := NewCSP2Small()
	rng := rand.New(rand.NewSource(3))
	const n = 20000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		f := s.RunNoise(rng)
		if f <= 0 {
			t.Fatalf("noise factor %v not positive", f)
		}
		sum += f
		sum2 += f * f
	}
	mean := sum / n
	sd := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-1) > 0.005 {
		t.Errorf("noise mean = %v, want ~1", mean)
	}
	if math.Abs(sd/mean-s.NoiseCV) > 0.004 {
		t.Errorf("noise CV = %v, want ~%v", sd/mean, s.NoiseCV)
	}
}

func TestRunNoiseDeterministicGivenSeed(t *testing.T) {
	s := NewCSP1()
	a := s.RunNoise(rand.New(rand.NewSource(9)))
	b := s.RunNoise(rand.New(rand.NewSource(9)))
	if a != b {
		t.Errorf("same seed produced different noise: %v vs %v", a, b)
	}
}

func TestJobCost(t *testing.T) {
	s := NewCSP2() // $3.06 per node-hour, 36 cores/node
	// 72 ranks = 2 nodes for half an hour.
	got := s.JobCost(72, 1800)
	want := 2 * 0.5 * 3.06
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("JobCost = %v, want %v", got, want)
	}
}

func TestLognormalFactorZeroCV(t *testing.T) {
	if got := lognormalFactor(rand.New(rand.NewSource(1)), 0); got != 1 {
		t.Errorf("lognormalFactor(cv=0) = %v, want 1", got)
	}
}

func TestSampleMessageTimeIntraFaster(t *testing.T) {
	s := NewCSP2()
	rng := rand.New(rand.NewSource(4))
	var intra, inter float64
	for i := 0; i < 200; i++ {
		intra += s.SampleMessageTimeUS(4096, true, rng)
		inter += s.SampleMessageTimeUS(4096, false, rng)
	}
	if intra >= inter {
		t.Errorf("intra-node comm not faster: %v vs %v", intra, inter)
	}
}
