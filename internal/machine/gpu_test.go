package machine

import (
	"math/rand"
	"testing"
)

func TestGPUCatalogRow(t *testing.T) {
	g := NewCSP2GPU()
	if g.GPU == nil {
		t.Fatal("GPU spec missing")
	}
	if g.CoresPerNode != g.GPU.PerNode {
		t.Errorf("rank placement: CoresPerNode %d != GPUs per node %d", g.CoresPerNode, g.GPU.PerNode)
	}
	if g.MaxRanks() != 16 {
		t.Errorf("MaxRanks = %d, want 16 (4 nodes x 4 GPUs)", g.MaxRanks())
	}
	// Per-rank bandwidth is the device bandwidth, regardless of how many
	// ranks share a node (each owns its own device).
	for n := 1.0; n <= 4; n++ {
		perRank := g.Mem.Bandwidth(n) / n
		if perRank != g.GPU.MemBWMBps {
			t.Errorf("per-rank bandwidth at %v ranks = %v, want %v", n, perRank, g.GPU.MemBWMBps)
		}
	}
}

func TestGPUFarExceedsCPUBandwidth(t *testing.T) {
	g, c := NewCSP2GPU(), NewCSP2()
	if g.Mem.Bandwidth(4) <= c.Mem.Saturation()*4 {
		t.Error("GPU node bandwidth should dwarf the CPU node's")
	}
}

func TestSamplePCIeTime(t *testing.T) {
	g := NewCSP2GPU()
	rng := rand.New(rand.NewSource(1))
	small := g.SamplePCIeTimeUS(0, rng)
	big := g.SamplePCIeTimeUS(1<<24, rng)
	if small <= 0 || big <= small {
		t.Errorf("PCIe times implausible: %v, %v", small, big)
	}
}

func TestSamplePCIePanicsOnCPUSystem(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for CPU-only system")
		}
	}()
	NewTRC().SamplePCIeTimeUS(0, rand.New(rand.NewSource(1)))
}
