package machine

import "math/rand"

// GPUSpec describes the accelerator configuration of a GPU instance.
// HARVEY "can be run on both CPUs and GPUs at scale"; the paper's full
// model (Eq. 2) includes the CPU-GPU data transfer term t_CPU-GPU that
// this spec parameterizes. One MPI rank drives one GPU, the standard
// HARVEY-GPU configuration.
type GPUSpec struct {
	Model string

	// MemBWMBps is the sustainable device-memory bandwidth per GPU. Each
	// rank owns a whole device, so unlike CPU cores there is no
	// bandwidth sharing between ranks on a node.
	MemBWMBps float64

	// PCIe is the host-device link: halo data crosses it on the way to
	// and from the interconnect (device -> host before a send, host ->
	// device after a receive).
	PCIe LinkModel

	PerNode int // GPUs (and thus ranks) per node
}

// NewCSP2GPU returns a GPU instance type of Cloud 2: 4 nodes of 4
// data-center GPUs each on the EC interconnect, modeled after 2022-era
// V100-class offerings (900 GB/s HBM2, ~12 GB/s effective PCIe 3.0 x16).
// For the CPU-side fields, cores back the host processes; rank placement
// is per GPU via PerNode.
func NewCSP2GPU() *System {
	return &System{
		Name:               "Cloud 2 - GPU",
		Abbrev:             "CSP-2 GPU",
		CPU:                "Intel Xeon E5-2686 v4 + 4x V100-class GPU",
		ClockGHz:           2.70,
		TotalCores:         16, // 4 nodes x 4 GPUs: one rank per GPU
		CoresPerNode:       4,
		VCPUsPerCore:       1,
		MemPerNodeGB:       488,
		InterconnectGbps:   100,
		PublishedMemBWMBps: 900000, // per GPU
		Mem: MemoryModel{
			// One rank per device: bandwidth scales linearly with ranks
			// and never saturates within a node (A2 == A1, knee beyond
			// the device count).
			A1: 780000, A2: 780000, A3: 4,
			PostKneeCV: 0.01, HTEfficiency: 1,
		},
		InterNode: LinkModel{BandwidthMBps: 2016.77, LatencyUS: 20.94},
		IntraNode: LinkModel{BandwidthMBps: 9500, LatencyUS: 0.6},
		GPU: &GPUSpec{
			Model:     "V100-class",
			MemBWMBps: 780000,
			PCIe:      LinkModel{BandwidthMBps: 12000, LatencyUS: 6.5},
			PerNode:   4,
		},
		NoiseCV:             0.012,
		PricePerNodeHourUSD: 12.24,
		ProvisionDelayS:     140,
	}
}

// SamplePCIeTimeUS returns one noisy host-device transfer observation in
// microseconds for the given payload. It panics if the system has no GPU
// — callers select the PCIe benchmark only for accelerator instances.
func (s *System) SamplePCIeTimeUS(bytes float64, rng *rand.Rand) float64 {
	if s.GPU == nil {
		panic("machine: SamplePCIeTimeUS on a CPU-only system")
	}
	return s.GPU.PCIe.TimeUS(bytes) * lognormalFactor(rng, 0.03)
}
