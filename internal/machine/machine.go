// Package machine models the compute systems evaluated in the paper: a
// traditional HPC cluster (TRC) and several cloud instance types (CSP-1,
// CSP-2 Small, CSP-2 with and without the "Enhanced Communicator"
// interconnect). Real hardware is not available in this reproduction, so
// each system is an analytic model calibrated with the paper's published
// numbers (Table I hardware details, Table III microbenchmark fit
// parameters). The models expose exactly the observable surface the paper
// measures: a two-regime node memory-bandwidth curve (STREAM sweep),
// linear message timing (PingPong), run-to-run noise, and pay-as-you-go
// pricing.
package machine

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/units"
)

// MemoryModel describes a node's sustainable memory bandwidth as a
// function of active threads, in the paper's two-regime form (Eq. 8):
// per-core limited below the knee A3, memory-subsystem limited above it.
// All bandwidths are MB/s.
type MemoryModel struct {
	//lint:ignore unitsuffix A1/A2/A3 mirror the paper's Eq. 8 parameter names; the unit lives in the struct doc
	A1 float64 // per-thread bandwidth slope below the knee (MB/s per thread)
	//lint:ignore unitsuffix same Eq. 8 naming convention
	A2 float64 // residual slope above the knee (MB/s per thread)
	A3 float64 // knee position (threads)

	// PostKneeCV adds extra relative variance to bandwidth samples taken
	// above the knee. The paper observed that CSP-2 "demonstrates large
	// variance after its inflection point", attributed to cores sharing
	// memory channels.
	PostKneeCV float64

	// HTEfficiency scales bandwidth when two hardware threads share a
	// physical core. Hyperthreading does not add memory bandwidth; on the
	// CSP-2 hyperthreaded instance the paper measured a slight decline
	// (negative a2 in Table III), so values slightly below 1 are typical.
	HTEfficiency float64
}

// Bandwidth returns the modeled node bandwidth (MB/s) with n threads
// active, without noise. n is clamped below at 1.
func (m MemoryModel) Bandwidth(n float64) float64 {
	if n < 1 {
		n = 1
	}
	if n < m.A3 {
		return m.A1 * n
	}
	return m.A2*n + m.A3*(m.A1-m.A2)
}

// Saturation returns the bandwidth at the knee — the node's effective
// memory-subsystem limit.
func (m MemoryModel) Saturation() float64 { return m.A1 * m.A3 }

// LinkModel describes a communication link with the paper's linear model
// (Eq. 12): t = m/b + l.
type LinkModel struct {
	BandwidthMBps float64 // sustained bandwidth b, MB/s
	LatencyUS     float64 // zero-byte latency l, microseconds
}

// TimeUS returns the modeled time in microseconds to move a message of the
// given size in bytes.
func (l LinkModel) TimeUS(bytes float64) float64 {
	return units.SecondsToMicros(bytes/units.MBpsToBps(l.BandwidthMBps)) + l.LatencyUS
}

// System is a complete description of one target infrastructure: the
// catalog row (Table I), the calibrated behavioural models (Table III) and
// commercial terms for the cloud decision framework.
type System struct {
	Name   string // full display name, e.g. "Traditional Compute Cluster"
	Abbrev string // short name used throughout the paper, e.g. "TRC"

	// Table I catalog fields.
	CPU              string
	ClockGHz         float64
	TotalCores       int
	CoresPerNode     int
	VCPUsPerCore     int // 1 without hyperthreading, 2 with
	MemPerNodeGB     float64
	InterconnectGbps float64

	// PublishedMemBWMBps is the vendor-published maximum nodal memory
	// bandwidth (Table II, "Published" row).
	PublishedMemBWMBps float64

	// Behavioural models.
	Mem       MemoryModel
	InterNode LinkModel // link between nodes (the cloud differentiator)
	IntraNode LinkModel // on-node rank-to-rank transfer

	// GPU is non-nil for accelerator instances: one rank drives one
	// device, and halo traffic pays the host-device transfer term
	// t_CPU-GPU of Eq. 2.
	GPU *GPUSpec

	// NoiseCV is the run-to-run coefficient of variation of whole-
	// application performance (the Table IV noise study).
	NoiseCV float64

	// Commercial terms for the dashboard and budget guard. Prices are
	// synthetic but proportioned like 2022-era on-demand rates; the
	// decision framework only depends on their ratios.
	PricePerNodeHourUSD float64 // USD per node-hour
	ProvisionDelayS     float64 // seconds from request to usable nodes
	Dedicated           bool    // dedicated (allocation) vs on-demand
}

// Nodes returns how many nodes are needed to host the given number of
// ranks at one rank per core, rounding up. It panics if ranks is not
// positive — callers size jobs before asking.
func (s *System) Nodes(ranks int) int {
	if ranks <= 0 {
		panic(fmt.Sprintf("machine: Nodes(%d) on %s: ranks must be positive", ranks, s.Abbrev))
	}
	return (ranks + s.CoresPerNode - 1) / s.CoresPerNode
}

// MaxRanks returns the total core count available, the strong-scaling
// ceiling for one-rank-per-core placement.
func (s *System) MaxRanks() int { return s.TotalCores }

// RanksOnNode returns how many of the given ranks land on the busiest node
// under block placement (fill node 0, then node 1, ...).
func (s *System) RanksOnNode(ranks int) int {
	if ranks >= s.CoresPerNode {
		return s.CoresPerNode
	}
	return ranks
}

// SampleBandwidth returns one noisy STREAM-style bandwidth observation at
// the given thread count, using rng for reproducible draws. Hyperthreaded
// sampling (threads beyond physical cores) applies HTEfficiency.
func (s *System) SampleBandwidth(threads int, hyperthreaded bool, rng *rand.Rand) float64 {
	n := float64(threads)
	bw := s.Mem.Bandwidth(n)
	if hyperthreaded && s.VCPUsPerCore > 1 {
		// With one software thread per vCPU, physical cores start double-
		// booking once threads exceed the core count: no extra bandwidth,
		// modest contention penalty that grows with oversubscription.
		phys := float64(s.CoresPerNode)
		if n > phys {
			bw = s.Mem.Bandwidth(phys)
			over := (n - phys) / phys
			bw *= math.Pow(s.Mem.HTEfficiency, over)
		}
	}
	cv := 0.005 // baseline measurement jitter on any system
	if n >= s.Mem.A3 && s.Mem.PostKneeCV > cv {
		cv = s.Mem.PostKneeCV
	}
	return bw * lognormalFactor(rng, cv)
}

// SampleMessageTimeUS returns one noisy PingPong observation in
// microseconds for a message of the given size. intra selects the
// on-node link.
func (s *System) SampleMessageTimeUS(bytes float64, intra bool, rng *rand.Rand) float64 {
	link := s.InterNode
	if intra {
		link = s.IntraNode
	}
	return link.TimeUS(bytes) * lognormalFactor(rng, 0.03)
}

// RunNoise returns a multiplicative noise factor for one whole-application
// run, reproducing the Table IV variability study. The factor has unit
// mean and coefficient of variation NoiseCV.
func (s *System) RunNoise(rng *rand.Rand) float64 {
	return lognormalFactor(rng, s.NoiseCV)
}

// JobCost returns the USD cost of holding the nodes needed for the given
// rank count for the given number of seconds. Cloud billing is node-based:
// the paper assumes "cloud allocations are node based wherein the user is
// allocated all cores on a node".
func (s *System) JobCost(ranks int, seconds float64) float64 {
	return float64(s.Nodes(ranks)) * units.SecondsToHours(seconds) * s.PricePerNodeHourUSD
}

// String returns the abbreviation, the identity used in all tables.
func (s *System) String() string { return s.Abbrev }

// lognormalFactor draws a multiplicative noise factor with mean 1 and the
// given coefficient of variation. A lognormal keeps performance strictly
// positive, matching how throughput noise behaves in practice.
func lognormalFactor(rng *rand.Rand, cv float64) float64 {
	if cv <= 0 {
		return 1
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := -sigma2 / 2
	return math.Exp(mu + math.Sqrt(sigma2)*rng.NormFloat64())
}
