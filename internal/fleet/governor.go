package fleet

// decision is the budget governor's verdict on one placement.
type decision int

const (
	// decideAdmit: the predicted cost fits in the uncommitted budget.
	decideAdmit decision = iota
	// decideDefer: it does not fit now, but running jobs hold
	// reservations that may settle below their estimates — wait.
	decideDefer
	// decideShed: it can never fit; spend only grows, so if the estimate
	// exceeds budget minus spend today it exceeds it forever.
	decideShed
)

// governor tracks campaign spend against the budget. Placements commit a
// reservation at their predicted cost; completions settle the reservation
// against the metered bill. Admission is judged against the uncommitted
// remainder, so concurrent placements cannot jointly overcommit the
// budget by more than the model's prediction error.
type governor struct {
	budget    float64 // 0 = unlimited
	spent     float64
	committed float64
}

// free returns the budget not yet spent or reserved.
func (g *governor) free() float64 { return g.budget - g.spent - g.committed }

// decide judges a placement with the given predicted cost.
func (g *governor) decide(est float64) decision {
	if g.budget <= 0 {
		return decideAdmit
	}
	if est <= g.free() {
		return decideAdmit
	}
	if g.spent+est > g.budget {
		return decideShed
	}
	return decideDefer
}

// exhausted reports whether the metered spend has consumed the budget.
func (g *governor) exhausted() bool { return g.budget > 0 && g.spent >= g.budget }

// commit reserves a placement's predicted cost.
func (g *governor) commit(est float64) { g.committed += est }

// settle releases a reservation and books the metered bill.
func (g *governor) settle(est, actual float64) {
	g.committed -= est
	g.spent += actual
}
