package fleet

import (
	"fmt"
	"strconv"

	"repro/internal/monitor"
	"repro/internal/obs"
)

// This file wires the observability layer into the scheduler. Every
// hook is a no-op when Trace/Metrics are left nil (obs instruments are
// nil-safe), and every span operation happens on the single event-loop
// goroutine, so the span start sequence — and with it the deterministic
// span IDs — replays exactly under one seed.
//
// Span topology: a "fleet.run" span (child of the caller's Root, e.g. a
// campaign span) parents one "job" span per submission on its own
// "job:<name>" track; queue waits and backoffs are children on the job
// track, while each placement's "attempt" span moves to the instance's
// track with "provision"/"compute" child phases booked at settle time.

// fleetTimeBucketsS covers queue waits and attempt compute times:
// 1s to ~3 simulated days in powers of four.
var fleetTimeBucketsS = obs.ExpBuckets(1, 4, 10)

// Metric names published by the scheduler.
const (
	metricQueueWaitS       = "fleet_queue_wait_s"
	metricAttemptComputeS  = "fleet_attempt_compute_s"
	metricPlacementsTotal  = "fleet_placements_total"
	metricPreemptionsTotal = "fleet_preemptions_total"
	metricRetriesTotal     = "fleet_retries_total"
	metricCompletionsTotal = "fleet_completions_total"
	metricShedsTotal       = "fleet_sheds_total"
	metricDeferralsTotal   = "fleet_deferrals_total"
)

// obsSubmit opens the job's lifecycle span on its own track.
func (s *Scheduler) obsSubmit(parent *obs.Span, j *jobState) {
	j.span = s.Trace.StartChild(parent, "job", s.clock)
	j.span.SetTrack("job:" + j.Name)
	j.span.SetAttr("name", j.Name)
	j.span.SetAttr("priority", strconv.Itoa(j.Priority))
	j.span.SetAttr("ranks", strconv.Itoa(j.ranks))
	j.span.SetAttr("steps", strconv.Itoa(j.Steps))
}

// obsWaitStart opens a queue-wait phase: at submission, and again each
// time a parked job is promoted back into the queue.
func (s *Scheduler) obsWaitStart(j *jobState) {
	j.waitStart = s.clock
	j.waitSpan = s.Trace.StartChild(j.span, "queue-wait", s.clock)
}

// obsPlace closes the queue-wait phase and opens the attempt span on the
// instance's track.
func (s *Scheduler) obsPlace(p *pendingPlacement) {
	j, inst := p.job, p.inst
	if j.waitSpan != nil {
		j.waitSpan.SetAttr("instance", inst.id)
		j.waitSpan.End(s.clock)
		j.waitSpan = nil
	}
	s.Metrics.Histogram(metricQueueWaitS, fleetTimeBucketsS).Observe(s.clock - j.waitStart)
	s.Metrics.Counter(metricPlacementsTotal).Inc()

	p.span = s.Trace.StartChild(j.span, "attempt", s.clock)
	p.span.SetTrack(inst.id)
	p.span.SetAttr("job", j.Name)
	p.span.SetAttr("instance", inst.id)
	p.span.SetAttr("system", inst.sys.Abbrev)
	p.span.SetAttr("attempt", strconv.Itoa(j.attempts))
	p.span.SetAttr("steps_remaining", strconv.Itoa(j.remaining()))
}

// obsAttemptEnd books the attempt's provision/compute phases as child
// spans and closes the attempt span with its outcome.
func (s *Scheduler) obsAttemptEnd(p *pendingPlacement, att attempt, outcome string) {
	if p.span != nil {
		if att.provisionS > 0 {
			prov := s.Trace.StartChild(p.span, "provision", p.start)
			prov.End(p.start + att.provisionS)
		}
		if att.computeS > 0 {
			comp := s.Trace.StartChild(p.span, "compute", p.start+att.provisionS)
			comp.End(p.start + att.provisionS + att.computeS)
		}
		p.span.SetAttr("outcome", outcome)
		p.span.SetAttr("steps", strconv.Itoa(att.steps))
		p.span.SetAttrF("usd", att.usd)
		p.span.End(s.clock)
	}
	s.Metrics.Histogram(metricAttemptComputeS, fleetTimeBucketsS).Observe(att.computeS)
}

// obsBackoff records a preemption's requeue gap as an immediately closed
// span from now until the job's next eligibility.
func (s *Scheduler) obsBackoff(j *jobState) {
	s.Metrics.Counter(metricPreemptionsTotal).Inc()
	s.Metrics.Counter(metricRetriesTotal).Inc()
	b := s.Trace.StartChild(j.span, "backoff", s.clock)
	b.SetAttr("attempt", strconv.Itoa(j.attempts))
	b.End(j.eligibleAt)
}

// obsShed closes the job span as shed. An open queue-wait phase (a job
// shed while waiting) closes with it.
func (s *Scheduler) obsShed(j *jobState, reason string) {
	s.Metrics.Counter(metricShedsTotal).Inc()
	if j.waitSpan != nil {
		j.waitSpan.End(s.clock)
		j.waitSpan = nil
	}
	j.span.SetAttr("outcome", "shed")
	j.span.SetAttr("reason", reason)
	j.span.End(s.clock)
}

// obsComplete closes the job span and publishes the per-job telemetry
// gauges the monitor bridge reassembles into Samples (see
// monitor.Store.IngestSnapshot).
func (s *Scheduler) obsComplete(j *jobState) {
	s.Metrics.Counter(metricCompletionsTotal).Inc()
	j.span.SetAttr("outcome", "completed")
	j.span.SetAttrF("mflups", j.mflups())
	j.span.SetAttrF("usd", j.usd)
	j.span.End(s.clock)

	if s.Metrics == nil || j.mflups() <= 0 {
		return
	}
	model := ""
	if j.PredMFLUPS[j.system] > 0 {
		model = "direct"
	}
	waitS := 0.0
	if j.firstStart > 0 {
		waitS = j.firstStart // all jobs submit at t=0
	}
	labels := []obs.Label{
		obs.L(monitor.LabelWorkload, j.Name),
		obs.L(monitor.LabelSystem, j.system),
		obs.L(monitor.LabelRanks, strconv.Itoa(j.ranks)),
		obs.L(monitor.LabelModel, model),
		obs.L(monitor.LabelDoneT, fmt.Sprintf("%g", j.finishedAt)),
	}
	s.Metrics.Gauge(monitor.MetricJobMFLUPS, labels...).Set(j.mflups())
	s.Metrics.Gauge(monitor.MetricJobPredMFLUPS, labels...).Set(j.PredMFLUPS[j.system])
	s.Metrics.Gauge(monitor.MetricJobCostUSD, labels...).Set(j.usd)
	s.Metrics.Gauge(monitor.MetricJobWaitS, labels...).Set(waitS)
}
