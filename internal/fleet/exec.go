package fleet

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cloud"
	"repro/internal/simcloud"
	"repro/internal/units"
)

// assignment is the immutable payload the event loop hands a worker: one
// attempt at the job's remaining steps on the worker's instance. The
// worker reads the job's declaration only (never its bookkeeping), so the
// race detector sees a clean hand-off through the channel.
type assignment struct {
	job        *Job
	startSteps int     // checkpointed steps already done
	perStepS   float64 // model-predicted seconds per step on this system; 0 = unguarded
	tolerance  float64
	costCapUSD float64 // hard stop for this attempt's metered cost; 0 = uncapped
	hazard     float64 // spot preemptions per node-hour (0 on on-demand capacity)
	reply      chan attempt
}

// attempt reports one execution attempt back to the event loop.
type attempt struct {
	steps      int // steps completed this attempt
	computeS   float64
	provisionS float64
	usd        float64
	preempted  bool
	aborted    bool
	reason     string
	err        error
}

// attemptChunks is how many metered slices an attempt is split into; the
// guards and the spot hazard can only trip at slice boundaries, matching
// internal/cloud's polling scheduler.
const attemptChunks = 20

// worker is the long-lived goroutine of one simulated instance. It owns
// its RNG outright: the sequence of assignments an instance receives is
// fixed by the deterministic event loop, so the draws — provisioning
// jitter, run noise, preemption hazard — replay exactly under one seed.
func worker(inst *instance, rng *rand.Rand) {
	for a := range inst.cmd {
		a.reply <- runAttempt(a, inst, rng)
	}
}

// runAttempt executes the job's remaining steps on the instance in
// metered slices, with the model-driven time guard, the cost cap, and —
// on spot capacity — the reclaim hazard active at every slice boundary.
func runAttempt(a assignment, inst *instance, rng *rand.Rand) attempt {
	sys := inst.sys
	remaining := a.job.Steps - a.startSteps
	if remaining <= 0 {
		return attempt{err: fmt.Errorf("fleet: job %q has no steps left", a.job.Name)}
	}
	ranks := len(a.job.Workload.Tasks)
	if ranks == 0 || ranks > sys.MaxRanks() {
		return attempt{err: fmt.Errorf("fleet: job %q (%d ranks) cannot run on %s",
			a.job.Name, ranks, sys.Abbrev)}
	}

	res := attempt{provisionS: sys.ProvisionDelayS * (0.8 + 0.4*rng.Float64())}

	timeLimit := 0.0
	if a.perStepS > 0 {
		timeLimit = a.perStepS * float64(remaining) * (1 + a.tolerance)
	}
	rate := 1.0
	if inst.spot {
		rate = cloud.SpotDiscount
	}

	chunk := (remaining + attemptChunks - 1) / attemptChunks
	for res.steps < remaining {
		n := chunk
		if res.steps+n > remaining {
			n = remaining - res.steps
		}
		r, err := simcloud.Run(a.job.Workload, sys, n, rng)
		if err != nil {
			return attempt{err: err}
		}
		res.steps += n
		res.computeS += r.Seconds
		res.usd = sys.JobCost(ranks, res.computeS) * rate
		if a.hazard > 0 && inst.spot {
			nodeHours := float64(sys.Nodes(ranks)) * units.SecondsToHours(r.Seconds)
			if rng.Float64() < 1-math.Exp(-a.hazard*nodeHours) {
				res.preempted = true
				res.reason = "spot capacity reclaimed"
				break
			}
		}
		if res.steps >= remaining {
			break // finished: guards only interrupt remaining work
		}
		if timeLimit > 0 && res.computeS > timeLimit {
			res.aborted = true
			res.reason = fmt.Sprintf("time guard: %.1fs exceeds predicted %.1fs +%.0f%%",
				res.computeS, a.perStepS*float64(remaining), a.tolerance*100)
			break
		}
		if a.costCapUSD > 0 && res.usd >= a.costCapUSD {
			res.aborted = true
			res.reason = fmt.Sprintf("cost guard: $%.4f reached cap $%.4f", res.usd, a.costCapUSD)
			break
		}
	}
	return res
}
