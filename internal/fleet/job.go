package fleet

import (
	"container/heap"
	"math"

	"repro/internal/obs"
	"repro/internal/simcloud"
)

// Job is one unit of work submitted to the fleet: a decomposed workload
// plus its scheduling contract (priority, deadline) and guard rails.
type Job struct {
	Name     string
	Workload simcloud.Workload
	Steps    int

	// Priority orders the queue: higher-priority jobs place first.
	Priority int

	// DeadlineS is the absolute simulated-time deadline in seconds; 0
	// means none. Placement prefers the cheapest instance predicted to
	// meet it, falling back to the earliest predicted finish when no
	// instance can.
	DeadlineS float64

	// Tolerance widens the model-driven time guard, as in cloud.JobSpec
	// (0 inherits nothing — an unguarded job needs no tolerance).
	Tolerance float64

	// OnDemandOnly excludes spot instances, for jobs whose deadline
	// cannot absorb a preemption/requeue cycle.
	OnDemandOnly bool

	// Systems restricts placement to the listed system abbreviations;
	// empty allows every pool system large enough for the workload.
	Systems []string

	// MaxUSD caps this job's cumulative spend across attempts; 0 = none.
	MaxUSD float64

	// PerStep carries the performance model's predicted seconds-per-step
	// keyed by system abbreviation. Systems missing from the map fall
	// back to the scheduler's Predict function.
	PerStep map[string]float64

	// PredMFLUPS optionally carries predicted throughput per system for
	// telemetry export (monitor samples gain a Predicted field, feeding
	// the refinement loop).
	PredMFLUPS map[string]float64
}

// jobState wraps a Job with the scheduler's bookkeeping. All fields are
// owned by the main event loop.
type jobState struct {
	*Job
	seq   int // submission order, the final tie-breaker
	ranks int

	done       int // checkpointed steps completed across attempts
	attempts   int
	eligibleAt float64 // requeue backoff gate
	firstStart float64 // simulated time of first placement, -1 before
	finishedAt float64
	computeS   float64
	provisionS float64
	usd        float64

	system   string // system of the last placement
	deferred bool   // a deferred event has been logged since last state change
	finished bool
	shed     bool
	reason   string

	span      *obs.Span // lifecycle span, open from submission to completion/shed
	waitSpan  *obs.Span // current queue-wait phase, nil while placed or parked
	waitStart float64   // simulated start of the current queue wait
}

// completed reports whether the job finished all its steps.
func (j *jobState) completed() bool { return j.finished && !j.shed }

// remaining returns the steps not yet checkpointed.
func (j *jobState) remaining() int { return j.Steps - j.done }

// mflups returns the job's aggregate throughput over its compute time.
func (j *jobState) mflups() float64 {
	if j.computeS <= 0 {
		return 0
	}
	return float64(j.Workload.Points) * float64(j.done) / j.computeS / 1e6
}

// deadlineKey orders deadlines with 0 (none) sorting last.
func deadlineKey(d float64) float64 {
	if d <= 0 {
		return math.Inf(1)
	}
	return d
}

// jobQueue is the priority queue of runnable jobs: highest priority
// first, then earliest deadline, then submission order.
type jobQueue []*jobState

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, j int) bool {
	if q[i].Priority != q[j].Priority {
		return q[i].Priority > q[j].Priority
	}
	di, dj := deadlineKey(q[i].DeadlineS), deadlineKey(q[j].DeadlineS)
	if di != dj {
		return di < dj
	}
	return q[i].seq < q[j].seq
}
func (q jobQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

//lint:ignore typeassert container/heap hands Push exactly what the typed push below gave it; a panic here is a programming error worth being loud
func (q *jobQueue) Push(x any) { *q = append(*q, x.(*jobState)) }
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return x
}

func (q *jobQueue) push(j *jobState) { heap.Push(q, j) }

//lint:ignore typeassert the queue is package-local and only ever holds *jobState; the comma-ok form would hide corruption instead of crashing on it
func (q *jobQueue) pop() *jobState { return heap.Pop(q).(*jobState) }
