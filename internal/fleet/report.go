package fleet

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/monitor"
)

// JobReport is one job's final accounting.
type JobReport struct {
	Name     string
	System   string // system of the last placement, "-" if never placed
	Priority int
	Ranks    int

	Steps     int
	StepsDone int
	Attempts  int

	SubmitS float64 // all jobs submit at t=0 today; kept for generality
	StartS  float64 // first placement, -1 if never placed
	DoneS   float64 // completion or shed time
	WaitS   float64 // queue wait before first placement

	ComputeS   float64
	ProvisionS float64
	USD        float64
	MFLUPS     float64

	DeadlineS   float64
	DeadlineMet bool // vacuously true without a deadline; false when shed

	Completed  bool
	ShedReason string // empty when completed

	PredMFLUPS float64 // model prediction on the final system, 0 if unknown
}

// InstanceReport is one pool instance's utilization accounting.
type InstanceReport struct {
	ID     string
	System string
	Spot   bool
	Jobs   int // attempts hosted
	BusyS  float64
	USD    float64 // revenue metered on this instance
	// Utilization is busy time over the fleet makespan.
	Utilization float64
}

// Report is the outcome of one fleet run.
type Report struct {
	Events    []Event
	Jobs      []JobReport // submission order
	Instances []InstanceReport
	BudgetUSD float64
	SpentUSD  float64
	MakespanS float64
	Completed int
	Shed      int
}

// report assembles the final Report from the scheduler's state.
func (s *Scheduler) report() *Report {
	r := &Report{
		Events:    s.events,
		BudgetUSD: s.cfg.BudgetUSD,
		SpentUSD:  s.gov.spent,
		MakespanS: s.clock,
	}
	for _, j := range s.states {
		jr := JobReport{
			Name:       j.Name,
			System:     "-",
			Priority:   j.Priority,
			Ranks:      j.ranks,
			Steps:      j.Steps,
			StepsDone:  j.done,
			Attempts:   j.attempts,
			StartS:     j.firstStart,
			DoneS:      j.finishedAt,
			ComputeS:   j.computeS,
			ProvisionS: j.provisionS,
			USD:        j.usd,
			MFLUPS:     j.mflups(),
			DeadlineS:  j.DeadlineS,
			Completed:  j.completed(),
		}
		if j.system != "" {
			jr.System = j.system
			jr.PredMFLUPS = j.PredMFLUPS[j.system]
		}
		if j.firstStart >= 0 {
			jr.WaitS = j.firstStart - jr.SubmitS
		}
		jr.DeadlineMet = jr.Completed && (j.DeadlineS <= 0 || j.finishedAt <= j.DeadlineS)
		if j.shed {
			jr.ShedReason = j.reason
			r.Shed++
		} else {
			r.Completed++
		}
		r.Jobs = append(r.Jobs, jr)
	}
	for _, inst := range s.insts {
		ir := InstanceReport{
			ID:     inst.id,
			System: inst.sys.Abbrev,
			Spot:   inst.spot,
			Jobs:   inst.jobs,
			BusyS:  inst.busyS,
			USD:    inst.earnedUSD,
		}
		if s.clock > 0 {
			ir.Utilization = inst.busyS / s.clock
		}
		r.Instances = append(r.Instances, ir)
	}
	return r
}

// RenderEvents formats the structured event log.
func (r *Report) RenderEvents() string { return RenderEvents(r.Events) }

// RenderJobs formats the cost/deadline report, one row per job in
// submission order.
func (r *Report) RenderJobs() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %3s %-14s %9s %8s %10s %12s %10s %9s %-9s %s\n",
		"job", "pri", "system", "steps", "attempts", "wait_s", "done_t", "USD", "MFLUPS", "deadline", "status")
	for _, j := range r.Jobs {
		dl := "-"
		if j.DeadlineS > 0 {
			if j.DeadlineMet {
				dl = "met"
			} else {
				dl = "MISSED"
			}
		}
		status := "completed"
		if !j.Completed {
			status = "shed: " + j.ShedReason
		}
		fmt.Fprintf(&b, "%-22s %3d %-14s %4d/%4d %8d %10.1f %12.1f %10.4f %9.1f %-9s %s\n",
			j.Name, j.Priority, j.System, j.StepsDone, j.Steps, j.Attempts,
			j.WaitS, j.DoneS, j.USD, j.MFLUPS, dl, status)
	}
	fmt.Fprintf(&b, "completed %d/%d jobs, spend $%.4f of budget $%.4f, makespan %.1fs\n",
		r.Completed, len(r.Jobs), r.SpentUSD, r.BudgetUSD, r.MakespanS)
	return b.String()
}

// RenderUtilization formats per-instance occupancy over the makespan.
func (r *Report) RenderUtilization() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-14s %-5s %6s %12s %8s %12s\n",
		"instance", "system", "spot", "jobs", "busy_s", "util", "earned_USD")
	for _, i := range r.Instances {
		spot := "-"
		if i.Spot {
			spot = "spot"
		}
		fmt.Fprintf(&b, "%-18s %-14s %-5s %6d %12.1f %7.1f%% %12.4f\n",
			i.ID, i.System, spot, i.Jobs, i.BusyS, i.Utilization*100, i.USD)
	}
	return b.String()
}

// ExportMonitor appends a telemetry sample per completed job — stamped
// with its simulated completion time, carrying the model prediction when
// one drove the placement — into a monitor store, feeding the regression
// tracking and refinement loop the paper's Discussion sketches.
func (r *Report) ExportMonitor(st *monitor.Store) error {
	done := make([]JobReport, 0, len(r.Jobs))
	for _, j := range r.Jobs {
		if j.Completed && j.MFLUPS > 0 {
			done = append(done, j)
		}
	}
	sort.SliceStable(done, func(i, k int) bool { return done[i].DoneS < done[k].DoneS })
	for _, j := range done {
		model := ""
		if j.PredMFLUPS > 0 {
			model = "direct"
		}
		if err := st.Add(monitor.Sample{
			TimeS:     j.DoneS,
			Workload:  j.Name,
			System:    j.System,
			Model:     model,
			Ranks:     j.Ranks,
			MFLUPS:    j.MFLUPS,
			Predicted: j.PredMFLUPS,
			CostUSD:   j.USD,
			WaitS:     j.WaitS,
		}); err != nil {
			return fmt.Errorf("fleet: exporting telemetry for %q: %w", j.Name, err)
		}
	}
	return nil
}
