package fleet

import (
	"fmt"
	"strings"
)

// EventType labels one scheduler transition.
type EventType string

// The scheduler's event vocabulary.
const (
	EvSubmitted EventType = "submitted"
	EvPlaced    EventType = "placed"
	EvDeferred  EventType = "deferred" // budget governor: wait for reservations to settle
	EvPreempted EventType = "preempted"
	EvRequeued  EventType = "requeued"
	EvCompleted EventType = "completed"
	EvShed      EventType = "shed" // dropped: budget, retry cap, guard trip, or no instance
)

// Event is one structured, simulated-time-stamped log record.
type Event struct {
	TimeS    float64   `json:"t"`   // simulated seconds
	Seq      int       `json:"seq"` // total order, stable under equal timestamps
	Type     EventType `json:"type"`
	Job      string    `json:"job"`
	Instance string    `json:"instance,omitempty"`
	Detail   string    `json:"detail,omitempty"`
}

// String renders the event as one fixed-width log line. The format is
// fully determined by simulated quantities, which is what makes same-seed
// event logs byte-identical.
func (e Event) String() string {
	return fmt.Sprintf("t=%12.2f  #%03d  %-9s  %-22s  %-16s  %s",
		e.TimeS, e.Seq, e.Type, e.Job, e.Instance, e.Detail)
}

// RenderEvents formats the whole log.
func RenderEvents(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
