package fleet

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/decomp"
	"repro/internal/geometry"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/monitor"
	"repro/internal/simcloud"
)

// testWorkload builds one small decomposed cylinder, cached per rank
// count — workload construction is pure and read-only afterwards.
var (
	wlMu    sync.Mutex
	wlCache = map[int]simcloud.Workload{}
)

func testWorkload(t testing.TB, ranks int) simcloud.Workload {
	t.Helper()
	wlMu.Lock()
	defer wlMu.Unlock()
	if w, ok := wlCache[ranks]; ok {
		return w
	}
	dom, err := geometry.Cylinder(24, 6)
	if err != nil {
		t.Fatal(err)
	}
	s, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, PeriodicX: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := decomp.RCB(s, ranks, lbm.HarveyAccess())
	if err != nil {
		t.Fatal(err)
	}
	w := simcloud.FromPartition("cyl", s.N(), p)
	wlCache[ranks] = w
	return w
}

func namedJob(t testing.TB, name string, ranks, steps, priority int) *Job {
	w := testWorkload(t, ranks)
	w.Name = name
	return &Job{Name: name, Workload: w, Steps: steps, Priority: priority}
}

func onDemandPool(seed int64) Config {
	return Config{
		Seed:      seed,
		BudgetUSD: 100,
		Instances: []InstanceConfig{
			{System: "CSP-2 Small", Count: 2},
			{System: "CSP-1", Count: 1},
		},
	}
}

func countEvents(events []Event, typ EventType) int {
	n := 0
	for _, e := range events {
		if e.Type == typ {
			n++
		}
	}
	return n
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{Instances: []InstanceConfig{{System: "nope", Count: 1}}},
		{Instances: []InstanceConfig{{System: "CSP-1", Count: 0}}},
		{BudgetUSD: -1, Instances: []InstanceConfig{{System: "CSP-1", Count: 1}}},
		{MaxRetries: -1, Instances: []InstanceConfig{{System: "CSP-1", Count: 1}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, cfg)
		}
	}
	if err := onDemandPool(1).Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestFleetCompletesJobs(t *testing.T) {
	s, err := NewScheduler(onDemandPool(7))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*Job{
		namedJob(t, "a", 8, 200, 0),
		namedJob(t, "b", 8, 300, 1),
		namedJob(t, "c", 16, 250, 0),
		namedJob(t, "d", 8, 150, 2),
	}
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != 4 || r.Shed != 0 {
		t.Fatalf("completed %d, shed %d, want 4/0:\n%s", r.Completed, r.Shed, r.RenderJobs())
	}
	for _, j := range r.Jobs {
		if j.StepsDone != j.Steps {
			t.Errorf("job %s finished %d/%d steps", j.Name, j.StepsDone, j.Steps)
		}
		if j.USD <= 0 || j.MFLUPS <= 0 {
			t.Errorf("job %s has empty accounting: %+v", j.Name, j)
		}
	}
	var sum float64
	for _, j := range r.Jobs {
		sum += j.USD
	}
	if math.Abs(sum-r.SpentUSD) > 1e-9 {
		t.Errorf("job bills %v != fleet spend %v", sum, r.SpentUSD)
	}
	var earned float64
	for _, i := range r.Instances {
		earned += i.USD
		if i.Utilization < 0 || i.Utilization > 1 {
			t.Errorf("instance %s utilization %v outside [0,1]", i.ID, i.Utilization)
		}
	}
	if math.Abs(earned-r.SpentUSD) > 1e-9 {
		t.Errorf("instance revenue %v != fleet spend %v", earned, r.SpentUSD)
	}
	if got := countEvents(r.Events, EvCompleted); got != 4 {
		t.Errorf("%d completed events, want 4", got)
	}
	if r.MakespanS <= 0 {
		t.Error("zero makespan")
	}
}

func TestPriorityOrdersPlacement(t *testing.T) {
	cfg := Config{Seed: 3, Instances: []InstanceConfig{{System: "CSP-1", Count: 1}}}
	s, err := NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run([]*Job{
		namedJob(t, "low", 8, 100, 1),
		namedJob(t, "high", 8, 100, 5),
		namedJob(t, "mid", 8, 100, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, e := range r.Events {
		if e.Type == EvPlaced {
			order = append(order, e.Job)
		}
	}
	want := []string{"high", "mid", "low"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("placement order %v, want %v", order, want)
		}
	}
}

func TestDeadlineDrivesPlacement(t *testing.T) {
	// Hand the scheduler explicit model predictions: the "slow" system is
	// far cheaper, the "fast" one meets a tight deadline. Without a
	// deadline the job must go cheap; with one it must go fast.
	// With 8 ranks both systems use one node, so predicted cost is
	// perStep * steps * price: CSP-2 Small at 5 s/step costs $0.056
	// (slow, cheap at $0.40/h), CSP-2 EC at 1 s/step costs $0.108
	// (fast, dear at $3.89/h).
	cfg := Config{Seed: 5, Instances: []InstanceConfig{
		{System: "CSP-2 Small", Count: 1},
		{System: "CSP-2 EC", Count: 1},
	}}
	perStep := map[string]float64{"CSP-2 Small": 5.0, "CSP-2 EC": 1.0}

	run := func(deadline float64) string {
		s, err := NewScheduler(cfg)
		if err != nil {
			t.Fatal(err)
		}
		j := namedJob(t, "case", 8, 100, 0) // execution still uses real timings
		j.PerStep = perStep
		j.DeadlineS = deadline
		j.Tolerance = 1e6 // predictions here are placement fictions: disarm the guard
		r, err := s.Run([]*Job{j})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range r.Events {
			if e.Type == EvPlaced {
				return e.Instance
			}
		}
		t.Fatal("job never placed")
		return ""
	}

	// Unconstrained placement picks the cheapest prediction.
	if inst := run(0); !strings.HasPrefix(inst, "CSP-2 Small") {
		t.Errorf("unconstrained job placed on %s, want the cheap CSP-2 Small", inst)
	}
	// A 300s deadline excludes CSP-2 Small's predicted 570s (70s
	// provisioning + 500s compute); only CSP-2 EC (85 + 100 = 185s) fits.
	if inst := run(300); !strings.HasPrefix(inst, "CSP-2 EC") {
		t.Errorf("deadline job placed on %s, want the fast CSP-2 EC", inst)
	}
}

func TestBudgetGovernorSheds(t *testing.T) {
	cfg := onDemandPool(11)
	cfg.BudgetUSD = 1e-12 // far below any job's predicted cost
	s, err := NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run([]*Job{namedJob(t, "a", 8, 200, 0), namedJob(t, "b", 8, 200, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Shed != 2 || r.Completed != 0 {
		t.Fatalf("shed %d completed %d, want 2/0:\n%s", r.Shed, r.Completed, r.RenderJobs())
	}
	if r.SpentUSD != 0 {
		t.Errorf("shed-everything run spent $%v", r.SpentUSD)
	}
	if got := countEvents(r.Events, EvShed); got != 2 {
		t.Errorf("%d shed events, want 2", got)
	}
}

func TestBudgetGovernorDefersThenAdmits(t *testing.T) {
	// One instance, an over-predicting model, and a budget that fits the
	// second job only after the first settles below its reservation: the
	// scheduler must defer, then admit — not shed.
	cfg := Config{Seed: 13, Instances: []InstanceConfig{{System: "CSP-2 Small", Count: 2}}}
	sys, err := machine.ByAbbrev("CSP-2 Small")
	if err != nil {
		t.Fatal(err)
	}
	w := testWorkload(t, 8)
	base, err := NoiselessPredict(w, sys)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 200
	actual := sys.JobCost(8, base*steps)
	cfg.BudgetUSD = 2.6 * actual

	s, err := NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Predict = func(w simcloud.Workload, sys *machine.System) (float64, error) {
		return base * 1.5, nil // reservation overshoots the metered bill
	}
	r, err := s.Run([]*Job{
		namedJob(t, "first", 8, steps, 1),
		namedJob(t, "second", 8, steps, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if countEvents(r.Events, EvDeferred) == 0 {
		t.Fatalf("no deferred event:\n%s", RenderEvents(r.Events))
	}
	if r.Completed != 2 {
		t.Fatalf("completed %d, want 2 (deferred job must be admitted later):\n%s",
			r.Completed, RenderEvents(r.Events))
	}
	if r.SpentUSD > cfg.BudgetUSD {
		t.Errorf("spend $%v exceeds budget $%v", r.SpentUSD, cfg.BudgetUSD)
	}
}

func TestPreemptRequeueComplete(t *testing.T) {
	// A spot-heavy pool under a hazard calibrated so attempts are
	// sometimes — not always — reclaimed: the log must show at least one
	// full preempt -> requeue -> complete cycle.
	cfg := Config{
		Seed:                  2,
		BudgetUSD:             100,
		MaxRetries:            50,
		PreemptionPerNodeHour: 2e5,
		Instances: []InstanceConfig{
			{System: "CSP-2 Small", Count: 2, Spot: true},
		},
	}
	s, err := NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*Job{
		namedJob(t, "s1", 8, 400, 0),
		namedJob(t, "s2", 8, 400, 0),
		namedJob(t, "s3", 8, 400, 0),
		namedJob(t, "s4", 8, 400, 0),
	}
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	pre := countEvents(r.Events, EvPreempted)
	req := countEvents(r.Events, EvRequeued)
	if pre == 0 || req == 0 {
		t.Fatalf("no preemption cycle (preempted %d, requeued %d):\n%s",
			pre, req, RenderEvents(r.Events))
	}
	// At least one preempted job must have completed afterwards.
	recovered := false
	for _, j := range r.Jobs {
		if j.Completed && j.Attempts > 1 {
			recovered = true
			if j.StepsDone != j.Steps {
				t.Errorf("job %s completed with %d/%d steps", j.Name, j.StepsDone, j.Steps)
			}
		}
	}
	if !recovered {
		t.Fatalf("no job recovered from preemption:\n%s", r.RenderJobs())
	}
	// Requeued jobs wait out an exponential backoff: their requeue events
	// must carry a positive backoff and the job must restart later.
	for _, e := range r.Events {
		if e.Type == EvRequeued && !strings.Contains(e.Detail, "backoff") {
			t.Errorf("requeue event without backoff detail: %s", e)
		}
	}
}

func TestRetryCapSheds(t *testing.T) {
	cfg := Config{
		Seed:                  4,
		BudgetUSD:             1000,
		MaxRetries:            3,
		PreemptionPerNodeHour: 1e8, // every attempt reclaimed
		Instances:             []InstanceConfig{{System: "CSP-2 Small", Count: 1, Spot: true}},
	}
	s, err := NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run([]*Job{namedJob(t, "doomed", 8, 400, 0)})
	if err != nil {
		t.Fatal(err)
	}
	j := r.Jobs[0]
	if j.Completed {
		t.Fatal("job survived a certain hazard")
	}
	if j.Attempts != cfg.MaxRetries+1 {
		t.Errorf("attempts = %d, want %d", j.Attempts, cfg.MaxRetries+1)
	}
	if !strings.Contains(j.ShedReason, "retry cap") {
		t.Errorf("shed reason %q not the retry cap", j.ShedReason)
	}
	// Partial work is still billed.
	if j.USD <= 0 || r.SpentUSD <= 0 {
		t.Error("preempted attempts were not billed")
	}
}

func TestOversizedJobShedAtSubmit(t *testing.T) {
	cfg := Config{Seed: 1, Instances: []InstanceConfig{{System: "CSP-1", Count: 1}}}
	s, err := NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run([]*Job{namedJob(t, "big", 64, 100, 0)}) // CSP-1 has 48 cores
	if err != nil {
		t.Fatal(err)
	}
	if r.Shed != 1 || !strings.Contains(r.Jobs[0].ShedReason, "no pool instance") {
		t.Fatalf("oversized job not shed at submit: %+v", r.Jobs[0])
	}
}

func TestOnDemandOnlyAvoidsSpot(t *testing.T) {
	cfg := Config{
		Seed:                  9,
		PreemptionPerNodeHour: 1e8,
		Instances: []InstanceConfig{
			{System: "CSP-2 Small", Count: 1, Spot: true},
			{System: "CSP-1", Count: 1},
		},
	}
	s, err := NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j := namedJob(t, "critical", 8, 200, 0)
	j.OnDemandOnly = true
	r, err := s.Run([]*Job{j})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Jobs[0].Completed {
		t.Fatalf("on-demand-only job did not complete: %+v", r.Jobs[0])
	}
	for _, e := range r.Events {
		if e.Type == EvPlaced && !strings.HasPrefix(e.Instance, "CSP-1") {
			t.Errorf("on-demand-only job placed on %s", e.Instance)
		}
	}
}

func TestExportMonitor(t *testing.T) {
	s, err := NewScheduler(onDemandPool(21))
	if err != nil {
		t.Fatal(err)
	}
	a := namedJob(t, "a", 8, 200, 0)
	a.PredMFLUPS = map[string]float64{"CSP-2 Small": 123, "CSP-1": 99}
	r, err := s.Run([]*Job{a, namedJob(t, "b", 8, 250, 0)})
	if err != nil {
		t.Fatal(err)
	}
	var st monitor.Store
	if err := r.ExportMonitor(&st); err != nil {
		t.Fatal(err)
	}
	if st.Len() != r.Completed {
		t.Fatalf("exported %d samples for %d completed jobs", st.Len(), r.Completed)
	}
	// The job carrying predictions must surface them as refinement records.
	recs := st.Records()
	if len(recs) != 1 || recs[0].Workload != "a" || recs[0].Predicted <= 0 {
		t.Errorf("refinement records = %+v, want one for job a", recs)
	}
}

func TestRunValidation(t *testing.T) {
	s, err := NewScheduler(onDemandPool(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(nil); err == nil {
		t.Error("want error for empty job list")
	}
	s, _ = NewScheduler(onDemandPool(1))
	if _, err := s.Run([]*Job{namedJob(t, "x", 8, 0, 0)}); err == nil {
		t.Error("want error for zero steps")
	}
	s, _ = NewScheduler(onDemandPool(1))
	if _, err := s.Run([]*Job{namedJob(t, "x", 8, 10, 0), namedJob(t, "x", 8, 10, 0)}); err == nil {
		t.Error("want error for duplicate names")
	}
}
