package fleet

import (
	"testing"
)

// fullConfig exercises every scheduler path: mixed instance types, spot
// capacity with a live hazard, a binding budget, and mixed priorities.
func fullConfig(seed int64) Config {
	return Config{
		Seed:                  seed,
		BudgetUSD:             0.02,
		MaxRetries:            20,
		PreemptionPerNodeHour: 2e5,
		Instances: []InstanceConfig{
			{System: "CSP-2 Small", Count: 2, Spot: true},
			{System: "CSP-2 EC", Count: 1},
			{System: "CSP-1", Count: 1},
		},
	}
}

func fullJobs(t testing.TB) []*Job {
	var jobs []*Job
	for i, spec := range []struct {
		name     string
		ranks    int
		steps    int
		priority int
		deadline float64
	}{
		{"aorta-p3", 8, 300, 3, 0},
		{"cerebral-p1", 16, 200, 1, 0},
		{"cyl-dl", 8, 250, 2, 5000},
		{"batch-a", 8, 400, 0, 0},
		{"batch-b", 8, 350, 0, 0},
		{"batch-c", 16, 300, 1, 0},
	} {
		j := namedJob(t, spec.name, spec.ranks, spec.steps, spec.priority)
		j.DeadlineS = spec.deadline
		jobs = append(jobs, j)
		_ = i
	}
	return jobs
}

// TestSameSeedByteIdenticalEventLogs is the reproducibility contract:
// despite the real goroutine worker pool, two runs with one seed must
// produce byte-identical structured event logs (and identical reports).
func TestSameSeedByteIdenticalEventLogs(t *testing.T) {
	run := func() (*Report, string) {
		s, err := NewScheduler(fullConfig(17))
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(fullJobs(t))
		if err != nil {
			t.Fatal(err)
		}
		return r, r.RenderEvents()
	}
	r1, log1 := run()
	r2, log2 := run()
	if log1 != log2 {
		t.Fatalf("same-seed event logs differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", log1, log2)
	}
	if r1.RenderJobs() != r2.RenderJobs() {
		t.Error("same-seed job reports differ")
	}
	if r1.RenderUtilization() != r2.RenderUtilization() {
		t.Error("same-seed utilization reports differ")
	}
	if r1.SpentUSD != r2.SpentUSD || r1.MakespanS != r2.MakespanS {
		t.Errorf("same-seed totals differ: $%v/%v vs $%v/%v",
			r1.SpentUSD, r1.MakespanS, r2.SpentUSD, r2.MakespanS)
	}
}

// TestDifferentSeedDiverges guards against the RNG being wired to
// nothing: a different seed must change at least the noisy timings.
func TestDifferentSeedDiverges(t *testing.T) {
	run := func(seed int64) string {
		s, err := NewScheduler(fullConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(fullJobs(t))
		if err != nil {
			t.Fatal(err)
		}
		return r.RenderEvents()
	}
	if run(17) == run(18) {
		t.Error("seed does not influence the schedule")
	}
}

// TestWorkerPoolParallelism sanity-checks that a wide pool still yields
// one deterministic schedule when every instance is busy at once.
func TestWorkerPoolParallelism(t *testing.T) {
	cfg := Config{
		Seed: 23,
		Instances: []InstanceConfig{
			{System: "CSP-2 Small", Count: 8},
		},
	}
	var jobs []*Job
	for _, n := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"} {
		jobs = append(jobs, namedJob(t, "par-"+n, 8, 200, 0))
	}
	run := func() string {
		s, err := NewScheduler(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		if r.Completed != len(jobs) {
			t.Fatalf("completed %d/%d", r.Completed, len(jobs))
		}
		return r.RenderEvents()
	}
	if run() != run() {
		t.Error("wide pool schedule not deterministic")
	}
}
