// Package fleet is a discrete-event fleet scheduler: it dispatches a
// queue of simulation jobs across a configurable pool of simulated cloud
// instances (mixed system types, on-demand and spot capacity) under one
// campaign budget. It is the layer above internal/cloud's single-instance
// campaigns that the paper's end goal — a clinical simulation *service*
// with many patient cases in flight — requires.
//
// The scheduler combines:
//
//   - a priority/deadline-aware queue with model-driven placement: each
//     job is placed on the cheapest instance whose predicted completion
//     time (from the performance model's seconds-per-step) meets the
//     job's deadline;
//   - fault handling: a spot-preemption event requeues the job from its
//     checkpointed step count with exponential backoff plus jitter, up
//     to a per-job retry cap;
//   - a budget governor that admits, defers, or sheds jobs against the
//     remaining campaign budget, reserving the predicted cost of running
//     jobs so concurrent placements cannot jointly overcommit;
//   - a structured event log (submitted, placed, deferred, preempted,
//     requeued, completed, shed — all stamped with simulated time) whose
//     completion records export as telemetry samples into
//     internal/monitor;
//   - a real goroutine worker pool, one worker per simulated instance
//     with its own seeded RNG, so large campaigns parallelize on real
//     hardware while two runs with the same seed produce byte-identical
//     event logs.
package fleet

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/machine"
)

// InstanceConfig declares a slice of pool capacity: count instances of
// one catalog system, optionally on the spot market.
type InstanceConfig struct {
	System string `json:"system"`
	Count  int    `json:"count"`
	Spot   bool   `json:"spot,omitempty"`
}

// Config declares a fleet: its capacity, budget, and fault-handling
// policy. Zero-valued policy fields take the package defaults.
type Config struct {
	Seed      int64   `json:"seed"`
	BudgetUSD float64 `json:"budget_usd"` // 0 = unlimited

	// MaxRetries caps how many times one job is requeued after spot
	// preemptions before it is shed.
	MaxRetries int `json:"max_retries,omitempty"`

	// BackoffBaseS is the first requeue delay; each further retry doubles
	// it up to BackoffMaxS, and every delay is stretched by a uniform
	// jitter in [0, BackoffJitter].
	BackoffBaseS  float64 `json:"backoff_base_s,omitempty"`
	BackoffMaxS   float64 `json:"backoff_max_s,omitempty"`
	BackoffJitter float64 `json:"backoff_jitter,omitempty"`

	// PreemptionPerNodeHour is the spot-reclaim hazard rate applied to
	// jobs running on spot instances (expected preemptions per node-hour).
	PreemptionPerNodeHour float64 `json:"preemption_per_node_hour,omitempty"`

	Instances []InstanceConfig `json:"instances"`
}

// Policy defaults.
const (
	DefaultMaxRetries    = 5
	DefaultBackoffBaseS  = 30
	DefaultBackoffMaxS   = 960
	DefaultBackoffJitter = 0.25
)

// withDefaults returns the config with zero policy fields filled in.
func (c Config) withDefaults() Config {
	if c.MaxRetries == 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	//lint:ignore floateq 0 is the unset-field sentinel selecting the default
	if c.BackoffBaseS == 0 {
		c.BackoffBaseS = DefaultBackoffBaseS
	}
	//lint:ignore floateq 0 is the unset-field sentinel selecting the default
	if c.BackoffMaxS == 0 {
		c.BackoffMaxS = DefaultBackoffMaxS
	}
	if c.BackoffJitter == 0 {
		c.BackoffJitter = DefaultBackoffJitter
	}
	if c.PreemptionPerNodeHour == 0 {
		c.PreemptionPerNodeHour = cloud.SpotPreemptionPerHour
	}
	return c
}

// Validate checks the fleet declaration before any scheduling starts.
func (c Config) Validate() error {
	if len(c.Instances) == 0 {
		return fmt.Errorf("fleet: no instances declared")
	}
	for i, ic := range c.Instances {
		if ic.System == "" {
			return fmt.Errorf("fleet: instance group %d has no system", i)
		}
		if _, err := machine.ByAbbrev(ic.System); err != nil {
			return fmt.Errorf("fleet: instance group %d: %w", i, err)
		}
		if ic.Count < 1 {
			return fmt.Errorf("fleet: instance group %d (%s) needs count >= 1, got %d",
				i, ic.System, ic.Count)
		}
	}
	if c.BudgetUSD < 0 {
		return fmt.Errorf("fleet: negative budget %g", c.BudgetUSD)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("fleet: negative retry cap %d", c.MaxRetries)
	}
	if c.BackoffBaseS < 0 || c.BackoffMaxS < 0 || c.BackoffJitter < 0 {
		return fmt.Errorf("fleet: negative backoff policy")
	}
	if c.PreemptionPerNodeHour < 0 {
		return fmt.Errorf("fleet: negative preemption hazard %g", c.PreemptionPerNodeHour)
	}
	return nil
}

// instance is one simulated machine in the pool. The main event loop owns
// all fields; the instance's worker goroutine only ever sees immutable
// assignment payloads and its own RNG.
type instance struct {
	id    string
	index int
	sys   *machine.System
	spot  bool

	cmd chan assignment

	// Simulated-time occupancy.
	busy           bool
	freeAt         float64
	pendingAttempt attempt // collected outcome, processed when the clock reaches freeAt

	// Lifetime statistics.
	jobs      int
	busyS     float64
	earnedUSD float64
}

// buildInstances expands the instance groups into the concrete pool,
// in declaration order (which fixes worker RNG seeding).
func buildInstances(cfg Config) ([]*instance, error) {
	var out []*instance
	for _, ic := range cfg.Instances {
		sys, err := machine.ByAbbrev(ic.System)
		if err != nil {
			return nil, err
		}
		for k := 0; k < ic.Count; k++ {
			out = append(out, &instance{
				id:    fmt.Sprintf("%s#%d", ic.System, k),
				index: len(out),
				sys:   sys,
				spot:  ic.Spot,
			})
		}
	}
	return out, nil
}
