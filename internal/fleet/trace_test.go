package fleet

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// tracedRun executes the full mixed-pool schedule with observability
// wired and returns the Chrome trace-event export bytes.
func tracedRun(t testing.TB, seed int64) ([]byte, *obs.Tracer, *obs.Registry) {
	t.Helper()
	s, err := NewScheduler(fullConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	s.Trace = obs.NewTracer(seed)
	s.Metrics = obs.NewRegistry()
	if _, err := s.Run(fullJobs(t)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, s.Trace.Spans()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), s.Trace, s.Metrics
}

// TestSameSeedByteIdenticalChromeTrace extends the reproducibility
// contract to the observability layer: span IDs derive from
// (seed, start-sequence) and the Chrome export carries simulated time
// only, so two runs with one seed must serialize byte-identically —
// and match the checked-in golden file across machines and Go
// versions. Regenerate with `go test ./internal/fleet -update-golden`.
func TestSameSeedByteIdenticalChromeTrace(t *testing.T) {
	trace1, _, _ := tracedRun(t, 17)
	trace2, _, _ := tracedRun(t, 17)
	if !bytes.Equal(trace1, trace2) {
		t.Fatal("same-seed chrome traces differ between runs")
	}

	golden := filepath.Join("testdata", "trace_seed17_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, trace1, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	if !bytes.Equal(trace1, want) {
		t.Errorf("chrome trace deviates from golden file %s (re-run with -update-golden if the change is intentional)", golden)
	}
}

// TestTraceSchemaAndTopology asserts the structural contract a Perfetto
// load depends on: the export parses back, every job lifecycle appears
// as a span tree under fleet.run, and queue-wait/compute phases carry
// simulated durations.
func TestTraceSchemaAndTopology(t *testing.T) {
	trace, tracer, metrics := tracedRun(t, 17)

	// The exporter's own reader doubles as the schema validator: it
	// rejects X events missing ts, dur, name, or id args.
	spans, err := obs.ReadChromeTrace(bytes.NewReader(trace))
	if err != nil {
		t.Fatalf("exported trace fails schema validation: %v", err)
	}
	if len(spans) != tracer.Len() {
		t.Fatalf("round-trip lost spans: %d exported, %d recorded", len(spans), tracer.Len())
	}

	byID := map[string]obs.SpanRecord{}
	count := map[string]int{}
	for _, s := range spans {
		byID[s.ID] = s
		count[s.Name]++
		if !s.Ended {
			t.Errorf("span %s (%s) never ended", s.ID, s.Name)
		}
	}
	var root obs.SpanRecord
	for _, s := range spans {
		if s.Name == "fleet.run" {
			root = s
		}
	}
	if root.ID == "" {
		t.Fatal("no fleet.run root span")
	}
	if root.Parent != "" {
		t.Errorf("fleet.run has parent %s, want root", root.Parent)
	}
	njobs := len(fullJobs(t))
	if count["job"] != njobs {
		t.Errorf("%d job spans, want %d", count["job"], njobs)
	}
	for _, name := range []string{"queue-wait", "attempt", "compute"} {
		if count[name] == 0 {
			t.Errorf("no %q spans in trace", name)
		}
	}
	// Every job span parents to fleet.run; every attempt to a job.
	for _, s := range spans {
		switch s.Name {
		case "job":
			if s.Parent != root.ID {
				t.Errorf("job span %s parents to %s, not fleet.run", s.ID, s.Parent)
			}
		case "attempt":
			if byID[s.Parent].Name != "job" {
				t.Errorf("attempt span %s parents to %q, want a job span", s.ID, byID[s.Parent].Name)
			}
			if s.SimDurS() < 0 {
				t.Errorf("attempt span %s has negative duration", s.ID)
			}
		}
	}

	// The metrics side of the same run: placements counted, queue-wait
	// histogram populated.
	snap := metrics.Snapshot()
	found := map[string]bool{}
	for _, m := range snap {
		found[m.Name] = true
	}
	for _, name := range []string{"fleet_placements_total", "fleet_completions_total", "fleet_queue_wait_s", "fleet_attempt_compute_s"} {
		if !found[name] {
			t.Errorf("metric %s missing from snapshot", name)
		}
	}
}

// TestTraceSummaryReportsPhases pins the cmd/trace text view contract:
// the self-time summary must break time down by phase, including queue
// wait, compute, and the span hierarchy's own bookkeeping rows.
func TestTraceSummaryReportsPhases(t *testing.T) {
	_, tracer, metrics := tracedRun(t, 17)
	text := obs.RenderSummary(tracer.Spans(), metrics.Snapshot())
	for _, phrase := range []string{"fleet.run", "queue-wait", "compute", "span", "self_sim_s"} {
		if !bytes.Contains([]byte(text), []byte(phrase)) {
			t.Errorf("summary is missing %q:\n%s", phrase, text)
		}
	}
}
