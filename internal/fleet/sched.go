package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"repro/internal/cloud"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/simcloud"
)

// Predictor estimates a workload's seconds-per-step on a system. The
// scheduler consults it for pool systems a job carries no model
// prediction for.
type Predictor func(w simcloud.Workload, sys *machine.System) (float64, error)

// NoiselessPredict is the default predictor: one noiseless simulated
// timestep — the testbed's stand-in for a calibrated performance model.
func NoiselessPredict(w simcloud.Workload, sys *machine.System) (float64, error) {
	r, err := simcloud.Run(w, sys, 1, nil)
	if err != nil {
		return 0, err
	}
	return r.StepS, nil
}

// Scheduler runs job queues over the instance pool. Create one with
// NewScheduler; a Scheduler is single-use (Run consumes it).
type Scheduler struct {
	// Predict supplies seconds-per-step estimates for placement; defaults
	// to NoiselessPredict. Replace it to wire in perfmodel predictions.
	Predict Predictor

	// Trace and Metrics optionally attach observability; set them before
	// Run. Nil values disable instrumentation (every obs call site is a
	// nil-safe no-op). Root, when set, parents the fleet span — a
	// campaign roots its span here.
	Trace   *obs.Tracer
	Metrics *obs.Registry
	Root    *obs.Span

	cfg   Config
	insts []*instance
	gov   governor
	rng   *rand.Rand // event-loop RNG: backoff jitter only

	clock  float64
	events []Event
	eseq   int

	queue      jobQueue
	parked     []*jobState
	states     []*jobState
	unfinished int

	predCache map[string]float64
}

// NewScheduler validates the config and builds the instance pool.
func NewScheduler(cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	insts, err := buildInstances(cfg)
	if err != nil {
		return nil, err
	}
	return &Scheduler{
		Predict:   NoiselessPredict,
		cfg:       cfg,
		insts:     insts,
		gov:       governor{budget: cfg.BudgetUSD},
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		predCache: make(map[string]float64),
	}, nil
}

// log appends one event at the current simulated time.
func (s *Scheduler) log(t EventType, job, inst, detail string) {
	s.events = append(s.events, Event{
		TimeS: s.clock, Seq: s.eseq, Type: t, Job: job, Instance: inst, Detail: detail,
	})
	s.eseq++
}

// perStepFor returns the predicted seconds-per-step for a job on a
// system: the job's own model prediction when present, otherwise the
// scheduler's Predictor (cached per job/system pair).
func (s *Scheduler) perStepFor(j *jobState, sys *machine.System) float64 {
	if v, ok := j.PerStep[sys.Abbrev]; ok && v > 0 {
		return v
	}
	key := j.Name + "\x00" + sys.Abbrev
	if v, ok := s.predCache[key]; ok {
		return v
	}
	v := 0.0
	if s.Predict != nil {
		if p, err := s.Predict(j.Workload, sys); err == nil {
			v = p
		}
	}
	s.predCache[key] = v
	return v
}

// estimate is the model's view of one candidate placement.
type estimate struct {
	perStep  float64
	seconds  float64 // predicted compute time for the remaining steps
	finishAt float64 // predicted completion in simulated time
	usd      float64 // predicted metered cost at the instance's rate
	feasible bool    // meets the job's deadline (vacuously true without one)
}

// estimateOn prices the job's remaining steps on an instance.
func (s *Scheduler) estimateOn(j *jobState, inst *instance) estimate {
	e := estimate{perStep: s.perStepFor(j, inst.sys)}
	e.seconds = e.perStep * float64(j.remaining())
	e.finishAt = s.clock + inst.sys.ProvisionDelayS + e.seconds
	rate := 1.0
	if inst.spot {
		rate = cloud.SpotDiscount
	}
	if e.seconds > 0 {
		e.usd = inst.sys.JobCost(j.ranks, e.seconds) * rate
	}
	e.feasible = j.DeadlineS <= 0 || e.finishAt <= j.DeadlineS
	return e
}

// compatible reports whether the job may ever run on the instance.
func (j *jobState) compatible(inst *instance) bool {
	if j.ranks > inst.sys.MaxRanks() {
		return false
	}
	if j.OnDemandOnly && inst.spot {
		return false
	}
	if len(j.Systems) == 0 {
		return true
	}
	for _, want := range j.Systems {
		if want == inst.sys.Abbrev {
			return true
		}
	}
	return false
}

// choose picks the placement for a job: the cheapest idle instance whose
// predicted completion meets the deadline, falling back to the earliest
// predicted finish when no idle instance can. Ties break on instance
// index, keeping placement deterministic.
func (s *Scheduler) choose(j *jobState) (*instance, estimate, bool) {
	var best *instance
	var bestE estimate
	better := func(e estimate, inst *instance) bool {
		if best == nil {
			return true
		}
		if e.feasible != bestE.feasible {
			return e.feasible
		}
		if e.feasible {
			if e.usd != bestE.usd {
				return e.usd < bestE.usd
			}
		}
		if e.finishAt != bestE.finishAt {
			return e.finishAt < bestE.finishAt
		}
		return false
	}
	for _, inst := range s.insts {
		if inst.busy || !j.compatible(inst) {
			continue
		}
		e := s.estimateOn(j, inst)
		if better(e, inst) {
			best, bestE = inst, e
		}
	}
	return best, bestE, best != nil
}

// attemptCap bounds one attempt's metered cost: the uncommitted budget
// (plus this job's own reservation), the job's lifetime cap, and the
// predicted-cost overrun guard, whichever is tightest.
func (s *Scheduler) attemptCap(j *jobState, e estimate) float64 {
	cap := 0.0
	tighten := func(c float64) {
		if c > 0 && (cap <= 0 || c < cap) {
			cap = c
		}
	}
	if s.gov.budget > 0 {
		tighten(s.gov.free() + e.usd)
	}
	if j.MaxUSD > 0 {
		tighten(j.MaxUSD - j.usd)
	}
	if e.usd > 0 {
		tighten(e.usd * (1 + j.Tolerance) * 1.05)
	}
	return cap
}

// pendingPlacement records one dispatched assignment awaiting its
// outcome.
type pendingPlacement struct {
	inst  *instance
	job   *jobState
	est   estimate
	start float64
	reply chan attempt
	span  *obs.Span // attempt span, open until settle
}

// placeRound places queued, eligible jobs on idle instances at the
// current clock — in queue order (priority, deadline, submission) — and
// dispatches each to its instance's worker. All placements of a round
// execute concurrently on real goroutines.
func (s *Scheduler) placeRound() []pendingPlacement {
	var round []pendingPlacement
	var skipped []*jobState
	for s.queue.Len() > 0 {
		j := s.queue.pop()
		inst, est, ok := s.choose(j)
		if !ok {
			skipped = append(skipped, j)
			continue
		}
		switch s.gov.decide(est.usd) {
		case decideShed:
			s.shed(j, fmt.Sprintf("predicted cost $%.4f exceeds remaining budget $%.4f",
				est.usd, math.Max(0, s.gov.budget-s.gov.spent)))
		case decideDefer:
			if !j.deferred {
				s.log(EvDeferred, j.Name, "",
					fmt.Sprintf("predicted cost $%.4f awaits $%.4f in reservations",
						est.usd, s.gov.committed))
				s.Metrics.Counter(metricDeferralsTotal).Inc()
				j.deferred = true
			}
			skipped = append(skipped, j)
		case decideAdmit:
			round = append(round, s.place(j, inst, est))
		}
	}
	for _, j := range skipped {
		s.queue.push(j)
	}
	return round
}

// place commits the governor reservation, logs the event, and hands the
// attempt to the instance's worker.
func (s *Scheduler) place(j *jobState, inst *instance, est estimate) pendingPlacement {
	j.attempts++
	j.system = inst.sys.Abbrev
	j.deferred = false
	if j.firstStart < 0 {
		j.firstStart = s.clock
	}
	s.gov.commit(est.usd)
	inst.busy = true
	inst.jobs++
	s.log(EvPlaced, j.Name, inst.id,
		fmt.Sprintf("attempt %d, %d steps, est %.1fs $%.4f", j.attempts, j.remaining(), est.seconds, est.usd))

	rec := pendingPlacement{inst: inst, job: j, est: est, start: s.clock,
		reply: make(chan attempt, 1)}
	s.obsPlace(&rec)
	hazard := 0.0
	if inst.spot {
		hazard = s.cfg.PreemptionPerNodeHour
	}
	inst.cmd <- assignment{
		job:        j.Job,
		startSteps: j.done,
		perStepS:   est.perStep,
		tolerance:  j.Tolerance,
		costCapUSD: s.attemptCap(j, est),
		hazard:     hazard,
		reply:      rec.reply,
	}
	return rec
}

// shed finalizes a job without completing it.
func (s *Scheduler) shed(j *jobState, reason string) {
	j.finished = true
	j.shed = true
	j.reason = reason
	j.finishedAt = s.clock
	s.unfinished--
	s.log(EvShed, j.Name, "", reason)
	s.obsShed(j, reason)
}

// settle books a collected attempt when the simulated clock reaches the
// instance's release time.
func (s *Scheduler) settle(p pendingPlacement) {
	att := p.inst.pendingAttempt
	j := p.job
	s.gov.settle(p.est.usd, att.usd)
	p.inst.busy = false
	p.inst.busyS += att.provisionS + att.computeS
	p.inst.earnedUSD += att.usd
	j.done += att.steps
	j.usd += att.usd
	j.computeS += att.computeS
	j.provisionS += att.provisionS

	switch {
	case att.preempted && j.remaining() > 0:
		s.obsAttemptEnd(&p, att, "preempted")
		s.log(EvPreempted, j.Name, p.inst.id,
			fmt.Sprintf("%s after %d steps ($%.4f billed), %d/%d done",
				att.reason, att.steps, att.usd, j.done, j.Steps))
		retriesUsed := j.attempts - 1
		if retriesUsed >= s.cfg.MaxRetries {
			s.shed(j, fmt.Sprintf("retry cap %d exhausted at %d/%d steps",
				s.cfg.MaxRetries, j.done, j.Steps))
			return
		}
		backoff := s.cfg.BackoffBaseS * math.Pow(2, float64(retriesUsed))
		if backoff > s.cfg.BackoffMaxS {
			backoff = s.cfg.BackoffMaxS
		}
		backoff *= 1 + s.cfg.BackoffJitter*s.rng.Float64()
		j.eligibleAt = s.clock + backoff
		s.parked = append(s.parked, j)
		s.log(EvRequeued, j.Name, "",
			fmt.Sprintf("retry %d/%d, backoff %.1fs", retriesUsed+1, s.cfg.MaxRetries, backoff))
		s.obsBackoff(j)
	case att.aborted:
		s.obsAttemptEnd(&p, att, "aborted")
		s.shed(j, att.reason)
	default:
		s.obsAttemptEnd(&p, att, "completed")
		j.finished = true
		j.finishedAt = s.clock
		s.unfinished--
		s.log(EvCompleted, j.Name, p.inst.id,
			fmt.Sprintf("%d steps in %.1fs compute, $%.4f, %.1f MFLUPS",
				j.done, j.computeS, j.usd, j.mflups()))
		s.obsComplete(j)
	}
}

// Run schedules the jobs to completion and returns the report. The
// Scheduler must not be reused afterwards.
func (s *Scheduler) Run(jobs []*Job) (*Report, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("fleet: no jobs submitted")
	}
	seen := map[string]bool{}
	for i, j := range jobs {
		if j.Name == "" {
			return nil, fmt.Errorf("fleet: job %d has no name", i)
		}
		if seen[j.Name] {
			return nil, fmt.Errorf("fleet: duplicate job name %q", j.Name)
		}
		seen[j.Name] = true
		if j.Steps <= 0 {
			return nil, fmt.Errorf("fleet: job %q needs positive steps", j.Name)
		}
		if len(j.Workload.Tasks) == 0 {
			return nil, fmt.Errorf("fleet: job %q has an empty workload", j.Name)
		}
	}

	// The fleet span parents every job span and closes at the final
	// simulated clock, whatever path Run exits by.
	fleetSpan := s.Trace.StartChild(s.Root, "fleet.run", s.clock)
	fleetSpan.SetAttr("jobs", strconv.Itoa(len(jobs)))
	defer func() { fleetSpan.End(s.clock) }()

	// Start the worker pool: one goroutine per instance, each with its
	// own deterministic RNG stream derived from the fleet seed.
	for _, inst := range s.insts {
		inst.cmd = make(chan assignment)
		go worker(inst, rand.New(rand.NewSource(s.cfg.Seed+0x9E3779B9*int64(inst.index+1))))
	}
	defer func() {
		for _, inst := range s.insts {
			close(inst.cmd)
		}
	}()

	// Submission: log every job, shed the ones no pool instance can ever
	// host, queue the rest.
	for i, j := range jobs {
		st := &jobState{Job: j, seq: i, ranks: len(j.Workload.Tasks), firstStart: -1}
		s.states = append(s.states, st)
		s.unfinished++
		dl := "none"
		if j.DeadlineS > 0 {
			dl = fmt.Sprintf("%.0fs", j.DeadlineS)
		}
		s.log(EvSubmitted, j.Name, "",
			fmt.Sprintf("priority %d, %d ranks, %d steps, deadline %s", j.Priority, st.ranks, j.Steps, dl))
		s.obsSubmit(fleetSpan, st)
		ok := false
		for _, inst := range s.insts {
			if st.compatible(inst) {
				ok = true
				break
			}
		}
		if !ok {
			s.shed(st, fmt.Sprintf("no pool instance fits %d ranks under the job's constraints", st.ranks))
			continue
		}
		s.queue.push(st)
		s.obsWaitStart(st)
	}

	pending := map[int]pendingPlacement{} // keyed by instance index; never iterated
	for s.unfinished > 0 {
		// Promote parked jobs whose backoff has elapsed.
		var stillParked []*jobState
		for _, j := range s.parked {
			if j.eligibleAt <= s.clock {
				s.queue.push(j)
				s.obsWaitStart(j)
			} else {
				stillParked = append(stillParked, j)
			}
		}
		s.parked = stillParked

		// Place and dispatch; every placement of the round runs
		// concurrently on its instance's worker while we wait.
		round := s.placeRound()
		for _, rec := range round {
			att := <-rec.reply
			if att.err != nil {
				return nil, fmt.Errorf("fleet: job %q on %s: %w", rec.job.Name, rec.inst.id, att.err)
			}
			rec.inst.pendingAttempt = att
			rec.inst.freeAt = rec.start + att.provisionS + att.computeS
			pending[rec.inst.index] = rec
		}

		// Advance to the next simulated event: the earliest instance
		// release or parked-job eligibility.
		next := math.Inf(1)
		for _, inst := range s.insts {
			if inst.busy && inst.freeAt < next {
				next = inst.freeAt
			}
		}
		for _, j := range s.parked {
			if j.eligibleAt < next {
				next = j.eligibleAt
			}
		}
		if math.IsInf(next, 1) {
			if s.queue.Len() == 0 {
				break
			}
			// Nothing is running, nothing is parked, yet jobs remain
			// queued: no idle instance can take them and no reservation
			// will ever settle. Shed what is left.
			for s.queue.Len() > 0 {
				s.shed(s.queue.pop(), "unplaceable: no compatible instance available")
			}
			break
		}
		if next > s.clock {
			s.clock = next
		}

		// Settle every instance released by now, in pool order (equal
		// timestamps resolve deterministically).
		for _, inst := range s.insts {
			if inst.busy && inst.freeAt <= s.clock {
				rec := pending[inst.index]
				delete(pending, inst.index)
				s.settle(rec)
			}
		}
	}
	return s.report(), nil
}
