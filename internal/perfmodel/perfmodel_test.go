package perfmodel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/decomp"
	"repro/internal/geometry"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/mbench"
	"repro/internal/simcloud"
)

func cylinderSolver(t *testing.T) *lbm.Sparse {
	t.Helper()
	dom, err := geometry.Cylinder(48, 9)
	if err != nil {
		t.Fatal(err)
	}
	s, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, PeriodicX: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func characterizeNoiseless(t *testing.T, sys *machine.System) *Characterization {
	t.Helper()
	c, err := Characterize(sys, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCharacterizeRecoversSystem(t *testing.T) {
	sys := machine.NewCSP2()
	c := characterizeNoiseless(t, sys)
	if c.System != "CSP-2" || c.CoresPerNode != 36 {
		t.Fatalf("identity wrong: %+v", c)
	}
	if rel := math.Abs(c.Mem.A1-sys.Mem.A1) / sys.Mem.A1; rel > 0.05 {
		t.Errorf("a1 %v, want near %v", c.Mem.A1, sys.Mem.A1)
	}
	if rel := math.Abs(c.Inter.BandwidthMBps-sys.InterNode.BandwidthMBps) / sys.InterNode.BandwidthMBps; rel > 0.02 {
		t.Errorf("inter bandwidth %v, want near %v", c.Inter.BandwidthMBps, sys.InterNode.BandwidthMBps)
	}
	if c.FitQuality.MemR2 < 0.99 || c.FitQuality.InterR2 < 0.99 {
		t.Errorf("noiseless fits poor: %+v", c.FitQuality)
	}
	if len(c.RawInter) == 0 || len(c.RawIntra) == 0 {
		t.Error("raw PingPong sweeps missing")
	}
}

func TestCharacterizeNoisy(t *testing.T) {
	sys := machine.NewCSP2EC()
	c, err := Characterize(sys, 10, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(c.Inter.LatencyUS-sys.InterNode.LatencyUS) / sys.InterNode.LatencyUS; rel > 0.15 {
		t.Errorf("noisy latency fit %v too far from %v", c.Inter.LatencyUS, sys.InterNode.LatencyUS)
	}
}

func TestInterpolate(t *testing.T) {
	pts := []mbench.PingPongPoint{
		{Bytes: 0, TimeUS: 10},
		{Bytes: 100, TimeUS: 20},
		{Bytes: 200, TimeUS: 40},
	}
	cases := []struct{ m, want float64 }{
		{0, 10}, {50, 15}, {100, 20}, {150, 30}, {200, 40},
		{300, 60}, // extrapolation continues the last slope
		{-10, 10}, // clamp below
	}
	for _, c := range cases {
		if got := interpolateUS(pts, c.m); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("interpolateUS(%v) = %v, want %v", c.m, got, c.want)
		}
	}
	if got := interpolateUS(nil, 5); got != 0 {
		t.Errorf("interpolateUS(nil) = %v, want 0", got)
	}
}

func TestPredictDirectBasics(t *testing.T) {
	s := cylinderSolver(t)
	sys := machine.NewCSP2()
	c := characterizeNoiseless(t, sys)
	p, err := decomp.RCB(s, 36, lbm.HarveyAccess())
	if err != nil {
		t.Fatal(err)
	}
	w := simcloud.FromPartition("cyl", s.N(), p)
	pred, err := c.Predict(Request{Model: ModelDirect, Workload: &w})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Model != "direct" || pred.Ranks != 36 {
		t.Fatalf("identity wrong: %+v", pred)
	}
	if pred.SecondsPerStep <= 0 || pred.MFLUPS <= 0 {
		t.Fatalf("non-positive prediction: %+v", pred)
	}
	if pred.MemS <= 0 {
		t.Error("memory component missing")
	}
	// Single node: all comm is intra-node.
	if pred.InterS != 0 {
		t.Errorf("inter-node time %v on one node", pred.InterS)
	}
	if _, err := c.Predict(Request{Model: ModelDirect, Workload: &simcloud.Workload{}}); err == nil {
		t.Error("want error for empty workload")
	}
}

func TestPredictDirectTracksSimulatedTruth(t *testing.T) {
	// The headline claim: a model built only from microbenchmarks must
	// track the "measured" (simulated) performance within a modest factor
	// and reproduce the scaling shape.
	s := cylinderSolver(t)
	sys := machine.NewCSP2()
	c := characterizeNoiseless(t, sys)
	m := lbm.HarveyAccess()

	for _, ranks := range []int{4, 18, 36, 72, 144} {
		p, err := decomp.RCB(s, ranks, m)
		if err != nil {
			t.Fatal(err)
		}
		w := simcloud.FromPartition("cyl", s.N(), p)
		pred, err := c.Predict(Request{Model: ModelDirect, Workload: &w})
		if err != nil {
			t.Fatal(err)
		}
		actual, err := simcloud.Run(w, sys, 10, nil)
		if err != nil {
			t.Fatal(err)
		}
		ratio := pred.MFLUPS / actual.MFLUPS
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("ranks=%d: prediction %v vs simulated %v (ratio %v)", ranks, pred.MFLUPS, actual.MFLUPS, ratio)
		}
		// The simulated truth may legitimately collapse at high rank
		// counts (latency-dominated strong-scaling limit, the paper's
		// "accelerated drop"); the model must track it either way.
	}
}

func TestCalibrateGeneral(t *testing.T) {
	s := cylinderSolver(t)
	g, err := CalibrateGeneral(s, lbm.HarveyAccess(), []int{1, 2, 4, 8, 16, 32, 64}, 36)
	if err != nil {
		t.Fatal(err)
	}
	if g.Z.C1 < 0 {
		t.Errorf("z-law c1 %v negative after clamp", g.Z.C1)
	}
	if g.Z.Eval(1) != 1 {
		t.Error("z(1) != 1")
	}
	if g.PointCommBytes <= 0 {
		t.Errorf("PointCommBytes %v not positive", g.PointCommBytes)
	}
	if g.Events.K1 <= 0 || g.Events.K2 <= 0 {
		t.Errorf("event law degenerate: %+v", g.Events)
	}
}

func TestCalibrateGeneralValidation(t *testing.T) {
	s := cylinderSolver(t)
	if _, err := CalibrateGeneral(s, lbm.HarveyAccess(), []int{1, 2}, 36); err == nil {
		t.Error("want error for too few task counts")
	}
	if _, err := CalibrateGeneral(s, lbm.HarveyAccess(), []int{1, 2, 4}, 0); err == nil {
		t.Error("want error for bad coresPerNode")
	}
}

func TestPredictGeneralBasics(t *testing.T) {
	s := cylinderSolver(t)
	sys := machine.NewCSP2()
	c := characterizeNoiseless(t, sys)
	g, err := CalibrateGeneral(s, lbm.HarveyAccess(), []int{1, 2, 4, 8, 16, 32, 64}, sys.CoresPerNode)
	if err != nil {
		t.Fatal(err)
	}
	ws := WorkloadSummary{Name: "cyl", Points: s.N(), BytesSerial: s.BytesSerial(lbm.HarveyAccess())}

	serial, err := c.Predict(Request{Model: ModelGeneral, Summary: &ws, General: g, Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if serial.CommBandwidthS != 0 || serial.CommLatencyS != 0 {
		t.Error("serial prediction has communication time")
	}
	p36, err := c.Predict(Request{Model: ModelGeneral, Summary: &ws, General: g, Ranks: 36})
	if err != nil {
		t.Fatal(err)
	}
	if p36.MFLUPS <= serial.MFLUPS {
		t.Errorf("no predicted speedup: %v vs %v", p36.MFLUPS, serial.MFLUPS)
	}
	// Extrapolation beyond the instance size must work (Fig. 11 style).
	p2048, err := c.Predict(Request{Model: ModelGeneral, Summary: &ws, General: g, Ranks: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if p2048.MFLUPS <= 0 {
		t.Error("extrapolated prediction not positive")
	}

	if _, err := c.Predict(Request{Model: ModelGeneral, Summary: &ws, General: g, Ranks: 0}); err == nil {
		t.Error("want error for zero ranks")
	}
	if _, err := c.Predict(Request{Model: ModelGeneral, Summary: &WorkloadSummary{}, General: g, Ranks: 4}); err == nil {
		t.Error("want error for empty summary")
	}
}

func TestGeneralTracksDirect(t *testing.T) {
	// Figures 7-8: the generalized prediction drifts from the direct one
	// but stays in its neighborhood.
	s := cylinderSolver(t)
	sys := machine.NewCSP2()
	c := characterizeNoiseless(t, sys)
	m := lbm.HarveyAccess()
	g, err := CalibrateGeneral(s, m, []int{1, 2, 4, 8, 16, 32, 64, 128}, sys.CoresPerNode)
	if err != nil {
		t.Fatal(err)
	}
	ws := WorkloadSummary{Name: "cyl", Points: s.N(), BytesSerial: s.BytesSerial(m)}
	for _, ranks := range []int{18, 36, 72, 144} {
		p, err := decomp.RCB(s, ranks, m)
		if err != nil {
			t.Fatal(err)
		}
		w := simcloud.FromPartition("cyl", s.N(), p)
		direct, err := c.Predict(Request{Model: ModelDirect, Workload: &w})
		if err != nil {
			t.Fatal(err)
		}
		general, err := c.Predict(Request{Model: ModelGeneral, Summary: &ws, General: g, Ranks: ranks})
		if err != nil {
			t.Fatal(err)
		}
		ratio := general.MFLUPS / direct.MFLUPS
		if ratio < 0.3 || ratio > 3 {
			t.Errorf("ranks=%d: generalized %v vs direct %v (ratio %v)", ranks, general.MFLUPS, direct.MFLUPS, ratio)
		}
	}
}

func TestEventsLawEdgeCases(t *testing.T) {
	e := EventsLaw{K1: 1, K2: 0.5}
	if got := e.Eval(4, 4); got != 0 {
		t.Errorf("Eval(n==nn) = %v, want 0", got)
	}
	if got := e.Eval(2, 4); got != 0 {
		t.Errorf("Eval(n<nn) = %v, want 0", got)
	}
	if got := e.Eval(64, 2); got <= 0 {
		t.Errorf("Eval(64,2) = %v, want positive", got)
	}
}

func TestFitEventsRoundTrip(t *testing.T) {
	truth := EventsLaw{K1: 2.0, K2: 0.8}
	var ns, nns, evs []float64
	for _, n := range []float64{2, 4, 8, 16, 32, 64, 128, 256} {
		nn := math.Ceil(n / 36)
		ns = append(ns, n)
		nns = append(nns, nn)
		evs = append(evs, truth.Eval(n, nn))
	}
	got, err := FitEvents(ns, nns, evs)
	if err != nil {
		t.Fatal(err)
	}
	if got.R2 < 0.98 {
		t.Errorf("round-trip fit R² = %v; got %+v want %+v", got.R2, got, truth)
	}
}

func TestFitEventsValidation(t *testing.T) {
	if _, err := FitEvents([]float64{1}, []float64{1}, []float64{1}); err == nil {
		t.Error("want error for single point")
	}
	if _, err := FitEvents([]float64{1, 2}, []float64{1}, []float64{1, 2}); err == nil {
		t.Error("want error for mismatched lengths")
	}
}
