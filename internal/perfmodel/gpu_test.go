package perfmodel

import (
	"testing"

	"repro/internal/decomp"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/simcloud"
)

func TestCharacterizeGPUIncludesPCIe(t *testing.T) {
	sys := machine.NewCSP2GPU()
	c := characterizeNoiseless(t, sys)
	if c.PCIe == nil || len(c.RawPCIe) == 0 {
		t.Fatal("GPU characterization missing PCIe link")
	}
	if rel := c.PCIe.BandwidthMBps / sys.GPU.PCIe.BandwidthMBps; rel < 0.98 || rel > 1.02 {
		t.Errorf("PCIe bandwidth fit %v, want near %v", c.PCIe.BandwidthMBps, sys.GPU.PCIe.BandwidthMBps)
	}
	// CPU systems have no PCIe characterization.
	cpu := characterizeNoiseless(t, machine.NewCSP2())
	if cpu.PCIe != nil {
		t.Error("CPU characterization grew a PCIe link")
	}
}

func TestGPUDirectModelHasCPUGPUTerm(t *testing.T) {
	s := cylinderSolver(t)
	sys := machine.NewCSP2GPU()
	c := characterizeNoiseless(t, sys)
	p, err := decomp.RCB(s, 16, lbm.HarveyAccess())
	if err != nil {
		t.Fatal(err)
	}
	w := simcloud.FromPartition("cyl", s.N(), p)
	pred, err := c.Predict(Request{Model: ModelDirect, Workload: &w})
	if err != nil {
		t.Fatal(err)
	}
	if pred.CPUGPUs <= 0 {
		t.Error("GPU prediction missing the t_CPU-GPU term")
	}
	// The term is part of the total.
	if pred.SecondsPerStep < pred.MemS+pred.CPUGPUs {
		t.Error("t_CPU-GPU not included in the step time")
	}

	// CPU prediction has no such term.
	cpuChar := characterizeNoiseless(t, machine.NewCSP2())
	p2, err := decomp.RCB(s, 16, lbm.HarveyAccess())
	if err != nil {
		t.Fatal(err)
	}
	w2 := simcloud.FromPartition("cyl", s.N(), p2)
	cpuPred, err := cpuChar.Predict(Request{Model: ModelDirect, Workload: &w2})
	if err != nil {
		t.Fatal(err)
	}
	if cpuPred.CPUGPUs != 0 {
		t.Error("CPU prediction grew a t_CPU-GPU term")
	}
}

func TestGPUModelTracksSimulatedTruth(t *testing.T) {
	s := cylinderSolver(t)
	sys := machine.NewCSP2GPU()
	c := characterizeNoiseless(t, sys)
	for _, ranks := range []int{4, 8, 16} {
		p, err := decomp.RCB(s, ranks, lbm.HarveyAccess())
		if err != nil {
			t.Fatal(err)
		}
		w := simcloud.FromPartition("cyl", s.N(), p)
		pred, err := c.Predict(Request{Model: ModelDirect, Workload: &w})
		if err != nil {
			t.Fatal(err)
		}
		actual, err := simcloud.Run(w, sys, 10, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ratio := pred.MFLUPS / actual.MFLUPS; ratio < 0.5 || ratio > 2 {
			t.Errorf("ranks=%d: GPU prediction %v vs simulated %v", ranks, pred.MFLUPS, actual.MFLUPS)
		}
	}
}

func TestGPUNodeBeatsCPUNode(t *testing.T) {
	// The whole point of GPUs for LBM: one GPU node (4 ranks, one per
	// device) outruns one fully loaded CPU node (36 ranks) on memory-
	// bound work. At equal *rank* counts the GPU instance can lose —
	// 16 GPU ranks span 4 nodes of interconnect latency while 16 CPU
	// ranks share one node — which is exactly the placement arithmetic
	// the dashboard exists to expose.
	s := cylinderSolver(t)
	m := lbm.HarveyAccess()
	pGPU, err := decomp.RCB(s, 4, m)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := simcloud.Run(simcloud.FromPartition("cyl", s.N(), pGPU), machine.NewCSP2GPU(), 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	pCPU, err := decomp.RCB(s, 36, m)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := simcloud.Run(simcloud.FromPartition("cyl", s.N(), pCPU), machine.NewCSP2(), 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gpu.MFLUPS <= cpu.MFLUPS {
		t.Errorf("GPU node (%v) not above CPU node (%v)", gpu.MFLUPS, cpu.MFLUPS)
	}
	// And the simulated GPU timing carries the staging term.
	if gpu.MaxTiming().CPUGPUs <= 0 {
		t.Error("simulated GPU run missing CPU-GPU staging time")
	}
}

func TestGeneralModelGPUHasPCIeTerm(t *testing.T) {
	s := cylinderSolver(t)
	sys := machine.NewCSP2GPU()
	c := characterizeNoiseless(t, sys)
	g, err := CalibrateGeneral(s, lbm.HarveyAccess(), []int{1, 2, 4, 8, 16}, sys.CoresPerNode)
	if err != nil {
		t.Fatal(err)
	}
	ws := WorkloadSummary{Name: "cyl", Points: s.N(), BytesSerial: s.BytesSerial(lbm.HarveyAccess())}
	pred, err := c.Predict(Request{Model: ModelGeneral, Summary: &ws, General: g, Ranks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if pred.CPUGPUs <= 0 {
		t.Error("generalized GPU prediction missing the t_CPU-GPU term")
	}
	serial, err := c.Predict(Request{Model: ModelGeneral, Summary: &ws, General: g, Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if serial.CPUGPUs != 0 {
		t.Error("serial prediction should have no staging term")
	}
	// CPU systems never get one.
	cpu := characterizeNoiseless(t, machine.NewCSP2())
	gc, err := CalibrateGeneral(s, lbm.HarveyAccess(), []int{1, 2, 4, 8, 16, 32, 64, 128}, 36)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := cpu.Predict(Request{Model: ModelGeneral, Summary: &ws, General: gc, Ranks: 72})
	if err != nil {
		t.Fatal(err)
	}
	if cp.CPUGPUs != 0 {
		t.Error("CPU generalized prediction grew a staging term")
	}
}
