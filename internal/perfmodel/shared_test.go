package perfmodel

import (
	"testing"

	"repro/internal/decomp"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/simcloud"
)

func sharedFixture(t *testing.T) (*Characterization, simcloud.Workload, *machine.System) {
	t.Helper()
	s := cylinderSolver(t)
	sys := machine.NewCSP2()
	c := characterizeNoiseless(t, sys)
	p, err := decomp.RCB(s, 9, lbm.HarveyAccess()) // quarter of a node
	if err != nil {
		t.Fatal(err)
	}
	return c, simcloud.FromPartition("cyl", s.N(), p), sys
}

func TestSharedNodeSlowsPrediction(t *testing.T) {
	c, w, _ := sharedFixture(t)
	exclusive, err := c.Predict(Request{Model: ModelDirect, Workload: &w, Occupancy: 0})
	if err != nil {
		t.Fatal(err)
	}
	half, err := c.Predict(Request{Model: ModelDirect, Workload: &w, Occupancy: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.Predict(Request{Model: ModelDirect, Workload: &w, Occupancy: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !(exclusive.MFLUPS > half.MFLUPS && half.MFLUPS > full.MFLUPS) {
		t.Errorf("occupancy must monotonically slow predictions: %v, %v, %v",
			exclusive.MFLUPS, half.MFLUPS, full.MFLUPS)
	}
	// With 9 of 36 cores and full co-tenancy, our bandwidth share drops
	// substantially on a saturated node.
	if full.MFLUPS > 0.7*exclusive.MFLUPS {
		t.Errorf("full occupancy only cost %v -> %v", exclusive.MFLUPS, full.MFLUPS)
	}
}

func TestSharedNodeMatchesSimulatedTruth(t *testing.T) {
	c, w, sys := sharedFixture(t)
	for _, occ := range []float64{0, 0.5, 1} {
		pred, err := c.Predict(Request{Model: ModelDirect, Workload: &w, Occupancy: occ})
		if err != nil {
			t.Fatal(err)
		}
		actual, err := simcloud.RunOpts(w, sys, 10, nil, simcloud.Options{SharedOccupancy: occ})
		if err != nil {
			t.Fatal(err)
		}
		if ratio := pred.MFLUPS / actual.MFLUPS; ratio < 0.5 || ratio > 2 {
			t.Errorf("occupancy %v: prediction %v vs simulated %v", occ, pred.MFLUPS, actual.MFLUPS)
		}
	}
}

func TestSharedValidation(t *testing.T) {
	c, w, sys := sharedFixture(t)
	if _, err := c.Predict(Request{Model: ModelDirect, Workload: &w, Occupancy: -0.1}); err == nil {
		t.Error("want error for negative occupancy")
	}
	if _, err := c.Predict(Request{Model: ModelDirect, Workload: &w, Occupancy: 1.1}); err == nil {
		t.Error("want error for occupancy above 1")
	}
	if _, err := simcloud.RunOpts(w, sys, 10, nil, simcloud.Options{SharedOccupancy: 2}); err == nil {
		t.Error("want simcloud error for bad occupancy")
	}
}

func TestExclusiveSharedEquivalence(t *testing.T) {
	// Occupancy 0 must be exactly the node-exclusive prediction and run.
	c, w, sys := sharedFixture(t)
	a, err := c.Predict(Request{Model: ModelDirect, Workload: &w})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Predict(Request{Model: ModelDirect, Workload: &w, Occupancy: 0})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("PredictDirect != PredictDirectShared(0)")
	}
	r1, err := simcloud.Run(w, sys, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := simcloud.RunOpts(w, sys, 10, nil, simcloud.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Seconds != r2.Seconds {
		t.Error("Run != RunOpts with defaults")
	}
}
