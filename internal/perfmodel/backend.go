package perfmodel

import (
	"errors"
	"fmt"
)

// ErrNoData reports that the backend a request explicitly asked for does
// not have the data to serve it — e.g. a Tier 2 lookup on a system the
// tables do not cover, or a Tier 1 request without a characterization.
// TierAuto never returns it (Tier 0 covers everything); serving layers
// map it to a client error rather than a server fault.
var ErrNoData = errors.New("perfmodel: no data for requested tier")

// Backend serves predictions at one accuracy tier. Implementations are
// PhysicsBackend (Tier 0), CalibratedBackend (Tier 1) and LookupBackend
// (Tier 2); a Predictor composes them behind the tier selector.
type Backend interface {
	// Tier returns the backend's tier name (Tier0Physics, ...).
	Tier() string
	// Covers reports whether the backend's data reaches the request —
	// the availability test behind TierAuto's 2 → 1 → 0 fallback.
	Covers(req Request) bool
	// Predict evaluates the request. The returned Prediction carries
	// the backend's tier and provenance (confidence band, table
	// distance or fit residual, extrapolation flag).
	Predict(req Request) (Prediction, error)
}

// Predictor is the tiered prediction front door for one system: it owns
// one backend per configured tier and routes each Request by its Tier
// field. This is the decoupling the serving stack needed — calibration
// state (Characterization) is just one backend among three, so a cache
// or a policy search can hold exactly the tiers it has data for.
type Predictor struct {
	backends map[string]Backend
}

// NewPredictor composes backends into a tiered predictor. Each tier may
// appear at most once; at least one backend is required.
func NewPredictor(backends ...Backend) (*Predictor, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("perfmodel: predictor needs at least one backend")
	}
	p := &Predictor{backends: make(map[string]Backend, len(backends))}
	for _, b := range backends {
		t := b.Tier()
		if err := checkTier(t); err != nil || t == TierAuto || t == "" {
			return nil, fmt.Errorf("perfmodel: backend reports invalid tier %q", t)
		}
		if _, dup := p.backends[t]; dup {
			return nil, fmt.Errorf("perfmodel: duplicate backend for tier %q", t)
		}
		p.backends[t] = b
	}
	return p, nil
}

// Tiers returns the configured tier names in fallback order (2, 1, 0).
func (p *Predictor) Tiers() []string {
	var out []string
	for _, t := range fallbackOrder {
		if _, ok := p.backends[t]; ok {
			out = append(out, t)
		}
	}
	return out
}

// fallbackOrder is TierAuto's resolution sequence: most-accurate first.
var fallbackOrder = []string{Tier2Measured, Tier1Calibrated, Tier0Physics}

// Resolve returns the backend that would serve a request at the given
// tier ("" and TierAuto both fall back by availability). An explicit
// tier whose backend is missing or does not cover the request resolves
// to an ErrNoData-wrapped error.
func (p *Predictor) Resolve(tier string, req Request) (Backend, error) {
	if err := checkTier(tier); err != nil {
		return nil, err
	}
	if tier == "" || tier == TierAuto {
		for _, t := range fallbackOrder {
			if b, ok := p.backends[t]; ok && b.Covers(req) {
				return b, nil
			}
		}
		return nil, fmt.Errorf("%w: no configured backend covers the request", ErrNoData)
	}
	b, ok := p.backends[tier]
	if !ok {
		return nil, fmt.Errorf("%w: tier %q has no backend configured", ErrNoData, tier)
	}
	if !b.Covers(req) {
		return nil, fmt.Errorf("%w: tier %q does not cover the request", ErrNoData, tier)
	}
	return b, nil
}

// Predict routes the request to its tier's backend. Request.Tier empty
// or TierAuto selects the most accurate covering backend (2 → 1 → 0).
func (p *Predictor) Predict(req Request) (Prediction, error) {
	b, err := p.Resolve(req.Tier, req)
	if err != nil {
		return Prediction{}, err
	}
	return b.Predict(req)
}
