package perfmodel

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestRefinerCorrectionRemovesConsistentBias(t *testing.T) {
	// The paper observed consistent overprediction; the refiner must learn
	// the bias and cancel it.
	var r Refiner
	const bias = 1.3 // model predicts 30% high
	for i, measured := range []float64{40, 55, 70, 90} {
		err := r.Add(Record{
			Workload: "aorta", System: "CSP-2", Model: "direct",
			Ranks: 16 << i, Predicted: measured * bias, Measured: measured,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	c := r.Correction("CSP-2", "direct", 0)
	if math.Abs(c-1/bias) > 1e-9 {
		t.Errorf("correction = %v, want %v", c, 1/bias)
	}
	before, after, n := r.MAPE("CSP-2", "direct")
	if n != 4 {
		t.Fatalf("MAPE count %d, want 4", n)
	}
	if before < 0.29 || before > 0.31 {
		t.Errorf("MAPE before = %v, want ~0.30", before)
	}
	if after > 1e-9 {
		t.Errorf("MAPE after = %v, want ~0", after)
	}
}

func TestRefinerFallbacks(t *testing.T) {
	var r Refiner
	if c := r.Correction("CSP-2", "direct", 0); c != 1 {
		t.Errorf("empty refiner correction = %v, want 1", c)
	}
	if err := r.Add(Record{System: "TRC", Model: "direct", Predicted: 100, Measured: 80}); err != nil {
		t.Fatal(err)
	}
	// Unknown system falls back to all records of the model.
	if c := r.Correction("CSP-1", "direct", 0); math.Abs(c-0.8) > 1e-12 {
		t.Errorf("fallback correction = %v, want 0.8", c)
	}
	// Unknown model falls back to 1.
	if c := r.Correction("CSP-1", "generalized", 0); c != 1 {
		t.Errorf("unmatched model correction = %v, want 1", c)
	}
}

func TestRefinerRejectsBadRecords(t *testing.T) {
	var r Refiner
	if err := r.Add(Record{Predicted: 0, Measured: 10}); err == nil {
		t.Error("want error for zero prediction")
	}
	if err := r.Add(Record{Predicted: 10, Measured: -1}); err == nil {
		t.Error("want error for negative measurement")
	}
	if r.Len() != 0 {
		t.Error("bad records were stored")
	}
}

func TestRefineAppliesCorrection(t *testing.T) {
	var r Refiner
	if err := r.Add(Record{System: "TRC", Model: "direct", Predicted: 100, Measured: 50}); err != nil {
		t.Fatal(err)
	}
	p := Prediction{Model: "direct", System: "TRC", MFLUPS: 200, SecondsPerStep: 0.01}
	out := r.Refine(p)
	if math.Abs(out.MFLUPS-100) > 1e-9 {
		t.Errorf("refined MFLUPS = %v, want 100", out.MFLUPS)
	}
	if math.Abs(out.SecondsPerStep-0.02) > 1e-12 {
		t.Errorf("refined SecondsPerStep = %v, want 0.02", out.SecondsPerStep)
	}
	// MFLUPS * SecondsPerStep invariant: correction preserves work.
	if math.Abs(out.MFLUPS*out.SecondsPerStep-p.MFLUPS*p.SecondsPerStep) > 1e-9 {
		t.Error("correction does not preserve points-per-step")
	}
}

func TestRefinerCorrectionScaleInvariance(t *testing.T) {
	// Correction is a geometric mean of ratios: scaling all predictions by
	// k scales the correction by 1/k.
	f := func(seed int64) bool {
		k := 1 + math.Abs(float64(seed%7))/2
		var a, b Refiner
		for i := 1; i <= 5; i++ {
			m := float64(10 * i)
			p := m * (1 + 0.1*float64(i))
			if a.Add(Record{System: "S", Model: "direct", Predicted: p, Measured: m}) != nil {
				return false
			}
			if b.Add(Record{System: "S", Model: "direct", Predicted: p * k, Measured: m}) != nil {
				return false
			}
		}
		ca, cb := a.Correction("S", "direct", 0), b.Correction("S", "direct", 0)
		return math.Abs(ca/cb-k) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRefinerSaveLoadRoundTrip(t *testing.T) {
	var r Refiner
	recs := []Record{
		{Workload: "aorta", System: "CSP-2", Model: "direct", Ranks: 36, Predicted: 100, Measured: 80},
		{Workload: "cyl", System: "TRC", Model: "generalized", Ranks: 80, Predicted: 60, Measured: 55},
	}
	for _, rec := range recs {
		if err := r.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var r2 Refiner
	if err := r2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	got := r2.Records()
	if len(got) != len(recs) {
		t.Fatalf("loaded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestRefinerLoadRejectsCorrupt(t *testing.T) {
	var r Refiner
	if err := r.Load(bytes.NewBufferString("not json")); err == nil {
		t.Error("want error for invalid JSON")
	}
	if err := r.Load(bytes.NewBufferString(`[{"predicted_mflups":0,"measured_mflups":5}]`)); err == nil {
		t.Error("want error for invalid stored record")
	}
}
