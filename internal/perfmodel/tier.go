package perfmodel

import "fmt"

// This file defines the tiered-accuracy vocabulary of the prediction API
// (DESIGN.md §13). A prediction can be served at three accuracy tiers
// that trade calibration effort for error:
//
//   - Tier 0 ("tier0") is pure physics: published catalog specs and
//     roofline arithmetic, zero fitted parameters. Available for every
//     system, never recalibrated, worst error.
//   - Tier 1 ("tier1") is the calibrated path: the paper's fitted
//     microbenchmark models (Characterization) plus the anatomy-tuned
//     empirical laws. Needs one characterization run per system.
//   - Tier 2 ("tier2") is measured lookup: per-(system, kernel,
//     size-regime) throughput tables from real (here: simulated-
//     measured) runs, nearest-neighbor interpolated. Best error, but
//     only where the tables have data.
//
// TierAuto asks the Predictor to fall back Tier 2 → Tier 1 → Tier 0 by
// data availability.
const (
	TierAuto        = "auto"
	Tier0Physics    = "tier0"
	Tier1Calibrated = "tier1"
	Tier2Measured   = "tier2"
)

// ValidTiers lists every accepted Request.Tier value, in fallback order.
// The empty string is also accepted and means "caller default" — TierAuto
// on a Predictor, Tier1Calibrated on a bare Characterization.
func ValidTiers() []string {
	return []string{TierAuto, Tier0Physics, Tier1Calibrated, Tier2Measured}
}

// checkTier validates a Request.Tier value ("" allowed).
func checkTier(tier string) error {
	switch tier {
	case "", TierAuto, Tier0Physics, Tier1Calibrated, Tier2Measured:
		return nil
	}
	return fmt.Errorf("perfmodel: unknown tier %q (valid: %v)", tier, ValidTiers())
}

// DefaultKernel is the kernel name Tier 2 lookups use when a request
// does not name one: the HARVEY D3Q19 access pattern every serving-path
// workload runs.
const DefaultKernel = "harvey"

// Band is a deterministic confidence interval on predicted MFLUPS. It is
// provenance, not statistics: each backend derives it from its own error
// model (fit residuals for Tier 1, table distance for Tier 2, a fixed
// structural margin for Tier 0), so equal requests always yield equal
// bands.
type Band struct {
	LoMFLUPS float64
	HiMFLUPS float64
}

// band builds the confidence band around a central MFLUPS value with the
// given relative half-width.
func band(mflups, rel float64) Band {
	if rel < 0 {
		rel = 0
	}
	return Band{LoMFLUPS: mflups * (1 - rel), HiMFLUPS: mflups * (1 + rel)}
}
