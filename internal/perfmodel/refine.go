package perfmodel

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/fit"
)

// Record pairs one model prediction with the measurement that followed it.
// The paper's Discussion: "storing all measured performance along with the
// estimated performance model prediction will be critical to iteratively
// refining the performance models".
type Record struct {
	Workload  string  `json:"workload"`
	System    string  `json:"system"`
	Model     string  `json:"model"` // "direct" or "generalized"
	Ranks     int     `json:"ranks"`
	Predicted float64 `json:"predicted_mflups"`
	Measured  float64 `json:"measured_mflups"`
}

// Refiner accumulates prediction/measurement pairs and derives
// multiplicative calibration factors. Both of the paper's models
// "overpredicted ... by a consistent amount in all cases", which is
// exactly the bias a per-system multiplicative correction removes.
type Refiner struct {
	records []Record
}

// Add stores one observation. Records with non-positive values are
// rejected — they would poison the geometric calibration.
func (r *Refiner) Add(rec Record) error {
	if rec.Predicted <= 0 || rec.Measured <= 0 {
		return fmt.Errorf("perfmodel: record for %s/%s has non-positive throughput", rec.System, rec.Workload)
	}
	r.records = append(r.records, rec)
	return nil
}

// Len returns the number of stored records.
func (r *Refiner) Len() int { return len(r.records) }

// Records returns a copy of the stored observations.
func (r *Refiner) Records() []Record {
	return append([]Record(nil), r.records...)
}

// Correction returns the multiplicative calibration factor for a system
// and model at a rank count: the geometric mean of measured/predicted over
// matching records. The model's bias is regime-dependent (memory-dominated
// small runs versus latency-dominated large ones), so records at the same
// rank count are preferred; the fallbacks widen to the system, then the
// model, then 1 when nothing matches yet (an uncalibrated model is used
// as-is). ranks <= 0 skips the rank-specific tier.
func (r *Refiner) Correction(system, model string, ranks int) float64 {
	filters := []func(Record) bool{
		func(rec Record) bool { return rec.System == system && rec.Model == model && rec.Ranks == ranks },
		func(rec Record) bool { return rec.System == system && rec.Model == model },
		func(rec Record) bool { return rec.Model == model },
	}
	if ranks <= 0 {
		filters = filters[1:]
	}
	for _, filter := range filters {
		var ratios []float64
		for _, rec := range r.records {
			if filter(rec) {
				ratios = append(ratios, rec.Measured/rec.Predicted)
			}
		}
		if len(ratios) > 0 {
			return fit.GeoMean(ratios)
		}
	}
	return 1
}

// Refine applies the current calibration to a prediction, returning the
// corrected copy. Time-like components scale inversely with throughput.
func (r *Refiner) Refine(p Prediction) Prediction {
	c := r.Correction(p.System, p.Model, p.Ranks)
	out := p
	out.MFLUPS = p.MFLUPS * c
	if c > 0 {
		out.SecondsPerStep = p.SecondsPerStep / c
	}
	return out
}

// MAPE reports the mean absolute percentage error of the stored records
// before and after calibration — the feedback metric that decides whether
// a model term earns its place (the paper's "system of adding and
// checking").
func (r *Refiner) MAPE(system, model string) (before, after float64, n int) {
	var sumB, sumA float64
	for _, rec := range r.records {
		if rec.System != system || rec.Model != model {
			continue
		}
		c := r.Correction(system, model, rec.Ranks)
		sumB += math.Abs(rec.Predicted-rec.Measured) / rec.Measured
		sumA += math.Abs(rec.Predicted*c-rec.Measured) / rec.Measured
		n++
	}
	if n == 0 {
		return 0, 0, 0
	}
	return sumB / float64(n), sumA / float64(n), n
}

// Save serializes the record store as JSON.
func (r *Refiner) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.records)
}

// Load restores a record store previously written by Save, replacing any
// current records.
func (r *Refiner) Load(src io.Reader) error {
	var recs []Record
	if err := json.NewDecoder(src).Decode(&recs); err != nil {
		return fmt.Errorf("perfmodel: loading records: %w", err)
	}
	for _, rec := range recs {
		if rec.Predicted <= 0 || rec.Measured <= 0 {
			return fmt.Errorf("perfmodel: stored record for %s/%s invalid", rec.System, rec.Workload)
		}
	}
	r.records = recs
	return nil
}
