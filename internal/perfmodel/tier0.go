package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/simcloud"
	"repro/internal/units"
)

// PhysicsBackend is Tier 0: a roofline-plus-communication prediction
// built from the catalog row alone — published memory bandwidth, clock
// rate, nominal interconnect Gbps — with zero fitted parameters. It is
// available for every system and never needs recalibration, which makes
// it the TierAuto floor; the price is that it misses everything the
// fits capture (sustained-vs-published bandwidth, link latency, load
// imbalance), so it carries the widest confidence band.
type PhysicsBackend struct {
	Sys *machine.System
}

// NewPhysicsBackend wraps a catalog row as the Tier 0 backend.
func NewPhysicsBackend(sys *machine.System) *PhysicsBackend {
	return &PhysicsBackend{Sys: sys}
}

// Tier0ConfidenceRel is the fixed relative half-width of Tier 0's
// confidence band: the structural uncertainty of predicting from
// published specs alone, bracketed by the spread the paper reports
// between published and sustained bandwidth.
const Tier0ConfidenceRel = 0.40

// flopsPerCycle is the assumed per-core double-precision issue width
// (one 512-bit FMA per cycle): spec-sheet physics, not a fit.
const flopsPerCycle = 16

// d3q19FlopsPerPoint is the D3Q19 BGK per-point operation count the
// roofline package documents; the compute ceiling of the Tier 0
// roofline uses it directly.
const d3q19FlopsPerPoint = 250

// Tier returns Tier0Physics.
func (b *PhysicsBackend) Tier() string { return Tier0Physics }

// Covers reports whether Tier 0 can serve the request: any decomposed
// workload or workload summary, as long as no calibrated Terms ride
// along (terms are Tier 1 artifacts — they come out of the measured
// feedback loop).
func (b *PhysicsBackend) Covers(req Request) bool {
	if len(req.Terms) > 0 {
		return false
	}
	return req.Workload != nil || req.Summary != nil
}

// nodalBWBps returns the published nodal memory bandwidth in bytes/s.
// GPU instances publish per-device bandwidth with one rank per device,
// so the nodal figure is the device figure times devices per node.
func (b *PhysicsBackend) nodalBWBps() float64 {
	bw := units.MBpsToBps(b.Sys.PublishedMemBWMBps)
	if b.Sys.GPU != nil {
		bw *= float64(b.Sys.GPU.PerNode)
	}
	return bw
}

// interBWBps returns the nominal interconnect bandwidth in bytes/s.
func (b *PhysicsBackend) interBWBps() float64 {
	return b.Sys.InterconnectGbps * 1e9 / 8
}

// peakFlopsPerCore returns the spec-sheet per-core FLOP/s ceiling.
func (b *PhysicsBackend) peakFlopsPerCore() float64 {
	return b.Sys.ClockGHz * 1e9 * flopsPerCycle
}

// Predict evaluates the Tier 0 model: per-task time is the roofline
// max(memory, compute) plus communication priced at nominal link
// bandwidth with zero latency (no latency spec is published). The
// missing latency term is Tier 0's signature bias — it underpredicts
// communication at scale, which the per-tier MAPE report surfaces.
func (b *PhysicsBackend) Predict(req Request) (Prediction, error) {
	if len(req.Terms) > 0 {
		return Prediction{}, fmt.Errorf("perfmodel: terms apply to the calibrated tier only")
	}
	model := req.Model
	if model == "" {
		switch {
		case req.Workload != nil && req.Summary != nil:
			return Prediction{}, fmt.Errorf("perfmodel: request carries both a decomposed workload and a summary; set Model to disambiguate")
		case req.Workload != nil:
			model = ModelDirect
		case req.Summary != nil:
			model = ModelGeneral
		default:
			return Prediction{}, fmt.Errorf("perfmodel: request carries neither a decomposed workload nor a workload summary")
		}
	}
	var (
		p   Prediction
		err error
	)
	switch model {
	case ModelDirect:
		if req.Workload == nil {
			return Prediction{}, fmt.Errorf("perfmodel: direct model needs a decomposed workload")
		}
		if req.Ranks != 0 && req.Ranks != len(req.Workload.Tasks) {
			return Prediction{}, fmt.Errorf("perfmodel: request asks for %d ranks but the workload decomposes into %d tasks",
				req.Ranks, len(req.Workload.Tasks))
		}
		p, err = b.predictDirect(*req.Workload, req.Occupancy)
	case ModelGeneral:
		if req.Summary == nil {
			return Prediction{}, fmt.Errorf("perfmodel: generalized model needs a workload summary")
		}
		p, err = b.predictGeneral(*req.Summary, req.Ranks)
	default:
		return Prediction{}, fmt.Errorf("perfmodel: unknown model %q", model)
	}
	if err != nil {
		return Prediction{}, err
	}
	p.Tier = Tier0Physics
	p.Confidence = band(p.MFLUPS, Tier0ConfidenceRel)
	return p, nil
}

// predictDirect prices an actual decomposition with published numbers.
func (b *PhysicsBackend) predictDirect(w simcloud.Workload, occupancy float64) (Prediction, error) {
	ranks := len(w.Tasks)
	if ranks == 0 {
		return Prediction{}, fmt.Errorf("perfmodel: empty workload %q", w.Name)
	}
	if occupancy < 0 || occupancy > 1 {
		return Prediction{}, fmt.Errorf("perfmodel: occupancy %g outside [0,1]", occupancy)
	}
	cores := b.Sys.CoresPerNode
	nodeOf := func(task int) int { return task / cores }
	perNode := make(map[int]int)
	for t := 0; t < ranks; t++ {
		perNode[nodeOf(t)]++
	}
	nodalBW := b.nodalBWBps()
	interBW := b.interBWBps()

	var maxStep, maxMem, maxIntra, maxInter float64
	for t := range w.Tasks {
		k := float64(perNode[nodeOf(t)])
		sharers := k + occupancy*float64(cores-int(k))
		share := nodalBW / math.Max(1, sharers)
		memS := w.Tasks[t].Bytes / share
		// Roofline: the task cannot run faster than its compute ceiling
		// either; points are assumed spread evenly over tasks.
		flopS := float64(w.Points) / float64(ranks) * d3q19FlopsPerPoint / b.peakFlopsPerCore()
		gate := math.Max(memS, flopS)

		var intraS, interS float64
		for _, msg := range w.Tasks[t].Sends {
			if nodeOf(msg.Peer) == nodeOf(t) {
				// On-node halo: one copy out, one in, through node memory.
				intraS += 2 * msg.Bytes / nodalBW
			} else {
				interS += 2 * msg.Bytes / interBW
			}
		}
		maxStep = math.Max(maxStep, gate)
		maxMem = math.Max(maxMem, memS)
		maxIntra = math.Max(maxIntra, intraS)
		maxInter = math.Max(maxInter, interS)
	}
	p := Prediction{
		Model: ModelDirect, System: b.Sys.Abbrev, Ranks: ranks,
		SecondsPerStep: maxStep + maxIntra + maxInter,
		MemS:           maxMem, IntraS: maxIntra, InterS: maxInter,
	}
	p.MFLUPS = float64(w.Points) / p.SecondsPerStep / 1e6
	return p, nil
}

// predictGeneral estimates the decomposition a priori with zero fitted
// laws: perfect balance (z = 1), the Eq. 13-14 geometric halo estimate
// with the default per-point payload, and nominal link bandwidth.
func (b *PhysicsBackend) predictGeneral(ws WorkloadSummary, ranks int) (Prediction, error) {
	if ranks < 1 {
		return Prediction{}, fmt.Errorf("perfmodel: ranks %d must be positive", ranks)
	}
	if ws.Points <= 0 || ws.BytesSerial <= 0 {
		return Prediction{}, fmt.Errorf("perfmodel: workload summary %q incomplete", ws.Name)
	}
	n := float64(ranks)
	cores := float64(b.Sys.CoresPerNode)
	share := b.nodalBWBps() / math.Min(n, cores)
	memS := ws.BytesSerial / n / share
	flopS := float64(ws.Points) / n * d3q19FlopsPerPoint / b.peakFlopsPerCore()
	gate := math.Max(memS, flopS)

	var commS float64
	if ranks > 1 {
		w := math.Min(math.Log2(n), MaxNeighbors)
		mMaxTotal := w / MaxNeighbors * math.Pow(float64(ws.Points)/n, 2.0/3.0) * 2 * DefaultPointCommBytes
		if math.Ceil(n/cores) >= 2 {
			commS = mMaxTotal / b.interBWBps()
		} else {
			commS = mMaxTotal / b.nodalBWBps()
		}
	}
	p := Prediction{
		Model: ModelGeneral, System: b.Sys.Abbrev, Ranks: ranks,
		SecondsPerStep: gate + commS,
		MemS:           memS,
		CommBandwidthS: commS,
	}
	p.MFLUPS = float64(ws.Points) / p.SecondsPerStep / 1e6
	return p, nil
}
