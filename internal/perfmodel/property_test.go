package perfmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fit"
	"repro/internal/machine"
)

// The generalized model's physical monotonicities, checked as properties:
// more work means more time, never less throughput from less work.

// logLaw builds an Eq. 11 law with the given parameters.
func logLaw(c1, c2 float64) fit.LogLaw { return fit.LogLaw{C1: c1, C2: c2} }

func TestGeneralMonotoneInBytes(t *testing.T) {
	c, g := fixtureCG(t)
	rng := rand.New(rand.NewSource(77))
	f := func(scaleRaw uint8) bool {
		scale := 1 + float64(scaleRaw%50)
		base := WorkloadSummary{Name: "w", Points: 100000, BytesSerial: 3.5e7}
		bigger := base
		bigger.BytesSerial *= 1 + scale
		ranks := 2 + rng.Intn(140)
		p1, err := c.Predict(Request{Model: ModelGeneral, Summary: &base, General: g, Ranks: ranks})
		if err != nil {
			return false
		}
		p2, err := c.Predict(Request{Model: ModelGeneral, Summary: &bigger, General: g, Ranks: ranks})
		if err != nil {
			return false
		}
		return p2.SecondsPerStep > p1.SecondsPerStep
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func fixtureCG(t *testing.T) (*Characterization, GeneralModel) {
	t.Helper()
	c := characterizeNoiseless(t, machine.NewCSP2())
	g := GeneralModel{
		Z:              logLaw(0.1, 0.02),
		Events:         DefaultEventsLaw(),
		PointCommBytes: DefaultPointCommBytes,
	}
	return c, g
}

func TestGeneralMonotoneInLatency(t *testing.T) {
	c, g := fixtureCG(t)
	slow := *c
	slow.Inter.LatencyUS = c.Inter.LatencyUS * 10
	ws := WorkloadSummary{Name: "w", Points: 100000, BytesSerial: 3.5e7}
	for _, ranks := range []int{72, 144, 512} { // multi-node
		fast, err := c.Predict(Request{Model: ModelGeneral, Summary: &ws, General: g, Ranks: ranks})
		if err != nil {
			t.Fatal(err)
		}
		lagged, err := slow.Predict(Request{Model: ModelGeneral, Summary: &ws, General: g, Ranks: ranks})
		if err != nil {
			t.Fatal(err)
		}
		if lagged.MFLUPS >= fast.MFLUPS {
			t.Errorf("ranks=%d: higher latency did not reduce throughput (%v vs %v)",
				ranks, lagged.MFLUPS, fast.MFLUPS)
		}
	}
}

func TestGeneralMoreImbalanceSlower(t *testing.T) {
	c, _ := fixtureCG(t)
	balanced := GeneralModel{Z: logLaw(0, 0.02), Events: DefaultEventsLaw(), PointCommBytes: DefaultPointCommBytes}
	skewed := GeneralModel{Z: logLaw(0.5, 0.05), Events: DefaultEventsLaw(), PointCommBytes: DefaultPointCommBytes}
	ws := WorkloadSummary{Name: "w", Points: 100000, BytesSerial: 3.5e7}
	for _, ranks := range []int{8, 64, 256} {
		pb, err := c.Predict(Request{Model: ModelGeneral, Summary: &ws, General: balanced, Ranks: ranks})
		if err != nil {
			t.Fatal(err)
		}
		psk, err := c.Predict(Request{Model: ModelGeneral, Summary: &ws, General: skewed, Ranks: ranks})
		if err != nil {
			t.Fatal(err)
		}
		if ranks > 1 && psk.MFLUPS >= pb.MFLUPS {
			t.Errorf("ranks=%d: imbalance did not cost throughput (%v vs %v)", ranks, psk.MFLUPS, pb.MFLUPS)
		}
	}
}
