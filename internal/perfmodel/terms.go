package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/roofline"
	"repro/internal/simcloud"
)

// This file implements the paper's model-growth feedback loop: "additional
// elements of runtime can be added then checked for their impact on the
// model's ability to predict experimental results. Following the results
// of this check the element can be added or discarded." Candidate terms
// are evaluated by greedy forward selection against stored measurements;
// a term survives only if it actually improves prediction accuracy.

// Term is one candidate runtime component. Eval returns the extra seconds
// per timestep the term would add on top of a base prediction for the
// given workload.
type Term struct {
	Name string
	Eval func(w simcloud.Workload, base Prediction) float64
}

// FlopTerm prices the floating-point work of every fluid point against a
// compute ceiling — the roofline term the Discussion proposes. For
// bandwidth-bound LBM on CPUs the selector should reject it.
func FlopTerm(k roofline.Kernel, m roofline.Machine) Term {
	return Term{
		Name: "flops",
		Eval: func(w simcloud.Workload, base Prediction) float64 {
			// The gating task holds roughly points/ranks of the domain
			// (imbalance already folded into the base memory term).
			points := float64(w.Points) / math.Max(1, float64(len(w.Tasks)))
			return roofline.FlopTimeS(k, m, points)
		},
	}
}

// OverheadTerm scales the base memory time by a fixed fraction — the
// instruction-issue/synchronization overhead a pure bytes-over-bandwidth
// model misses. This is the term whose absence makes the paper's (and
// this reproduction's) raw models overpredict consistently.
func OverheadTerm(frac float64) Term {
	return Term{
		Name: fmt.Sprintf("kernel-overhead(%.0f%%)", frac*100),
		Eval: func(w simcloud.Workload, base Prediction) float64 {
			return frac * base.MemS
		},
	}
}

// CouplingTerm prices extra per-step memory traffic — the cells and walls
// coupling terms of Eq. 2 (t_pos, t_forces and the force spread, whose
// byte counts internal/cells reports) — at the same effective bandwidth
// the fluid bytes achieved on the gating task. totalBytes is the
// suspension-wide per-step traffic; it is assumed spread evenly over the
// ranks, matching how markers distribute through the fluid.
func CouplingTerm(name string, totalBytes float64) Term {
	return Term{
		Name: name,
		Eval: func(w simcloud.Workload, base Prediction) float64 {
			if base.MemS <= 0 || len(w.Tasks) == 0 {
				return 0
			}
			var maxTask float64
			for _, t := range w.Tasks {
				if t.Bytes > maxTask {
					maxTask = t.Bytes
				}
			}
			if maxTask <= 0 {
				return 0
			}
			effBW := maxTask / base.MemS // bytes/s the gating task achieved
			return totalBytes / float64(len(w.Tasks)) / effBW
		},
	}
}

// ConstantTerm adds a fixed per-step cost (a barrier or bookkeeping
// estimate) independent of the workload.
func ConstantTerm(name string, seconds float64) Term {
	return Term{
		Name: name,
		Eval: func(simcloud.Workload, Prediction) float64 { return seconds },
	}
}

// Observation pairs a workload with its measured throughput.
type Observation struct {
	Workload       simcloud.Workload
	MeasuredMFLUPS float64
}

// SelectionResult reports the outcome of the feedback loop.
type SelectionResult struct {
	Kept      []string
	Rejected  []string
	BaseMAPE  float64
	FinalMAPE float64
}

// SelectTerms runs greedy forward selection: starting from the bare
// direct model, repeatedly adds the candidate term that most reduces the
// mean absolute percentage error against the observations, stopping when
// no candidate improves MAPE by at least minImprove (absolute, e.g. 0.01
// = one percentage point). Terms never chosen are reported rejected.
func (c *Characterization) SelectTerms(candidates []Term, obs []Observation, minImprove float64) (SelectionResult, error) {
	if len(obs) == 0 {
		return SelectionResult{}, fmt.Errorf("perfmodel: no observations to select against")
	}
	if minImprove < 0 {
		return SelectionResult{}, fmt.Errorf("perfmodel: negative improvement threshold %g", minImprove)
	}
	// Precompute base predictions once per observation.
	bases := make([]Prediction, len(obs))
	for i, o := range obs {
		p, err := c.Predict(Request{Model: ModelDirect, Workload: &obs[i].Workload})
		if err != nil {
			return SelectionResult{}, err
		}
		if o.MeasuredMFLUPS <= 0 {
			return SelectionResult{}, fmt.Errorf("perfmodel: observation %d has non-positive measurement", i)
		}
		bases[i] = p
	}
	mapeWith := func(active []Term) float64 {
		var sum float64
		for i, o := range obs {
			t := bases[i].SecondsPerStep
			for _, term := range active {
				t += term.Eval(o.Workload, bases[i])
			}
			pred := float64(o.Workload.Points) / t / 1e6
			sum += math.Abs(pred-o.MeasuredMFLUPS) / o.MeasuredMFLUPS
		}
		return sum / float64(len(obs))
	}

	res := SelectionResult{BaseMAPE: mapeWith(nil)}
	remaining := append([]Term(nil), candidates...)
	var active []Term
	current := res.BaseMAPE
	for len(remaining) > 0 {
		bestIdx, bestMAPE := -1, current
		for i, cand := range remaining {
			m := mapeWith(append(active, cand))
			if m < bestMAPE-minImprove {
				bestIdx, bestMAPE = i, m
			}
		}
		if bestIdx < 0 {
			break
		}
		active = append(active, remaining[bestIdx])
		res.Kept = append(res.Kept, remaining[bestIdx].Name)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		current = bestMAPE
	}
	for _, cand := range remaining {
		res.Rejected = append(res.Rejected, cand.Name)
	}
	res.FinalMAPE = current
	return res, nil
}
