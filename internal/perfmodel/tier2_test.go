package perfmodel

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/machine"
)

func mustTable(t *testing.T, csv string) *Table {
	t.Helper()
	tbl, err := LoadTable(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

const tinyTable = `system,kernel,points,ranks,mflups
CSP-2,harvey,1000,1,100
CSP-2,harvey,1000,4,350
CSP-2,harvey,8000,1,110
CSP-2,harvey,8000,4,400
`

func TestLoadTableRejectsMalformedCSVWithLineNumbers(t *testing.T) {
	cases := []struct {
		name, csv, wantLine, wantMsg string
	}{
		{"bad header", "sys,kernel\nx,y\n", "line 1", "header"},
		{"empty table", "system,kernel,points,ranks,mflups\n", "line 1", "empty table"},
		{"short row", tinyTable + "CSP-2,harvey,9000\n", "line 6", "3 fields"},
		{"bad points", "system,kernel,points,ranks,mflups\nCSP-2,harvey,many,1,100\n", "line 2", "bad points"},
		{"negative ranks", "system,kernel,points,ranks,mflups\nCSP-2,harvey,1000,-1,100\n", "line 2", "bad ranks"},
		{"zero mflups", "system,kernel,points,ranks,mflups\nCSP-2,harvey,1000,1,0\n", "line 2", "bad mflups"},
		{"empty system", "system,kernel,points,ranks,mflups\n,harvey,1000,1,100\n", "line 2", "empty system"},
		{"duplicate", tinyTable + "CSP-2,harvey,8000,4,401\n", "line 6", "duplicate"},
		{"unsorted", tinyTable + "CSP-2,harvey,1000,2,200\n", "line 6", "not sorted"},
	}
	for _, tc := range cases {
		_, err := LoadTable(strings.NewReader(tc.csv))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		for _, want := range []string{tc.wantLine, tc.wantMsg} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q missing %q", tc.name, err, want)
			}
		}
	}
}

func TestLookupExactHit(t *testing.T) {
	tbl := mustTable(t, tinyTable)
	mflups, dist, extrap, err := tbl.Lookup("CSP-2", "harvey", 8000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mflups != 400 || dist != 0 || extrap {
		t.Errorf("exact hit = (%v, %v, %v), want (400, 0, false)", mflups, dist, extrap)
	}
	// Empty kernel falls back to DefaultKernel.
	mflups2, _, _, err := tbl.Lookup("CSP-2", "", 8000, 4)
	if err != nil || mflups2 != 400 {
		t.Errorf("default-kernel lookup = (%v, %v)", mflups2, err)
	}
}

func TestLookupMissingGroup(t *testing.T) {
	tbl := mustTable(t, tinyTable)
	_, _, _, err := tbl.Lookup("TRC", "harvey", 8000, 4)
	if err == nil || !strings.Contains(err.Error(), "no rows") {
		t.Errorf("missing system error = %v", err)
	}
	if tbl.Covers("TRC", "harvey") {
		t.Error("Covers claims rows for an absent system")
	}
	if !tbl.Covers("CSP-2", "") {
		t.Error("Covers rejects default kernel for a present system")
	}
}

// TestLookupTieBreakDeterminism queries the exact midpoint (in log
// space) between rows with different throughputs: every repetition must
// return the identical blended value, exercising the sorted-order
// tie-break for equidistant neighbors.
func TestLookupTieBreakDeterminism(t *testing.T) {
	tbl := mustTable(t, tinyTable)
	// (sqrt(1000*8000), 2) is log-equidistant from all four corners.
	first, dist, _, err := tbl.Lookup("CSP-2", "harvey", 2828, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dist <= 0 {
		t.Fatalf("midpoint query reported distance %v", dist)
	}
	for i := 0; i < 50; i++ {
		got, d, _, err := tbl.Lookup("CSP-2", "harvey", 2828, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got != first || d != dist {
			t.Fatalf("iteration %d: lookup (%v, %v) != first (%v, %v)", i, got, d, first, dist)
		}
	}
	// The blend must stay inside the neighbors' value range.
	if first < 100 || first > 400 {
		t.Errorf("interpolated value %v outside table range [100, 400]", first)
	}
}

func TestLookupExtrapolationFlag(t *testing.T) {
	tbl := mustTable(t, tinyTable)
	cases := []struct {
		points, ranks int
		want          bool
	}{
		{2000, 2, false}, // inside hull
		{1000, 1, false}, // corner
		{64000, 4, true}, // beyond max points
		{1000, 64, true}, // beyond max ranks
		{500, 1, true},   // below min points
	}
	for _, tc := range cases {
		_, _, extrap, err := tbl.Lookup("CSP-2", "harvey", tc.points, tc.ranks)
		if err != nil {
			t.Fatal(err)
		}
		if extrap != tc.want {
			t.Errorf("(%d points, %d ranks): extrapolated = %v, want %v", tc.points, tc.ranks, extrap, tc.want)
		}
	}
}

func TestLookupBackendPredict(t *testing.T) {
	tbl := mustTable(t, tinyTable)
	b := NewLookupBackend("CSP-2", tbl)
	if b.Tier() != Tier2Measured {
		t.Fatalf("tier = %q", b.Tier())
	}
	ws := &WorkloadSummary{Name: "cyl", Points: 8000, BytesSerial: 1}
	req := Request{Summary: ws, Ranks: 4}
	if !b.Covers(req) {
		t.Fatal("backend does not cover an in-table request")
	}
	p, err := b.Predict(req)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tier != Tier2Measured || p.Model != ModelMeasured {
		t.Errorf("provenance = %q/%q", p.Tier, p.Model)
	}
	if p.MFLUPS != 400 || p.TableDistance != 0 || p.Extrapolated {
		t.Errorf("prediction = %+v", p)
	}
	wantSeconds := 8000.0 / (400 * 1e6)
	if p.SecondsPerStep != wantSeconds {
		t.Errorf("SecondsPerStep = %v, want %v", p.SecondsPerStep, wantSeconds)
	}
	if p.Confidence.LoMFLUPS >= 400 || p.Confidence.HiMFLUPS <= 400 {
		t.Errorf("confidence band %+v does not bracket 400", p.Confidence)
	}

	// The measured tier declines what it cannot model.
	if b.Covers(Request{Summary: ws, Ranks: 4, Occupancy: 0.5}) {
		t.Error("covers occupancy sharing")
	}
	if b.Covers(Request{Summary: ws, Ranks: 4, Terms: []Term{OverheadTerm(0.1)}}) {
		t.Error("covers calibrated terms")
	}
	if NewLookupBackend("TRC", tbl).Covers(req) {
		t.Error("covers a system with no rows")
	}
	if _, err := b.Predict(Request{Summary: ws, Ranks: 4, Occupancy: 0.5}); err == nil {
		t.Error("predicted through occupancy sharing")
	}
}

func TestPredictorFallback(t *testing.T) {
	tbl := mustTable(t, tinyTable)
	sys := machine.NewCSP2()
	char := characterizeNoiseless(t, sys)
	pred, err := NewPredictor(
		NewPhysicsBackend(sys),
		NewCalibratedBackend(char),
		NewLookupBackend("CSP-2", tbl),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(pred.Tiers()); got != "[tier2 tier1 tier0]" {
		t.Fatalf("Tiers() = %s", got)
	}

	ws := &WorkloadSummary{Name: "cyl", Points: 8000, BytesSerial: 64 * 8000}
	g := GeneralModel{}

	// Auto resolves to tier2 for an in-table request...
	p, err := pred.Predict(Request{Summary: ws, General: g, Ranks: 4, Tier: TierAuto})
	if err != nil {
		t.Fatal(err)
	}
	if p.Tier != Tier2Measured {
		t.Errorf("auto tier = %q, want tier2", p.Tier)
	}
	// ...and "" means the same thing.
	p2, err := pred.Predict(Request{Summary: ws, General: g, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Errorf("empty tier differs from auto: %+v vs %+v", p2, p)
	}

	// Occupancy pushes auto past tier2 to tier1 (needs a workload).
	_, w := testWorkload(t, 8)
	p, err = pred.Predict(Request{Workload: &w, Occupancy: 0.5, Tier: TierAuto})
	if err != nil {
		t.Fatal(err)
	}
	if p.Tier != Tier1Calibrated {
		t.Errorf("occupancy auto tier = %q, want tier1", p.Tier)
	}

	// Explicit tiers route directly.
	for _, tier := range []string{Tier0Physics, Tier1Calibrated, Tier2Measured} {
		p, err := pred.Predict(Request{Summary: ws, General: g, Ranks: 4, Tier: tier})
		if err != nil {
			t.Fatalf("tier %s: %v", tier, err)
		}
		if p.Tier != tier {
			t.Errorf("tier %s served by %s", tier, p.Tier)
		}
	}

	// Without the lookup backend, auto falls back to tier1.
	pred2, err := NewPredictor(NewPhysicsBackend(sys), NewCalibratedBackend(char))
	if err != nil {
		t.Fatal(err)
	}
	p, err = pred2.Predict(Request{Summary: ws, General: g, Ranks: 4, Tier: TierAuto})
	if err != nil {
		t.Fatal(err)
	}
	if p.Tier != Tier1Calibrated {
		t.Errorf("fallback tier = %q, want tier1", p.Tier)
	}
	// An explicit tier with no backend is ErrNoData, not a silent fallback.
	if _, err := pred2.Predict(Request{Summary: ws, General: g, Ranks: 4, Tier: Tier2Measured}); err == nil {
		t.Error("missing tier2 backend served a prediction")
	}
}

func TestNewPredictorValidation(t *testing.T) {
	sys := machine.NewCSP2()
	if _, err := NewPredictor(); err == nil {
		t.Error("empty predictor accepted")
	}
	if _, err := NewPredictor(NewPhysicsBackend(sys), NewPhysicsBackend(sys)); err == nil {
		t.Error("duplicate tier accepted")
	}
}
