package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/decomp"
	"repro/internal/fit"
	"repro/internal/lbm"
)

// CalibrateGeneral fits the generalized model's empirical laws from
// decompositions of a reference lattice over a sweep of task counts —
// the paper's "fits of Eq. 11 to prior HARVEY decomposition data" — and
// calibrates the per-boundary-point communication payload of Eq. 13
// against the measured halo sizes. coresPerNode fixes the node counts
// entering the event law (Eq. 15).
func CalibrateGeneral(s *lbm.Sparse, m lbm.AccessModel, taskCounts []int, coresPerNode int) (GeneralModel, error) {
	if len(taskCounts) < 3 {
		return GeneralModel{}, fmt.Errorf("perfmodel: need at least 3 task counts to calibrate, have %d", len(taskCounts))
	}
	if coresPerNode < 1 {
		return GeneralModel{}, fmt.Errorf("perfmodel: coresPerNode %d must be positive", coresPerNode)
	}
	var (
		ns, zs      []float64 // imbalance observations (Eq. 10)
		evN, evNN   []float64 // event-law inputs (multi-node configs only)
		evCounts    []float64 // measured max inter-node events
		pcbEstimate []float64 // Eq. 13 payload back-solved per count
	)
	for _, k := range taskCounts {
		p, err := decomp.RCB(s, k, m)
		if err != nil {
			return GeneralModel{}, fmt.Errorf("perfmodel: calibration decomposition at %d tasks: %w", k, err)
		}
		n := float64(k)
		z := p.Imbalance()
		ns = append(ns, n)
		zs = append(zs, z)
		// The communication laws model inter-node traffic (Eq. 16 prices
		// everything on the interconnect), so they are calibrated against
		// placement-aware inter-node observations from multi-node configs.
		nn := math.Ceil(n / float64(coresPerNode))
		if nn >= 2 {
			interBytes, interEvents := p.InterStats(coresPerNode)
			evN = append(evN, n)
			evNN = append(evNN, nn)
			evCounts = append(evCounts, float64(interEvents))

			// Back-solve Eq. 13 for n_point-comm-bytes from the measured
			// busiest-task inter-node payload.
			w := math.Min(math.Log2(n), MaxNeighbors)
			geom := w / MaxNeighbors * math.Pow(z*float64(s.N())/n, 2.0/3.0) * 2
			if geom > 0 && interBytes > 0 {
				pcbEstimate = append(pcbEstimate, interBytes/geom)
			}
		}
	}
	zLaw, err := fit.LogLawLSQ(ns, zs)
	if err != nil {
		return GeneralModel{}, fmt.Errorf("perfmodel: z-law fit: %w", err)
	}
	// Eq. 11 is monotone non-decreasing only for c1 >= 0; clamp tiny
	// negative fits from nearly flat imbalance data.
	if zLaw.C1 < 0 {
		zLaw.C1 = 0
	}
	g := GeneralModel{Z: zLaw, PointCommBytes: DefaultPointCommBytes}
	if len(evN) >= 2 {
		events, err := FitEvents(evN, evNN, evCounts)
		if err != nil {
			return GeneralModel{}, err
		}
		g.Events = events
	} else {
		// No multi-node calibration data: fall back to a generic law so
		// extrapolated predictions remain usable; refinement against
		// measurements corrects the bias later.
		g.Events = DefaultEventsLaw()
	}
	if len(pcbEstimate) > 0 {
		g.PointCommBytes = fit.GeoMean(pcbEstimate)
	}
	return g, nil
}

// DefaultEventsLaw returns generic Eq. 15 parameters used when no
// multi-node decomposition data is available for calibration.
func DefaultEventsLaw() EventsLaw { return EventsLaw{K1: 2, K2: 0.5} }

// FitEvents fits Eq. 15's (k1, k2) to measured maximum event counts by
// SSE minimization over a log-spaced grid with golden-section refinement
// (the same strategy the package uses for the other conditionally
// nonlinear fits).
func FitEvents(ntasks, nnodes, events []float64) (EventsLaw, error) {
	if len(ntasks) < 2 || len(ntasks) != len(nnodes) || len(ntasks) != len(events) {
		return EventsLaw{}, fmt.Errorf("perfmodel: bad event-law inputs (%d,%d,%d)", len(ntasks), len(nnodes), len(events))
	}
	sseFor := func(k1, k2 float64) float64 {
		e := EventsLaw{K1: k1, K2: k2}
		var sse float64
		for i := range ntasks {
			d := e.Eval(ntasks[i], nnodes[i]) - events[i]
			sse += d * d
		}
		return sse
	}
	best := EventsLaw{SSE: math.Inf(1)}
	for lg1 := -8.0; lg1 <= 8.0; lg1 += 0.25 {
		for lg2 := -8.0; lg2 <= 8.0; lg2 += 0.25 {
			k1, k2 := math.Exp(lg1), math.Exp(lg2)
			if sse := sseFor(k1, k2); sse < best.SSE {
				best = EventsLaw{K1: k1, K2: k2, SSE: sse}
			}
		}
	}
	// Coordinate refinement around the grid optimum.
	for pass := 0; pass < 3; pass++ {
		lg1 := fit.GoldenMin(math.Log(best.K1)-0.3, math.Log(best.K1)+0.3, 1e-6, func(x float64) float64 {
			return sseFor(math.Exp(x), best.K2)
		})
		best.K1 = math.Exp(lg1)
		lg2 := fit.GoldenMin(math.Log(best.K2)-0.3, math.Log(best.K2)+0.3, 1e-6, func(x float64) float64 {
			return sseFor(best.K1, math.Exp(x))
		})
		best.K2 = math.Exp(lg2)
	}
	best.SSE = sseFor(best.K1, best.K2)
	// R² against the observed events.
	mean := fit.Mean(events)
	var sst float64
	for _, e := range events {
		d := e - mean
		sst += d * d
	}
	if sst > 0 {
		best.R2 = 1 - best.SSE/sst
	} else if best.SSE == 0 {
		best.R2 = 1
	}
	return best, nil
}
