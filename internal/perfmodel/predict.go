package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/simcloud"
)

// This file is the calibrated (Tier 1) prediction entrypoint. The four
// historical entrypoints (PredictDirect, PredictDirectShared,
// PredictGeneral, PredictWithTerms) are gone; every caller — campaign,
// fleet placement, the dashboard, the experiment harness, and the HTTP
// planning service — goes through Predict, either directly on a
// Characterization or via a tiered Predictor (backend.go), so a
// behavior change lands in exactly one place.

// Model names for Request.Model and Prediction.Model.
const (
	// ModelDirect is the Section II-D direct model: it prices an actual
	// parallel decomposition (every task's bytes and halo messages).
	ModelDirect = "direct"
	// ModelGeneral is the generalized model: it estimates the
	// decomposition a priori from scalar workload descriptors.
	ModelGeneral = "generalized"
)

// Request carries the inputs of one model evaluation. Exactly one input
// family must be populated: Workload for the direct model, Summary (plus
// General and Ranks) for the generalized model. Model may be left empty
// when the populated family makes the choice unambiguous.
type Request struct {
	// Model selects the predictor: ModelDirect, ModelGeneral, or ""
	// to infer from whichever of Workload/Summary is set.
	Model string

	// Workload is the decomposed workload the direct model prices.
	Workload *simcloud.Workload

	// Occupancy (direct model only) is the assumed fraction of the
	// node's remaining cores busy with other tenants' memory traffic,
	// in [0,1]. Zero models the paper's node-exclusive allocation.
	Occupancy float64

	// Terms (direct model only) are extra runtime components from the
	// model-growth feedback loop, added on top of the base prediction.
	Terms []Term

	// Summary is the scalar workload description the generalized model
	// works from.
	Summary *WorkloadSummary

	// General carries the anatomy-tuned empirical laws (z-law, event
	// law, per-point comm bytes) the generalized model needs.
	General GeneralModel

	// Ranks is the task count for the generalized model. For the direct
	// model it is implied by the decomposition; a non-zero value that
	// disagrees with len(Workload.Tasks) is rejected.
	Ranks int

	// Tier selects the accuracy tier (tier.go). On a Predictor, "" and
	// TierAuto fall back Tier 2 → 1 → 0 by data availability; a bare
	// Characterization serves "" and Tier1Calibrated only.
	Tier string

	// Kernel names the compute kernel for Tier 2 table lookups
	// (DefaultKernel when empty). The analytical tiers ignore it: their
	// byte counts already encode the access pattern.
	Kernel string
}

// Predict evaluates the requested model at Tier 1: the fitted
// microbenchmark models this Characterization holds. It is the one call
// path behind both the CLI tools and the serving layer's POST
// /v1/predict; other tiers are reached through a Predictor.
func (c *Characterization) Predict(req Request) (Prediction, error) {
	if req.Tier != "" && req.Tier != Tier1Calibrated {
		if err := checkTier(req.Tier); err != nil {
			return Prediction{}, err
		}
		return Prediction{}, fmt.Errorf("perfmodel: a bare characterization serves tier %q only (requested %q); use a Predictor for other tiers",
			Tier1Calibrated, req.Tier)
	}
	model := req.Model
	if model == "" {
		switch {
		case req.Workload != nil && req.Summary != nil:
			return Prediction{}, fmt.Errorf("perfmodel: request carries both a decomposed workload and a summary; set Model to disambiguate")
		case req.Workload != nil:
			model = ModelDirect
		case req.Summary != nil:
			model = ModelGeneral
		default:
			return Prediction{}, fmt.Errorf("perfmodel: request carries neither a decomposed workload nor a workload summary")
		}
	}
	var (
		p   Prediction
		err error
	)
	switch model {
	case ModelDirect:
		if req.Workload == nil {
			return Prediction{}, fmt.Errorf("perfmodel: direct model needs a decomposed workload")
		}
		if req.Ranks != 0 && req.Ranks != len(req.Workload.Tasks) {
			return Prediction{}, fmt.Errorf("perfmodel: request asks for %d ranks but the workload decomposes into %d tasks",
				req.Ranks, len(req.Workload.Tasks))
		}
		p, err = c.predictDirect(*req.Workload, req.Occupancy)
		if err == nil && len(req.Terms) > 0 {
			base := p
			for _, term := range req.Terms {
				p.SecondsPerStep += term.Eval(*req.Workload, base)
			}
			p.MFLUPS = float64(req.Workload.Points) / p.SecondsPerStep / 1e6
		}
	case ModelGeneral:
		if req.Summary == nil {
			return Prediction{}, fmt.Errorf("perfmodel: generalized model needs a workload summary")
		}
		if len(req.Terms) > 0 {
			return Prediction{}, fmt.Errorf("perfmodel: terms apply to the direct model only")
		}
		p, err = c.predictGeneral(*req.Summary, req.General, req.Ranks)
		if err == nil && req.Ranks > c.TotalCores {
			// Figure 11 territory: ranks beyond the characterized
			// instance — the fits are being stretched past their data.
			p.Extrapolated = true
		}
	default:
		return Prediction{}, fmt.Errorf("perfmodel: unknown model %q", model)
	}
	if err != nil {
		return Prediction{}, err
	}
	p.Tier = Tier1Calibrated
	p.FitResidual = c.fitResidual()
	p.Confidence = band(p.MFLUPS, Tier1BaseConfidenceRel+p.FitResidual)
	return p, nil
}

// Tier1BaseConfidenceRel is the calibrated tier's confidence half-width
// floor — the error Table I reports even where the fits are perfect
// (model-form error: block placement, Eq. 13's geometric halo). The fit
// residual widens the band on noisy characterizations.
const Tier1BaseConfidenceRel = 0.15

// fitResidual is 1 − min(R²) over the three calibrated fits.
func (c *Characterization) fitResidual() float64 {
	r2 := math.Min(c.FitQuality.MemR2, math.Min(c.FitQuality.InterR2, c.FitQuality.IntraR2))
	if r2 > 1 {
		r2 = 1
	}
	if r2 < 0 {
		r2 = 0
	}
	return 1 - r2
}

// CalibratedBackend adapts a Characterization to the Backend interface:
// it is Tier 1 of a Predictor. The zero-config and measured tiers live
// in tier0.go and tier2.go.
type CalibratedBackend struct {
	Char *Characterization
}

// NewCalibratedBackend wraps a characterization as the Tier 1 backend.
func NewCalibratedBackend(c *Characterization) *CalibratedBackend {
	return &CalibratedBackend{Char: c}
}

// Tier returns Tier1Calibrated.
func (b *CalibratedBackend) Tier() string { return Tier1Calibrated }

// Covers reports whether the calibrated fits can serve the request —
// any decomposed workload or summary, including terms and occupancy.
func (b *CalibratedBackend) Covers(req Request) bool {
	if b.Char == nil {
		return false
	}
	return req.Workload != nil || req.Summary != nil
}

// Predict evaluates the request at Tier 1.
func (b *CalibratedBackend) Predict(req Request) (Prediction, error) {
	if b.Char == nil {
		return Prediction{}, fmt.Errorf("%w: no characterization for tier %q", ErrNoData, Tier1Calibrated)
	}
	req.Tier = Tier1Calibrated
	return b.Char.Predict(req)
}
