package perfmodel

import (
	"fmt"

	"repro/internal/simcloud"
)

// This file is the package's single prediction entrypoint. The four
// historical entrypoints (PredictDirect, PredictDirectShared,
// PredictGeneral, PredictWithTerms) survive as thin deprecated wrappers
// so published call sites keep compiling, but every internal caller —
// campaign, fleet placement, the dashboard, the experiment harness, and
// the HTTP planning service — goes through Predict, so a behavior change
// lands in exactly one place.

// Model names for Request.Model and Prediction.Model.
const (
	// ModelDirect is the Section II-D direct model: it prices an actual
	// parallel decomposition (every task's bytes and halo messages).
	ModelDirect = "direct"
	// ModelGeneral is the generalized model: it estimates the
	// decomposition a priori from scalar workload descriptors.
	ModelGeneral = "generalized"
)

// Request carries the inputs of one model evaluation. Exactly one input
// family must be populated: Workload for the direct model, Summary (plus
// General and Ranks) for the generalized model. Model may be left empty
// when the populated family makes the choice unambiguous.
type Request struct {
	// Model selects the predictor: ModelDirect, ModelGeneral, or ""
	// to infer from whichever of Workload/Summary is set.
	Model string

	// Workload is the decomposed workload the direct model prices.
	Workload *simcloud.Workload

	// Occupancy (direct model only) is the assumed fraction of the
	// node's remaining cores busy with other tenants' memory traffic,
	// in [0,1]. Zero models the paper's node-exclusive allocation.
	Occupancy float64

	// Terms (direct model only) are extra runtime components from the
	// model-growth feedback loop, added on top of the base prediction.
	Terms []Term

	// Summary is the scalar workload description the generalized model
	// works from.
	Summary *WorkloadSummary

	// General carries the anatomy-tuned empirical laws (z-law, event
	// law, per-point comm bytes) the generalized model needs.
	General GeneralModel

	// Ranks is the task count for the generalized model. For the direct
	// model it is implied by the decomposition; a non-zero value that
	// disagrees with len(Workload.Tasks) is rejected.
	Ranks int
}

// Predict evaluates the requested model. It is the one call path behind
// both the CLI tools and the serving layer's POST /v1/predict.
func (c *Characterization) Predict(req Request) (Prediction, error) {
	model := req.Model
	if model == "" {
		switch {
		case req.Workload != nil && req.Summary != nil:
			return Prediction{}, fmt.Errorf("perfmodel: request carries both a decomposed workload and a summary; set Model to disambiguate")
		case req.Workload != nil:
			model = ModelDirect
		case req.Summary != nil:
			model = ModelGeneral
		default:
			return Prediction{}, fmt.Errorf("perfmodel: request carries neither a decomposed workload nor a workload summary")
		}
	}
	switch model {
	case ModelDirect:
		if req.Workload == nil {
			return Prediction{}, fmt.Errorf("perfmodel: direct model needs a decomposed workload")
		}
		if req.Ranks != 0 && req.Ranks != len(req.Workload.Tasks) {
			return Prediction{}, fmt.Errorf("perfmodel: request asks for %d ranks but the workload decomposes into %d tasks",
				req.Ranks, len(req.Workload.Tasks))
		}
		base, err := c.predictDirect(*req.Workload, req.Occupancy)
		if err != nil {
			return Prediction{}, err
		}
		if len(req.Terms) == 0 {
			return base, nil
		}
		out := base
		for _, term := range req.Terms {
			out.SecondsPerStep += term.Eval(*req.Workload, base)
		}
		out.MFLUPS = float64(req.Workload.Points) / out.SecondsPerStep / 1e6
		return out, nil
	case ModelGeneral:
		if req.Summary == nil {
			return Prediction{}, fmt.Errorf("perfmodel: generalized model needs a workload summary")
		}
		if len(req.Terms) > 0 {
			return Prediction{}, fmt.Errorf("perfmodel: terms apply to the direct model only")
		}
		return c.predictGeneral(*req.Summary, req.General, req.Ranks)
	}
	return Prediction{}, fmt.Errorf("perfmodel: unknown model %q", model)
}
