package perfmodel

import (
	"fmt"
	"runtime"

	"repro/internal/machine"
	"repro/internal/mbench"
)

// CharacterizeHost runs the real microbenchmarks on the machine this
// process is executing on — a STREAM Copy thread sweep and a goroutine
// PingPong — and fits them exactly as the cloud systems are fitted. The
// result drives the same predictors, so the paper's whole methodology can
// be exercised on physical hardware: predict the LBM engines' throughput
// from microbenchmarks, measure, and refine.
//
// arrayLen is the STREAM working-set length in float64 elements (keep it
// well above cache size); iters the best-of trials per point.
func CharacterizeHost(arrayLen, iters int) (*Characterization, error) {
	maxThreads := runtime.GOMAXPROCS(0)
	sweep, err := mbench.StreamHostSweep(mbench.Copy, maxThreads, arrayLen, iters)
	if err != nil {
		return nil, fmt.Errorf("perfmodel: host STREAM: %w", err)
	}
	c := &Characterization{
		System:       "host",
		CoresPerNode: maxThreads,
		TotalCores:   maxThreads,
	}
	if maxThreads >= 3 {
		mem, err := mbench.FitStream(sweep)
		if err != nil {
			return nil, fmt.Errorf("perfmodel: host STREAM fit: %w", err)
		}
		c.Mem = mem
		c.FitQuality.MemR2 = mem.R2
	} else {
		// Too few points for the two-line fit: degenerate single-slope
		// model from the measured point(s).
		bw := sweep[len(sweep)-1].BandwidthMBps
		c.Mem.A1 = bw / float64(sweep[len(sweep)-1].Threads)
		c.Mem.A2 = c.Mem.A1
		c.Mem.A3 = float64(maxThreads + 1)
		c.FitQuality.MemR2 = 1
	}

	// Intra-"node" message timing from the goroutine PingPong over a size
	// sweep; a single host has no inter-node link, so the intra link
	// stands in for both (ranks never span nodes here).
	var pts []mbench.PingPongPoint
	for _, size := range []int{0, 64, 1024, 16384, 262144, 1 << 20} {
		us, err := mbench.PingPongHost(size, 400)
		if err != nil {
			return nil, fmt.Errorf("perfmodel: host PingPong: %w", err)
		}
		pts = append(pts, mbench.PingPongPoint{Bytes: float64(size), TimeUS: us})
	}
	link, line, err := mbench.FitPingPong(pts)
	if err != nil {
		return nil, fmt.Errorf("perfmodel: host PingPong fit: %w", err)
	}
	c.Intra = link
	c.Inter = link
	c.RawIntra = pts
	c.RawInter = pts
	c.FitQuality.IntraR2 = line.R2
	c.FitQuality.InterR2 = line.R2
	return c, nil
}

// HostSystem wraps a host characterization as a machine.System so the
// simulator and cost tooling can treat the local machine as one more
// catalog entry (price zero: you already own it).
func HostSystem(c *Characterization) *machine.System {
	return &machine.System{
		Name:         "Local host",
		Abbrev:       "host",
		CPU:          runtime.GOARCH,
		TotalCores:   c.TotalCores,
		CoresPerNode: c.CoresPerNode,
		VCPUsPerCore: 1,
		Mem: machine.MemoryModel{
			A1: c.Mem.A1, A2: c.Mem.A2, A3: c.Mem.A3,
			HTEfficiency: 1,
		},
		InterNode:           c.Inter,
		IntraNode:           c.Intra,
		NoiseCV:             0.02,
		PricePerNodeHourUSD: 0,
	}
}
