// Package perfmodel implements the paper's primary contribution: the
// performance models of Section II-D that predict LBM throughput on a
// candidate system from microbenchmark characterization alone.
//
// Two predictors are provided, exactly as the paper evaluates:
//
//   - The direct model consumes the actual parallel decomposition — every
//     task's byte count from Eq. 9 and its real halo messages — and prices
//     them with the fitted two-line bandwidth curve (Eq. 8) and raw
//     PingPong timings (interpolated, as the paper's direct model does).
//
//   - The generalized model knows only scalar workload descriptors (total
//     points, serial bytes) and estimates the decomposition a priori via
//     the load-imbalance law z(n) (Eqs. 10-11), the halo-size law
//     (Eqs. 13-14) and the message-event law (Eq. 15), pricing
//     communication with the linear model (Eqs. 12, 16).
//
// Both combine memory and communication as T = max_j(t_mem) + max_j(t_comm)
// (Eq. 6) and report throughput in MFLUPS (Eq. 7).
package perfmodel

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/fit"
	"repro/internal/machine"
	"repro/internal/mbench"
	"repro/internal/simcloud"
	"repro/internal/units"
)

// Characterization holds everything the models know about one system —
// all of it obtained from microbenchmarks, never from the machine's
// ground-truth parameters.
type Characterization struct {
	System       string
	CoresPerNode int
	TotalCores   int

	Mem        fit.TwoLine       // Eq. 8 fit of the STREAM Copy sweep
	Inter      machine.LinkModel // Eq. 12 fit, inter-node
	Intra      machine.LinkModel // Eq. 12 fit, intra-node
	FitQuality struct {
		MemR2, InterR2, IntraR2 float64
	}

	// Raw PingPong sweeps, kept for the direct model's interpolation.
	RawInter []mbench.PingPongPoint
	RawIntra []mbench.PingPongPoint

	// PCIe is the fitted host-device link on accelerator instances (nil
	// for CPU systems); RawPCIe the sweep behind it. They price Eq. 2's
	// t_CPU-GPU term.
	PCIe    *machine.LinkModel
	RawPCIe []mbench.PingPongPoint
}

// Characterize benchmarks a modeled system: a STREAM thread sweep fitted
// with the two-line model and PingPong size sweeps (intra- and inter-node)
// fitted with the linear model. samples controls averaging per point; rng
// may be nil for noiseless characterization.
func Characterize(sys *machine.System, samples int, rng *rand.Rand) (*Characterization, error) {
	c := &Characterization{
		System:       sys.Abbrev,
		CoresPerNode: sys.CoresPerNode,
		TotalCores:   sys.TotalCores,
	}
	stream := mbench.StreamSweepSim(sys, false, samples, rng)
	mem, err := mbench.FitStream(stream)
	if err != nil {
		return nil, fmt.Errorf("perfmodel: STREAM fit for %s: %w", sys.Abbrev, err)
	}
	c.Mem = mem
	c.FitQuality.MemR2 = mem.R2

	sizes := mbench.DefaultMessageSizes()
	c.RawInter = mbench.PingPongSweepSim(sys, false, sizes, samples, rng)
	inter, interLine, err := mbench.FitPingPong(c.RawInter)
	if err != nil {
		return nil, fmt.Errorf("perfmodel: inter-node PingPong fit for %s: %w", sys.Abbrev, err)
	}
	c.Inter = inter
	c.FitQuality.InterR2 = interLine.R2

	c.RawIntra = mbench.PingPongSweepSim(sys, true, sizes, samples, rng)
	intra, intraLine, err := mbench.FitPingPong(c.RawIntra)
	if err != nil {
		return nil, fmt.Errorf("perfmodel: intra-node PingPong fit for %s: %w", sys.Abbrev, err)
	}
	c.Intra = intra
	c.FitQuality.IntraR2 = intraLine.R2

	if sys.GPU != nil {
		c.RawPCIe = mbench.PCIeSweepSim(sys, sizes, samples, rng)
		pcie, _, err := mbench.FitPingPong(c.RawPCIe)
		if err != nil {
			return nil, fmt.Errorf("perfmodel: PCIe fit for %s: %w", sys.Abbrev, err)
		}
		c.PCIe = &pcie
	}
	return c, nil
}

// interpolateUS returns the message time in µs for a payload of m bytes from
// raw PingPong points by piecewise-linear interpolation, extrapolating the
// last segment beyond the sweep — how the paper's direct model uses
// "PingPong measurement raw data".
func interpolateUS(pts []mbench.PingPongPoint, m float64) float64 {
	if len(pts) == 0 {
		return 0
	}
	sorted := append([]mbench.PingPongPoint(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Bytes < sorted[j].Bytes })
	if m <= sorted[0].Bytes {
		return sorted[0].TimeUS
	}
	for i := 1; i < len(sorted); i++ {
		if m <= sorted[i].Bytes {
			a, b := sorted[i-1], sorted[i]
			frac := (m - a.Bytes) / (b.Bytes - a.Bytes)
			return a.TimeUS + frac*(b.TimeUS-a.TimeUS)
		}
	}
	// Extrapolate from the last two points.
	a, b := sorted[len(sorted)-2], sorted[len(sorted)-1]
	slope := (b.TimeUS - a.TimeUS) / (b.Bytes - a.Bytes)
	return b.TimeUS + slope*(m-b.Bytes)
}

// Prediction is one model evaluation for a workload at a rank count.
type Prediction struct {
	Model  string // "direct" or "generalized"
	System string
	Ranks  int

	SecondsPerStep float64
	MFLUPS         float64

	// Composition of the gating task's time (Figures 9 and 10). For the
	// direct model IntraS/InterS are populated; for the generalized model
	// CommBandwidthS/CommLatencyS split Eq. 16's two terms. CPUGPUs is
	// Eq. 2's host-device staging term on accelerator instances.
	MemS           float64
	IntraS         float64
	InterS         float64
	CPUGPUs        float64
	CommBandwidthS float64
	CommLatencyS   float64

	// Provenance (DESIGN.md §13): which accuracy tier produced the
	// number and how far the backend's data had to stretch to do it.
	// All fields are comparable, so Prediction keeps struct equality.
	Tier string
	// Extrapolated is set when the prediction leaves the backend's
	// data: outside the measured hull (Tier 2) or past the
	// characterized instance's core count (Tier 1 generalized model).
	Extrapolated bool
	// TableDistance (Tier 2 only) is the log2-space distance to the
	// nearest measured row; 0 on an exact hit.
	TableDistance float64
	// FitResidual (Tier 1 only) is 1 − min(R²) over the calibrated
	// fits — the worst fit's unexplained variance.
	FitResidual float64
	// Confidence brackets MFLUPS with the tier's own error model.
	Confidence Band
}

// predictDirect is the direct-model implementation behind Predict.
func (c *Characterization) predictDirect(w simcloud.Workload, occupancy float64) (Prediction, error) {
	ranks := len(w.Tasks)
	if ranks == 0 {
		return Prediction{}, fmt.Errorf("perfmodel: empty workload %q", w.Name)
	}
	if occupancy < 0 || occupancy > 1 {
		return Prediction{}, fmt.Errorf("perfmodel: occupancy %g outside [0,1]", occupancy)
	}
	nodeOf := func(task int) int { return task / c.CoresPerNode }
	// Tasks per node under the same block placement the runs use.
	perNode := make(map[int]int)
	for t := 0; t < ranks; t++ {
		perNode[nodeOf(t)]++
	}

	var maxMem, maxComm, maxIntra, maxInter, maxPCIe float64
	for t := range w.Tasks {
		k := float64(perNode[nodeOf(t)])
		total := k + occupancy*float64(c.CoresPerNode-int(k))
		share := units.MBpsToBps(c.Mem.Eval(total) / total) // bytes/s available to this task
		memS := w.Tasks[t].Bytes / share

		var intraS, interS, pcieS float64
		for _, msg := range w.Tasks[t].Sends {
			if nodeOf(msg.Peer) == nodeOf(t) {
				intraS += 2 * units.MicrosToSeconds(interpolateUS(c.RawIntra, msg.Bytes))
			} else {
				interS += 2 * units.MicrosToSeconds(interpolateUS(c.RawInter, msg.Bytes))
			}
			if c.PCIe != nil {
				// Eq. 2's t_CPU-GPU: every halo message is staged through
				// host memory on the way out and back in.
				pcieS += 2 * units.MicrosToSeconds(interpolateUS(c.RawPCIe, msg.Bytes))
			}
		}
		maxMem = math.Max(maxMem, memS)
		maxComm = math.Max(maxComm, intraS+interS+pcieS)
		maxIntra = math.Max(maxIntra, intraS)
		maxInter = math.Max(maxInter, interS)
		maxPCIe = math.Max(maxPCIe, pcieS)
	}
	p := Prediction{
		Model: "direct", System: c.System, Ranks: ranks,
		SecondsPerStep: maxMem + maxComm,
		MemS:           maxMem, IntraS: maxIntra, InterS: maxInter, CPUGPUs: maxPCIe,
	}
	p.MFLUPS = float64(w.Points) / p.SecondsPerStep / 1e6
	return p, nil
}

// WorkloadSummary is the scalar description the generalized model works
// from — everything a user can state about a simulation before
// decomposing it.
type WorkloadSummary struct {
	Name        string
	Points      int     // N, total fluid points
	BytesSerial float64 // n_bytes-serial of Eq. 10
}

// GeneralModel carries the empirically fitted laws the generalized
// predictor needs beyond a system characterization.
type GeneralModel struct {
	Z      fit.LogLaw // Eq. 11 load-imbalance law
	Events EventsLaw  // Eq. 15 message-event law

	// PointCommBytes is n_point-comm-bytes of Eq. 13: bytes exchanged per
	// boundary point. For D3Q19 halos roughly five distributions cross a
	// face per point; DefaultPointCommBytes captures that.
	PointCommBytes float64
}

// DefaultPointCommBytes is the Eq. 13 per-boundary-point payload used when
// no calibration is available: five crossing distributions of 8 bytes.
const DefaultPointCommBytes = 40

// MaxNeighbors is the cap w of Eq. 14: a task in a cubic decomposition
// has at most 6 face neighbors.
const MaxNeighbors = 6

// EventsLaw is Eq. 15: n_max-events = 4 log2((k1/n_n + k2)(n - n_n) + 1).
type EventsLaw struct {
	K1, K2 float64
	SSE    float64
	R2     float64
}

// Eval returns the modeled maximum message events for n tasks on nn nodes.
func (e EventsLaw) Eval(ntasks, nn float64) float64 {
	if ntasks <= nn {
		return 0
	}
	arg := (e.K1/nn+e.K2)*(ntasks-nn) + 1
	if arg <= 1 {
		return 0
	}
	return 4 * math.Log2(arg)
}

// predictGeneral is the generalized-model implementation behind Predict.
// Rank counts may exceed the characterized instance's size — the paper's
// Figure 11 extrapolates the aorta to 2048 cores on 144-core cloud
// instances this way; such predictions are flagged Extrapolated.
func (c *Characterization) predictGeneral(ws WorkloadSummary, g GeneralModel, ranks int) (Prediction, error) {
	if ranks < 1 {
		return Prediction{}, fmt.Errorf("perfmodel: ranks %d must be positive", ranks)
	}
	if ws.Points <= 0 || ws.BytesSerial <= 0 {
		return Prediction{}, fmt.Errorf("perfmodel: workload summary %q incomplete", ws.Name)
	}
	n := float64(ranks)
	z := g.Z.Eval(n)

	// Eq. 10: busiest task's bytes; memory time at its bandwidth share.
	maxBytes := z * ws.BytesSerial / n
	k := math.Min(n, float64(c.CoresPerNode))
	share := units.MBpsToBps(c.Mem.Eval(k) / k)
	memS := maxBytes / share

	var commBW, commLat, pcieS float64
	if ranks > 1 {
		// Eq. 14 then Eq. 13.
		w := math.Min(math.Log2(n), MaxNeighbors)
		pcb := g.PointCommBytes
		//lint:ignore floateq 0 is the unset-field sentinel selecting the default
		if pcb == 0 {
			pcb = DefaultPointCommBytes
		}
		mMaxTotal := w / MaxNeighbors * math.Pow(z*float64(ws.Points)/n, 2.0/3.0) * 2 * pcb
		nn := math.Ceil(n / float64(c.CoresPerNode))
		if c.PCIe != nil {
			// Eq. 2's t_CPU-GPU: the whole halo is staged through host
			// memory on the way out and back in, priced on the fitted
			// PCIe link with one staging event per neighbor pair.
			w2 := math.Min(math.Log2(n), MaxNeighbors)
			pcieS = 2*mMaxTotal/units.MBpsToBps(c.PCIe.BandwidthMBps) + 2*w2*units.MicrosToSeconds(c.PCIe.LatencyUS)
		}
		if nn >= 2 {
			// Eq. 15 event count, then Eq. 16 split into its bandwidth and
			// latency terms (Figure 10), priced on the interconnect.
			events := g.Events.Eval(n, nn)
			commBW = mMaxTotal / units.MBpsToBps(c.Inter.BandwidthMBps)
			commLat = events * units.MicrosToSeconds(c.Inter.LatencyUS)
		} else {
			// The job fits one node: no interconnect is crossed, so the
			// halo moves on the intra-node link. The paper's multi-node
			// experiments never hit this branch, but single-node cloud
			// jobs are common and pricing them at interconnect latency
			// would be grossly pessimistic.
			events := 4 * math.Min(math.Log2(n)*2, 2*w)
			commBW = mMaxTotal / units.MBpsToBps(c.Intra.BandwidthMBps)
			commLat = events * units.MicrosToSeconds(c.Intra.LatencyUS)
		}
	}

	p := Prediction{
		Model: "generalized", System: c.System, Ranks: ranks,
		SecondsPerStep: memS + commBW + commLat + pcieS,
		MemS:           memS,
		CPUGPUs:        pcieS,
		CommBandwidthS: commBW,
		CommLatencyS:   commLat,
	}
	p.MFLUPS = float64(ws.Points) / p.SecondsPerStep / 1e6
	return p, nil
}
