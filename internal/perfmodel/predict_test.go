package perfmodel

import (
	"strings"
	"testing"

	"repro/internal/decomp"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/simcloud"
)

func testWorkload(t *testing.T, ranks int) (*lbm.Sparse, simcloud.Workload) {
	t.Helper()
	s := cylinderSolver(t)
	p, err := decomp.RCB(s, ranks, lbm.HarveyAccess())
	if err != nil {
		t.Fatal(err)
	}
	return s, simcloud.FromPartition("cyl", s.N(), p)
}

// TestPredictMatchesDeprecatedEntrypoints pins the API redesign's core
// contract: the unified Predict call returns byte-identical predictions
// to each of the historical entrypoints it replaced.
func TestPredictMatchesDeprecatedEntrypoints(t *testing.T) {
	c := characterizeNoiseless(t, machine.NewCSP2())
	s, w := testWorkload(t, 16)

	wantDirect, err := c.PredictDirect(w)
	if err != nil {
		t.Fatal(err)
	}
	gotDirect, err := c.Predict(Request{Workload: &w})
	if err != nil {
		t.Fatal(err)
	}
	if gotDirect != wantDirect {
		t.Errorf("Predict(direct) = %+v, want %+v", gotDirect, wantDirect)
	}

	wantShared, err := c.PredictDirectShared(w, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	gotShared, err := c.Predict(Request{Model: ModelDirect, Workload: &w, Occupancy: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if gotShared != wantShared {
		t.Errorf("Predict(direct, occupancy) = %+v, want %+v", gotShared, wantShared)
	}

	g, err := CalibrateGeneral(s, lbm.HarveyAccess(), []int{1, 2, 4, 8, 16, 32}, 36)
	if err != nil {
		t.Fatal(err)
	}
	ws := WorkloadSummary{Name: "cyl", Points: s.N(), BytesSerial: s.BytesSerial(lbm.HarveyAccess())}
	wantGen, err := c.PredictGeneral(ws, g, 16)
	if err != nil {
		t.Fatal(err)
	}
	gotGen, err := c.Predict(Request{Summary: &ws, General: g, Ranks: 16})
	if err != nil {
		t.Fatal(err)
	}
	if gotGen != wantGen {
		t.Errorf("Predict(general) = %+v, want %+v", gotGen, wantGen)
	}
}

func TestPredictInfersModel(t *testing.T) {
	c := characterizeNoiseless(t, machine.NewCSP2())
	s, w := testWorkload(t, 8)

	p, err := c.Predict(Request{Workload: &w})
	if err != nil {
		t.Fatal(err)
	}
	if p.Model != ModelDirect {
		t.Errorf("inferred model %q, want %q", p.Model, ModelDirect)
	}

	g, err := CalibrateGeneral(s, lbm.HarveyAccess(), []int{1, 2, 4, 8}, 36)
	if err != nil {
		t.Fatal(err)
	}
	ws := WorkloadSummary{Name: "cyl", Points: s.N(), BytesSerial: s.BytesSerial(lbm.HarveyAccess())}
	p, err = c.Predict(Request{Summary: &ws, General: g, Ranks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if p.Model != ModelGeneral {
		t.Errorf("inferred model %q, want %q", p.Model, ModelGeneral)
	}
}

func TestPredictValidation(t *testing.T) {
	c := characterizeNoiseless(t, machine.NewCSP2())
	s, w := testWorkload(t, 8)
	g, err := CalibrateGeneral(s, lbm.HarveyAccess(), []int{1, 2, 4, 8}, 36)
	if err != nil {
		t.Fatal(err)
	}
	ws := WorkloadSummary{Name: "cyl", Points: s.N(), BytesSerial: s.BytesSerial(lbm.HarveyAccess())}

	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"empty", Request{}, "neither"},
		{"ambiguous", Request{Workload: &w, Summary: &ws}, "disambiguate"},
		{"ranks disagree", Request{Workload: &w, Ranks: 99}, "decomposes into"},
		{"terms on general", Request{Summary: &ws, General: g, Ranks: 8, Terms: []Term{CouplingTerm("coupling", 1)}}, "direct model only"},
		{"direct without workload", Request{Model: ModelDirect}, "needs a decomposed workload"},
		{"general without summary", Request{Model: ModelGeneral}, "needs a workload summary"},
		{"unknown model", Request{Model: "quantum", Workload: &w}, "unknown model"},
	}
	for _, tc := range cases {
		_, err := c.Predict(tc.req)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}

// TestPredictRanksConsistent accepts an explicit rank count that agrees
// with the decomposition.
func TestPredictRanksConsistent(t *testing.T) {
	c := characterizeNoiseless(t, machine.NewCSP2())
	_, w := testWorkload(t, 8)
	if _, err := c.Predict(Request{Workload: &w, Ranks: len(w.Tasks)}); err != nil {
		t.Fatalf("consistent ranks rejected: %v", err)
	}
}
