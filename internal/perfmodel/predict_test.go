package perfmodel

import (
	"math"
	"strings"
	"testing"

	"repro/internal/decomp"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/simcloud"
)

func testWorkload(t *testing.T, ranks int) (*lbm.Sparse, simcloud.Workload) {
	t.Helper()
	s := cylinderSolver(t)
	p, err := decomp.RCB(s, ranks, lbm.HarveyAccess())
	if err != nil {
		t.Fatal(err)
	}
	return s, simcloud.FromPartition("cyl", s.N(), p)
}

// closeTo pins a float against a golden value to a relative tolerance
// loose enough to survive FP-order-of-evaluation differences across
// architectures but tight enough to catch any model change.
func closeTo(t *testing.T, name string, got, want float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s = %v, want 0", name, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > 1e-9 {
		t.Errorf("%s = %v, want %v (rel err %.2e)", name, got, want, math.Abs(got-want)/math.Abs(want))
	}
}

// TestPredictTier1Golden pins the Tier 1 calibrated model against golden
// values. The deleted deprecated wrappers (PredictDirect and friends)
// were thin forwards to Predict, and their equivalence test proved that;
// these goldens were recorded from that same noiseless CSP-2 path, so
// they also pin that the wrapper deletion changed no numbers.
func TestPredictTier1Golden(t *testing.T) {
	c := characterizeNoiseless(t, machine.NewCSP2())
	s, w := testWorkload(t, 16)

	direct, err := c.Predict(Request{Workload: &w})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Model != ModelDirect || direct.System != "CSP-2" || direct.Ranks != 16 {
		t.Fatalf("direct header = %q/%q/%d", direct.Model, direct.System, direct.Ranks)
	}
	closeTo(t, "direct.MFLUPS", direct.MFLUPS, 177.26293215118187)
	closeTo(t, "direct.SecondsPerStep", direct.SecondsPerStep, 6.850840078422471e-05)

	shared, err := c.Predict(Request{Model: ModelDirect, Workload: &w, Occupancy: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	closeTo(t, "shared.MFLUPS", shared.MFLUPS, 134.36784684327878)

	g, err := CalibrateGeneral(s, lbm.HarveyAccess(), []int{1, 2, 4, 8, 16, 32}, 36)
	if err != nil {
		t.Fatal(err)
	}
	ws := WorkloadSummary{Name: "cyl", Points: s.N(), BytesSerial: s.BytesSerial(lbm.HarveyAccess())}
	gen, err := c.Predict(Request{Summary: &ws, General: g, Ranks: 16})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Model != ModelGeneral {
		t.Fatalf("general model = %q", gen.Model)
	}
	closeTo(t, "general.MFLUPS", gen.MFLUPS, 167.00156125078988)
}

// TestPredictTier1Provenance checks the provenance stamped on every
// calibrated prediction: tier name, fit residual, confidence band, and
// the Figure-11 extrapolation flag.
func TestPredictTier1Provenance(t *testing.T) {
	c := characterizeNoiseless(t, machine.NewCSP2())
	s, w := testWorkload(t, 16)

	p, err := c.Predict(Request{Workload: &w})
	if err != nil {
		t.Fatal(err)
	}
	if p.Tier != Tier1Calibrated {
		t.Errorf("Tier = %q, want %q", p.Tier, Tier1Calibrated)
	}
	if p.Extrapolated {
		t.Error("in-range direct prediction flagged extrapolated")
	}
	if p.FitResidual < 0 || p.FitResidual > 0.5 {
		t.Errorf("FitResidual = %v out of plausible range", p.FitResidual)
	}
	if p.Confidence.LoMFLUPS >= p.MFLUPS || p.Confidence.HiMFLUPS <= p.MFLUPS {
		t.Errorf("confidence band %+v does not bracket MFLUPS %v", p.Confidence, p.MFLUPS)
	}

	// Tier selector on a bare characterization: "" and tier1 work,
	// other tiers are refused, junk is named invalid.
	if _, err := c.Predict(Request{Workload: &w, Tier: Tier1Calibrated}); err != nil {
		t.Errorf("explicit tier1 rejected: %v", err)
	}
	if _, err := c.Predict(Request{Workload: &w, Tier: Tier2Measured}); err == nil {
		t.Error("bare characterization accepted tier2")
	}
	if _, err := c.Predict(Request{Workload: &w, Tier: "best"}); err == nil || !strings.Contains(err.Error(), "valid") {
		t.Errorf("unknown tier error %v does not name the valid set", err)
	}

	// Ranks beyond the characterized instance flag extrapolation.
	g, err := CalibrateGeneral(s, lbm.HarveyAccess(), []int{1, 2, 4, 8}, 36)
	if err != nil {
		t.Fatal(err)
	}
	ws := WorkloadSummary{Name: "cyl", Points: s.N(), BytesSerial: s.BytesSerial(lbm.HarveyAccess())}
	far, err := c.Predict(Request{Summary: &ws, General: g, Ranks: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if !far.Extrapolated {
		t.Error("2048 ranks on a 144-core characterization not flagged extrapolated")
	}
	near, err := c.Predict(Request{Summary: &ws, General: g, Ranks: 36})
	if err != nil {
		t.Fatal(err)
	}
	if near.Extrapolated {
		t.Error("in-range generalized prediction flagged extrapolated")
	}
}

func TestPredictInfersModel(t *testing.T) {
	c := characterizeNoiseless(t, machine.NewCSP2())
	s, w := testWorkload(t, 8)

	p, err := c.Predict(Request{Workload: &w})
	if err != nil {
		t.Fatal(err)
	}
	if p.Model != ModelDirect {
		t.Errorf("inferred model %q, want %q", p.Model, ModelDirect)
	}

	g, err := CalibrateGeneral(s, lbm.HarveyAccess(), []int{1, 2, 4, 8}, 36)
	if err != nil {
		t.Fatal(err)
	}
	ws := WorkloadSummary{Name: "cyl", Points: s.N(), BytesSerial: s.BytesSerial(lbm.HarveyAccess())}
	p, err = c.Predict(Request{Summary: &ws, General: g, Ranks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if p.Model != ModelGeneral {
		t.Errorf("inferred model %q, want %q", p.Model, ModelGeneral)
	}
}

func TestPredictValidation(t *testing.T) {
	c := characterizeNoiseless(t, machine.NewCSP2())
	s, w := testWorkload(t, 8)
	g, err := CalibrateGeneral(s, lbm.HarveyAccess(), []int{1, 2, 4, 8}, 36)
	if err != nil {
		t.Fatal(err)
	}
	ws := WorkloadSummary{Name: "cyl", Points: s.N(), BytesSerial: s.BytesSerial(lbm.HarveyAccess())}

	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"empty", Request{}, "neither"},
		{"ambiguous", Request{Workload: &w, Summary: &ws}, "disambiguate"},
		{"ranks disagree", Request{Workload: &w, Ranks: 99}, "decomposes into"},
		{"terms on general", Request{Summary: &ws, General: g, Ranks: 8, Terms: []Term{CouplingTerm("coupling", 1)}}, "direct model only"},
		{"direct without workload", Request{Model: ModelDirect}, "needs a decomposed workload"},
		{"general without summary", Request{Model: ModelGeneral}, "needs a workload summary"},
		{"unknown model", Request{Model: "quantum", Workload: &w}, "unknown model"},
		{"unknown tier", Request{Workload: &w, Tier: "tier9"}, "unknown tier"},
		{"foreign tier", Request{Workload: &w, Tier: Tier0Physics}, "use a Predictor"},
	}
	for _, tc := range cases {
		_, err := c.Predict(tc.req)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}

// TestPredictRanksConsistent accepts an explicit rank count that agrees
// with the decomposition.
func TestPredictRanksConsistent(t *testing.T) {
	c := characterizeNoiseless(t, machine.NewCSP2())
	_, w := testWorkload(t, 8)
	if _, err := c.Predict(Request{Workload: &w, Ranks: len(w.Tasks)}); err != nil {
		t.Fatalf("consistent ranks rejected: %v", err)
	}
}
