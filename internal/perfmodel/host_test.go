package perfmodel

import "testing"

func TestCharacterizeHost(t *testing.T) {
	c, err := CharacterizeHost(1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.System != "host" || c.TotalCores < 1 {
		t.Fatalf("host identity wrong: %+v", c)
	}
	// The fitted bandwidth at one thread is a plausible machine number.
	if bw := c.Mem.Eval(1); bw < 100 || bw > 1e9 {
		t.Errorf("implausible host bandwidth %v MB/s", bw)
	}
	if c.Intra.LatencyUS <= 0 || c.Intra.BandwidthMBps <= 0 {
		t.Errorf("host link degenerate: %+v", c.Intra)
	}
	if len(c.RawIntra) == 0 || len(c.RawInter) == 0 {
		t.Error("raw sweeps missing")
	}
	// The wrapped system is usable by the simulator's placement logic.
	sys := HostSystem(c)
	if sys.MaxRanks() != c.TotalCores || sys.PricePerNodeHourUSD != 0 {
		t.Errorf("host system wrap wrong: %+v", sys)
	}
	if sys.JobCost(1, 3600) != 0 {
		t.Error("the machine you own should not bill")
	}
}

func TestCharacterizeHostValidation(t *testing.T) {
	if _, err := CharacterizeHost(0, 1); err == nil {
		t.Error("want error for an empty working set")
	}
}
