package perfmodel

import (
	"embed"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Tier 2: measured lookup. A Table holds per-(system, kernel, points,
// ranks) throughput rows harvested from real (here: simulated-measured)
// runs — the InferSim "CSV cheat-sheet" pattern. LookupBackend serves
// predictions by deterministic nearest-neighbor interpolation over the
// rows for a (system, kernel) pair, flagging queries that leave the
// measured hull as extrapolated.

// ModelMeasured marks predictions produced from lookup tables rather
// than from either analytical model.
const ModelMeasured = "measured"

// TableRow is one measured sample: sustained throughput of kernel on
// system at a given problem size and rank count.
type TableRow struct {
	System string
	Kernel string
	Points int
	Ranks  int
	MFLUPS float64
}

// tableKey orders and groups rows; the CSV on disk must be sorted by it.
func (r TableRow) key() [4]string {
	return [4]string{r.System, r.Kernel,
		fmt.Sprintf("%020d", r.Points), fmt.Sprintf("%020d", r.Ranks)}
}

// Table is an immutable, validated set of measured rows grouped by
// (system, kernel). Build one with LoadTable (or take DefaultTable).
type Table struct {
	rows   []TableRow
	groups map[[2]string][]TableRow
}

// tableHeader is the required first line of every table CSV.
const tableHeader = "system,kernel,points,ranks,mflups"

// LoadTable parses and validates table CSV. Errors carry 1-based line
// numbers. Validation is strict — exact header, five fields, positive
// numerics, rows strictly sorted ascending by (system, kernel, points,
// ranks) with no duplicates — so that a committed table that drifts is
// caught by the lint step, not by a bad prediction.
func LoadTable(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // length-checked per row for line-numbered errors
	t := &Table{groups: make(map[[2]string][]TableRow)}
	var prev TableRow
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table line %d: %v", line, err)
		}
		if line == 1 {
			if strings.Join(rec, ",") != tableHeader {
				return nil, fmt.Errorf("table line 1: header %q, want %q", strings.Join(rec, ","), tableHeader)
			}
			continue
		}
		if len(rec) != 5 {
			return nil, fmt.Errorf("table line %d: %d fields, want 5", line, len(rec))
		}
		row := TableRow{System: rec[0], Kernel: rec[1]}
		if row.System == "" || row.Kernel == "" {
			return nil, fmt.Errorf("table line %d: empty system or kernel", line)
		}
		if row.Points, err = strconv.Atoi(rec[2]); err != nil || row.Points <= 0 {
			return nil, fmt.Errorf("table line %d: bad points %q", line, rec[2])
		}
		if row.Ranks, err = strconv.Atoi(rec[3]); err != nil || row.Ranks <= 0 {
			return nil, fmt.Errorf("table line %d: bad ranks %q", line, rec[3])
		}
		if row.MFLUPS, err = strconv.ParseFloat(rec[4], 64); err != nil || row.MFLUPS <= 0 || math.IsInf(row.MFLUPS, 0) {
			return nil, fmt.Errorf("table line %d: bad mflups %q", line, rec[4])
		}
		if len(t.rows) > 0 {
			switch a, b := prev.key(), row.key(); {
			case a == b:
				return nil, fmt.Errorf("table line %d: duplicate row for (%s, %s, %d, %d)",
					line, row.System, row.Kernel, row.Points, row.Ranks)
			case !less(a, b):
				return nil, fmt.Errorf("table line %d: rows not sorted by (system, kernel, points, ranks)", line)
			}
		}
		prev = row
		t.rows = append(t.rows, row)
		g := [2]string{row.System, row.Kernel}
		t.groups[g] = append(t.groups[g], row)
	}
	if len(t.rows) == 0 {
		return nil, fmt.Errorf("table line 1: no data rows (empty table)")
	}
	return t, nil
}

func less(a, b [4]string) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// ValidateTableCSV runs LoadTable's full validation and reports row and
// group counts; cmd/lint calls it to gate committed tables in CI.
func ValidateTableCSV(r io.Reader) (rows, groups int, err error) {
	t, err := LoadTable(r)
	if err != nil {
		return 0, 0, err
	}
	return len(t.rows), len(t.groups), nil
}

// Len returns the number of measured rows.
func (t *Table) Len() int { return len(t.rows) }

// Systems returns the sorted set of systems with at least one row.
func (t *Table) Systems() []string {
	seen := map[string]bool{}
	for _, r := range t.rows {
		seen[r.System] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Covers reports whether the table has any row for (system, kernel).
func (t *Table) Covers(system, kernel string) bool {
	if kernel == "" {
		kernel = DefaultKernel
	}
	return len(t.groups[[2]string{system, kernel}]) > 0
}

// maxNeighbors is how many nearest table rows contribute to an
// interpolated lookup.
const maxNeighbors = 4

// Lookup interpolates throughput for (system, kernel) at a problem size
// and rank count. Interpolation runs in (log2 points, log2 ranks) space:
// up to maxNeighbors nearest rows are blended with inverse-distance
// weights. Determinism: candidates are ranked by (distance, table
// order), so equidistant neighbors tie-break on the table's sorted key
// order and equal inputs always produce equal outputs. dist is the
// log-space distance to the nearest row (0 on an exact hit);
// extrapolated is set when the query falls outside the group's measured
// bounding box.
func (t *Table) Lookup(system, kernel string, points, ranks int) (mflups, dist float64, extrapolated bool, err error) {
	if kernel == "" {
		kernel = DefaultKernel
	}
	if points <= 0 || ranks <= 0 {
		return 0, 0, false, fmt.Errorf("perfmodel: lookup needs positive points and ranks (got %d, %d)", points, ranks)
	}
	rows := t.groups[[2]string{system, kernel}]
	if len(rows) == 0 {
		return 0, 0, false, fmt.Errorf("%w: table has no rows for system %q kernel %q", ErrNoData, system, kernel)
	}
	qp, qr := math.Log2(float64(points)), math.Log2(float64(ranks))
	type cand struct {
		idx int
		d   float64
	}
	cands := make([]cand, len(rows))
	minP, maxP := math.Inf(1), math.Inf(-1)
	minR, maxR := math.Inf(1), math.Inf(-1)
	for i, r := range rows {
		rp, rr := math.Log2(float64(r.Points)), math.Log2(float64(r.Ranks))
		cands[i] = cand{idx: i, d: math.Hypot(qp-rp, qr-rr)}
		minP, maxP = math.Min(minP, rp), math.Max(maxP, rp)
		minR, maxR = math.Min(minR, rr), math.Max(maxR, rr)
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	extrapolated = qp < minP || qp > maxP || qr < minR || qr > maxR
	dist = cands[0].d
	//lint:ignore floateq an exact-key hit yields a distance of literally 0 (log2 of equal ints), and 1/d below needs the guard at exactly that value
	if dist == 0 {
		return rows[cands[0].idx].MFLUPS, 0, extrapolated, nil
	}
	n := maxNeighbors
	if n > len(cands) {
		n = len(cands)
	}
	var num, den float64
	for _, c := range cands[:n] {
		w := 1 / c.d
		num += w * rows[c.idx].MFLUPS
		den += w
	}
	return num / den, dist, extrapolated, nil
}

//go:embed tables/*.csv
var embeddedTables embed.FS

var (
	defaultTableOnce sync.Once
	defaultTable     *Table
	defaultTableErr  error
)

// DefaultTable returns the table built from the committed CSVs under
// internal/perfmodel/tables/ (regenerate with `cmd/experiments
// -gen-tables`). The embedded data is validated once at first use; a
// corrupt commit surfaces here and in the CI lint gate.
func DefaultTable() (*Table, error) {
	defaultTableOnce.Do(func() {
		names, err := embeddedTables.ReadDir("tables")
		if err != nil {
			defaultTableErr = err
			return
		}
		var buf strings.Builder
		buf.WriteString(tableHeader + "\n")
		for _, e := range names {
			b, err := embeddedTables.ReadFile("tables/" + e.Name())
			if err != nil {
				defaultTableErr = err
				return
			}
			s := strings.TrimPrefix(strings.TrimSpace(string(b)), tableHeader)
			buf.WriteString(strings.TrimSpace(s) + "\n")
		}
		defaultTable, defaultTableErr = LoadTable(strings.NewReader(buf.String()))
		if defaultTableErr != nil {
			defaultTableErr = fmt.Errorf("embedded tables: %v", defaultTableErr)
		}
	})
	return defaultTable, defaultTableErr
}

// LookupBackend is the Tier 2 Backend: it serves requests whose
// workload the table has measured, and declines (Covers == false) the
// parts of the request surface lookup cannot honor — occupancy
// degradation and calibrated terms, which only the analytical tiers
// model.
type LookupBackend struct {
	Sys   string
	Table *Table
}

// NewLookupBackend wraps a validated table for one system.
func NewLookupBackend(system string, table *Table) *LookupBackend {
	return &LookupBackend{Sys: system, Table: table}
}

// Tier returns Tier2Measured.
func (b *LookupBackend) Tier() string { return Tier2Measured }

// requestShape extracts (points, ranks) from either request form.
func (b *LookupBackend) requestShape(req Request) (points, ranks int, ok bool) {
	switch {
	case req.Workload != nil:
		if req.Ranks != 0 && req.Ranks != len(req.Workload.Tasks) {
			return 0, 0, false
		}
		return req.Workload.Points, len(req.Workload.Tasks), true
	case req.Summary != nil:
		return req.Summary.Points, req.Ranks, true
	}
	return 0, 0, false
}

// Covers reports whether the table can serve the request: a measured
// (system, kernel) group exists, no occupancy sharing, no terms.
func (b *LookupBackend) Covers(req Request) bool {
	if b.Table == nil || req.Occupancy > 0 || len(req.Terms) > 0 {
		return false
	}
	points, ranks, ok := b.requestShape(req)
	if !ok || points <= 0 || ranks <= 0 {
		return false
	}
	return b.Table.Covers(b.Sys, req.Kernel)
}

// Tier2BaseConfidenceRel is Tier 2's confidence half-width on an exact
// table hit (measurement noise floor); the band widens with table
// distance and doubles-plus when the query extrapolates off-hull.
const Tier2BaseConfidenceRel = 0.05

// Predict serves the request from the table. The result prices the
// whole step through measured MFLUPS, so the per-term breakdown
// (MemS/IntraS/InterS) is zero — lookup measures the sum, not the
// parts.
func (b *LookupBackend) Predict(req Request) (Prediction, error) {
	if b.Table == nil {
		return Prediction{}, fmt.Errorf("%w: no lookup table attached", ErrNoData)
	}
	if req.Occupancy > 0 {
		return Prediction{}, fmt.Errorf("perfmodel: measured tier does not model occupancy sharing")
	}
	if len(req.Terms) > 0 {
		return Prediction{}, fmt.Errorf("perfmodel: terms apply to the calibrated tier only")
	}
	points, ranks, ok := b.requestShape(req)
	if !ok {
		return Prediction{}, fmt.Errorf("perfmodel: request carries neither a usable workload nor a summary")
	}
	mflups, dist, extrap, err := b.Table.Lookup(b.Sys, req.Kernel, points, ranks)
	if err != nil {
		return Prediction{}, err
	}
	rel := Tier2BaseConfidenceRel + 0.1*dist
	if extrap {
		rel += 0.25
	}
	p := Prediction{
		Model:          ModelMeasured,
		System:         b.Sys,
		Ranks:          ranks,
		MFLUPS:         mflups,
		SecondsPerStep: float64(points) / (mflups * 1e6),
		Tier:           Tier2Measured,
		TableDistance:  dist,
		Extrapolated:   extrap,
	}
	p.Confidence = band(mflups, rel)
	return p, nil
}
