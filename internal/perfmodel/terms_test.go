package perfmodel

import (
	"testing"

	"repro/internal/decomp"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/roofline"
	"repro/internal/simcloud"
)

// observations generates (workload, measured) pairs on CSP-2 over a rank
// sweep, the data the feedback loop selects against.
func observations(t *testing.T, s *lbm.Sparse, sys *machine.System, ranks []int) []Observation {
	t.Helper()
	var obs []Observation
	for _, k := range ranks {
		p, err := decomp.RCB(s, k, lbm.HarveyAccess())
		if err != nil {
			t.Fatal(err)
		}
		w := simcloud.FromPartition("cyl", s.N(), p)
		res, err := simcloud.Run(w, sys, 20, nil)
		if err != nil {
			t.Fatal(err)
		}
		obs = append(obs, Observation{Workload: w, MeasuredMFLUPS: res.MFLUPS})
	}
	return obs
}

func TestSelectTermsKeepsOverheadRejectsFlops(t *testing.T) {
	// The simulated truth carries a kernel overhead the bare model cannot
	// see; the FLOP roofline term is negligible for bandwidth-bound LBM.
	// The paper's add-and-check loop must keep the former and discard the
	// latter.
	s := cylinderSolver(t)
	sys := machine.NewCSP2()
	c := characterizeNoiseless(t, sys)
	obs := observations(t, s, sys, []int{4, 9, 18, 36})

	overhead := OverheadTerm(simcloud.KernelOverhead - 1)
	flops := FlopTerm(
		roofline.D3Q19BGK(lbm.HarveyAccess().PointBytes(19)),
		roofline.Machine{PeakGFLOPS: 1500, PeakBandwidthGBps: 104},
	)
	res, err := c.SelectTerms([]Term{flops, overhead}, obs, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kept) != 1 || res.Kept[0] != overhead.Name {
		t.Errorf("kept %v, want only %q", res.Kept, overhead.Name)
	}
	if len(res.Rejected) != 1 || res.Rejected[0] != "flops" {
		t.Errorf("rejected %v, want only flops", res.Rejected)
	}
	if res.FinalMAPE >= res.BaseMAPE {
		t.Errorf("selection did not improve MAPE: %v -> %v", res.BaseMAPE, res.FinalMAPE)
	}
	if res.FinalMAPE > 0.10 {
		t.Errorf("final MAPE %v still above 10%%", res.FinalMAPE)
	}
}

func TestSelectTermsRejectsAllWhenNoneHelp(t *testing.T) {
	s := cylinderSolver(t)
	sys := machine.NewCSP2()
	c := characterizeNoiseless(t, sys)
	obs := observations(t, s, sys, []int{4, 18})
	// A grossly wrong constant term must not be kept.
	bogus := ConstantTerm("bogus-barrier", 10 /* seconds per step */)
	res, err := c.SelectTerms([]Term{bogus}, obs, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kept) != 0 {
		t.Errorf("kept %v, want nothing", res.Kept)
	}
	if res.FinalMAPE != res.BaseMAPE {
		t.Errorf("MAPE changed without kept terms: %v vs %v", res.FinalMAPE, res.BaseMAPE)
	}
}

func TestSelectTermsValidation(t *testing.T) {
	s := cylinderSolver(t)
	c := characterizeNoiseless(t, machine.NewCSP2())
	if _, err := c.SelectTerms(nil, nil, 0.01); err == nil {
		t.Error("want error for no observations")
	}
	obs := observations(t, s, machine.NewCSP2(), []int{4})
	if _, err := c.SelectTerms(nil, obs, -1); err == nil {
		t.Error("want error for negative threshold")
	}
	bad := []Observation{{Workload: obs[0].Workload, MeasuredMFLUPS: 0}}
	if _, err := c.SelectTerms(nil, bad, 0.01); err == nil {
		t.Error("want error for non-positive measurement")
	}
}

func TestPredictWithTerms(t *testing.T) {
	s := cylinderSolver(t)
	sys := machine.NewCSP2()
	c := characterizeNoiseless(t, sys)
	p, err := decomp.RCB(s, 18, lbm.HarveyAccess())
	if err != nil {
		t.Fatal(err)
	}
	w := simcloud.FromPartition("cyl", s.N(), p)
	base, err := c.Predict(Request{Model: ModelDirect, Workload: &w})
	if err != nil {
		t.Fatal(err)
	}
	withTerm, err := c.Predict(Request{Model: ModelDirect, Workload: &w, Terms: []Term{OverheadTerm(0.18)}})
	if err != nil {
		t.Fatal(err)
	}
	if withTerm.SecondsPerStep <= base.SecondsPerStep {
		t.Error("added term did not increase predicted time")
	}
	if withTerm.MFLUPS >= base.MFLUPS {
		t.Error("added term did not decrease predicted throughput")
	}
	// The term-corrected prediction is closer to the simulated truth.
	actual, err := simcloud.Run(w, sys, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if errBase, errTerm := absRel(base.MFLUPS, actual.MFLUPS), absRel(withTerm.MFLUPS, actual.MFLUPS); errTerm >= errBase {
		t.Errorf("term did not improve accuracy: %v vs %v", errTerm, errBase)
	}
}

func absRel(pred, meas float64) float64 {
	d := (pred - meas) / meas
	if d < 0 {
		return -d
	}
	return d
}

func TestCouplingTermScalesWithBytes(t *testing.T) {
	s := cylinderSolver(t)
	sys := machine.NewCSP2()
	c := characterizeNoiseless(t, sys)
	p, err := decomp.RCB(s, 18, lbm.HarveyAccess())
	if err != nil {
		t.Fatal(err)
	}
	w := simcloud.FromPartition("cyl", s.N(), p)
	base, err := c.Predict(Request{Model: ModelDirect, Workload: &w})
	if err != nil {
		t.Fatal(err)
	}
	small := CouplingTerm("cells-1MB", 1e6)
	big := CouplingTerm("cells-4MB", 4e6)
	eSmall := small.Eval(w, base)
	eBig := big.Eval(w, base)
	if eSmall <= 0 {
		t.Fatal("coupling term evaluated to zero")
	}
	if r := eBig / eSmall; r < 3.99 || r > 4.01 {
		t.Errorf("coupling term not linear in bytes: ratio %v", r)
	}
	// Pricing sanity: coupling bytes equal to the gating task's fluid
	// bytes (per task) should cost about one base memory time.
	var maxTask float64
	for _, task := range w.Tasks {
		if task.Bytes > maxTask {
			maxTask = task.Bytes
		}
	}
	equal := CouplingTerm("cells-eq", maxTask*float64(len(w.Tasks)))
	if e := equal.Eval(w, base); e < base.MemS*0.9 || e > base.MemS*1.1 {
		t.Errorf("equal-traffic coupling costs %v, want ~%v", e, base.MemS)
	}
	// Degenerate inputs return zero rather than exploding.
	if z := small.Eval(simcloud.Workload{}, base); z != 0 {
		t.Errorf("empty workload term = %v", z)
	}
}
