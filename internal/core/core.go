// Package core is the library's front door: it wires the substrates into
// the paper's Figure 1 framework. Phase one characterizes every candidate
// cloud instance into a CSP Option Dashboard; phase two tunes the
// performance model to a specific anatomy, predicts per-instance
// performance, drives the instance choice, guards the job against cost
// overruns, and feeds measurements back into the model (iterative
// refinement).
//
// Typical use:
//
//	fw, _ := core.NewFramework(machine.Catalog(), 5, 1)
//	anatomy, _ := fw.PrepareAnatomy("aorta", dom, lbm.Params{Tau: 0.9, UMax: 0.02})
//	pred, _ := fw.PredictGeneral(anatomy, "CSP-2 EC", 144)
//	spec, _ := fw.PlanJob(anatomy, "CSP-2 EC", 144, 10000, 0.10)
//	res, _ := fw.Provider.RunJob(spec)
//	fw.Record(anatomy, pred, res.Result)
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/cloud"
	"repro/internal/dashboard"
	"repro/internal/decomp"
	"repro/internal/geometry"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/monitor"
	"repro/internal/perfmodel"
	"repro/internal/simcloud"
)

// Framework is the assembled Figure 1 pipeline.
type Framework struct {
	Dashboard *dashboard.Dashboard
	Provider  *cloud.Provider
	Refiner   perfmodel.Refiner

	// Monitor is the SONAR-style telemetry store: every Observe cycle
	// appends a sample, giving baselines and regression detection over
	// the campaign's history.
	Monitor monitor.Store

	systems []*machine.System
	rng     *rand.Rand
}

// NewFramework characterizes the systems (phase one) and stands up the
// simulated provider. samples controls microbenchmark averaging; seed
// makes every noise process reproducible.
func NewFramework(systems []*machine.System, samples int, seed int64) (*Framework, error) {
	rng := rand.New(rand.NewSource(seed))
	d, err := dashboard.Build(systems, samples, rng)
	if err != nil {
		return nil, err
	}
	return &Framework{
		Dashboard: d,
		Provider:  cloud.NewProvider(systems, seed+1),
		systems:   systems,
		rng:       rng,
	}, nil
}

// Anatomy bundles a prepared simulation target: the solver over its
// geometry, the byte-access accounting, the scalar workload summary, and
// the anatomy-tuned generalized model (phase two of Figure 1).
type Anatomy struct {
	Name    string
	Solver  *lbm.Sparse
	Access  lbm.AccessModel
	Summary perfmodel.WorkloadSummary
	General perfmodel.GeneralModel
}

// CalibrationCounts is the task-count sweep used to fit the z-law and
// event-law when tuning the generalized model to an anatomy of n fluid
// points. Exported so the serving layer calibrates workloads exactly the
// way PrepareAnatomy does — the cache-key determinism contract depends
// on both paths sweeping identical counts.
func CalibrationCounts(n int) []int {
	var counts []int
	for k := 1; k <= n/8 && k <= 512; k *= 2 {
		counts = append(counts, k)
	}
	for len(counts) < 3 {
		counts = append(counts, len(counts)+1)
	}
	return counts
}

// PrepareAnatomy builds the solver for a domain and tunes the generalized
// model to it by decomposing over a task sweep (the paper's "anatomy-
// specific predictions"). The calibration node width is taken from the
// largest-node system in the dashboard so one tuning serves all entries.
func (f *Framework) PrepareAnatomy(name string, dom *geometry.Domain, p lbm.Params) (*Anatomy, error) {
	s, err := lbm.NewSparse(dom, p)
	if err != nil {
		return nil, err
	}
	access := lbm.HarveyAccess()
	coresPerNode := 1
	for _, sys := range f.systems {
		if sys.CoresPerNode > coresPerNode {
			coresPerNode = sys.CoresPerNode
		}
	}
	g, err := perfmodel.CalibrateGeneral(s, access, CalibrationCounts(s.N()), coresPerNode)
	if err != nil {
		return nil, fmt.Errorf("core: calibrating %q: %w", name, err)
	}
	return &Anatomy{
		Name:   name,
		Solver: s,
		Access: access,
		Summary: perfmodel.WorkloadSummary{
			Name:        name,
			Points:      s.N(),
			BytesSerial: s.BytesSerial(access),
		},
		General: g,
	}, nil
}

// Workload decomposes the anatomy over the given rank count.
func (f *Framework) Workload(a *Anatomy, ranks int) (simcloud.Workload, error) {
	p, err := decomp.RCB(a.Solver, ranks, a.Access)
	if err != nil {
		return simcloud.Workload{}, err
	}
	return simcloud.FromPartition(a.Name, a.Solver.N(), p), nil
}

// AttachTable enables the Tier 2 measured-lookup backend on every
// dashboard entry (see Dashboard.AttachTable).
func (f *Framework) AttachTable(tbl *perfmodel.Table) error {
	return f.Dashboard.AttachTable(tbl)
}

// refine applies iterative-refinement feedback to a prediction. The
// refiner's records are measured-vs-Tier-1 residuals, so its correction
// is only meaningful on Tier 1 output: scaling a Tier 2 table value (or
// a Tier 0 spec-sheet estimate) by a Tier 1 bias factor would
// contaminate the other tiers' provenance.
func (f *Framework) refine(pred perfmodel.Prediction) perfmodel.Prediction {
	if pred.Tier != perfmodel.Tier1Calibrated {
		return pred
	}
	return f.Refiner.Refine(pred)
}

// PredictDirect evaluates the direct model for the anatomy on a system
// at the calibrated tier (Tier 1).
func (f *Framework) PredictDirect(a *Anatomy, system string, ranks int) (perfmodel.Prediction, error) {
	return f.PredictDirectTier(a, system, ranks, perfmodel.Tier1Calibrated)
}

// PredictDirectTier is PredictDirect at an explicit accuracy tier ("" or
// perfmodel.TierAuto picks the best tier with data for the request).
func (f *Framework) PredictDirectTier(a *Anatomy, system string, ranks int, tier string) (perfmodel.Prediction, error) {
	e, err := f.Dashboard.Entry(system)
	if err != nil {
		return perfmodel.Prediction{}, err
	}
	w, err := f.Workload(a, ranks)
	if err != nil {
		return perfmodel.Prediction{}, err
	}
	pred, err := e.Predict(perfmodel.Request{Model: perfmodel.ModelDirect, Workload: &w, Tier: tier})
	if err != nil {
		return perfmodel.Prediction{}, err
	}
	return f.refine(pred), nil
}

// PredictGeneral evaluates the generalized model for the anatomy on a
// system at the calibrated tier (Tier 1). Rank counts may exceed the
// instance size (extrapolation).
func (f *Framework) PredictGeneral(a *Anatomy, system string, ranks int) (perfmodel.Prediction, error) {
	return f.PredictGeneralTier(a, system, ranks, perfmodel.Tier1Calibrated)
}

// PredictGeneralTier is PredictGeneral at an explicit accuracy tier.
func (f *Framework) PredictGeneralTier(a *Anatomy, system string, ranks int, tier string) (perfmodel.Prediction, error) {
	e, err := f.Dashboard.Entry(system)
	if err != nil {
		return perfmodel.Prediction{}, err
	}
	pred, err := e.Predict(perfmodel.Request{
		Model:   perfmodel.ModelGeneral,
		Summary: &a.Summary,
		General: a.General,
		Ranks:   ranks,
		Tier:    tier,
	})
	if err != nil {
		return perfmodel.Prediction{}, err
	}
	return f.refine(pred), nil
}

// Measure runs the decomposed anatomy on a system's hardware model with
// noise — this reproduction's analogue of submitting the real job — and
// returns the observed result.
func (f *Framework) Measure(a *Anatomy, system string, ranks, steps int) (simcloud.Result, error) {
	sys, err := f.Provider.System(system)
	if err != nil {
		return simcloud.Result{}, err
	}
	w, err := f.Workload(a, ranks)
	if err != nil {
		return simcloud.Result{}, err
	}
	return simcloud.Run(w, sys, steps, f.rng)
}

// Record stores a prediction/measurement pair in the refiner, improving
// subsequent predictions (the feedback arrow of Figure 1).
func (f *Framework) Record(a *Anatomy, pred perfmodel.Prediction, measured simcloud.Result) error {
	return f.Refiner.Add(perfmodel.Record{
		Workload:  a.Name,
		System:    pred.System,
		Model:     pred.Model,
		Ranks:     pred.Ranks,
		Predicted: pred.MFLUPS,
		Measured:  measured.MFLUPS,
	})
}

// Observe runs one full predict-measure-track cycle for an anatomy on a
// system: direct prediction, simulated measurement, a telemetry sample in
// the monitor (stamped with the provider's simulated clock), and a
// refinement record. This is the automated loop the paper's Discussion
// sketches around SONAR-style monitoring.
func (f *Framework) Observe(a *Anatomy, system string, ranks, steps int) (perfmodel.Prediction, simcloud.Result, error) {
	pred, err := f.PredictDirect(a, system, ranks)
	if err != nil {
		return perfmodel.Prediction{}, simcloud.Result{}, err
	}
	meas, err := f.Measure(a, system, ranks, steps)
	if err != nil {
		return perfmodel.Prediction{}, simcloud.Result{}, err
	}
	if err := f.Monitor.Add(monitor.Sample{
		TimeS:     f.Provider.Clock(),
		Workload:  a.Name,
		System:    system,
		Model:     pred.Model,
		Ranks:     ranks,
		MFLUPS:    meas.MFLUPS,
		Predicted: pred.MFLUPS,
		CostUSD:   meas.CostUSD,
	}); err != nil {
		return perfmodel.Prediction{}, simcloud.Result{}, err
	}
	if err := f.Record(a, pred, meas); err != nil {
		return perfmodel.Prediction{}, simcloud.Result{}, err
	}
	return pred, meas, nil
}

// PlanJob turns a prediction into a guarded job spec: the predicted
// runtime bounds the time guard at the given tolerance, and the implied
// cost (plus the same tolerance) bounds the dollar guard.
func (f *Framework) PlanJob(a *Anatomy, system string, ranks, steps int, tolerance float64) (cloud.JobSpec, error) {
	if tolerance < 0 {
		return cloud.JobSpec{}, fmt.Errorf("core: negative tolerance %g", tolerance)
	}
	sys, err := f.Provider.System(system)
	if err != nil {
		return cloud.JobSpec{}, err
	}
	pred, err := f.PredictDirect(a, system, ranks)
	if err != nil {
		return cloud.JobSpec{}, err
	}
	w, err := f.Workload(a, ranks)
	if err != nil {
		return cloud.JobSpec{}, err
	}
	seconds := pred.SecondsPerStep * float64(steps)
	return cloud.JobSpec{
		Workload:         w,
		System:           system,
		Steps:            steps,
		PredictedSeconds: seconds,
		Tolerance:        tolerance,
		MaxUSD:           sys.JobCost(ranks, seconds) * (1 + tolerance) * 1.05,
	}, nil
}

// Assess evaluates every dashboard system for the anatomy at a rank count
// and job length.
func (f *Framework) Assess(a *Anatomy, ranks, steps int) ([]dashboard.Assessment, error) {
	return f.Dashboard.Assess(a.Summary, a.General, ranks, steps)
}

// AssessTier is Assess at an explicit accuracy tier ("" or
// perfmodel.TierAuto picks the best tier with data per system).
func (f *Framework) AssessTier(a *Anatomy, ranks, steps int, tier string) ([]dashboard.Assessment, error) {
	return f.Dashboard.AssessTier(a.Summary, a.General, ranks, steps, tier)
}

// Recommend picks the best system under an objective, optionally subject
// to a deadline in seconds.
func (f *Framework) Recommend(a *Anatomy, ranks, steps int, obj dashboard.Objective, deadline float64) (dashboard.Assessment, error) {
	as, err := f.Assess(a, ranks, steps)
	if err != nil {
		return dashboard.Assessment{}, err
	}
	return dashboard.Recommend(as, obj, deadline)
}
