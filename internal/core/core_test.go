package core

import (
	"testing"

	"repro/internal/dashboard"
	"repro/internal/geometry"
	"repro/internal/lbm"
	"repro/internal/machine"
)

func framework(t *testing.T) *Framework {
	t.Helper()
	fw, err := NewFramework(machine.Catalog(), 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func anatomy(t *testing.T, fw *Framework) *Anatomy {
	t.Helper()
	dom, err := geometry.Cylinder(40, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := fw.PrepareAnatomy("cylinder", dom, lbm.Params{Tau: 0.9, PeriodicX: true})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestEndToEndPipeline(t *testing.T) {
	fw := framework(t)
	a := anatomy(t, fw)

	// Predict both models.
	direct, err := fw.PredictDirect(a, "CSP-2", 36)
	if err != nil {
		t.Fatal(err)
	}
	general, err := fw.PredictGeneral(a, "CSP-2", 36)
	if err != nil {
		t.Fatal(err)
	}
	if direct.MFLUPS <= 0 || general.MFLUPS <= 0 {
		t.Fatalf("non-positive predictions: %v, %v", direct.MFLUPS, general.MFLUPS)
	}

	// Measure and record.
	meas, err := fw.Measure(a, "CSP-2", 36, 50)
	if err != nil {
		t.Fatal(err)
	}
	if meas.MFLUPS <= 0 {
		t.Fatal("measurement not positive")
	}
	if err := fw.Record(a, direct, meas); err != nil {
		t.Fatal(err)
	}
	if fw.Refiner.Len() != 1 {
		t.Fatalf("refiner has %d records, want 1", fw.Refiner.Len())
	}

	// After recording, the refined prediction moves toward the measurement.
	refined, err := fw.PredictDirect(a, "CSP-2", 36)
	if err != nil {
		t.Fatal(err)
	}
	beforeErr := abs(direct.MFLUPS - meas.MFLUPS)
	afterErr := abs(refined.MFLUPS - meas.MFLUPS)
	if afterErr > beforeErr+1e-9 {
		t.Errorf("refinement worsened the prediction: %v -> %v (measured %v)",
			direct.MFLUPS, refined.MFLUPS, meas.MFLUPS)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestRefinementConvergesOverRounds(t *testing.T) {
	// Iterative refinement: after several predict/measure/record rounds
	// the direct model's error on this system must shrink substantially.
	fw := framework(t)
	a := anatomy(t, fw)
	var firstErr, lastErr float64
	for round := 0; round < 5; round++ {
		pred, err := fw.PredictDirect(a, "CSP-2", 72)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := fw.Measure(a, "CSP-2", 72, 20)
		if err != nil {
			t.Fatal(err)
		}
		relErr := abs(pred.MFLUPS-meas.MFLUPS) / meas.MFLUPS
		if round == 0 {
			firstErr = relErr
		}
		lastErr = relErr
		if err := fw.Record(a, pred, meas); err != nil {
			t.Fatal(err)
		}
	}
	if firstErr > 0.10 && lastErr > firstErr {
		t.Errorf("refinement did not converge: first %.3f, last %.3f", firstErr, lastErr)
	}
	if lastErr > 0.25 {
		t.Errorf("refined model still %.0f%% off", lastErr*100)
	}
}

func TestPlanJobGuardsFromPrediction(t *testing.T) {
	fw := framework(t)
	a := anatomy(t, fw)
	spec, err := fw.PlanJob(a, "CSP-2 Small", 32, 200, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if spec.PredictedSeconds <= 0 || spec.MaxUSD <= 0 {
		t.Fatalf("plan missing guards: %+v", spec)
	}
	if spec.Tolerance != 0.10 {
		t.Errorf("tolerance %v, want 0.10", spec.Tolerance)
	}
	res, err := fw.Provider.RunJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	// With an honest model the job must complete un-aborted.
	if res.Aborted {
		t.Errorf("model-planned job aborted: %s", res.AbortReason)
	}
	if _, err := fw.PlanJob(a, "CSP-2 Small", 32, 200, -0.1); err == nil {
		t.Error("want error for negative tolerance")
	}
}

func TestRecommendEndToEnd(t *testing.T) {
	fw := framework(t)
	a := anatomy(t, fw)
	best, err := fw.Recommend(a, 128, 1000, dashboard.MaxThroughput, 0)
	if err != nil {
		t.Fatal(err)
	}
	as, err := fw.Assess(a, 128, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range as {
		if x.MFLUPS > best.MFLUPS {
			t.Errorf("recommendation %s (%v) beaten by %s (%v)", best.System, best.MFLUPS, x.System, x.MFLUPS)
		}
	}
}

func TestUnknownSystemErrors(t *testing.T) {
	fw := framework(t)
	a := anatomy(t, fw)
	if _, err := fw.PredictDirect(a, "nope", 8); err == nil {
		t.Error("want error for unknown system in PredictDirect")
	}
	if _, err := fw.PredictGeneral(a, "nope", 8); err == nil {
		t.Error("want error for unknown system in PredictGeneral")
	}
	if _, err := fw.Measure(a, "nope", 8, 10); err == nil {
		t.Error("want error for unknown system in Measure")
	}
	if _, err := fw.PlanJob(a, "nope", 8, 10, 0.1); err == nil {
		t.Error("want error for unknown system in PlanJob")
	}
}

func TestDefaultCalibrationCounts(t *testing.T) {
	counts := CalibrationCounts(10000)
	if len(counts) < 3 {
		t.Fatalf("too few counts: %v", counts)
	}
	if counts[0] != 1 {
		t.Errorf("first count %d, want 1", counts[0])
	}
	// Tiny lattice still yields enough counts to fit.
	tiny := CalibrationCounts(10)
	if len(tiny) < 3 {
		t.Errorf("tiny lattice counts: %v", tiny)
	}
}

func TestObserveFeedsMonitorAndRefiner(t *testing.T) {
	fw := framework(t)
	a := anatomy(t, fw)
	for i := 0; i < 4; i++ {
		if err := fw.Provider.Advance(21600); err != nil { // 6-hour cadence
			t.Fatal(err)
		}
		pred, meas, err := fw.Observe(a, "CSP-2", 36, 20)
		if err != nil {
			t.Fatal(err)
		}
		if pred.MFLUPS <= 0 || meas.MFLUPS <= 0 {
			t.Fatal("observe returned non-positive throughput")
		}
	}
	if fw.Monitor.Len() != 4 {
		t.Errorf("monitor has %d samples, want 4", fw.Monitor.Len())
	}
	if fw.Refiner.Len() != 4 {
		t.Errorf("refiner has %d records, want 4", fw.Refiner.Len())
	}
	base, err := fw.Monitor.Baseline("cylinder", "CSP-2", 36)
	if err != nil {
		t.Fatal(err)
	}
	if base.N != 4 || base.Mean <= 0 {
		t.Errorf("baseline wrong: %+v", base)
	}
	// No regression in a healthy series.
	regs, err := fw.Monitor.DetectRegressions(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("false regression: %+v", regs)
	}
}

func TestPrepareAnatomyRejectsBadParams(t *testing.T) {
	fw := framework(t)
	dom, err := geometry.Cylinder(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.PrepareAnatomy("bad", dom, lbm.Params{Tau: 0.1}); err == nil {
		t.Error("want error for unstable tau")
	}
}
