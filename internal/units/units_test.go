package units

import (
	"math"
	"strings"
	"testing"
)

// coronary is a realistic coronary-artery configuration.
var coronary = Physical{
	DiameterM:    3e-3, // 3 mm
	PeakSpeedMps: 0.3,
	HeartRateHz:  1.2,
}

func TestConvertCoronary(t *testing.T) {
	c, err := Convert(coronary, Lattice{SitesAcross: 40, Tau: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// Re = U D / nu = 0.3 * 3e-3 / 3.3e-6 ≈ 273.
	if math.Abs(c.Reynolds-272.7) > 1 {
		t.Errorf("Re = %v, want ~273", c.Reynolds)
	}
	// dx = 75 µm.
	if math.Abs(c.DxM-7.5e-5) > 1e-9 {
		t.Errorf("dx = %v, want 75 µm", c.DxM)
	}
	// Consistency: physical viscosity reproduced from lattice quantities.
	nuLat := (0.9 - 0.5) / 3
	nuPhys := nuLat * c.DxM * c.DxM / c.DtS
	if math.Abs(nuPhys-BloodKinematicViscosity)/BloodKinematicViscosity > 1e-12 {
		t.Errorf("viscosity round trip failed: %v", nuPhys)
	}
	// Lattice speed consistency.
	if got := coronary.PeakSpeedMps * c.DtS / c.DxM; math.Abs(got-c.ULattice) > 1e-15 {
		t.Errorf("lattice speed inconsistent")
	}
	// Womersley for a 3 mm vessel at 1.2 Hz: Wo = R sqrt(omega/nu) ≈ 2.3.
	if c.Womersley < 2 || c.Womersley > 2.6 {
		t.Errorf("Womersley = %v, want ~2.3", c.Womersley)
	}
	if c.StepsPerBeat <= 0 {
		t.Error("pulsatile config missing steps per beat")
	}
	if !strings.Contains(c.String(), "Wo=") {
		t.Errorf("String() missing Womersley: %s", c.String())
	}
}

func TestConvertSteadyHasNoWomersley(t *testing.T) {
	p := coronary
	p.HeartRateHz = 0
	c, err := Convert(p, Lattice{SitesAcross: 40, Tau: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if c.Womersley != 0 || c.StepsPerBeat != 0 {
		t.Errorf("steady flow grew pulsatile quantities: %+v", c)
	}
}

func TestConvertDefaultsToBlood(t *testing.T) {
	c, err := Convert(Physical{DiameterM: 3e-3, PeakSpeedMps: 0.3}, Lattice{SitesAcross: 40, Tau: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Reynolds-272.7) > 1 {
		t.Errorf("default viscosity not blood: Re %v", c.Reynolds)
	}
}

func TestConvertValidation(t *testing.T) {
	l := Lattice{SitesAcross: 40, Tau: 0.9}
	if _, err := Convert(Physical{DiameterM: 0, PeakSpeedMps: 0.3}, l); err == nil {
		t.Error("want error for zero diameter")
	}
	if _, err := Convert(Physical{DiameterM: 3e-3, PeakSpeedMps: 0.3, ViscosityM2: -1}, l); err == nil {
		t.Error("want error for negative viscosity")
	}
	if _, err := Convert(coronary, Lattice{SitesAcross: 2, Tau: 0.9}); err == nil {
		t.Error("want error for under-resolution")
	}
	if _, err := Convert(coronary, Lattice{SitesAcross: 40, Tau: 0.5}); err == nil {
		t.Error("want error for unstable tau")
	}
}

func TestCheckFlagsCompressibility(t *testing.T) {
	// A coarse lattice at high speed trips the Mach warning.
	fast := Physical{DiameterM: 25e-3, PeakSpeedMps: 1.5} // aortic jet
	c, err := Convert(fast, Lattice{SitesAcross: 10, Tau: 1.8})
	if err != nil {
		t.Fatal(err)
	}
	warnings := c.Check()
	joined := strings.Join(warnings, "; ")
	if c.MachLattice > 0.3 && !strings.Contains(joined, "Mach") {
		t.Errorf("Mach %v not flagged: %v", c.MachLattice, warnings)
	}
	// A well-resolved config is clean.
	good, err := Convert(coronary, Lattice{SitesAcross: 60, Tau: 0.55})
	if err != nil {
		t.Fatal(err)
	}
	if w := good.Check(); len(w) != 0 {
		t.Errorf("clean config flagged: %v", w)
	}
}

func TestCheckFlagsCoarseCycle(t *testing.T) {
	// Tiny vessel + huge dt => few steps per beat.
	p := Physical{DiameterM: 1e-3, PeakSpeedMps: 0.05, HeartRateHz: 2}
	c, err := Convert(p, Lattice{SitesAcross: 5, Tau: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if c.StepsPerBeat < 200 {
		if !strings.Contains(strings.Join(c.Check(), ";"), "cardiac cycle") {
			t.Errorf("coarse cycle not flagged: %v steps/beat, %v", c.StepsPerBeat, c.Check())
		}
	}
}

func TestStepsForPhysicalTime(t *testing.T) {
	c, err := Convert(coronary, Lattice{SitesAcross: 40, Tau: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	steps := c.StepsForPhysicalTime(1.0 / coronary.HeartRateHz)
	if math.Abs(float64(steps)-c.StepsPerBeat) > 1.5 {
		t.Errorf("StepsForPhysicalTime(beat) = %d, want ~%v", steps, c.StepsPerBeat)
	}
	if (Conversion{}).StepsForPhysicalTime(1) != 0 {
		t.Error("zero conversion should yield zero steps")
	}
}
