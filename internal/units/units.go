// Package units converts between physical (SI) and lattice quantities —
// the step every clinical hemodynamic simulation starts with. Given a
// vessel diameter, a blood-flow velocity and the kinematic viscosity of
// blood, it derives the lattice resolution, timestep, relaxation time and
// the dimensionless numbers (Reynolds, Womersley, lattice Mach) that
// decide whether a configuration is resolvable and stable before any
// cloud money is spent.
package units

import (
	"fmt"
	"math"
)

// Blood-flow reference constants (SI).
const (
	// BloodKinematicViscosity is the kinematic viscosity of whole blood
	// at physiological hematocrit, m^2/s.
	BloodKinematicViscosity = 3.3e-6
	// BloodDensity in kg/m^3.
	BloodDensity = 1060
)

// Physical describes the physical problem.
type Physical struct {
	DiameterM    float64 // vessel diameter, meters
	PeakSpeedMps float64 // peak flow speed, m/s
	ViscosityM2  float64 // kinematic viscosity, m^2/s (default: blood)
	HeartRateHz  float64 // cardiac frequency for pulsatile flow (0 = steady)
}

// Lattice describes the chosen discretization.
type Lattice struct {
	SitesAcross int     // lattice sites across the vessel diameter
	Tau         float64 // relaxation time
}

// Conversion is the derived mapping between the two systems.
type Conversion struct {
	DxM          float64 // meters per lattice site
	DtS          float64 // seconds per timestep
	ULattice     float64 // peak speed in lattice units
	Reynolds     float64
	Womersley    float64 // 0 for steady flow
	MachLattice  float64 // u_lattice / c_s, must stay well below 1
	StepsPerBeat float64 // timesteps per cardiac cycle (0 for steady)
}

// Convert derives the lattice configuration for a physical problem. The
// lattice viscosity follows from tau; matching physical and lattice
// Reynolds numbers fixes the timestep.
func Convert(p Physical, l Lattice) (Conversion, error) {
	if p.DiameterM <= 0 || p.PeakSpeedMps <= 0 {
		return Conversion{}, fmt.Errorf("units: diameter %g and speed %g must be positive", p.DiameterM, p.PeakSpeedMps)
	}
	if p.ViscosityM2 == 0 {
		p.ViscosityM2 = BloodKinematicViscosity
	}
	if p.ViscosityM2 < 0 {
		return Conversion{}, fmt.Errorf("units: negative viscosity %g", p.ViscosityM2)
	}
	if l.SitesAcross < 4 {
		return Conversion{}, fmt.Errorf("units: %d sites across the diameter under-resolves the vessel", l.SitesAcross)
	}
	if l.Tau <= 0.5 {
		return Conversion{}, fmt.Errorf("units: tau %g must exceed 0.5", l.Tau)
	}
	var c Conversion
	c.DxM = p.DiameterM / float64(l.SitesAcross)
	nuLattice := (l.Tau - 0.5) / 3
	// nu_phys = nu_lattice * dx^2 / dt  =>  dt = nu_lattice dx^2 / nu_phys.
	c.DtS = nuLattice * c.DxM * c.DxM / p.ViscosityM2
	c.ULattice = p.PeakSpeedMps * c.DtS / c.DxM
	c.Reynolds = p.PeakSpeedMps * p.DiameterM / p.ViscosityM2
	c.MachLattice = c.ULattice / (1 / math.Sqrt(3))
	if p.HeartRateHz > 0 {
		omega := 2 * math.Pi * p.HeartRateHz
		c.Womersley = p.DiameterM / 2 * math.Sqrt(omega/p.ViscosityM2)
		c.StepsPerBeat = 1 / (p.HeartRateHz * c.DtS)
	}
	return c, nil
}

// Check reports configuration problems a domain expert would flag before
// submitting the job: compressibility error from a too-large lattice
// Mach number, and under-resolution of the oscillatory boundary layer
// for pulsatile runs.
func (c Conversion) Check() []string {
	var warnings []string
	if c.MachLattice > 0.3 {
		warnings = append(warnings, fmt.Sprintf(
			"lattice Mach %.2f above 0.3: compressibility error will pollute the flow; increase resolution or tau", c.MachLattice))
	}
	if c.ULattice > 0.1 {
		warnings = append(warnings, fmt.Sprintf(
			"lattice speed %.3f above 0.1: accuracy degrades", c.ULattice))
	}
	if c.Womersley > 0 && c.StepsPerBeat < 200 {
		warnings = append(warnings, fmt.Sprintf(
			"only %.0f timesteps per cardiac cycle: temporal resolution too coarse", c.StepsPerBeat))
	}
	return warnings
}

// String summarizes the conversion.
func (c Conversion) String() string {
	s := fmt.Sprintf("dx=%.3g m, dt=%.3g s, u=%.4f lu, Re=%.0f, Ma=%.3f",
		c.DxM, c.DtS, c.ULattice, c.Reynolds, c.MachLattice)
	if c.Womersley > 0 {
		s += fmt.Sprintf(", Wo=%.1f, %.0f steps/beat", c.Womersley, c.StepsPerBeat)
	}
	return s
}

// StepsForPhysicalTime returns the timestep count covering the given
// physical duration.
func (c Conversion) StepsForPhysicalTime(seconds float64) int {
	if c.DtS <= 0 {
		return 0
	}
	return int(math.Ceil(seconds / c.DtS))
}
