package units

import (
	"math"
	"testing"
)

func TestScalarConversions(t *testing.T) {
	cases := []struct {
		name      string
		got, want float64
	}{
		{"MicrosToSeconds", MicrosToSeconds(2.5e6), 2.5},
		{"SecondsToMicros", SecondsToMicros(0.25), 2.5e5},
		{"SecondsToHours", SecondsToHours(5400), 1.5},
		{"MBpsToBps", MBpsToBps(12), 1.2e7},
		{"BpsToMBps", BpsToMBps(1.2e7), 12},
	}
	for _, tc := range cases {
		if !ApproxEqual(tc.got, tc.want, 1e-12) {
			t.Errorf("%s: got %g, want %g", tc.name, tc.got, tc.want)
		}
	}
}

func TestTypedConversionsRoundTrip(t *testing.T) {
	s := Seconds(3.5)
	if got := s.Micros(); !ApproxEqual(float64(got), 3.5e6, 1e-12) {
		t.Errorf("Seconds(3.5).Micros() = %g", float64(got))
	}
	if got := s.Micros().Seconds(); !ApproxEqual(float64(got), 3.5, 1e-12) {
		t.Errorf("round trip = %g, want 3.5", float64(got))
	}
}

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{0, 0, 1e-12, true},
		{1, 1 + 1e-13, 1e-12, true},
		{1, 1 + 1e-9, 1e-12, false},
		// Relative scaling: large magnitudes widen the window.
		{1e15, 1e15 + 1, 1e-12, true},
		{0, 1e-13, 1e-12, true},
		{0, 1, 1e-12, false},
		{math.NaN(), math.NaN(), 1e-12, false},
		{math.Inf(1), math.Inf(1), 1e-12, false},
		{math.Inf(1), 0, 1e-12, false},
	}
	for _, tc := range cases {
		if got := ApproxEqual(tc.a, tc.b, tc.tol); got != tc.want {
			t.Errorf("ApproxEqual(%g, %g, %g) = %v, want %v", tc.a, tc.b, tc.tol, got, tc.want)
		}
	}
}
