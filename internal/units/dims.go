package units

import "math"

// Named unit types for the repository's recurring dimensions. APIs that
// want the compiler (and the unitflow analyzer, which recognizes these
// types by name) to enforce their units can trade float64 for one of
// these; the scalar helpers below serve call sites that must stay
// float64 but still want their scale conversions spelled out instead of
// hidden in bare 1e6 factors.
type (
	// Seconds is a duration in seconds.
	Seconds float64
	// Micros is a duration in microseconds.
	Micros float64
	// Bytes is a data volume in bytes.
	Bytes float64
	// USD is an amount of money in US dollars.
	USD float64
	// MFLUPS is a throughput in millions of fluid lattice-site
	// updates per second (Eq. 7).
	MFLUPS float64
)

// Micros converts seconds to microseconds.
func (s Seconds) Micros() Micros { return Micros(float64(s) * 1e6) }

// Seconds converts microseconds to seconds.
func (m Micros) Seconds() Seconds { return Seconds(float64(m) * 1e-6) }

// MicrosToSeconds converts a microsecond quantity to seconds.
func MicrosToSeconds(us float64) float64 { return us * 1e-6 }

// SecondsToMicros converts a second quantity to microseconds.
func SecondsToMicros(secs float64) float64 { return secs * 1e6 }

// SecondsToHours converts a second quantity to hours (the billing unit
// of the cloud cost model).
func SecondsToHours(secs float64) float64 { return secs / 3600 }

// MBpsToBps converts a bandwidth from MB/s to bytes per second.
func MBpsToBps(mbps float64) float64 { return mbps * 1e6 }

// BpsToMBps converts a bandwidth from bytes per second to MB/s.
func BpsToMBps(bps float64) float64 { return bps * 1e-6 }

// ApproxEqual reports whether a and b agree within tol, using a hybrid
// absolute/relative tolerance: |a-b| <= tol*max(1, |a|, |b|). It is the
// suite-sanctioned replacement for exact float comparisons that are
// really degeneracy guards (near-singular determinants, collapsed plot
// ranges). NaNs and infinite differences never compare equal.
func ApproxEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	if math.IsNaN(diff) || math.IsInf(diff, 0) {
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= tol*scale
}
