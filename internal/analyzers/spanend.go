package analyzers

import (
	"go/ast"
	"strings"
)

// checkSpanEnd flags spans started from a tracer whose End is not
// provable on every path out of the function. A call matches when the
// method name begins with "Start" and the receiver looks like a tracer
// (the identifier `tr`, `tracer`, or any path whose last element
// contains "trace", e.g. `s.Trace`). Accepted patterns, per span
// variable X:
//
//   - `X := tr.Start(...)` in a function that also contains
//     `defer X.End(...)` or a deferred closure calling `X.End`
//     (the dominant idiom);
//   - `X := tr.Start(...)` followed later in the same statement list
//     by a statement containing `X.End(...)`, with no return statement
//     in between;
//   - handoff: X stored into a struct field, passed as a call
//     argument, returned, or aliased — ownership moved, the lifecycle
//     is tracked elsewhere.
//
// Discarding the result (`tr.Start(...)` as a statement, or `_ =`)
// and fallthrough or return paths with no End are flagged. The
// analysis is per function body and purely syntactic; intentionally
// unended spans need a suppression comment stating why.
func checkSpanEnd() Check {
	const id = "spanend"
	return Check{
		ID:  id,
		Doc: "every span returned by Tracer.Start* has a defer End, an End on all paths, or an explicit handoff",
		Run: func(f *File) []Diagnostic {
			var diags []Diagnostic
			funcBodies(f.AST, func(name string, ftype *ast.FuncType, body *ast.BlockStmt) {
				diags = append(diags, spanFindings(f, id, name, body)...)
			})
			return diags
		},
	}
}

// looksLikeTracer is the conservative receiver heuristic: only flag
// spans started from something plausibly a tracer, so unrelated
// Start methods (timers, servers) stay out of scope.
func looksLikeTracer(recv string) bool {
	if i := strings.LastIndexByte(recv, '.'); i >= 0 {
		recv = recv[i+1:]
	}
	low := strings.ToLower(recv)
	return low == "tr" || strings.Contains(low, "trace")
}

// spanStart unwraps a call when it is a span-producing Start on a
// tracer-shaped receiver.
func spanStart(call *ast.CallExpr) (recv, name string, ok bool) {
	recv, name = calleeOf(call)
	if recv == "" || !strings.HasPrefix(name, "Start") {
		return "", "", false
	}
	if !looksLikeTracer(recv) {
		return "", "", false
	}
	return recv, name, true
}

// stmtEndsSpan reports whether the statement contains `x.End(...)`
// anywhere outside a nested function literal (which is a separate
// frame; a deferred closure is credited by the deferred-End scan).
func stmtEndsSpan(s ast.Stmt, x string) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if recv, name := calleeOf(call); recv == x && name == "End" {
				found = true
			}
		}
		return !found
	})
	return found
}

// stmtHandsOff reports whether the statement moves ownership of x:
// passes it as a call argument, returns it, re-assigns it, embeds it
// in a composite literal, or sends it on a channel. Using x as a
// method receiver (x.SetAttr) is not a handoff.
func stmtHandsOff(s ast.Stmt, x string) bool {
	isX := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == x
	}
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			for _, a := range n.Args {
				if isX(a) {
					found = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isX(r) {
					found = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				if isX(r) {
					found = true
				}
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if isX(e) {
					found = true
				}
				if kv, ok := e.(*ast.KeyValueExpr); ok && isX(kv.Value) {
					found = true
				}
			}
		case *ast.SendStmt:
			if isX(n.Value) {
				found = true
			}
		}
		return !found
	})
	return found
}

// returnBeforeEnd reports whether the statement can leave the function
// without ending x: it contains a return (outside closures) and no
// `x.End` anywhere within it.
func returnBeforeEnd(s ast.Stmt, x string) bool {
	if stmtEndsSpan(s, x) {
		return false
	}
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if _, ok := n.(*ast.ReturnStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// spanFindings walks one function body.
func spanFindings(f *File, id, fname string, body *ast.BlockStmt) []Diagnostic {
	// Span variables with a deferred End anywhere in the function:
	// safe regardless of control flow.
	deferredEnd := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate frame, separate pass
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if recv, name := calleeOf(ds.Call); recv != "" && name == "End" {
			deferredEnd[recv] = true
		}
		// A deferred closure that ends the span also counts.
		if fl, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if recv, name := calleeOf(call); recv != "" && name == "End" {
					deferredEnd[recv] = true
				}
				return true
			})
		}
		return true
	})

	var diags []Diagnostic
	diag := func(n ast.Node, recv, method, format string, args ...any) {
		diags = append(diags, f.diag(n.Pos(), id, SeverityError,
			"span from "+recv+"."+method+" in "+fname+" "+format, args...))
	}

	var walkList func(stmts []ast.Stmt)
	walkList = func(stmts []ast.Stmt) {
		for i, s := range stmts {
			// Recurse into nested blocks; function literals are their
			// own frame and get their own funcBodies pass.
			ast.Inspect(s, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if blk, ok := n.(*ast.BlockStmt); ok && n != s {
					walkList(blk.List)
					return false
				}
				return true
			})

			switch st := s.(type) {
			case *ast.ExprStmt:
				call, ok := st.X.(*ast.CallExpr)
				if !ok {
					continue
				}
				if recv, method, ok := spanStart(call); ok {
					diag(call, recv, method, "is discarded; assign it and call End")
				}

			case *ast.AssignStmt:
				if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
					continue
				}
				call, ok := st.Rhs[0].(*ast.CallExpr)
				if !ok {
					continue
				}
				recv, method, ok := spanStart(call)
				if !ok {
					continue
				}
				lhs, ok := st.Lhs[0].(*ast.Ident)
				if !ok {
					continue // field or index store: ownership handed off
				}
				if lhs.Name == "_" {
					diag(call, recv, method, "is discarded; assign it and call End")
					continue
				}
				if deferredEnd[lhs.Name] {
					continue
				}
				ended := false
				for _, later := range stmts[i+1:] {
					if stmtEndsSpan(later, lhs.Name) || stmtHandsOff(later, lhs.Name) {
						ended = true
						break
					}
					if returnBeforeEnd(later, lhs.Name) {
						diag(call, recv, method,
							"has a return path before %s.End; use defer %s.End(...)",
							lhs.Name, lhs.Name)
						ended = true // reported; don't double-flag the fallthrough
						break
					}
				}
				if !ended {
					diag(call, recv, method, "has no End on the fallthrough path")
				}
			}
		}
	}
	walkList(body.List)
	return diags
}
