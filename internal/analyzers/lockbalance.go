package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
)

// checkLockBalance flags Mutex/RWMutex acquisitions that are not
// provably released on every path out of the function. Accepted
// patterns, per receiver expression X:
//
//   - `X.Lock()` anywhere in a function that also contains
//     `defer X.Unlock()` (the dominant idiom);
//   - `X.Lock()` followed later in the same statement list by
//     `X.Unlock()`, with no return statement in between;
//   - either release spelled through a named cleanup closure defined
//     in the same function (`cleanup := func() { X.Unlock() }` with a
//     later `defer cleanup()` or direct `cleanup()` call);
//   - `if X.TryLock()` / `if !X.TryLock()` guards, whose success path
//     must release the same way (TryLock acquisitions that leak are
//     flagged like Lock ones).
//
// Everything else — a Lock with no textual Unlock, or a return that
// can fire between the pair — is flagged. The analysis is per
// function body and purely syntactic; helper methods that lock on
// behalf of a caller need a suppression comment stating the protocol.
func checkLockBalance() Check {
	const id = "lockbalance"
	return Check{
		ID:  id,
		Doc: "every Mutex.Lock has a defer Unlock or a matching Unlock on all return paths",
		Run: func(f *File) []Diagnostic {
			var diags []Diagnostic
			funcBodies(f.AST, func(name string, ftype *ast.FuncType, body *ast.BlockStmt) {
				diags = append(diags, lockFindings(f, id, name, body)...)
			})
			return diags
		},
	}
}

// lockKind distinguishes the write and read halves of an RWMutex so
// RLock is matched against RUnlock, not Unlock.
func lockKind(name string) (unlock string, ok bool) {
	switch name {
	case "Lock":
		return "Unlock", true
	case "RLock":
		return "RUnlock", true
	}
	return "", false
}

// litUnlocks collects the "recv.Unlock" calls a closure body performs.
func litUnlocks(fl *ast.FuncLit) []string {
	var keys []string
	ast.Inspect(fl.Body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		r, nm := calleeOf(call)
		if r != "" && (nm == "Unlock" || nm == "RUnlock") {
			keys = append(keys, r+"."+nm)
		}
		return true
	})
	return keys
}

// closureUnlockers maps every function-valued variable assigned a
// literal in this body to the unlock calls that literal performs, so
// cleanup-closure idioms credit the receiver whether the closure is
// deferred or called directly.
func closureUnlockers(body *ast.BlockStmt) map[string][]string {
	out := map[string][]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			fl, ok := as.Rhs[i].(*ast.FuncLit)
			if !ok {
				continue
			}
			out[id.Name] = append(out[id.Name], litUnlocks(fl)...)
		}
		return true
	})
	return out
}

// lockFindings walks one function body.
func lockFindings(f *File, id, fname string, body *ast.BlockStmt) []Diagnostic {
	closures := closureUnlockers(body)

	// Receivers with a deferred unlock anywhere in the function:
	// their locks are safe regardless of control flow.
	deferred := map[string]bool{} // "recv.Unlock" -> true
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate frame, separate pass
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		recv, name := calleeOf(ds.Call)
		if recv != "" && (name == "Unlock" || name == "RUnlock") {
			deferred[recv+"."+name] = true
		}
		// A deferred closure that unlocks also counts — an inline
		// literal or a named cleanup closure defined in this body.
		if fl, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			for _, key := range litUnlocks(fl) {
				deferred[key] = true
			}
		}
		if recv == "" && name != "" {
			for _, key := range closures[name] {
				deferred[key] = true
			}
		}
		return true
	})

	var diags []Diagnostic
	var walkList func(stmts []ast.Stmt)
	walkList = func(stmts []ast.Stmt) {
		for i, s := range stmts {
			// Recurse into nested blocks; function literals are their
			// own frame and get their own funcBodies pass.
			ast.Inspect(s, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if blk, ok := n.(*ast.BlockStmt); ok && n != s {
					walkList(blk.List)
					return false
				}
				return true
			})

			if ifs, ok := s.(*ast.IfStmt); ok {
				diags = append(diags, tryLockFindings(f, id, fname, ifs, stmts[i+1:], deferred, closures)...)
				continue
			}
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			recv, name := calleeOf(call)
			unlockName, isLock := lockKind(name)
			if !isLock || recv == "" || !looksLikeMutex(recv) {
				continue
			}
			if deferred[recv+"."+unlockName] {
				continue
			}
			// Scan forward in this statement list for the unlock;
			// any return before it escapes with the lock held.
			released := false
			for _, later := range stmts[i+1:] {
				if returnBeforeUnlock(later, recv, unlockName, closures) {
					diags = append(diags, f.diag(call.Pos(), id, SeverityError,
						"%s.%s in %s: a return path escapes before %s.%s; use defer",
						recv, name, fname, recv, unlockName))
					released = true // reported; don't double-report below
					break
				}
				if stmtUnlocks(later, recv, unlockName, closures) {
					released = true
					break
				}
			}
			if !released {
				diags = append(diags, f.diag(call.Pos(), id, SeverityError,
					"%s.%s in %s has no defer %s.%s and no unlock on the fallthrough path",
					recv, name, fname, recv, unlockName))
			}
		}
	}
	walkList(body.List)
	return diags
}

// tryCond extracts the receiver and matching unlock of an if condition
// of the form X.TryLock() / X.TryRLock() or its negation.
func tryCond(cond ast.Expr) (recv, unlock string, negated, ok bool) {
	if un, isNot := cond.(*ast.UnaryExpr); isNot && un.Op == token.NOT {
		cond = un.X
		negated = true
	}
	call, isCall := cond.(*ast.CallExpr)
	if !isCall {
		return "", "", false, false
	}
	r, name := calleeOf(call)
	switch name {
	case "TryLock":
		unlock = "Unlock"
	case "TryRLock":
		unlock = "RUnlock"
	default:
		return "", "", false, false
	}
	if r == "" || !looksLikeMutex(r) {
		return "", "", false, false
	}
	return r, unlock, negated, true
}

// tryLockFindings extends the balance discipline to TryLock guards: a
// successful TryLock is an acquisition like any other. Positive guards
// (`if X.TryLock() { ... }`) must release inside the guarded body;
// negated guards (`if !X.TryLock() { bail }`) must release on the
// fallthrough path after the if.
func tryLockFindings(f *File, id, fname string, ifs *ast.IfStmt, rest []ast.Stmt, deferred map[string]bool, closures map[string][]string) []Diagnostic {
	recv, unlock, negated, ok := tryCond(ifs.Cond)
	if !ok {
		return nil
	}
	key := recv + "." + unlock
	if deferred[key] {
		return nil
	}
	released := false
	if negated {
		for _, later := range rest {
			if stmtUnlocks(later, recv, unlock, closures) {
				released = true
				break
			}
		}
	} else {
		for _, inner := range ifs.Body.List {
			if stmtUnlocks(inner, recv, unlock, closures) {
				released = true
				break
			}
		}
	}
	if released {
		return nil
	}
	try := "TryLock"
	if unlock == "RUnlock" {
		try = "TryRLock"
	}
	return []Diagnostic{f.diag(ifs.Cond.Pos(), id, SeverityError,
		"%s.%s in %s: the success path never releases %s; add defer %s.%s",
		recv, try, fname, recv, recv, unlock)}
}

// looksLikeMutex filters receiver names so arbitrary .Lock methods
// (e.g. a file-lock API) only match when the expression reads like a
// mutex: the last path element is or contains mu/mtx/mutex/lock, case
// insensitive. Conservative on purpose — this codebase names its
// mutexes mu.
func looksLikeMutex(recv string) bool {
	last := recv
	if i := strings.LastIndex(recv, "."); i >= 0 {
		last = recv[i+1:]
	}
	lower := strings.ToLower(last)
	return lower == "mu" || lower == "mtx" ||
		strings.Contains(lower, "mutex") || strings.Contains(lower, "lock")
}

// stmtUnlocks reports whether a statement (or anything nested in it)
// releases recv outside a defer: a direct recv.unlockName call, or a
// call to a named cleanup closure known to perform that unlock.
// Closure bodies are skipped — defining a closure releases nothing;
// calling one is what counts (defers are the deferred map's job).
func stmtUnlocks(s ast.Stmt, recv, unlockName string, closures map[string][]string) bool {
	key := recv + "." + unlockName
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		r, nm := calleeOf(call)
		if r == recv && nm == unlockName {
			found = true
		}
		if r == "" && nm != "" {
			for _, k := range closures[nm] {
				if k == key {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// returnBeforeUnlock reports whether a statement contains a return
// that is not preceded (within the statement's own nesting) by the
// matching unlock.
func returnBeforeUnlock(s ast.Stmt, recv, unlockName string, closures map[string][]string) bool {
	if stmtUnlocks(s, recv, unlockName, closures) {
		// The unlock exists somewhere inside; assume the author paired
		// it with any return in the same arm. A finer path analysis
		// costs more precision than it buys at this codebase's size.
		return false
	}
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.FuncLit:
			return false // separate frame, separate analysis
		}
		return !found
	})
	return found
}
