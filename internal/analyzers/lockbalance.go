package analyzers

import (
	"go/ast"
	"strings"
)

// checkLockBalance flags Mutex/RWMutex acquisitions that are not
// provably released on every path out of the function. Accepted
// patterns, per receiver expression X:
//
//   - `X.Lock()` anywhere in a function that also contains
//     `defer X.Unlock()` (the dominant idiom);
//   - `X.Lock()` followed later in the same statement list by
//     `X.Unlock()`, with no return statement in between.
//
// Everything else — a Lock with no textual Unlock, or a return that
// can fire between the pair — is flagged. The analysis is per
// function body and purely syntactic; helper methods that lock on
// behalf of a caller need a suppression comment stating the protocol.
func checkLockBalance() Check {
	const id = "lockbalance"
	return Check{
		ID:  id,
		Doc: "every Mutex.Lock has a defer Unlock or a matching Unlock on all return paths",
		Run: func(f *File) []Diagnostic {
			var diags []Diagnostic
			funcBodies(f.AST, func(name string, ftype *ast.FuncType, body *ast.BlockStmt) {
				diags = append(diags, lockFindings(f, id, name, body)...)
			})
			return diags
		},
	}
}

// lockKind distinguishes the write and read halves of an RWMutex so
// RLock is matched against RUnlock, not Unlock.
func lockKind(name string) (unlock string, ok bool) {
	switch name {
	case "Lock":
		return "Unlock", true
	case "RLock":
		return "RUnlock", true
	}
	return "", false
}

// lockFindings walks one function body.
func lockFindings(f *File, id, fname string, body *ast.BlockStmt) []Diagnostic {
	// Receivers with a deferred unlock anywhere in the function:
	// their locks are safe regardless of control flow.
	deferred := map[string]bool{} // "recv.Unlock" -> true
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate frame, separate pass
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		recv, name := calleeOf(ds.Call)
		if recv != "" && (name == "Unlock" || name == "RUnlock") {
			deferred[recv+"."+name] = true
		}
		// A deferred closure that unlocks also counts.
		if fl, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				r, nm := calleeOf(call)
				if r != "" && (nm == "Unlock" || nm == "RUnlock") {
					deferred[r+"."+nm] = true
				}
				return true
			})
		}
		return true
	})

	var diags []Diagnostic
	var walkList func(stmts []ast.Stmt)
	walkList = func(stmts []ast.Stmt) {
		for i, s := range stmts {
			// Recurse into nested blocks; function literals are their
			// own frame and get their own funcBodies pass.
			ast.Inspect(s, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if blk, ok := n.(*ast.BlockStmt); ok && n != s {
					walkList(blk.List)
					return false
				}
				return true
			})

			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			recv, name := calleeOf(call)
			unlockName, isLock := lockKind(name)
			if !isLock || recv == "" || !looksLikeMutex(recv) {
				continue
			}
			if deferred[recv+"."+unlockName] {
				continue
			}
			// Scan forward in this statement list for the unlock;
			// any return before it escapes with the lock held.
			released := false
			for _, later := range stmts[i+1:] {
				if returnBeforeUnlock(later, recv, unlockName) {
					diags = append(diags, f.diag(call.Pos(), id, SeverityError,
						"%s.%s in %s: a return path escapes before %s.%s; use defer",
						recv, name, fname, recv, unlockName))
					released = true // reported; don't double-report below
					break
				}
				if stmtUnlocks(later, recv, unlockName) {
					released = true
					break
				}
			}
			if !released {
				diags = append(diags, f.diag(call.Pos(), id, SeverityError,
					"%s.%s in %s has no defer %s.%s and no unlock on the fallthrough path",
					recv, name, fname, recv, unlockName))
			}
		}
	}
	walkList(body.List)
	return diags
}

// looksLikeMutex filters receiver names so arbitrary .Lock methods
// (e.g. a file-lock API) only match when the expression reads like a
// mutex: the last path element is or contains mu/mtx/mutex/lock, case
// insensitive. Conservative on purpose — this codebase names its
// mutexes mu.
func looksLikeMutex(recv string) bool {
	last := recv
	if i := strings.LastIndex(recv, "."); i >= 0 {
		last = recv[i+1:]
	}
	lower := strings.ToLower(last)
	return lower == "mu" || lower == "mtx" ||
		strings.Contains(lower, "mutex") || strings.Contains(lower, "lock")
}

// stmtUnlocks reports whether a statement (or anything nested in it)
// calls recv.unlockName outside a defer.
func stmtUnlocks(s ast.Stmt, recv, unlockName string) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.DeferStmt); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		r, nm := calleeOf(call)
		if r == recv && nm == unlockName {
			found = true
		}
		return !found
	})
	return found
}

// returnBeforeUnlock reports whether a statement contains a return
// that is not preceded (within the statement's own nesting) by the
// matching unlock.
func returnBeforeUnlock(s ast.Stmt, recv, unlockName string) bool {
	if stmtUnlocks(s, recv, unlockName) {
		// The unlock exists somewhere inside; assume the author paired
		// it with any return in the same arm. A finer path analysis
		// costs more precision than it buys at this codebase's size.
		return false
	}
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.FuncLit:
			return false // separate frame, separate analysis
		}
		return !found
	})
	return found
}
