package analyzers

import (
	"go/ast"
	"go/token"
)

// deterministicPkgs are the packages whose behavior must be a pure
// function of their inputs and a caller-supplied seed: the fleet
// scheduler promises byte-identical runs under a fixed seed, and every
// layer it builds on (simulated cloud, performance models, campaign
// driver) inherits that contract.
var deterministicPkgs = map[string]bool{
	"fleet":     true,
	"simcloud":  true,
	"perfmodel": true,
	"cloud":     true,
	"campaign":  true,
}

// randConstructors are the math/rand functions that build seeded
// generators rather than consuming the global source.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// checkNoDeterm flags nondeterminism leaks in deterministic packages:
// calls into the global math/rand source (rand.Intn, rand.Float64, ...
// anything but the seeded constructors), wall-clock reads (time.Now,
// time.Since), and iteration over maps whose order escapes into output
// (appends or writes inside a range-over-map body) without a
// subsequent sort.
func checkNoDeterm() Check {
	const id = "nodeterm"
	return Check{
		ID:  id,
		Doc: "no global math/rand, wall clock, or unsorted map-order output in deterministic packages (fleet, simcloud, perfmodel, cloud, campaign)",
		Run: func(f *File) []Diagnostic {
			if !deterministicPkgs[f.Pkg] {
				return nil
			}
			var diags []Diagnostic
			randName := importName(f.AST, "math/rand")
			randV2 := importName(f.AST, "math/rand/v2")
			timeName := importName(f.AST, "time")

			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkg, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				switch {
				case (pkg.Name == randName && randName != "") || (pkg.Name == randV2 && randV2 != ""):
					if !randConstructors[sel.Sel.Name] {
						diags = append(diags, f.diag(call.Pos(), id, SeverityError,
							"call to global %s.%s in deterministic package %s; thread a seeded *rand.Rand instead",
							pkg.Name, sel.Sel.Name, f.Pkg))
					}
				case pkg.Name == timeName && timeName != "":
					switch sel.Sel.Name {
					case "Now", "Since":
						diags = append(diags, f.diag(call.Pos(), id, SeverityError,
							"wall-clock time.%s in deterministic package %s; inject a clock or use simulated time",
							sel.Sel.Name, f.Pkg))
					}
				}
				return true
			})

			funcDecls(f.AST, func(name string, ftype *ast.FuncType, body *ast.BlockStmt) {
				diags = append(diags, mapOrderFindings(f, id, ftype, body)...)
			})
			return diags
		},
	}
}

// mapOrderFindings flags range-over-map loops whose visit order leaks
// into observable output. go/ast carries no type information, so a
// "map" is what the function body proves syntactically: a parameter or
// variable declared with a map type, or assigned from make(map...) or
// a map literal. Order is considered to leak when the loop body appends
// to a slice or writes through a printer/builder; an append target that
// is later passed to a sort call is forgiven, since sorting launders
// the order.
func mapOrderFindings(f *File, id string, ftype *ast.FuncType, body *ast.BlockStmt) []Diagnostic {
	maps := map[string]bool{}
	if ftype.Params != nil {
		for _, p := range ftype.Params.List {
			if _, ok := p.Type.(*ast.MapType); ok {
				for _, n := range p.Names {
					maps[n.Name] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				break
			}
			for i, lhs := range n.Lhs {
				if name, ok := lhs.(*ast.Ident); ok && isMapExpr(n.Rhs[i]) {
					maps[name.Name] = true
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					if _, ok := vs.Type.(*ast.MapType); ok {
						for _, n := range vs.Names {
							maps[n.Name] = true
						}
					}
				}
			}
		}
		return true
	})
	if len(maps) == 0 {
		return nil
	}

	// Identifiers handed to a sort call anywhere in the function: their
	// order has been laundered.
	sorted := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, fn := calleeOf(call)
		if (recv == "sort" || recv == "slices") && fn != "" && len(call.Args) > 0 {
			if arg, ok := call.Args[0].(*ast.Ident); ok {
				sorted[arg.Name] = true
			}
		}
		return true
	})

	var diags []Diagnostic
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		subj, ok := rng.X.(*ast.Ident)
		if !ok || !maps[subj.Name] {
			return true
		}
		escape, target := orderEscapes(rng.Body)
		if !escape || (target != "" && sorted[target]) {
			return true
		}
		diags = append(diags, f.diag(rng.Pos(), id, SeverityError,
			"iteration over map %s produces order-dependent output; collect and sort keys first", subj.Name))
		return true
	})
	return diags
}

// isMapExpr reports whether an expression syntactically constructs a
// map: make(map[...]...), a map composite literal, or a conversion of
// either.
func isMapExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			_, isMap := e.Args[0].(*ast.MapType)
			return isMap
		}
	case *ast.CompositeLit:
		_, isMap := e.Type.(*ast.MapType)
		return isMap
	}
	return false
}

// orderEscapes reports whether a range body makes iteration order
// observable — appending to a slice, writing to a builder/printer, or
// sending on a channel — and names the append target when there is one.
func orderEscapes(body *ast.BlockStmt) (escape bool, appendTarget string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			escape = true
		case *ast.CallExpr:
			recv, fn := calleeOf(n)
			switch {
			case recv == "" && fn == "append":
				escape = true
				if len(n.Args) > 0 {
					if t, ok := n.Args[0].(*ast.Ident); ok {
						appendTarget = t.Name
					}
				}
			case recv == "fmt" && (fn == "Print" || fn == "Println" || fn == "Printf" ||
				fn == "Fprint" || fn == "Fprintln" || fn == "Fprintf"):
				escape = true
			case fn == "WriteString" || fn == "WriteByte" || fn == "WriteRune":
				escape = true
			}
		}
		return true
	})
	return escape, appendTarget
}
