package analyzers

import (
	"path/filepath"
	"strings"
	"testing"
)

// runInterOn runs a single interprocedural check (by ID) over one
// fixture directory, suppression applied.
func runInterOn(t *testing.T, checkID, dir string) []Diagnostic {
	t.Helper()
	sel, err := SelectAll([]string{checkID})
	if err != nil {
		t.Fatalf("SelectAll(%s): %v", checkID, err)
	}
	if len(sel.Inter) != 1 {
		t.Fatalf("SelectAll(%s): want 1 interprocedural check, got %d", checkID, len(sel.Inter))
	}
	pkgs, err := Load([]string{dir})
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	return runInterOver(pkgs, sel.Inter).Diags
}

func TestInterGoldenDirtyFixtures(t *testing.T) {
	type want struct {
		line   int
		substr string
	}
	cases := []struct {
		check string
		want  []want
	}{
		{check: "ctxflow", want: []want{
			{15, "context.Background in repro/internal/analyzers/testdata/ctxflow/dirty.detachedTimeout, which already carries a context"},
			{21, "context.TODO in repro/internal/analyzers/testdata/ctxflow/dirty.handlerTODO, which already carries a context"},
			{32, "but every caller (1) carries a context; accept a ctx parameter"},
			{43, "blocking channel send in a loop of repro/internal/analyzers/testdata/ctxflow/dirty.pump with no ctx.Done() escape"},
			{51, "blocking channel receive in a loop of repro/internal/analyzers/testdata/ctxflow/dirty.drain with no ctx.Done() escape"},
			{60, "select in a loop of repro/internal/analyzers/testdata/ctxflow/dirty.waitLoop has no ctx.Done() case and no default"},
			{75, "calls repro/internal/analyzers/testdata/ctxflow/dirty.process without threading its ctx"},
		}},
		{check: "lockheld", want: []want{
			{22, "channel send while s.mu is held"},
			{30, "channel receive while s.rw is held"},
			{37, "call to time.Sleep blocks (time.Sleep) while s.mu is held"},
			{44, "call to (*sync.WaitGroup).Wait blocks (WaitGroup.Wait) while s.mu is held"},
			{51, "select with no default while s.mu is held"},
			{62, "call to net/http.Get blocks (net/http.Get) while s.mu is held"},
			{74, "blocks (time.Sleep via (*repro/internal/analyzers/testdata/lockheld/dirty.server).nap -> time.Sleep) while s.mu is held"},
		}},
		{check: "detertaint", want: []want{
			{26, "time.Now flows into the seed argument of repro/internal/analyzers/testdata/detertaint/dirty.NewTracer"},
			{32, "global math/rand.Int63 flows into the seed argument"},
			{37, "time.Now written to seed field t.seed"},
			{44, "map range order flows into the ring placement key argument"},
			{55, "nondeterministic result of repro/internal/analyzers/testdata/detertaint/dirty.stamp flows into the seed argument"},
			{65, "time.Now flows into the seed argument of repro/internal/analyzers/testdata/detertaint/dirty.launder"},
			{70, "time.Now flows into the seed argument of math/rand.NewSource"},
			{78, "time.Now flows into the seed argument of repro/internal/analyzers/testdata/detertaint/dirty.NewTracer in repro/internal/analyzers/testdata/detertaint/dirty.assignedTaint"},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.check, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.check, "dirty")
			got := runInterOn(t, tc.check, dir)
			if len(got) != len(tc.want) {
				t.Fatalf("%s: got %d finding(s), want %d:\n%s",
					dir, len(got), len(tc.want), renderDiags(got))
			}
			for i, w := range tc.want {
				d := got[i]
				if d.Line != w.line || d.Check != tc.check {
					t.Errorf("finding %d: got %s:%d [%s], want line %d [%s]",
						i, d.File, d.Line, d.Check, w.line, tc.check)
				}
				if !strings.Contains(d.Message, w.substr) {
					t.Errorf("finding %d: message %q does not contain %q", i, d.Message, w.substr)
				}
				if d.Severity != SeverityError {
					t.Errorf("finding %d: severity %q, want %q", i, d.Severity, SeverityError)
				}
			}
		})
	}
}

func TestInterGoldenCleanFixtures(t *testing.T) {
	for _, check := range []string{"ctxflow", "lockheld", "detertaint"} {
		t.Run(check, func(t *testing.T) {
			// Clean fixtures must survive all three layers in full: a
			// clean idiom that trips a neighboring check is still a
			// false positive.
			dir := filepath.Join("testdata", check, "clean")
			sel, err := SelectAll(nil)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunLayers([]string{dir}, sel)
			if err != nil {
				t.Fatalf("RunLayers(%s): %v", dir, err)
			}
			if len(res.Diags) != 0 {
				t.Fatalf("full suite: want no findings, got:\n%s", renderDiags(res.Diags))
			}
		})
	}
}

// TestInterSuppression pins //lint:ignore handling for whole-surface
// checks: the directive in the file a finding lands in silences it.
func TestInterSuppression(t *testing.T) {
	dir := filepath.Join("testdata", "ctxflow", "suppressed")
	if got := runInterOn(t, "ctxflow", dir); len(got) != 0 {
		t.Fatalf("want suppressed, got:\n%s", renderDiags(got))
	}
}

// TestRunLayersMatchesSeparateRuns guards the shared-load fast path:
// one RunLayers pass must produce exactly the diagnostics of the three
// layers run separately.
func TestRunLayersMatchesSeparateRuns(t *testing.T) {
	patterns := []string{filepath.Join("testdata", "detertaint", "dirty")}
	sel, err := SelectAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := RunLayers(patterns, sel)
	if err != nil {
		t.Fatalf("RunLayers: %v", err)
	}
	syn, err := Run(patterns, sel.Syntactic)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	typed, err := RunTyped(patterns, sel.Typed)
	if err != nil {
		t.Fatalf("RunTyped: %v", err)
	}
	inter, err := RunInter(patterns, sel.Inter)
	if err != nil {
		t.Fatalf("RunInter: %v", err)
	}
	flow, err := RunFlow(patterns, sel.Flow)
	if err != nil {
		t.Fatalf("RunFlow: %v", err)
	}
	separate := append(append(append(syn.Diags, typed.Diags...), inter.Diags...), flow.Diags...)
	sortDiags(separate)
	if len(combined.Diags) != len(separate) {
		t.Fatalf("RunLayers found %d diagnostic(s), separate runs %d:\n%s\nvs\n%s",
			len(combined.Diags), len(separate), renderDiags(combined.Diags), renderDiags(separate))
	}
	for i := range separate {
		if combined.Diags[i] != separate[i] {
			t.Errorf("diagnostic %d differs: %v vs %v", i, combined.Diags[i], separate[i])
		}
	}
}
