package analyzers

import "go/ast"

// This file is the forward dataflow engine over the CFG: a classic
// reverse-postorder worklist iterated to fixpoint. The framework is
// generic in the state type; a check supplies the lattice operations
// (Entry/Transfer/Join/Equal) and optionally an edge refinement
// (Branch) that sharpens state along the true/false edges of a
// conditional — how nilerr learns that `err != nil` held on the path
// it is about to walk.

// FlowProblem defines one forward dataflow problem over state type S.
// Transfer must not mutate its input; it returns the state after the
// block. Join merges a predecessor's contribution into an accumulated
// state and must likewise leave its inputs usable. Branch, when
// non-nil, refines the state flowing along the taken (true) or
// not-taken (false) edge of a block whose Cond is set.
type FlowProblem[S any] struct {
	Entry    func() S
	Transfer func(b *Block, in S) S
	Branch   func(cond ast.Expr, taken bool, out S) S
	Join     func(a, b S) S
	Equal    func(a, b S) bool
}

// ForwardFlow solves the problem to fixpoint and returns the state at
// entry to every reachable block. Unreachable blocks are absent from
// the result.
func ForwardFlow[S any](g *CFG, p FlowProblem[S]) map[*Block]S {
	post := g.postorder()
	// Reverse postorder: iteration order that visits predecessors
	// first on acyclic stretches, minimizing passes.
	rpo := make([]*Block, len(post))
	for i, b := range post {
		rpo[len(post)-1-i] = b
	}
	pos := map[*Block]int{}
	for i, b := range rpo {
		pos[b] = i
	}

	in := map[*Block]S{}
	in[g.Entry] = p.Entry()
	inQueue := map[*Block]bool{g.Entry: true}
	queue := []*Block{g.Entry}
	pop := func() *Block {
		// Pick the earliest block in RPO currently queued; the queue
		// stays tiny (≤ blocks), so a linear scan is fine.
		best := 0
		for i := 1; i < len(queue); i++ {
			if pos[queue[i]] < pos[queue[best]] {
				best = i
			}
		}
		b := queue[best]
		queue = append(queue[:best], queue[best+1:]...)
		inQueue[b] = false
		return b
	}

	for len(queue) > 0 {
		b := pop()
		out := p.Transfer(b, in[b])
		for i, s := range b.Succs {
			contrib := out
			if p.Branch != nil && b.Cond != nil && len(b.Succs) == 2 {
				contrib = p.Branch(b.Cond, i == 0, out)
			}
			old, ok := in[s]
			var merged S
			if !ok {
				merged = contrib
			} else {
				merged = p.Join(old, contrib)
			}
			if !ok || !p.Equal(old, merged) {
				in[s] = merged
				if !inQueue[s] {
					inQueue[s] = true
					queue = append(queue, s)
				}
			}
		}
	}
	return in
}
