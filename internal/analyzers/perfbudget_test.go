package analyzers

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBudgetFileName(t *testing.T) {
	if got := BudgetFileName("repro/internal/lbm"); got != "repro_internal_lbm.json" {
		t.Errorf("BudgetFileName = %q", got)
	}
	if got := BudgetFileName("single"); got != "single.json" {
		t.Errorf("BudgetFileName = %q", got)
	}
}

// TestParsePerfDiags feeds canned `go build -gcflags='-m=1
// -d=ssa/check_bce/debug=1'` output: only escape and bounds-check
// diagnostics are budgeted, never inlining chatter, leaking-param
// notes, or package headers.
func TestParsePerfDiags(t *testing.T) {
	out := `# repro/internal/lbm
internal/lbm/proxy.go:10:6: can inline (*Proxy).slot
internal/lbm/proxy.go:20:13: inlining call to Equilibrium
internal/lbm/proxy.go:30:7: leaking param: p
internal/lbm/proxy.go:41:2: moved to heap: buf
internal/lbm/proxy.go:52:15: make([]float64, n) escapes to heap
internal/lbm/proxy.go:63:9: Found IsInBounds
internal/lbm/proxy.go:63:21: Found IsInBounds
internal/lbm/proxy.go:74:12: Found IsSliceInBounds
not a diagnostic line
internal/lbm/proxy.go:bad:1: Found IsInBounds
`
	escapes, bounds := parsePerfDiags(out)
	if len(escapes) != 2 {
		t.Fatalf("escapes = %d, want 2: %v", len(escapes), escapes)
	}
	if escapes[0].line != 41 || !strings.Contains(escapes[0].message, "moved to heap") {
		t.Errorf("escape[0] = %+v", escapes[0])
	}
	if escapes[1].line != 52 || !strings.Contains(escapes[1].message, "escapes to heap") {
		t.Errorf("escape[1] = %+v", escapes[1])
	}
	if len(bounds) != 3 {
		t.Fatalf("bounds = %d, want 3: %v", len(bounds), bounds)
	}
	for _, b := range bounds {
		if b.file != "internal/lbm/proxy.go" {
			t.Errorf("bounds diag file = %q", b.file)
		}
	}
}

func TestLoadPerfBudgetMissing(t *testing.T) {
	b, err := LoadPerfBudget(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("missing budget must not error: %v", err)
	}
	if b.Version != 1 || len(b.Functions) != 0 {
		t.Errorf("missing budget must load empty, got %+v", b)
	}
}

func TestPerfBudgetSaveLoadRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "b.json")
	in := PerfBudget{
		Version: 1,
		Package: "repro/internal/lbm",
		Functions: map[string]PerfCounts{
			"(*Proxy).Step": {Escapes: 4, BoundsChecks: 0},
			"pull":          {Escapes: 0, BoundsChecks: 7},
		},
	}
	if err := in.Save(path); err != nil {
		t.Fatal(err)
	}
	out, err := LoadPerfBudget(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Package != in.Package || len(out.Functions) != 2 {
		t.Fatalf("roundtrip lost data: %+v", out)
	}
	if out.Functions["pull"] != (PerfCounts{BoundsChecks: 7}) {
		t.Errorf("pull = %+v", out.Functions["pull"])
	}
}

func TestLoadPerfBudgetCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPerfBudget(path); err == nil {
		t.Fatal("corrupt budget must error")
	}
}

func TestDiffPerfBudget(t *testing.T) {
	budget := PerfBudget{
		Version: 1,
		Package: "p",
		Functions: map[string]PerfCounts{
			"steady":   {Escapes: 1, BoundsChecks: 2},
			"improved": {Escapes: 3, BoundsChecks: 3},
			"worse":    {Escapes: 0, BoundsChecks: 1},
		},
	}
	current := PerfBudget{
		Version: 1,
		Package: "p",
		Functions: map[string]PerfCounts{
			"steady":   {Escapes: 1, BoundsChecks: 2},
			"improved": {Escapes: 0, BoundsChecks: 3},
			"worse":    {Escapes: 2, BoundsChecks: 5},
			"newClean": {},
			"newDirty": {Escapes: 1, BoundsChecks: 0},
		},
	}
	failures, improvements := DiffPerfBudget(budget, current)
	if len(failures) != 3 {
		t.Fatalf("failures = %d, want 3:\n%s", len(failures), strings.Join(failures, "\n"))
	}
	joined := strings.Join(failures, "\n")
	if !strings.Contains(joined, "worse: 2 heap escape(s), budget 0 (+2)") {
		t.Errorf("missing escape regression in:\n%s", joined)
	}
	if !strings.Contains(joined, "worse: 5 bounds check(s), budget 1 (+4)") {
		t.Errorf("missing bounds regression in:\n%s", joined)
	}
	if !strings.Contains(joined, "newDirty: no committed budget") ||
		!strings.Contains(joined, "-write-perfbudget") {
		t.Errorf("missing unbudgeted-function failure in:\n%s", joined)
	}
	if strings.Contains(joined, "newClean") {
		t.Errorf("a new hot function with zero counts must pass:\n%s", joined)
	}
	if len(improvements) != 1 || !strings.Contains(improvements[0], "improved: 0 heap escape(s), budget 3") ||
		!strings.Contains(improvements[0], "tighten the budget") {
		t.Errorf("improvements = %v", improvements)
	}
}

// TestInventoryFromBuckets pins the line-range attribution: a
// diagnostic lands in the hot function whose range covers its line and
// whose file matches; everything else is unbudgeted.
func TestInventoryFromBuckets(t *testing.T) {
	pkgs, err := Load([]string{filepath.Join("testdata", "hotpath", "dirty")})
	if err != nil {
		t.Fatal(err)
	}
	pkg := pkgs[0]
	ranges := hotFuncRangesOf(pkg)
	if len(ranges) == 0 {
		t.Fatal("hotpath dirty fixture must have hot functions")
	}
	r := ranges[0]
	escapes := []perfDiag{
		{file: r.file, line: r.start + 1, message: "moved to heap: x"},
		// Same line, wrong file: must not be attributed.
		{file: "elsewhere.go", line: r.start + 1, message: "moved to heap: x"},
		// Right file, line outside every hot range.
		{file: r.file, line: 1_000_000, message: "moved to heap: x"},
	}
	bounds := []perfDiag{
		{file: r.file, line: r.start + 1, message: "Found IsSliceInBounds"},
	}
	inv := inventoryFrom(pkg, escapes, bounds)
	if inv.Package != pkg.Path {
		t.Errorf("inventory package = %q, want %q", inv.Package, pkg.Path)
	}
	if got := inv.Functions[r.name]; got != (PerfCounts{Escapes: 1, BoundsChecks: 1}) {
		t.Errorf("%s = %+v, want 1 escape, 1 bounds check", r.name, got)
	}
	totalEsc := 0
	for _, c := range inv.Functions {
		totalEsc += c.Escapes
	}
	if totalEsc != 1 {
		t.Errorf("mis-attributed escapes: total %d, want 1", totalEsc)
	}
	// Every hot function appears with an explicit (possibly zero) entry
	// so a budget line exists to ratchet against.
	if len(inv.Functions) != len(ranges) {
		t.Errorf("inventory has %d function(s), want %d", len(inv.Functions), len(ranges))
	}
}

// seededModule writes a one-package module under dir and returns a
// hand-built TypedPackage for it (the perfbudget path only needs the
// parsed AST for hot ranges, not type information).
func seededModule(t *testing.T, dir, src string) *TypedPackage {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmphot\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "hot.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	af, err := parser.ParseFile(fset, path, src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &TypedPackage{
		Dir:  dir,
		Path: "tmphot",
		Fset: fset,
		Files: []*TypedFile{{File: File{
			Fset: fset, AST: af, Path: path, Pkg: "tmphot",
		}}},
	}
}

// TestSeededRegressionFailsGate is the end-to-end acceptance check:
// budget a clean hot package, seed a heap escape and a bounds check
// into it, and the recollected inventory must fail the diff.
func TestSeededRegressionFailsGate(t *testing.T) {
	dir := t.TempDir()
	clean := `package tmphot

//lint:hot
func Grow() int {
	x := 42
	return x
}

//lint:hot
func Sum(xs []int) int {
	t := 0
	for _, v := range xs {
		t += v
	}
	return t
}
`
	pkg := seededModule(t, dir, clean)
	budget, err := CollectPerfInventory(dir, pkg)
	if err != nil {
		t.Fatalf("collecting clean inventory: %v", err)
	}
	if c := budget.Functions["Grow"]; c != (PerfCounts{}) {
		t.Fatalf("clean Grow = %+v, want zero", c)
	}
	if c := budget.Functions["Sum"]; c != (PerfCounts{}) {
		t.Fatalf("clean Sum = %+v, want zero", c)
	}

	regressed := `package tmphot

//lint:hot
func Grow() *int {
	x := 42
	return &x
}

//lint:hot
func Sum(xs []int, n int) int {
	t := 0
	for i := 0; i < n; i++ {
		t += xs[i]
	}
	return t
}
`
	pkg2 := seededModule(t, dir, regressed)
	current, err := CollectPerfInventory(dir, pkg2)
	if err != nil {
		t.Fatalf("collecting regressed inventory: %v", err)
	}
	if c := current.Functions["Grow"]; c.Escapes < 1 {
		t.Fatalf("seeded escape not reported: Grow = %+v", c)
	}
	if c := current.Functions["Sum"]; c.BoundsChecks < 1 {
		t.Fatalf("seeded bounds check not reported: Sum = %+v", c)
	}
	failures, _ := DiffPerfBudget(budget, current)
	if len(failures) != 2 {
		t.Fatalf("gate must fail on both seeded regressions, got %d:\n%s",
			len(failures), strings.Join(failures, "\n"))
	}
	joined := strings.Join(failures, "\n")
	if !strings.Contains(joined, "Grow") || !strings.Contains(joined, "heap escape(s)") {
		t.Errorf("missing Grow escape failure:\n%s", joined)
	}
	if !strings.Contains(joined, "Sum") || !strings.Contains(joined, "bounds check(s)") {
		t.Errorf("missing Sum bounds failure:\n%s", joined)
	}

	// The regressed inventory passes against itself: writing a fresh
	// budget is always a valid (if lamentable) way out.
	if refail, _ := DiffPerfBudget(current, current); len(refail) != 0 {
		t.Errorf("inventory must pass against its own budget:\n%s", strings.Join(refail, "\n"))
	}
}

func TestFindModuleRoot(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("FindModuleRoot returned %s without a go.mod", root)
	}
	if _, err := FindModuleRoot(t.TempDir()); err == nil {
		t.Error("FindModuleRoot must fail with no go.mod above")
	}
}

func TestHotPackagesFilters(t *testing.T) {
	pkgs, err := Load([]string{
		filepath.Join("testdata", "hotpath", "dirty"),
		filepath.Join("testdata", "nilerr", "dirty"),
	})
	if err != nil {
		t.Fatal(err)
	}
	hot := HotPackages(pkgs)
	if len(hot) != 1 || !strings.HasSuffix(hot[0].Dir, filepath.Join("hotpath", "dirty")) {
		t.Fatalf("HotPackages must keep only the marked package, got %d", len(hot))
	}
}
