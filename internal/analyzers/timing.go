package analyzers

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file is the optional wall-time instrumentation behind
// cmd/lint -timing: per-check and per-layer durations for one run, so
// a BenchmarkRunAll CI gate failure can be pinned on the check that
// grew slow instead of bisected by hand. Collection is off unless a
// caller installs a sink, so the library's normal path costs a single
// atomic load per check invocation.

// Timings accumulates the durations of one lint run.
type Timings struct {
	mu     sync.Mutex
	checks map[string]time.Duration
	layers map[string]time.Duration
}

// timingSink is the active collector (nil when disabled).
var timingSink atomic.Pointer[Timings]

// CollectTimings installs and returns a fresh collector; every
// subsequent Run/RunLayers records into it until StopTimings.
func CollectTimings() *Timings {
	t := &Timings{
		checks: map[string]time.Duration{},
		layers: map[string]time.Duration{},
	}
	timingSink.Store(t)
	return t
}

// StopTimings uninstalls the active collector.
func StopTimings() {
	timingSink.Store(nil)
}

// Checks returns the accumulated per-check durations.
func (t *Timings) Checks() map[string]time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]time.Duration, len(t.checks))
	for k, v := range t.checks {
		out[k] = v
	}
	return out
}

// Layers returns the accumulated per-layer durations (including the
// shared type-checked load as layer "load").
func (t *Timings) Layers() map[string]time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]time.Duration, len(t.layers))
	for k, v := range t.layers {
		out[k] = v
	}
	return out
}

func (t *Timings) addCheck(id string, d time.Duration) {
	t.mu.Lock()
	t.checks[id] += d
	t.mu.Unlock()
}

func (t *Timings) addLayer(name string, d time.Duration) {
	t.mu.Lock()
	t.layers[name] += d
	t.mu.Unlock()
}

// timeCheck runs one check invocation, attributing its wall time when
// collection is on.
func timeCheck(id string, f func()) {
	t := timingSink.Load()
	if t == nil {
		f()
		return
	}
	start := time.Now()
	f()
	t.addCheck(id, time.Since(start))
}

// timeLayer runs one layer phase, attributing its wall time when
// collection is on.
func timeLayer(name string, f func()) {
	t := timingSink.Load()
	if t == nil {
		f()
		return
	}
	start := time.Now()
	f()
	t.addLayer(name, time.Since(start))
}
