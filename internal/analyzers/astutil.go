package analyzers

import (
	"go/ast"
	"strings"
)

// exprString renders the receiver-ish expressions the checks compare
// (identifiers, selector chains, index and dereference forms) into a
// canonical string, e.g. "s.mu" or "shards[i].mu". Unsupported forms
// render as "?".
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	case *ast.BinaryExpr:
		return exprString(e.X) + e.Op.String() + exprString(e.Y)
	}
	return "?"
}

// importName returns the local name under which a file imports the
// given path ("" when not imported). An explicit alias wins; otherwise
// the last path element is the conventional name.
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// calleeOf unwraps a call to (pkgOrRecv, name) when the callee is a
// selector like rand.Intn or mu.Lock, or ("", name) for a plain
// identifier call.
func calleeOf(call *ast.CallExpr) (recv, name string) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return "", fun.Name
	case *ast.SelectorExpr:
		return exprString(fun.X), fun.Sel.Name
	}
	return "", ""
}

// funcDecls yields every top-level function declaration with a body.
// Checks that Inspect the whole body (descending into closures) use
// this to avoid visiting a closure twice; checks that need per-frame
// analysis use funcBodies.
func funcDecls(f *ast.File, fn func(name string, ftype *ast.FuncType, body *ast.BlockStmt)) {
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			fn(fd.Name.Name, fd.Type, fd.Body)
		}
	}
}

// funcBodies yields every function body in the file together with its
// declaration-ish name, covering both declarations and literals.
func funcBodies(root ast.Node, fn func(name string, ftype *ast.FuncType, body *ast.BlockStmt)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Name.Name, n.Type, n.Body)
			}
		case *ast.FuncLit:
			fn("func literal", n.Type, n.Body)
		}
		return true
	})
}

// isErrorIdent reports whether a type expression is the predeclared
// error type.
func isErrorIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "error"
}

// lastResult returns the type expression of a function type's final
// result (nil when it has none).
func lastResult(ft *ast.FuncType) ast.Expr {
	if ft.Results == nil || len(ft.Results.List) == 0 {
		return nil
	}
	return ft.Results.List[len(ft.Results.List)-1].Type
}
