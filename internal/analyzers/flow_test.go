package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// runFlowOn runs a single flow-sensitive check (by ID) over one
// fixture directory, suppression applied.
func runFlowOn(t *testing.T, checkID, dir string) []Diagnostic {
	t.Helper()
	sel, err := SelectAll([]string{checkID})
	if err != nil {
		t.Fatalf("SelectAll(%s): %v", checkID, err)
	}
	if len(sel.Flow) != 1 {
		t.Fatalf("SelectAll(%s): want 1 flow check, got %d", checkID, len(sel.Flow))
	}
	pkgs, err := Load([]string{dir})
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	return runFlowOver(pkgs, sel.Flow).Diags
}

func TestFlowGoldenDirtyFixtures(t *testing.T) {
	type want struct {
		line   int
		substr string
	}
	cases := []struct {
		check string
		want  []want
	}{
		{check: "nilerr", want: []want{
			{30, "f is used here, but err is non-nil on this path"},
			{39, "error err is overwritten here before the previous value (line 38) was read"},
			{47, "error err is overwritten here before the previous value (line 46) was read"},
			{54, "error err is assigned here but never read before return"},
		}},
		{check: "useafterfinal", want: []want{
			{22, "c.Send called on a path where c.Close already ran (line 21)"},
			{31, "c.Send called on a path where c.Close already ran (line 29)"},
			// The loop case: Close on line 39 reaches the Send on line 38
			// through the back edge.
			{38, "c.Send called on a path where c.Close already ran (line 39)"},
		}},
		{check: "hotpath", want: []want{
			{13, "defer inside a hot loop"},
			{21, "map allocated inside a hot loop"},
			{32, "map literal allocated inside a hot loop"},
			{42, "append to s (declared without capacity) inside a hot loop"},
			{51, "closure capturing total inside a hot loop"},
			{60, "argument i boxes into interface interface{} inside a hot loop"},
			// filehot.go sorts after dirty.go: the file-level directive
			// marks a function with no mark of its own.
			{9, "defer inside a hot loop"},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.check, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.check, "dirty")
			got := runFlowOn(t, tc.check, dir)
			if len(got) != len(tc.want) {
				t.Fatalf("%s: got %d finding(s), want %d:\n%s",
					dir, len(got), len(tc.want), renderDiags(got))
			}
			for i, w := range tc.want {
				d := got[i]
				if d.Line != w.line || d.Check != tc.check {
					t.Errorf("finding %d: got %s:%d [%s], want line %d [%s]",
						i, d.File, d.Line, d.Check, w.line, tc.check)
				}
				if !strings.Contains(d.Message, w.substr) {
					t.Errorf("finding %d: message %q does not contain %q", i, d.Message, w.substr)
				}
				if d.Severity != SeverityError {
					t.Errorf("finding %d: severity %q, want %q", i, d.Severity, SeverityError)
				}
			}
		})
	}
}

func TestFlowGoldenCleanFixtures(t *testing.T) {
	for _, check := range []string{"nilerr", "useafterfinal", "hotpath"} {
		t.Run(check, func(t *testing.T) {
			// Clean fixtures must survive all four layers in full: a
			// clean idiom that trips a neighboring check is still a
			// false positive.
			dir := filepath.Join("testdata", check, "clean")
			sel, err := SelectAll(nil)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunLayers([]string{dir}, sel)
			if err != nil {
				t.Fatalf("RunLayers(%s): %v", dir, err)
			}
			if len(res.Diags) != 0 {
				t.Fatalf("full suite: want no findings, got:\n%s", renderDiags(res.Diags))
			}
		})
	}
}

// TestFlowSuppression pins //lint:ignore handling for flow-sensitive
// checks: the directive above a finding's line silences it.
func TestFlowSuppression(t *testing.T) {
	for _, check := range []string{"nilerr", "useafterfinal", "hotpath"} {
		t.Run(check, func(t *testing.T) {
			dir := filepath.Join("testdata", check, "suppressed")
			if got := runFlowOn(t, check, dir); len(got) != 0 {
				t.Fatalf("want suppressed, got:\n%s", renderDiags(got))
			}
		})
	}
}

// TestHotMarks pins the //lint:hot directive's resolution rules:
// file-level above the package clause, function-level on the line
// above a declaration or inside its doc comment.
func TestHotMarks(t *testing.T) {
	src := `//lint:hot
package p

func everyFn() {}
`
	fset := token.NewFileSet()
	af, err := parser.ParseFile(fset, "hot.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	m := hotMarksOf(&File{Fset: fset, AST: af, Path: "hot.go", Pkg: "p"})
	if !m.fileHot {
		t.Error("directive above the package clause must mark the whole file")
	}

	src2 := `package p

//lint:hot
func marked() {}

// documented is described here.
//
//lint:hot
func documented() {}

func unmarked() {}
`
	af2, err := parser.ParseFile(fset, "hot2.go", src2, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	m2 := hotMarksOf(&File{Fset: fset, AST: af2, Path: "hot2.go", Pkg: "p"})
	if m2.fileHot {
		t.Error("function-level directives must not mark the file")
	}
	for _, d := range af2.Decls {
		fd := d.(*ast.FuncDecl)
		want := fd.Name.Name != "unmarked"
		if got := m2.hot(fd, fset); got != want {
			t.Errorf("hot(%s) = %v, want %v", fd.Name.Name, got, want)
		}
	}
}
