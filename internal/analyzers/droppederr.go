package analyzers

import (
	"go/ast"
)

// errorProneCallees are well-known stdlib-ish call names whose final
// result is an error; a blank in that slot is flagged even when the
// callee cannot be resolved within the package.
var errorProneCallees = map[string]bool{
	"Atoi": true, "ParseFloat": true, "ParseInt": true, "ParseBool": true,
	"Open": true, "Create": true, "Stat": true, "ReadFile": true,
	"WriteFile": true, "ReadAll": true, "ReadDir": true,
	"Marshal": true, "MarshalIndent": true, "Unmarshal": true,
	"Write": true, "WriteString": true, "Read": true,
	"Close": true, "Flush": true, "Sync": true,
	"Parse": true, "Compile": true,
}

// checkDroppedErr flags silently discarded error returns:
//
//   - `_ = expr` statements that discard a call result;
//   - a blank identifier in the final position of a multi-assign from a
//     call whose last result is an error (resolved against the package's
//     own declarations, or a conservative stdlib name list otherwise);
//   - bare call statements to package-local functions returning an
//     error, and to unresolved Close/Flush/Sync-style callees.
//
// Deferred calls are exempt: `defer f.Close()` is accepted idiom for
// read paths.
func checkDroppedErr() Check {
	const id = "droppederr"
	return Check{
		ID:  id,
		Doc: "no silently discarded error returns (handle it or //lint:ignore droppederr <reason>)",
		Run: func(f *File) []Diagnostic {
			var diags []Diagnostic
			returnsErr := packageErrorFuncs(f.Siblings)

			ast.Inspect(f.AST, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					diags = append(diags, dropsInAssign(f, id, n, returnsErr)...)
				case *ast.ExprStmt:
					call, ok := n.X.(*ast.CallExpr)
					if !ok {
						return true
					}
					recv, name := calleeOf(call)
					// Method calls resolve by bare name, which is
					// unsound across receiver types (a local Step
					// returning error must not indict lbm's Step that
					// returns nothing) — so selector callees only use
					// the conservative always-error name list.
					switch {
					case recv == "" && returnsErr[name]:
						diags = append(diags, f.diag(call.Pos(), id, SeverityError,
							"error return of %s ignored", name))
					case recv != "" && (name == "Close" || name == "Flush" || name == "Sync"):
						diags = append(diags, f.diag(call.Pos(), id, SeverityError,
							"error return of %s ignored", callLabel(recv, name)))
					}
				}
				return true
			})
			return diags
		},
	}
}

// dropsInAssign inspects one assignment for blank-discarded results.
func dropsInAssign(f *File, id string, n *ast.AssignStmt, returnsErr map[string]bool) []Diagnostic {
	var diags []Diagnostic

	// `_ = expr`: an explicit single discard. Only call results are
	// flagged — `_ = someVar` is the compiler-pacifying idiom for
	// intentionally unused values and carries no error.
	if len(n.Lhs) == 1 && len(n.Rhs) == 1 && isBlank(n.Lhs[0]) {
		if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
			recv, name := calleeOf(call)
			diags = append(diags, f.diag(n.Pos(), id, SeverityError,
				"result of %s discarded with _ =; handle it or suppress with a reason", callLabel(recv, name)))
		}
		return diags
	}

	// `a, _ := call(...)`: blank in the final slot of a call's results.
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 && isBlank(n.Lhs[len(n.Lhs)-1]) {
		call, ok := n.Rhs[0].(*ast.CallExpr)
		if !ok {
			return diags
		}
		recv, name := calleeOf(call)
		errKnown, resolved := returnsErr[name]
		if (resolved && errKnown) || (!resolved && errorProneCallees[name]) {
			diags = append(diags, f.diag(n.Pos(), id, SeverityError,
				"error result of %s discarded with a blank identifier", callLabel(recv, name)))
		}
	}
	return diags
}

// packageErrorFuncs maps every function and method name declared in the
// package to whether its final result is an error. A name declared
// with both shapes (some method returning error, another not) resolves
// to the safe answer: not flagged.
func packageErrorFuncs(files []*ast.File) map[string]bool {
	out := map[string]bool{}
	for _, af := range files {
		for _, decl := range af.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			last := lastResult(fd.Type)
			isErr := last != nil && isErrorIdent(last)
			if prev, seen := out[fd.Name.Name]; seen {
				out[fd.Name.Name] = prev && isErr
				continue
			}
			out[fd.Name.Name] = isErr
		}
	}
	return out
}

// isBlank reports whether an expression is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// callLabel renders recv.name or name for diagnostics.
func callLabel(recv, name string) string {
	if recv == "" {
		return name
	}
	return recv + "." + name
}
