package analyzers

import (
	"go/ast"
	"go/types"
)

// checkLossyConv flags lossy integer conversions of byte-count and
// halo-count quantities. A healthy aorta mesh already moves gigabytes
// per step, so int32(nBytes) wraps silently past 2 GiB, float-to-int
// conversions drop fractional bytes computed from bandwidth models, and
// signed-to-unsigned conversions turn a negative (underflowed) count
// into an enormous positive one. Conversions of untagged values (site
// indices, loop counters) are out of scope; the compiler already checks
// constants.
func checkLossyConv() TypedCheck {
	const id = "lossyconv"
	return TypedCheck{
		ID:  id,
		Doc: "lossy integer conversions of byte/halo-count quantities: int32(nBytes) wraps past 2 GiB, float-to-int truncates, signed-to-unsigned flips negatives",
		Run: func(f *TypedFile) []Diagnostic {
			info := f.Package.Info
			var diags []Diagnostic
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				tv, ok := info.Types[call.Fun]
				if !ok || !tv.IsType() {
					return true
				}
				arg := call.Args[0]
				if av, ok := info.Types[arg]; ok && av.Value != nil {
					return true // constant conversions are compiler-checked
				}
				qty := countQuantity(arg)
				if qty == "" {
					return true
				}
				dst := basicOf(tv.Type)
				src := basicOf(info.TypeOf(arg))
				if dst == nil || src == nil {
					return true
				}
				conv := exprString(call.Fun)
				switch {
				case src.Info()&types.IsFloat != 0 && dst.Info()&types.IsInteger != 0:
					diags = append(diags, f.diag(call.Pos(), id, SeverityError,
						"%s(%s) truncates a fractional %s count to an integer; round explicitly before converting",
						conv, exprString(arg), qty))
				case src.Info()&types.IsInteger != 0 && dst.Info()&types.IsInteger != 0:
					sw, dw := intWidth(src), intWidth(dst)
					signFlip := src.Info()&types.IsUnsigned == 0 && dst.Info()&types.IsUnsigned != 0
					if dw < sw {
						diags = append(diags, f.diag(call.Pos(), id, SeverityError,
							"%s(%s) narrows the %s count from %d to %d bits; values past 2^%d wrap silently",
							conv, exprString(arg), qty, sw, dw, dw-1))
					} else if signFlip {
						diags = append(diags, f.diag(call.Pos(), id, SeverityError,
							"%s(%s) reinterprets the signed %s count as unsigned; a negative value becomes enormous",
							conv, exprString(arg), qty))
					}
				}
				return true
			})
			return diags
		},
	}
}

// countQuantity reports which unit vocabulary ("byte", "halo") tags an
// expression as a data-volume or count quantity, looking through
// arithmetic, conversions and call results (h.Bytes()). Empty when the
// expression carries no such tag.
func countQuantity(e ast.Expr) string {
	dimOf := func(name string) string {
		switch unitDims[flowUnitOf(name)] {
		case "data":
			return "byte"
		case "count":
			return "halo/event"
		}
		return ""
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return countQuantity(e.X)
	case *ast.UnaryExpr:
		return countQuantity(e.X)
	case *ast.Ident:
		return dimOf(e.Name)
	case *ast.SelectorExpr:
		return dimOf(e.Sel.Name)
	case *ast.CallExpr:
		// Either a conversion wrapper (float64(nBytes)) or a method
		// whose name carries the unit (h.Bytes()).
		if name := calleeIdentName(e.Fun); name != "" {
			if d := dimOf(name); d != "" {
				return d
			}
		}
		if len(e.Args) == 1 {
			return countQuantity(e.Args[0])
		}
		return ""
	case *ast.BinaryExpr:
		if d := countQuantity(e.X); d != "" {
			return d
		}
		return countQuantity(e.Y)
	}
	return ""
}

// basicOf unwraps a type to its basic kind, looking through named
// types.
func basicOf(t types.Type) *types.Basic {
	if t == nil {
		return nil
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	return b
}

// intWidth is the bit width of an integer kind on the 64-bit platforms
// this reproduction targets (int and uint are 64-bit).
func intWidth(b *types.Basic) int {
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	default:
		return 64
	}
}
