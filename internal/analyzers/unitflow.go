package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// unitflow is the semantic successor of unitsuffix: instead of only
// comparing the suffixes two identifiers happen to carry, it infers a
// unit tag for expressions — from name suffixes, from whole lower-case
// words (seconds, bytes, usd), from named types like units.Seconds, and
// from call results such as time.Since(t0).Seconds() — propagates the
// tags through local assignments, and checks every place a tagged value
// flows: additive and comparison operators, assignments and composite
// literals, return statements, call arguments against the callee's
// parameter names, and struct-field doc comments.
//
// A tag is a (dimension, scale) pair, e.g. (time, us). Cross-dimension
// combinations are always an error; cross-scale combinations within a
// dimension are an error only when both scales are exact, so deliberate
// conversions (us * 1e-6, which erases the scale but keeps the
// dimension) never fire. Multiplying or dividing tagged values changes
// the dimension — rate×time is data, data/rate is time, x/x is a
// dimensionless ratio — and storing such a result under the unchanged
// source suffix is the third finding family.

// utag is the inferred unit of an expression.
type utag struct {
	dim     string // "time", "data", ..., "dimensionless", or a composite like "time×time"
	scale   string // exact canonical unit within dim ("s", "us", ...), or "" when unknown
	derived bool   // produced by unit arithmetic rather than written as a literal
}

var (
	unknownTag       = utag{}
	dimensionlessTag = utag{dim: "dimensionless", scale: "1"}
)

func (t utag) known() bool         { return t.dim != "" }
func (t utag) dimensionless() bool { return t.dim == "dimensionless" }
func (t utag) composite() bool     { return strings.ContainsAny(t.dim, "×/") }

// String renders the tag the way diagnostics mention it: the exact
// scale when known, the dimension otherwise.
func (t utag) String() string {
	if t.scale != "" && !t.dimensionless() {
		return t.scale
	}
	return t.dim
}

// unitDims maps every canonical unit the suite knows (the values of
// unitSuffixes plus the flow-only additions) to its dimension.
var unitDims = map[string]string{
	"s": "time", "ms": "time", "us": "time", "ns": "time", "h": "time",
	"B": "data", "bit": "data",
	"kB": "data", "MB": "data", "GB": "data",
	"KiB": "data", "MiB": "data", "GiB": "data",
	"B/s": "rate", "kB/s": "rate", "MB/s": "rate", "GB/s": "rate",
	"USD": "money", "cents": "money",
	"Hz": "frequency", "kHz": "frequency", "MHz": "frequency", "GHz": "frequency",
	"FLOPS": "throughput", "GFLOPS": "throughput", "MFLOPS": "throughput",
	"FLUPS": "throughput", "MFLUPS": "throughput", "GFLUPS": "throughput",
	"m/s":   "velocity",
	"count": "count",
}

// flowOnlySuffixes extends the syntactic vocabulary for the typed
// check without touching unitsuffix's published table.
var flowOnlySuffixes = map[string]string{
	"Mps":    "m/s",
	"Count":  "count",
	"Counts": "count",
}

// flowWords tags whole lower-case identifiers that carry their unit as
// the entire name (struct fields like estimate.seconds).
var flowWords = map[string]string{
	"seconds": "s", "secs": "s",
	"bytes":  "B",
	"usd":    "USD",
	"mflups": "MFLUPS",
}

// flowSuffixTable and flowSuffixesByLength merge the two vocabularies.
var flowSuffixTable = func() map[string]string {
	m := make(map[string]string, len(unitSuffixes)+len(flowOnlySuffixes))
	for k, v := range unitSuffixes {
		m[k] = v
	}
	for k, v := range flowOnlySuffixes {
		m[k] = v
	}
	return m
}()

var flowSuffixesByLength = func() []string {
	keys := make([]string, 0, len(flowSuffixTable))
	for k := range flowSuffixTable {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(keys[i]) != len(keys[j]) {
			return len(keys[i]) > len(keys[j])
		}
		return keys[i] < keys[j]
	})
	return keys
}()

// flowUnitOf is unitOf over the extended vocabulary, with one extra
// rule: a name whose stem contains "Per" is a ratio whose suffix names
// only the numerator (PricePerNodeHourUSD is dollars per node-hour,
// bytesPerMB is a pure scale factor), so its suffix is not trusted.
func flowUnitOf(name string) string {
	if u, ok := flowWords[name]; ok {
		return u
	}
	u := suffixUnit(name, flowSuffixesByLength, flowSuffixTable)
	if u == "" {
		return ""
	}
	if stem := name[:len(name)-suffixLenOf(name, u)]; strings.Contains(stem, "Per") {
		return ""
	}
	return u
}

// suffixLenOf recovers the length of the suffix that produced unit u
// for name (the longest matching suffix, mirroring suffixUnit).
func suffixLenOf(name, u string) int {
	for _, suf := range flowSuffixesByLength {
		if flowSuffixTable[suf] == u && strings.HasSuffix(name, suf) {
			return len(suf)
		}
	}
	return 0
}

// tagFromUnit lifts a canonical unit into a tag. Counts are excluded:
// a count multiplies into every other quantity (bytes = markers ×
// bytes-per-marker), so tagging them would flag all such products;
// lossyconv still recognizes count suffixes via unitDims directly.
func tagFromUnit(u string) utag {
	if u == "" {
		return unknownTag
	}
	dim, ok := unitDims[u]
	if !ok || dim == "count" {
		return unknownTag
	}
	return utag{dim: dim, scale: u}
}

// typeTag reads a tag off a named numeric type whose name carries a
// unit suffix: units.Seconds, units.Bytes, or any equivalent local
// declaration.
func typeTag(t types.Type) utag {
	named, ok := t.(*types.Named)
	if !ok {
		return unknownTag
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsNumeric == 0 {
		return unknownTag
	}
	return tagFromUnit(flowUnitOf(named.Obj().Name()))
}

// flowEnv is the per-file inference state.
type flowEnv struct {
	f    *TypedFile
	info *types.Info
	vars map[types.Object]utag
}

func newFlowEnv(f *TypedFile) *flowEnv {
	v := &flowEnv{f: f, info: f.Package.Info, vars: map[types.Object]utag{}}
	v.propagate()
	return v
}

// propagate runs a small fixpoint over the file's assignments so an
// unsuffixed local initialized from a tagged value carries that tag
// (wait := r.LatencyUS). A local assigned conflicting dimensions is
// poisoned and stays untagged; conflicting scales keep the dimension.
func (v *flowEnv) propagate() {
	poisoned := map[types.Object]bool{}
	for pass := 0; pass < 4; pass++ {
		changed := false
		ast.Inspect(v.f.AST, func(n ast.Node) bool {
			var lhs, rhs []ast.Expr
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE && n.Tok != token.ASSIGN {
					return true
				}
				lhs, rhs = n.Lhs, n.Rhs
			case *ast.ValueSpec:
				for _, name := range n.Names {
					lhs = append(lhs, name)
				}
				rhs = n.Values
			default:
				return true
			}
			if len(lhs) != len(rhs) {
				return true
			}
			for i := range lhs {
				id, ok := lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" || flowUnitOf(id.Name) != "" {
					continue
				}
				obj := v.info.ObjectOf(id)
				if obj == nil || poisoned[obj] {
					continue
				}
				t := v.tagOf(rhs[i])
				if !t.known() || t.dimensionless() || t.composite() {
					continue
				}
				old, seen := v.vars[obj]
				switch {
				case !seen:
					v.vars[obj] = t
					changed = true
				case old.dim != t.dim:
					poisoned[obj] = true
					delete(v.vars, obj)
					changed = true
				case old != t:
					merged := utag{dim: old.dim}
					if old != merged {
						v.vars[obj] = merged
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
}

// tagOf infers the unit of an expression.
func (v *flowEnv) tagOf(e ast.Expr) utag {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return v.tagOf(e.X)
	case *ast.BasicLit:
		if e.Kind == token.INT || e.Kind == token.FLOAT {
			return dimensionlessTag
		}
		return unknownTag
	case *ast.Ident:
		if t := tagFromUnit(flowUnitOf(e.Name)); t.known() {
			return t
		}
		if obj := v.info.ObjectOf(e); obj != nil {
			if t, ok := v.vars[obj]; ok {
				return t
			}
		}
		return v.valueTag(e)
	case *ast.SelectorExpr:
		if t := tagFromUnit(flowUnitOf(e.Sel.Name)); t.known() {
			return t
		}
		return v.valueTag(e)
	case *ast.CallExpr:
		if tv, ok := v.info.Types[e.Fun]; ok && tv.IsType() {
			// Conversion: a named unit type imposes its own tag;
			// numeric reshaping (float64(x)) keeps the operand's.
			if t := typeTag(tv.Type); t.known() {
				return t
			}
			if len(e.Args) == 1 {
				return v.tagOf(e.Args[0])
			}
			return unknownTag
		}
		if name := calleeIdentName(e.Fun); name != "" {
			if t := tagFromUnit(flowUnitOf(name)); t.known() {
				return t
			}
		}
		return v.valueTag(e)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return v.tagOf(e.X)
		}
		return unknownTag
	case *ast.BinaryExpr:
		return v.binaryTag(e)
	}
	return unknownTag
}

// valueTag is the fallback for leaf expressions: a named unit type, or
// dimensionless for constants (bare and named numeric literals).
func (v *flowEnv) valueTag(e ast.Expr) utag {
	tv, ok := v.info.Types[e]
	if !ok {
		return unknownTag
	}
	if t := typeTag(tv.Type); t.known() {
		return t
	}
	if tv.Value != nil {
		return dimensionlessTag
	}
	return unknownTag
}

// calleeIdentName returns the terminal name of a call target.
func calleeIdentName(fun ast.Expr) string {
	switch fun := fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.ParenExpr:
		return calleeIdentName(fun.X)
	}
	return ""
}

// scaleErased keeps a tag's dimension but forgets the exact scale —
// what multiplying by a plain number does (us * 1e-6 is still time,
// scale now unknown).
func scaleErased(t utag) utag {
	if !t.known() || t.dimensionless() {
		return t
	}
	return utag{dim: t.dim, derived: t.derived}
}

// invDims maps a dimension to its reciprocal where the suite knows it.
var invDims = map[string]string{
	"time":      "frequency",
	"frequency": "time",
}

// binaryTag implements the tag algebra of binary operators.
func (v *flowEnv) binaryTag(e *ast.BinaryExpr) utag {
	x, y := v.tagOf(e.X), v.tagOf(e.Y)
	switch e.Op {
	case token.ADD, token.SUB:
		if x.dimensionless() && y.dimensionless() {
			return dimensionlessTag
		}
		if x.known() && y.known() && !x.dimensionless() && !y.dimensionless() && x.dim == y.dim {
			if x.scale == y.scale {
				return x
			}
			return utag{dim: x.dim}
		}
		return unknownTag
	case token.MUL:
		if x.dimensionless() {
			return scaleErased(y)
		}
		if y.dimensionless() {
			return scaleErased(x)
		}
		if !x.known() || !y.known() {
			return unknownTag
		}
		return mulDims(x, y)
	case token.QUO:
		if y.dimensionless() {
			return scaleErased(x)
		}
		if !x.known() || !y.known() {
			return unknownTag
		}
		if x.dimensionless() {
			if inv, ok := invDims[y.dim]; ok {
				return utag{dim: inv, derived: true}
			}
			return unknownTag
		}
		return quoDims(x, y)
	}
	return unknownTag
}

// mulDims combines two tagged factors.
func mulDims(x, y utag) utag {
	a, b := x.dim, y.dim
	if a == "rate" && b == "time" || a == "time" && b == "rate" {
		return utag{dim: "data", derived: true}
	}
	if a == "frequency" && b == "time" || a == "time" && b == "frequency" {
		return utag{dim: "dimensionless", derived: true}
	}
	if a > b {
		a, b = b, a
	}
	return utag{dim: a + "×" + b, derived: true}
}

// quoDims combines a tagged dividend and divisor.
func quoDims(x, y utag) utag {
	if x.dim == y.dim {
		return utag{dim: "dimensionless", derived: true}
	}
	if x.dim == "data" && y.dim == "time" {
		t := utag{dim: "rate", derived: true}
		switch {
		case x.scale == "B" && y.scale == "s":
			t.scale = "B/s"
		case x.scale == "kB" && y.scale == "s":
			t.scale = "kB/s"
		case x.scale == "MB" && y.scale == "s":
			t.scale = "MB/s"
		case x.scale == "GB" && y.scale == "s":
			t.scale = "GB/s"
		}
		return t
	}
	if x.dim == "data" && y.dim == "rate" {
		return utag{dim: "time", derived: true}
	}
	return utag{dim: x.dim + "/" + y.dim, derived: true}
}

// reportable is the shared gate for flow findings: the value's tag must
// be known and must not be an underived plain number (bare scalars mix
// with everything).
func reportable(t utag) bool {
	return t.known() && (!t.dimensionless() || t.derived)
}

// docUnitRe and docUnitCanon spot exact unit vocabulary in field
// comments for the suffix-vs-doc contradiction finding.
var docUnitRe = regexp.MustCompile(`(?i)(^|[\s(,])(microseconds|milliseconds|nanoseconds|seconds|megabytes|gigabytes|kilobytes|bytes|dollars|usd|mflups|hertz|hz|mb/s|gb/s|kb/s|b/s|m/s|µs)([\s,.;:)]|$)`)

var docUnitCanon = map[string]string{
	"microseconds": "us", "milliseconds": "ms", "nanoseconds": "ns", "seconds": "s",
	"megabytes": "MB", "gigabytes": "GB", "kilobytes": "kB", "bytes": "B",
	"dollars": "USD", "usd": "USD",
	"mflups": "MFLUPS",
	"hertz":  "Hz", "hz": "Hz",
	"mb/s": "MB/s", "gb/s": "GB/s", "kb/s": "kB/s", "b/s": "B/s",
	"m/s": "m/s", "µs": "us",
}

// checkUnitFlow builds the semantic unit-flow check.
func checkUnitFlow() TypedCheck {
	const id = "unitflow"
	return TypedCheck{
		ID:  id,
		Doc: "semantic unit-flow analysis: propagates s/bytes/MB-s/USD/MFLUPS tags through assignments, arithmetic, returns and calls; flags mixed-unit combinations, contradicted destinations and dimension-changing mul/div stored under an unchanged suffix",
		Run: func(f *TypedFile) []Diagnostic {
			v := newFlowEnv(f)
			var diags []Diagnostic
			add := func(pos token.Pos, format string, args ...any) {
				diags = append(diags, f.diag(pos, id, SeverityError, format, args...))
			}

			ast.Inspect(f.AST, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					v.checkBinary(n, add)
				case *ast.AssignStmt:
					v.checkAssign(n, add)
				case *ast.CompositeLit:
					v.checkCompositeLit(n, add)
				case *ast.CallExpr:
					v.checkCallArgs(n, add)
				case *ast.FuncDecl:
					v.checkReturns(n, add)
				case *ast.TypeSpec:
					v.checkFieldDocs(n, add)
				}
				return true
			})
			return diags
		},
	}
}

// checkBinary flags additive and comparison operators mixing
// dimensions, or mixing exact scales within a dimension. Conflicts
// where both operands carry the conflict in their own suffixes are
// unitsuffix's findings and are not re-reported.
func (v *flowEnv) checkBinary(n *ast.BinaryExpr, add func(token.Pos, string, ...any)) {
	if !comparableOps[n.Op] {
		return
	}
	lt, rt := v.tagOf(n.X), v.tagOf(n.Y)
	if !reportable(lt) || !reportable(rt) {
		return
	}
	if lu, _ := operandUnit(n.X); lu != "" {
		if ru, _ := operandUnit(n.Y); ru != "" && lu != ru {
			return
		}
	}
	if lt.dim != rt.dim {
		add(n.OpPos, "%q mixes units: %s is in %s but %s is in %s",
			n.Op, exprString(n.X), lt, exprString(n.Y), rt)
		return
	}
	if lt.scale != "" && rt.scale != "" && lt.scale != rt.scale {
		add(n.OpPos, "%q mixes %s scales: %s is in %s but %s is in %s",
			n.Op, lt.dim, exprString(n.X), lt.scale, exprString(n.Y), rt.scale)
	}
}

// destUnit reads the unit a store destination claims via its suffix.
func destUnit(lhs ast.Expr) (utag, string) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		return tagFromUnit(flowUnitOf(lhs.Name)), lhs.Name
	case *ast.SelectorExpr:
		return tagFromUnit(flowUnitOf(lhs.Sel.Name)), exprString(lhs)
	case *ast.ParenExpr:
		return destUnit(lhs.X)
	}
	return unknownTag, ""
}

// checkStore is the shared assignment rule: a destination whose suffix
// claims one unit must not receive a value inferred as another.
func (v *flowEnv) checkStore(pos token.Pos, name string, dt utag, rhs ast.Expr, add func(token.Pos, string, ...any)) {
	if !dt.known() {
		return
	}
	rt := v.tagOf(rhs)
	if !reportable(rt) {
		return
	}
	switch {
	case rt.dimensionless():
		add(pos, "%s is suffixed %s but stores a dimensionless ratio: dividing equal units cancels them", name, dt)
	case rt.composite():
		add(pos, "%s is suffixed %s but stores a product of units (%s): multiplication changes the dimension", name, dt, rt.dim)
	case rt.dim != dt.dim:
		add(pos, "%s is suffixed %s but is assigned a value in %s", name, dt, rt)
	case dt.scale != "" && rt.scale != "" && rt.scale != dt.scale:
		add(pos, "%s is suffixed %s but is assigned a value in %s", name, dt, rt)
	}
}

// checkAssign applies the store rule to = and :=, and the additive
// mixing rules to += and -=.
func (v *flowEnv) checkAssign(n *ast.AssignStmt, add func(token.Pos, string, ...any)) {
	switch n.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(n.Lhs) != len(n.Rhs) {
			return
		}
		for i := range n.Lhs {
			dt, name := destUnit(n.Lhs[i])
			v.checkStore(n.Lhs[i].Pos(), name, dt, n.Rhs[i], add)
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		dt, name := destUnit(n.Lhs[0])
		if !dt.known() {
			return
		}
		rt := v.tagOf(n.Rhs[0])
		if !reportable(rt) {
			return
		}
		if rt.dim != dt.dim {
			add(n.TokPos, "%q mixes units: %s is in %s but %s is in %s",
				n.Tok, name, dt, exprString(n.Rhs[0]), rt)
			return
		}
		if dt.scale != "" && rt.scale != "" && rt.scale != dt.scale {
			add(n.TokPos, "%q mixes %s scales: %s is in %s but %s is in %s",
				n.Tok, dt.dim, name, dt.scale, exprString(n.Rhs[0]), rt.scale)
		}
	}
}

// checkCompositeLit applies the store rule to keyed struct literals.
func (v *flowEnv) checkCompositeLit(n *ast.CompositeLit, add func(token.Pos, string, ...any)) {
	for _, elt := range n.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		v.checkStore(kv.Key.Pos(), key.Name, tagFromUnit(flowUnitOf(key.Name)), kv.Value, add)
	}
}

// checkCallArgs compares argument tags against the callee's parameter
// names: passing a seconds value for a parameter named priceUSD is the
// call-boundary version of a contradicted assignment.
func (v *flowEnv) checkCallArgs(n *ast.CallExpr, add func(token.Pos, string, ...any)) {
	if tv, ok := v.info.Types[n.Fun]; ok && tv.IsType() {
		return // conversion, handled by tagOf
	}
	var obj types.Object
	switch fun := n.Fun.(type) {
	case *ast.Ident:
		obj = v.info.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = v.info.ObjectOf(fun.Sel)
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range n.Args {
		if i >= params.Len() || sig.Variadic() && i >= params.Len()-1 {
			break
		}
		p := params.At(i)
		dt := tagFromUnit(flowUnitOf(p.Name()))
		if !dt.known() {
			continue
		}
		at := v.tagOf(arg)
		if !reportable(at) {
			continue
		}
		if at.dim != dt.dim {
			add(arg.Pos(), "call to %s passes %s (%s) for parameter %q, which is in %s",
				fn.Name(), exprString(arg), at, p.Name(), dt)
			continue
		}
		if dt.scale != "" && at.scale != "" && at.scale != dt.scale {
			add(arg.Pos(), "call to %s passes %s (%s) for parameter %q, which is in %s",
				fn.Name(), exprString(arg), at, p.Name(), dt)
		}
	}
}

// checkReturns compares returned values against the unit the function
// declares — via named result parameters or, for a single result, via
// the function name's own suffix (TimeUS, waitS).
func (v *flowEnv) checkReturns(fd *ast.FuncDecl, add func(token.Pos, string, ...any)) {
	if fd.Body == nil || fd.Type.Results == nil {
		return
	}
	var tags []utag
	for _, field := range fd.Type.Results.List {
		if len(field.Names) == 0 {
			tags = append(tags, unknownTag)
			continue
		}
		for _, nm := range field.Names {
			tags = append(tags, tagFromUnit(flowUnitOf(nm.Name)))
		}
	}
	if len(tags) == 1 && !tags[0].known() {
		tags[0] = tagFromUnit(flowUnitOf(fd.Name.Name))
	}
	any := false
	for _, t := range tags {
		any = any || t.known()
	}
	if !any {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure's returns answer to its own signature
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != len(tags) {
			return true
		}
		for i, res := range ret.Results {
			dt := tags[i]
			if !dt.known() {
				continue
			}
			rt := v.tagOf(res)
			if !reportable(rt) {
				continue
			}
			if rt.dim != dt.dim || dt.scale != "" && rt.scale != "" && rt.scale != dt.scale {
				add(res.Pos(), "%s declares its result in %s but returns a value in %s",
					fd.Name.Name, dt, rt)
			}
		}
		return true
	})
}

// checkFieldDocs flags struct fields whose suffix and doc comment claim
// different units — the mistake that motivated this check: a field
// named in milliseconds and documented in m/s is wrong at least once.
func (v *flowEnv) checkFieldDocs(ts *ast.TypeSpec, add func(token.Pos, string, ...any)) {
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, field := range st.Fields.List {
		doc := fieldCommentText(field)
		if doc == "" {
			continue
		}
		m := docUnitRe.FindStringSubmatch(doc)
		if m == nil {
			continue
		}
		docTag := tagFromUnit(docUnitCanon[strings.ToLower(strings.TrimSpace(m[2]))])
		if !docTag.known() {
			continue
		}
		for _, name := range field.Names {
			nameTag := tagFromUnit(flowUnitOf(name.Name))
			if !nameTag.known() {
				continue
			}
			if nameTag.dim != docTag.dim ||
				nameTag.scale != "" && docTag.scale != "" && nameTag.scale != docTag.scale {
				add(name.Pos(), "field %s.%s is suffixed %s but its comment documents %q (%s)",
					ts.Name.Name, name.Name, nameTag, strings.TrimSpace(m[2]), docTag)
			}
		}
	}
}
