package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the foundation of the suite's third, interprocedural
// layer: a call graph over the typed packages the loader produced.
// Resolution is conservative and static — it never claims an edge it
// cannot prove, and it resolves dynamic dispatch to every candidate it
// can see:
//
//   - direct calls to package-level functions and concrete methods
//     resolve through go/types object identity;
//   - interface method calls fan out to the same-named method of every
//     loaded named type that implements the interface (plus the
//     abstract interface method itself, kept as a body-less node so
//     checks can classify known-blocking interfaces like
//     http.RoundTripper);
//   - function values are tracked flow-insensitively within the loaded
//     packages: every function or closure ever assigned to a variable
//     or struct field is a candidate callee at that variable's or
//     field's call sites;
//   - calls through values the tracker never saw assigned (parameters
//     of function type, externally produced callbacks) resolve to
//     nothing — the documented blind spot, see DESIGN.md §10.
//
// Functions outside the loaded packages (standard library, unloaded
// module packages) appear as body-less external nodes, so checks can
// classify them by qualified name without pretending to know their
// behavior.

// EdgeKind distinguishes how control reaches a callee.
type EdgeKind int

const (
	// EdgeCall is a plain synchronous call.
	EdgeCall EdgeKind = iota
	// EdgeGo is a goroutine launch: the caller does not wait.
	EdgeGo
	// EdgeDefer is a deferred call: it runs at function exit.
	EdgeDefer
)

// CallNode is one function in the graph: a declared function or method,
// a function literal, or a body-less external.
type CallNode struct {
	// Obj is the types object for declared functions, methods, and
	// externals; nil for function literals.
	Obj *types.Func
	// Lit is the literal for closure nodes; nil otherwise.
	Lit *ast.FuncLit

	// Decl is the declaration for module functions; nil for literals
	// and externals.
	Decl *ast.FuncDecl
	// Body is the analyzed body; nil for externals.
	Body *ast.BlockStmt
	// File is the typed file holding Body; nil for externals.
	File *TypedFile
	// Enclosing is the node a literal is defined inside; nil for
	// declared functions and externals.
	Enclosing *CallNode

	Out []CallEdge // calls made by this node's body
	In  []CallEdge // call sites reaching this node
}

// Name renders a stable human-readable identity: the types FullName for
// declared functions, "func literal in X" for closures.
func (n *CallNode) Name() string {
	if n.Obj != nil {
		return n.Obj.FullName()
	}
	if n.Enclosing != nil {
		return "func literal in " + n.Enclosing.Name()
	}
	return "func literal"
}

// External reports whether the node has no loaded body.
func (n *CallNode) External() bool { return n.Body == nil }

// PkgPath returns the defining package's import path ("" for literals
// whose package is implied by Enclosing, and for builtins).
func (n *CallNode) PkgPath() string {
	if n.Obj != nil && n.Obj.Pkg() != nil {
		return n.Obj.Pkg().Path()
	}
	if n.Enclosing != nil {
		return n.Enclosing.PkgPath()
	}
	return ""
}

// CallEdge is one resolved call site.
type CallEdge struct {
	Caller *CallNode
	Callee *CallNode
	Site   *ast.CallExpr
	Kind   EdgeKind
}

// CallGraph is the whole-program (whole-loaded-surface) call graph.
type CallGraph struct {
	// Funcs maps declared functions and externals by types object.
	Funcs map[*types.Func]*CallNode
	// Lits maps closure nodes by literal.
	Lits map[*ast.FuncLit]*CallNode
	// nodes in deterministic construction order, for stable iteration.
	nodes []*CallNode
}

// Nodes returns every node (module functions, literals, externals) in
// deterministic order.
func (g *CallGraph) Nodes() []*CallNode { return g.nodes }

// NodeFor resolves the node of a declared function (nil when the object
// was never seen — e.g. a package outside the loaded surface that no
// loaded code calls).
func (g *CallGraph) NodeFor(fn *types.Func) *CallNode { return g.Funcs[fn] }

// graphBuilder accumulates state across the two construction passes.
type graphBuilder struct {
	g    *CallGraph
	pkgs []*TypedPackage

	// funcValues records, per variable or struct-field object of
	// function type, every candidate function ever assigned to it.
	funcValues map[types.Object][]*CallNode

	// namedTypes is every named type of the loaded packages, the
	// candidate set for interface-call resolution.
	namedTypes []*types.Named
}

// BuildCallGraph constructs the call graph over the loaded packages.
func BuildCallGraph(pkgs []*TypedPackage) *CallGraph {
	b := &graphBuilder{
		g: &CallGraph{
			Funcs: map[*types.Func]*CallNode{},
			Lits:  map[*ast.FuncLit]*CallNode{},
		},
		pkgs:       pkgs,
		funcValues: map[types.Object][]*CallNode{},
	}
	b.collectNamedTypes()
	// Pass 1: create a node per declared function and per literal, and
	// record every function-value assignment.
	for _, p := range pkgs {
		for _, f := range p.Files {
			b.declareFile(f)
		}
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			b.collectFuncValues(f)
		}
	}
	// Pass 2: resolve call sites into edges.
	for _, p := range pkgs {
		for _, f := range p.Files {
			b.resolveFile(f)
		}
	}
	return b.g
}

// collectNamedTypes gathers the loaded packages' named types, sorted by
// name for deterministic interface fan-out order.
func (b *graphBuilder) collectNamedTypes() {
	for _, p := range b.pkgs {
		scope := p.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				if named, ok := tn.Type().(*types.Named); ok {
					b.namedTypes = append(b.namedTypes, named)
				}
			}
		}
	}
}

// declareFile creates nodes for the file's function declarations,
// every function literal nested in them, and literals initializing
// package-level variables (var handler = func(...) {...}).
func (b *graphBuilder) declareFile(f *TypedFile) {
	info := f.Package.Info
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			// Package-level var/const initializers may hold literals;
			// they have no enclosing function node.
			b.declareLits(decl, nil, f)
			continue
		}
		if fd.Body == nil {
			continue
		}
		obj, _ := info.Defs[fd.Name].(*types.Func)
		if obj == nil {
			continue
		}
		node := &CallNode{Obj: obj, Decl: fd, Body: fd.Body, File: f}
		b.g.Funcs[obj] = node
		b.g.nodes = append(b.g.nodes, node)
		b.declareLits(fd.Body, node, f)
	}
}

// declareLits creates nodes for function literals under root,
// attributing each to its innermost enclosing function node (nil for
// package-level initializers).
func (b *graphBuilder) declareLits(root ast.Node, enclosing *CallNode, f *TypedFile) {
	ast.Inspect(root, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		node := &CallNode{Lit: lit, Body: lit.Body, File: f, Enclosing: enclosing}
		b.g.Lits[lit] = node
		b.g.nodes = append(b.g.nodes, node)
		b.declareLits(lit.Body, node, f)
		return false // nested literals handled by the recursive call
	})
}

// externalNode returns (creating on demand) the body-less node of a
// function outside the loaded surface.
func (b *graphBuilder) externalNode(obj *types.Func) *CallNode {
	if n, ok := b.g.Funcs[obj]; ok {
		return n
	}
	n := &CallNode{Obj: obj}
	b.g.Funcs[obj] = n
	b.g.nodes = append(b.g.nodes, n)
	return n
}

// funcExprNode resolves an expression used as a value to a candidate
// node when the expression names a function: an identifier of a
// declared function, a method value, or a function literal.
func (b *graphBuilder) funcExprNode(info *types.Info, e ast.Expr) *CallNode {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return b.g.Lits[e]
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			if n, ok := b.g.Funcs[fn]; ok {
				return n
			}
			return b.externalNode(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			if n, ok := b.g.Funcs[fn]; ok {
				return n
			}
			return b.externalNode(fn)
		}
	}
	return nil
}

// assignTarget resolves the object behind an assignment destination:
// a variable identifier or a struct-field selector.
func assignTarget(info *types.Info, lhs ast.Expr) types.Object {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := info.Defs[lhs]; obj != nil {
			return obj
		}
		return info.Uses[lhs]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return info.Uses[lhs.Sel]
	}
	return nil
}

// recordFuncValue notes that target may hold candidate at runtime.
func (b *graphBuilder) recordFuncValue(target types.Object, candidate *CallNode) {
	if target == nil || candidate == nil {
		return
	}
	if _, ok := target.Type().Underlying().(*types.Signature); !ok {
		return
	}
	for _, existing := range b.funcValues[target] {
		if existing == candidate {
			return
		}
	}
	b.funcValues[target] = append(b.funcValues[target], candidate)
}

// collectFuncValues walks one file recording every assignment of a
// function to a variable or struct field, including composite-literal
// field initializers.
func (b *graphBuilder) collectFuncValues(f *TypedFile) {
	info := f.Package.Info
	ast.Inspect(f.AST, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				b.recordFuncValue(assignTarget(info, n.Lhs[i]), b.funcExprNode(info, n.Rhs[i]))
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i := range n.Names {
				b.recordFuncValue(info.Defs[n.Names[i]], b.funcExprNode(info, n.Values[i]))
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				b.recordFuncValue(info.Uses[key], b.funcExprNode(info, kv.Value))
			}
		}
		return true
	})
}

// resolveFile turns every call site of the file into edges.
func (b *graphBuilder) resolveFile(f *TypedFile) {
	info := f.Package.Info
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			// Package-level initializer literals are their own frames.
			ast.Inspect(decl, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					if node := b.g.Lits[lit]; node != nil {
						b.resolveBody(node, lit.Body, info)
					}
					return false // nested literals resolved via resolveBody
				}
				return true
			})
			continue
		}
		if fd.Body == nil {
			continue
		}
		obj, _ := info.Defs[fd.Name].(*types.Func)
		if obj == nil {
			continue
		}
		b.resolveBody(b.g.Funcs[obj], fd.Body, info)
	}
}

// resolveBody records the out-edges of one node's body, recursing into
// nested literals as their own frames.
func (b *graphBuilder) resolveBody(caller *CallNode, body *ast.BlockStmt, info *types.Info) {
	var walk func(n ast.Node, kind EdgeKind)
	walk = func(root ast.Node, kind EdgeKind) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				lit := b.g.Lits[n]
				if lit != nil {
					b.resolveBody(lit, n.Body, info)
				}
				return false
			case *ast.GoStmt:
				b.resolveCall(caller, n.Call, EdgeGo, info)
				for _, arg := range n.Call.Args {
					walk(arg, kind)
				}
				walk(n.Call.Fun, kind)
				return false
			case *ast.DeferStmt:
				b.resolveCall(caller, n.Call, EdgeDefer, info)
				for _, arg := range n.Call.Args {
					walk(arg, kind)
				}
				walk(n.Call.Fun, kind)
				return false
			case *ast.CallExpr:
				b.resolveCall(caller, n, kind, info)
				return true
			}
			return true
		})
	}
	walk(body, EdgeCall)
}

// addEdge links caller to callee, deduplicating per (site, callee).
func (b *graphBuilder) addEdge(caller, callee *CallNode, site *ast.CallExpr, kind EdgeKind) {
	if callee == nil {
		return
	}
	for _, e := range caller.Out {
		if e.Site == site && e.Callee == callee {
			return
		}
	}
	e := CallEdge{Caller: caller, Callee: callee, Site: site, Kind: kind}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// resolveCall resolves one call expression into zero or more edges.
func (b *graphBuilder) resolveCall(caller *CallNode, call *ast.CallExpr, kind EdgeKind, info *types.Info) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		// Immediately invoked literal.
		b.addEdge(caller, b.g.Lits[fun], call, kind)
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			if n, ok := b.g.Funcs[obj]; ok {
				b.addEdge(caller, n, call, kind)
			} else {
				b.addEdge(caller, b.externalNode(obj), call, kind)
			}
		case *types.Var:
			// Call through a function value: fan out to every recorded
			// candidate. Unrecorded values (parameters, external
			// callbacks) resolve to nothing — documented conservatism.
			for _, cand := range b.funcValues[obj] {
				b.addEdge(caller, cand, call, kind)
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				fn, ok := sel.Obj().(*types.Func)
				if !ok {
					return
				}
				if types.IsInterface(sel.Recv()) {
					b.resolveInterfaceCall(caller, call, kind, sel.Recv(), fn)
					return
				}
				if n, ok := b.g.Funcs[fn]; ok {
					b.addEdge(caller, n, call, kind)
				} else {
					b.addEdge(caller, b.externalNode(fn), call, kind)
				}
			case types.FieldVal:
				// Call through a function-typed struct field.
				for _, cand := range b.funcValues[sel.Obj()] {
					b.addEdge(caller, cand, call, kind)
				}
			}
			return
		}
		// Package-qualified call (pkg.Fn) or qualified method value.
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			if n, ok := b.g.Funcs[obj]; ok {
				b.addEdge(caller, n, call, kind)
			} else {
				b.addEdge(caller, b.externalNode(obj), call, kind)
			}
		case *types.Var:
			for _, cand := range b.funcValues[obj] {
				b.addEdge(caller, cand, call, kind)
			}
		}
	}
}

// resolveInterfaceCall fans an interface method call out to the
// same-named method of every loaded named type implementing the
// interface, plus the abstract method itself as an external node so
// checks can classify known interfaces (http.RoundTripper & co) even
// when no loaded type implements them.
func (b *graphBuilder) resolveInterfaceCall(caller *CallNode, call *ast.CallExpr, kind EdgeKind, recv types.Type, ifaceMethod *types.Func) {
	b.addEdge(caller, b.externalNode(ifaceMethod), call, kind)
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, named := range b.namedTypes {
		if types.IsInterface(named) {
			continue
		}
		var impl types.Type
		switch {
		case types.Implements(named, iface):
			impl = named
		case types.Implements(types.NewPointer(named), iface):
			impl = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, ifaceMethod.Pkg(), ifaceMethod.Name())
		if m, ok := obj.(*types.Func); ok {
			if n, ok := b.g.Funcs[m]; ok {
				b.addEdge(caller, n, call, kind)
			}
		}
	}
}

// qualifiedName renders a *types.Func as its FullName, the form the
// checks' classification tables use: "time.Sleep",
// "(*sync.WaitGroup).Wait", "(net/http.RoundTripper).RoundTrip".
func qualifiedName(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	return fn.FullName()
}

// posOf returns a node's defining position (its body's opening brace
// for literals, the declaration for functions; token.NoPos for
// externals).
func (n *CallNode) posOf() token.Pos {
	switch {
	case n.Decl != nil:
		return n.Decl.Pos()
	case n.Lit != nil:
		return n.Lit.Pos()
	}
	return token.NoPos
}
