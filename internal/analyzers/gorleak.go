package analyzers

import (
	"go/ast"
)

// checkGorLeak flags goroutines launched by a function that shows no
// join mechanism: no WaitGroup traffic (Add/Done/Wait on any
// receiver), no channel operation (send, receive, close, select, or
// range over a channel-yielding call), and no errgroup-style
// .Go/.Wait pair. Such a goroutine outlives its spawner invisibly —
// in this codebase, where workers are goroutine-per-instance and
// correctness proofs compare against serial runs, an unjoined
// goroutine is either a leak or a data race waiting for -race to find
// it.
//
// The join evidence is looked for in the spawning function (the
// waiter side); a goroutine body that signals a channel only counts
// if the spawner also touches a channel, which the same scan
// establishes.
func checkGorLeak() Check {
	const id = "gorleak"
	return Check{
		ID:  id,
		Doc: "goroutines must be joined by the launching function (WaitGroup or channel)",
		Run: func(f *File) []Diagnostic {
			var diags []Diagnostic
			funcBodies(f.AST, func(name string, ftype *ast.FuncType, body *ast.BlockStmt) {
				var gos []*ast.GoStmt
				ast.Inspect(body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.GoStmt:
						gos = append(gos, n)
					case *ast.FuncLit:
						// A literal's own launches are judged against
						// the literal when funcBodies visits it.
						if n.Body != body {
							return false
						}
					}
					return true
				})
				if len(gos) == 0 || hasJoinEvidence(body) {
					return
				}
				for _, g := range gos {
					diags = append(diags, f.diag(g.Pos(), id, SeverityError,
						"goroutine launched in %s with no visible join (WaitGroup or channel) in the enclosing function",
						name))
				}
			})
			return diags
		},
	}
}

// hasJoinEvidence scans one function body (including nested literals,
// whose channel signals are the other half of a join the spawner
// waits on) for any synchronization construct.
func hasJoinEvidence(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.CallExpr:
			recv, name := calleeOf(n)
			if recv == "" && name == "close" {
				found = true
			}
			if recv != "" {
				switch name {
				case "Add", "Done", "Wait", "Go":
					found = true
				}
			}
		case *ast.RangeStmt:
			// range over a channel: X is not a map/slice the walker can
			// prove, but a range with no key variable or over a
			// received value is chan-idiomatic. Treat a bare
			// `for x := range ch` as evidence only when paired with a
			// send/close elsewhere — covered by the cases above — so
			// nothing to do here; kept for documentation.
		}
		return !found
	})
	return found
}
