package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// nilerr is the flow-sensitive error-discipline check. Over the CFG of
// each function it tracks (value, err) pairs assigned together from
// one call and the nilness of each error along branches:
//
//   - a result is dereferenced (selector, index, call, star) on a path
//     where its companion error is known non-nil;
//   - an error still pending (assigned, never read) is overwritten by
//     a second assignment — the classic shadow/overwrite-before-check;
//   - an error is pending at function exit on some path — assigned and
//     never read at all.
//
// Errors that escape into closures or have their address taken are not
// tracked (the closure may read them later); reading an error in any
// expression — a comparison, a return, a call argument — consumes it.

type errPath int8

const (
	pathUnknown errPath = iota
	pathNil             // err == nil held on this path
	pathNonNil          // err != nil held on this path
)

// nilErrFact is the per-object lattice value: error objects use
// pending/assignPos/path, result objects use companion (the error
// assigned alongside them).
type nilErrFact struct {
	pending   bool
	assignPos token.Pos
	path      errPath
	companion types.Object
}

type nilErrState map[types.Object]nilErrFact

func (s nilErrState) clone() nilErrState {
	out := make(nilErrState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func checkNilErr() FlowCheck {
	return FlowCheck{
		ID: "nilerr",
		Doc: "result used on a path where its companion error is non-nil; " +
			"error overwritten or dropped before being read",
		Run: runNilErr,
	}
}

// nilErrAnalysis is the per-function context shared by the transfer
// function and the reporting pass.
type nilErrAnalysis struct {
	fn *FlowFunc
	// escaped objects are never tracked: captured by a closure or
	// address-taken anywhere in the function.
	escaped map[types.Object]bool
	// namedErrs are named error results; a bare return reads them.
	namedErrs []types.Object
	diags     []Diagnostic
	report    bool
}

func runNilErr(fn *FlowFunc) []Diagnostic {
	a := &nilErrAnalysis{fn: fn, escaped: map[types.Object]bool{}}
	a.scanEscapes()
	a.scanNamedErrs()
	problem := FlowProblem[nilErrState]{
		Entry:    func() nilErrState { return nilErrState{} },
		Transfer: a.transfer,
		Branch:   a.branch,
		Join:     joinNilErr,
		Equal:    equalNilErr,
	}
	in := ForwardFlow(fn.G, problem)
	// Reporting pass: replay each reachable block's transfer with
	// diagnostics enabled, then check what is still pending at exit.
	a.report = true
	for _, b := range fn.G.Blocks {
		if st, ok := in[b]; ok {
			a.transfer(b, st)
		}
	}
	if exit, ok := in[fn.G.Exit]; ok {
		reported := map[token.Pos]bool{}
		for obj, f := range exit {
			if f.pending && !reported[f.assignPos] {
				reported[f.assignPos] = true
				p := fn.File.Fset.Position(f.assignPos)
				a.diags = append(a.diags, Diagnostic{
					File: p.Filename, Line: p.Line, Col: p.Column,
					Check:    "nilerr",
					Message:  fmt.Sprintf("error %s is assigned here but never read before return", obj.Name()),
					Severity: SeverityError,
				})
			}
		}
	}
	return a.diags
}

// scanEscapes marks objects that leave direct flow: referenced inside
// any function literal or address-taken.
func (a *nilErrAnalysis) scanEscapes() {
	ast.Inspect(a.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := a.objOf(id); obj != nil {
						a.escaped[obj] = true
					}
				}
				return true
			})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := n.X.(*ast.Ident); ok {
					if obj := a.objOf(id); obj != nil {
						a.escaped[obj] = true
					}
				}
			}
		}
		return true
	})
}

func (a *nilErrAnalysis) scanNamedErrs() {
	var ft *ast.FuncType
	if a.fn.Decl != nil {
		ft = a.fn.Decl.Type
	} else {
		ft = a.fn.Lit.Type
	}
	if ft.Results == nil {
		return
	}
	for _, field := range ft.Results.List {
		for _, name := range field.Names {
			if obj := a.fn.File.Package.Info.Defs[name]; obj != nil && isErrorType(obj.Type()) {
				a.namedErrs = append(a.namedErrs, obj)
			}
		}
	}
}

func (a *nilErrAnalysis) objOf(id *ast.Ident) types.Object {
	info := a.fn.File.Package.Info
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// trackable reports whether an object is a local variable we follow.
func (a *nilErrAnalysis) trackable(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || a.escaped[obj] {
		return false
	}
	// Locals only: the object must be declared inside this function.
	return obj.Pos() >= a.fn.Body.Pos() && obj.Pos() <= a.fn.Body.End() ||
		a.isNamedResult(obj)
}

func (a *nilErrAnalysis) isNamedResult(obj types.Object) bool {
	for _, o := range a.namedErrs {
		if o == obj {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func (a *nilErrAnalysis) emit(n ast.Node, format string, args ...any) {
	if !a.report {
		return
	}
	a.diags = append(a.diags, a.fn.diagNode(n, "nilerr", SeverityError, fmt.Sprintf(format, args...)))
}

// transfer walks one block's nodes in evaluation order, updating a
// copy of the incoming state.
func (a *nilErrAnalysis) transfer(b *Block, in nilErrState) nilErrState {
	st := in.clone()
	for _, n := range b.Nodes {
		a.node(n, st)
	}
	return st
}

func (a *nilErrAnalysis) node(n ast.Node, st nilErrState) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			a.reads(rhs, st)
		}
		a.assign(n, n.Lhs, n.Rhs, st)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) == 0 {
				continue
			}
			for _, rhs := range vs.Values {
				a.reads(rhs, st)
			}
			lhs := make([]ast.Expr, len(vs.Names))
			for i, name := range vs.Names {
				lhs[i] = name
			}
			a.assign(n, lhs, vs.Values, st)
		}
	case *ast.RangeStmt:
		a.reads(n.X, st)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := a.objOf(id); obj != nil {
					delete(st, obj)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			a.reads(r, st)
		}
		if len(n.Results) == 0 {
			// Bare return reads the named results.
			for _, obj := range a.namedErrs {
				if f, ok := st[obj]; ok {
					f.pending = false
					st[obj] = f
				}
			}
		}
	default:
		if e, ok := n.(ast.Expr); ok {
			a.reads(e, st)
			return
		}
		if s, ok := n.(ast.Stmt); ok {
			a.readsInStmt(s, st)
		}
	}
}

// readsInStmt handles the remaining straight-line statements by
// treating every contained expression as a read.
func (a *nilErrAnalysis) readsInStmt(s ast.Stmt, st nilErrState) {
	inspectOwn(s, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			a.reads(e, st)
			return false
		}
		return true
	})
}

// reads walks an expression, consuming error reads and flagging
// deref-like uses of a result whose companion error is non-nil here.
func (a *nilErrAnalysis) reads(e ast.Expr, st nilErrState) {
	if e == nil {
		return
	}
	inspectOwn(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			a.derefUse(n.X, n, st)
		case *ast.IndexExpr:
			a.derefUse(n.X, n, st)
		case *ast.StarExpr:
			a.derefUse(n.X, n, st)
		case *ast.CallExpr:
			a.derefUse(n.Fun, n, st)
		case *ast.Ident:
			obj := a.objOf(n)
			if obj == nil {
				return true
			}
			if f, ok := st[obj]; ok && f.pending {
				f.pending = false
				st[obj] = f
			}
		}
		return true
	})
}

// derefUse flags base.n when base is a tracked result whose companion
// error is non-nil on this path.
func (a *nilErrAnalysis) derefUse(base ast.Expr, use ast.Node, st nilErrState) {
	id, ok := base.(*ast.Ident)
	if !ok {
		return
	}
	obj := a.objOf(id)
	if obj == nil {
		return
	}
	f, ok := st[obj]
	if !ok || f.companion == nil {
		return
	}
	if cf, ok := st[f.companion]; ok && cf.path == pathNonNil {
		a.emit(use, "%s is used here, but %s is non-nil on this path",
			id.Name, f.companion.Name())
	}
}

// assign applies assignment semantics after the RHS reads.
func (a *nilErrAnalysis) assign(site ast.Node, lhs []ast.Expr, rhs []ast.Expr, st nilErrState) {
	hasCall := false
	for _, r := range rhs {
		if _, ok := r.(*ast.CallExpr); ok {
			hasCall = true
		}
	}
	var errObjs, valObjs []types.Object
	for _, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		if id.Name == "_" {
			continue
		}
		obj := a.objOf(id)
		if obj == nil || !a.trackable(obj) {
			continue
		}
		if isErrorType(obj.Type()) {
			errObjs = append(errObjs, obj)
		} else {
			valObjs = append(valObjs, obj)
		}
	}
	for _, obj := range errObjs {
		if f, ok := st[obj]; ok && f.pending {
			a.emit(site, "error %s is overwritten here before the previous value (line %d) was read",
				obj.Name(), a.fn.lineOf(f.assignPos))
		}
		if hasCall {
			st[obj] = nilErrFact{pending: true, assignPos: site.Pos()}
		} else {
			delete(st, obj)
		}
	}
	for _, obj := range valObjs {
		// A result tracked from a previous call is reassigned; the old
		// pairing no longer holds.
		delete(st, obj)
		if hasCall && len(rhs) == 1 && len(errObjs) == 1 {
			st[obj] = nilErrFact{companion: errObjs[0]}
		}
	}
	// Any result paired with a reassigned error keeps pointing at the
	// object, which now holds a fresh value; the pairing still means
	// "assigned together", so only sever pairs whose error was
	// reassigned alone.
	if len(valObjs) == 0 {
		for _, eo := range errObjs {
			for obj, f := range st {
				if f.companion == eo {
					delete(st, obj)
				}
			}
		}
	}
}

// branch refines error nilness along `err != nil` / `err == nil`
// edges.
func (a *nilErrAnalysis) branch(cond ast.Expr, taken bool, out nilErrState) nilErrState {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return out
	}
	var id *ast.Ident
	if x, ok := be.X.(*ast.Ident); ok && isNilIdent(be.Y) {
		id = x
	} else if y, ok := be.Y.(*ast.Ident); ok && isNilIdent(be.X) {
		id = y
	}
	if id == nil {
		return out
	}
	obj := a.objOf(id)
	if obj == nil || !isErrorType(obj.Type()) {
		return out
	}
	f := out[obj]
	// err != nil taken, or err == nil not taken → non-nil.
	if (be.Op == token.NEQ) == taken {
		f.path = pathNonNil
	} else {
		f.path = pathNil
	}
	st := out.clone()
	st[obj] = f
	return st
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// joinNilErr merges two path states. pending intersects (an error
// counts as dropped only when no path reads it — the
// close-error-precedence idiom assigns cerr and reads it on just one
// arm, which is fine); path and companion facts must agree or reset.
func joinNilErr(x, y nilErrState) nilErrState {
	out := x.clone()
	for obj, fy := range y {
		fx, ok := out[obj]
		if !ok {
			// Unassigned on the other path: not pending there.
			fy.pending = false
			out[obj] = fy
			continue
		}
		merged := nilErrFact{
			pending: fx.pending && fy.pending,
		}
		switch {
		case fx.assignPos == 0:
			merged.assignPos = fy.assignPos
		case fy.assignPos == 0 || fx.assignPos < fy.assignPos:
			merged.assignPos = fx.assignPos
		default:
			merged.assignPos = fy.assignPos
		}
		if fx.path == fy.path {
			merged.path = fx.path
		}
		if fx.companion == fy.companion {
			merged.companion = fx.companion
		}
		out[obj] = merged
	}
	for obj, fx := range out {
		if _, ok := y[obj]; !ok && fx.pending {
			fx.pending = false
			out[obj] = fx
		}
	}
	return out
}

func equalNilErr(x, y nilErrState) bool {
	if len(x) != len(y) {
		return false
	}
	for k, vx := range x {
		if vy, ok := y[k]; !ok || vx != vy {
			return false
		}
	}
	return true
}
