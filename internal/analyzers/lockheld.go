package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkLockHeld flags blocking operations reachable while a sync.Mutex
// or sync.RWMutex is held. Holding a lock across a block point turns
// every other acquirer into a queue behind an unbounded wait — the
// serve/cluster failure mode where one slow replica forward freezes a
// whole shard. Blocking means:
//
//   - a channel send or receive (outside a select with a default);
//   - a select with no default clause;
//   - time.Sleep and (*sync.WaitGroup).Wait;
//   - anything in net or net/http — dials, round trips, handler
//     invocations — whose latency is the network's, not ours;
//   - transitively, any loaded function whose body reaches one of the
//     above through plain calls (EdgeCall only: goroutine launches
//     return immediately and deferred calls run after the unlock logic
//     the region analysis already models).
//
// Regions are tracked per statement list with typed receiver matching:
// mu.Lock()/RLock() opens a region for that receiver expression,
// mu.Unlock()/RUnlock() closes it, defer mu.Unlock() holds it to
// function exit, and nested blocks inherit the enclosing held set.
// TryLock/TryRLock in a condition position do not open a region here —
// lockbalance owns pairing discipline; this check only needs the
// conservative "is anything held" view.
type lockHeldCheck struct {
	ic *InterContext
	id string

	// memo caches the transitive blocking verdict per node. A nil entry
	// marks in-progress (cycle cut: recursion assumes non-blocking,
	// which is sound for the fixpoint because blocking is monotone from
	// direct evidence).
	memo map[*CallNode]*blockVerdict

	diags []Diagnostic
}

// blockVerdict is one memoized answer: whether the node can block, and
// a witness call path for the message.
type blockVerdict struct {
	blocks bool
	why    string   // leaf reason, e.g. "time.Sleep" or "channel receive"
	path   []string // call chain from the node to the leaf, exclusive of the node
}

func checkLockHeld() InterCheck {
	const id = "lockheld"
	return InterCheck{
		ID: id,
		Doc: "no blocking operation (channel op, select, time.Sleep, WaitGroup.Wait, net/http call, " +
			"or a callee reaching one) while a sync.Mutex/RWMutex is held",
		Run: func(ic *InterContext) []Diagnostic {
			c := &lockHeldCheck{ic: ic, id: id, memo: map[*CallNode]*blockVerdict{}}
			for _, n := range ic.Graph.Nodes() {
				if n.External() || !ic.onSurface(n.posOf()) {
					continue
				}
				c.scanNode(n)
			}
			return c.diags
		},
	}
}

// mutexRecv returns the receiver expression of a sync.Mutex/RWMutex
// method call with the given method names, or nil.
func mutexRecv(info *types.Info, call *ast.CallExpr, methods ...string) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	found := false
	for _, m := range methods {
		if sel.Sel.Name == m {
			found = true
			break
		}
	}
	if !found {
		return nil
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return nil
	}
	if name := obj.Name(); name != "Mutex" && name != "RWMutex" {
		return nil
	}
	return sel.X
}

// scanNode walks one function body tracking held mutexes per statement
// list and flagging blocking operations inside held regions.
func (c *lockHeldCheck) scanNode(n *CallNode) {
	c.scanList(n, n.Body.List, map[string]bool{})
}

// scanList processes one statement list. held maps receiver renderings
// (exprString) to "currently held"; nested lists inherit a copy so a
// lock taken inside an if-block does not leak into its siblings.
func (c *lockHeldCheck) scanList(n *CallNode, stmts []ast.Stmt, held map[string]bool) {
	info := n.File.Package.Info
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if recv := mutexRecv(info, call, "Lock", "RLock"); recv != nil {
					held[exprString(recv)] = true
					continue
				}
				if recv := mutexRecv(info, call, "Unlock", "RUnlock"); recv != nil {
					delete(held, exprString(recv))
					continue
				}
				// A call to a cleanup closure that unlocks a held mutex
				// releases it too (cleanup := func() { mu.Unlock() }).
				for _, key := range c.calleeUnlocks(n, call) {
					delete(held, key)
				}
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the region open to function exit,
			// which for this scan is simply "held for the rest of the
			// list" — already the held map's behavior. The deferred call
			// itself runs at exit; skip it.
			continue
		}
		if len(held) > 0 {
			c.flagBlocking(n, stmt, held)
		}
		c.recurseLists(n, stmt, held)
	}
}

// recurseLists descends into the statement lists nested in one
// statement, each with its own copy of the held set.
func (c *lockHeldCheck) recurseLists(n *CallNode, stmt ast.Stmt, held map[string]bool) {
	recurse := func(body *ast.BlockStmt) {
		if body != nil {
			c.scanList(n, body.List, copyHeld(held))
		}
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		recurse(s)
	case *ast.IfStmt:
		recurse(s.Body)
		if els, ok := s.Else.(*ast.BlockStmt); ok {
			recurse(els)
		} else if els, ok := s.Else.(*ast.IfStmt); ok {
			c.recurseLists(n, els, held)
		}
	case *ast.ForStmt:
		recurse(s.Body)
	case *ast.RangeStmt:
		recurse(s.Body)
	case *ast.SwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.scanList(n, cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.scanList(n, cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				c.scanList(n, cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		c.recurseLists(n, s.Stmt, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// heldNames renders the held set for messages, deterministically.
func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	if len(names) > 1 {
		// Small set; insertion sort keeps it dependency-free.
		for i := 1; i < len(names); i++ {
			for j := i; j > 0 && names[j] < names[j-1]; j-- {
				names[j], names[j-1] = names[j-1], names[j]
			}
		}
	}
	return strings.Join(names, ", ")
}

// flagBlocking inspects the top level of one statement (not the nested
// lists recurseLists owns, not closure bodies) for blocking operations
// while held is non-empty.
func (c *lockHeldCheck) flagBlocking(n *CallNode, stmt ast.Stmt, held map[string]bool) {
	lock := heldNames(held)
	ast.Inspect(stmt, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			return false // separate frame; blocking inside runs when called
		case *ast.BlockStmt:
			return false // nested lists handled by recurseLists
		case *ast.SelectStmt:
			if !selectHasDefault(node) {
				c.diags = append(c.diags, c.ic.diagAt(node.Pos(), c.id, SeverityError,
					"select with no default while %s is held in %s; waiting peers queue behind the lock",
					lock, n.Name()))
			}
			return false // clause bodies handled by recurseLists
		case *ast.SendStmt:
			c.diags = append(c.diags, c.ic.diagAt(node.Pos(), c.id, SeverityError,
				"channel send while %s is held in %s; release the lock before communicating",
				lock, n.Name()))
		case *ast.UnaryExpr:
			if node.Op.String() == "<-" && isChanRecv(n, node) {
				c.diags = append(c.diags, c.ic.diagAt(node.Pos(), c.id, SeverityError,
					"channel receive while %s is held in %s; release the lock before communicating",
					lock, n.Name()))
			}
		case *ast.CallExpr:
			c.flagBlockingCall(n, node, lock)
		}
		return true
	})
}

// flagBlockingCall checks one call site against the transitive blocking
// predicate, via the graph's resolved edges for that site.
func (c *lockHeldCheck) flagBlockingCall(n *CallNode, call *ast.CallExpr, lock string) {
	for _, e := range n.Out {
		if e.Site != call || e.Kind != EdgeCall {
			continue
		}
		v := c.blocks(e.Callee)
		if !v.blocks {
			continue
		}
		via := ""
		if len(v.path) > 0 {
			via = " via " + strings.Join(v.path, " -> ")
		}
		c.diags = append(c.diags, c.ic.diagAt(call.Pos(), c.id, SeverityError,
			"call to %s blocks (%s%s) while %s is held in %s; release the lock first",
			e.Callee.Name(), v.why, via, lock, n.Name()))
		return // one finding per site, even with fan-out
	}
}

// calleeUnlocks returns the held-set keys a call releases through its
// callees: function literals (and local functions) whose own frame
// calls recv.Unlock()/RUnlock(). Resolution uses the graph's edges for
// the site, so only closures the builder could bind are credited.
func (c *lockHeldCheck) calleeUnlocks(n *CallNode, call *ast.CallExpr) []string {
	var keys []string
	for _, e := range n.Out {
		if e.Site != call || e.Kind != EdgeCall || e.Callee.External() {
			continue
		}
		callee := e.Callee
		info := callee.File.Package.Info
		ast.Inspect(callee.Body, func(node ast.Node) bool {
			if lit, ok := node.(*ast.FuncLit); ok && lit != callee.Lit {
				return false
			}
			inner, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			if recv := mutexRecv(info, inner, "Unlock", "RUnlock"); recv != nil {
				keys = append(keys, exprString(recv))
			}
			return true
		})
	}
	return keys
}

// blockingExternal classifies body-less nodes by qualified name or
// package: the leaf facts the transitive predicate grows from. The net
// and net/http packages are blocking by default — their latency is the
// peer's — except for the allowlisted in-memory helpers.
func blockingExternal(fn *types.Func) (string, bool) {
	switch qualifiedName(fn) {
	case "time.Sleep":
		return "time.Sleep", true
	case "(*sync.WaitGroup).Wait":
		return "WaitGroup.Wait", true
	}
	if pkg := fn.Pkg(); pkg != nil {
		if p := pkg.Path(); p == "net" || p == "net/http" {
			if pureNetFunc(fn) {
				return "", false
			}
			return qualifiedName(fn), true
		}
	}
	return "", false
}

// pureNetFunc allowlists the net/net-http helpers that never touch the
// network or a request body: status tables, header-map manipulation,
// address parsing, request metadata.
func pureNetFunc(fn *types.Func) bool {
	switch qualifiedName(fn) {
	case "net/http.StatusText", "net/http.CanonicalHeaderKey", "net/http.DetectContentType",
		"net/http.NewRequest", "net/http.NewRequestWithContext", "net/http.NotFoundHandler",
		"net/http.RedirectHandler", "net/http.StripPrefix", "net/http.NewServeMux",
		"net.JoinHostPort", "net.SplitHostPort", "net.ParseIP", "net.ParseCIDR", "net.ParseMAC":
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	switch named.Obj().Name() {
	case "Header", "IP", "IPNet", "IPAddr", "TCPAddr", "UDPAddr", "HardwareAddr", "Cookie":
		return true
	case "Request":
		// Metadata accessors only: anything touching Body or the wire
		// (Write, ParseForm, FormValue, MultipartReader, ...) blocks.
		switch fn.Name() {
		case "Context", "WithContext", "Clone", "Cookie", "Cookies", "CookiesNamed",
			"AddCookie", "BasicAuth", "SetBasicAuth", "UserAgent", "Referer",
			"ProtoAtLeast", "PathValue", "SetPathValue":
			return true
		}
	}
	return false
}

// blocks computes (memoized) whether a node can block, with a witness.
func (c *lockHeldCheck) blocks(n *CallNode) *blockVerdict {
	if v, ok := c.memo[n]; ok {
		if v == nil {
			return &blockVerdict{} // cycle: assume non-blocking this round
		}
		return v
	}
	c.memo[n] = nil // in progress
	v := c.computeBlocks(n)
	c.memo[n] = v
	return v
}

func (c *lockHeldCheck) computeBlocks(n *CallNode) *blockVerdict {
	if n.External() {
		if why, ok := blockingExternal(n.Obj); ok {
			return &blockVerdict{blocks: true, why: why}
		}
		return &blockVerdict{}
	}
	// Direct evidence in the body (own frame only).
	direct := ""
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if direct != "" {
			return false
		}
		switch node := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if !selectHasDefault(node) {
				direct = "select"
			}
			return true
		case *ast.SendStmt:
			direct = "channel send"
		case *ast.UnaryExpr:
			if node.Op.String() == "<-" && isChanRecv(n, node) && !insideSelectComm(n.Body, node) {
				direct = "channel receive"
			}
		}
		return true
	})
	if direct != "" {
		return &blockVerdict{blocks: true, why: direct}
	}
	// Transitive evidence through plain calls.
	for _, e := range n.Out {
		if e.Kind != EdgeCall {
			continue
		}
		if v := c.blocks(e.Callee); v.blocks {
			return &blockVerdict{
				blocks: true,
				why:    v.why,
				path:   append([]string{e.Callee.Name()}, v.path...),
			}
		}
	}
	return &blockVerdict{}
}

// selectHasDefault reports whether a select has a default clause.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// insideSelectComm reports whether a receive expression is the comm
// clause of some select under root — those are already judged by the
// select itself.
func insideSelectComm(root ast.Node, recv *ast.UnaryExpr) bool {
	found := false
	ast.Inspect(root, func(node ast.Node) bool {
		if found {
			return false
		}
		sel, ok := node.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(inner ast.Node) bool {
				if inner == recv {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
