package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildCFGOf parses a function named f from a snippet and builds its
// CFG.
func buildCFGOf(t *testing.T, fn string) (*CFG, *ast.FuncDecl, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	af, err := parser.ParseFile(fset, "cfg_fixture.go", "package p\n\n"+fn, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range af.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return BuildCFG(fd.Body), fd, fset
		}
	}
	t.Fatal("no function f in snippet")
	return nil, nil, nil
}

// blockOnLine finds the statement-level block holding the node that
// starts on the given snippet line (1 = the func declaration line; the
// two-line package prefix added by buildCFGOf is accounted for).
func blockOnLine(t *testing.T, g *CFG, fset *token.FileSet, line int) *Block {
	t.Helper()
	for n, b := range g.blockOf {
		if fset.Position(n.Pos()).Line == line+2 {
			return b
		}
	}
	t.Fatalf("no placed node on snippet line %d", line)
	return nil
}

func TestCFGStraightLine(t *testing.T) {
	g, _, _ := buildCFGOf(t, `func f() {
	x := 1
	x++
	_ = x
}`)
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry block holds %d node(s), want 3", len(g.Entry.Nodes))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("entry must flow straight to exit, got %d succ(s)", len(g.Entry.Succs))
	}
	for _, b := range g.Blocks {
		if b.InLoop {
			t.Fatalf("block %d marked InLoop in straight-line code", b.Index)
		}
	}
}

func TestCFGIfElseEdges(t *testing.T) {
	g, _, fset := buildCFGOf(t, `func f(c bool) int {
	if c {
		return 1
	} else {
		return 2
	}
}`)
	head := blockOnLine(t, g, fset, 2) // the condition
	if head.Cond == nil {
		t.Fatal("if head must record its condition")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("if head has %d succ(s), want 2", len(head.Succs))
	}
	thenB := blockOnLine(t, g, fset, 3)
	elseB := blockOnLine(t, g, fset, 5)
	if head.Succs[0] != thenB {
		t.Errorf("Succs[0] must be the true edge (then block)")
	}
	if head.Succs[1] != elseB {
		t.Errorf("Succs[1] must be the false edge (else block)")
	}
	if len(thenB.Succs) != 1 || thenB.Succs[0] != g.Exit {
		t.Errorf("return must seal the then block to Exit")
	}
}

func TestCFGForLoop(t *testing.T) {
	g, _, fset := buildCFGOf(t, `func f(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}`)
	body := blockOnLine(t, g, fset, 4)
	if !body.InLoop {
		t.Error("loop body must be marked InLoop")
	}
	// Line 3 holds init, condition, and post in three different blocks;
	// find the head by its recorded condition instead.
	var head *Block
	for _, b := range g.Blocks {
		if b.Cond != nil {
			head = b
		}
	}
	if head == nil || len(head.Succs) != 2 {
		t.Fatalf("loop head must branch on its condition")
	}
	if !head.InLoop {
		t.Error("loop head must be marked InLoop")
	}
	if head.Succs[0] != body {
		t.Error("Succs[0] of the loop head must enter the body")
	}
	ret := blockOnLine(t, g, fset, 6)
	if ret.InLoop {
		t.Error("code after the loop must not be InLoop")
	}
}

func TestCFGRangePlacement(t *testing.T) {
	g, fd, fset := buildCFGOf(t, `func f(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}`)
	var rng *ast.RangeStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			rng = r
		}
		return true
	})
	head := g.BlockOf(rng)
	if head == nil {
		t.Fatal("RangeStmt must be placed in a block")
	}
	if !head.InLoop {
		t.Error("range head re-binds key/value each iteration; it must be InLoop")
	}
	body := blockOnLine(t, g, fset, 4)
	if !body.InLoop {
		t.Error("range body must be InLoop")
	}
	if g.BlockOf(rng.Body.List[0]) == head {
		t.Error("range body statements must not share the head block")
	}
}

func TestCFGGotoLoop(t *testing.T) {
	g, _, fset := buildCFGOf(t, `func f(n int) int {
	i := 0
top:
	i++
	if i < n {
		goto top
	}
	return i
}`)
	inc := blockOnLine(t, g, fset, 4)
	if !inc.InLoop {
		t.Error("goto-formed cycle must mark its blocks InLoop")
	}
	ret := blockOnLine(t, g, fset, 8)
	if ret.InLoop {
		t.Error("the loop exit must not be InLoop")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g, _, fset := buildCFGOf(t, `func f(n int) int {
	out := 0
	switch n {
	case 0:
		out = 1
		fallthrough
	case 1:
		out = 2
	default:
		out = 3
	}
	return out
}`)
	first := blockOnLine(t, g, fset, 5)  // out = 1
	second := blockOnLine(t, g, fset, 8) // out = 2
	found := false
	for _, s := range first.Succs {
		if s == second {
			found = true
		}
	}
	if !found {
		t.Error("fallthrough must edge the first clause into the second")
	}
}

func TestCFGTerminatingCall(t *testing.T) {
	g, _, fset := buildCFGOf(t, `func f(c bool) {
	if c {
		panic("boom")
	}
	println("after")
}`)
	pan := blockOnLine(t, g, fset, 3)
	if len(pan.Succs) != 1 || pan.Succs[0] != g.Exit {
		t.Fatal("panic must seal its block to Exit")
	}
	after := blockOnLine(t, g, fset, 5)
	for _, p := range after.Preds {
		if p == pan {
			t.Error("no fallthrough edge may leave a panicking block")
		}
	}
}

func TestCFGSelect(t *testing.T) {
	g, _, fset := buildCFGOf(t, `func f(a, b chan int) int {
	select {
	case x := <-a:
		return x
	case <-b:
		return 0
	}
}`)
	first := blockOnLine(t, g, fset, 3)
	second := blockOnLine(t, g, fset, 5)
	if first == second {
		t.Fatal("each comm clause needs its own block")
	}
	if len(first.Preds) != 1 || first.Preds[0] != second.Preds[0] {
		t.Error("both clauses must hang off the select head")
	}
}

// flowState is the test lattice: the set of names definitely assigned
// on every path (intersection join), plus branch markers.
type flowState map[string]bool

func cloneFlow(s flowState) flowState {
	out := make(flowState, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func testProblem() FlowProblem[flowState] {
	return FlowProblem[flowState]{
		Entry: func() flowState { return flowState{} },
		Transfer: func(b *Block, in flowState) flowState {
			st := cloneFlow(in)
			for _, n := range b.Nodes {
				if as, ok := n.(*ast.AssignStmt); ok {
					for _, l := range as.Lhs {
						if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
							st[id.Name] = true
						}
					}
				}
			}
			return st
		},
		Branch: func(cond ast.Expr, taken bool, out flowState) flowState {
			st := cloneFlow(out)
			if taken {
				st["@true"] = true
			} else {
				st["@false"] = true
			}
			return st
		},
		Join: func(a, b flowState) flowState {
			out := flowState{}
			for k := range a {
				if b[k] {
					out[k] = true
				}
			}
			return out
		},
		Equal: func(a, b flowState) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	}
}

func TestForwardFlowJoinIntersects(t *testing.T) {
	g, _, fset := buildCFGOf(t, `func f(c bool) {
	x := 1
	if c {
		y := 2
		_ = y
	} else {
		z := 3
		_ = z
	}
	w := 4
	_ = w
	_ = x
}`)
	in := ForwardFlow(g, testProblem())
	joinBlock := blockOnLine(t, g, fset, 10) // w := 4
	st, ok := in[joinBlock]
	if !ok {
		t.Fatal("join block unreachable")
	}
	if !st["x"] {
		t.Error("x assigned on every path must survive the join")
	}
	if st["y"] || st["z"] {
		t.Errorf("one-sided assignments must not survive an intersection join: %v", st)
	}
}

func TestForwardFlowBranchRefinement(t *testing.T) {
	g, _, fset := buildCFGOf(t, `func f(c bool) int {
	if c {
		return 1
	}
	return 0
}`)
	in := ForwardFlow(g, testProblem())
	thenB := blockOnLine(t, g, fset, 3)
	afterB := blockOnLine(t, g, fset, 5)
	if st := in[thenB]; !st["@true"] || st["@false"] {
		t.Errorf("true edge must carry the taken refinement, got %v", st)
	}
	if st := in[afterB]; !st["@false"] || st["@true"] {
		t.Errorf("false edge must carry the not-taken refinement, got %v", st)
	}
}

func TestForwardFlowLoopFixpoint(t *testing.T) {
	g, _, fset := buildCFGOf(t, `func f(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total = total + i
	}
	return total
}`)
	in := ForwardFlow(g, testProblem())
	ret := blockOnLine(t, g, fset, 6)
	st, ok := in[ret]
	if !ok {
		t.Fatal("loop exit unreachable")
	}
	if !st["total"] {
		t.Errorf("assignment before the loop must reach the exit, got %v", st)
	}
}

func TestIsTerminatingCall(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"panic(1)", true},
		{"os.Exit(1)", true},
		{"runtime.Goexit()", true},
		{"log.Fatalf(\"x\")", true},
		{"fmt.Println(1)", false},
		{"exit(1)", false},
	}
	for _, tc := range cases {
		e, err := parser.ParseExpr(tc.src)
		if err != nil {
			t.Fatalf("parse %s: %v", tc.src, err)
		}
		if got := isTerminatingCall(e.(*ast.CallExpr)); got != tc.want {
			t.Errorf("isTerminatingCall(%s) = %v, want %v", tc.src, got, tc.want)
		}
	}
}
