package analyzers

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadCallsGraph builds the call graph over the synthetic
// testdata/module/calls package.
func loadCallsGraph(t *testing.T) *CallGraph {
	t.Helper()
	pkgs, err := Load([]string{filepath.Join("testdata", "module", "calls")})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return BuildCallGraph(pkgs)
}

// nodeByName finds the unique node with the given Name().
func nodeByName(t *testing.T, g *CallGraph, name string) *CallNode {
	t.Helper()
	var found *CallNode
	for _, n := range g.Nodes() {
		if n.Name() == name {
			if found != nil {
				t.Fatalf("duplicate node %q", name)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("node %q not in graph", name)
	}
	return found
}

// calleeNames renders a node's outgoing callees, optionally filtered
// by edge kind.
func calleeNames(n *CallNode, kind EdgeKind) []string {
	var names []string
	for _, e := range n.Out {
		if e.Kind == kind {
			names = append(names, e.Callee.Name())
		}
	}
	return names
}

func TestCallGraphInterfaceResolution(t *testing.T) {
	g := loadCallsGraph(t)
	writeAll := nodeByName(t, g, "unitmod/calls.WriteAll")
	got := calleeNames(writeAll, EdgeCall)
	// The interface call fans out to both loaded implementations plus
	// the abstract method, kept as a body-less node.
	joined := strings.Join(got, "\n")
	for _, substr := range []string{"MemStore", "NullStore", "Store"} {
		if !strings.Contains(joined, substr) {
			t.Errorf("WriteAll callees missing %s:\n%s", substr, joined)
		}
	}
	if len(got) != 3 {
		t.Errorf("WriteAll: want 3 callees (2 impls + abstract), got %d:\n%s", len(got), joined)
	}
	// The implementations carry bodies; the abstract method must not.
	for _, e := range writeAll.Out {
		abstract := !strings.Contains(e.Callee.Name(), "MemStore") &&
			!strings.Contains(e.Callee.Name(), "NullStore")
		if abstract != e.Callee.External() {
			t.Errorf("callee %s: external = %v, want %v", e.Callee.Name(), e.Callee.External(), abstract)
		}
	}
}

func TestCallGraphFuncValueResolution(t *testing.T) {
	g := loadCallsGraph(t)

	// Package-level function value: Direct -> the literal bound to
	// record.
	direct := nodeByName(t, g, "unitmod/calls.Direct")
	got := calleeNames(direct, EdgeCall)
	if len(got) != 1 || !strings.Contains(got[0], "func literal") {
		t.Errorf("Direct: want the record literal as sole callee, got %v", got)
	}

	// Struct-field function value bound via composite literal:
	// (*hooks).Fire -> logPut.
	fire := nodeByName(t, g, "(*unitmod/calls.hooks).Fire")
	got = calleeNames(fire, EdgeCall)
	if len(got) != 1 || got[0] != "unitmod/calls.logPut" {
		t.Errorf("Fire: want logPut as sole callee, got %v", got)
	}
}

func TestCallGraphParameterCalleeUnresolved(t *testing.T) {
	g := loadCallsGraph(t)
	spawn := nodeByName(t, g, "unitmod/calls.Spawn")
	if len(spawn.Out) != 0 {
		t.Errorf("Spawn: parameter callees must stay unresolved (documented blind spot), got %d edge(s)", len(spawn.Out))
	}
}

func TestCallGraphEdgeKinds(t *testing.T) {
	g := loadCallsGraph(t)
	closed := nodeByName(t, g, "unitmod/calls.Closed")
	kinds := map[EdgeKind][]string{}
	for _, e := range closed.Out {
		kinds[e.Kind] = append(kinds[e.Kind], e.Callee.Name())
	}
	if got := kinds[EdgeDefer]; len(got) != 1 || got[0] != "(*unitmod/calls.MemStore).Put" {
		t.Errorf("EdgeDefer: want [(*unitmod/calls.MemStore).Put], got %v", got)
	}
	if got := kinds[EdgeGo]; len(got) != 1 || got[0] != "unitmod/calls.Direct" {
		t.Errorf("EdgeGo: want [unitmod/calls.Direct], got %v", got)
	}
	if got := kinds[EdgeCall]; len(got) != 1 || !strings.Contains(got[0], "func literal") {
		t.Errorf("EdgeCall: want the record literal, got %v", got)
	}
}

// TestCallGraphInEdges pins the reverse direction: the callee's In
// list mirrors the caller's Out list.
func TestCallGraphInEdges(t *testing.T) {
	g := loadCallsGraph(t)
	logPut := nodeByName(t, g, "unitmod/calls.logPut")
	if len(logPut.In) != 1 || logPut.In[0].Caller.Name() != "(*unitmod/calls.hooks).Fire" {
		var callers []string
		for _, e := range logPut.In {
			callers = append(callers, e.Caller.Name())
		}
		t.Errorf("logPut callers: want [(*unitmod/calls.hooks).Fire], got %v", callers)
	}
}

// BenchmarkCallGraph times graph construction alone over the real
// tree, separating the builder's cost from the loader's.
func BenchmarkCallGraph(b *testing.B) {
	pkgs, err := Load([]string{filepath.Join("..", "..", "...")})
	if err != nil {
		b.Fatalf("Load: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := BuildCallGraph(pkgs)
		if len(g.Nodes()) == 0 {
			b.Fatal("empty call graph")
		}
	}
}
