package analyzers

import (
	"go/ast"
	"go/token"
)

// mathFloatFuncs are math package functions returning float64 — calls
// to them make an expression float without needing type information.
// Predicates (IsNaN, Signbit, ...) are deliberately absent.
var mathFloatFuncs = map[string]bool{
	"Abs": true, "Acos": true, "Asin": true, "Atan": true, "Atan2": true,
	"Cbrt": true, "Ceil": true, "Copysign": true, "Cos": true, "Cosh": true,
	"Dim": true, "Erf": true, "Erfc": true, "Exp": true, "Exp2": true,
	"Expm1": true, "Floor": true, "FMA": true, "Gamma": true, "Hypot": true,
	"Inf": true, "Log": true, "Log10": true, "Log1p": true, "Log2": true,
	"Max": true, "Min": true, "Mod": true, "NaN": true, "Pow": true,
	"Remainder": true, "Round": true, "Sin": true, "Sinh": true,
	"Sqrt": true, "Tan": true, "Tanh": true, "Trunc": true,
}

// checkFloatEq flags == and != between floating-point operands.
// Exact float equality is almost always a latent bug in numerical
// code; the rare intentional uses (exact-zero guards before a
// division, sentinel values) must say so with a suppression comment.
//
// Floatness is established per function by syntactic inference: float
// literals, float64/float32 parameters, results and declarations,
// conversions, math.* calls, and propagation through := chains and
// arithmetic. The check never sees go/types, so a float variable that
// only ever crosses package boundaries can escape it — the goal is
// catching the overwhelmingly common local patterns, not completeness.
func checkFloatEq() Check {
	const id = "floateq"
	return Check{
		ID:  id,
		Doc: "no ==/!= on floating-point operands (use an epsilon or suppress with a reason)",
		Run: func(f *File) []Diagnostic {
			var diags []Diagnostic
			funcDecls(f.AST, func(name string, ftype *ast.FuncType, body *ast.BlockStmt) {
				floats := floatIdents(ftype, body)
				ast.Inspect(body, func(n ast.Node) bool {
					be, ok := n.(*ast.BinaryExpr)
					if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
						return true
					}
					if isFloatExpr(be.X, floats) || isFloatExpr(be.Y, floats) {
						diags = append(diags, f.diag(be.OpPos, id, SeverityError,
							"%s on float operands (%s %s %s); compare with a tolerance",
							be.Op, exprString(be.X), be.Op, exprString(be.Y)))
					}
					return true
				})
			})
			return diags
		},
	}
}

// floatIdents infers the set of identifiers with floating-point type
// in one function: parameters, named results, var declarations, and
// := targets whose right-hand side is float, iterated to a fixpoint so
// chains like a := 1.0; b := a; c := b*2 resolve.
func floatIdents(ftype *ast.FuncType, body *ast.BlockStmt) map[string]bool {
	floats := map[string]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if isFloatType(field.Type) {
				for _, n := range field.Names {
					floats[n.Name] = true
				}
			}
		}
	}
	addFields(ftype.Params)
	addFields(ftype.Results)

	for pass := 0; pass < 4; pass++ {
		before := len(floats)
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeclStmt:
				gd, ok := n.Decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					return true
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					isFloat := vs.Type != nil && isFloatType(vs.Type)
					for i, name := range vs.Names {
						if isFloat || (vs.Type == nil && i < len(vs.Values) && isFloatExpr(vs.Values[i], floats)) {
							floats[name.Name] = true
						}
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					name, ok := lhs.(*ast.Ident)
					if ok && isFloatExpr(n.Rhs[i], floats) {
						floats[name.Name] = true
					}
				}
			}
			return true
		})
		if len(floats) == before {
			break
		}
	}
	return floats
}

// isFloatExpr reports whether an expression is syntactically known to
// be floating point given the inferred identifier set.
func isFloatExpr(e ast.Expr, floats map[string]bool) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return e.Kind == token.FLOAT
	case *ast.Ident:
		return floats[e.Name]
	case *ast.ParenExpr:
		return isFloatExpr(e.X, floats)
	case *ast.UnaryExpr:
		return isFloatExpr(e.X, floats)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			return isFloatExpr(e.X, floats) || isFloatExpr(e.Y, floats)
		}
	case *ast.CallExpr:
		recv, name := calleeOf(e)
		if recv == "" && (name == "float64" || name == "float32") {
			return true
		}
		if recv == "math" && mathFloatFuncs[name] {
			return true
		}
	case *ast.SelectorExpr:
		// Field suffixed with a unit whose dimension is continuous is
		// overwhelmingly a float in this codebase.
		return unitOf(e.Sel.Name) != ""
	}
	return false
}
