package analyzers

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file is the compiler-diagnostics perf budget behind
// cmd/lint -perfbudget: it rebuilds the //lint:hot packages with
// `-gcflags='-m=1 -d=ssa/check_bce/debug=1'`, parses the compiler's
// escape-analysis and bounds-check reports into a per-hot-function
// inventory, and diffs that against budgets committed under
// testdata/perfbudget. A new heap escape or bounds check in a hot
// function fails the gate; dropping below budget is reported so the
// budget can be tightened. The Go build cache replays these
// diagnostics on cached builds, so the gate costs one no-op build
// when nothing changed.

// PerfCounts is the per-function diagnostic inventory.
type PerfCounts struct {
	Escapes      int `json:"escapes"`
	BoundsChecks int `json:"bounds_checks"`
}

// PerfBudget is the committed (or freshly collected) inventory of one
// package's hot functions.
type PerfBudget struct {
	Version   int                   `json:"version"`
	Package   string                `json:"package"`
	Functions map[string]PerfCounts `json:"functions"`
}

// BudgetFileName maps an import path to its budget file name.
func BudgetFileName(importPath string) string {
	return strings.ReplaceAll(importPath, "/", "_") + ".json"
}

// LoadPerfBudget reads a budget file. A missing file returns an empty
// budget — every nonzero count in a new hot function then fails the
// diff until a budget is written.
func LoadPerfBudget(path string) (PerfBudget, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return PerfBudget{Version: 1}, nil
	}
	if err != nil {
		return PerfBudget{}, fmt.Errorf("analyzers: reading perf budget: %w", err)
	}
	var b PerfBudget
	if err := json.Unmarshal(data, &b); err != nil {
		return PerfBudget{}, fmt.Errorf("analyzers: parsing perf budget %s: %w", path, err)
	}
	return b, nil
}

// Save writes the budget as indented JSON.
func (b PerfBudget) Save(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// hotFuncRange locates one hot function's lines within a file.
type hotFuncRange struct {
	file       string // as parsed (loader-relative)
	start, end int
	name       string
}

// hotFuncRangesOf returns the line ranges of every //lint:hot function
// of a loaded package (all functions of a file-hot file).
func hotFuncRangesOf(pkg *TypedPackage) []hotFuncRange {
	var out []hotFuncRange
	for _, f := range pkg.Files {
		marks := hotMarksOf(&f.File)
		for _, decl := range f.AST.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil || !marks.hot(d, f.Fset) {
				continue
			}
			out = append(out, hotFuncRange{
				file:  f.Path,
				start: f.Fset.Position(d.Pos()).Line,
				end:   f.Fset.Position(d.End()).Line,
				name:  funcDeclName(d),
			})
		}
	}
	return out
}

// HotPackages filters a loaded surface down to the packages with at
// least one //lint:hot function.
func HotPackages(pkgs []*TypedPackage) []*TypedPackage {
	var out []*TypedPackage
	for _, p := range pkgs {
		if len(hotFuncRangesOf(p)) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// perfDiag is one parsed compiler diagnostic.
type perfDiag struct {
	file    string
	line    int
	message string
}

// parsePerfDiags extracts escape and bounds-check diagnostics from
// `go build -gcflags='-m=1 -d=ssa/check_bce/debug=1'` output. Inlining
// chatter and leaking-param notes are not budgeted: params that leak
// are an API property, not a per-iteration allocation.
func parsePerfDiags(output string) (escapes, bounds []perfDiag) {
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// path:line:col: message
		parts := strings.SplitN(line, ":", 4)
		if len(parts) != 4 {
			continue
		}
		ln, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		msg := strings.TrimSpace(parts[3])
		d := perfDiag{file: parts[0], line: ln, message: msg}
		switch {
		case strings.Contains(msg, "escapes to heap"), strings.Contains(msg, "moved to heap"):
			escapes = append(escapes, d)
		case strings.HasPrefix(msg, "Found IsInBounds"), strings.HasPrefix(msg, "Found IsSliceInBounds"):
			bounds = append(bounds, d)
		}
	}
	return escapes, bounds
}

// inventoryFrom buckets parsed diagnostics into the hot functions of a
// package. Paths are compared cleaned; a diagnostic outside every hot
// function's range is not budgeted.
func inventoryFrom(pkg *TypedPackage, escapes, bounds []perfDiag) PerfBudget {
	ranges := hotFuncRangesOf(pkg)
	b := PerfBudget{Version: 1, Package: pkg.Path, Functions: map[string]PerfCounts{}}
	for _, r := range ranges {
		b.Functions[r.name] = PerfCounts{}
	}
	locate := func(d perfDiag) string {
		dp := filepath.Clean(d.file)
		for _, r := range ranges {
			if d.line < r.start || d.line > r.end {
				continue
			}
			rp := filepath.Clean(r.file)
			if rp == dp || filepath.Base(rp) == filepath.Base(dp) {
				return r.name
			}
		}
		return ""
	}
	for _, d := range escapes {
		if name := locate(d); name != "" {
			c := b.Functions[name]
			c.Escapes++
			b.Functions[name] = c
		}
	}
	for _, d := range bounds {
		if name := locate(d); name != "" {
			c := b.Functions[name]
			c.BoundsChecks++
			b.Functions[name] = c
		}
	}
	return b
}

// CollectPerfInventory compiles one hot package with diagnostics on
// and returns the per-hot-function inventory.
func CollectPerfInventory(modRoot string, pkg *TypedPackage) (PerfBudget, error) {
	cmd := exec.Command("go", "build",
		"-gcflags="+pkg.Path+"=-m=1 -d=ssa/check_bce/debug=1", pkg.Path)
	cmd.Dir = modRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return PerfBudget{}, fmt.Errorf("analyzers: go build %s: %v\n%s", pkg.Path, err, out)
	}
	escapes, bounds := parsePerfDiags(string(out))
	return inventoryFrom(pkg, escapes, bounds), nil
}

// DiffPerfBudget compares a current inventory against the committed
// budget: failures are regressions (counts above budget, or a new hot
// function with nonzero counts and no budget line); improvements are
// counts now below budget, so it can be ratcheted down.
func DiffPerfBudget(budget, current PerfBudget) (failures, improvements []string) {
	names := make([]string, 0, len(current.Functions))
	for name := range current.Functions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cur := current.Functions[name]
		want, ok := budget.Functions[name]
		if !ok && (cur.Escapes > 0 || cur.BoundsChecks > 0) {
			failures = append(failures,
				fmt.Sprintf("%s %s: no committed budget but %d escape(s), %d bounds check(s); fix them or run -write-perfbudget",
					current.Package, name, cur.Escapes, cur.BoundsChecks))
			continue
		}
		if cur.Escapes > want.Escapes {
			failures = append(failures,
				fmt.Sprintf("%s %s: %d heap escape(s), budget %d (+%d)",
					current.Package, name, cur.Escapes, want.Escapes, cur.Escapes-want.Escapes))
		} else if cur.Escapes < want.Escapes {
			improvements = append(improvements,
				fmt.Sprintf("%s %s: %d heap escape(s), budget %d — tighten the budget",
					current.Package, name, cur.Escapes, want.Escapes))
		}
		if cur.BoundsChecks > want.BoundsChecks {
			failures = append(failures,
				fmt.Sprintf("%s %s: %d bounds check(s), budget %d (+%d)",
					current.Package, name, cur.BoundsChecks, want.BoundsChecks, cur.BoundsChecks-want.BoundsChecks))
		} else if cur.BoundsChecks < want.BoundsChecks {
			improvements = append(improvements,
				fmt.Sprintf("%s %s: %d bounds check(s), budget %d — tighten the budget",
					current.Package, name, cur.BoundsChecks, want.BoundsChecks))
		}
	}
	return failures, improvements
}

// FindModuleRoot walks up from a directory to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analyzers: no go.mod found above %s", dir)
		}
		abs = parent
	}
}
