package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkDeterTaint is DESIGN.md §6 as a machine-checked property:
// nondeterministic values must never reach the inputs that make runs
// reproducible. Sources of nondeterminism:
//
//   - time.Now and time.Since (wall clock);
//   - the global math/rand functions (process-seeded since Go 1.20,
//     different every run) — a rand.Rand built from an explicit
//     rand.NewSource(seed) is fine;
//   - map iteration order: the key and value variables of a range over
//     a map.
//
// Deterministic sinks, where a tainted value is a reproducibility bug:
//
//   - any parameter named "seed" (or ending in "Seed") of a loaded
//     function — the convention every constructor in this module uses
//     (obs.NewTracer, cluster.NewRing, span and ring hashing);
//   - math/rand.NewSource / rand.New seed arguments;
//   - writes to struct fields named "seed"/"Seed"-suffixed, including
//     composite-literal initializers;
//   - consistent-hash placement: the key arguments of Owner,
//     Successors, and Add on a type named Ring — map-ordered or
//     clock-derived keys make placement differ across runs.
//
// Taint flows forward through assignments inside each function and
// across calls via memoized summaries: a function whose return derives
// from a source taints its callers' results; a function whose
// parameter reaches a sink turns its call sites into sinks at that
// position.
func checkDeterTaint() InterCheck {
	const id = "detertaint"
	return InterCheck{
		ID: id,
		Doc: "nondeterminism (wall clock, global math/rand, map range order) must not flow into " +
			"deterministic sinks (seeds, ring placement keys)",
		Run: func(ic *InterContext) []Diagnostic {
			c := &deterTaintCheck{ic: ic, id: id, memo: map[*CallNode]*taintSummary{}}
			for _, n := range ic.Graph.Nodes() {
				if n.External() || !ic.onSurface(n.posOf()) {
					continue
				}
				c.summarize(n)
			}
			return c.diags
		},
	}
}

// taintSummary is one function's interprocedural behavior.
type taintSummary struct {
	// returnsTainted: some return value derives from a source.
	returnsTainted bool
	// sinkParams: parameter indices that reach a sink inside the
	// function (directly or through callees).
	sinkParams map[int]bool
}

type deterTaintCheck struct {
	ic    *InterContext
	id    string
	memo  map[*CallNode]*taintSummary // nil entry = in progress (cycle cut)
	diags []Diagnostic
}

// sourceCall classifies a resolved callee as a nondeterminism source,
// returning a human label.
func sourceCall(fn *types.Func) (string, bool) {
	switch qualifiedName(fn) {
	case "time.Now":
		return "time.Now", true
	case "time.Since":
		return "time.Since", true
	}
	// Global math/rand consumers: package-level functions drawing from
	// the process-seeded global source. Constructors that only wrap an
	// explicit source are not sources themselves.
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "math/rand" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			switch fn.Name() {
			case "New", "NewSource", "NewZipf":
				return "", false
			}
			return "global math/rand." + fn.Name(), true
		}
	}
	return "", false
}

// seedParamName reports whether a parameter name marks a deterministic
// seed by this module's convention.
func seedParamName(name string) bool {
	return name == "seed" || strings.HasSuffix(name, "Seed")
}

// seedFieldName is the field-write analogue.
func seedFieldName(name string) bool {
	return name == "seed" || name == "Seed" || strings.HasSuffix(name, "Seed")
}

// externalSinkParams is the explicit table for body-less callees whose
// parameter names the loader may not surface.
func externalSinkParams(fn *types.Func) map[int]bool {
	switch qualifiedName(fn) {
	case "math/rand.NewSource":
		return map[int]bool{0: true}
	}
	return nil
}

// ringPlacementSink reports whether a method is a consistent-hash
// placement sink: Owner/Successors/Add on a type named Ring. The match
// is structural (type name, not package path) so the property holds in
// fixtures and future rings alike.
func ringPlacementSink(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "Owner", "Successors", "Add":
	default:
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Ring"
}

// sinkPositions returns the sink parameter indices of a callee, with a
// label describing the sink kind, combining the naming convention, the
// explicit external table, ring placement, and the callee's own
// summary.
func (c *deterTaintCheck) sinkPositions(callee *CallNode) (map[int]bool, string) {
	positions := map[int]bool{}
	label := "seed"
	if callee.Obj != nil {
		if ext := externalSinkParams(callee.Obj); ext != nil {
			for i := range ext {
				positions[i] = true
			}
		}
		if ringPlacementSink(callee.Obj) {
			positions[0] = true
			label = "ring placement key"
		}
	}
	if sig := signatureOf(callee); sig != nil {
		params := sig.Params()
		for i := 0; i < params.Len(); i++ {
			if seedParamName(params.At(i).Name()) {
				positions[i] = true
			}
		}
	}
	if !callee.External() {
		if sum := c.summarize(callee); sum != nil {
			for i := range sum.sinkParams {
				positions[i] = true
			}
		}
	}
	return positions, label
}

// summarize computes (memoized) one node's taint summary, emitting
// diagnostics for source-to-sink flows inside its body as a side
// effect. External nodes summarize from the classification tables.
func (c *deterTaintCheck) summarize(n *CallNode) *taintSummary {
	if sum, ok := c.memo[n]; ok {
		if sum == nil {
			return &taintSummary{} // cycle: assume clean this round
		}
		return sum
	}
	c.memo[n] = nil
	sum := c.computeSummary(n)
	c.memo[n] = sum
	return sum
}

func (c *deterTaintCheck) computeSummary(n *CallNode) *taintSummary {
	sum := &taintSummary{sinkParams: map[int]bool{}}
	if n.External() {
		if _, ok := sourceCall(n.Obj); ok {
			sum.returnsTainted = true
		}
		return sum
	}

	info := n.File.Package.Info
	st := &taintState{c: c, n: n, info: info, tainted: map[types.Object]bool{}, why: map[types.Object]string{}}

	// Forward dataflow to fixpoint: map-range variables and any
	// assignment whose right side is tainted grow the set.
	for changed := true; changed; {
		changed = false
		inspectOwnBody(n, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.RangeStmt:
				if tv, ok := info.Types[node.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						for _, v := range []ast.Expr{node.Key, node.Value} {
							if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
								if obj := info.Defs[id]; obj != nil && !st.tainted[obj] {
									st.tainted[obj] = true
									st.why[obj] = "map range order"
									changed = true
								}
							}
						}
					}
				}
			case *ast.AssignStmt:
				if st.propagateAssign(node) {
					changed = true
				}
			case *ast.GenDecl:
				for _, spec := range node.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && st.propagateValueSpec(vs) {
						changed = true
					}
				}
			}
			return true
		})
	}

	// Sinks: call arguments and seed-field writes.
	inspectOwnBody(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			c.checkCallSinks(st, node, sum)
		case *ast.AssignStmt:
			c.checkFieldSinks(st, node, sum)
		case *ast.CompositeLit:
			c.checkLiteralSinks(st, node, sum)
		case *ast.ReturnStmt:
			for _, r := range node.Results {
				if _, ok := st.taintedExpr(r); ok {
					sum.returnsTainted = true
				}
			}
		}
		return true
	})
	return sum
}

// taintState is the per-function dataflow state.
type taintState struct {
	c       *deterTaintCheck
	n       *CallNode
	info    *types.Info
	tainted map[types.Object]bool
	why     map[types.Object]string
}

// taintedExpr reports whether an expression derives from a source,
// with a label naming the source kind.
func (st *taintState) taintedExpr(e ast.Expr) (string, bool) {
	if e == nil {
		return "", false
	}
	why := ""
	ast.Inspect(e, func(node ast.Node) bool {
		if why != "" {
			return false
		}
		switch node := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if obj := st.info.Uses[node]; obj != nil && st.tainted[obj] {
				why = st.why[obj]
				return false
			}
		case *ast.CallExpr:
			if w, ok := st.callTaint(node); ok {
				why = w
				return false
			}
		}
		return true
	})
	return why, why != ""
}

// callTaint classifies one call expression's result as tainted: a
// direct source, or a loaded callee whose summary returns taint.
func (st *taintState) callTaint(call *ast.CallExpr) (string, bool) {
	for _, e := range st.n.Out {
		if e.Site != call {
			continue
		}
		if e.Callee.Obj != nil {
			if why, ok := sourceCall(e.Callee.Obj); ok {
				return why, true
			}
		}
		if !e.Callee.External() {
			if sum := st.c.summarize(e.Callee); sum.returnsTainted {
				return "nondeterministic result of " + e.Callee.Name(), true
			}
		}
	}
	return "", false
}

// propagateAssign taints the assignment's targets when any right side
// is tainted. Multi-value forms (x, y := f()) taint every target —
// coarse but conservative.
func (st *taintState) propagateAssign(as *ast.AssignStmt) bool {
	rhsWhy := ""
	for _, r := range as.Rhs {
		if why, ok := st.taintedExpr(r); ok {
			rhsWhy = why
			break
		}
	}
	if rhsWhy == "" {
		return false
	}
	changed := false
	for _, l := range as.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		obj := st.info.Defs[id]
		if obj == nil {
			obj = st.info.Uses[id]
		}
		if obj != nil && !st.tainted[obj] {
			st.tainted[obj] = true
			st.why[obj] = rhsWhy
			changed = true
		}
	}
	return changed
}

// propagateValueSpec is propagateAssign for var declarations.
func (st *taintState) propagateValueSpec(vs *ast.ValueSpec) bool {
	changed := false
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		why, ok := st.taintedExpr(vs.Values[i])
		if !ok {
			continue
		}
		if obj := st.info.Defs[name]; obj != nil && !st.tainted[obj] {
			st.tainted[obj] = true
			st.why[obj] = why
			changed = true
		}
	}
	return changed
}

// paramIndex resolves an expression to a parameter index of the node
// when the expression mentions exactly that parameter.
func (st *taintState) paramIndex(e ast.Expr) (int, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := st.info.Uses[id]
	if obj == nil {
		return 0, false
	}
	sig := signatureOf(st.n)
	if sig == nil {
		return 0, false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if params.At(i) == obj {
			return i, true
		}
	}
	return 0, false
}

// checkCallSinks flags tainted arguments in sink positions of one call
// site, and records parameter-to-sink flow for the summary.
func (c *deterTaintCheck) checkCallSinks(st *taintState, call *ast.CallExpr, sum *taintSummary) {
	seen := map[*CallNode]bool{}
	for _, e := range st.n.Out {
		if e.Site != call || seen[e.Callee] {
			continue
		}
		seen[e.Callee] = true
		positions, label := c.sinkPositions(e.Callee)
		for i := range positions {
			if i >= len(call.Args) {
				continue
			}
			arg := call.Args[i]
			if why, ok := st.taintedExpr(arg); ok {
				c.diags = append(c.diags, c.ic.diagAt(arg.Pos(), c.id, SeverityError,
					"%s flows into the %s argument of %s in %s; deterministic outputs require a deterministic input here",
					why, label, e.Callee.Name(), st.n.Name()))
			} else if j, ok := st.paramIndex(arg); ok {
				sum.sinkParams[j] = true
			}
		}
	}
}

// checkFieldSinks flags tainted writes to seed-named struct fields.
func (c *deterTaintCheck) checkFieldSinks(st *taintState, as *ast.AssignStmt, sum *taintSummary) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, l := range as.Lhs {
		sel, ok := ast.Unparen(l).(*ast.SelectorExpr)
		if !ok || !seedFieldName(sel.Sel.Name) {
			continue
		}
		if s, ok := st.info.Selections[sel]; !ok || s.Kind() != types.FieldVal {
			continue
		}
		if why, ok := st.taintedExpr(as.Rhs[i]); ok {
			c.diags = append(c.diags, c.ic.diagAt(as.Rhs[i].Pos(), c.id, SeverityError,
				"%s written to seed field %s in %s; seeds must be deterministic",
				why, exprString(sel), st.n.Name()))
		} else if j, ok := st.paramIndex(as.Rhs[i]); ok {
			sum.sinkParams[j] = true
		}
	}
}

// checkLiteralSinks is checkFieldSinks for composite-literal
// initializers (Config{Seed: time.Now().UnixNano()}).
func (c *deterTaintCheck) checkLiteralSinks(st *taintState, lit *ast.CompositeLit, sum *taintSummary) {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !seedFieldName(key.Name) {
			continue
		}
		if why, ok := st.taintedExpr(kv.Value); ok {
			c.diags = append(c.diags, c.ic.diagAt(kv.Value.Pos(), c.id, SeverityError,
				"%s initializes seed field %s in %s; seeds must be deterministic",
				why, key.Name, st.n.Name()))
		} else if j, ok := st.paramIndex(kv.Value); ok {
			sum.sinkParams[j] = true
		}
	}
}
