package analyzers

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BaselineEntry identifies a grandfathered finding. Line numbers are
// deliberately omitted so unrelated edits that shift code do not
// invalidate the baseline; a finding matches on (file, check, message).
type BaselineEntry struct {
	File    string `json:"file"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// Baseline is the persisted set of grandfathered findings. Matching is
// multiset-style: two identical findings in one file need two entries.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// NewBaseline converts current diagnostics into a baseline.
func NewBaseline(diags []Diagnostic) Baseline {
	b := Baseline{Version: 1}
	for _, d := range diags {
		b.Findings = append(b.Findings, BaselineEntry{File: d.File, Check: d.Check, Message: d.Message})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Check != c.Check {
			return a.Check < c.Check
		}
		return a.Message < c.Message
	})
	return b
}

// LoadBaseline reads a baseline file. A missing file is not an error:
// it returns an empty baseline, so fresh checkouts lint strictly.
func LoadBaseline(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return Baseline{Version: 1}, nil
	}
	if err != nil {
		return Baseline{}, fmt.Errorf("analyzers: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return Baseline{}, fmt.Errorf("analyzers: parsing baseline %s: %w", path, err)
	}
	return b, nil
}

// Save writes the baseline as indented JSON.
func (b Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Prune returns the baseline with every stale entry — one that no
// current diagnostic matches — removed, alongside how many were
// dropped. Matching is the same multiset rule as Apply.
func (b Baseline) Prune(diags []Diagnostic) (Baseline, int) {
	_, stale := b.Apply(diags)
	type key struct{ file, check, message string }
	rm := map[key]int{}
	for _, e := range stale {
		rm[key{e.File, e.Check, e.Message}]++
	}
	out := Baseline{Version: b.Version}
	if out.Version == 0 {
		out.Version = 1
	}
	for _, e := range b.Findings {
		k := key{e.File, e.Check, e.Message}
		if rm[k] > 0 {
			rm[k]--
			continue
		}
		out.Findings = append(out.Findings, e)
	}
	return out, len(stale)
}

// Apply splits diagnostics into new findings (not in the baseline) and
// reports stale baseline entries that no longer fire, so the baseline
// can be shrunk as debt is paid down.
func (b Baseline) Apply(diags []Diagnostic) (fresh []Diagnostic, stale []BaselineEntry) {
	type key struct{ file, check, message string }
	budget := map[key]int{}
	for _, e := range b.Findings {
		budget[key{e.File, e.Check, e.Message}]++
	}
	for _, d := range diags {
		k := key{d.File, d.Check, d.Message}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	for k, n := range budget {
		for i := 0; i < n; i++ {
			stale = append(stale, BaselineEntry{File: k.file, Check: k.check, Message: k.message})
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		a, c := stale[i], stale[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Check != c.Check {
			return a.Check < c.Check
		}
		return a.Message < c.Message
	})
	return fresh, stale
}
