package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// FuzzSuppressDirective throws arbitrary comment text at the
// //lint:ignore parser and checks its invariants: no panic, every
// parsed directive is well-formed (non-empty check set, non-empty
// reason, positive line), every emitted diagnostic is a badignore, and
// each lint:ignore comment is accounted for exactly once — either
// parsed or reported malformed, never both, never neither.
func FuzzSuppressDirective(f *testing.F) {
	f.Add("lint:ignore floateq exact comparison is the point")
	f.Add("lint:ignore floateq,nodeterm both silenced")
	f.Add("lint:ignore * everything")
	f.Add("lint:ignore floateq")
	f.Add("lint:ignore")
	f.Add("lint:ignoreX not-a-directive trailing")
	f.Add("  lint:ignore   spaced   out   reason  ")
	f.Add("lint:ignore , empty-ids reason")
	f.Add("not a directive at all")
	f.Fuzz(func(t *testing.T, comment string) {
		// Keep the comment on one line so it stays a single //-comment.
		line := strings.Map(func(r rune) rune {
			if r == '\n' || r == '\r' {
				return ' '
			}
			return r
		}, comment)
		src := "package p\n\n// " + line + "\nfunc f() {}\n"
		fset := token.NewFileSet()
		af, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil {
			t.Skip() // the comment broke the file some other way
		}
		file := &File{Fset: fset, AST: af, Path: "fuzz.go", Pkg: "p", Siblings: []*ast.File{af}}
		dirs, diags := parseIgnores(file)

		directiveComments := 0
		for _, cg := range af.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if strings.HasPrefix(text, "lint:ignore") {
					directiveComments++
				}
			}
		}
		if got := len(dirs) + len(diags); got != directiveComments {
			t.Fatalf("%d directive comment(s) produced %d directive(s) + %d diagnostic(s)",
				directiveComments, len(dirs), len(diags))
		}
		for _, d := range dirs {
			if len(d.checks) == 0 {
				t.Errorf("directive with empty check set from %q", comment)
			}
			if strings.TrimSpace(d.reason) == "" {
				t.Errorf("directive with empty reason from %q", comment)
			}
			if d.line <= 0 {
				t.Errorf("directive with line %d from %q", d.line, comment)
			}
		}
		for _, d := range diags {
			if d.Check != BadIgnoreID {
				t.Errorf("non-badignore diagnostic %q from %q", d.Check, comment)
			}
		}
	})
}
