package analyzers

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the typed half of the suite: a stdlib-only loader that
// builds full go/types information for every package on the lint
// surface, and the TypedCheck registration that parallels Check. The
// loader resolves standard-library imports through the source importer
// (importer.ForCompiler(fset, "source", nil)) and module-internal
// imports itself, by walking up to go.mod, mapping the import path to a
// directory and type-checking that directory recursively — the piece
// the source importer cannot do in module mode.

// TypedPackage is one fully type-checked package.
type TypedPackage struct {
	Dir   string // directory as walked, the prefix of diagnostic paths
	Path  string // import path within the enclosing module
	Fset  *token.FileSet
	Files []*TypedFile
	Types *types.Package
	Info  *types.Info
}

// TypedFile is the per-file context handed to semantic checks: the
// syntactic File plus the type information of its package.
type TypedFile struct {
	File
	Package *TypedPackage
}

// TypedCheck is a semantic analyzer. It mirrors Check — same ID
// namespace, same suppression and baseline machinery — but its run
// function sees full type information.
type TypedCheck struct {
	ID  string
	Doc string
	Run func(f *TypedFile) []Diagnostic
}

// AllTyped returns every registered semantic check, sorted by ID.
func AllTyped() []TypedCheck {
	cs := []TypedCheck{
		checkLossyConv(),
		checkTypeAssert(),
		checkUnitFlow(),
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].ID < cs[j].ID })
	return cs
}

// Selection names the checks of one lint run across all four layers.
type Selection struct {
	Syntactic []Check
	Typed     []TypedCheck
	Inter     []InterCheck
	Flow      []FlowCheck
}

// SelectAll resolves check IDs across the syntactic, typed,
// interprocedural, and flow-sensitive suites (all checks of every
// layer when ids is empty), or returns an error naming any unknown ID.
func SelectAll(ids []string) (Selection, error) {
	if len(ids) == 0 {
		return Selection{Syntactic: All(), Typed: AllTyped(), Inter: AllInter(), Flow: AllFlow()}, nil
	}
	syn := map[string]Check{}
	for _, c := range All() {
		syn[c.ID] = c
	}
	typ := map[string]TypedCheck{}
	for _, c := range AllTyped() {
		typ[c.ID] = c
	}
	inter := map[string]InterCheck{}
	for _, c := range AllInter() {
		inter[c.ID] = c
	}
	flow := map[string]FlowCheck{}
	for _, c := range AllFlow() {
		flow[c.ID] = c
	}
	var sel Selection
	for _, id := range ids {
		if c, ok := syn[id]; ok {
			sel.Syntactic = append(sel.Syntactic, c)
			continue
		}
		if c, ok := typ[id]; ok {
			sel.Typed = append(sel.Typed, c)
			continue
		}
		if c, ok := inter[id]; ok {
			sel.Inter = append(sel.Inter, c)
			continue
		}
		if c, ok := flow[id]; ok {
			sel.Flow = append(sel.Flow, c)
			continue
		}
		return Selection{}, fmt.Errorf("analyzers: unknown check %q", id)
	}
	return sel, nil
}

// Load type-checks the directories matched by the given package
// patterns (same pattern language and skip rules as Run) and returns
// one TypedPackage per directory, sorted by directory.
func Load(patterns []string) ([]*TypedPackage, error) {
	dirs, err := expandPatterns(patterns)
	if err != nil {
		return nil, err
	}
	l := newLoader()
	var pkgs []*TypedPackage
	for _, dir := range dirs {
		p, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// RunTyped is Run for semantic checks: it loads the matched packages
// with full type information and lints every file, honoring the same
// //lint:ignore directives. Malformed directives are not re-reported
// here; the syntactic run owns badignore.
func RunTyped(patterns []string, checks []TypedCheck) (Result, error) {
	pkgs, err := Load(patterns)
	if err != nil {
		return Result{}, err
	}
	var res Result
	for _, p := range pkgs {
		for _, f := range p.Files {
			res.Diags = append(res.Diags, LintTypedFile(f, checks)...)
			res.Files++
		}
	}
	sortDiags(res.Diags)
	return res, nil
}

// LintTypedFile runs the semantic checks over one loaded file and
// applies its suppression directives. Exposed for the golden tests.
func LintTypedFile(f *TypedFile, checks []TypedCheck) []Diagnostic {
	dirs, _ := parseIgnores(&f.File)
	var diags []Diagnostic
	for _, c := range checks {
		c := c
		timeCheck(c.ID, func() { diags = append(diags, c.Run(f)...) })
	}
	diags = suppress(diags, dirs)
	sortDiags(diags)
	return diags
}

// module is one enclosing module: its root directory and module path.
type module struct {
	root string // absolute
	path string
}

// loader memoizes type-checked packages across one Load/RunTyped call
// so shared dependencies are checked once.
type loader struct {
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*TypedPackage // by absolute directory
	loading map[string]bool
	mods    map[string]*module // by absolute directory
}

func newLoader() *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*TypedPackage{},
		loading: map[string]bool{},
		mods:    map[string]*module{},
	}
}

// moduleFor finds the module enclosing an absolute directory by walking
// up to the nearest go.mod.
func (l *loader) moduleFor(abs string) (*module, error) {
	if m, ok := l.mods[abs]; ok {
		return m, nil
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err == nil {
		path := modulePath(data)
		if path == "" {
			return nil, fmt.Errorf("analyzers: %s has no module line", filepath.Join(abs, "go.mod"))
		}
		m := &module{root: abs, path: path}
		l.mods[abs] = m
		return m, nil
	}
	parent := filepath.Dir(abs)
	if parent == abs {
		return nil, fmt.Errorf("analyzers: no go.mod found above %s", abs)
	}
	m, err := l.moduleFor(parent)
	if err != nil {
		return nil, err
	}
	l.mods[abs] = m
	return m, nil
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod []byte) string {
	sc := bufio.NewScanner(bytes.NewReader(gomod))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// loadDir parses and type-checks the lintable files of one directory.
func (l *loader) loadDir(dir string) (*TypedPackage, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("analyzers: %w", err)
	}
	if p, ok := l.pkgs[abs]; ok {
		return p, nil
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("analyzers: import cycle through %s", dir)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	mod, err := l.moduleFor(abs)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(mod.root, abs)
	if err != nil {
		return nil, fmt.Errorf("analyzers: %w", err)
	}
	importPath := mod.path
	if rel != "." {
		importPath = mod.path + "/" + filepath.ToSlash(rel)
	}

	// Diagnostics carry dir verbatim, so prefer a working-directory-
	// relative rendering even when the package was first reached through
	// the importer (which resolves by absolute path): workflow
	// annotations and baselines need paths that mean something outside
	// this machine.
	display := dir
	if filepath.IsAbs(display) {
		if wd, err := os.Getwd(); err == nil {
			if rel, err := filepath.Rel(wd, display); err == nil && rel != ".." &&
				!strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
				display = rel
			}
		}
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analyzers: %w", err)
	}
	var paths []string
	var asts []*ast.File
	for _, e := range entries {
		if e.IsDir() || !lintableFile(e.Name()) {
			continue
		}
		path := filepath.Join(display, e.Name())
		af, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analyzers: %w", err)
		}
		paths = append(paths, path)
		asts = append(asts, af)
	}
	if len(asts) == 0 {
		return nil, fmt.Errorf("analyzers: no lintable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: &modImporter{l: l, mod: mod}}
	tpkg, err := conf.Check(importPath, l.fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("analyzers: type-checking %s: %w", dir, err)
	}

	p := &TypedPackage{Dir: display, Path: importPath, Fset: l.fset, Types: tpkg, Info: info}
	for i := range asts {
		p.Files = append(p.Files, &TypedFile{
			File: File{
				Fset:     l.fset,
				AST:      asts[i],
				Path:     paths[i],
				Pkg:      asts[i].Name.Name,
				Siblings: asts,
			},
			Package: p,
		})
	}
	l.pkgs[abs] = p
	return p, nil
}

// modImporter resolves the imports of one package: module-internal
// paths map to directories under the module root and are type-checked
// from source by the loader; everything else is delegated to the
// standard-library source importer.
type modImporter struct {
	l   *loader
	mod *module
}

func (m *modImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == m.mod.path {
		p, err := m.l.loadDir(m.mod.root)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if sub, ok := strings.CutPrefix(path, m.mod.path+"/"); ok {
		p, err := m.l.loadDir(filepath.Join(m.mod.root, filepath.FromSlash(sub)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return m.l.std.Import(path)
}
