package analyzers

import (
	"go/ast"
	"go/token"
)

// This file is the foundation of the fourth (flow-sensitive) layer: a
// per-function control-flow graph over go/ast. Each function body is
// split into basic blocks — maximal straight-line statement runs — with
// explicit edges for if/for/range/switch/select, labeled break and
// continue, goto, and the terminating calls (return, panic, os.Exit,
// log.Fatal*). The graph is deliberately simple: statements stay as
// ast.Node values in evaluation order, conditions are recorded on the
// branching block so dataflow clients can refine state along true/false
// edges, and loop membership is computed from the graph itself (Tarjan
// SCC), so goto-formed loops count as loops too.

// Block is one basic block: nodes in evaluation order, successor and
// predecessor edges, and — when the block ends in a two-way branch —
// the condition expression, with Succs[0] the true edge and Succs[1]
// the false edge.
type Block struct {
	Index int
	Nodes []ast.Node
	// Cond is the branch condition when this block ends in a two-way
	// conditional (if or for-with-condition); nil otherwise. When set,
	// Succs[0] is the edge taken when Cond is true and Succs[1] the
	// edge when it is false.
	Cond  ast.Expr
	Succs []*Block
	Preds []*Block
	// InLoop is true when the block lies on a cycle of the graph
	// (including one-block self loops).
	InLoop bool
}

// CFG is the control-flow graph of a single function body.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	// Exit is the single synthetic exit block: return statements,
	// terminating calls, and falling off the end all flow here.
	Exit *Block

	blockOf map[ast.Node]*Block
}

// BlockOf returns the basic block holding a statement-level node, or
// nil when the node was not placed (e.g. it is nested inside another
// recorded statement).
func (g *CFG) BlockOf(n ast.Node) *Block { return g.blockOf[n] }

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{blockOf: map[ast.Node]*Block{}}
	b := &cfgBuilder{g: g}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmtList(body.List)
	b.seal(g.Exit)
	g.markLoops()
	return g
}

// frame is one enclosing breakable construct: loops carry both break
// and continue targets, switch/select only break.
type frame struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select
}

type cfgBuilder struct {
	g *CFG
	// cur is the block under construction; nil after a terminator
	// (return/break/goto/...) until the next reachable join point.
	cur    *Block
	frames []frame
	labels map[string]*Block // label name -> target block (goto/labeled stmt)
	// pendingLabel is set while building the statement of a
	// LabeledStmt so the loop/switch it labels registers the name on
	// its frame.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// seal ends the current block with an edge to the given successor (if
// control can reach the end of the current block at all).
func (b *cfgBuilder) seal(to *Block) {
	if b.cur != nil {
		b.edge(b.cur, to)
	}
	b.cur = nil
}

// add places a node in the current block, opening an unreachable block
// if control cannot reach it (dead code after return/break/goto).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
	b.g.blockOf[n] = b.cur
}

func (b *cfgBuilder) labelBlock(name string) *Block {
	if b.labels == nil {
		b.labels = map[string]*Block{}
	}
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findFrame returns the innermost frame matching the label (any frame
// when label is empty); loop-only constrains to frames with a continue
// target.
func (b *cfgBuilder) findFrame(label string, loopOnly bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if loopOnly && f.cont == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, b.takeLabel())
	case *ast.RangeStmt:
		b.rangeStmt(s, b.takeLabel())
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body, b.takeLabel())
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Body, b.takeLabel())
		// The per-clause binding (x := y.(type)) travels with the
		// head; clause-local refinement is beyond this graph.
	case *ast.SelectStmt:
		b.selectStmt(s, b.takeLabel())
	case *ast.LabeledStmt:
		target := b.labelBlock(s.Label.Name)
		b.seal(target)
		b.cur = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.seal(b.g.Exit)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isTerminatingCall(call) {
			b.seal(b.g.Exit)
		}
	case *ast.EmptyStmt:
		// nothing
	default:
		// DeclStmt, AssignStmt, IncDecStmt, SendStmt, DeferStmt,
		// GoStmt, ...: straight-line nodes. Deferred calls run at
		// function exit, not here; the defer site still evaluates its
		// arguments, so the statement stays in evaluation order.
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	head := b.cur
	head.Cond = s.Cond
	then := b.newBlock()
	after := b.newBlock()
	b.edge(head, then) // true edge first
	var elseB *Block
	if s.Else != nil {
		elseB = b.newBlock()
		b.edge(head, elseB)
	} else {
		b.edge(head, after)
	}
	b.cur = then
	b.stmtList(s.Body.List)
	b.seal(after)
	if s.Else != nil {
		b.cur = elseB
		b.stmt(s.Else)
		b.seal(after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	b.seal(head)
	after := b.newBlock()
	body := b.newBlock()
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
		head.Cond = s.Cond
		b.edge(head, body)  // true edge
		b.edge(head, after) // false edge
	} else {
		b.edge(head, body)
	}
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		cont = post
	}
	b.frames = append(b.frames, frame{label: label, brk: after, cont: cont})
	b.cur = body
	b.stmtList(s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	b.seal(cont)
	if post != nil {
		b.cur = post
		b.add(s.Post)
		b.seal(head)
	}
	b.cur = after
	// `for {}` with no break leaves after unreachable; that is the
	// correct graph.
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock()
	b.seal(head)
	// The whole RangeStmt sits in the head: the range expression is
	// evaluated there and the key/value variables are (re)assigned on
	// every iteration.
	b.cur = head
	b.cur.Nodes = append(b.cur.Nodes, s)
	b.g.blockOf[s] = head
	body := b.newBlock()
	after := b.newBlock()
	b.edge(head, body)
	b.edge(head, after)
	b.frames = append(b.frames, frame{label: label, brk: after, cont: head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	b.seal(head)
	b.cur = after
}

func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, label string) {
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	head := b.cur
	after := b.newBlock()
	b.frames = append(b.frames, frame{label: label, brk: after})

	// Create all clause blocks first so fallthrough can edge forward.
	var clauses []*ast.CaseClause
	var blocks []*Block
	hasDefault := false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauses = append(clauses, cc)
		blk := b.newBlock()
		blocks = append(blocks, blk)
		b.edge(head, blk)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	for i, cc := range clauses {
		blk := blocks[i]
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
			b.g.blockOf[e] = blk
		}
		b.cur = blk
		fallsThrough := false
		for _, cs := range cc.Body {
			if br, ok := cs.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				continue
			}
			b.stmt(cs)
		}
		if fallsThrough && i+1 < len(blocks) {
			b.seal(blocks[i+1])
		} else {
			b.seal(after)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	head := b.cur
	after := b.newBlock()
	b.frames = append(b.frames, frame{label: label, brk: after})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.seal(after)
	}
	// A select with no cases blocks forever; every real select reaches
	// after only through a clause.
	if len(s.Body.List) == 0 {
		b.edge(head, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if f := b.findFrame(label, false); f != nil {
			b.seal(f.brk)
		} else {
			b.cur = nil
		}
	case token.CONTINUE:
		if f := b.findFrame(label, true); f != nil {
			b.seal(f.cont)
		} else {
			b.cur = nil
		}
	case token.GOTO:
		if label != "" {
			b.seal(b.labelBlock(label))
		} else {
			b.cur = nil
		}
	case token.FALLTHROUGH:
		// Handled structurally in switchStmt; stray fallthrough (which
		// would not compile) is ignored.
	}
}

// isTerminatingCall reports whether a call never returns: panic,
// os.Exit, runtime.Goexit, and the log.Fatal family.
func isTerminatingCall(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fn.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fn.Sel.Name {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}

// markLoops sets InLoop on every block lying on a cycle, via Tarjan's
// strongly-connected-components algorithm (iterative): any SCC with
// more than one block is a loop, as is a single block with a self edge.
func (g *CFG) markLoops() {
	n := len(g.Blocks)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0

	type item struct {
		v  int
		si int // next successor to visit
	}
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		work := []item{{v: start}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(work) > 0 {
			it := &work[len(work)-1]
			v := it.v
			if it.si < len(g.Blocks[v].Succs) {
				w := g.Blocks[v].Succs[it.si].Index
				it.si++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, item{v: w})
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
				continue
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				// v roots an SCC; pop it.
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				inLoop := len(comp) > 1
				if !inLoop {
					for _, s := range g.Blocks[v].Succs {
						if s.Index == v {
							inLoop = true
							break
						}
					}
				}
				if inLoop {
					for _, w := range comp {
						g.Blocks[w].InLoop = true
					}
				}
			}
		}
	}
}

// postorder returns the blocks reachable from Entry in depth-first
// postorder; reversing it gives the forward-dataflow iteration order.
func (g *CFG) postorder() []*Block {
	seen := make([]bool, len(g.Blocks))
	var out []*Block
	type item struct {
		b  *Block
		si int
	}
	work := []item{{b: g.Entry}}
	seen[g.Entry.Index] = true
	for len(work) > 0 {
		it := &work[len(work)-1]
		if it.si < len(it.b.Succs) {
			s := it.b.Succs[it.si]
			it.si++
			if !seen[s.Index] {
				seen[s.Index] = true
				work = append(work, item{b: s})
			}
			continue
		}
		out = append(out, it.b)
		work = work[:len(work)-1]
	}
	return out
}
