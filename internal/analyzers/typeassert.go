package analyzers

import (
	"go/ast"
	"go/types"
)

// checkTypeAssert flags single-result type assertions: x.(T) outside
// the v, ok := form panics on the first unexpected dynamic type, which
// in this codebase means a scheduler or campaign run dying mid-flight
// instead of reporting a typed error. The message names the syntactic
// context (return, call argument, assignment, expression) so the
// rewrite is obvious.
func checkTypeAssert() TypedCheck {
	const id = "typeassert"
	return TypedCheck{
		ID:  id,
		Doc: "type assertions must use the v, ok := comma-ok form; a bare x.(T) panics at runtime on an unexpected dynamic type",
		Run: func(f *TypedFile) []Diagnostic {
			var diags []Diagnostic

			// Assertions whose result count makes them safe: the
			// comma-ok form and the type-switch guard.
			safe := map[*ast.TypeAssertExpr]bool{}
			parent := map[ast.Node]ast.Node{}
			var stack []ast.Node
			ast.Inspect(f.AST, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				if len(stack) > 0 {
					parent[n] = stack[len(stack)-1]
				}
				stack = append(stack, n)
				switch n := n.(type) {
				case *ast.AssignStmt:
					if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
						if ta, ok := n.Rhs[0].(*ast.TypeAssertExpr); ok {
							safe[ta] = true
						}
					}
				case *ast.ValueSpec:
					if len(n.Names) == 2 && len(n.Values) == 1 {
						if ta, ok := n.Values[0].(*ast.TypeAssertExpr); ok {
							safe[ta] = true
						}
					}
				}
				return true
			})

			ast.Inspect(f.AST, func(n ast.Node) bool {
				ta, ok := n.(*ast.TypeAssertExpr)
				if !ok || ta.Type == nil || safe[ta] {
					return true // ta.Type == nil is a type-switch guard
				}
				diags = append(diags, f.diag(ta.Pos(), id, SeverityError,
					"bare type assertion %s.(%s) %s; use the v, ok := form so an unexpected dynamic type cannot panic",
					exprString(ta.X), assertedType(f, ta), assertContext(parent, ta)))
				return true
			})
			return diags
		},
	}
}

// assertedType renders the asserted type, preferring go/types' view.
func assertedType(f *TypedFile, ta *ast.TypeAssertExpr) string {
	if tv, ok := f.Package.Info.Types[ta.Type]; ok && tv.Type != nil {
		return types.TypeString(tv.Type, types.RelativeTo(f.Package.Types))
	}
	return exprString(ta.Type)
}

// assertContext names the nearest enclosing construct of a bare
// assertion, walking the parent chain until a statement is found.
func assertContext(parent map[ast.Node]ast.Node, n ast.Node) string {
	for p := parent[n]; p != nil; p = parent[p] {
		switch p.(type) {
		case *ast.ReturnStmt:
			return "in a return statement"
		case *ast.CallExpr:
			return "as a call argument"
		case *ast.AssignStmt, *ast.ValueSpec:
			return "on the right-hand side of an assignment"
		case *ast.BlockStmt, *ast.FuncDecl, *ast.FuncLit:
			return "in an expression"
		}
	}
	return "in an expression"
}
