// Package analyzers is a stdlib-only static-analysis suite for this
// repository. It enforces the invariants the reproduction's credibility
// rests on — deterministic simulation paths (seeded RNGs, no wall
// clock), disciplined unit suffixes on dimensioned quantities, no exact
// float comparisons, no silently dropped errors, balanced mutexes, and
// joined goroutines — as machine-checked rules instead of convention.
//
// The suite is stdlib-only so the module stays buildable offline with
// no external dependencies, and has two layers: syntactic checks built
// directly on go/ast, go/parser and go/token (Check, Run), and semantic
// checks built on go/types (TypedCheck, RunTyped) fed by a loader that
// type-checks the module from source. Every check in either layer
// supports targeted suppression via
//
//	//lint:ignore <check> <reason>
//
// comments on (or immediately above) the flagged line, and pre-existing
// findings can be grandfathered in a baseline file (see Baseline).
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Severity classifies how a diagnostic should gate CI.
type Severity string

const (
	// SeverityError findings fail the lint run.
	SeverityError Severity = "error"
	// SeverityWarning findings are reported but advisory.
	SeverityWarning Severity = "warning"
)

// Diagnostic is one finding: where, which check, what, how bad.
type Diagnostic struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Check    string   `json:"check"`
	Message  string   `json:"message"`
	Severity Severity `json:"severity"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// File is the per-file analysis context handed to each check.
type File struct {
	Fset *token.FileSet
	AST  *ast.File
	Path string // path as walked, used verbatim in diagnostics
	Pkg  string // package name

	// Siblings exposes the other files of the same package so checks
	// can resolve package-local declarations (e.g. whether a called
	// function returns an error).
	Siblings []*ast.File
}

// diag builds a Diagnostic at the given position.
func (f *File) diag(pos token.Pos, check string, sev Severity, format string, args ...any) Diagnostic {
	p := f.Fset.Position(pos)
	return Diagnostic{
		File:     f.Path,
		Line:     p.Line,
		Col:      p.Column,
		Check:    check,
		Message:  fmt.Sprintf(format, args...),
		Severity: sev,
	}
}

// Check is one analyzer: an ID used in -checks selection, suppression
// comments and baseline entries, a one-line doc string, and the run
// function producing diagnostics for a single file.
type Check struct {
	ID  string
	Doc string
	Run func(f *File) []Diagnostic
}

// All returns every registered check, sorted by ID.
func All() []Check {
	cs := []Check{
		checkDroppedErr(),
		checkFloatEq(),
		checkGorLeak(),
		checkLockBalance(),
		checkNoDeterm(),
		checkSpanEnd(),
		checkUnitSuffix(),
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].ID < cs[j].ID })
	return cs
}

// Select returns the checks matching the given IDs (all of them when
// ids is empty) or an error naming any unknown ID.
func Select(ids []string) ([]Check, error) {
	all := All()
	if len(ids) == 0 {
		return all, nil
	}
	byID := make(map[string]Check, len(all))
	for _, c := range all {
		byID[c.ID] = c
	}
	var out []Check
	for _, id := range ids {
		c, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("analyzers: unknown check %q", id)
		}
		out = append(out, c)
	}
	return out, nil
}

// Sort orders diagnostics for stable output (file, line, col, check).
// The driver uses it after merging the syntactic and typed runs.
func Sort(ds []Diagnostic) { sortDiags(ds) }

// sortDiags orders diagnostics for stable output: file, line, col,
// check.
func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
}
