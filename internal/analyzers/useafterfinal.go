package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// useafterfinal flags methods called on a handle after it was
// finalized — Close, Stop, Cancel, End — on at least one path through
// the function. The check is seeded with the repo's own lifecycle
// types (obs spans whose End stamps the duration, cluster transports
// and clusters whose Close tears the wire down, the serve drain), and
// generalizes to any module-internal named type with a finalizer-named
// method. Revivers (Reopen, Reset, ...) return the handle to live
// state, a handful of read-only accessors (ID, Err, String, ...) stay
// legal after finalization, and `defer h.Close()` does not finalize at
// the defer site — the call runs at function exit.

var (
	finalizerNames = map[string]bool{
		"Close": true, "Stop": true, "Cancel": true, "End": true,
		"Shutdown": true,
	}
	reviverNames = map[string]bool{
		"Reopen": true, "Reset": true, "Open": true, "Restart": true,
		"Start": true,
	}
	// exemptNames are read-only accessors that stay meaningful on a
	// finalized handle — obs.Span.ID is the seed case: span IDs are
	// read for parent links after End.
	exemptNames = map[string]bool{
		"ID": true, "Err": true, "Error": true, "String": true,
		"Name": true, "State": true, "Stats": true, "Done": true,
	}
)

type finalFact struct {
	finalized bool
	pos       token.Pos // finalizer call site
	method    string
}

type finalState map[types.Object]finalFact

func (s finalState) clone() finalState {
	out := make(finalState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func checkUseAfterFinal() FlowCheck {
	return FlowCheck{
		ID: "useafterfinal",
		Doc: "method called on a handle after Close/Stop/Cancel/End on " +
			"some path (obs spans, cluster transports, serve drain, and " +
			"any module type with a finalizer method)",
		Run: runUseAfterFinal,
	}
}

type finalAnalysis struct {
	fn *FlowFunc
	// eligible maps each followed object to its handle type name (for
	// messages); objects that alias away (bare value reads outside a
	// method receiver or nil comparison) are removed up front.
	eligible map[types.Object]string
	diags    []Diagnostic
	report   bool
}

func runUseAfterFinal(fn *FlowFunc) []Diagnostic {
	a := &finalAnalysis{fn: fn, eligible: map[types.Object]string{}}
	a.collectEligible()
	if len(a.eligible) == 0 {
		return nil
	}
	problem := FlowProblem[finalState]{
		Entry:    func() finalState { return finalState{} },
		Transfer: a.transfer,
		Join:     joinFinal,
		Equal:    equalFinal,
	}
	in := ForwardFlow(fn.G, problem)
	a.report = true
	for _, b := range fn.G.Blocks {
		if st, ok := in[b]; ok {
			a.transfer(b, st)
		}
	}
	return a.diags
}

// moduleFirstSegment returns the first path element of the analyzed
// package's import path — the cheap module identity test that keeps
// std-lib types (net/http.Server and friends) out of the seed set.
func (a *finalAnalysis) moduleFirstSegment() string {
	p := a.fn.File.Package.Path
	if i := strings.Index(p, "/"); i >= 0 {
		return p[:i]
	}
	return p
}

// handleTypeName returns the display name of an eligible handle type
// ("" when the type does not qualify): a named type (or pointer to
// one) declared in this module, with at least one finalizer-named
// method in its method set.
func (a *finalAnalysis) handleTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	pkgPath := obj.Pkg().Path()
	first := pkgPath
	if i := strings.Index(pkgPath, "/"); i >= 0 {
		first = pkgPath[:i]
	}
	if first != a.moduleFirstSegment() {
		return ""
	}
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		if finalizerNames[ms.At(i).Obj().Name()] {
			return obj.Name()
		}
	}
	return ""
}

// collectEligible finds the local variables and parameters of handle
// type, then drops any that alias away: used as a bare value anywhere
// other than a method receiver, an assignment target, or a nil
// comparison.
func (a *finalAnalysis) collectEligible() {
	info := a.fn.File.Package.Info
	candidate := func(id *ast.Ident) types.Object {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return nil
		}
		return obj
	}
	ast.Inspect(a.fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := candidate(id); obj != nil {
				if name := a.handleTypeName(obj.Type()); name != "" {
					if _, seen := a.eligible[obj]; !seen {
						a.eligible[obj] = name
					}
				}
			}
		}
		return true
	})
	// Also cover parameters and receivers never mentioned in the body
	// is pointless — no use means no use-after-final — so body idents
	// suffice. Now drop aliasing uses.
	drop := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := candidate(id); obj != nil {
				delete(a.eligible, obj)
			}
		}
	}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Captured by a closure: the closure may call anything at
			// any time; stop following the captured handles.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					drop(id)
				}
				return true
			})
			return false
		case *ast.SelectorExpr:
			// h.Method / h.Field: receiver position, fine. Walk only
			// deeper bases (h.a.b keeps h in receiver position too).
			if _, ok := n.X.(*ast.Ident); ok {
				return false
			}
			return true
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if _, ok := l.(*ast.Ident); ok {
					continue // reassignment handled by the transfer
				}
				ast.Inspect(l, func(m ast.Node) bool { return visit(m) })
			}
			for _, r := range n.Rhs {
				// h on the right of an assignment is an alias escape
				// unless it is a call/selector chain.
				ast.Inspect(r, func(m ast.Node) bool { return visit(m) })
			}
			return false
		case *ast.BinaryExpr:
			// Comparisons against nil keep the handle followable.
			if isNilIdent(n.X) || isNilIdent(n.Y) {
				return false
			}
			return true
		case *ast.Ident:
			drop(n)
			return false
		}
		return true
	}
	for _, stmt := range a.fn.Body.List {
		walkAliasUses(stmt, visit)
	}
}

// walkAliasUses applies the alias visitor to every value-position use
// in a statement, skipping contexts that keep the handle followable.
func walkAliasUses(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, visit)
}

func (a *finalAnalysis) emit(n ast.Node, format string, args ...any) {
	if !a.report {
		return
	}
	a.diags = append(a.diags, a.fn.diagNode(n, "useafterfinal", SeverityError, fmt.Sprintf(format, args...)))
}

func (a *finalAnalysis) transfer(b *Block, in finalState) finalState {
	st := in.clone()
	for _, n := range b.Nodes {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// The deferred finalizer runs at function exit; arguments
			// are evaluated here but the handle stays live.
			continue
		case *ast.GoStmt:
			continue
		case *ast.AssignStmt:
			inspectOwn(n, func(m ast.Node) bool { return a.visitCall(m, st) })
			for _, l := range n.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					if obj := a.objFor(id); obj != nil {
						delete(st, obj) // reassigned: fresh handle
					}
				}
			}
		case *ast.RangeStmt:
			inspectOwn(n.X, func(m ast.Node) bool { return a.visitCall(m, st) })
		default:
			inspectOwn(n, func(m ast.Node) bool { return a.visitCall(m, st) })
		}
	}
	return st
}

func (a *finalAnalysis) objFor(id *ast.Ident) types.Object {
	info := a.fn.File.Package.Info
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return nil
	}
	if _, ok := a.eligible[obj]; !ok {
		return nil
	}
	return obj
}

// visitCall applies finalizer/reviver/use semantics to method calls on
// followed handles.
func (a *finalAnalysis) visitCall(n ast.Node, st finalState) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return true
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return true
	}
	obj := a.objFor(id)
	if obj == nil {
		return true
	}
	method := sel.Sel.Name
	switch {
	case finalizerNames[method]:
		st[obj] = finalFact{finalized: true, pos: call.Pos(), method: method}
	case reviverNames[method]:
		delete(st, obj)
	default:
		if f, ok := st[obj]; ok && f.finalized && !exemptNames[method] {
			a.emit(call, "%s.%s called on a path where %s.%s already ran (line %d)",
				id.Name, method, id.Name, f.method, a.fn.lineOf(f.pos))
		}
	}
	return true
}

func joinFinal(x, y finalState) finalState {
	out := x.clone()
	for obj, fy := range y {
		fx, ok := out[obj]
		if !ok || (fy.finalized && !fx.finalized) {
			out[obj] = fy
			continue
		}
		if fx.finalized && fy.finalized && fy.pos < fx.pos {
			out[obj] = fy
		}
	}
	return out
}

func equalFinal(x, y finalState) bool {
	if len(x) != len(y) {
		return false
	}
	for k, vx := range x {
		if vy, ok := y[k]; !ok || vx != vy {
			return false
		}
	}
	return true
}
