package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// parseFixture loads one testdata file as a single-file package, the
// way the runner would see it if its directory held nothing else.
func parseFixture(t *testing.T, path string) *File {
	t.Helper()
	fset := token.NewFileSet()
	af, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	return &File{
		Fset:     fset,
		AST:      af,
		Path:     path,
		Pkg:      af.Name.Name,
		Siblings: []*ast.File{af},
	}
}

// runOn runs a single check (by ID) over one fixture.
func runOn(t *testing.T, checkID, path string) []Diagnostic {
	t.Helper()
	checks, err := Select([]string{checkID})
	if err != nil {
		t.Fatalf("Select(%s): %v", checkID, err)
	}
	return LintFile(parseFixture(t, path), checks)
}

func TestGoldenDirtyFixtures(t *testing.T) {
	type want struct {
		line   int
		check  string
		substr string
	}
	cases := []struct {
		check string
		want  []want
	}{
		{check: "nodeterm", want: []want{
			{12, "nodeterm", "rand.Shuffle"},
			{16, "nodeterm", "rand.Float64"},
			{20, "nodeterm", "time.Now"},
			{21, "nodeterm", "time.Since"},
			{26, "nodeterm", "order-dependent"},
			{34, "nodeterm", "order-dependent"},
		}},
		{check: "unitsuffix", want: []want{
			{8, "unitsuffix", "Budget.Limit"},
			{9, "unitsuffix", "Budget.Used"},
			{14, "unitsuffix", "Transfer.Elapsed"},
			{23, "unitsuffix", "mixes units"},
			{27, "unitsuffix", "mixes units"},
			{31, "unitsuffix", "mixes units"},
		}},
		{check: "floateq", want: []want{
			{8, "floateq", "float operands"},
			{12, "floateq", "float operands"},
			{17, "floateq", "float operands"},
			{21, "floateq", "float operands"},
		}},
		{check: "droppederr", want: []want{
			{12, "droppederr", "discarded with _ ="},
			{16, "droppederr", "error return of persist ignored"},
			{20, "droppederr", "os.Open"},
			{21, "droppederr", "f.Close"},
		}},
		{check: "lockbalance", want: []want{
			{13, "lockbalance", "no defer"},
			{18, "lockbalance", "escapes before"},
			{27, "lockbalance", "c.mu.TryLock in tryLeak: the success path never releases"},
			{35, "lockbalance", "c.mu.TryLock in tryGuardLeak: the success path never releases"},
		}},
		{check: "gorleak", want: []want{
			{6, "gorleak", "no visible join"},
			{12, "gorleak", "no visible join"},
		}},
		{check: "spanend", want: []want{
			{22, "spanend", "discarded"},
			{26, "spanend", "discarded"},
			{30, "spanend", "return path before sp.End"},
			{39, "spanend", "no End on the fallthrough path"},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.check, func(t *testing.T) {
			path := filepath.Join("testdata", tc.check, "dirty.go")
			got := runOn(t, tc.check, path)
			if len(got) != len(tc.want) {
				t.Fatalf("%s: got %d finding(s), want %d:\n%s",
					path, len(got), len(tc.want), renderDiags(got))
			}
			for i, w := range tc.want {
				d := got[i]
				if d.Line != w.line || d.Check != w.check {
					t.Errorf("finding %d: got %s:%d [%s], want line %d [%s]",
						i, d.File, d.Line, d.Check, w.line, w.check)
				}
				if !strings.Contains(d.Message, w.substr) {
					t.Errorf("finding %d: message %q does not contain %q", i, d.Message, w.substr)
				}
				if d.Severity != SeverityError {
					t.Errorf("finding %d: severity %q, want %q", i, d.Severity, SeverityError)
				}
			}
		})
	}
}

func TestGoldenCleanFixtures(t *testing.T) {
	for _, check := range []string{"nodeterm", "unitsuffix", "floateq", "droppederr", "lockbalance", "gorleak", "spanend"} {
		t.Run(check, func(t *testing.T) {
			// Clean fixtures must survive the full suite, not just their
			// own check: a clean idiom that trips a neighboring check is
			// still a false positive.
			path := filepath.Join("testdata", check, "clean.go")
			got := LintFile(parseFixture(t, path), All())
			if len(got) != 0 {
				t.Fatalf("%s: want no findings, got:\n%s", path, renderDiags(got))
			}
		})
	}
}

func TestSuppressionDirectives(t *testing.T) {
	path := filepath.Join("testdata", "suppress", "file.go")
	got := runOn(t, "floateq", path)
	// Same-line, line-above, comma-list and wildcard directives silence
	// their comparisons; only the directive missing a reason leaks: a
	// badignore for the malformed comment and the floateq it failed to
	// suppress.
	if len(got) != 2 {
		t.Fatalf("want 2 findings, got:\n%s", renderDiags(got))
	}
	if got[0].Check != BadIgnoreID || got[0].Line != 26 {
		t.Errorf("got %s:%d [%s], want line 26 [%s]", got[0].File, got[0].Line, got[0].Check, BadIgnoreID)
	}
	if got[1].Check != "floateq" || got[1].Line != 27 {
		t.Errorf("got %s:%d [%s], want line 27 [floateq]", got[1].File, got[1].Line, got[1].Check)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		{File: "a.go", Line: 3, Check: "floateq", Message: "m1", Severity: SeverityError},
		{File: "a.go", Line: 9, Check: "floateq", Message: "m1", Severity: SeverityError},
		{File: "b.go", Line: 1, Check: "gorleak", Message: "m2", Severity: SeverityError},
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := NewBaseline(diags).Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if len(loaded.Findings) != 3 {
		t.Fatalf("loaded %d entries, want 3", len(loaded.Findings))
	}
	fresh, stale := loaded.Apply(diags)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("round trip: fresh=%d stale=%d, want 0/0", len(fresh), len(stale))
	}
}

func TestBaselineFreshAndStale(t *testing.T) {
	baseline := NewBaseline([]Diagnostic{
		{File: "a.go", Line: 3, Check: "floateq", Message: "m1"},
		{File: "gone.go", Line: 8, Check: "gorleak", Message: "paid down"},
	})
	now := []Diagnostic{
		// Same finding as the baseline's a.go entry, but on a different
		// line: baselines match on (file, check, message) so a shifted
		// finding stays grandfathered.
		{File: "a.go", Line: 7, Check: "floateq", Message: "m1"},
		{File: "c.go", Line: 2, Check: "droppederr", Message: "new finding"},
	}
	fresh, stale := baseline.Apply(now)
	if len(fresh) != 1 || fresh[0].File != "c.go" {
		t.Errorf("fresh = %+v, want only the c.go finding", fresh)
	}
	if len(stale) != 1 || stale[0].File != "gone.go" {
		t.Errorf("stale = %+v, want only the gone.go entry", stale)
	}
}

func TestBaselineMultisetBudget(t *testing.T) {
	baseline := NewBaseline([]Diagnostic{
		{File: "a.go", Check: "floateq", Message: "m1"},
	})
	now := []Diagnostic{
		{File: "a.go", Line: 1, Check: "floateq", Message: "m1"},
		{File: "a.go", Line: 5, Check: "floateq", Message: "m1"},
	}
	fresh, _ := baseline.Apply(now)
	if len(fresh) != 1 {
		t.Fatalf("one baseline entry must absorb exactly one of two identical findings; fresh=%d", len(fresh))
	}
}

func TestLoadBaselineMissingFile(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatalf("missing baseline must not be an error: %v", err)
	}
	if len(b.Findings) != 0 {
		t.Fatalf("missing baseline must be empty, got %d entries", len(b.Findings))
	}
}

func TestRunSkipsTestdata(t *testing.T) {
	res, err := Run([]string{"./..."}, All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Files == 0 {
		t.Fatal("Run lint surface is empty; expected the package's own files")
	}
	for _, d := range res.Diags {
		if strings.Contains(d.File, "testdata") {
			t.Errorf("testdata leaked into the lint surface: %s", d)
		}
	}
}

func TestRunExplicitDirectory(t *testing.T) {
	checks, err := Select([]string{"gorleak"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run([]string{filepath.Join("testdata", "gorleak")}, checks)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Files != 2 {
		t.Errorf("Files = %d, want 2 (dirty.go and clean.go)", res.Files)
	}
	if len(res.Diags) != 2 {
		t.Errorf("got %d finding(s), want the 2 from dirty.go:\n%s", len(res.Diags), renderDiags(res.Diags))
	}
}

func TestSelectUnknownCheck(t *testing.T) {
	if _, err := Select([]string{"nonsense"}); err == nil {
		t.Fatal("Select must reject unknown check IDs")
	}
}

func renderDiags(ds []Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString("  " + d.String() + "\n")
	}
	if b.Len() == 0 {
		return "  (none)\n"
	}
	return b.String()
}
