package analyzers

import (
	"strings"
)

// BadIgnoreID is the pseudo-check ID used for malformed suppression
// comments, so an ineffective //lint:ignore never fails silently.
const BadIgnoreID = "badignore"

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	line   int
	checks map[string]bool // check IDs covered; {"*": true} covers all
	reason string
}

// parseIgnores extracts the suppression directives of a file and emits
// badignore diagnostics for malformed ones (missing check list or
// missing reason — an ignore without a reason is a convention the suite
// exists to prevent).
func parseIgnores(f *File) ([]ignoreDirective, []Diagnostic) {
	var dirs []ignoreDirective
	var diags []Diagnostic
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			text = strings.TrimSuffix(text, "*/")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "lint:ignore") {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore"))
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				diags = append(diags, f.diag(c.Pos(), BadIgnoreID, SeverityError,
					"malformed suppression %q: want //lint:ignore <check>[,<check>] <reason>", c.Text))
				continue
			}
			checks := map[string]bool{}
			for _, id := range strings.Split(fields[0], ",") {
				checks[strings.TrimSpace(id)] = true
			}
			dirs = append(dirs, ignoreDirective{
				line:   f.Fset.Position(c.Pos()).Line,
				checks: checks,
				reason: strings.Join(fields[1:], " "),
			})
		}
	}
	return dirs, diags
}

// suppress filters out diagnostics covered by an ignore directive on
// the same line or the line immediately above, the two placements a
// human reads as "about this statement".
func suppress(diags []Diagnostic, dirs []ignoreDirective) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	covered := func(d Diagnostic) bool {
		for _, dir := range dirs {
			if dir.line != d.Line && dir.line != d.Line-1 {
				continue
			}
			if dir.checks["*"] || dir.checks[d.Check] {
				return true
			}
		}
		return false
	}
	out := diags[:0]
	for _, d := range diags {
		if !covered(d) {
			out = append(out, d)
		}
	}
	return out
}
