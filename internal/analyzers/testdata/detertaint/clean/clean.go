// Package detertaintclean mirrors the dirty detertaint idioms done
// right: seeds are threaded from configuration, randomness is built
// from explicit sources, and map order is sorted away before it can
// reach placement.
package detertaintclean

import (
	"math/rand"
	"sort"
	"time"
)

type Tracer struct{ seed int64 }

func NewTracer(seed int64) *Tracer { return &Tracer{seed: seed} }

type Ring struct{ seed int64 }

func NewRing(seed int64) *Ring { return &Ring{seed: seed} }

func (r *Ring) Add(name string) {}

// build threads a configured seed end-to-end; deriving related seeds
// arithmetically keeps them deterministic.
func build(cfgSeed int64) (*Tracer, *Ring) {
	return NewTracer(cfgSeed), NewRing(cfgSeed + 1)
}

// seededRand draws from an explicit source: reproducible by
// construction.
func seededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// sortedPlacement collects the members first and sorts them: map order
// never reaches the ring.
func sortedPlacement(replicas map[string]int, ring *Ring) {
	names := make([]string, 0, len(replicas))
	for name := range replicas {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ring.Add(name)
	}
}

// wallLatency reads the clock for measurement; durations are
// reporting, not seeds, and never reach a deterministic sink.
func wallLatency(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
