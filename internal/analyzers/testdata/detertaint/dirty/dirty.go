// Package detertaintdirty is the golden dirty fixture for the
// detertaint check: every source of nondeterminism flowing into a
// deterministic sink, directly and through function summaries.
package detertaintdirty

import (
	"math/rand"
	"time"
)

// Tracer and Ring mirror the repo's seed-deterministic constructs.
type Tracer struct{ seed int64 }

func NewTracer(seed int64) *Tracer { return &Tracer{seed: seed} }

type Ring struct{ seed int64 }

func NewRing(seed int64) *Ring { return &Ring{seed: seed} }

func (r *Ring) Add(name string)         {}
func (r *Ring) Owner(key string) string { return "" }

// wallSeed roots span identity in the wall clock: same run twice,
// different trace.
func wallSeed() *Tracer {
	return NewTracer(time.Now().UnixNano())
}

// globalRandSeed reseeds placement from the process-seeded global
// source.
func globalRandSeed() *Ring {
	return NewRing(rand.Int63())
}

// fieldWrite taints the seed field directly.
func fieldWrite(t *Tracer) {
	t.seed = time.Now().Unix()
}

// mapOrderPlacement adds members in map iteration order: the ring
// layout differs across runs.
func mapOrderPlacement(replicas map[string]int, ring *Ring) {
	for name := range replicas {
		ring.Add(name)
	}
}

// stamp launders the clock through a helper; the summary carries the
// taint back to the caller.
func stamp() int64 {
	return time.Now().UnixNano()
}

func viaHelper() *Ring {
	return NewRing(stamp())
}

// launder forwards its parameter into a seed; callers passing tainted
// values are flagged at their call sites via the parameter summary.
func launder(v int64) *Ring {
	return NewRing(v)
}

func indirect() *Ring {
	return launder(time.Now().UnixNano())
}

// reseed feeds the clock straight into the explicit rand sink.
func reseed() rand.Source {
	return rand.NewSource(time.Now().UnixNano())
}

// assignedTaint flows through a local variable before reaching the
// sink.
func assignedTaint() *Tracer {
	s := time.Now().UnixNano()
	shifted := s + 1
	return NewTracer(shifted)
}
