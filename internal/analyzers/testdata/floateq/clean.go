// Package fixtures holds comparisons the floateq check must accept.
package fixtures

import "math"

func intEqual(a, b int) bool {
	return a == b
}

func withinTolerance(a, b, eps float64) bool {
	return math.Abs(a-b) < eps
}

func stringEqual(a, b string) bool {
	return a == b
}
