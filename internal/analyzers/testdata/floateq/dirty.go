// Package fixtures exercises the floateq check: exact ==/!= between
// floating-point operands.
package fixtures

import "math"

func exactEqual(a, b float64) bool {
	return a == b
}

func sentinelCompare(x float64) bool {
	return x != 0.5
}

func inferredChain(x float64) bool {
	y := x * 2
	return y == 0
}

func mathCall(v float64) bool {
	return math.Sqrt(v) == 1
}
