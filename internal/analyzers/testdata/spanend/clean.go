// Package fixtures holds span lifecycles the spanend check must
// accept: defer End, straight-line End, End after attribute calls,
// and explicit handoffs that move ownership elsewhere.
package fixtures

type span struct{}

func (s *span) End(simS float64)          {}
func (s *span) SetAttr(key, value string) {}
func (s *span) SetTrack(track string)     {}

type tracer struct{}

func (t *tracer) Start(name string, simS float64) *span               { return &span{} }
func (t *tracer) StartChild(p *span, name string, simS float64) *span { return &span{} }

type runner struct {
	Trace *tracer
	root  *span
}

func (r *runner) deferredEnd(simS float64) {
	sp := r.Trace.Start("step", simS)
	defer sp.End(simS)
}

func (r *runner) deferredClosure(tr *tracer, simS float64) {
	sp := tr.Start("step", simS)
	defer func() {
		sp.End(simS)
	}()
}

func (r *runner) straightLine(tr *tracer, simS float64) {
	sp := tr.Start("step", simS)
	sp.SetAttr("phase", "compute")
	sp.SetTrack("rank:0")
	sp.End(simS)
}

func (r *runner) storedInField(simS float64) {
	r.root = r.Trace.Start("campaign", simS)
}

func (r *runner) returnedToCaller(tr *tracer, simS float64) *span {
	return tr.Start("step", simS)
}

func finish(sp *span, simS float64) { sp.End(simS) }

func (r *runner) handedToHelper(tr *tracer, simS float64) {
	sp := tr.StartChild(nil, "step", simS)
	finish(sp, simS)
}

func (r *runner) parentOfChild(tr *tracer, simS float64) {
	parent := tr.Start("outer", simS)
	child := tr.StartChild(parent, "inner", simS)
	child.End(simS)
	parent.End(simS)
}
