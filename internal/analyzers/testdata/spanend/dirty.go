// Package fixtures exercises the spanend check: every span below is
// started and then lost on some path without its End.
package fixtures

type span struct{}

func (s *span) End(simS float64)                {}
func (s *span) SetAttr(key, value string)       {}
func (s *span) SetTrack(track string)           {}
func startNoise(tr *tracer, simS float64) *span { return tr.Start("noise", simS) }

type tracer struct{}

func (t *tracer) Start(name string, simS float64) *span               { return &span{} }
func (t *tracer) StartChild(p *span, name string, simS float64) *span { return &span{} }

type runner struct {
	Trace *tracer
}

func (r *runner) discarded(simS float64) {
	r.Trace.Start("step", simS)
}

func (r *runner) blankAssign(tr *tracer, simS float64) {
	_ = tr.StartChild(nil, "step", simS)
}

func (r *runner) earlyReturn(tr *tracer, simS float64, skip bool) int {
	sp := tr.Start("step", simS)
	if skip {
		return -1
	}
	sp.End(simS)
	return 0
}

func (r *runner) neverEnded(simS float64) {
	sp := r.Trace.Start("step", simS)
	sp.SetAttr("phase", "compute")
}
