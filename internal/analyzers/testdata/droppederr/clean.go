// Package fixtures holds handled-error idioms the droppederr check
// must accept.
package fixtures

import (
	"os"
	"strconv"
)

func store(path string) error {
	return nil
}

func report() {}

func handled() (int, error) {
	if err := store("state.json"); err != nil {
		return 0, err
	}
	return strconv.Atoi("12")
}

func deferredClose() error {
	f, err := os.Open("state.json")
	if err != nil {
		return err
	}
	defer f.Close()
	report()
	return nil
}
