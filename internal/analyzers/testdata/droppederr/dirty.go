// Package fixtures exercises the droppederr check: every discard
// below must be flagged.
package fixtures

import "os"

func persist(path string) error {
	return nil
}

func discardExplicit() {
	_ = persist("state.json")
}

func discardBareCall() {
	persist("state.json")
}

func discardOpenErr() {
	f, _ := os.Open("state.json")
	f.Close()
}
