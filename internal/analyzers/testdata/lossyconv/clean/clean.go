// Package lossyconvclean holds the conversions the lossyconv check
// must accept: widening, integer-to-float, and conversions of untagged
// quantities such as loop indices.
package lossyconvclean

func widens(msgBytes int32) int64 {
	return int64(msgBytes)
}

func toFloat(haloBytes int) float64 {
	return float64(haloBytes)
}

func untagged(index int) int32 {
	return int32(index)
}

func sameWidth(eventCount int64) int {
	return int(eventCount)
}
