// Package lossyconvdirty is the golden dirty fixture for the lossyconv
// check: each lossy shape applied to a byte- or halo-count quantity.
package lossyconvdirty

func truncates(haloBytes float64) int {
	return int(haloBytes)
}

func narrows(msgBytes int64) int32 {
	return int32(msgBytes)
}

func flipsSign(eventCount int) uint64 {
	return uint64(eventCount)
}

func throughArithmetic(sendBytes, recvBytes int64) int32 {
	return int32(sendBytes + recvBytes)
}
