// Package typeassertclean holds the assertion forms the typeassert
// check must accept: comma-ok assignments and declarations, and the
// type-switch guard.
package typeassertclean

func commaOkAssign(v any) string {
	s, ok := v.(string)
	if !ok {
		return ""
	}
	return s
}

func commaOkDecl(v any) int {
	var n, ok = v.(int)
	if !ok {
		return 0
	}
	return n
}

func typeSwitch(v any) int {
	switch x := v.(type) {
	case int:
		return x
	case string:
		return len(x)
	default:
		return 0
	}
}
