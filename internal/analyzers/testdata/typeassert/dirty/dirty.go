// Package typeassertdirty is the golden dirty fixture for the
// typeassert check: a bare single-result assertion in each syntactic
// context the diagnostic names.
package typeassertdirty

import "fmt"

func asReturn(v any) string {
	return v.(string)
}

func asArgument(v any) {
	fmt.Println(v.(int))
}

func asAssignment(v any) string {
	var s string
	s = v.(string)
	return s
}

func asExpression(v any) bool {
	if v.(int) > 0 {
		return true
	}
	return false
}
