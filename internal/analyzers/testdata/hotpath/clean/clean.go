// Package hotpathclean holds code the hotpath check must not flag:
// the same patterns outside loops, in unmarked functions, or with the
// allocation hoisted or pre-sized.
package hotpathclean

func release() {}

func sink(v interface{}) {}

// coldLoop has every pattern but no //lint:hot mark.
func coldLoop(n int) []int {
	var s []int
	for i := 0; i < n; i++ {
		m := make(map[int]int)
		m[i] = i
		s = append(s, len(m))
		sink(i)
	}
	return s
}

// hoisted allocates once, outside the loop.
//
//lint:hot
func hoisted(n int) int {
	m := make(map[int]int)
	total := 0
	for i := 0; i < n; i++ {
		m[i] = i
		total += len(m)
	}
	return total
}

// preSized appends into capacity reserved up front.
//
//lint:hot
func preSized(n int) []int {
	s := make([]int, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, i)
	}
	return s
}

// deferAtExit defers outside the loop.
//
//lint:hot
func deferAtExit(n int) int {
	defer release()
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// passThrough forwards an existing interface value and spreads a slice
// through a variadic call: neither boxes anything new.
//
//lint:hot
func passThrough(n int, v interface{}, args []interface{}) {
	for i := 0; i < n; i++ {
		sink(v)
		variadic(args...)
	}
}

func variadic(vs ...interface{}) {}
