// Package hotpathdirty is the golden dirty fixture for the hotpath
// check: each allocation pattern inside a loop of a //lint:hot
// function.
package hotpathdirty

func release() {}

func sink(v interface{}) {}

//lint:hot
func deferInLoop(n int) {
	for i := 0; i < n; i++ {
		defer release()
	}
}

//lint:hot
func mapInLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		m := make(map[int]int)
		m[i] = i
		total += len(m)
	}
	return total
}

//lint:hot
func mapLiteralInLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		m := map[int]int{i: i}
		total += len(m)
	}
	return total
}

//lint:hot
func appendNoCap(n int) []int {
	var s []int
	for i := 0; i < n; i++ {
		s = append(s, i)
	}
	return s
}

//lint:hot
func closureInLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		f := func() int { return total }
		total += f()
	}
	return total
}

//lint:hot
func boxingInLoop(n int) {
	for i := 0; i < n; i++ {
		sink(i)
	}
}
