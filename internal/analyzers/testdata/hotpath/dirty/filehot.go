// filehot.go carries the file-level directive: every function in this
// file is hot, with no per-function mark.
//
//lint:hot
package hotpathdirty

func wholeFileHot(n int) {
	for i := 0; i < n; i++ {
		defer release()
	}
}
