// Package hotpathsuppressed verifies //lint:ignore works for hotpath
// findings: the closure below launches one worker per shard, not one
// per element.
package hotpathsuppressed

import "sync"

//lint:hot
func shards(n int, fn func(shard int)) {
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		s := s
		wg.Add(1)
		//lint:ignore hotpath one closure per shard, not per element
		go func() {
			defer wg.Done()
			fn(s)
		}()
	}
	wg.Wait()
}
