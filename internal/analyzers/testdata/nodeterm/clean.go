// Package fleet is a lint fixture: everything below follows the
// determinism rules and must stay silent.
package fleet

import (
	"math/rand"
	"sort"
	"time"
)

func shuffleSeeded(seed int64, xs []int) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

func stampInjected(now func() time.Time) time.Time {
	return now()
}

func renderSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
