// Package fleet is a lint fixture: its name places it in the
// deterministic set, so every construct below must be flagged.
package fleet

import (
	"fmt"
	"math/rand"
	"time"
)

func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

func drawGlobal() float64 {
	return rand.Float64()
}

func stampWall() float64 {
	start := time.Now()
	return time.Since(start).Seconds()
}

func renderCounts(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func printCounts() {
	m := map[string]int{"a": 1}
	for k, v := range m {
		fmt.Println(k, v)
	}
}
