// Package useafterfinaldirty is the golden dirty fixture for the
// useafterfinal check: methods reaching a handle after its finalizer
// on at least one path.
package useafterfinaldirty

type conn struct {
	closed bool
	n      int
}

func newConn() *conn { return &conn{} }

func (c *conn) Close()        { c.closed = true }
func (c *conn) Send(s string) { c.n += len(s) }
func (c *conn) Reopen()       { c.closed = false }
func (c *conn) ID() int       { return c.n }

// straightLine closes and keeps sending (every path).
func straightLine(c *conn) {
	c.Send("a")
	c.Close()
	c.Send("b")
}

// branchClose closes on one branch only; the send after the join is
// still a use-after-final on that path.
func branchClose(c *conn, flush bool) {
	if flush {
		c.Close()
	}
	c.Send("tail")
}

// loopClose closes at the end of an iteration; the next iteration's
// send runs on a finalized handle via the back edge.
func loopClose(c *conn, n int) {
	for i := 0; i < n; i++ {
		c.Send("x")
		c.Close()
	}
}
