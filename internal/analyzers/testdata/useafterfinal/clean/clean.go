// Package useafterfinalclean holds lifecycle idioms the useafterfinal
// check must not flag: deferred finalizers, revivers, exempt
// accessors, terminated paths, and reassignment.
package useafterfinalclean

type conn struct {
	closed bool
	n      int
}

func newConn() *conn { return &conn{} }

func (c *conn) Stop()         { c.closed = true }
func (c *conn) Send(s string) { c.n += len(s) }
func (c *conn) Reopen()       { c.closed = false }
func (c *conn) ID() int       { return c.n }

// deferredStop finalizes at function exit, not at the defer site.
func deferredStop(c *conn) {
	defer c.Stop()
	c.Send("a")
	c.Send("b")
}

// revived handles are live again after Reopen.
func revived(c *conn) {
	c.Stop()
	c.Reopen()
	c.Send("again")
}

// exemptAfterStop reads an accessor that stays meaningful on a
// finalized handle.
func exemptAfterStop(c *conn) int {
	c.Stop()
	return c.ID()
}

// stoppedPathReturns: the finalizing branch leaves the function, so the
// send below never runs on a closed handle.
func stoppedPathReturns(c *conn, done bool) {
	if done {
		c.Stop()
		return
	}
	c.Send("live")
}

// reassigned gets a fresh handle after stopping the old one.
func reassigned(c *conn) {
	c.Stop()
	c = newConn()
	c.Send("fresh")
}
