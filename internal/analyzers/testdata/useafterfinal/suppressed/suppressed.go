// Package useafterfinalsuppressed verifies //lint:ignore works for
// flow-sensitive lifecycle findings.
package useafterfinalsuppressed

type conn struct{ n int }

func (c *conn) Close()        { c.n = -1 }
func (c *conn) Send(s string) { c.n += len(s) }

// flushAfterClose sends a final farewell frame after Close on purpose:
// the wire stays readable until the peer acks.
func flushAfterClose(c *conn) {
	c.Close()
	//lint:ignore useafterfinal farewell frame is part of the close handshake
	c.Send("bye")
}
