// Package fixtures holds balanced locking idioms the lockbalance
// check must accept.
package fixtures

import "sync"

type gauge struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (g *gauge) deferredUnlock() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func (g *gauge) straightLine() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func (g *gauge) readSide() int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.n
}

func (g *gauge) deferredClosure() {
	g.mu.Lock()
	defer func() {
		g.n++
		g.mu.Unlock()
	}()
}

func (g *gauge) namedCleanup() {
	g.mu.Lock()
	cleanup := func() { g.mu.Unlock() }
	defer cleanup()
	g.n++
}

func (g *gauge) releaseEarly() int {
	g.mu.Lock()
	release := func() { g.mu.Unlock() }
	n := g.n
	release()
	return n
}

func (g *gauge) tryBalanced() bool {
	if g.mu.TryLock() {
		defer g.mu.Unlock()
		g.n++
		return true
	}
	return false
}

func (g *gauge) tryGuarded() int {
	if !g.mu.TryLock() {
		return -1
	}
	defer g.mu.Unlock()
	return g.n
}
