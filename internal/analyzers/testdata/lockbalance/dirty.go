// Package fixtures exercises the lockbalance check: every lock below
// escapes some path without its unlock.
package fixtures

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) leakLock() {
	c.mu.Lock()
	c.n++
}

func (c *counter) earlyReturn(skip bool) int {
	c.mu.Lock()
	if skip {
		return -1
	}
	c.mu.Unlock()
	return c.n
}

func (c *counter) tryLeak() bool {
	if c.mu.TryLock() {
		c.n++
		return true
	}
	return false
}

func (c *counter) tryGuardLeak() int {
	if !c.mu.TryLock() {
		return -1
	}
	c.n++
	return c.n
}
