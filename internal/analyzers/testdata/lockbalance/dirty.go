// Package fixtures exercises the lockbalance check: every lock below
// escapes some path without its unlock.
package fixtures

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) leakLock() {
	c.mu.Lock()
	c.n++
}

func (c *counter) earlyReturn(skip bool) int {
	c.mu.Lock()
	if skip {
		return -1
	}
	c.mu.Unlock()
	return c.n
}
