// Package nilerrsuppressed verifies //lint:ignore works for
// flow-sensitive findings: the overwrite below is deliberate.
package nilerrsuppressed

import "errors"

func step(s string) error {
	if s == "" {
		return errors.New("empty step")
	}
	return nil
}

// retryOverwrite drops the first attempt's error on purpose: only the
// final attempt's outcome matters.
func retryOverwrite() error {
	err := step("first")
	//lint:ignore nilerr only the last attempt's error is reported
	err = step("second")
	return err
}
