// Package nilerrdirty is the golden dirty fixture for the nilerr
// check: one function per rule.
package nilerrdirty

import "errors"

type handle struct{ name string }

func (h *handle) Name() string { return h.name }

func open(name string) (*handle, error) {
	if name == "" {
		return nil, errors.New("empty name")
	}
	return &handle{name: name}, nil
}

func step(s string) error {
	if s == "" {
		return errors.New("empty step")
	}
	return nil
}

// useOnErrPath dereferences the result on the branch where its
// companion error is known non-nil (rule 1).
func useOnErrPath() string {
	f, err := open("x")
	if err != nil {
		return f.Name()
	}
	return f.Name()
}

// overwrite assigns a second error over one that was never read
// (rule 2).
func overwrite() error {
	err := step("a")
	err = step("b")
	return err
}

// overwritePair loses the first call's error through a second
// multi-assign before anything read it (rule 2).
func overwritePair() (string, error) {
	v, err := open("a")
	w, err := open("b")
	return v.Name() + w.Name(), err
}

// dropped assigns a named error result that no return ever reads
// (rule 3).
func dropped() (n int, err error) {
	err = step("c")
	n = 1
	return n, nil
}
