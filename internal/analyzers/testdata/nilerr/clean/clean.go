// Package nilerrclean holds correct error flow the nilerr check must
// not flag: the checked-then-used idiom, the close-error-precedence
// idiom, reads through comparisons, escapes into closures, and bare
// returns of named results.
package nilerrclean

import "errors"

type handle struct{ name string }

func (h *handle) Name() string { return h.name }
func (h *handle) Close() error { return nil }
func (h *handle) write() error { return nil }

func open(name string) (*handle, error) {
	if name == "" {
		return nil, errors.New("empty name")
	}
	return &handle{name: name}, nil
}

func step(s string) error {
	if s == "" {
		return errors.New("empty step")
	}
	return nil
}

// checkedThenUsed is the canonical idiom: deref only on the nil-error
// path.
func checkedThenUsed() (string, error) {
	f, err := open("x")
	if err != nil {
		return "", err
	}
	return f.Name(), nil
}

// closePrecedence reads the close error on only one arm — the write
// error takes precedence — which is fine: some path reads it.
func closePrecedence(name string) error {
	f, err := open(name)
	if err != nil {
		return err
	}
	werr := f.write()
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// readInCondition consumes the error inside the if header.
func readInCondition() error {
	if err := step("x"); err != nil {
		return err
	}
	return nil
}

// escaped errors are read by the closure later; not tracked.
func escaped() func() error {
	err := step("x")
	return func() error { return err }
}

// bareReturn reads the named error result implicitly.
func bareReturn() (err error) {
	err = step("x")
	return
}
