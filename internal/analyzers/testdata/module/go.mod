module unitmod

go 1.22
