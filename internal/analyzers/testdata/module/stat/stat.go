// Package stat declares the named unit types the loader test resolves
// across a package boundary inside a synthetic module.
package stat

// Micros is a duration in microseconds.
type Micros float64

// Span converts a pair of raw timestamps to an elapsed duration.
func Span(startUS, endUS float64) Micros { return Micros(endUS - startUS) }
