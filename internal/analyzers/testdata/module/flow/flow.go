// Package flow consumes unitmod/stat across the module-internal
// package boundary the loader must resolve itself.
package flow

import "unitmod/stat"

// Window is the elapsed time of one sampling window.
func Window(beginUS, endUS float64) stat.Micros { return stat.Span(beginUS, endUS) }
