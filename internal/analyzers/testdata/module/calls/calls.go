// Package calls pins the call-graph builder's resolution rules: which
// edges it proves for interface methods, function values, goroutine
// launches and defers — and which calls it deliberately leaves
// unresolved.
package calls

// Store is the interface whose call sites must fan out to every
// loaded implementation.
type Store interface {
	Put(k string)
}

// MemStore implements Store with a pointer receiver.
type MemStore struct{ n int }

func (m *MemStore) Put(k string) { m.n++ }

// NullStore implements Store with a value receiver.
type NullStore struct{}

func (NullStore) Put(k string) {}

// WriteAll calls through the interface: the graph must list both
// implementations plus the abstract method.
func WriteAll(s Store, keys []string) {
	for _, k := range keys {
		s.Put(k)
	}
}

// record is a package-level function value: calls through it resolve
// to the literal it was initialized with.
var record = func(k string) {}

// Direct calls through the package-level function value.
func Direct(k string) {
	record(k)
}

// hooks carries a function-typed field; composite-literal
// initialization binds the candidate.
type hooks struct {
	onPut func(string)
}

func logPut(k string) {}

// Configured initializes the field; Fire calls through it.
func Configured() *hooks {
	return &hooks{onPut: logPut}
}

func (h *hooks) Fire(k string) {
	h.onPut(k)
}

// Spawn receives its callee as a parameter: the builder's documented
// blind spot — the call resolves to nothing.
func Spawn(job func()) {
	go job()
}

// Closed exercises defer and go edge kinds against declared callees.
func Closed(s *MemStore) {
	defer s.Put("end")
	go Direct("x")
	record("y")
}
