// Package lockhelddirty is the golden dirty fixture for the lockheld
// check: each class of blocking operation reached while a mutex is
// held, directly and through the call graph.
package lockhelddirty

import (
	"net/http"
	"sync"
	"time"
)

type server struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	wg sync.WaitGroup
}

// sendHeld sends on a channel between Lock and Unlock.
func (s *server) sendHeld() {
	s.mu.Lock()
	s.ch <- 1
	s.mu.Unlock()
}

// recvHeld receives while holding the read lock.
func (s *server) recvHeld() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return <-s.ch
}

// sleepHeld calls time.Sleep under a defer-held lock.
func (s *server) sleepHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// waitHeld blocks on a WaitGroup under the lock.
func (s *server) waitHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait()
}

// selectHeld waits on peers with no default while holding the lock.
func (s *server) selectHeld(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-done:
	case v := <-s.ch:
		_ = v
	}
}

// fetchHeld performs a network round trip under the lock.
func (s *server) fetchHeld(url string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// transitiveHeld reaches time.Sleep two calls down while holding the
// lock: the call graph, not the body, carries the evidence.
func (s *server) transitiveHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.backoff()
}

func (s *server) backoff() { s.nap() }

func (s *server) nap() { time.Sleep(time.Millisecond) }
