// Package lockheldclean mirrors the dirty lockheld idioms done right:
// the lock guards only in-memory state, and every blocking operation
// happens after the release.
package lockheldclean

import (
	"net/http"
	"sync"
	"time"
)

type server struct {
	mu      sync.Mutex
	ch      chan int
	wg      sync.WaitGroup
	pending []int
}

// sendReleased copies under the lock and communicates after it.
func (s *server) sendReleased() {
	s.mu.Lock()
	n := len(s.pending)
	s.mu.Unlock()
	s.ch <- n
}

// tryDrain uses a non-blocking select while holding the lock: with a
// default clause it cannot wait.
func (s *server) tryDrain() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		return v
	default:
		return 0
	}
}

// launchHeld starts a worker while holding the lock: a goroutine
// launch returns immediately, and the join happens after the release.
func (s *server) launchHeld() {
	s.mu.Lock()
	s.wg.Add(1)
	go s.worker()
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *server) worker() {
	defer s.wg.Done()
	time.Sleep(time.Millisecond)
}

// fetchReleased snapshots state under the lock and performs the round
// trip outside it.
func (s *server) fetchReleased(url string) error {
	s.mu.Lock()
	s.pending = append(s.pending, 1)
	s.mu.Unlock()
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// optimistic gives up instead of queueing: TryLock never blocks, and
// the guarded section stays in-memory.
func (s *server) optimistic() bool {
	if !s.mu.TryLock() {
		return false
	}
	defer s.mu.Unlock()
	s.pending = s.pending[:0]
	return true
}

// deferredClosure releases through a named cleanup closure; the
// blocking send happens only after it runs.
func (s *server) deferredClosure() {
	s.mu.Lock()
	cleanup := func() { s.mu.Unlock() }
	n := len(s.pending)
	cleanup()
	s.ch <- n
}
