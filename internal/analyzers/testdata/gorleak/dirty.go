// Package fixtures exercises the gorleak check: goroutines launched
// with no join in sight.
package fixtures

func fireAndForget() {
	go func() {
		churn()
	}()
}

func spawnNamed() {
	go churn()
}

func churn() {}
