// Package fixtures holds joined-goroutine idioms the gorleak check
// must accept.
package fixtures

import "sync"

func joinedByWaitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func joinedByChannel() int {
	done := make(chan int, 1)
	go func() {
		done <- 1
	}()
	return <-done
}
