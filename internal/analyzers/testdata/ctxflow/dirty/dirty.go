// Package ctxflowdirty is the golden dirty fixture for the ctxflow
// check: every way a request context can stop flowing, one function
// per rule.
package ctxflowdirty

import (
	"context"
	"net/http"
	"time"
)

// detachedTimeout creates a fresh root below a function that already
// receives a ctx (rule 1).
func detachedTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), time.Second)
}

// handlerTODO is the HTTP-handler shape of rule 1: the request carries
// the context, and the handler roots a fresh one anyway.
func handlerTODO(w http.ResponseWriter, r *http.Request) {
	process(context.TODO())
	w.WriteHeader(http.StatusNoContent)
}

func process(ctx context.Context) {
	<-ctx.Done()
}

// probe has no ctx of its own, but its only caller carries one — the
// Background() here cuts the chain (rule 2).
func probe() {
	process(context.Background())
}

func forward(ctx context.Context) {
	probe()
	_ = ctx
}

// pump sends in a loop with no ctx.Done() escape (rule 3).
func pump(ctx context.Context, in <-chan int, out chan<- int) {
	for v := range in {
		out <- v
	}
}

// drain receives in a loop with no ctx.Done() escape (rule 3).
func drain(ctx context.Context, in <-chan int) int {
	total := 0
	for i := 0; i < 8; i++ {
		total += <-in
	}
	return total
}

// waitLoop selects in a loop with neither a ctx.Done() case nor a
// default (rule 3).
func waitLoop(ctx context.Context, tick <-chan time.Time, done chan struct{}) {
	for {
		select {
		case <-tick:
		case <-done:
			return
		}
	}
}

// detachedBase is a package-level root: created in no function, so no
// finding here — but passing it instead of a live ctx is rule 4.
var detachedBase = context.Background()

// relay accepts a ctx and calls a ctx-accepting callee without
// threading it (rule 4).
func relay(ctx context.Context) {
	process(detachedBase)
}
