// Package ctxflowsuppressed verifies //lint:ignore works for
// interprocedural findings: the detachment below is deliberate and
// documented, so the ctxflow finding must not surface.
package ctxflowsuppressed

import "context"

// auditContext detaches on purpose: audit records must flush even when
// the request is cancelled.
func auditContext(ctx context.Context) context.Context {
	//lint:ignore ctxflow audit writes must survive request cancellation
	return context.Background()
}
