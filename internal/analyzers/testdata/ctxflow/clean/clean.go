// Package ctxflowclean mirrors the dirty ctxflow idioms done right:
// every context derives from the caller's, every loop has a Done()
// escape, and fresh roots exist only where no caller has a context to
// offer.
package ctxflowclean

import (
	"context"
	"net/http"
	"time"
)

// scopedTimeout derives the deadline from the caller's ctx, so the
// parent cancelling cancels this too.
func scopedTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, time.Second)
}

// handler threads the request context down.
func handler(w http.ResponseWriter, r *http.Request) {
	process(r.Context())
	w.WriteHeader(http.StatusNoContent)
}

func process(ctx context.Context) {
	<-ctx.Done()
}

// probe accepts the caller's ctx instead of rooting its own.
func probe(ctx context.Context) {
	process(ctx)
}

func forward(ctx context.Context) {
	probe(ctx)
}

// pump honors cancellation on both the receive and the send.
func pump(ctx context.Context, in <-chan int, out chan<- int) {
	for {
		select {
		case v, ok := <-in:
			if !ok {
				return
			}
			select {
			case out <- v:
			case <-ctx.Done():
				return
			}
		case <-ctx.Done():
			return
		}
	}
}

// poll is allowed a raw drain loop when it is not context-carrying and
// no caller has a context either.
func poll(in <-chan int) int {
	total := 0
	for v := range in {
		total += v
	}
	return total
}

// rootForBoot creates a fresh root legitimately: none of its callers
// carry a context (boot runs before any request exists).
func rootForBoot() context.Context {
	return context.Background()
}

func boot(in <-chan int) context.Context {
	if poll(in) < 0 {
		return nil
	}
	return rootForBoot()
}

// spin threads a context derived in the enclosing frame into the
// closure's callee — the closure sees ctx by capture, so the call
// counts as threaded even though the closure has no ctx parameter.
func spin(base context.Context) (stop func()) {
	ctx, cancel := context.WithCancel(base)
	done := make(chan struct{})
	go func() {
		defer close(done)
		process(ctx)
	}()
	return func() {
		cancel()
		<-done
	}
}
