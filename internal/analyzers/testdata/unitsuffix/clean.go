// Package fixtures holds unit-disciplined declarations the unitsuffix
// check must stay silent on.
package fixtures

// Meter is fully suffixed: the documented units appear in the names.
type Meter struct {
	BudgetUSD  float64 // maximum spend in dollars
	ElapsedUS  float64 // transfer time in microseconds
	Throughput float64 // dimensionless relative speedup
}

func sameUnit(aS, bS float64) float64 {
	return aS + bS
}

func productsMayMix(rateGBps, windowS float64) float64 {
	return rateGBps * windowS
}

func unsuffixedOperandsAreFree(count int, scale float64) float64 {
	return float64(count) * scale
}
