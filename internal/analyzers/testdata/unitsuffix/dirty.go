// Package fixtures exercises the unitsuffix check: mixed-unit
// arithmetic and exported float fields whose documented unit is
// missing from the name.
package fixtures

// Budget describes a job's spending envelope.
type Budget struct {
	Limit float64 // maximum spend in dollars
	Used  float64 // dollars already committed
}

// Transfer describes one measured message.
type Transfer struct {
	Elapsed float64 // transfer time in microseconds
}

// Window is a suffixed struct used by mixFields below.
type Window struct {
	SpanMS float64
}

func mixDimensions(durS, sizeBytes float64) float64 {
	return durS + sizeBytes
}

func mixScales(totalS, latencyUS float64) bool {
	return totalS > latencyUS
}

func mixFields(w Window, durS float64) bool {
	return durS < w.SpanMS
}
