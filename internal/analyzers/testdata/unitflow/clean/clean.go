// Package unitflowclean holds the idioms the unitflow check must
// accept: deliberate scale conversions, dimension-changing arithmetic
// stored under the dimension it produces, named unit types from another
// package (exercising the module-internal importer), and same-unit
// comparisons.
package unitflowclean

import "repro/internal/units"

// Literal scale factors erase the exact scale but keep the dimension,
// so converting microseconds to seconds by hand is fine.
func literalConversion(latencyUS float64) float64 {
	waitS := latencyUS * 1e-6
	return waitS
}

// The sanctioned helpers carry the target unit in their name.
func helperConversion(latencyUS float64) float64 {
	waitS := units.MicrosToSeconds(latencyUS)
	return waitS
}

// rate × time legitimately produces data.
func transferred(rateMBps, windowS float64) float64 {
	totalMB := rateMBps * windowS
	return totalMB
}

// data / rate legitimately produces time.
func moveTime(payloadBytes, linkMBps float64) float64 {
	waitS := payloadBytes / linkMBps
	return waitS
}

// Named unit types round-trip through their own conversion methods.
func typedConversion(d units.Seconds) units.Micros {
	return d.Micros()
}

// Comparing like against like is the whole point.
func within(budgetUSD, spentUSD float64) bool {
	return spentUSD <= budgetUSD
}
