// Package unitflowdirty is the golden dirty fixture for the unitflow
// check: one numbered site per finding family, each reachable only
// through type-aware propagation (the syntactic unitsuffix check sees
// none of them).
package unitflowdirty

// Sample is a record whose field suffix and doc comment disagree.
type Sample struct {
	// WindowMS is the averaging window in seconds.
	WindowMS float64
}

// Budget is the destination of the composite-literal contradiction.
type Budget struct {
	CapUSD float64
}

func mixDims(latencyS, payloadBytes float64) float64 {
	wait := latencyS
	return wait + payloadBytes
}

func mixScales(totalS, sliceMS float64) float64 {
	t := totalS
	return t - sliceMS
}

func storeWrongDim(latencyUS float64) float64 {
	var budgetUSD float64
	budgetUSD = latencyUS
	return budgetUSD
}

func storeRatio(baseS, optS float64) float64 {
	ratioS := baseS / optS
	return ratioS
}

func storeProduct(spanS float64) float64 {
	totalS := spanS * spanS
	return totalS
}

func accumulate(totalBytes, extraMS float64) float64 {
	totalBytes += extraMS
	return totalBytes
}

func build(costS float64) Budget {
	return Budget{CapUSD: costS}
}

func bill(amountUSD float64) float64 {
	return amountUSD
}

func callSite(elapsedS float64) float64 {
	return bill(elapsedS)
}

func waitUS(napS float64) float64 {
	return napS
}
