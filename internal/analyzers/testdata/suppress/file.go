// Package fixtures exercises //lint:ignore handling: same-line and
// previous-line suppressions, a comma list, a wildcard, and one
// malformed directive that must surface as badignore.
package fixtures

func sameLine(a, b float64) bool {
	return a == b //lint:ignore floateq fixture: exact comparison is the point
}

func lineAbove(a, b float64) bool {
	//lint:ignore floateq fixture: exact comparison is the point
	return a == b
}

func commaList(a, b float64) bool {
	//lint:ignore floateq,nodeterm fixture: both checks silenced
	return a == b
}

func wildcard(a, b float64) bool {
	//lint:ignore * fixture: everything on this line is fine
	return a == b
}

func missingReason(a, b float64) bool {
	//lint:ignore floateq
	return a == b
}
