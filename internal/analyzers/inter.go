package analyzers

import (
	"fmt"
	"go/token"
	"go/types"
	"strings"
)

// This file is the third layer's registration and runner: checks that
// see every loaded package at once, plus the call graph over them. It
// mirrors Check/TypedCheck — same ID namespace, same suppression and
// baseline machinery — but runs once over the whole surface rather
// than per file, because its properties (context flow, lock-held
// blocking, determinism taint) only exist across function boundaries.

// InterContext is the whole-surface analysis state handed to each
// interprocedural check.
type InterContext struct {
	Pkgs  []*TypedPackage
	Graph *CallGraph

	files map[string]*TypedFile // diagnostic path -> file
	fset  *token.FileSet
}

// newInterContext indexes the loaded surface for diagnostics and
// suppression lookup.
func newInterContext(pkgs []*TypedPackage) *InterContext {
	ic := &InterContext{
		Pkgs:  pkgs,
		Graph: BuildCallGraph(pkgs),
		files: map[string]*TypedFile{},
	}
	for _, p := range pkgs {
		ic.fset = p.Fset
		for _, f := range p.Files {
			ic.files[f.Path] = f
		}
	}
	return ic
}

// diagAt builds a Diagnostic at an arbitrary position of the loaded
// surface, attributing it to whichever file contains the position.
func (ic *InterContext) diagAt(pos token.Pos, check string, sev Severity, format string, args ...any) Diagnostic {
	p := ic.fset.Position(pos)
	return Diagnostic{
		File:     p.Filename,
		Line:     p.Line,
		Col:      p.Column,
		Check:    check,
		Message:  fmt.Sprintf(format, args...),
		Severity: sev,
	}
}

// onSurface reports whether a position lies in one of the loaded
// (pattern-matched) files — checks use it to keep findings off
// dependency packages pulled in only through imports.
func (ic *InterContext) onSurface(pos token.Pos) bool {
	_, ok := ic.files[ic.fset.Position(pos).Filename]
	return ok
}

// InterCheck is an interprocedural analyzer: one run over the whole
// loaded surface and its call graph.
type InterCheck struct {
	ID  string
	Doc string
	Run func(ic *InterContext) []Diagnostic
}

// AllInter returns every registered interprocedural check, sorted by
// ID.
func AllInter() []InterCheck {
	cs := []InterCheck{
		checkCtxFlow(),
		checkDeterTaint(),
		checkLockHeld(),
	}
	// Construction order above is already sorted; keep it that way.
	return cs
}

// RunInter is Run for interprocedural checks: load the matched
// packages, build the call graph, run every check, and apply each
// file's //lint:ignore directives to the findings that landed in it.
func RunInter(patterns []string, checks []InterCheck) (Result, error) {
	pkgs, err := Load(patterns)
	if err != nil {
		return Result{}, err
	}
	return runInterOver(pkgs, checks), nil
}

// runInterOver executes the interprocedural checks over an
// already-loaded surface.
func runInterOver(pkgs []*TypedPackage, checks []InterCheck) Result {
	ic := newInterContext(pkgs)
	var res Result
	for _, p := range pkgs {
		res.Files += len(p.Files)
	}
	var diags []Diagnostic
	for _, c := range checks {
		c := c
		timeCheck(c.ID, func() {
			for _, d := range c.Run(ic) {
				// Keep findings on the pattern-matched surface: summaries may
				// walk dependency packages, but their files are not lintable
				// here (no suppression context, not requested).
				if _, ok := ic.files[d.File]; ok {
					diags = append(diags, d)
				}
			}
		})
	}
	res.Diags = applyFileSuppressions(diags, ic.files)
	sortDiags(res.Diags)
	return res
}

// applyFileSuppressions filters diagnostics through the ignore
// directives of the files they landed in.
func applyFileSuppressions(diags []Diagnostic, files map[string]*TypedFile) []Diagnostic {
	byFile := map[string][]Diagnostic{}
	var order []string
	for _, d := range diags {
		if _, seen := byFile[d.File]; !seen {
			order = append(order, d.File)
		}
		byFile[d.File] = append(byFile[d.File], d)
	}
	var out []Diagnostic
	for _, path := range order {
		ds := byFile[path]
		if f, ok := files[path]; ok {
			dirs, _ := parseIgnores(&f.File)
			ds = suppress(ds, dirs)
		}
		out = append(out, ds...)
	}
	return out
}

// RunLayers executes one lint pass across all four layers with a
// single syntactic parse and a single type-checked load shared by the
// typed, interprocedural, and flow-sensitive layers — the entry
// cmd/lint uses so CI pays the loader cost once, not four times.
func RunLayers(patterns []string, sel Selection) (Result, error) {
	var res Result
	if len(sel.Syntactic) > 0 {
		var r Result
		var err error
		timeLayer("syntactic", func() { r, err = Run(patterns, sel.Syntactic) })
		if err != nil {
			return Result{}, err
		}
		res = r
	}
	if len(sel.Typed) > 0 || len(sel.Inter) > 0 || len(sel.Flow) > 0 {
		var pkgs []*TypedPackage
		var err error
		timeLayer("load", func() { pkgs, err = Load(patterns) })
		if err != nil {
			return Result{}, err
		}
		files := 0
		timeLayer("typed", func() {
			for _, p := range pkgs {
				for _, f := range p.Files {
					if len(sel.Typed) > 0 {
						res.Diags = append(res.Diags, LintTypedFile(f, sel.Typed)...)
					}
					files++
				}
			}
		})
		if len(sel.Inter) > 0 {
			timeLayer("inter", func() {
				ir := runInterOver(pkgs, sel.Inter)
				res.Diags = append(res.Diags, ir.Diags...)
			})
		}
		if len(sel.Flow) > 0 {
			timeLayer("flow", func() {
				fr := runFlowOver(pkgs, sel.Flow)
				res.Diags = append(res.Diags, fr.Diags...)
			})
		}
		if files > res.Files {
			res.Files = files
		}
	}
	sortDiags(res.Diags)
	return res, nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isHTTPRequestPtr reports whether t is *net/http.Request.
func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// signatureOf returns a node's signature (nil for literals without type
// info or unresolved externals).
func signatureOf(n *CallNode) *types.Signature {
	if n.Obj != nil {
		sig, _ := n.Obj.Type().(*types.Signature)
		return sig
	}
	if n.Lit != nil && n.File != nil {
		if tv, ok := n.File.Package.Info.Types[n.Lit]; ok {
			sig, _ := tv.Type.(*types.Signature)
			return sig
		}
	}
	return nil
}

// ctxParams returns the names of a node's context.Context parameters
// and *http.Request parameters (whose Context() method carries the
// request context). Empty when the node carries no context.
func ctxParams(n *CallNode) (ctxNames, reqNames []string) {
	sig := signatureOf(n)
	if sig == nil {
		return nil, nil
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		switch {
		case isContextType(p.Type()):
			ctxNames = append(ctxNames, p.Name())
		case isHTTPRequestPtr(p.Type()):
			reqNames = append(reqNames, p.Name())
		}
	}
	return ctxNames, reqNames
}

// carriesContext reports whether the node receives a context — a
// context.Context parameter or an *http.Request (HTTP handler shape).
func carriesContext(n *CallNode) bool {
	ctx, req := ctxParams(n)
	return len(ctx) > 0 || len(req) > 0
}

// shortName compresses a FullName for messages: "repro/internal/serve"
// becomes "serve".
func shortName(full string) string {
	if i := strings.LastIndex(full, "/"); i >= 0 {
		return full[i+1:]
	}
	return full
}
