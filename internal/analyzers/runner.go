package analyzers

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Result is one lint run over a set of packages.
type Result struct {
	Diags []Diagnostic // suppressed findings already filtered out
	Files int          // number of files analyzed
}

// Run lints the directories matched by the given package patterns. A
// pattern is either a directory path or a path ending in "/..." for a
// recursive walk (the familiar go-tool spelling). Test files and
// testdata, vendor, hidden and underscore directories are skipped:
// tests legitimately use wall clocks, exact comparisons against golden
// values and discarded errors, and testdata holds intentionally dirty
// fixtures.
func Run(patterns []string, checks []Check) (Result, error) {
	dirs, err := expandPatterns(patterns)
	if err != nil {
		return Result{}, err
	}
	var res Result
	for _, dir := range dirs {
		diags, n, err := lintDir(dir, checks)
		if err != nil {
			return Result{}, err
		}
		res.Diags = append(res.Diags, diags...)
		res.Files += n
	}
	sortDiags(res.Diags)
	return res, nil
}

// expandPatterns resolves patterns into a sorted, de-duplicated list of
// directories containing at least one non-test Go file.
func expandPatterns(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, p := range patterns {
		if rest, ok := strings.CutSuffix(p, "..."); ok {
			root := filepath.Clean(strings.TrimSuffix(rest, "/"))
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				if skipDir(d.Name()) && path != root {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("analyzers: walking %s: %w", p, err)
			}
			continue
		}
		info, err := os.Stat(p)
		if err != nil {
			return nil, fmt.Errorf("analyzers: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("analyzers: pattern %q is not a directory", p)
		}
		add(filepath.Clean(p))
	}
	sort.Strings(dirs)
	return dirs, nil
}

// skipDir reports whether a directory subtree is outside the lint
// surface.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// hasGoFiles reports whether dir directly contains a lintable Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && lintableFile(e.Name()) {
			return true
		}
	}
	return false
}

// lintableFile reports whether a file name is in scope.
func lintableFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// lintDir parses every lintable file of one directory as a package
// group and runs the checks over each file.
func lintDir(dir string, checks []Check) ([]Diagnostic, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("analyzers: %w", err)
	}
	fset := token.NewFileSet()
	type parsed struct {
		path string
		ast  *ast.File
	}
	var files []parsed
	for _, e := range entries {
		if e.IsDir() || !lintableFile(e.Name()) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		af, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, 0, fmt.Errorf("analyzers: %w", err)
		}
		files = append(files, parsed{path: path, ast: af})
	}
	asts := make([]*ast.File, len(files))
	for i := range files {
		asts[i] = files[i].ast
	}
	var diags []Diagnostic
	for i := range files {
		f := &File{
			Fset:     fset,
			AST:      files[i].ast,
			Path:     files[i].path,
			Pkg:      files[i].ast.Name.Name,
			Siblings: asts,
		}
		diags = append(diags, LintFile(f, checks)...)
	}
	return diags, len(files), nil
}

// LintFile runs the checks over one prepared file and applies its
// suppression directives. Exposed for the golden-file tests.
func LintFile(f *File, checks []Check) []Diagnostic {
	dirs, diags := parseIgnores(f)
	for _, c := range checks {
		c := c
		timeCheck(c.ID, func() { diags = append(diags, c.Run(f)...) })
	}
	diags = suppress(diags, dirs)
	sortDiags(diags)
	return diags
}
