package analyzers

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// This file registers the fourth layer: flow-sensitive checks that run
// per function over its control-flow graph. A FlowCheck sees one
// function at a time — declaration or literal — with type information,
// the CFG, and the hot-path annotation state resolved; the runner
// shares the typed load with the typed and interprocedural layers
// through RunLayers, so adding the layer costs no extra parse.

// HotDirective is the comment directive marking hot-path code:
// `//lint:hot` above the package clause marks every function in the
// file, above (or in the doc comment of) a function declaration marks
// that function. The hotpath check and the perf-budget tool both key
// off it.
const HotDirective = "lint:hot"

// FlowFunc is one function under flow-sensitive analysis.
type FlowFunc struct {
	File *TypedFile
	Decl *ast.FuncDecl // nil for a literal
	Lit  *ast.FuncLit  // nil for a declaration
	Body *ast.BlockStmt
	G    *CFG
	Hot  bool // function carries (or inherits) a //lint:hot mark
}

// Name renders the function's name for messages: "Step",
// "(*Sparse).Step", or "func literal".
func (fn *FlowFunc) Name() string {
	if fn.Decl == nil {
		return "func literal"
	}
	return funcDeclName(fn.Decl)
}

// funcDeclName renders a declaration as "Name" or "(Recv).Name" /
// "(*Recv).Name".
func funcDeclName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	recv := d.Recv.List[0].Type
	return "(" + exprString(recv) + ")." + d.Name.Name
}

// FlowCheck is a flow-sensitive analyzer: one run per function body
// over its CFG.
type FlowCheck struct {
	ID  string
	Doc string
	Run func(fn *FlowFunc) []Diagnostic
}

// AllFlow returns every registered flow-sensitive check, sorted by ID.
func AllFlow() []FlowCheck {
	cs := []FlowCheck{
		checkHotPath(),
		checkNilErr(),
		checkUseAfterFinal(),
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].ID < cs[j].ID })
	return cs
}

// hotMarks is the resolved //lint:hot annotation state of one file.
type hotMarks struct {
	fileHot bool
	lines   map[int]bool // lines carrying a directive
}

// hotMarksOf scans a file's comments for //lint:hot directives.
func hotMarksOf(f *File) hotMarks {
	m := hotMarks{lines: map[int]bool{}}
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if strings.TrimSpace(text) != HotDirective {
				continue
			}
			if c.End() <= f.AST.Package {
				m.fileHot = true
				continue
			}
			m.lines[f.Fset.Position(c.Pos()).Line] = true
		}
	}
	return m
}

// hot reports whether a declaration is marked hot: the file is hot, a
// directive sits on the line above the declaration, or one sits inside
// its doc comment.
func (m hotMarks) hot(d *ast.FuncDecl, fset *token.FileSet) bool {
	if m.fileHot {
		return true
	}
	if m.lines[fset.Position(d.Pos()).Line-1] {
		return true
	}
	if d.Doc != nil {
		start := fset.Position(d.Doc.Pos()).Line
		end := fset.Position(d.Doc.End()).Line
		for l := start; l <= end; l++ {
			if m.lines[l] {
				return true
			}
		}
	}
	return false
}

// flowFuncsOf builds one FlowFunc per function body in a file:
// declarations first, then every literal (each literal is analyzed as
// its own function, inheriting the enclosing declaration's hot mark).
func flowFuncsOf(f *TypedFile) []*FlowFunc {
	marks := hotMarksOf(&f.File)
	var fns []*FlowFunc
	addLits := func(root ast.Node, hot bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				fns = append(fns, &FlowFunc{
					File: f, Lit: lit, Body: lit.Body,
					G: BuildCFG(lit.Body), Hot: hot,
				})
			}
			return true
		})
	}
	for _, decl := range f.AST.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Body == nil {
				continue
			}
			hot := marks.hot(d, f.Fset)
			fns = append(fns, &FlowFunc{
				File: f, Decl: d, Body: d.Body,
				G: BuildCFG(d.Body), Hot: hot,
			})
			addLits(d.Body, hot)
		case *ast.GenDecl:
			// Literals in var initializers.
			addLits(d, marks.fileHot)
		}
	}
	return fns
}

// RunFlow is Run for flow-sensitive checks: load the matched packages
// and analyze every function, honoring //lint:ignore directives.
func RunFlow(patterns []string, checks []FlowCheck) (Result, error) {
	pkgs, err := Load(patterns)
	if err != nil {
		return Result{}, err
	}
	return runFlowOver(pkgs, checks), nil
}

// runFlowOver executes the flow-sensitive checks over an
// already-loaded surface.
func runFlowOver(pkgs []*TypedPackage, checks []FlowCheck) Result {
	var res Result
	files := map[string]*TypedFile{}
	var diags []Diagnostic
	for _, p := range pkgs {
		for _, f := range p.Files {
			files[f.Path] = f
			res.Files++
			for _, fn := range flowFuncsOf(f) {
				for _, c := range checks {
					c, fn := c, fn
					timeCheck(c.ID, func() { diags = append(diags, c.Run(fn)...) })
				}
			}
		}
	}
	res.Diags = applyFileSuppressions(diags, files)
	sortDiags(res.Diags)
	return res
}

// diagNode builds a Diagnostic at a node of the analyzed file.
func (fn *FlowFunc) diagNode(n ast.Node, check string, sev Severity, msg string) Diagnostic {
	p := fn.File.Fset.Position(n.Pos())
	return Diagnostic{
		File:     p.Filename,
		Line:     p.Line,
		Col:      p.Column,
		Check:    check,
		Message:  msg,
		Severity: sev,
	}
}

// inspectOwn walks a node but does not descend into function literals:
// a literal's body belongs to its own FlowFunc frame. The literal node
// itself is still visited, so checks can see the closure being built.
func inspectOwn(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			visit(m)
			return false
		}
		return visit(m)
	})
}

// lineOf returns the source line of a position.
func (fn *FlowFunc) lineOf(pos token.Pos) int {
	return fn.File.Fset.Position(pos).Line
}
