package analyzers

import (
	"go/ast"
	"go/types"
)

// checkCtxFlow enforces end-to-end context threading on the request
// paths the serving and cluster layers depend on for graceful shutdown:
// a request context that stops flowing is a probe or forward that
// outlives its deadline, or a drain that cannot interrupt what it is
// draining. Four rules, all scoped to functions that carry a context —
// a context.Context parameter or an *http.Request (HTTP handler shape):
//
//  1. context.Background()/context.TODO() created inside a
//     context-carrying function: the fresh root silently detaches
//     everything below it from cancellation.
//  2. The same creation in a function without a context, when every
//     caller in the call graph carries one: the function should accept
//     a ctx instead of cutting the chain (flagged at the creation).
//  3. A blocking channel operation inside a for-loop of a
//     context-carrying function with no ctx.Done() escape: raw
//     sends/receives, or a select with neither a Done() case nor a
//     default, can spin past cancellation forever.
//  4. A call to a loaded function that accepts a context.Context, made
//     from a context-carrying function, that does not pass anything
//     derived from the caller's context: the callee blocks under a
//     deadline the caller no longer controls.
//
// Derivation (rule 4) is a small forward dataflow: the caller's ctx
// parameters and r.Context() results seed the derived set, and any
// variable assigned from an expression mentioning a derived value
// joins it (context.WithTimeout(ctx, ...), sub-contexts, renames).
func checkCtxFlow() InterCheck {
	const id = "ctxflow"
	return InterCheck{
		ID: id,
		Doc: "request contexts must thread end-to-end: no Background()/TODO() below a ctx, " +
			"no ctx-blind blocking loops, ctx passed to every ctx-accepting callee",
		Run: func(ic *InterContext) []Diagnostic {
			var diags []Diagnostic
			for _, n := range ic.Graph.Nodes() {
				if n.External() || !ic.onSurface(n.posOf()) {
					continue
				}
				if nodeCarriesContext(n) {
					diags = append(diags, ctxRootFindings(ic, id, n)...)
					diags = append(diags, ctxLoopFindings(ic, id, n)...)
					diags = append(diags, ctxThreadFindings(ic, id, n)...)
				} else {
					diags = append(diags, ctxCallerFindings(ic, id, n)...)
				}
			}
			return diags
		},
	}
}

// nodeCarriesContext extends carriesContext to closures: a literal
// inherits its enclosing function's context access, since the ctx is in
// scope in its body.
func nodeCarriesContext(n *CallNode) bool {
	for cur := n; cur != nil; cur = cur.Enclosing {
		if carriesContext(cur) {
			return true
		}
	}
	return false
}

// contextRootCalls yields every context.Background()/TODO() call
// directly in a node's body (nested literals are their own nodes).
func contextRootCalls(n *CallNode, fn func(call *ast.CallExpr, which string)) {
	inspectOwnBody(n, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fnObj := calleeFunc(n, call); fnObj != nil {
			if pkg := fnObj.Pkg(); pkg != nil && pkg.Path() == "context" {
				if name := fnObj.Name(); name == "Background" || name == "TODO" {
					fn(call, "context."+name)
				}
			}
		}
		return true
	})
}

// ctxRootFindings is rule 1: fresh context roots below a context.
func ctxRootFindings(ic *InterContext, id string, n *CallNode) []Diagnostic {
	var diags []Diagnostic
	contextRootCalls(n, func(call *ast.CallExpr, which string) {
		diags = append(diags, ic.diagAt(call.Pos(), id, SeverityError,
			"%s in %s, which already carries a context; derive from it so cancellation reaches this path",
			which, n.Name()))
	})
	return diags
}

// ctxCallerFindings is rule 2: a context-less function creating a fresh
// root while every one of its (known, non-empty) callers carries a
// context. Closures are skipped — their callers are their definition
// sites, which rule 1 already covers via scope inheritance.
func ctxCallerFindings(ic *InterContext, id string, n *CallNode) []Diagnostic {
	if n.Lit != nil || len(n.In) == 0 {
		return nil
	}
	callers := map[*CallNode]bool{}
	for _, e := range n.In {
		callers[e.Caller] = true
	}
	for c := range callers {
		if !nodeCarriesContext(c) {
			return nil
		}
	}
	var diags []Diagnostic
	contextRootCalls(n, func(call *ast.CallExpr, which string) {
		diags = append(diags, ic.diagAt(call.Pos(), id, SeverityError,
			"%s in %s, but every caller (%d) carries a context; accept a ctx parameter instead of cutting the chain",
			which, n.Name(), len(callers)))
	})
	return diags
}

// inspectOwnBody walks a node's body without descending into nested
// function literals, which are separate graph nodes.
func inspectOwnBody(n *CallNode, fn func(ast.Node) bool) {
	if n.Body == nil {
		return
	}
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok && lit != n.Lit {
			return false
		}
		return fn(node)
	})
}

// calleeFunc resolves a call in n's body to its *types.Func via the
// file's type info (nil for func values and builtins).
func calleeFunc(n *CallNode, call *ast.CallExpr) *types.Func {
	if n.File == nil {
		return nil
	}
	info := n.File.Package.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// ctxLoopFindings is rule 3: blocking channel operations inside for
// loops with no ctx.Done() escape.
func ctxLoopFindings(ic *InterContext, id string, n *CallNode) []Diagnostic {
	var diags []Diagnostic
	inspectOwnBody(n, func(node ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := node.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		diags = append(diags, loopChanFindings(ic, id, n, body)...)
		return true
	})
	return diags
}

// loopChanFindings scans one loop body for ctx-blind blocking channel
// operations. Receives and sends that sit inside a select are judged by
// the select (Done case or default = fine); raw ones are flagged.
func loopChanFindings(ic *InterContext, id string, n *CallNode, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic
	var walk func(node ast.Node, insideSelect bool)
	walk = func(root ast.Node, insideSelect bool) {
		ast.Inspect(root, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.FuncLit:
				return false // separate frame
			case *ast.SelectStmt:
				if !selectHasDoneOrDefault(node) {
					diags = append(diags, ic.diagAt(node.Pos(), id, SeverityError,
						"select in a loop of %s has no ctx.Done() case and no default; cancellation cannot break the loop",
						n.Name()))
				}
				for _, clause := range node.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok {
						for _, s := range cc.Body {
							walk(s, true)
						}
					}
				}
				return false
			case *ast.SendStmt:
				if !insideSelect {
					diags = append(diags, ic.diagAt(node.Pos(), id, SeverityError,
						"blocking channel send in a loop of %s with no ctx.Done() escape; wrap in a select with ctx.Done()",
						n.Name()))
				}
			case *ast.UnaryExpr:
				if node.Op.String() == "<-" && !insideSelect && isChanRecv(n, node) {
					diags = append(diags, ic.diagAt(node.Pos(), id, SeverityError,
						"blocking channel receive in a loop of %s with no ctx.Done() escape; wrap in a select with ctx.Done()",
						n.Name()))
				}
			}
			return true
		})
	}
	walk(body, false)
	return diags
}

// isChanRecv confirms a unary <- really receives from a channel (the
// parser only ever builds <- as a receive, but type info also filters
// out the time.After-style one-shot waits we still want to flag — any
// receive blocks).
func isChanRecv(n *CallNode, e *ast.UnaryExpr) bool {
	if n.File == nil {
		return true
	}
	if tv, ok := n.File.Package.Info.Types[e.X]; ok {
		_, isChan := tv.Type.Underlying().(*types.Chan)
		return isChan
	}
	return true
}

// selectHasDoneOrDefault reports whether a select can escape without a
// peer: a default clause, or a receive from some ctx-ish Done()
// channel.
func selectHasDoneOrDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default
		}
		var expr ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			expr = comm.X
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				expr = comm.Rhs[0]
			}
		}
		un, ok := ast.Unparen(expr).(*ast.UnaryExpr)
		if !ok || un.Op.String() != "<-" {
			continue
		}
		if call, ok := ast.Unparen(un.X).(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				return true
			}
		}
	}
	return false
}

// ctxThreadFindings is rule 4: calls from a context-carrying function
// to a loaded ctx-accepting callee that pass no derived context.
func ctxThreadFindings(ic *InterContext, id string, n *CallNode) []Diagnostic {
	derived := derivedCtxObjects(n)
	if len(derived) == 0 {
		return nil // context exists but is unnamed (e.g. `_ context.Context`)
	}
	var diags []Diagnostic
	for _, e := range n.Out {
		if e.Kind != EdgeCall || e.Callee.External() || e.Callee.Obj == nil {
			continue
		}
		sig := signatureOf(e.Callee)
		if sig == nil || !signatureAcceptsContext(sig) {
			continue
		}
		if callPassesDerived(n, e.Site, derived) {
			continue
		}
		if argsContainFreshRoot(n, e.Site) {
			continue // rule 1 already flags the Background()/TODO() argument
		}
		diags = append(diags, ic.diagAt(e.Site.Pos(), id, SeverityError,
			"%s calls %s without threading its ctx (the callee accepts a context.Context); cancellation will not propagate",
			n.Name(), e.Callee.Name()))
	}
	return diags
}

// signatureAcceptsContext reports whether any parameter is a
// context.Context.
func signatureAcceptsContext(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// derivedCtxObjects runs the forward dataflow seeding from the node's
// (and its enclosing functions') context and request parameters,
// growing through assignments until fixpoint. The result is the set of
// variable objects holding a derived context, plus the request
// parameters whose .Context() derives one.
func derivedCtxObjects(n *CallNode) map[types.Object]bool {
	if n.File == nil {
		return nil
	}
	info := n.File.Package.Info
	derived := map[types.Object]bool{}

	// Seed: ctx/req parameters of the node and every enclosing frame
	// (closures see them by capture).
	var frames []*CallNode
	for cur := n; cur != nil; cur = cur.Enclosing {
		frames = append(frames, cur)
		sig := signatureOf(cur)
		if sig == nil {
			continue
		}
		params := sig.Params()
		for i := 0; i < params.Len(); i++ {
			p := params.At(i)
			if isContextType(p.Type()) || isHTTPRequestPtr(p.Type()) {
				derived[p] = true
			}
		}
	}
	if len(derived) == 0 {
		return nil
	}

	// Grow: x := <expr mentioning a derived object> adds x, for any
	// assignment in the node's own body or an enclosing frame's —
	// `ctx, cancel := context.WithCancel(base)` above a closure derives
	// a context the closure sees by capture.
	for changed := true; changed; {
		changed = false
		for _, fr := range frames {
			inspectOwnBody(fr, func(node ast.Node) bool {
				as, ok := node.(*ast.AssignStmt)
				if !ok {
					return true
				}
				rhsDerived := false
				for _, r := range as.Rhs {
					if exprMentionsDerived(info, r, derived) {
						rhsDerived = true
						break
					}
				}
				if !rhsDerived {
					return true
				}
				for _, l := range as.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						obj := info.Defs[id]
						if obj == nil {
							obj = info.Uses[id]
						}
						if obj != nil && !derived[obj] && isContextType(obj.Type()) {
							derived[obj] = true
							changed = true
						}
					}
				}
				return true
			})
		}
	}
	return derived
}

// exprMentionsDerived reports whether an expression references any
// derived object.
func exprMentionsDerived(info *types.Info, e ast.Expr, derived map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(node ast.Node) bool {
		if found {
			return false
		}
		if id, ok := node.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && derived[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// argsContainFreshRoot reports whether some argument of the call is (or
// contains) a context.Background()/TODO() call — already rule 1's
// finding when it appears inside a context-carrying function.
func argsContainFreshRoot(n *CallNode, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(node ast.Node) bool {
			if found {
				return false
			}
			inner, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fnObj := calleeFunc(n, inner); fnObj != nil {
				if pkg := fnObj.Pkg(); pkg != nil && pkg.Path() == "context" {
					if name := fnObj.Name(); name == "Background" || name == "TODO" {
						found = true
						return false
					}
				}
			}
			return true
		})
	}
	return found
}

// callPassesDerived reports whether any argument of the call mentions a
// derived context object.
func callPassesDerived(n *CallNode, call *ast.CallExpr, derived map[types.Object]bool) bool {
	if n.File == nil {
		return false
	}
	info := n.File.Package.Info
	for _, arg := range call.Args {
		if exprMentionsDerived(info, arg, derived) {
			return true
		}
	}
	// Method calls may thread ctx through the receiver's own state
	// (e.g. a struct field set from ctx earlier); the dataflow does not
	// track fields, so a receiver that mentions a derived object also
	// counts.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if exprMentionsDerived(info, sel.X, derived) {
			return true
		}
	}
	return false
}
