package analyzers

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// unitSuffixes maps the identifier suffixes this codebase uses for
// dimensioned quantities to a canonical unit. Two identifiers conflict
// when both carry a recognized suffix and the canonical units differ —
// that covers cross-dimension mistakes (seconds + bytes) and
// cross-scale mistakes within a dimension (seconds + microseconds),
// which are equally fatal to a performance model.
var unitSuffixes = map[string]string{
	// time
	"S": "s", "Sec": "s", "Secs": "s", "Seconds": "s",
	"MS": "ms", "Millis": "ms",
	"US": "us", "Micros": "us",
	"NS": "ns", "Nanos": "ns",
	"Hours": "h",
	// data volume
	"Bytes": "B", "Bits": "bit",
	"KB": "kB", "MB": "MB", "GB": "GB",
	"KiB": "KiB", "MiB": "MiB", "GiB": "GiB",
	// data rate
	"Bps": "B/s", "KBps": "kB/s", "MBps": "MB/s", "GBps": "GB/s",
	// money
	"USD": "USD", "Cents": "cents",
	// frequency
	"Hz": "Hz", "KHz": "kHz", "MHz": "MHz", "GHz": "GHz",
	// compute throughput
	"FLOPS": "FLOPS", "GFLOPS": "GFLOPS", "MFLOPS": "MFLOPS",
	"FLUPS": "FLUPS", "MFLUPS": "MFLUPS", "GFLUPS": "GFLUPS",
}

// suffixesByLength is unitSuffixes' keys, longest first, so MFLUPS
// matches before S.
var suffixesByLength = func() []string {
	keys := make([]string, 0, len(unitSuffixes))
	for k := range unitSuffixes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(keys[i]) != len(keys[j]) {
			return len(keys[i]) > len(keys[j])
		}
		return keys[i] < keys[j]
	})
	return keys
}()

// unitOf extracts the canonical unit of an identifier name from its
// suffix, or "" when the name carries none. The suffix must sit on a
// camel-case boundary: ComputeS and latencyUS match, MFLUPS does not
// match S (the preceding rune is upper case, so S is part of a larger
// word), and Steps does not match anything (lower-case tail).
func unitOf(name string) string {
	return suffixUnit(name, suffixesByLength, unitSuffixes)
}

// suffixUnit implements the camel-boundary suffix lookup of unitOf for
// an arbitrary suffix table (the typed unitflow check extends the
// syntactic vocabulary without changing it).
func suffixUnit(name string, suffixes []string, units map[string]string) string {
	for _, suf := range suffixes {
		if !strings.HasSuffix(name, suf) {
			continue
		}
		rest := name[:len(name)-len(suf)]
		if rest == "" {
			return units[suf]
		}
		last := rest[len(rest)-1]
		if last >= 'a' && last <= 'z' || last >= '0' && last <= '9' {
			return units[suf]
		}
	}
	return ""
}

// unitWords spots unit vocabulary in a doc comment: a field documented
// as carrying seconds or dollars should say so in its name, where
// arithmetic can be audited, not only in prose.
var unitWords = regexp.MustCompile(`(?i)(^|[\s(])(seconds|microseconds|milliseconds|nanoseconds|bytes|gigabytes|megabytes|dollars|usd|mflups|gflops|flop/s|hertz|hz|[kmg]i?b/s|b/s|µs)([\s,.;:)]|$)`)

// comparableOps are the binary operators whose operands must share a
// unit. Multiplication and division legitimately combine units, so
// only additive and ordering/equality operators are constrained.
var comparableOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.GTR: true, token.LEQ: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

// checkUnitSuffix flags (a) additive or comparison expressions whose
// operands carry conflicting unit suffixes and (b) exported float
// struct fields whose doc comment names a unit the field name does not
// carry.
func checkUnitSuffix() Check {
	const id = "unitsuffix"
	return Check{
		ID:  id,
		Doc: "unit-suffix discipline: no arithmetic across conflicting unit suffixes; documented units must appear in exported field names",
		Run: func(f *File) []Diagnostic {
			var diags []Diagnostic

			ast.Inspect(f.AST, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || !comparableOps[be.Op] {
					return true
				}
				lu, ln := operandUnit(be.X)
				ru, rn := operandUnit(be.Y)
				if lu != "" && ru != "" && lu != ru {
					diags = append(diags, f.diag(be.OpPos, id, SeverityError,
						"%q mixes units: %s is in %s but %s is in %s", be.Op, ln, lu, rn, ru))
				}
				return true
			})

			ast.Inspect(f.AST, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					if !isFloatType(field.Type) {
						continue
					}
					doc := fieldCommentText(field)
					if doc == "" {
						continue
					}
					m := unitWords.FindStringSubmatch(doc)
					if m == nil {
						continue
					}
					for _, name := range field.Names {
						if !name.IsExported() || unitOf(name.Name) != "" {
							continue
						}
						diags = append(diags, f.diag(name.Pos(), id, SeverityError,
							"exported field %s.%s is documented in %q but its name carries no unit suffix",
							ts.Name.Name, name.Name, strings.TrimSpace(m[2])))
					}
				}
				return true
			})
			return diags
		},
	}
}

// operandUnit returns the canonical unit and the rendered name of an
// operand when it is a plain identifier or selector chain with a
// recognized suffix.
func operandUnit(e ast.Expr) (unit, name string) {
	switch e := e.(type) {
	case *ast.Ident:
		return unitOf(e.Name), e.Name
	case *ast.SelectorExpr:
		return unitOf(e.Sel.Name), exprString(e)
	case *ast.ParenExpr:
		return operandUnit(e.X)
	}
	return "", ""
}

// isFloatType reports whether a type expression is float64 or float32.
func isFloatType(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && (id.Name == "float64" || id.Name == "float32")
}

// fieldCommentText joins a struct field's doc and line comments.
func fieldCommentText(field *ast.Field) string {
	var parts []string
	if field.Doc != nil {
		parts = append(parts, field.Doc.Text())
	}
	if field.Comment != nil {
		parts = append(parts, field.Comment.Text())
	}
	return strings.Join(parts, " ")
}
