package analyzers

import (
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture type-checks one testdata directory and returns its single
// lintable file.
func loadFixture(t *testing.T, dir string) *TypedFile {
	t.Helper()
	pkgs, err := Load([]string{dir})
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("Load(%s): want 1 package with 1 file, got %d package(s)", dir, len(pkgs))
	}
	return pkgs[0].Files[0]
}

// runTypedOn runs a single typed check (by ID) over one fixture dir.
func runTypedOn(t *testing.T, checkID, dir string) []Diagnostic {
	t.Helper()
	sel, err := SelectAll([]string{checkID})
	if err != nil {
		t.Fatalf("SelectAll(%s): %v", checkID, err)
	}
	if len(sel.Typed) != 1 {
		t.Fatalf("SelectAll(%s): want 1 typed check, got %d", checkID, len(sel.Typed))
	}
	return LintTypedFile(loadFixture(t, dir), sel.Typed)
}

func TestTypedGoldenDirtyFixtures(t *testing.T) {
	type want struct {
		line   int
		substr string
	}
	cases := []struct {
		check string
		want  []want
	}{
		{check: "unitflow", want: []want{
			{10, `field Sample.WindowMS is suffixed ms but its comment documents "seconds" (s)`},
			{20, `"+" mixes units: wait is in s but payloadBytes is in B`},
			{25, `"-" mixes time scales: t is in s but sliceMS is in ms`},
			{30, "budgetUSD is suffixed USD but is assigned a value in us"},
			{35, "ratioS is suffixed s but stores a dimensionless ratio"},
			{40, "totalS is suffixed s but stores a product of units (time×time)"},
			{45, `"+=" mixes units: totalBytes is in B but extraMS is in ms`},
			{50, "CapUSD is suffixed USD but is assigned a value in s"},
			{58, `call to bill passes elapsedS (s) for parameter "amountUSD", which is in USD`},
			{62, "waitUS declares its result in us but returns a value in s"},
		}},
		{check: "typeassert", want: []want{
			{9, "bare type assertion v.(string) in a return statement"},
			{13, "bare type assertion v.(int) as a call argument"},
			{18, "bare type assertion v.(string) on the right-hand side of an assignment"},
			{23, "bare type assertion v.(int) in an expression"},
		}},
		{check: "lossyconv", want: []want{
			{6, "int(haloBytes) truncates a fractional byte count"},
			{10, "int32(msgBytes) narrows the byte count from 64 to 32 bits"},
			{14, "uint64(eventCount) reinterprets the signed halo/event count as unsigned"},
			{18, "int32(sendBytes+recvBytes) narrows the byte count from 64 to 32 bits"},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.check, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.check, "dirty")
			got := runTypedOn(t, tc.check, dir)
			if len(got) != len(tc.want) {
				t.Fatalf("%s: got %d finding(s), want %d:\n%s",
					dir, len(got), len(tc.want), renderDiags(got))
			}
			for i, w := range tc.want {
				d := got[i]
				if d.Line != w.line || d.Check != tc.check {
					t.Errorf("finding %d: got %s:%d [%s], want line %d [%s]",
						i, d.File, d.Line, d.Check, w.line, tc.check)
				}
				if !strings.Contains(d.Message, w.substr) {
					t.Errorf("finding %d: message %q does not contain %q", i, d.Message, w.substr)
				}
				if d.Severity != SeverityError {
					t.Errorf("finding %d: severity %q, want %q", i, d.Severity, SeverityError)
				}
			}
		})
	}
}

func TestTypedGoldenCleanFixtures(t *testing.T) {
	for _, check := range []string{"unitflow", "typeassert", "lossyconv"} {
		t.Run(check, func(t *testing.T) {
			// Clean fixtures must survive both layers in full: a clean
			// idiom that trips a neighboring check is still a false
			// positive.
			f := loadFixture(t, filepath.Join("testdata", check, "clean"))
			if got := LintTypedFile(f, AllTyped()); len(got) != 0 {
				t.Fatalf("typed suite: want no findings, got:\n%s", renderDiags(got))
			}
			if got := LintFile(&f.File, All()); len(got) != 0 {
				t.Fatalf("syntactic suite: want no findings, got:\n%s", renderDiags(got))
			}
		})
	}
}

// TestLoaderCrossPackage type-checks a synthetic two-package module
// under testdata and verifies the loader resolved the module-internal
// import itself: flow.Window's result must be the named type
// unitmod/stat.Micros, with full type information on both sides.
func TestLoaderCrossPackage(t *testing.T) {
	dir := filepath.Join("testdata", "module", "flow")
	pkgs, err := Load([]string{dir})
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "unitmod/flow" {
		t.Errorf("import path = %q, want %q", p.Path, "unitmod/flow")
	}
	obj := p.Types.Scope().Lookup("Window")
	if obj == nil {
		t.Fatal("flow.Window not found in package scope")
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		t.Fatalf("Window is %T, want *types.Signature", obj.Type())
	}
	res := sig.Results().At(0).Type()
	if got := res.String(); got != "unitmod/stat.Micros" {
		t.Errorf("Window result type = %q, want %q", got, "unitmod/stat.Micros")
	}
	named, ok := res.(*types.Named)
	if !ok {
		t.Fatalf("result is %T, want *types.Named", res)
	}
	if b, ok := named.Underlying().(*types.Basic); !ok || b.Kind() != types.Float64 {
		t.Errorf("underlying type = %v, want float64", named.Underlying())
	}
}

// TestLoaderSharesDependency loads both synthetic packages in one call
// and verifies stat is type-checked once: the *types.Package inside
// flow's import table is the same object Load returned for stat.
func TestLoaderSharesDependency(t *testing.T) {
	pkgs, err := Load([]string{
		filepath.Join("testdata", "module", "stat"),
		filepath.Join("testdata", "module", "flow"),
	})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*TypedPackage{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	flow := byPath["unitmod/flow"]
	stat := byPath["unitmod/stat"]
	if flow == nil || stat == nil {
		t.Fatalf("missing package: %v", byPath)
	}
	for _, imp := range flow.Types.Imports() {
		if imp.Path() == "unitmod/stat" && imp != stat.Types {
			t.Error("flow imports a different stat instance; loader failed to memoize")
		}
	}
}

func TestRunTypedSkipsTestdata(t *testing.T) {
	res, err := RunTyped([]string{"./..."}, AllTyped())
	if err != nil {
		t.Fatalf("RunTyped: %v", err)
	}
	if res.Files == 0 {
		t.Fatal("RunTyped lint surface is empty; expected the package's own files")
	}
	for _, d := range res.Diags {
		if strings.Contains(d.File, "testdata") {
			t.Errorf("testdata leaked into the lint surface: %s", d)
		}
	}
}

func TestRunTypedExplicitDirectory(t *testing.T) {
	sel, err := SelectAll([]string{"typeassert"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTyped([]string{filepath.Join("testdata", "typeassert", "dirty")}, sel.Typed)
	if err != nil {
		t.Fatalf("RunTyped: %v", err)
	}
	if res.Files != 1 {
		t.Errorf("Files = %d, want 1", res.Files)
	}
	if len(res.Diags) != 4 {
		t.Errorf("got %d finding(s), want 4:\n%s", len(res.Diags), renderDiags(res.Diags))
	}
}

func TestSelectAll(t *testing.T) {
	sel, err := SelectAll(nil)
	if err != nil {
		t.Fatalf("SelectAll(nil): %v", err)
	}
	if len(sel.Syntactic) != len(All()) || len(sel.Typed) != len(AllTyped()) {
		t.Errorf("SelectAll(nil) = %d+%d checks, want %d+%d",
			len(sel.Syntactic), len(sel.Typed), len(All()), len(AllTyped()))
	}
	mixed, err := SelectAll([]string{"floateq", "unitflow"})
	if err != nil {
		t.Fatalf("SelectAll(mixed): %v", err)
	}
	if len(mixed.Syntactic) != 1 || len(mixed.Typed) != 1 {
		t.Errorf("mixed selection = %d+%d checks, want 1+1", len(mixed.Syntactic), len(mixed.Typed))
	}
	if _, err := SelectAll([]string{"nonsense"}); err == nil {
		t.Fatal("SelectAll must reject unknown check IDs")
	}
}

// BenchmarkRunAll times all three layers over the whole repository —
// the cost CI pays per lint run, dominated by the typed loader, which
// RunLayers pays once and shares between the typed and interprocedural
// layers.
func BenchmarkRunAll(b *testing.B) {
	pattern := []string{filepath.Join("..", "..", "...")}
	sel, err := SelectAll(nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := RunLayers(pattern, sel); err != nil {
			b.Fatalf("RunLayers: %v", err)
		}
	}
}
