package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
)

// hotpath polices the loops of functions annotated //lint:hot — the
// LBM kernels and the serve/cluster request paths. Inside a loop of a
// hot function it flags the allocation patterns that wreck a
// lattice-update sweep: defer (allocates and defers work to function
// exit), map allocation, append to a slice declared without capacity,
// closure creation that captures locals, and implicit interface
// boxing at call sites. Loop membership comes from the CFG's cycles,
// so goto-formed loops count.

func checkHotPath() FlowCheck {
	return FlowCheck{
		ID: "hotpath",
		Doc: "allocation or hidden cost in a loop of a //lint:hot " +
			"function: defer, map alloc, append without preallocation, " +
			"capturing closure, interface boxing",
		Run: runHotPath,
	}
}

func runHotPath(fn *FlowFunc) []Diagnostic {
	if !fn.Hot {
		return nil
	}
	a := &hotAnalysis{fn: fn}
	a.scanSliceDecls()
	for _, b := range fn.G.Blocks {
		if !b.InLoop {
			continue
		}
		for _, n := range b.Nodes {
			a.node(n)
		}
	}
	return a.diags
}

type hotAnalysis struct {
	fn *FlowFunc
	// noCapSlices are local slices declared without capacity: var s
	// []T, s := []T{}, s := make([]T, 0).
	noCapSlices map[types.Object]bool
	diags       []Diagnostic
}

func (a *hotAnalysis) emit(n ast.Node, format string, args ...any) {
	a.diags = append(a.diags, a.fn.diagNode(n, "hotpath", SeverityError, fmt.Sprintf(format, args...)))
}

// scanSliceDecls records local slice variables declared without any
// capacity hint anywhere in the function.
func (a *hotAnalysis) scanSliceDecls() {
	a.noCapSlices = map[types.Object]bool{}
	info := a.fn.File.Package.Info
	mark := func(id *ast.Ident) {
		obj := info.Defs[id]
		if obj == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Slice); ok {
			a.noCapSlices[obj] = true
		}
	}
	inspectOwn(a.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			if len(n.Values) == 0 {
				for _, name := range n.Names {
					mark(name)
				}
				return true
			}
			for i, name := range n.Names {
				if i < len(n.Values) && uncappedSliceExpr(n.Values[i]) {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if uncappedSliceExpr(n.Rhs[i]) {
					mark(id)
				}
			}
		}
		return true
	})
}

// uncappedSliceExpr reports whether an initializer allocates a slice
// with no useful capacity: an empty composite literal or make with
// length zero and no capacity argument.
func uncappedSliceExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		_, isArr := e.Type.(*ast.ArrayType)
		return isArr && len(e.Elts) == 0
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || len(e.Args) != 2 {
			return false
		}
		if _, ok := e.Args[0].(*ast.ArrayType); !ok {
			return false
		}
		lit, ok := e.Args[1].(*ast.BasicLit)
		return ok && lit.Value == "0"
	}
	return false
}

func (a *hotAnalysis) node(n ast.Node) {
	switch n := n.(type) {
	case *ast.DeferStmt:
		a.emit(n, "defer inside a hot loop allocates per iteration and runs only at function exit; hoist it")
		return
	case *ast.RangeStmt:
		// Only the head (range expression) lives in this block; the
		// body's statements sit in their own blocks.
		a.expr(n.X)
		return
	}
	inspectOwn(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			a.funcLit(m)
			return false
		case *ast.CallExpr:
			a.call(m)
		case *ast.CompositeLit:
			a.composite(m)
		}
		return true
	})
}

func (a *hotAnalysis) expr(e ast.Expr) {
	if e == nil {
		return
	}
	a.node(e)
}

func (a *hotAnalysis) typeOf(e ast.Expr) types.Type {
	if tv, ok := a.fn.File.Package.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (a *hotAnalysis) composite(lit *ast.CompositeLit) {
	if t := a.typeOf(lit); t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			a.emit(lit, "map literal allocated inside a hot loop; hoist it out or reuse one allocation")
		}
	}
}

func (a *hotAnalysis) funcLit(lit *ast.FuncLit) {
	info := a.fn.File.Package.Info
	captured := map[string]bool{}
	var order []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() {
			return true
		}
		// Captured: declared in the enclosing function (inside the hot
		// body but outside the literal).
		if obj.Pos() >= a.fn.Body.Pos() && obj.Pos() < lit.Pos() || obj.Pos() > lit.End() && obj.Pos() <= a.fn.Body.End() {
			if !captured[v.Name()] {
				captured[v.Name()] = true
				order = append(order, v.Name())
			}
		}
		return true
	})
	if len(order) > 0 {
		a.emit(lit, "closure capturing %s inside a hot loop allocates per iteration", joinNames(order))
	}
}

func joinNames(names []string) string {
	switch len(names) {
	case 1:
		return names[0]
	case 2:
		return names[0] + " and " + names[1]
	}
	out := ""
	for i, n := range names[:len(names)-1] {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out + ", and " + names[len(names)-1]
}

func (a *hotAnalysis) call(call *ast.CallExpr) {
	// Builtins: make(map) and append-without-prealloc.
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "make":
			if t := a.typeOf(call); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					a.emit(call, "map allocated inside a hot loop; hoist it out or reuse one allocation")
				}
			}
			return
		case "append":
			if len(call.Args) > 0 {
				if target, ok := call.Args[0].(*ast.Ident); ok {
					if obj := a.fn.File.Package.Info.Uses[target]; obj != nil && a.noCapSlices[obj] {
						a.emit(call, "append to %s (declared without capacity) inside a hot loop; pre-size it with make",
							target.Name)
					}
				}
			}
			return
		}
	}
	// Interface boxing at ordinary call sites.
	ft := a.typeOf(call.Fun)
	if ft == nil {
		return
	}
	sig, ok := ft.Underlying().(*types.Signature)
	if !ok {
		return // conversion or builtin
	}
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through, no boxing
			}
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, ok := pt.Underlying().(*types.Interface); !ok {
			continue
		}
		at := a.typeOf(arg)
		if at == nil {
			continue
		}
		if _, isIface := at.Underlying().(*types.Interface); isIface {
			continue // already an interface, no new box
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			// Pointers box without copying the pointee, but still
			// allocate the interface header on conversion paths; keep
			// the finding — hot loops should not convert at all.
		}
		a.emit(arg, "argument %s boxes into interface %s inside a hot loop",
			exprString(arg), pt.String())
	}
}
