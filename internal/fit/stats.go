package fit

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample, as reported in the
// paper's noise-variability study (Table IV): mean, standard deviation and
// the coefficient of variation (σ/μ).
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1 denominator)
	CV     float64 // coefficient of variation, StdDev/Mean
	Min    float64
	Max    float64
	Median float64
}

// String renders the summary in Table IV's columns.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f cv=%.3f", s.N, s.Mean, s.StdDev, s.CV)
}

// Summarize computes descriptive statistics for xs. It panics on an empty
// sample, which always indicates a programming error in a caller that
// should have generated measurements.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("fit: Summarize on empty sample")
	}
	s := Summary{N: len(xs), Mean: Mean(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	if s.Mean != 0 {
		s.CV = s.StdDev / s.Mean
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// SSE returns the sum of squared differences between predictions and
// observations. The slices must have equal length.
func SSE(pred, obs []float64) float64 {
	if len(pred) != len(obs) {
		panic("fit: SSE length mismatch")
	}
	var sse float64
	for i := range pred {
		d := pred[i] - obs[i]
		sse += d * d
	}
	return sse
}

// MAPE returns the mean absolute percentage error of predictions against
// observations, skipping observations equal to zero. Useful for judging
// performance-model accuracy in the refinement loop.
func MAPE(pred, obs []float64) float64 {
	if len(pred) != len(obs) {
		panic("fit: MAPE length mismatch")
	}
	var sum float64
	n := 0
	for i := range pred {
		if obs[i] == 0 {
			continue
		}
		sum += math.Abs((pred[i] - obs[i]) / obs[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// minMax returns the smallest and largest values in xs.
func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

// GeoMean returns the geometric mean of xs. All values must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			panic("fit: GeoMean requires positive values")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
