package fit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", s.StdDev, want)
	}
	if math.Abs(s.CV-want/5) > 1e-12 {
		t.Errorf("CV = %v, want %v", s.CV, want/5)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.StdDev != 0 || s.CV != 0 || s.Median != 3 {
		t.Errorf("single-sample summary wrong: %+v", s)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Errorf("Median = %v, want 5", s.Median)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on empty sample")
		}
	}()
	Summarize(nil)
}

func TestMeanProperty(t *testing.T) {
	// Mean of constant slice is the constant.
	f := func(c float64, n uint8) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e100 {
			return true // summing ~32 values near ±MaxFloat64 overflows
		}
		m := int(n%32) + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = c
		}
		return math.Abs(Mean(xs)-c) <= 1e-9*math.Max(1, math.Abs(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSSEAndMAPE(t *testing.T) {
	pred := []float64{10, 20, 30}
	obs := []float64{12, 20, 27}
	if got := SSE(pred, obs); got != 4+0+9 {
		t.Errorf("SSE = %v, want 13", got)
	}
	wantMAPE := (2.0/12 + 0 + 3.0/27) / 3
	if got := MAPE(pred, obs); math.Abs(got-wantMAPE) > 1e-12 {
		t.Errorf("MAPE = %v, want %v", got, wantMAPE)
	}
}

func TestMAPESkipsZeroObs(t *testing.T) {
	got := MAPE([]float64{5, 10}, []float64{0, 10})
	if got != 0 {
		t.Errorf("MAPE = %v, want 0 (zero obs skipped, exact match kept)", got)
	}
}

func TestSSEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for length mismatch")
		}
	}()
	SSE([]float64{1}, []float64{1, 2})
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("want panic for nonpositive value")
		}
	}()
	GeoMean([]float64{1, -2})
}

func TestMinMax(t *testing.T) {
	lo, hi := minMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("minMax = %v,%v, want -1,7", lo, hi)
	}
}
