package fit

import (
	"math"
	"math/rand"
	"testing"
)

func TestBootstrapTwoLineRecoversTruthWithinError(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	truth := TwoLine{A1: 7790, A2: 1264, A3: 9}
	var threads, bw []float64
	for n := 1; n <= 36; n++ {
		threads = append(threads, float64(n))
		bw = append(bw, truth.Eval(float64(n))*(1+rng.NormFloat64()*0.02))
	}
	u, err := BootstrapTwoLine(threads, bw, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if u.Resamples < 100 {
		t.Fatalf("only %d usable resamples", u.Resamples)
	}
	// The truth lies within a few standard errors of the bootstrap mean.
	if d := math.Abs(u.A1.Mean - truth.A1); d > 5*u.A1.StdErr+0.02*truth.A1 {
		t.Errorf("a1 %v too far from truth %v", u.A1, truth.A1)
	}
	if u.A1.StdErr <= 0 || u.A3.StdErr <= 0 {
		t.Error("noisy data must yield positive standard errors")
	}
	// Error bars are small relative to the parameter (informative fit).
	if u.A1.StdErr > 0.2*truth.A1 {
		t.Errorf("a1 stderr %v implausibly wide", u.A1.StdErr)
	}
}

func TestBootstrapLinearRecoversCommModel(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const b, l = 1804.84, 23.59 // CSP-2 Table III
	var xs, ys []float64
	for m := 1.0; m <= 4*1024*1024; m *= 4 {
		xs = append(xs, m)
		ys = append(ys, (m/b/1e6*1e6+l)*(1+rng.NormFloat64()*0.02))
	}
	u, err := BootstrapLinear(xs, ys, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	wantSlope := 1 / b / 1e6 * 1e6 // µs per byte at MB/s bandwidth... = 1/b
	if d := math.Abs(u.Slope.Mean - 1/b); d > 5*u.Slope.StdErr+0.05/b {
		t.Errorf("slope %v too far from 1/b=%v", u.Slope, 1/b)
	}
	_ = wantSlope
	if u.Resamples < 100 {
		t.Errorf("only %d resamples", u.Resamples)
	}
}

func TestBootstrapValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := BootstrapTwoLine([]float64{1, 2, 3}, []float64{1, 2, 3}, 100, rng); err == nil {
		t.Error("want error for too few points")
	}
	xs := []float64{1, 2, 3, 4, 5}
	if _, err := BootstrapTwoLine(xs, xs, 5, rng); err == nil {
		t.Error("want error for too few resamples")
	}
	if _, err := BootstrapTwoLine(xs, xs, 100, nil); err == nil {
		t.Error("want error for nil rng")
	}
	if _, err := BootstrapLinear([]float64{1, 2}, []float64{1, 2}, 100, rng); err == nil {
		t.Error("want error for too few points")
	}
	if _, err := BootstrapLinear(xs, xs, 2, rng); err == nil {
		t.Error("want error for too few resamples")
	}
	if _, err := BootstrapLinear(xs, xs, 100, nil); err == nil {
		t.Error("want error for nil rng")
	}
}

func TestUncertaintyString(t *testing.T) {
	u := Uncertainty{Mean: 7790.02, StdErr: 45.3}
	if got := u.String(); got != "7790 ± 45" {
		t.Errorf("String() = %q", got)
	}
}

func TestSummarizeUSingle(t *testing.T) {
	u := summarizeU([]float64{3.5})
	if u.Mean != 3.5 || u.StdErr != 0 {
		t.Errorf("single-sample uncertainty: %+v", u)
	}
}
