package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestLinearLSQExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3.5*x + 1.25
	}
	l, err := LinearLSQ(xs, ys)
	if err != nil {
		t.Fatalf("LinearLSQ: %v", err)
	}
	if !almostEqual(l.Slope, 3.5, 1e-12) || !almostEqual(l.Intercept, 1.25, 1e-12) {
		t.Errorf("got slope=%v intercept=%v, want 3.5, 1.25", l.Slope, l.Intercept)
	}
	if l.R2 < 1-1e-12 {
		t.Errorf("R2 = %v, want ~1", l.R2)
	}
}

func TestLinearLSQNoisyRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 2.0*xs[i] + 10 + rng.NormFloat64()*0.5
	}
	l, err := LinearLSQ(xs, ys)
	if err != nil {
		t.Fatalf("LinearLSQ: %v", err)
	}
	if !almostEqual(l.Slope, 2.0, 0.01) {
		t.Errorf("slope = %v, want ~2.0", l.Slope)
	}
	if math.Abs(l.Intercept-10) > 0.5 {
		t.Errorf("intercept = %v, want ~10", l.Intercept)
	}
}

func TestLinearLSQErrors(t *testing.T) {
	if _, err := LinearLSQ([]float64{1}, []float64{2}); err == nil {
		t.Error("want error for single point")
	}
	if _, err := LinearLSQ([]float64{1, 2}, []float64{2}); err == nil {
		t.Error("want error for mismatched lengths")
	}
	if _, err := LinearLSQ([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("want error for degenerate x")
	}
	if _, err := LinearLSQ([]float64{1, math.NaN()}, []float64{1, 2}); err == nil {
		t.Error("want error for NaN input")
	}
	if _, err := LinearLSQ([]float64{1, math.Inf(1)}, []float64{1, 2}); err == nil {
		t.Error("want error for Inf input")
	}
}

func TestLinearThroughPoint(t *testing.T) {
	// Communication-model shape: t = m/b + l with pinned latency.
	const b, l = 2000.0, 20.0 // MB/s and µs scales are arbitrary here
	xs := []float64{1, 8, 64, 512, 4096, 32768}
	ys := make([]float64, len(xs))
	for i, m := range xs {
		ys[i] = m/b + l
	}
	fit, err := LinearThroughPoint(xs, ys, l)
	if err != nil {
		t.Fatalf("LinearThroughPoint: %v", err)
	}
	if !almostEqual(fit.Slope, 1/b, 1e-9) {
		t.Errorf("slope = %v, want %v", fit.Slope, 1/b)
	}
	if fit.Intercept != l {
		t.Errorf("intercept = %v, want pinned %v", fit.Intercept, l)
	}
}

func TestLinearThroughPointAllZeroX(t *testing.T) {
	if _, err := LinearThroughPoint([]float64{0, 0}, []float64{1, 2}, 0); err == nil {
		t.Error("want error when all x are zero")
	}
}

func TestTwoLineExactRecovery(t *testing.T) {
	truth := TwoLine{A1: 6768.24, A2: 369.16, A3: 6.39} // TRC row of Table III
	var threads, bw []float64
	for n := 1; n <= 40; n++ {
		threads = append(threads, float64(n))
		bw = append(bw, truth.Eval(float64(n)))
	}
	got, err := TwoLineLSQ(threads, bw)
	if err != nil {
		t.Fatalf("TwoLineLSQ: %v", err)
	}
	if !almostEqual(got.A1, truth.A1, 1e-3) {
		t.Errorf("a1 = %v, want %v", got.A1, truth.A1)
	}
	if !almostEqual(got.A2, truth.A2, 1e-2) {
		t.Errorf("a2 = %v, want %v", got.A2, truth.A2)
	}
	if math.Abs(got.A3-truth.A3) > 0.25 {
		t.Errorf("a3 = %v, want %v", got.A3, truth.A3)
	}
}

func TestTwoLineNoisyRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	truth := TwoLine{A1: 7790.02, A2: 1264.80, A3: 9.0} // CSP-2 row of Table III
	var threads, bw []float64
	for n := 1; n <= 36; n++ {
		threads = append(threads, float64(n))
		bw = append(bw, truth.Eval(float64(n))*(1+rng.NormFloat64()*0.01))
	}
	got, err := TwoLineLSQ(threads, bw)
	if err != nil {
		t.Fatalf("TwoLineLSQ: %v", err)
	}
	if !almostEqual(got.A1, truth.A1, 0.05) {
		t.Errorf("a1 = %v, want ~%v", got.A1, truth.A1)
	}
	if !almostEqual(got.A2, truth.A2, 0.15) {
		t.Errorf("a2 = %v, want ~%v", got.A2, truth.A2)
	}
	if math.Abs(got.A3-truth.A3) > 1.5 {
		t.Errorf("a3 = %v, want ~%v", got.A3, truth.A3)
	}
}

func TestTwoLineContinuityProperty(t *testing.T) {
	// The fitted model must be continuous at the knee for any fit result.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		truth := TwoLine{
			A1: 1000 + rng.Float64()*20000,
			A2: rng.Float64() * 2000,
			A3: 2 + rng.Float64()*20,
		}
		var threads, bw []float64
		for n := 1; n <= 48; n++ {
			threads = append(threads, float64(n))
			bw = append(bw, truth.Eval(float64(n))*(1+rng.NormFloat64()*0.02))
		}
		got, err := TwoLineLSQ(threads, bw)
		if err != nil {
			return false
		}
		eps := 1e-9
		left := got.Eval(got.A3 - eps)
		right := got.Eval(got.A3 + eps)
		return math.Abs(left-right) < 1e-3*math.Max(1, math.Abs(right))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTwoLineSingleRegime(t *testing.T) {
	// Purely linear data (knee beyond data range) must still fit well.
	var threads, bw []float64
	for n := 1; n <= 16; n++ {
		threads = append(threads, float64(n))
		bw = append(bw, 5000*float64(n))
	}
	got, err := TwoLineLSQ(threads, bw)
	if err != nil {
		t.Fatalf("TwoLineLSQ: %v", err)
	}
	for n := 1; n <= 16; n++ {
		want := 5000 * float64(n)
		if !almostEqual(got.Eval(float64(n)), want, 1e-2) {
			t.Fatalf("Eval(%d) = %v, want %v", n, got.Eval(float64(n)), want)
		}
	}
}

func TestTwoLineSaturation(t *testing.T) {
	m := TwoLine{A1: 1000, A2: 10, A3: 8}
	if got := m.Saturation(); got != 8000 {
		t.Errorf("Saturation = %v, want 8000", got)
	}
}

func TestLogLawRecovery(t *testing.T) {
	truth := LogLaw{C1: 0.15, C2: 0.02}
	var tasks, z []float64
	for _, n := range []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048} {
		tasks = append(tasks, n)
		z = append(z, truth.Eval(n))
	}
	got, err := LogLawLSQ(tasks, z)
	if err != nil {
		t.Fatalf("LogLawLSQ: %v", err)
	}
	if !almostEqual(got.C1, truth.C1, 0.05) {
		t.Errorf("c1 = %v, want ~%v", got.C1, truth.C1)
	}
	if !almostEqual(got.C2, truth.C2, 0.15) {
		t.Errorf("c2 = %v, want ~%v", got.C2, truth.C2)
	}
}

func TestLogLawSerialIsBalanced(t *testing.T) {
	// Eq. 11 must give exactly z = 1 at n = 1 regardless of parameters.
	f := func(c1, c2 float64) bool {
		m := LogLaw{C1: math.Abs(c1), C2: math.Abs(c2)}
		return m.Eval(1) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogLawMonotone(t *testing.T) {
	m := LogLaw{C1: 0.2, C2: 0.05}
	prev := m.Eval(1)
	for n := 2.0; n <= 4096; n *= 2 {
		cur := m.Eval(n)
		if cur < prev {
			t.Fatalf("z not monotone at n=%v: %v < %v", n, cur, prev)
		}
		prev = cur
	}
}

func TestLogLawRejectsBadTasks(t *testing.T) {
	if _, err := LogLawLSQ([]float64{0.5, 2}, []float64{1, 1.1}); err == nil {
		t.Error("want error for task count < 1")
	}
}

func TestGoldenMin(t *testing.T) {
	got := GoldenMin(-10, 10, 1e-9, func(x float64) float64 { return (x - 3.2) * (x - 3.2) })
	if math.Abs(got-3.2) > 1e-6 {
		t.Errorf("goldenMin = %v, want 3.2", got)
	}
	// Reversed bounds must work too.
	got = GoldenMin(10, -10, 1e-9, func(x float64) float64 { return (x + 1) * (x + 1) })
	if math.Abs(got+1) > 1e-6 {
		t.Errorf("goldenMin = %v, want -1", got)
	}
}
