// Package fit provides the curve-fitting and statistics primitives the
// performance models are built on: ordinary least squares for linear
// relations (the communication model, Eq. 12 of the paper), a continuous
// two-line ("broken stick") fit for node memory bandwidth (Eq. 8), and
// logarithmic-law fits for the load-imbalance and message-count models
// (Eqs. 11 and 15). All fitting minimizes the sum of squared errors (SSE)
// exactly as the paper describes.
//
// Everything operates on plain float64 slices; the only dependency
// beyond the standard library is the repository's own internal/units,
// whose ApproxEqual guards the degenerate-input branches.
package fit

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/units"
)

// ErrInsufficientData is returned when a fit is requested with fewer
// observations than free parameters.
var ErrInsufficientData = errors.New("fit: insufficient data points")

// ErrBadInput is returned when the x and y series disagree in length or
// contain non-finite values.
var ErrBadInput = errors.New("fit: invalid input data")

// degenTol bounds how close to zero a denominator or sum of squares may
// come before the fit treats the inputs as degenerate.
const degenTol = 1e-12

func checkSeries(xs, ys []float64, min int) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("%w: len(x)=%d len(y)=%d", ErrBadInput, len(xs), len(ys))
	}
	if len(xs) < min {
		return fmt.Errorf("%w: need at least %d points, have %d", ErrInsufficientData, min, len(xs))
	}
	for i := range xs {
		if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) || math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			return fmt.Errorf("%w: non-finite value at index %d", ErrBadInput, i)
		}
	}
	return nil
}

// Linear holds the parameters of y = Slope*x + Intercept together with the
// fit quality. For the communication model of Eq. 12, x is message size in
// bytes, y is time, Slope is 1/bandwidth and Intercept is latency.
type Linear struct {
	Slope     float64
	Intercept float64
	SSE       float64 // sum of squared errors at the optimum
	R2        float64 // coefficient of determination
	N         int     // number of observations
}

// Eval returns the fitted value at x.
func (l Linear) Eval(x float64) float64 { return l.Slope*x + l.Intercept }

// String renders the line in slope-intercept form.
func (l Linear) String() string {
	return fmt.Sprintf("y = %.6g*x + %.6g (R²=%.4f, n=%d)", l.Slope, l.Intercept, l.R2, l.N)
}

// LinearLSQ fits y = a*x + b by ordinary least squares.
func LinearLSQ(xs, ys []float64) (Linear, error) {
	if err := checkSeries(xs, ys, 2); err != nil {
		return Linear{}, err
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if units.ApproxEqual(den, 0, degenTol) {
		return Linear{}, fmt.Errorf("%w: degenerate x values", ErrBadInput)
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	l := Linear{Slope: slope, Intercept: intercept, N: len(xs)}
	l.SSE, l.R2 = quality(xs, ys, l.Eval)
	return l, nil
}

// LinearThroughPoint fits y = a*x + b with b pinned to the supplied
// intercept, minimizing SSE over the slope alone. The paper pins the
// PingPong latency to the zero-byte message time ("curve fits enforce that
// latency is the communication time for 0 bytes and bandwidth depends on
// all data points"), which this implements.
func LinearThroughPoint(xs, ys []float64, intercept float64) (Linear, error) {
	if err := checkSeries(xs, ys, 1); err != nil {
		return Linear{}, err
	}
	var num, den float64
	for i := range xs {
		num += xs[i] * (ys[i] - intercept)
		den += xs[i] * xs[i]
	}
	if units.ApproxEqual(den, 0, degenTol) {
		return Linear{}, fmt.Errorf("%w: all x values are zero", ErrBadInput)
	}
	l := Linear{Slope: num / den, Intercept: intercept, N: len(xs)}
	l.SSE, l.R2 = quality(xs, ys, l.Eval)
	return l, nil
}

// quality computes SSE and R² of model f over the observations.
func quality(xs, ys []float64, f func(float64) float64) (sse, r2 float64) {
	mean := Mean(ys)
	var sst float64
	for i := range xs {
		r := ys[i] - f(xs[i])
		sse += r * r
		d := ys[i] - mean
		sst += d * d
	}
	if units.ApproxEqual(sst, 0, degenTol) {
		if units.ApproxEqual(sse, 0, degenTol) {
			return 0, 1
		}
		return sse, 0
	}
	return sse, 1 - sse/sst
}

// TwoLine holds the parameters of the paper's Eq. 8 bandwidth model:
//
//	B(n) = a1*n                      for n <  a3
//	B(n) = a2*n + a3*(a1-a2)         for n >= a3
//
// The model is continuous at the knee n = a3 by construction. A1 is the
// per-core bandwidth in the core-limited regime; A2 the residual slope in
// the memory-subsystem-limited regime; A3 the knee position in threads.
type TwoLine struct {
	A1  float64
	A2  float64
	A3  float64
	SSE float64
	R2  float64
	N   int
}

// Eval returns the modeled bandwidth at thread count n.
func (t TwoLine) Eval(n float64) float64 {
	if n < t.A3 {
		return t.A1 * n
	}
	return t.A2*n + t.A3*(t.A1-t.A2)
}

// Saturation returns the modeled bandwidth at the knee, the point where the
// node's memory subsystem becomes the limiter.
func (t TwoLine) Saturation() float64 { return t.A1 * t.A3 }

// String renders the two-line model parameters.
func (t TwoLine) String() string {
	return fmt.Sprintf("B(n) = {%.4g*n | n<%.3g; %.4g*n+%.4g | n>=%.3g} (R²=%.4f)",
		t.A1, t.A3, t.A2, t.A3*(t.A1-t.A2), t.A3, t.R2)
}

// TwoLineLSQ fits Eq. 8 to (threads, bandwidth) observations by minimizing
// SSE. For a candidate knee a3 the conditional optimum of (a1, a2) is a
// linear least-squares problem, so the fit scans knee candidates over a
// dense grid spanning the observed thread range and refines the best
// candidate with golden-section search. This mirrors the paper's "adjusting
// the parameters a1, a2, and a3 to minimize the SSE".
func TwoLineLSQ(threads, bw []float64) (TwoLine, error) {
	if err := checkSeries(threads, bw, 3); err != nil {
		return TwoLine{}, err
	}
	lo, hi := minMax(threads)
	if lo <= 0 {
		return TwoLine{}, fmt.Errorf("%w: thread counts must be positive", ErrBadInput)
	}
	// Dense scan for the knee. Allow knees slightly beyond the data so a
	// pure single-regime dataset degrades gracefully.
	const gridSteps = 400
	bestSSE := math.Inf(1)
	var best TwoLine
	for i := 0; i <= gridSteps; i++ {
		a3 := lo + (hi-lo)*float64(i)/gridSteps
		cand, ok := twoLineGivenKnee(threads, bw, a3)
		if ok && cand.SSE < bestSSE {
			bestSSE = cand.SSE
			best = cand
		}
	}
	if math.IsInf(bestSSE, 1) {
		return TwoLine{}, fmt.Errorf("%w: no valid knee candidate", ErrBadInput)
	}
	// Golden-section refinement around the best grid knee.
	step := (hi - lo) / gridSteps
	a, b := math.Max(lo, best.A3-2*step), math.Min(hi, best.A3+2*step)
	refined := GoldenMin(a, b, 1e-6, func(a3 float64) float64 {
		cand, ok := twoLineGivenKnee(threads, bw, a3)
		if !ok {
			return math.Inf(1)
		}
		return cand.SSE
	})
	if cand, ok := twoLineGivenKnee(threads, bw, refined); ok && cand.SSE <= best.SSE {
		best = cand
	}
	_, best.R2 = quality(threads, bw, best.Eval)
	best.N = len(threads)
	return best, nil
}

// twoLineGivenKnee solves the conditionally linear subproblem: with the
// knee a3 fixed, B(n) = a1*f1(n) + a2*f2(n) where f1(n) = min(n, a3) ...
// actually f1(n) = n for n<a3 and a3 for n>=a3; f2(n) = 0 for n<a3 and
// (n-a3) for n>=a3. Ordinary 2-parameter least squares in (a1, a2).
func twoLineGivenKnee(threads, bw []float64, a3 float64) (TwoLine, bool) {
	var s11, s12, s22, s1y, s2y float64
	nLeft := 0
	for i, n := range threads {
		var f1, f2 float64
		if n < a3 {
			f1, f2 = n, 0
			nLeft++
		} else {
			f1, f2 = a3, n-a3
		}
		s11 += f1 * f1
		s12 += f1 * f2
		s22 += f2 * f2
		s1y += f1 * bw[i]
		s2y += f2 * bw[i]
	}
	det := s11*s22 - s12*s12
	var a1, a2 float64
	switch {
	//lint:ignore floateq exact singularity test selecting the solver branch; near-zero det is legitimate
	case det != 0:
		a1 = (s22*s1y - s12*s2y) / det
		a2 = (s11*s2y - s12*s1y) / det
	case !units.ApproxEqual(s11, 0, degenTol):
		// All points on one side of the knee: single-slope fit.
		a1 = s1y / s11
		a2 = a1
	default:
		return TwoLine{}, false
	}
	t := TwoLine{A1: a1, A2: a2, A3: a3}
	t.SSE, _ = quality(threads, bw, t.Eval)
	return t, true
}

// LogLaw holds the parameters of y = c1*ln(c2*(x-1) + 1) + 1, the paper's
// Eq. 11 load-imbalance model. It equals exactly 1 at x = 1 (a serial run
// is perfectly balanced by definition).
type LogLaw struct {
	C1  float64
	C2  float64
	SSE float64
	R2  float64
	N   int
}

// Eval returns the modeled imbalance factor at task count x.
func (l LogLaw) Eval(x float64) float64 {
	arg := l.C2*(x-1) + 1
	if arg <= 0 {
		return math.Inf(1)
	}
	return l.C1*math.Log(arg) + 1
}

// String renders the log-law parameters.
func (l LogLaw) String() string {
	return fmt.Sprintf("z(n) = %.4g*ln(%.4g*(n-1)+1)+1 (R²=%.4f)", l.C1, l.C2, l.R2)
}

// LogLawLSQ fits Eq. 11 by SSE minimization. For fixed c2 the optimum c1 is
// linear, so the fit scans c2 over a log-spaced grid and refines with
// golden-section search on log(c2).
func LogLawLSQ(tasks, z []float64) (LogLaw, error) {
	if err := checkSeries(tasks, z, 2); err != nil {
		return LogLaw{}, err
	}
	for _, x := range tasks {
		if x < 1 {
			return LogLaw{}, fmt.Errorf("%w: task counts must be >= 1", ErrBadInput)
		}
	}
	sseFor := func(logC2 float64) (LogLaw, float64) {
		c2 := math.Exp(logC2)
		var num, den float64
		for i := range tasks {
			g := math.Log(c2*(tasks[i]-1) + 1)
			num += g * (z[i] - 1)
			den += g * g
		}
		c1 := 0.0
		if den > 0 {
			c1 = num / den
		}
		m := LogLaw{C1: c1, C2: c2}
		sse, _ := quality(tasks, z, m.Eval)
		m.SSE = sse
		return m, sse
	}
	bestSSE := math.Inf(1)
	var best LogLaw
	for lg := -12.0; lg <= 6.0; lg += 0.05 {
		m, sse := sseFor(lg)
		if sse < bestSSE {
			bestSSE, best = sse, m
		}
	}
	refined := GoldenMin(math.Log(best.C2)-0.1, math.Log(best.C2)+0.1, 1e-9, func(lg float64) float64 {
		_, sse := sseFor(lg)
		return sse
	})
	if m, sse := sseFor(refined); sse <= best.SSE {
		best = m
	}
	_, best.R2 = quality(tasks, z, best.Eval)
	best.N = len(tasks)
	return best, nil
}

// GoldenMin minimizes f on [a, b] by golden-section search to the given
// absolute tolerance on x. It is exported for the model-calibration fits
// in internal/perfmodel, which share this package's SSE-scan strategy.
func GoldenMin(a, b, tol float64, f func(float64) float64) float64 {
	if b < a {
		a, b = b, a
	}
	const invPhi = 0.6180339887498949
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return (a + b) / 2
}
