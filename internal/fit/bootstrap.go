package fit

import (
	"fmt"
	"math"
	"math/rand"
)

// Uncertainty reports a fitted parameter's bootstrap spread.
type Uncertainty struct {
	Mean   float64
	StdErr float64 // standard deviation of the bootstrap estimates
}

// String renders mean ± standard error.
func (u Uncertainty) String() string {
	return fmt.Sprintf("%.4g ± %.2g", u.Mean, u.StdErr)
}

// TwoLineUncertainty holds bootstrap uncertainties of the Eq. 8
// parameters.
type TwoLineUncertainty struct {
	A1, A2, A3 Uncertainty
	Resamples  int
}

// BootstrapTwoLine estimates the sampling uncertainty of a two-line fit
// by case resampling: refit on `resamples` bootstrap draws of the
// observation pairs and report the spread of each parameter. This is how
// the characterization can attach error bars to Table III without
// distributional assumptions.
func BootstrapTwoLine(threads, bw []float64, resamples int, rng *rand.Rand) (TwoLineUncertainty, error) {
	if len(threads) != len(bw) || len(threads) < 4 {
		return TwoLineUncertainty{}, fmt.Errorf("fit: bootstrap needs >= 4 paired points, have %d/%d", len(threads), len(bw))
	}
	if resamples < 10 {
		return TwoLineUncertainty{}, fmt.Errorf("fit: at least 10 resamples required, got %d", resamples)
	}
	if rng == nil {
		return TwoLineUncertainty{}, fmt.Errorf("fit: nil rng")
	}
	n := len(threads)
	var a1s, a2s, a3s []float64
	xs := make([]float64, n)
	ys := make([]float64, n)
	for r := 0; r < resamples; r++ {
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			xs[i], ys[i] = threads[j], bw[j]
		}
		f, err := TwoLineLSQ(xs, ys)
		if err != nil {
			continue // a degenerate resample (e.g. one unique x) is skipped
		}
		a1s = append(a1s, f.A1)
		a2s = append(a2s, f.A2)
		a3s = append(a3s, f.A3)
	}
	if len(a1s) < resamples/2 {
		return TwoLineUncertainty{}, fmt.Errorf("fit: only %d of %d resamples fit", len(a1s), resamples)
	}
	return TwoLineUncertainty{
		A1:        summarizeU(a1s),
		A2:        summarizeU(a2s),
		A3:        summarizeU(a3s),
		Resamples: len(a1s),
	}, nil
}

// LinearUncertainty holds bootstrap uncertainties of a linear fit's
// parameters (for the Eq. 12 communication model: slope is 1/bandwidth,
// intercept is latency).
type LinearUncertainty struct {
	Slope, Intercept Uncertainty
	Resamples        int
}

// BootstrapLinear estimates a linear fit's parameter uncertainty by case
// resampling.
func BootstrapLinear(xs, ys []float64, resamples int, rng *rand.Rand) (LinearUncertainty, error) {
	if len(xs) != len(ys) || len(xs) < 3 {
		return LinearUncertainty{}, fmt.Errorf("fit: bootstrap needs >= 3 paired points, have %d/%d", len(xs), len(ys))
	}
	if resamples < 10 {
		return LinearUncertainty{}, fmt.Errorf("fit: at least 10 resamples required, got %d", resamples)
	}
	if rng == nil {
		return LinearUncertainty{}, fmt.Errorf("fit: nil rng")
	}
	n := len(xs)
	var slopes, intercepts []float64
	rx := make([]float64, n)
	ry := make([]float64, n)
	for r := 0; r < resamples; r++ {
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			rx[i], ry[i] = xs[j], ys[j]
		}
		l, err := LinearLSQ(rx, ry)
		if err != nil {
			continue
		}
		slopes = append(slopes, l.Slope)
		intercepts = append(intercepts, l.Intercept)
	}
	if len(slopes) < resamples/2 {
		return LinearUncertainty{}, fmt.Errorf("fit: only %d of %d resamples fit", len(slopes), resamples)
	}
	return LinearUncertainty{
		Slope:     summarizeU(slopes),
		Intercept: summarizeU(intercepts),
		Resamples: len(slopes),
	}, nil
}

// summarizeU condenses bootstrap estimates into mean ± stderr.
func summarizeU(xs []float64) Uncertainty {
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	sd := 0.0
	if len(xs) > 1 {
		sd = math.Sqrt(ss / float64(len(xs)-1))
	}
	return Uncertainty{Mean: m, StdErr: sd}
}
