package par

import (
	"strconv"

	"repro/internal/obs"
)

// Observability for the rank runner. Each rank owns a standalone
// histogram — no lock contention on the hot step loop beyond the
// histogram's own uncontended mutex — merged into a shared registry
// instrument only after the run (lock-free-by-ownership accumulation).

// EnableStepHistograms attaches a per-rank step-duration histogram with
// the given bucket bounds in seconds (empty selects obs.DefTimeBucketsS).
// Call before Run; subsequent steps record their wall duration.
func (r *Runner) EnableStepHistograms(boundsS []float64) {
	if len(boundsS) == 0 {
		boundsS = obs.DefTimeBucketsS
	}
	r.stepBoundsS = append([]float64(nil), boundsS...)
	for _, rk := range r.ranks {
		rk.stepHist = obs.NewHistogram(r.stepBoundsS)
	}
}

// ExportMetrics folds the runner's measurements into a registry: the
// per-rank step histograms merge into one "par_step_s" instrument, and
// each rank's compute/communication split lands in labeled gauges.
func (r *Runner) ExportMetrics(reg *obs.Registry) error {
	if reg == nil {
		return nil
	}
	for _, rk := range r.ranks {
		label := obs.L("rank", strconv.Itoa(rk.id))
		reg.Gauge("par_compute_s", label).Set(float64(rk.computeNS) / 1e9)
		reg.Gauge("par_comm_s", label).Set(float64(rk.commNS) / 1e9)
		if rk.stepHist == nil {
			continue
		}
		if err := reg.Histogram("par_step_s", r.stepBoundsS).Merge(rk.stepHist); err != nil {
			return err
		}
	}
	return nil
}

// ExportSpans renders each rank's measured phase split as a span
// aggregate under parent: one "rank" span per rank on its own track,
// with "compute" and "halo-exchange" children laid end to end from
// simStartS. The offsets are measured wall seconds projected onto the
// simulated axis — a composition view (the empirical Figure 9), not a
// replay of real concurrency.
func (r *Runner) ExportSpans(tr *obs.Tracer, parent *obs.Span, simStartS float64) {
	if tr == nil {
		return
	}
	for _, rk := range r.ranks {
		computeS := float64(rk.computeNS) / 1e9
		commS := float64(rk.commNS) / 1e9
		span := tr.StartChild(parent, "rank", simStartS)
		span.SetTrack("rank:" + strconv.Itoa(rk.id))
		span.SetAttr("rank", strconv.Itoa(rk.id))
		comp := tr.StartChild(span, "compute", simStartS)
		comp.End(simStartS + computeS)
		halo := tr.StartChild(span, "halo-exchange", simStartS+computeS)
		halo.End(simStartS + computeS + commS)
		span.End(simStartS + computeS + commS)
	}
}
