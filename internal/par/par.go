// Package par executes a decomposed LBM simulation in parallel: one
// goroutine per task ("rank"), halo values exchanged over channels, no
// shared mutable state between ranks. It is the MPI-substrate of this
// reproduction — the same owner-computes structure, pairwise halo
// messages, and double-buffered communication a distributed HARVEY run
// uses, so the per-task byte and message counts the performance models
// consume are exercised by real concurrent execution.
//
// Each rank's site update applies arithmetic identical to the serial
// lbm.Sparse engine, so a parallel run reproduces the serial result
// bitwise regardless of rank count — the key correctness oracle.
package par

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/decomp"
	"repro/internal/geometry"
	"repro/internal/lbm"
	"repro/internal/obs"
)

// edge carries one direction of a pairwise halo exchange. The two buffers
// rotate: with a capacity-1 channel, a buffer is never refilled before the
// receiver has consumed the message that preceded it.
type edge struct {
	ch   chan []float64
	bufs [2][]float64
	turn int
}

func (e *edge) nextBuf() []float64 {
	b := e.bufs[e.turn]
	e.turn ^= 1
	return b
}

// RankStats is the measured per-rank time split of a host run — the
// empirical counterpart of the model's Figure 9 composition.
type RankStats struct {
	Rank     int
	ComputeS float64 // collision + streaming + boundary conditions
	CommS    float64 // halo gather, send, receive, scatter (incl. waiting)
}

// rank is the per-goroutine state of one task.
type rank struct {
	id  int
	own []int32 // serial site indices owned, ascending

	computeNS int64 // accumulated compute time
	commNS    int64 // accumulated communication time

	stepHist *obs.Histogram // per-step wall durations; nil unless enabled

	f, fnew []float64 // nOwn*NQ distributions, AOS

	// src drives streaming: for flat slot (i*NQ+q) it encodes where the
	// post-collision value comes from:
	//   >= 0   local flat index into f
	//   -1     bounce-back (read f[i*NQ+Opp[q]])
	//   <= -2  remote: recv[-(src+2)] in the rank's flat receive space
	src []int32

	types  []geometry.PointType
	inletU []float64

	// Communication schedule.
	sendTo   []sendPlan // outgoing edges, sorted by peer
	recvFrom []recvPlan // incoming edges, sorted by peer
	recv     []float64  // flat receive space, one slot per incoming link
}

// sendPlan gathers local post-collision values into an edge buffer.
type sendPlan struct {
	peer    int
	e       *edge
	srcFlat []int32 // local flat indices (ownerLocal*NQ+q), canonical order
}

// recvPlan scatters an incoming message into the flat receive space.
type recvPlan struct {
	peer int
	e    *edge
	base int // first slot in recv for this edge
	n    int
}

// Clock abstracts the wall clock behind the per-rank timing split.
// Production runs measure real time; deterministic harnesses (and the
// fleet scheduler's simulated instances) inject a virtual clock so the
// same seed always yields the same RankStats.
type Clock func() time.Time

// Runner executes a partitioned simulation.
type Runner struct {
	ranks  []*rank
	params lbm.Params
	steps  int
	now    Clock

	stepBoundsS []float64 // histogram bucket bounds, set by EnableStepHistograms

	// site lookup for result readback: serial site -> (rank, local index)
	ownerOf []int32
	localOf []int32
}

// SetClock replaces the wall clock used for the compute/communication
// timing split. Passing nil restores time.Now.
func (r *Runner) SetClock(c Clock) {
	if c == nil {
		c = time.Now
	}
	r.now = c
}

// NewRunner builds per-rank state from the serial engine s (its current
// distributions become the initial condition) and partition p.
func NewRunner(s *lbm.Sparse, p *decomp.Partition) (*Runner, error) {
	if len(p.Owner) != s.N() {
		return nil, fmt.Errorf("par: partition covers %d sites, lattice has %d", len(p.Owner), s.N())
	}
	r := &Runner{
		params:  s.Params,
		now:     time.Now,
		ownerOf: make([]int32, s.N()),
		localOf: make([]int32, s.N()),
	}
	copy(r.ownerOf, p.Owner)

	// Owned-site lists in serial order.
	r.ranks = make([]*rank, p.NTasks)
	for t := range r.ranks {
		r.ranks[t] = &rank{id: t}
	}
	for si := 0; si < s.N(); si++ {
		t := int(p.Owner[si])
		r.localOf[si] = int32(len(r.ranks[t].own))
		r.ranks[t].own = append(r.ranks[t].own, int32(si))
	}

	// Canonical link ordering per directed edge (sender -> receiver):
	// ascending (receiverSerialSite, q). Build once, shared by both ends.
	type link struct {
		recvSite int32 // serial index of the receiving (pulling) site
		q        int   // direction being pulled
		sendSite int32 // serial index of the upstream site (owned by sender)
	}
	links := make(map[[2]int][]link) // [sender, receiver] -> links
	for si := 0; si < s.N(); si++ {
		recvT := int(p.Owner[si])
		for q := 0; q < lbm.NQ; q++ {
			up := s.Neighbor(si, lbm.Opp[q]) // upstream site for pulling q
			if up < 0 {
				continue
			}
			sendT := int(p.Owner[up])
			if sendT == recvT {
				continue
			}
			key := [2]int{sendT, recvT}
			links[key] = append(links[key], link{recvSite: int32(si), q: q, sendSite: int32(up)})
		}
	}
	for key := range links {
		ls := links[key]
		sort.Slice(ls, func(i, j int) bool {
			if ls[i].recvSite != ls[j].recvSite {
				return ls[i].recvSite < ls[j].recvSite
			}
			return ls[i].q < ls[j].q
		})
	}

	// Per-rank arrays, stream source tables, and communication plans.
	remoteSlot := make(map[[3]int32]int) // (receiver, site, q) -> flat recv slot
	for t, rk := range r.ranks {
		n := len(rk.own)
		rk.f = make([]float64, n*lbm.NQ)
		rk.fnew = make([]float64, n*lbm.NQ)
		rk.src = make([]int32, n*lbm.NQ)
		rk.types = make([]geometry.PointType, n)
		rk.inletU = make([]float64, n)
		for i, si := range rk.own {
			cell := s.Cell(int(si))
			copy(rk.f[i*lbm.NQ:(i+1)*lbm.NQ], cell[:])
			rk.types[i] = s.Type(int(si))
			rk.inletU[i] = s.InletVelocity(int(si))
		}
		// Incoming edges first: they assign receive slots.
		peers := make([]int, 0)
		for key := range links {
			if key[1] == t {
				peers = append(peers, key[0])
			}
		}
		sort.Ints(peers)
		for _, peer := range peers {
			ls := links[[2]int{peer, t}]
			plan := recvPlan{peer: peer, base: len(rk.recv), n: len(ls)}
			for k, l := range ls {
				remoteSlot[[3]int32{int32(t), l.recvSite, int32(l.q)}] = plan.base + k
			}
			rk.recv = append(rk.recv, make([]float64, len(ls))...)
			rk.recvFrom = append(rk.recvFrom, plan)
		}
	}

	// Stream source tables (need remoteSlot fully populated).
	for t, rk := range r.ranks {
		for i, si := range rk.own {
			for q := 0; q < lbm.NQ; q++ {
				up := s.Neighbor(int(si), lbm.Opp[q])
				switch {
				case up < 0:
					rk.src[i*lbm.NQ+q] = -1
				case int(p.Owner[up]) == t:
					rk.src[i*lbm.NQ+q] = r.localOf[up]*lbm.NQ + int32(q)
				default:
					slot, ok := remoteSlot[[3]int32{int32(t), si, int32(q)}]
					if !ok {
						return nil, fmt.Errorf("par: missing receive slot for rank %d site %d dir %d", t, si, q)
					}
					rk.src[i*lbm.NQ+q] = int32(-2 - slot)
				}
			}
		}
	}

	// Outgoing edges: channels plus gather tables matching the canonical
	// link order the receiver assigned slots in.
	for key, ls := range links {
		sendT, recvT := key[0], key[1]
		e := &edge{ch: make(chan []float64, 1)}
		e.bufs[0] = make([]float64, len(ls))
		e.bufs[1] = make([]float64, len(ls))
		sp := sendPlan{peer: recvT, e: e, srcFlat: make([]int32, len(ls))}
		for k, l := range ls {
			sp.srcFlat[k] = r.localOf[l.sendSite]*lbm.NQ + int32(l.q)
		}
		sender := r.ranks[sendT]
		sender.sendTo = append(sender.sendTo, sp)
		receiver := r.ranks[recvT]
		for pi := range receiver.recvFrom {
			if receiver.recvFrom[pi].peer == sendT {
				receiver.recvFrom[pi].e = e
			}
		}
	}
	for _, rk := range r.ranks {
		sort.Slice(rk.sendTo, func(i, j int) bool { return rk.sendTo[i].peer < rk.sendTo[j].peer })
	}
	return r, nil
}

// Run advances all ranks by the given number of timesteps concurrently.
func (r *Runner) Run(steps int) {
	base := r.steps
	var wg sync.WaitGroup
	for _, rk := range r.ranks {
		wg.Add(1)
		go func(rk *rank) {
			defer wg.Done()
			for k := 0; k < steps; k++ {
				if rk.stepHist == nil {
					rk.step(r.params, base+k, r.now)
					continue
				}
				tick := r.now()
				rk.step(r.params, base+k, r.now)
				rk.stepHist.Observe(r.now().Sub(tick).Seconds())
			}
		}(rk)
	}
	wg.Wait()
	r.steps += steps
}

// step is one rank-local timestep: collide, exchange halos, stream, apply
// boundary conditions — arithmetic identical to lbm.Sparse.Step.
func (rk *rank) step(p lbm.Params, stepIndex int, now Clock) {
	fx, fy, fz := p.Force[0], p.Force[1], p.Force[2]
	n := len(rk.own)
	tick := now()

	var cell [lbm.NQ]float64
	for i := 0; i < n; i++ {
		base := i * lbm.NQ
		copy(cell[:], rk.f[base:base+lbm.NQ])
		lbm.CollideCell(&cell, p, fx, fy, fz)
		copy(rk.f[base:base+lbm.NQ], cell[:])
	}

	rk.computeNS += now().Sub(tick).Nanoseconds()
	tick = now()

	// Post-collision halo exchange.
	for _, sp := range rk.sendTo {
		buf := sp.e.nextBuf()
		for k, flat := range sp.srcFlat {
			buf[k] = rk.f[flat]
		}
		sp.e.ch <- buf
	}
	for _, rp := range rk.recvFrom {
		msg := <-rp.e.ch
		copy(rk.recv[rp.base:rp.base+rp.n], msg)
	}

	rk.commNS += now().Sub(tick).Nanoseconds()
	tick = now()

	// Pull streaming.
	for i := 0; i < n; i++ {
		base := i * lbm.NQ
		for q := 0; q < lbm.NQ; q++ {
			switch src := rk.src[base+q]; {
			case src >= 0:
				rk.fnew[base+q] = rk.f[src]
			case src == -1:
				rk.fnew[base+q] = rk.f[base+lbm.Opp[q]]
			default:
				rk.fnew[base+q] = rk.recv[-(src + 2)]
			}
		}
	}

	// Boundary conditions.
	if !p.PeriodicX {
		var bc [lbm.NQ]float64
		scale := p.Pulsatile.Scale(stepIndex)
		for i := 0; i < n; i++ {
			switch rk.types[i] {
			case geometry.Inlet:
				lbm.Equilibrium(1, rk.inletU[i]*scale, 0, 0, &bc)
				copy(rk.fnew[i*lbm.NQ:(i+1)*lbm.NQ], bc[:])
			case geometry.Outlet:
				base := i * lbm.NQ
				copy(cell[:], rk.fnew[base:base+lbm.NQ])
				_, ux, uy, uz := lbm.Moments(&cell)
				lbm.Equilibrium(1, ux, uy, uz, &bc)
				copy(rk.fnew[base:base+lbm.NQ], bc[:])
			}
		}
	}

	rk.f, rk.fnew = rk.fnew, rk.f
	rk.computeNS += now().Sub(tick).Nanoseconds()
}

// Stats returns the measured per-rank compute/communication split since
// the runner was built.
func (r *Runner) Stats() []RankStats {
	out := make([]RankStats, len(r.ranks))
	for i, rk := range r.ranks {
		out[i] = RankStats{
			Rank:     rk.id,
			ComputeS: float64(rk.computeNS) / 1e9,
			CommS:    float64(rk.commNS) / 1e9,
		}
	}
	return out
}

// Steps returns the number of completed parallel timesteps.
func (r *Runner) Steps() int { return r.steps }

// Cell returns the distribution at serial site si after the last Run.
func (r *Runner) Cell(si int) (c [lbm.NQ]float64) {
	rk := r.ranks[r.ownerOf[si]]
	base := int(r.localOf[si]) * lbm.NQ
	copy(c[:], rk.f[base:base+lbm.NQ])
	return c
}

// Macro returns density and velocity at serial site si.
func (r *Runner) Macro(si int) (rho, ux, uy, uz float64) {
	c := r.Cell(si)
	return lbm.Moments(&c)
}

// TotalMass sums density across all ranks.
func (r *Runner) TotalMass() float64 {
	var m float64
	for _, rk := range r.ranks {
		for _, v := range rk.f {
			m += v
		}
	}
	return m
}

// WriteBack copies the parallel state into the serial engine s, which must
// be the engine the runner was built from (or an identically shaped one).
func (r *Runner) WriteBack(s *lbm.Sparse) {
	for si := 0; si < len(r.ownerOf); si++ {
		s.SetCell(si, r.Cell(si))
	}
}
