package par

import (
	"math"
	"testing"
	"time"

	"repro/internal/decomp"
	"repro/internal/geometry"
	"repro/internal/lbm"
)

func setup(t *testing.T, dom *geometry.Domain, p lbm.Params, ntasks int) (*lbm.Sparse, *Runner) {
	t.Helper()
	serial, err := lbm.NewSparse(dom, p)
	if err != nil {
		t.Fatal(err)
	}
	part, err := decomp.RCB(serial, ntasks, lbm.HarveyAccess())
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewRunner(serial, part)
	if err != nil {
		t.Fatal(err)
	}
	return serial, runner
}

// TestParallelMatchesSerialBitwise is the central oracle: the decomposed
// run must reproduce the serial trajectory exactly, for several rank
// counts, on both periodic force-driven and inlet/outlet flows.
func TestParallelMatchesSerialBitwise(t *testing.T) {
	cases := []struct {
		name string
		dom  func() (*geometry.Domain, error)
		p    lbm.Params
	}{
		{"periodic-cylinder", func() (*geometry.Domain, error) { return geometry.Cylinder(16, 5) },
			lbm.Params{Tau: 0.9, PeriodicX: true, Force: [3]float64{1e-5, 0, 0}}},
		{"inlet-cylinder", func() (*geometry.Domain, error) { return geometry.Cylinder(16, 5) },
			lbm.Params{Tau: 0.9, UMax: 0.03}},
		{"aorta", func() (*geometry.Domain, error) { return geometry.Aorta(4) },
			lbm.Params{Tau: 0.95, UMax: 0.02}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, ntasks := range []int{2, 5, 16} {
				dom, err := tc.dom()
				if err != nil {
					t.Fatal(err)
				}
				serial, runner := setup(t, dom, tc.p, ntasks)
				const steps = 25
				serial.Run(steps)
				runner.Run(steps)
				for si := 0; si < serial.N(); si++ {
					want := serial.Cell(si)
					got := runner.Cell(si)
					if want != got {
						t.Fatalf("ntasks=%d site %d: parallel diverges from serial\n got %v\nwant %v",
							ntasks, si, got, want)
					}
				}
			}
		})
	}
}

func TestRunnerSingleTask(t *testing.T) {
	dom, err := geometry.Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	serial, runner := setup(t, dom, lbm.Params{Tau: 0.9, UMax: 0.02}, 1)
	serial.Run(10)
	runner.Run(10)
	for si := 0; si < serial.N(); si++ {
		if serial.Cell(si) != runner.Cell(si) {
			t.Fatal("single-task runner diverges from serial")
		}
	}
}

func TestRunnerMassMatchesSerial(t *testing.T) {
	dom, err := geometry.Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := lbm.Params{Tau: 0.9, PeriodicX: true, Force: [3]float64{1e-5, 0, 0}}
	serial, runner := setup(t, dom, p, 8)
	serial.Run(30)
	runner.Run(30)
	if d := math.Abs(serial.TotalMass() - runner.TotalMass()); d > 1e-9 {
		t.Errorf("mass differs by %v", d)
	}
}

func TestRunnerIncrementalRuns(t *testing.T) {
	// Run(a) then Run(b) must equal Run(a+b).
	dom, err := geometry.Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := lbm.Params{Tau: 0.9, UMax: 0.02}
	_, r1 := setup(t, dom, p, 4)
	r1.Run(9)
	r1.Run(11)

	dom2, err := geometry.Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, r2 := setup(t, dom2, p, 4)
	r2.Run(20)

	if r1.Steps() != 20 || r2.Steps() != 20 {
		t.Fatalf("step counters wrong: %d, %d", r1.Steps(), r2.Steps())
	}
	for si := 0; si < len(r1.ownerOf); si++ {
		if r1.Cell(si) != r2.Cell(si) {
			t.Fatal("incremental runs diverge from single run")
		}
	}
}

func TestWriteBack(t *testing.T) {
	dom, err := geometry.Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := lbm.Params{Tau: 0.9, UMax: 0.02}
	serial, runner := setup(t, dom, p, 4)
	runner.Run(15)
	runner.WriteBack(serial)
	for si := 0; si < serial.N(); si++ {
		if serial.Cell(si) != runner.Cell(si) {
			t.Fatal("WriteBack did not copy state")
		}
	}
}

func TestNewRunnerRejectsMismatchedPartition(t *testing.T) {
	dom, err := geometry.Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	bad := &decomp.Partition{NTasks: 2, Owner: make([]int32, 3)}
	if _, err := NewRunner(s, bad); err == nil {
		t.Error("want error for mismatched partition")
	}
}

func TestRunnerStartsFromCurrentState(t *testing.T) {
	// The runner must pick up the serial engine's evolved state, not the
	// initial condition.
	dom, err := geometry.Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := lbm.Params{Tau: 0.9, UMax: 0.02}
	serial, err := lbm.NewSparse(dom, p)
	if err != nil {
		t.Fatal(err)
	}
	serial.Run(10) // evolve before decomposing
	part, err := decomp.RCB(serial, 4, lbm.HarveyAccess())
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewRunner(serial, part)
	if err != nil {
		t.Fatal(err)
	}
	serial.Run(10)
	runner.Run(10)
	for si := 0; si < serial.N(); si++ {
		if serial.Cell(si) != runner.Cell(si) {
			t.Fatal("runner did not start from evolved state")
		}
	}
}

func TestRunnerStats(t *testing.T) {
	dom, err := geometry.Cylinder(20, 6)
	if err != nil {
		t.Fatal(err)
	}
	_, runner := setup(t, dom, lbm.Params{Tau: 0.9, PeriodicX: true, Force: [3]float64{1e-5, 0, 0}}, 4)
	runner.Run(20)
	stats := runner.Stats()
	if len(stats) != 4 {
		t.Fatalf("stats for %d ranks, want 4", len(stats))
	}
	for _, s := range stats {
		if s.ComputeS <= 0 {
			t.Errorf("rank %d has zero compute time", s.Rank)
		}
		if s.CommS < 0 {
			t.Errorf("rank %d has negative comm time", s.Rank)
		}
		// With 4 ranks exchanging halos every step, communication happens.
		if s.CommS == 0 {
			t.Errorf("rank %d recorded no communication", s.Rank)
		}
	}
}

// TestInjectedClockDeterministicStats pins the injectable-clock
// contract from two angles. A single-rank run with a tick-per-reading
// fake clock yields an exact, reproducible compute/communication
// split: step() reads the clock six times per step, so each step books
// exactly 2ms of compute and 1ms of communication under a
// 1ms-per-reading clock. A multi-rank run with a constant clock yields
// exactly zero times on every rank — no wall-clock noise can leak in —
// and therefore byte-identical Stats across repeated runs regardless
// of goroutine scheduling.
func TestInjectedClockDeterministicStats(t *testing.T) {
	dom, err := geometry.Cylinder(20, 6)
	if err != nil {
		t.Fatal(err)
	}
	_, runner := setup(t, dom, lbm.Params{Tau: 0.9, PeriodicX: true, Force: [3]float64{1e-5, 0, 0}}, 1)
	var ticks int64 // single rank: the clock is read from one goroutine
	runner.SetClock(func() time.Time {
		ticks++
		return time.Unix(0, ticks*int64(time.Millisecond))
	})
	const steps = 10
	runner.Run(steps)
	for _, s := range runner.Stats() {
		if want := steps * 2e-3; math.Abs(s.ComputeS-want) > 1e-12 {
			t.Errorf("rank %d ComputeS = %g, want %g", s.Rank, s.ComputeS, want)
		}
		if want := steps * 1e-3; math.Abs(s.CommS-want) > 1e-12 {
			t.Errorf("rank %d CommS = %g, want %g", s.Rank, s.CommS, want)
		}
	}

	frozen := time.Unix(42, 0)
	run := func() []RankStats {
		dom, err := geometry.Cylinder(20, 6)
		if err != nil {
			t.Fatal(err)
		}
		_, r := setup(t, dom, lbm.Params{Tau: 0.9, PeriodicX: true, Force: [3]float64{1e-5, 0, 0}}, 4)
		r.SetClock(func() time.Time { return frozen })
		r.Run(steps)
		return r.Stats()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d stats differ across identical frozen-clock runs:\n got %+v\nwant %+v", i, b[i], a[i])
		}
		if a[i].ComputeS != 0 || a[i].CommS != 0 {
			t.Fatalf("rank %d booked nonzero time under a frozen clock: %+v", i, a[i])
		}
	}
}

// TestSetClockNilRestoresWallClock ensures SetClock(nil) falls back to
// time.Now rather than panicking mid-run.
func TestSetClockNilRestoresWallClock(t *testing.T) {
	dom, err := geometry.Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, runner := setup(t, dom, lbm.Params{Tau: 0.9, PeriodicX: true, Force: [3]float64{1e-5, 0, 0}}, 2)
	runner.SetClock(nil)
	runner.Run(2)
	for _, s := range runner.Stats() {
		if s.ComputeS < 0 || s.CommS < 0 {
			t.Fatalf("negative time with wall clock: %+v", s)
		}
	}
}

func TestParallelPulsatileMatchesSerial(t *testing.T) {
	// The pulsatile inlet depends on the global step index, which the
	// parallel runner must thread through identically across Run calls.
	dom, err := geometry.Cylinder(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := lbm.Params{Tau: 0.9, UMax: 0.03, Pulsatile: lbm.Waveform{Period: 40, Amplitude: 0.5}}
	serial, runner := setup(t, dom, p, 6)
	serial.Run(30)
	runner.Run(13) // split across calls: step-index bookkeeping must hold
	runner.Run(17)
	for si := 0; si < serial.N(); si++ {
		if serial.Cell(si) != runner.Cell(si) {
			t.Fatal("pulsatile parallel run diverges from serial")
		}
	}
}

func TestParallelTRTMatchesSerial(t *testing.T) {
	// The shared lbm.CollideCell keeps the bitwise oracle intact for the
	// TRT operator too.
	dom, err := geometry.Cylinder(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := lbm.Params{Tau: 0.9, UMax: 0.02, Collision: lbm.TRT}
	serial, runner := setup(t, dom, p, 6)
	serial.Run(25)
	runner.Run(25)
	for si := 0; si < serial.N(); si++ {
		if serial.Cell(si) != runner.Cell(si) {
			t.Fatal("TRT parallel run diverges from serial")
		}
	}
}
