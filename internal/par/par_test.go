package par

import (
	"math"
	"testing"

	"repro/internal/decomp"
	"repro/internal/geometry"
	"repro/internal/lbm"
)

func setup(t *testing.T, dom *geometry.Domain, p lbm.Params, ntasks int) (*lbm.Sparse, *Runner) {
	t.Helper()
	serial, err := lbm.NewSparse(dom, p)
	if err != nil {
		t.Fatal(err)
	}
	part, err := decomp.RCB(serial, ntasks, lbm.HarveyAccess())
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewRunner(serial, part)
	if err != nil {
		t.Fatal(err)
	}
	return serial, runner
}

// TestParallelMatchesSerialBitwise is the central oracle: the decomposed
// run must reproduce the serial trajectory exactly, for several rank
// counts, on both periodic force-driven and inlet/outlet flows.
func TestParallelMatchesSerialBitwise(t *testing.T) {
	cases := []struct {
		name string
		dom  func() (*geometry.Domain, error)
		p    lbm.Params
	}{
		{"periodic-cylinder", func() (*geometry.Domain, error) { return geometry.Cylinder(16, 5) },
			lbm.Params{Tau: 0.9, PeriodicX: true, Force: [3]float64{1e-5, 0, 0}}},
		{"inlet-cylinder", func() (*geometry.Domain, error) { return geometry.Cylinder(16, 5) },
			lbm.Params{Tau: 0.9, UMax: 0.03}},
		{"aorta", func() (*geometry.Domain, error) { return geometry.Aorta(4) },
			lbm.Params{Tau: 0.95, UMax: 0.02}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, ntasks := range []int{2, 5, 16} {
				dom, err := tc.dom()
				if err != nil {
					t.Fatal(err)
				}
				serial, runner := setup(t, dom, tc.p, ntasks)
				const steps = 25
				serial.Run(steps)
				runner.Run(steps)
				for si := 0; si < serial.N(); si++ {
					want := serial.Cell(si)
					got := runner.Cell(si)
					if want != got {
						t.Fatalf("ntasks=%d site %d: parallel diverges from serial\n got %v\nwant %v",
							ntasks, si, got, want)
					}
				}
			}
		})
	}
}

func TestRunnerSingleTask(t *testing.T) {
	dom, err := geometry.Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	serial, runner := setup(t, dom, lbm.Params{Tau: 0.9, UMax: 0.02}, 1)
	serial.Run(10)
	runner.Run(10)
	for si := 0; si < serial.N(); si++ {
		if serial.Cell(si) != runner.Cell(si) {
			t.Fatal("single-task runner diverges from serial")
		}
	}
}

func TestRunnerMassMatchesSerial(t *testing.T) {
	dom, err := geometry.Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := lbm.Params{Tau: 0.9, PeriodicX: true, Force: [3]float64{1e-5, 0, 0}}
	serial, runner := setup(t, dom, p, 8)
	serial.Run(30)
	runner.Run(30)
	if d := math.Abs(serial.TotalMass() - runner.TotalMass()); d > 1e-9 {
		t.Errorf("mass differs by %v", d)
	}
}

func TestRunnerIncrementalRuns(t *testing.T) {
	// Run(a) then Run(b) must equal Run(a+b).
	dom, err := geometry.Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := lbm.Params{Tau: 0.9, UMax: 0.02}
	_, r1 := setup(t, dom, p, 4)
	r1.Run(9)
	r1.Run(11)

	dom2, err := geometry.Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, r2 := setup(t, dom2, p, 4)
	r2.Run(20)

	if r1.Steps() != 20 || r2.Steps() != 20 {
		t.Fatalf("step counters wrong: %d, %d", r1.Steps(), r2.Steps())
	}
	for si := 0; si < len(r1.ownerOf); si++ {
		if r1.Cell(si) != r2.Cell(si) {
			t.Fatal("incremental runs diverge from single run")
		}
	}
}

func TestWriteBack(t *testing.T) {
	dom, err := geometry.Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := lbm.Params{Tau: 0.9, UMax: 0.02}
	serial, runner := setup(t, dom, p, 4)
	runner.Run(15)
	runner.WriteBack(serial)
	for si := 0; si < serial.N(); si++ {
		if serial.Cell(si) != runner.Cell(si) {
			t.Fatal("WriteBack did not copy state")
		}
	}
}

func TestNewRunnerRejectsMismatchedPartition(t *testing.T) {
	dom, err := geometry.Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	bad := &decomp.Partition{NTasks: 2, Owner: make([]int32, 3)}
	if _, err := NewRunner(s, bad); err == nil {
		t.Error("want error for mismatched partition")
	}
}

func TestRunnerStartsFromCurrentState(t *testing.T) {
	// The runner must pick up the serial engine's evolved state, not the
	// initial condition.
	dom, err := geometry.Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := lbm.Params{Tau: 0.9, UMax: 0.02}
	serial, err := lbm.NewSparse(dom, p)
	if err != nil {
		t.Fatal(err)
	}
	serial.Run(10) // evolve before decomposing
	part, err := decomp.RCB(serial, 4, lbm.HarveyAccess())
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewRunner(serial, part)
	if err != nil {
		t.Fatal(err)
	}
	serial.Run(10)
	runner.Run(10)
	for si := 0; si < serial.N(); si++ {
		if serial.Cell(si) != runner.Cell(si) {
			t.Fatal("runner did not start from evolved state")
		}
	}
}

func TestRunnerStats(t *testing.T) {
	dom, err := geometry.Cylinder(20, 6)
	if err != nil {
		t.Fatal(err)
	}
	_, runner := setup(t, dom, lbm.Params{Tau: 0.9, PeriodicX: true, Force: [3]float64{1e-5, 0, 0}}, 4)
	runner.Run(20)
	stats := runner.Stats()
	if len(stats) != 4 {
		t.Fatalf("stats for %d ranks, want 4", len(stats))
	}
	for _, s := range stats {
		if s.ComputeS <= 0 {
			t.Errorf("rank %d has zero compute time", s.Rank)
		}
		if s.CommS < 0 {
			t.Errorf("rank %d has negative comm time", s.Rank)
		}
		// With 4 ranks exchanging halos every step, communication happens.
		if s.CommS == 0 {
			t.Errorf("rank %d recorded no communication", s.Rank)
		}
	}
}

func TestParallelPulsatileMatchesSerial(t *testing.T) {
	// The pulsatile inlet depends on the global step index, which the
	// parallel runner must thread through identically across Run calls.
	dom, err := geometry.Cylinder(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := lbm.Params{Tau: 0.9, UMax: 0.03, Pulsatile: lbm.Waveform{Period: 40, Amplitude: 0.5}}
	serial, runner := setup(t, dom, p, 6)
	serial.Run(30)
	runner.Run(13) // split across calls: step-index bookkeeping must hold
	runner.Run(17)
	for si := 0; si < serial.N(); si++ {
		if serial.Cell(si) != runner.Cell(si) {
			t.Fatal("pulsatile parallel run diverges from serial")
		}
	}
}

func TestParallelTRTMatchesSerial(t *testing.T) {
	// The shared lbm.CollideCell keeps the bitwise oracle intact for the
	// TRT operator too.
	dom, err := geometry.Cylinder(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := lbm.Params{Tau: 0.9, UMax: 0.02, Collision: lbm.TRT}
	serial, runner := setup(t, dom, p, 6)
	serial.Run(25)
	runner.Run(25)
	for si := 0; si < serial.N(); si++ {
		if serial.Cell(si) != runner.Cell(si) {
			t.Fatal("TRT parallel run diverges from serial")
		}
	}
}
