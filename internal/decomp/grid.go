package decomp

import (
	"fmt"
	"math"

	"repro/internal/lbm"
)

// Grid decomposes the lattice with a uniform px x py x pz block grid over
// the bounding box — the naive baseline against which RCB's balanced
// cuts are judged. Empty blocks (all-solid regions of sparse anatomies)
// are legal: their tasks own zero sites, which is exactly the load
// imbalance the z(n) law of Eq. 11 has to absorb for codes without a
// balancing decomposer.
func Grid(s *lbm.Sparse, px, py, pz int, m lbm.AccessModel) (*Partition, error) {
	if px < 1 || py < 1 || pz < 1 {
		return nil, fmt.Errorf("decomp: grid %dx%dx%d must be positive", px, py, pz)
	}
	ntasks := px * py * pz
	if ntasks > s.N() {
		return nil, fmt.Errorf("decomp: grid of %d blocks exceeds %d fluid sites", ntasks, s.N())
	}
	nx, ny, nz := s.Dom.NX, s.Dom.NY, s.Dom.NZ
	p := &Partition{NTasks: ntasks, Owner: make([]int32, s.N())}
	for si := 0; si < s.N(); si++ {
		x, y, z := s.SiteCoords(si)
		bx := x * px / nx
		by := y * py / ny
		bz := z * pz / nz
		p.Owner[si] = int32((bz*py+by)*px + bx)
	}
	p.computeStats(s, m)
	return p, nil
}

// GridCube decomposes with a near-cubic grid of approximately ntasks
// blocks: the factorization of ntasks into three factors closest to its
// cube root, preferring more cuts along longer axes.
func GridCube(s *lbm.Sparse, ntasks int, m lbm.AccessModel) (*Partition, error) {
	if ntasks < 1 {
		return nil, fmt.Errorf("decomp: ntasks %d must be positive", ntasks)
	}
	px, py, pz := factor3(ntasks)
	// Assign the largest factor to the longest domain axis.
	type axis struct {
		length int
		factor *int
	}
	dims := []axis{{s.Dom.NX, &px}, {s.Dom.NY, &py}, {s.Dom.NZ, &pz}}
	factors := []int{px, py, pz}
	sortDesc(factors)
	// Order axes by length descending and hand out factors in order.
	for i := 0; i < 3; i++ {
		longest := i
		for j := i + 1; j < 3; j++ {
			if dims[j].length > dims[longest].length {
				longest = j
			}
		}
		dims[i], dims[longest] = dims[longest], dims[i]
		*dims[i].factor = factors[i]
	}
	return Grid(s, px, py, pz, m)
}

// factor3 splits n into three factors as close to n^(1/3) as its divisors
// allow, greedily: the largest divisor of n not exceeding n^(1/3), then
// the same for the remainder's square root.
func factor3(n int) (a, b, c int) {
	a = largestDivisorAtMost(n, int(math.Cbrt(float64(n))+1e-9))
	rem := n / a
	b = largestDivisorAtMost(rem, int(math.Sqrt(float64(rem))+1e-9))
	c = rem / b
	return a, b, c
}

// largestDivisorAtMost returns the largest divisor of n that does not
// exceed limit (at least 1).
func largestDivisorAtMost(n, limit int) int {
	if limit < 1 {
		limit = 1
	}
	for d := limit; d >= 1; d-- {
		if n%d == 0 {
			return d
		}
	}
	return 1
}

// sortDesc sorts a tiny slice in place, descending.
func sortDesc(xs []int) {
	for i := 0; i < len(xs); i++ {
		for j := i + 1; j < len(xs); j++ {
			if xs[j] > xs[i] {
				xs[i], xs[j] = xs[j], xs[i]
			}
		}
	}
}
