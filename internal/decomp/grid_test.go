package decomp

import (
	"testing"

	"repro/internal/geometry"
	"repro/internal/lbm"
)

func TestGridValidation(t *testing.T) {
	s := cylinderSolver(t)
	m := lbm.HarveyAccess()
	if _, err := Grid(s, 0, 1, 1, m); err == nil {
		t.Error("want error for zero factor")
	}
	if _, err := Grid(s, 1000, 1000, 1000, m); err == nil {
		t.Error("want error for more blocks than sites")
	}
}

func TestGridCoversAllSites(t *testing.T) {
	s := cylinderSolver(t)
	p, err := Grid(s, 4, 2, 2, lbm.HarveyAccess())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(s); err != nil {
		t.Fatal(err)
	}
	if p.NTasks != 16 {
		t.Errorf("NTasks = %d, want 16", p.NTasks)
	}
}

func TestGridEmptyBlocksAllowed(t *testing.T) {
	// A sparse anatomy under a fine grid leaves blocks with no fluid.
	dom, err := geometry.Cerebral(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := solver(t, dom)
	p, err := Grid(s, 4, 4, 4, lbm.HarveyAccess())
	if err != nil {
		t.Fatal(err)
	}
	empty := 0
	for i := range p.Tasks {
		if p.Tasks[i].Points == 0 {
			empty++
		}
	}
	if empty == 0 {
		t.Error("expected empty blocks on a sparse tree geometry")
	}
	if err := p.Validate(s); err != nil {
		t.Fatal(err)
	}
}

func TestRCBBalancesBetterThanGrid(t *testing.T) {
	// The reason HARVEY-class codes use balanced decompositions: on an
	// anatomical geometry RCB's imbalance is far below the uniform grid's.
	dom, err := geometry.Aorta(6)
	if err != nil {
		t.Fatal(err)
	}
	s := solver(t, dom)
	m := lbm.HarveyAccess()
	rcb, err := RCB(s, 27, m)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := GridCube(s, 27, m)
	if err != nil {
		t.Fatal(err)
	}
	if rcb.Imbalance() >= grid.Imbalance() {
		t.Errorf("RCB z=%v not below grid z=%v", rcb.Imbalance(), grid.Imbalance())
	}
	if grid.Imbalance() < 1.5 {
		t.Errorf("grid on sparse anatomy should be badly imbalanced, z=%v", grid.Imbalance())
	}
}

func TestGridCube(t *testing.T) {
	s := cylinderSolver(t)
	p, err := GridCube(s, 12, lbm.HarveyAccess())
	if err != nil {
		t.Fatal(err)
	}
	if p.NTasks != 12 {
		t.Errorf("NTasks = %d, want 12", p.NTasks)
	}
	if err := p.Validate(s); err != nil {
		t.Fatal(err)
	}
	if _, err := GridCube(s, 0, lbm.HarveyAccess()); err == nil {
		t.Error("want error for zero tasks")
	}
}

func TestFactor3(t *testing.T) {
	cases := []struct{ n, wantProduct int }{
		{1, 1}, {8, 8}, {12, 12}, {27, 27}, {36, 36}, {17, 17}, {128, 128},
	}
	for _, c := range cases {
		a, b, d := factor3(c.n)
		if a*b*d != c.wantProduct {
			t.Errorf("factor3(%d) = %d*%d*%d != %d", c.n, a, b, d, c.wantProduct)
		}
		if a < 1 || b < 1 || d < 1 {
			t.Errorf("factor3(%d) returned non-positive factor", c.n)
		}
	}
	// A perfect cube factors evenly.
	if a, b, c := factor3(27); a != 3 || b != 3 || c != 3 {
		t.Errorf("factor3(27) = %d,%d,%d, want 3,3,3", a, b, c)
	}
}

func TestLargestDivisorAtMost(t *testing.T) {
	if got := largestDivisorAtMost(12, 3); got != 3 {
		t.Errorf("largestDivisorAtMost(12,3) = %d, want 3", got)
	}
	if got := largestDivisorAtMost(17, 4); got != 1 {
		t.Errorf("largestDivisorAtMost(17,4) = %d, want 1", got)
	}
	if got := largestDivisorAtMost(10, 0); got != 1 {
		t.Errorf("limit clamp failed: %d", got)
	}
}
