package decomp

import (
	"math"
	"testing"

	"repro/internal/geometry"
	"repro/internal/lbm"
)

func solver(t *testing.T, dom *geometry.Domain) *lbm.Sparse {
	t.Helper()
	s, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, PeriodicX: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func cylinderSolver(t *testing.T) *lbm.Sparse {
	t.Helper()
	dom, err := geometry.Cylinder(32, 7)
	if err != nil {
		t.Fatal(err)
	}
	return solver(t, dom)
}

func TestRCBValidation(t *testing.T) {
	s := cylinderSolver(t)
	m := lbm.HarveyAccess()
	if _, err := RCB(s, 0, m); err == nil {
		t.Error("want error for zero tasks")
	}
	if _, err := RCB(s, s.N()+1, m); err == nil {
		t.Error("want error for more tasks than sites")
	}
}

func TestRCBInvariantsAcrossTaskCounts(t *testing.T) {
	s := cylinderSolver(t)
	m := lbm.HarveyAccess()
	for _, k := range []int{1, 2, 3, 4, 7, 8, 16, 33, 64} {
		p, err := RCB(s, k, m)
		if err != nil {
			t.Fatalf("RCB(%d): %v", k, err)
		}
		if err := p.Validate(s); err != nil {
			t.Fatalf("RCB(%d): %v", k, err)
		}
		if p.NTasks != k || len(p.Tasks) != k {
			t.Fatalf("RCB(%d): got %d tasks", k, len(p.Tasks))
		}
		for i := range p.Tasks {
			if p.Tasks[i].Points == 0 {
				t.Errorf("RCB(%d): task %d owns no sites", k, i)
			}
		}
		if z := p.Imbalance(); z < 1-1e-9 {
			t.Errorf("RCB(%d): imbalance %v below 1", k, z)
		}
	}
}

func TestRCBSerialCase(t *testing.T) {
	s := cylinderSolver(t)
	p, err := RCB(s, 1, lbm.HarveyAccess())
	if err != nil {
		t.Fatal(err)
	}
	if p.Tasks[0].Points != s.N() {
		t.Errorf("serial task owns %d of %d sites", p.Tasks[0].Points, s.N())
	}
	if len(p.Tasks[0].Sends) != 0 {
		t.Error("serial partition has halo messages")
	}
	if z := p.Imbalance(); z != 1 {
		t.Errorf("serial imbalance = %v, want exactly 1", z)
	}
	if math.Abs(p.TotalBytes()-s.BytesSerial(lbm.HarveyAccess())) > 1e-6 {
		t.Errorf("TotalBytes %v != serial bytes %v", p.TotalBytes(), s.BytesSerial(lbm.HarveyAccess()))
	}
}

func TestRCBBalanceQuality(t *testing.T) {
	// RCB on a well-shaped domain must stay within a modest imbalance.
	s := cylinderSolver(t)
	p, err := RCB(s, 16, lbm.HarveyAccess())
	if err != nil {
		t.Fatal(err)
	}
	if z := p.Imbalance(); z > 1.35 {
		t.Errorf("imbalance %v too high for cylinder/16", z)
	}
}

func TestRCBTotalBytesInvariant(t *testing.T) {
	// Decomposition must not create or destroy work.
	s := cylinderSolver(t)
	m := lbm.HarveyAccess()
	serial := s.BytesSerial(m)
	for _, k := range []int{2, 8, 32} {
		p, err := RCB(s, k, m)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(p.TotalBytes()-serial) / serial; rel > 1e-12 {
			t.Errorf("RCB(%d): total bytes drifted by %v", k, rel)
		}
	}
}

func TestRCBDeterminism(t *testing.T) {
	s := cylinderSolver(t)
	m := lbm.HarveyAccess()
	a, err := RCB(s, 8, m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RCB(s, 8, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Owner {
		if a.Owner[i] != b.Owner[i] {
			t.Fatalf("nondeterministic ownership at site %d", i)
		}
	}
}

func TestHaloGrowsWithTasks(t *testing.T) {
	// Strong scaling: more tasks, more total communication surface.
	s := cylinderSolver(t)
	m := lbm.HarveyAccess()
	p2, err := RCB(s, 2, m)
	if err != nil {
		t.Fatal(err)
	}
	p16, err := RCB(s, 16, m)
	if err != nil {
		t.Fatal(err)
	}
	var tot2, tot16 float64
	for i := range p2.Tasks {
		tot2 += p2.Tasks[i].TotalSendBytes()
	}
	for i := range p16.Tasks {
		tot16 += p16.Tasks[i].TotalSendBytes()
	}
	if tot16 <= tot2 {
		t.Errorf("total halo bytes did not grow: %v (16) vs %v (2)", tot16, tot2)
	}
	if p16.MaxEvents() < p2.MaxEvents() {
		t.Errorf("max events shrank: %d vs %d", p16.MaxEvents(), p2.MaxEvents())
	}
}

func TestCylinderCommunicatesMoreThanCerebral(t *testing.T) {
	// Figure 2 narrative: per fluid point, the efficiently packed cylinder
	// needs more halo exchange than the thin-vesseled cerebral tree.
	cyl := cylinderSolver(t)
	dom, err := geometry.Cerebral(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	cer := solver(t, dom)
	m := lbm.HarveyAccess()
	const k = 16
	pc, err := RCB(cyl, k, m)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := RCB(cer, k, m)
	if err != nil {
		t.Fatal(err)
	}
	perPointCyl := pc.MaxSendBytes() / (float64(cyl.N()) / k)
	perPointCer := pe.MaxSendBytes() / (float64(cer.N()) / k)
	if perPointCyl <= perPointCer {
		t.Errorf("cylinder halo per point (%v) not above cerebral (%v)", perPointCyl, perPointCer)
	}
}

func TestImbalanceGrowsWithTasksOnIrregularGeometry(t *testing.T) {
	// The z(n) law (Eq. 11) is monotone; measured imbalance on an
	// anatomical geometry should trend upward over a wide task sweep.
	dom, err := geometry.Aorta(5)
	if err != nil {
		t.Fatal(err)
	}
	s := solver(t, dom)
	m := lbm.HarveyAccess()
	pSmall, err := RCB(s, 2, m)
	if err != nil {
		t.Fatal(err)
	}
	pLarge, err := RCB(s, 128, m)
	if err != nil {
		t.Fatal(err)
	}
	if pLarge.Imbalance() < pSmall.Imbalance()-0.02 {
		t.Errorf("imbalance did not grow: z(2)=%v z(128)=%v", pSmall.Imbalance(), pLarge.Imbalance())
	}
}

func TestTaskAccessors(t *testing.T) {
	s := cylinderSolver(t)
	p, err := RCB(s, 4, lbm.HarveyAccess())
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Tasks {
		task := &p.Tasks[i]
		if task.Events() != len(task.Sends) {
			t.Errorf("Events() mismatch on task %d", i)
		}
		var want float64
		for _, h := range task.Sends {
			want += h.Bytes()
			if h.Links <= 0 {
				t.Errorf("task %d has empty halo to %d", i, h.Peer)
			}
		}
		if math.Abs(task.TotalSendBytes()-want) > 1e-9 {
			t.Errorf("TotalSendBytes mismatch on task %d", i)
		}
	}
}

func TestHaloBytesUnit(t *testing.T) {
	h := Halo{Peer: 1, Links: 10}
	if got := h.Bytes(); got != 10*lbm.CommBytesPerLink {
		t.Errorf("Halo.Bytes = %v, want %v", got, 10*lbm.CommBytesPerLink)
	}
}
