// Package decomp partitions a sparse LBM lattice across parallel tasks and
// derives exactly the quantities the paper's performance models consume:
// per-task point and byte counts (the direct model's n_bytes-j of Eq. 9),
// halo message sizes and event counts between task pairs, and the measured
// load-imbalance factors that the generalized model's z(n) law (Eqs. 10-11)
// is fitted against.
//
// The partitioner is recursive coordinate bisection (RCB) over fluid
// sites: at every level the current point set is split along the longest
// axis of its bounding box, weighted by task share, which is the balanced
// geometric decomposition HARVEY-class codes use.
package decomp

import (
	"fmt"
	"sort"

	"repro/internal/geometry"
	"repro/internal/lbm"
)

// Halo describes one direction of a pairwise halo exchange: the lattice
// links crossing from one task to a specific peer.
type Halo struct {
	Peer  int // receiving task
	Links int // (site, direction) pairs crossing per timestep
}

// Bytes returns the message payload per timestep.
func (h Halo) Bytes() float64 { return float64(h.Links) * lbm.CommBytesPerLink }

// Task summarizes one task's share of the decomposed workload.
type Task struct {
	ID     int
	Points int                        // fluid sites owned
	ByType map[geometry.PointType]int // composition of owned sites
	Bytes  float64                    // memory bytes accessed per timestep (Eq. 9)
	Sends  []Halo                     // outgoing halo messages, sorted by peer
}

// Events returns the number of send events per timestep (one per peer; the
// matching receives are the peers' sends).
func (t *Task) Events() int { return len(t.Sends) }

// TotalSendBytes returns the bytes this task sends per timestep.
func (t *Task) TotalSendBytes() float64 {
	var b float64
	for _, h := range t.Sends {
		b += h.Bytes()
	}
	return b
}

// Partition is a complete decomposition of a lattice over NTasks tasks.
type Partition struct {
	NTasks int
	Owner  []int32 // local sparse-site index -> owning task
	Tasks  []Task
}

// RCB decomposes the lattice of s over ntasks tasks by recursive
// coordinate bisection and computes all per-task statistics under access
// model m.
func RCB(s *lbm.Sparse, ntasks int, m lbm.AccessModel) (*Partition, error) {
	n := s.N()
	if ntasks < 1 {
		return nil, fmt.Errorf("decomp: ntasks %d must be positive", ntasks)
	}
	if ntasks > n {
		return nil, fmt.Errorf("decomp: ntasks %d exceeds fluid sites %d", ntasks, n)
	}

	// Gather site coordinates once.
	xs := make([]int32, n)
	ys := make([]int32, n)
	zs := make([]int32, n)
	for si := 0; si < n; si++ {
		x, y, z := s.SiteCoords(si)
		xs[si], ys[si], zs[si] = int32(x), int32(y), int32(z)
	}

	p := &Partition{NTasks: ntasks, Owner: make([]int32, n)}
	sites := make([]int32, n)
	for i := range sites {
		sites[i] = int32(i)
	}
	bisect(sites, 0, ntasks, xs, ys, zs, p.Owner)

	p.computeStats(s, m)
	return p, nil
}

// bisect assigns tasks [task0, task0+k) to the given site set.
func bisect(sites []int32, task0, k int, xs, ys, zs []int32, owner []int32) {
	if k == 1 {
		for _, si := range sites {
			owner[si] = int32(task0)
		}
		return
	}
	// Longest axis of the bounding box.
	var minX, maxX, minY, maxY, minZ, maxZ int32
	minX, maxX = xs[sites[0]], xs[sites[0]]
	minY, maxY = ys[sites[0]], ys[sites[0]]
	minZ, maxZ = zs[sites[0]], zs[sites[0]]
	for _, si := range sites[1:] {
		if xs[si] < minX {
			minX = xs[si]
		}
		if xs[si] > maxX {
			maxX = xs[si]
		}
		if ys[si] < minY {
			minY = ys[si]
		}
		if ys[si] > maxY {
			maxY = ys[si]
		}
		if zs[si] < minZ {
			minZ = zs[si]
		}
		if zs[si] > maxZ {
			maxZ = zs[si]
		}
	}
	coord := xs
	switch {
	case maxY-minY > maxX-minX && maxY-minY >= maxZ-minZ:
		coord = ys
	case maxZ-minZ > maxX-minX && maxZ-minZ > maxY-minY:
		coord = zs
	}
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if coord[a] != coord[b] {
			return coord[a] < coord[b]
		}
		return a < b // deterministic tie-break
	})
	kLeft := k / 2
	cut := len(sites) * kLeft / k
	bisect(sites[:cut], task0, kLeft, xs, ys, zs, owner)
	bisect(sites[cut:], task0+kLeft, k-kLeft, xs, ys, zs, owner)
}

// computeStats fills per-task points, bytes, composition and halos.
func (p *Partition) computeStats(s *lbm.Sparse, m lbm.AccessModel) {
	p.Tasks = make([]Task, p.NTasks)
	for t := range p.Tasks {
		p.Tasks[t].ID = t
		p.Tasks[t].ByType = make(map[geometry.PointType]int, 4)
	}
	// links[t] accumulates crossing-link counts per peer for task t.
	links := make([]map[int]int, p.NTasks)
	for t := range links {
		links[t] = make(map[int]int)
	}
	for si := 0; si < s.N(); si++ {
		t := int(p.Owner[si])
		task := &p.Tasks[t]
		task.Points++
		task.ByType[s.Type(si)]++
		task.Bytes += m.PointBytes(s.Vectors(si))
		for q := 1; q < lbm.NQ; q++ {
			nb := s.Neighbor(si, q)
			if nb < 0 {
				continue
			}
			if peer := int(p.Owner[nb]); peer != t {
				links[t][peer]++
			}
		}
	}
	for t := range p.Tasks {
		peers := make([]int, 0, len(links[t]))
		for peer := range links[t] {
			peers = append(peers, peer)
		}
		sort.Ints(peers)
		for _, peer := range peers {
			p.Tasks[t].Sends = append(p.Tasks[t].Sends, Halo{Peer: peer, Links: links[t][peer]})
		}
	}
}

// MaxBytes returns the largest per-task memory byte count — the
// max_j(n_bytes-j) of Eq. 10.
func (p *Partition) MaxBytes() float64 {
	var m float64
	for i := range p.Tasks {
		if p.Tasks[i].Bytes > m {
			m = p.Tasks[i].Bytes
		}
	}
	return m
}

// TotalBytes returns the summed per-task byte counts, which equals the
// serial byte count (decomposition moves work, it does not create it).
func (p *Partition) TotalBytes() float64 {
	var t float64
	for i := range p.Tasks {
		t += p.Tasks[i].Bytes
	}
	return t
}

// Imbalance returns the measured load-imbalance factor: the ratio of the
// busiest task's bytes to the perfectly balanced share. This is the
// empirical z of Eq. 10 that the z(n) law of Eq. 11 is fitted against.
func (p *Partition) Imbalance() float64 {
	total := p.TotalBytes()
	if total == 0 {
		return 1
	}
	return p.MaxBytes() / (total / float64(p.NTasks))
}

// MaxSendBytes returns the largest per-task outgoing halo payload per
// timestep.
func (p *Partition) MaxSendBytes() float64 {
	var m float64
	for i := range p.Tasks {
		if b := p.Tasks[i].TotalSendBytes(); b > m {
			m = b
		}
	}
	return m
}

// MaxEvents returns the largest per-task message-event count per timestep
// (sends plus the matching receives), the empirical quantity Eq. 15
// models.
func (p *Partition) MaxEvents() int {
	var m int
	for i := range p.Tasks {
		// Receives mirror sends in a symmetric halo exchange.
		if e := 2 * p.Tasks[i].Events(); e > m {
			m = e
		}
	}
	return m
}

// InterStats returns the busiest task's inter-node halo payload (bytes
// per timestep, sends plus receives) and message-event count under block
// placement of one task per core with the given node width. These are the
// placement-aware observations the generalized model's communication laws
// (Eqs. 13 and 15) are calibrated against.
func (p *Partition) InterStats(coresPerNode int) (maxBytes float64, maxEvents int) {
	nodeOf := func(task int) int { return task / coresPerNode }
	for t := range p.Tasks {
		var bytes float64
		events := 0
		for _, h := range p.Tasks[t].Sends {
			if nodeOf(h.Peer) != nodeOf(t) {
				bytes += 2 * h.Bytes() // send + matching receive
				events += 2
			}
		}
		if bytes > maxBytes {
			maxBytes = bytes
		}
		if events > maxEvents {
			maxEvents = events
		}
	}
	return maxBytes, maxEvents
}

// Validate checks structural invariants: every site owned, point counts
// summing to the lattice size, and halo symmetry (task a sends exactly as
// many links to b as b sends to a, because crossing links pair up through
// opposite directions).
func (p *Partition) Validate(s *lbm.Sparse) error {
	total := 0
	for i := range p.Tasks {
		total += p.Tasks[i].Points
	}
	if total != s.N() {
		return fmt.Errorf("decomp: task points sum %d != %d fluid sites", total, s.N())
	}
	for _, o := range p.Owner {
		if o < 0 || int(o) >= p.NTasks {
			return fmt.Errorf("decomp: owner %d outside [0,%d)", o, p.NTasks)
		}
	}
	sends := make(map[[2]int]int)
	for t := range p.Tasks {
		for _, h := range p.Tasks[t].Sends {
			sends[[2]int{t, h.Peer}] = h.Links
		}
	}
	for key, n := range sends {
		back := sends[[2]int{key[1], key[0]}]
		if back != n {
			return fmt.Errorf("decomp: halo asymmetry %d->%d: %d vs %d links", key[0], key[1], n, back)
		}
	}
	return nil
}
