package dashboard

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/geometry"
	"repro/internal/lbm"
	"repro/internal/machine"
	"repro/internal/perfmodel"
)

func buildFixture(t *testing.T) (*Dashboard, perfmodel.WorkloadSummary, perfmodel.GeneralModel) {
	t.Helper()
	d, err := Build(machine.Catalog(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	dom, err := geometry.Aorta(5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, UMax: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	m := lbm.HarveyAccess()
	g, err := perfmodel.CalibrateGeneral(s, m, []int{1, 2, 4, 8, 16, 32, 64, 128, 256}, 36)
	if err != nil {
		t.Fatal(err)
	}
	ws := perfmodel.WorkloadSummary{Name: "aorta", Points: s.N(), BytesSerial: s.BytesSerial(m)}
	return d, ws, g
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, 1, nil); err == nil {
		t.Error("want error for empty catalog")
	}
}

func TestEntryLookup(t *testing.T) {
	d, _, _ := buildFixture(t)
	if _, err := d.Entry("TRC"); err != nil {
		t.Errorf("TRC lookup failed: %v", err)
	}
	if _, err := d.Entry("nope"); err == nil {
		t.Error("want error for unknown entry")
	}
}

func TestAssessProducesAllSystems(t *testing.T) {
	d, ws, g := buildFixture(t)
	as, err := d.Assess(ws, g, 2048, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != len(d.Entries) {
		t.Fatalf("assessed %d systems, want %d", len(as), len(d.Entries))
	}
	for _, a := range as {
		if a.MFLUPS <= 0 || a.Seconds <= 0 || a.USD <= 0 || a.MFLUPSPerDollarHour <= 0 {
			t.Errorf("%s: non-positive assessment %+v", a.System, a)
		}
	}
	if _, err := d.Assess(ws, g, 64, 0); err == nil {
		t.Error("want error for zero steps")
	}
}

func TestRelativeValueProperties(t *testing.T) {
	d, ws, g := buildFixture(t)
	as, err := d.Assess(ws, g, 2048, 1000)
	if err != nil {
		t.Fatal(err)
	}
	m := RelativeValue(as)
	for i := range m {
		if m[i][i] != 1 {
			t.Errorf("diagonal [%d][%d] = %v, want 1", i, i, m[i][i])
		}
		for j := range m {
			// Eq. 17 reciprocity: r_{B,A} * r_{A,B} = 1.
			if p := m[i][j] * m[j][i]; math.Abs(p-1) > 1e-12 {
				t.Errorf("reciprocity violated at [%d][%d]: %v", i, j, p)
			}
		}
	}
}

func TestRelativeValueReciprocityProperty(t *testing.T) {
	f := func(m1, m2, m3 float64) bool {
		vals := []float64{math.Abs(m1) + 1, math.Abs(m2) + 1, math.Abs(m3) + 1}
		as := make([]Assessment, 3)
		for i := range as {
			as[i] = Assessment{System: string(rune('A' + i)), MFLUPS: vals[i]}
		}
		m := RelativeValue(as)
		for i := range m {
			for j := range m {
				if math.Abs(m[i][j]*m[j][i]-1) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecommendObjectives(t *testing.T) {
	as := []Assessment{
		{System: "fast-pricey", MFLUPS: 100, Seconds: 50, USD: 9, MFLUPSPerDollarHour: 12},
		{System: "slow-cheap", MFLUPS: 40, Seconds: 120, USD: 2, MFLUPSPerDollarHour: 30},
		{System: "middle", MFLUPS: 70, Seconds: 80, USD: 4, MFLUPSPerDollarHour: 20},
	}
	cases := []struct {
		obj  Objective
		want string
	}{
		{MaxThroughput, "fast-pricey"},
		{MinCost, "slow-cheap"},
		{MinTime, "fast-pricey"},
		{MaxValue, "slow-cheap"},
	}
	for _, c := range cases {
		got, err := Recommend(as, c.obj, 0)
		if err != nil {
			t.Fatalf("%v: %v", c.obj, err)
		}
		if got.System != c.want {
			t.Errorf("%v: recommended %s, want %s", c.obj, got.System, c.want)
		}
	}
}

func TestRecommendDeadline(t *testing.T) {
	as := []Assessment{
		{System: "fast", MFLUPS: 100, Seconds: 50, USD: 9},
		{System: "cheap", MFLUPS: 40, Seconds: 120, USD: 2},
	}
	got, err := Recommend(as, MinCost, 60)
	if err != nil {
		t.Fatal(err)
	}
	if got.System != "fast" {
		t.Errorf("deadline-constrained min-cost picked %s, want fast", got.System)
	}
	if _, err := Recommend(as, MinCost, 10); err == nil {
		t.Error("want error when no system meets the deadline")
	}
}

func TestRecommendUnknownObjective(t *testing.T) {
	as := []Assessment{{System: "a", MFLUPS: 1}, {System: "b", MFLUPS: 2}}
	if _, err := Recommend(as, Objective(99), 0); err == nil {
		t.Error("want error for unknown objective")
	}
}

func TestECOutranksNoECOnBigJobs(t *testing.T) {
	// Figure 11's ordering: for the 2048-core aorta, CSP-2 EC > CSP-2.
	d, ws, g := buildFixture(t)
	as, err := d.Assess(ws, g, 2048, 100)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Assessment{}
	for _, a := range as {
		byName[a.System] = a
	}
	if byName["CSP-2 EC"].MFLUPS <= byName["CSP-2"].MFLUPS {
		t.Errorf("EC (%v) not above no-EC (%v) at 2048 cores",
			byName["CSP-2 EC"].MFLUPS, byName["CSP-2"].MFLUPS)
	}
}

func TestRenderers(t *testing.T) {
	as := []Assessment{
		{System: "TRC", Ranks: 64, MFLUPS: 50, Seconds: 100, USD: 3, MFLUPSPerDollarHour: 10},
		{System: "CSP-2", Ranks: 64, MFLUPS: 60, Seconds: 90, USD: 4, MFLUPSPerDollarHour: 9},
	}
	heat := RenderHeatmap(as, RelativeValue(as))
	if !strings.Contains(heat, "TRC") || !strings.Contains(heat, "1.0000") {
		t.Errorf("heatmap missing content:\n%s", heat)
	}
	table := RenderAssessments(as)
	if !strings.Contains(table, "MFLUPS") || !strings.Contains(table, "CSP-2") {
		t.Errorf("table missing content:\n%s", table)
	}
	// Sorted by descending throughput: CSP-2 row first.
	if strings.Index(table, "CSP-2") > strings.Index(table, "TRC") {
		t.Error("assessments not sorted by throughput")
	}
}

func TestObjectiveStrings(t *testing.T) {
	want := map[Objective]string{
		MaxThroughput: "max-throughput", MinCost: "min-cost",
		MinTime: "min-time", MaxValue: "max-value",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), s)
		}
	}
	if Objective(42).String() != "Objective(42)" {
		t.Error("unknown objective string wrong")
	}
}

func TestPareto(t *testing.T) {
	as := []Assessment{
		{System: "fast-pricey", Seconds: 10, USD: 9},
		{System: "balanced", Seconds: 20, USD: 4},
		{System: "cheap-slow", Seconds: 60, USD: 1},
		{System: "dominated", Seconds: 25, USD: 5},  // beaten by balanced
		{System: "dominated2", Seconds: 60, USD: 2}, // beaten by cheap-slow
	}
	front := Pareto(as)
	if len(front) != 3 {
		t.Fatalf("frontier has %d options: %+v", len(front), front)
	}
	want := []string{"fast-pricey", "balanced", "cheap-slow"}
	for i, name := range want {
		if front[i].System != name {
			t.Errorf("frontier[%d] = %s, want %s", i, front[i].System, name)
		}
	}
	// Frontier is monotone: time increases, cost decreases.
	for i := 1; i < len(front); i++ {
		if front[i].Seconds < front[i-1].Seconds || front[i].USD > front[i-1].USD {
			t.Errorf("frontier not monotone at %d", i)
		}
	}
}

func TestParetoTies(t *testing.T) {
	// Identical options are mutually non-dominating and both survive.
	as := []Assessment{
		{System: "a", Seconds: 10, USD: 5},
		{System: "b", Seconds: 10, USD: 5},
	}
	if got := Pareto(as); len(got) != 2 {
		t.Errorf("tied options: frontier %d, want 2", len(got))
	}
	if got := Pareto(nil); got != nil {
		t.Errorf("empty input: %v", got)
	}
}

func TestParetoOnRealAssessments(t *testing.T) {
	d, ws, g := buildFixture(t)
	as, err := d.Assess(ws, g, 256, 1000)
	if err != nil {
		t.Fatal(err)
	}
	front := Pareto(as)
	if len(front) == 0 || len(front) > len(as) {
		t.Fatalf("frontier size %d of %d", len(front), len(as))
	}
	// The fastest and the cheapest options are always on the frontier.
	fastest, cheapest := as[0], as[0]
	for _, a := range as {
		if a.Seconds < fastest.Seconds {
			fastest = a
		}
		if a.USD < cheapest.USD {
			cheapest = a
		}
	}
	found := map[string]bool{}
	for _, a := range front {
		found[a.System] = true
	}
	if !found[fastest.System] || !found[cheapest.System] {
		t.Errorf("frontier %v missing fastest %s or cheapest %s", front, fastest.System, cheapest.System)
	}
}

func TestCrossoverCloudOvertakesTRC(t *testing.T) {
	// On a production-scale (memory-dominated) workload the cloud node's
	// bandwidth advantage grows with rank count while TRC's latency edge
	// fades: CSP-2 EC must overtake TRC somewhere in the sweep.
	d, ws, g := buildFixture(t)
	big := ws
	big.Points *= 512 // high-resolution mesh, as Figure 11 rates
	big.BytesSerial *= 512
	ranks, ok, err := d.Crossover(big, g, "CSP-2 EC", "TRC", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("CSP-2 EC never overtook TRC on the production mesh")
	}
	if ranks < 2 || ranks > 4096 {
		t.Errorf("crossover at %d ranks outside sweep", ranks)
	}
	// Before the crossover TRC leads; sanity-check one earlier point.
	if ranks > 2 {
		ea, _ := d.Entry("CSP-2 EC")
		eb, _ := d.Entry("TRC")
		pa, err := ea.Char.Predict(perfmodel.Request{Model: perfmodel.ModelGeneral, Summary: &big, General: g, Ranks: ranks / 2})
		if err != nil {
			t.Fatal(err)
		}
		pb, err := eb.Char.Predict(perfmodel.Request{Model: perfmodel.ModelGeneral, Summary: &big, General: g, Ranks: ranks / 2})
		if err != nil {
			t.Fatal(err)
		}
		if pa.MFLUPS > pb.MFLUPS {
			t.Errorf("crossover not minimal: EC already ahead at %d ranks", ranks/2)
		}
	}
}

func TestCrossoverValidation(t *testing.T) {
	d, ws, g := buildFixture(t)
	if _, _, err := d.Crossover(ws, g, "nope", "TRC", 64); err == nil {
		t.Error("want error for unknown system a")
	}
	if _, _, err := d.Crossover(ws, g, "TRC", "nope", 64); err == nil {
		t.Error("want error for unknown system b")
	}
	if _, _, err := d.Crossover(ws, g, "TRC", "CSP-2", 1); err == nil {
		t.Error("want error for tiny maxRanks")
	}
	// A system never overtakes itself.
	if _, ok, err := d.Crossover(ws, g, "TRC", "TRC", 256); err != nil || ok {
		t.Errorf("self-crossover: ok=%v err=%v", ok, err)
	}
}
