package dashboard

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// TracePanel renders the observability view of the latest trace: where
// simulated time went, by span name, with per-phase self-time — the
// operational companion to the cost/performance tables. Metrics may be
// nil; pass a registry snapshot to append counters and histogram
// quantiles.
func TracePanel(spans []obs.SpanRecord, metrics []obs.Metric) string {
	var b strings.Builder
	b.WriteString("=== trace ===\n")
	if len(spans) == 0 {
		b.WriteString("no spans recorded\n")
		return b.String()
	}
	unended := 0
	for _, s := range spans {
		if !s.Ended {
			unended++
		}
	}
	b.WriteString(obs.RenderSummary(spans, metrics))
	if unended > 0 {
		fmt.Fprintf(&b, "\nwarning: %d span(s) never ended (crash or missing End call)\n", unended)
	}
	return b.String()
}
