package dashboard

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// A deterministic latency injection must trip the p99 burn-rate alert
// exactly once and render in the SLO panel: the acceptance path from
// tracker to dashboard.
func TestSLOPanelRendersFiringAlert(t *testing.T) {
	slo := obs.SLO{Name: "latency-p99", LatencyQuantile: 0.99, LatencyBoundS: 0.25, WindowS: 300}
	tr := obs.NewSLOTracker([]obs.SLO{slo})

	bounds := []float64{0.1, 0.25, 1}
	// 5 of 100 requests blow the 250 ms bound: bad fraction 0.05 against
	// a 0.01 budget, burn 5.0.
	tr.Observe(obs.SLOObs{
		AtS:       10,
		Total:     100,
		LatBounds: bounds,
		LatCounts: []uint64{80, 15, 5, 0},
		LatCount:  100,
	})

	alerts := tr.Alerts()
	if len(alerts) != 1 || alerts[0].State != "firing" {
		t.Fatalf("want exactly one firing alert, got %+v", alerts)
	}

	panel := SLOPanel(tr.Status(), alerts)
	if !strings.HasPrefix(panel, "=== slo ===\n") {
		t.Fatalf("missing panel header:\n%s", panel)
	}
	for _, want := range []string{"latency-p99", "FIRING", "p99<=0.250s", "burn 5.00", "slo latency-p99 firing at 10.000s"} {
		if !strings.Contains(panel, want) {
			t.Errorf("panel missing %q:\n%s", want, panel)
		}
	}

	// Repeated status reads must not mint new alerts.
	if got := len(tr.Alerts()); got != 1 {
		t.Fatalf("alert count changed on read: %d", got)
	}
}

func TestSLOPanelHealthyAndEmpty(t *testing.T) {
	if got := SLOPanel(nil, nil); !strings.Contains(got, "no objectives tracked") {
		t.Fatalf("empty panel: %q", got)
	}
	st := obs.SLOStatus{
		SLO:         obs.SLO{Name: "availability", TargetAvailability: 0.999, WindowS: 300},
		WindowTotal: 50,
	}
	panel := SLOPanel([]obs.SLOStatus{st}, nil)
	if !strings.Contains(panel, "availability") || !strings.Contains(panel, "ok") {
		t.Fatalf("healthy row missing:\n%s", panel)
	}
	if strings.Contains(panel, "--- alerts ---") {
		t.Fatalf("alert section rendered with no alerts:\n%s", panel)
	}
}
