// Package dashboard implements the paper's CSP Option Dashboard (Figure
// 1): characterize every candidate instance type once, tune the
// performance model to an anatomy, and present per-instance predictions —
// throughput, time to solution, cost, and the relative-value matrix
// r_{B,A} of Eq. 17 (Figure 11) — so a user can pick hardware under a
// cost, throughput, or deadline objective.
package dashboard

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/machine"
	"repro/internal/perfmodel"
)

// Entry is one characterized instance type in the dashboard.
type Entry struct {
	System *machine.System
	Char   *perfmodel.Characterization
}

// Dashboard holds phase one of the framework: all instance types
// benchmarked and fitted.
type Dashboard struct {
	Entries []Entry
}

// Build characterizes every system. samples controls microbenchmark
// averaging; rng may be nil for noiseless characterization.
func Build(systems []*machine.System, samples int, rng *rand.Rand) (*Dashboard, error) {
	if len(systems) == 0 {
		return nil, fmt.Errorf("dashboard: no systems to characterize")
	}
	d := &Dashboard{}
	for _, sys := range systems {
		c, err := perfmodel.Characterize(sys, samples, rng)
		if err != nil {
			return nil, err
		}
		d.Entries = append(d.Entries, Entry{System: sys, Char: c})
	}
	return d, nil
}

// Entry returns the dashboard row for a system abbreviation.
func (d *Dashboard) Entry(abbrev string) (Entry, error) {
	for _, e := range d.Entries {
		if e.System.Abbrev == abbrev {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("dashboard: system %q not characterized", abbrev)
}

// Assessment is the dashboard's verdict for one instance type on one
// anatomy at a fixed core count.
type Assessment struct {
	System  string
	Ranks   int
	MFLUPS  float64 // generalized-model prediction
	Seconds float64 // predicted time to solution for the job's steps
	USD     float64 // predicted cost of the job
	// MFLUPSPerDollarHour is the throughput-per-price decision metric the
	// Discussion proposes ("weight these ratios by the relative cost").
	MFLUPSPerDollarHour float64
}

// Assess evaluates every characterized system for a workload at the given
// rank count and job length, using the anatomy-tuned generalized model.
// Rank counts beyond an instance's size are allowed — the model
// extrapolates, exactly as Figure 11 rates 2048-core runs on 144-core
// instance types.
func (d *Dashboard) Assess(ws perfmodel.WorkloadSummary, g perfmodel.GeneralModel, ranks, steps int) ([]Assessment, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("dashboard: steps %d must be positive", steps)
	}
	out := make([]Assessment, 0, len(d.Entries))
	req := perfmodel.Request{Model: perfmodel.ModelGeneral, Summary: &ws, General: g, Ranks: ranks}
	for _, e := range d.Entries {
		pred, err := e.Char.Predict(req)
		if err != nil {
			return nil, fmt.Errorf("dashboard: assessing %s: %w", e.System.Abbrev, err)
		}
		seconds := pred.SecondsPerStep * float64(steps)
		nodes := (ranks + e.System.CoresPerNode - 1) / e.System.CoresPerNode
		usd := float64(nodes) * seconds / 3600 * e.System.PricePerNodeHourUSD
		hourlyPrice := float64(nodes) * e.System.PricePerNodeHourUSD
		out = append(out, Assessment{
			System:              e.System.Abbrev,
			Ranks:               ranks,
			MFLUPS:              pred.MFLUPS,
			Seconds:             seconds,
			USD:                 usd,
			MFLUPSPerDollarHour: pred.MFLUPS / hourlyPrice,
		})
	}
	return out, nil
}

// RelativeValue computes the Eq. 17 matrix: cell [i][j] is r_{B,A} with B
// the row system and A the column system — how many times more throughput
// row i delivers than column j. The diagonal is exactly 1.
func RelativeValue(as []Assessment) [][]float64 {
	m := make([][]float64, len(as))
	for i := range as {
		m[i] = make([]float64, len(as))
		for j := range as {
			if i == j {
				m[i][j] = 1
				continue
			}
			m[i][j] = as[i].MFLUPS / as[j].MFLUPS
		}
	}
	return m
}

// Objective selects what the recommendation optimizes.
type Objective int

// Available objectives.
const (
	MaxThroughput Objective = iota // highest predicted MFLUPS
	MinCost                        // lowest predicted dollars for the job
	MinTime                        // shortest predicted time to solution
	MaxValue                       // highest throughput per dollar-hour
)

// ParseObjective maps a config/API string to an Objective. The empty
// string selects MaxValue, the throughput-per-dollar default.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "max-throughput":
		return MaxThroughput, nil
	case "min-cost":
		return MinCost, nil
	case "min-time":
		return MinTime, nil
	case "max-value", "":
		return MaxValue, nil
	}
	return 0, fmt.Errorf("dashboard: unknown objective %q", s)
}

// String names the objective.
func (o Objective) String() string {
	switch o {
	case MaxThroughput:
		return "max-throughput"
	case MinCost:
		return "min-cost"
	case MinTime:
		return "min-time"
	case MaxValue:
		return "max-value"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// Recommend picks the best assessment under the objective. deadline, when
// positive, excludes systems whose predicted time to solution exceeds it
// (for MinCost under a turnaround requirement).
func Recommend(as []Assessment, obj Objective, deadline float64) (Assessment, error) {
	var candidates []Assessment
	for _, a := range as {
		if deadline > 0 && a.Seconds > deadline {
			continue
		}
		candidates = append(candidates, a)
	}
	if len(candidates) == 0 {
		return Assessment{}, fmt.Errorf("dashboard: no system meets the %gs deadline", deadline)
	}
	best := candidates[0]
	for _, a := range candidates[1:] {
		switch obj {
		case MaxThroughput:
			if a.MFLUPS > best.MFLUPS {
				best = a
			}
		case MinCost:
			if a.USD < best.USD {
				best = a
			}
		case MinTime:
			if a.Seconds < best.Seconds {
				best = a
			}
		case MaxValue:
			if a.MFLUPSPerDollarHour > best.MFLUPSPerDollarHour {
				best = a
			}
		default:
			return Assessment{}, fmt.Errorf("dashboard: unknown objective %v", obj)
		}
	}
	return best, nil
}

// Crossover locates where two systems trade places for a workload: the
// smallest rank count in [2, maxRanks] at which system a's predicted
// throughput overtakes system b's, scanning powers of two. The paper's
// reproduction target is exactly this — "where crossovers fall" — since
// latency-light clusters win small jobs and bandwidth-rich cloud nodes
// win large ones. Returns ok=false if a never overtakes b in range.
func (d *Dashboard) Crossover(ws perfmodel.WorkloadSummary, g perfmodel.GeneralModel,
	a, b string, maxRanks int) (ranks int, ok bool, err error) {
	ea, err := d.Entry(a)
	if err != nil {
		return 0, false, err
	}
	eb, err := d.Entry(b)
	if err != nil {
		return 0, false, err
	}
	if maxRanks < 2 {
		return 0, false, fmt.Errorf("dashboard: maxRanks %d must be at least 2", maxRanks)
	}
	for r := 2; r <= maxRanks; r *= 2 {
		req := perfmodel.Request{Model: perfmodel.ModelGeneral, Summary: &ws, General: g, Ranks: r}
		pa, err := ea.Char.Predict(req)
		if err != nil {
			return 0, false, err
		}
		pb, err := eb.Char.Predict(req)
		if err != nil {
			return 0, false, err
		}
		if pa.MFLUPS > pb.MFLUPS {
			return r, true, nil
		}
	}
	return 0, false, nil
}

// Pareto returns the assessments on the time/cost Pareto frontier: the
// options no other option beats on both predicted time to solution and
// predicted dollars. The paper leaves the final trade-off to the user
// ("it is ultimately up to the end user to determine what is important");
// the frontier is exactly the set worth putting in front of them, sorted
// fastest first.
func Pareto(as []Assessment) []Assessment {
	var frontier []Assessment
	for i, a := range as {
		dominated := false
		for j, b := range as {
			if i == j {
				continue
			}
			if b.Seconds <= a.Seconds && b.USD <= a.USD &&
				(b.Seconds < a.Seconds || b.USD < a.USD) {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, a)
		}
	}
	sort.Slice(frontier, func(i, j int) bool {
		//lint:ignore floateq exact tie-break keeps the sort deterministic; no arithmetic feeds it
		if frontier[i].Seconds != frontier[j].Seconds {
			return frontier[i].Seconds < frontier[j].Seconds
		}
		return frontier[i].USD < frontier[j].USD
	})
	return frontier
}

// RenderHeatmap renders the Eq. 17 matrix as a text table in the layout
// of Figure 11: B read from the left side, A from the top.
func RenderHeatmap(as []Assessment, m [][]float64) string {
	var b strings.Builder
	width := 10
	for _, a := range as {
		if len(a.System)+2 > width {
			width = len(a.System) + 2
		}
	}
	fmt.Fprintf(&b, "%*s", width, "")
	for _, a := range as {
		fmt.Fprintf(&b, "%*s", width, a.System)
	}
	b.WriteByte('\n')
	for i, a := range as {
		fmt.Fprintf(&b, "%*s", width, a.System)
		for j := range as {
			fmt.Fprintf(&b, "%*.4f", width, m[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderAssessments renders the dashboard table sorted by descending
// throughput.
func RenderAssessments(as []Assessment) string {
	sorted := append([]Assessment(nil), as...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].MFLUPS > sorted[j].MFLUPS })
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %12s %12s %10s %14s\n",
		"System", "Ranks", "MFLUPS", "Seconds", "USD", "MFLUPS/$*h")
	for _, a := range sorted {
		fmt.Fprintf(&b, "%-14s %8d %12.2f %12.2f %10.4f %14.2f\n",
			a.System, a.Ranks, a.MFLUPS, a.Seconds, a.USD, a.MFLUPSPerDollarHour)
	}
	return b.String()
}
