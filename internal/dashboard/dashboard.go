// Package dashboard implements the paper's CSP Option Dashboard (Figure
// 1): characterize every candidate instance type once, tune the
// performance model to an anatomy, and present per-instance predictions —
// throughput, time to solution, cost, and the relative-value matrix
// r_{B,A} of Eq. 17 (Figure 11) — so a user can pick hardware under a
// cost, throughput, or deadline objective.
package dashboard

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/machine"
	"repro/internal/perfmodel"
)

// Entry is one characterized instance type in the dashboard. Predictor
// is its tiered prediction front door; build entries with NewEntry so
// it is always populated (a zero Predictor falls back to Char).
type Entry struct {
	System    *machine.System
	Char      *perfmodel.Characterization
	Predictor *perfmodel.Predictor
}

// NewEntry composes a dashboard row's tiered predictor: Tier 0 physics
// always, Tier 1 when a characterization is supplied, Tier 2 when a
// measured lookup table is.
func NewEntry(sys *machine.System, char *perfmodel.Characterization, tbl *perfmodel.Table) (Entry, error) {
	backends := []perfmodel.Backend{perfmodel.NewPhysicsBackend(sys)}
	if char != nil {
		backends = append(backends, perfmodel.NewCalibratedBackend(char))
	}
	if tbl != nil {
		backends = append(backends, perfmodel.NewLookupBackend(sys.Abbrev, tbl))
	}
	p, err := perfmodel.NewPredictor(backends...)
	if err != nil {
		return Entry{}, err
	}
	return Entry{System: sys, Char: char, Predictor: p}, nil
}

// Predict routes through the entry's tiered predictor, falling back to
// the bare Tier 1 characterization for entries constructed literally
// (tests, old callers).
func (e Entry) Predict(req perfmodel.Request) (perfmodel.Prediction, error) {
	if e.Predictor != nil {
		return e.Predictor.Predict(req)
	}
	if e.Char != nil {
		req.Tier = perfmodel.Tier1Calibrated
		return e.Char.Predict(req)
	}
	return perfmodel.Prediction{}, fmt.Errorf("dashboard: entry %s has no predictor", e.System.Abbrev)
}

// Dashboard holds phase one of the framework: all instance types
// benchmarked and fitted.
type Dashboard struct {
	Entries []Entry
}

// Build characterizes every system. samples controls microbenchmark
// averaging; rng may be nil for noiseless characterization.
func Build(systems []*machine.System, samples int, rng *rand.Rand) (*Dashboard, error) {
	if len(systems) == 0 {
		return nil, fmt.Errorf("dashboard: no systems to characterize")
	}
	d := &Dashboard{}
	for _, sys := range systems {
		c, err := perfmodel.Characterize(sys, samples, rng)
		if err != nil {
			return nil, err
		}
		e, err := NewEntry(sys, c, nil)
		if err != nil {
			return nil, err
		}
		d.Entries = append(d.Entries, e)
	}
	return d, nil
}

// AttachTable rebuilds every entry's predictor with a Tier 2 measured
// lookup backend over tbl, enabling TierAuto and explicit tier2
// assessments on in-table systems.
func (d *Dashboard) AttachTable(tbl *perfmodel.Table) error {
	for i, e := range d.Entries {
		ne, err := NewEntry(e.System, e.Char, tbl)
		if err != nil {
			return err
		}
		d.Entries[i] = ne
	}
	return nil
}

// Entry returns the dashboard row for a system abbreviation.
func (d *Dashboard) Entry(abbrev string) (Entry, error) {
	for _, e := range d.Entries {
		if e.System.Abbrev == abbrev {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("dashboard: system %q not characterized", abbrev)
}

// Assessment is the dashboard's verdict for one instance type on one
// anatomy at a fixed core count.
type Assessment struct {
	System  string
	Ranks   int
	MFLUPS  float64 // generalized-model prediction
	Seconds float64 // predicted time to solution for the job's steps
	USD     float64 // predicted cost of the job
	// MFLUPSPerDollarHour is the throughput-per-price decision metric the
	// Discussion proposes ("weight these ratios by the relative cost").
	MFLUPSPerDollarHour float64
	// Provenance: which accuracy tier served the prediction, its
	// confidence band, and whether it extrapolated beyond calibration
	// or table coverage.
	Tier         string
	Confidence   perfmodel.Band
	Extrapolated bool
}

// Assess evaluates every characterized system for a workload at the given
// rank count and job length, using the anatomy-tuned generalized model.
// Rank counts beyond an instance's size are allowed — the model
// extrapolates, exactly as Figure 11 rates 2048-core runs on 144-core
// instance types. Predictions come from the Tier 1 calibrated fit; use
// AssessTier to pick another accuracy tier.
func (d *Dashboard) Assess(ws perfmodel.WorkloadSummary, g perfmodel.GeneralModel, ranks, steps int) ([]Assessment, error) {
	return d.AssessTier(ws, g, ranks, steps, perfmodel.Tier1Calibrated)
}

// AssessTier is Assess with an explicit accuracy tier ("" or
// perfmodel.TierAuto picks the best tier each entry's predictor covers;
// explicit tiers fail for entries lacking that backend's data).
func (d *Dashboard) AssessTier(ws perfmodel.WorkloadSummary, g perfmodel.GeneralModel, ranks, steps int, tier string) ([]Assessment, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("dashboard: steps %d must be positive", steps)
	}
	out := make([]Assessment, 0, len(d.Entries))
	req := perfmodel.Request{Model: perfmodel.ModelGeneral, Summary: &ws, General: g, Ranks: ranks, Tier: tier}
	for _, e := range d.Entries {
		pred, err := e.Predict(req)
		if err != nil {
			return nil, fmt.Errorf("dashboard: assessing %s: %w", e.System.Abbrev, err)
		}
		seconds := pred.SecondsPerStep * float64(steps)
		nodes := (ranks + e.System.CoresPerNode - 1) / e.System.CoresPerNode
		usd := float64(nodes) * seconds / 3600 * e.System.PricePerNodeHourUSD
		hourlyPrice := float64(nodes) * e.System.PricePerNodeHourUSD
		out = append(out, Assessment{
			System:              e.System.Abbrev,
			Ranks:               ranks,
			MFLUPS:              pred.MFLUPS,
			Seconds:             seconds,
			USD:                 usd,
			MFLUPSPerDollarHour: pred.MFLUPS / hourlyPrice,
			Tier:                pred.Tier,
			Confidence:          pred.Confidence,
			Extrapolated:        pred.Extrapolated,
		})
	}
	return out, nil
}

// RelativeValue computes the Eq. 17 matrix: cell [i][j] is r_{B,A} with B
// the row system and A the column system — how many times more throughput
// row i delivers than column j. The diagonal is exactly 1.
func RelativeValue(as []Assessment) [][]float64 {
	m := make([][]float64, len(as))
	for i := range as {
		m[i] = make([]float64, len(as))
		for j := range as {
			if i == j {
				m[i][j] = 1
				continue
			}
			m[i][j] = as[i].MFLUPS / as[j].MFLUPS
		}
	}
	return m
}

// Objective selects what the recommendation optimizes.
type Objective int

// Available objectives.
const (
	MaxThroughput Objective = iota // highest predicted MFLUPS
	MinCost                        // lowest predicted dollars for the job
	MinTime                        // shortest predicted time to solution
	MaxValue                       // highest throughput per dollar-hour
)

// ParseObjective maps a config/API string to an Objective. The empty
// string selects MaxValue, the throughput-per-dollar default.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "max-throughput":
		return MaxThroughput, nil
	case "min-cost":
		return MinCost, nil
	case "min-time":
		return MinTime, nil
	case "max-value", "":
		return MaxValue, nil
	}
	return 0, fmt.Errorf("dashboard: unknown objective %q", s)
}

// String names the objective.
func (o Objective) String() string {
	switch o {
	case MaxThroughput:
		return "max-throughput"
	case MinCost:
		return "min-cost"
	case MinTime:
		return "min-time"
	case MaxValue:
		return "max-value"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// Recommend picks the best assessment under the objective. deadline, when
// positive, excludes systems whose predicted time to solution exceeds it
// (for MinCost under a turnaround requirement).
func Recommend(as []Assessment, obj Objective, deadline float64) (Assessment, error) {
	var candidates []Assessment
	for _, a := range as {
		if deadline > 0 && a.Seconds > deadline {
			continue
		}
		candidates = append(candidates, a)
	}
	if len(candidates) == 0 {
		return Assessment{}, fmt.Errorf("dashboard: no system meets the %gs deadline", deadline)
	}
	best := candidates[0]
	for _, a := range candidates[1:] {
		switch obj {
		case MaxThroughput:
			if a.MFLUPS > best.MFLUPS {
				best = a
			}
		case MinCost:
			if a.USD < best.USD {
				best = a
			}
		case MinTime:
			if a.Seconds < best.Seconds {
				best = a
			}
		case MaxValue:
			if a.MFLUPSPerDollarHour > best.MFLUPSPerDollarHour {
				best = a
			}
		default:
			return Assessment{}, fmt.Errorf("dashboard: unknown objective %v", obj)
		}
	}
	return best, nil
}

// Crossover locates where two systems trade places for a workload: the
// smallest rank count in [2, maxRanks] at which system a's predicted
// throughput overtakes system b's, scanning powers of two. The paper's
// reproduction target is exactly this — "where crossovers fall" — since
// latency-light clusters win small jobs and bandwidth-rich cloud nodes
// win large ones. Returns ok=false if a never overtakes b in range.
func (d *Dashboard) Crossover(ws perfmodel.WorkloadSummary, g perfmodel.GeneralModel,
	a, b string, maxRanks int) (ranks int, ok bool, err error) {
	ea, err := d.Entry(a)
	if err != nil {
		return 0, false, err
	}
	eb, err := d.Entry(b)
	if err != nil {
		return 0, false, err
	}
	if maxRanks < 2 {
		return 0, false, fmt.Errorf("dashboard: maxRanks %d must be at least 2", maxRanks)
	}
	for r := 2; r <= maxRanks; r *= 2 {
		req := perfmodel.Request{Model: perfmodel.ModelGeneral, Summary: &ws, General: g, Ranks: r,
			Tier: perfmodel.Tier1Calibrated}
		pa, err := ea.Predict(req)
		if err != nil {
			return 0, false, err
		}
		pb, err := eb.Predict(req)
		if err != nil {
			return 0, false, err
		}
		if pa.MFLUPS > pb.MFLUPS {
			return r, true, nil
		}
	}
	return 0, false, nil
}

// Pareto returns the assessments on the time/cost Pareto frontier: the
// options no other option beats on both predicted time to solution and
// predicted dollars. The paper leaves the final trade-off to the user
// ("it is ultimately up to the end user to determine what is important");
// the frontier is exactly the set worth putting in front of them, sorted
// fastest first.
func Pareto(as []Assessment) []Assessment {
	var frontier []Assessment
	for i, a := range as {
		dominated := false
		for j, b := range as {
			if i == j {
				continue
			}
			if b.Seconds <= a.Seconds && b.USD <= a.USD &&
				(b.Seconds < a.Seconds || b.USD < a.USD) {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, a)
		}
	}
	sort.Slice(frontier, func(i, j int) bool {
		//lint:ignore floateq exact tie-break keeps the sort deterministic; no arithmetic feeds it
		if frontier[i].Seconds != frontier[j].Seconds {
			return frontier[i].Seconds < frontier[j].Seconds
		}
		return frontier[i].USD < frontier[j].USD
	})
	return frontier
}

// RenderHeatmap renders the Eq. 17 matrix as a text table in the layout
// of Figure 11: B read from the left side, A from the top.
func RenderHeatmap(as []Assessment, m [][]float64) string {
	var b strings.Builder
	width := 10
	for _, a := range as {
		if len(a.System)+2 > width {
			width = len(a.System) + 2
		}
	}
	fmt.Fprintf(&b, "%*s", width, "")
	for _, a := range as {
		fmt.Fprintf(&b, "%*s", width, a.System)
	}
	b.WriteByte('\n')
	for i, a := range as {
		fmt.Fprintf(&b, "%*s", width, a.System)
		for j := range as {
			fmt.Fprintf(&b, "%*.4f", width, m[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderAssessments renders the dashboard table sorted by descending
// throughput. When any assessment carries tier provenance a Tier column
// is appended: the tier that served the prediction, its ± confidence
// half-width in MFLUPS, and an "extrap" marker for table extrapolation.
func RenderAssessments(as []Assessment) string {
	sorted := append([]Assessment(nil), as...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].MFLUPS > sorted[j].MFLUPS })
	withTier := false
	for _, a := range sorted {
		if a.Tier != "" {
			withTier = true
			break
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %12s %12s %10s %14s",
		"System", "Ranks", "MFLUPS", "Seconds", "USD", "MFLUPS/$*h")
	if withTier {
		fmt.Fprintf(&b, "  %s", "Tier")
	}
	b.WriteByte('\n')
	for _, a := range sorted {
		fmt.Fprintf(&b, "%-14s %8d %12.2f %12.2f %10.4f %14.2f",
			a.System, a.Ranks, a.MFLUPS, a.Seconds, a.USD, a.MFLUPSPerDollarHour)
		if withTier {
			fmt.Fprintf(&b, "  %s", a.Tier)
			if half := (a.Confidence.HiMFLUPS - a.Confidence.LoMFLUPS) / 2; half > 0 {
				fmt.Fprintf(&b, " ±%.1f", half)
			}
			if a.Extrapolated {
				b.WriteString(" extrap")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
