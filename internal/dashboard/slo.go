package dashboard

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// SLOPanel renders the service-level-objective view: one row per
// objective with its window state and burn rate, followed by the alert
// transition log. Deterministic inputs render deterministically — the
// panel carries no timestamps of its own, only the observation clock
// embedded in the statuses and alerts.
func SLOPanel(statuses []obs.SLOStatus, alerts []obs.SLOAlert) string {
	var b strings.Builder
	b.WriteString("=== slo ===\n")
	if len(statuses) == 0 {
		b.WriteString("no objectives tracked\n")
		return b.String()
	}
	for _, st := range statuses {
		state := "ok"
		if st.Firing {
			state = "FIRING"
		}
		fmt.Fprintf(&b, "%-16s %s  objective %s  window %.0fs  total %.0f  bad %.0f (%.4f)  burn %.2f\n",
			st.SLO.Name, state, objective(st.SLO), st.SLO.WindowS,
			st.WindowTotal, st.WindowBad, st.BadFraction, st.BurnRate)
	}
	if len(alerts) > 0 {
		b.WriteString("--- alerts ---\n")
		for _, a := range alerts {
			b.WriteString(a.String())
			b.WriteString("\n")
		}
	}
	return b.String()
}

// objective formats an SLO's target as a compact human-readable clause.
func objective(s obs.SLO) string {
	if s.IsLatency() {
		return fmt.Sprintf("p%g<=%.3fs", s.LatencyQuantile*100, s.LatencyBoundS)
	}
	return fmt.Sprintf("avail>=%.4f", s.TargetAvailability)
}
