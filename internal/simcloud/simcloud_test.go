package simcloud

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/decomp"
	"repro/internal/fit"
	"repro/internal/geometry"
	"repro/internal/lbm"
	"repro/internal/machine"
)

func cylinderWorkload(t *testing.T, ranks int) Workload {
	t.Helper()
	dom, err := geometry.Cylinder(40, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, PeriodicX: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := decomp.RCB(s, ranks, lbm.HarveyAccess())
	if err != nil {
		t.Fatal(err)
	}
	return FromPartition("cylinder", s.N(), p)
}

func TestRunValidation(t *testing.T) {
	sys := machine.NewCSP2()
	w := cylinderWorkload(t, 4)
	if _, err := Run(Workload{}, sys, 10, nil); err == nil {
		t.Error("want error for empty workload")
	}
	if _, err := Run(w, sys, 0, nil); err == nil {
		t.Error("want error for zero steps")
	}
	big := cylinderWorkload(t, 200) // CSP-2 has 144 cores
	if _, err := Run(big, sys, 10, nil); err == nil {
		t.Error("want error for ranks beyond system cores")
	}
}

func TestRunBasicShape(t *testing.T) {
	sys := machine.NewCSP2()
	w := cylinderWorkload(t, 36)
	r, err := Run(w, sys, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.StepS <= 0 || r.Seconds <= 0 || r.MFLUPS <= 0 {
		t.Fatalf("non-positive timings: %+v", r)
	}
	if r.NodesUsed != 1 {
		t.Errorf("36 ranks on CSP-2 should use 1 node, got %d", r.NodesUsed)
	}
	if math.Abs(r.Seconds-r.StepS*100) > 1e-12 {
		t.Errorf("noiseless Seconds %v != StepS*steps %v", r.Seconds, r.StepS*100)
	}
	wantMFLUPS := float64(w.Points) * 100 / r.Seconds / 1e6
	if math.Abs(r.MFLUPS-wantMFLUPS) > 1e-9 {
		t.Errorf("MFLUPS inconsistent: %v vs %v", r.MFLUPS, wantMFLUPS)
	}
	if r.CostUSD <= 0 {
		t.Error("cost must be positive")
	}
	// Gating task must have the largest total.
	maxT := r.MaxTiming().Total()
	for _, tt := range r.PerTask {
		if tt.Total() > maxT+1e-15 {
			t.Error("Slowest is not the slowest task")
		}
	}
}

func TestSingleNodeHasNoInterNodeComm(t *testing.T) {
	sys := machine.NewCSP2() // 36 cores/node
	w := cylinderWorkload(t, 18)
	r, err := Run(w, sys, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range r.PerTask {
		if tt.InterS != 0 {
			t.Errorf("task %d has inter-node time %v on a single node", i, tt.InterS)
		}
	}
}

func TestMultiNodeHasInterNodeComm(t *testing.T) {
	sys := machine.NewCSP1() // 16 cores/node
	w := cylinderWorkload(t, 48)
	r, err := Run(w, sys, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.NodesUsed != 3 {
		t.Fatalf("48 ranks on CSP-1 should use 3 nodes, got %d", r.NodesUsed)
	}
	var inter float64
	for _, tt := range r.PerTask {
		inter += tt.InterS
	}
	if inter == 0 {
		t.Error("no inter-node communication across 3 nodes")
	}
}

func TestECFasterThanNoEC(t *testing.T) {
	// Same workload, same node shape; the EC interconnect must win when
	// communication crosses nodes (the paper's interconnect study).
	w := cylinderWorkload(t, 144)
	ec, err := Run(w, machine.NewCSP2EC(), 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	noEC, err := Run(w, machine.NewCSP2(), 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ec.MFLUPS <= noEC.MFLUPS {
		t.Errorf("EC (%v MFLUPS) not faster than no-EC (%v)", ec.MFLUPS, noEC.MFLUPS)
	}
}

func TestStrongScalingShape(t *testing.T) {
	// MFLUPS must increase from 4 to 36 ranks on a single CSP-2 node
	// (more cores, more bandwidth) — the rising left side of Figure 3.
	sys := machine.NewCSP2()
	r4, err := Run(cylinderWorkload(t, 4), sys, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	r36, err := Run(cylinderWorkload(t, 36), sys, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r36.MFLUPS <= r4.MFLUPS {
		t.Errorf("no strong scaling: %v (36) vs %v (4)", r36.MFLUPS, r4.MFLUPS)
	}
}

func TestNoiseStatisticsMatchSystemCV(t *testing.T) {
	sys := machine.NewCSP2Small()
	w := cylinderWorkload(t, 16)
	rng := rand.New(rand.NewSource(11))
	var samples []float64
	for i := 0; i < 200; i++ {
		r, err := Run(w, sys, 10, rng)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, r.MFLUPS)
	}
	s := fit.Summarize(samples)
	// Run noise CV plus bandwidth noise: total CV should be near NoiseCV,
	// well within a factor of ~2.5.
	if s.CV < sys.NoiseCV/3 || s.CV > sys.NoiseCV*3 {
		t.Errorf("measured CV %v far from configured %v", s.CV, sys.NoiseCV)
	}
}

func TestDeterministicWithoutRNG(t *testing.T) {
	sys := machine.NewTRC()
	w := cylinderWorkload(t, 40)
	a, err := Run(w, sys, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w, sys, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds || a.MFLUPS != b.MFLUPS {
		t.Error("noiseless runs differ")
	}
}

func TestFromPartitionPreservesTotals(t *testing.T) {
	dom, err := geometry.Cylinder(24, 6)
	if err != nil {
		t.Fatal(err)
	}
	s, err := lbm.NewSparse(dom, lbm.Params{Tau: 0.9, PeriodicX: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := decomp.RCB(s, 8, lbm.HarveyAccess())
	if err != nil {
		t.Fatal(err)
	}
	w := FromPartition("c", s.N(), p)
	if len(w.Tasks) != 8 || w.Points != s.N() {
		t.Fatalf("workload shape wrong: %d tasks, %d points", len(w.Tasks), w.Points)
	}
	var bytes float64
	for _, task := range w.Tasks {
		bytes += task.Bytes
	}
	if math.Abs(bytes-p.TotalBytes()) > 1e-9 {
		t.Errorf("bytes not preserved: %v vs %v", bytes, p.TotalBytes())
	}
}
