// Package simcloud executes a decomposed LBM workload on a modeled system
// (internal/machine) and reports the timings and MFLUPS a real run would
// produce. It is this reproduction's stand-in for the paper's hardware
// testbeds: per timestep every task pays for its memory traffic at its
// share of the node's bandwidth and for its halo messages on the intra- or
// inter-node link, the slowest task gates the step (bulk-synchronous halo
// exchange), and run-to-run noise is injected per the system's measured
// variability. The performance models of internal/perfmodel are judged
// against these "measurements".
package simcloud

import (
	"fmt"
	"math/rand"

	"repro/internal/decomp"
	"repro/internal/machine"
)

// Message is one halo transfer charged to a task each timestep.
type Message struct {
	Peer  int
	Bytes float64
}

// TaskSpec is the simulator's view of one task's per-timestep work.
type TaskSpec struct {
	Bytes float64   // memory bytes accessed per timestep
	Sends []Message // outgoing halo messages per timestep
}

// Workload is a fully decomposed per-timestep work description.
type Workload struct {
	Name   string
	Points int // total fluid points (for MFLUPS)
	Tasks  []TaskSpec
}

// FromPartition converts a decomposition into a simulator workload.
func FromPartition(name string, points int, p *decomp.Partition) Workload {
	w := Workload{Name: name, Points: points, Tasks: make([]TaskSpec, p.NTasks)}
	for t := range p.Tasks {
		w.Tasks[t].Bytes = p.Tasks[t].Bytes
		for _, h := range p.Tasks[t].Sends {
			w.Tasks[t].Sends = append(w.Tasks[t].Sends, Message{Peer: h.Peer, Bytes: h.Bytes()})
		}
	}
	return w
}

// KernelOverhead inflates simulated memory time over the pure
// bytes/bandwidth optimum: instruction issue, partial cache-line use and
// synchronization that a bandwidth-only model cannot see. It is the reason
// the performance models "overpredicted ... by a consistent amount in all
// cases" in the paper — a bias the iterative refinement loop learns away.
const KernelOverhead = 1.18

// TaskTiming breaks one task's per-timestep cost into the components the
// paper's Figures 9 and 10 visualize, plus the CPU-GPU transfer term of
// Eq. 2 on accelerator instances.
type TaskTiming struct {
	MemS    float64 // memory access time, seconds
	IntraS  float64 // intra-node communication time
	InterS  float64 // inter-node communication time
	CPUGPUs float64 // host-device staging time (GPU instances only)
	Events  int     // message events (sends + receives)
}

// Total returns the task's full per-timestep cost.
func (t TaskTiming) Total() float64 { return t.MemS + t.IntraS + t.InterS + t.CPUGPUs }

// Result reports one simulated run.
type Result struct {
	Workload  string
	System    string
	Ranks     int
	Steps     int
	StepS     float64      // noiseless seconds per timestep (slowest task)
	Seconds   float64      // total wall time including noise
	MFLUPS    float64      // Eq. 7 throughput
	PerTask   []TaskTiming // noiseless per-task breakdown
	Slowest   int          // index of the gating task
	CostUSD   float64      // node-hour cost of the run on this system
	NodesUsed int
}

// Options tunes a simulated run beyond the defaults.
type Options struct {
	// SharedOccupancy models multi-tenant nodes, the case the paper's
	// Discussion flags: the fraction (0..1) of the node's cores NOT owned
	// by this job that other users keep busy. Their memory traffic
	// contends with ours: the node bandwidth curve is evaluated at the
	// total active core count and shared evenly. 0 (the default) is the
	// paper's measured node-exclusive setting.
	SharedOccupancy float64
}

// Validate checks option ranges.
func (o Options) Validate() error {
	if o.SharedOccupancy < 0 || o.SharedOccupancy > 1 {
		return fmt.Errorf("simcloud: shared occupancy %g outside [0,1]", o.SharedOccupancy)
	}
	return nil
}

// Run simulates the workload on sys for the given number of timesteps
// with default options. Tasks are placed one per physical core,
// block-filling nodes. rng drives the system's noise processes; a nil rng
// runs noiselessly.
func Run(w Workload, sys *machine.System, steps int, rng *rand.Rand) (Result, error) {
	return RunOpts(w, sys, steps, rng, Options{})
}

// RunOpts simulates the workload with explicit options.
func RunOpts(w Workload, sys *machine.System, steps int, rng *rand.Rand, opt Options) (Result, error) {
	ranks := len(w.Tasks)
	if ranks == 0 {
		return Result{}, fmt.Errorf("simcloud: workload %q has no tasks", w.Name)
	}
	if steps <= 0 {
		return Result{}, fmt.Errorf("simcloud: steps %d must be positive", steps)
	}
	if ranks > sys.MaxRanks() {
		return Result{}, fmt.Errorf("simcloud: %d ranks exceed %s's %d cores", ranks, sys.Abbrev, sys.MaxRanks())
	}
	if err := opt.Validate(); err != nil {
		return Result{}, err
	}

	nodeOf := func(task int) int { return task / sys.CoresPerNode }
	nodes := sys.Nodes(ranks)

	// Tasks per node under block placement.
	perNode := make([]int, nodes)
	for t := 0; t < ranks; t++ {
		perNode[nodeOf(t)]++
	}

	// Per-node effective bandwidth for this run: the deterministic
	// two-regime curve, with the system's post-knee contention variance
	// drawn once per node per run (the "not all cores have separate
	// memory channels" effect the paper observed on CSP-2).
	nodeBW := make([]float64, nodes) // bytes per second per task share
	for n := 0; n < nodes; n++ {
		k := perNode[n]
		// Other tenants' cores contend for the same memory subsystem: the
		// curve is evaluated at the total active count and shared evenly
		// (the paper's "full or partial usage of the other cores").
		others := opt.SharedOccupancy * float64(sys.CoresPerNode-k)
		total := float64(k) + others
		bw := sys.Mem.Bandwidth(total)
		if rng != nil {
			bw = sys.SampleBandwidth(int(total+0.5), false, rng)
		}
		nodeBW[n] = bw * 1e6 / total
	}

	res := Result{
		Workload: w.Name, System: sys.Abbrev, Ranks: ranks, Steps: steps,
		PerTask: make([]TaskTiming, ranks), NodesUsed: nodes,
	}
	const mb = 1e6
	for t := range w.Tasks {
		tt := &res.PerTask[t]
		tt.MemS = w.Tasks[t].Bytes / nodeBW[nodeOf(t)] * KernelOverhead
		// Halo exchange: each send has a matching receive of equal size
		// (decomp halos are symmetric), both serialized onto the link.
		for _, msg := range w.Tasks[t].Sends {
			link := sys.InterNode
			intra := nodeOf(msg.Peer) == nodeOf(t)
			if intra {
				link = sys.IntraNode
			}
			per := 2 * (msg.Bytes/(link.BandwidthMBps*mb) + link.LatencyUS*1e-6)
			if intra {
				tt.IntraS += per
			} else {
				tt.InterS += per
			}
			tt.Events += 2
			// On accelerator instances the halo is staged through host
			// memory: device->host before the send, host->device after
			// the receive — Eq. 2's t_CPU-GPU.
			if sys.GPU != nil {
				tt.CPUGPUs += 2 * (msg.Bytes/(sys.GPU.PCIe.BandwidthMBps*mb) + sys.GPU.PCIe.LatencyUS*1e-6)
			}
		}
		if tt.Total() > res.StepS {
			res.StepS = tt.Total()
			res.Slowest = t
		}
	}

	res.Seconds = res.StepS * float64(steps)
	if rng != nil {
		res.Seconds *= sys.RunNoise(rng)
	}
	res.MFLUPS = float64(w.Points) * float64(steps) / res.Seconds / 1e6
	res.CostUSD = sys.JobCost(ranks, res.Seconds)
	return res, nil
}

// MaxTiming returns the gating task's timing breakdown.
func (r Result) MaxTiming() TaskTiming { return r.PerTask[r.Slowest] }
