package monitor

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestAddRejectsNonFinite is the regression test for the NaN guard:
// every NaN comparison is false, so NaN MFLUPS sailed through the old
// `<= 0` validation and poisoned every downstream mean and sigma.
func TestAddRejectsNonFinite(t *testing.T) {
	cases := []struct {
		name string
		s    Sample
	}{
		{"NaN MFLUPS", Sample{TimeS: 1, Workload: "a", System: "s", Ranks: 4, MFLUPS: math.NaN()}},
		{"+Inf MFLUPS", Sample{TimeS: 1, Workload: "a", System: "s", Ranks: 4, MFLUPS: math.Inf(1)}},
		{"NaN time", Sample{TimeS: math.NaN(), Workload: "a", System: "s", Ranks: 4, MFLUPS: 5}},
		{"NaN predicted", Sample{TimeS: 1, Workload: "a", System: "s", Ranks: 4, MFLUPS: 5, Predicted: math.NaN()}},
		{"-Inf cost", Sample{TimeS: 1, Workload: "a", System: "s", Ranks: 4, MFLUPS: 5, CostUSD: math.Inf(-1)}},
		{"NaN wait", Sample{TimeS: 1, Workload: "a", System: "s", Ranks: 4, MFLUPS: 5, WaitS: math.NaN()}},
	}
	for _, tc := range cases {
		var st Store
		if err := st.Add(tc.s); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), "non-finite") {
			t.Errorf("%s: error %q does not name the non-finite field", tc.name, err)
		}
		if st.Len() != 0 {
			t.Errorf("%s: rejected sample was stored", tc.name)
		}
	}
}

// TestKeyEscaping is the regression test for the ambiguous key join:
// workload "a|b" system "c" and workload "a" system "b|c" rendered the
// same "a|b|c|ranks" key, merging two configurations' series.
func TestKeyEscaping(t *testing.T) {
	var st Store
	first := Sample{TimeS: 1, Workload: "a|b", System: "c", Ranks: 4, MFLUPS: 10}
	second := Sample{TimeS: 2, Workload: "a", System: "b|c", Ranks: 4, MFLUPS: 20}
	if first.key() == second.key() {
		t.Fatalf("keys collide: %q", first.key())
	}
	for _, s := range []Sample{first, second} {
		if err := st.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Series("a|b", "c", 4); len(got) != 1 || got[0].MFLUPS != 10 {
		t.Errorf("series for workload a|b = %v, want the single 10-MFLUPS sample", got)
	}
	if got := st.Series("a", "b|c", 4); len(got) != 1 || got[0].MFLUPS != 20 {
		t.Errorf("series for system b|c = %v, want the single 20-MFLUPS sample", got)
	}
	if got := len(st.Configurations()); got != 2 {
		t.Errorf("configurations = %d, want 2 distinct", got)
	}
	// Backslashes in names must not manufacture collisions either.
	esc1 := Sample{Workload: `a\`, System: `b`}
	esc2 := Sample{Workload: `a`, System: `\b`}
	if esc1.key() == esc2.key() {
		t.Errorf("backslash keys collide: %q", esc1.key())
	}
}

// jobGauges publishes the four per-job gauges the fleet scheduler emits
// on completion, the way fleet.obsComplete does.
func jobGauges(reg *obs.Registry, workload, system, model string, ranks int, doneT, mflups, pred, usd, waitS float64) {
	labels := []obs.Label{
		obs.L(LabelWorkload, workload),
		obs.L(LabelSystem, system),
		obs.L(LabelRanks, strconv.Itoa(ranks)),
		obs.L(LabelModel, model),
		obs.L(LabelDoneT, fmt.Sprintf("%g", doneT)),
	}
	reg.Gauge(MetricJobMFLUPS, labels...).Set(mflups)
	reg.Gauge(MetricJobPredMFLUPS, labels...).Set(pred)
	reg.Gauge(MetricJobCostUSD, labels...).Set(usd)
	reg.Gauge(MetricJobWaitS, labels...).Set(waitS)
}

func TestIngestSnapshotRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	// Two completed jobs, out of completion order in the snapshot (the
	// snapshot is sorted by instrument key, not by time).
	jobGauges(reg, "valve", "CSP-1", "direct", 8, 200, 40, 38, 1.5, 12)
	jobGauges(reg, "aorta", "CSP-2", "direct", 16, 100, 55, 50, 2.5, 0)

	var st Store
	n, err := st.IngestSnapshot(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("ingested %d samples, want 2", n)
	}
	// Completion-time order: the t=100 aorta job must land first even
	// though "valve" gauges might sort earlier in the snapshot.
	aorta := st.Series("aorta", "CSP-2", 16)
	if len(aorta) != 1 {
		t.Fatalf("aorta series has %d samples", len(aorta))
	}
	got := aorta[0]
	want := Sample{TimeS: 100, Workload: "aorta", System: "CSP-2", Model: "direct",
		Ranks: 16, MFLUPS: 55, Predicted: 50, CostUSD: 2.5, WaitS: 0}
	if got != want {
		t.Errorf("ingested sample = %+v, want %+v", got, want)
	}
	valve := st.Series("valve", "CSP-1", 8)
	if len(valve) != 1 || valve[0].WaitS != 12 {
		t.Errorf("valve series = %+v, want one sample with 12s wait", valve)
	}
	// Prediction-bearing samples flow on into refinement records.
	if recs := st.Records(); len(recs) != 2 {
		t.Errorf("refinement records = %d, want 2", len(recs))
	}
}

func TestIngestSnapshotIgnoresForeignMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("fleet_placements_total").Add(3)
	reg.Gauge("par_compute_s", obs.L("rank", "0")).Set(1.25)
	jobGauges(reg, "aorta", "CSP-2", "", 16, 100, 55, 0, 2.5, 0)

	var st Store
	n, err := st.IngestSnapshot(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("ingested %d samples, want 1 (foreign metrics must be skipped)", n)
	}
	// No prediction gauge value => no refinement record.
	if recs := st.Records(); len(recs) != 0 {
		t.Errorf("refinement records = %d, want 0 without predictions", len(recs))
	}
}

func TestIngestSnapshotRejectsMalformedGroups(t *testing.T) {
	// Missing the required MFLUPS gauge.
	reg := obs.NewRegistry()
	reg.Gauge(MetricJobCostUSD,
		obs.L(LabelWorkload, "aorta"), obs.L(LabelSystem, "CSP-2"),
		obs.L(LabelRanks, "16"), obs.L(LabelDoneT, "100")).Set(2.5)
	var st Store
	if _, err := st.IngestSnapshot(reg.Snapshot()); err == nil {
		t.Error("want error for group without job_mflups")
	}

	// Unparseable ranks label.
	reg = obs.NewRegistry()
	reg.Gauge(MetricJobMFLUPS,
		obs.L(LabelWorkload, "aorta"), obs.L(LabelSystem, "CSP-2"),
		obs.L(LabelRanks, "many"), obs.L(LabelDoneT, "100")).Set(55)
	st = Store{}
	if _, err := st.IngestSnapshot(reg.Snapshot()); err == nil {
		t.Error("want error for bad ranks label")
	}

	// A NaN gauge value must be caught by Add, not stored.
	reg = obs.NewRegistry()
	jobGauges(reg, "aorta", "CSP-2", "", 16, 100, math.NaN(), 0, 2.5, 0)
	st = Store{}
	if _, err := st.IngestSnapshot(reg.Snapshot()); err == nil {
		t.Error("want error for NaN MFLUPS gauge")
	}
	if st.Len() != 0 {
		t.Error("NaN sample was stored")
	}
}
