package monitor

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/obs"
)

// Per-job gauge names the fleet scheduler publishes on completion. The
// ingestion bridge reassembles gauges carrying these names — grouped by
// their identity labels — into telemetry Samples, so a metrics snapshot
// feeds the same regression detection and model refinement as direct
// Store.Add calls.
const (
	MetricJobMFLUPS     = "job_mflups"
	MetricJobPredMFLUPS = "job_predicted_mflups"
	MetricJobCostUSD    = "job_cost_usd"
	MetricJobWaitS      = "job_wait_s"
)

// Identity labels on the per-job gauges.
const (
	LabelWorkload = "workload"
	LabelSystem   = "system"
	LabelRanks    = "ranks"
	LabelModel    = "model"
	LabelDoneT    = "done_t" // simulated completion seconds
)

// IngestSnapshot folds a metrics snapshot into the store: every group of
// job_* gauges sharing identity labels becomes one Sample, added in
// completion-time order (ties break on configuration key so ingestion
// is deterministic). Non-job metrics are ignored. Returns the number of
// samples added; a malformed group or a rejected Add aborts with an
// error.
func (st *Store) IngestSnapshot(snap []obs.Metric) (int, error) {
	type group struct {
		sample Sample
		seen   bool // has the required MFLUPS gauge
	}
	groups := map[string]*group{}
	var order []string
	for _, m := range snap {
		switch m.Name {
		case MetricJobMFLUPS, MetricJobPredMFLUPS, MetricJobCostUSD, MetricJobWaitS:
		default:
			continue
		}
		if m.Type != "gauge" {
			return 0, fmt.Errorf("monitor: ingest: %s is a %s, want gauge", m.Name, m.Type)
		}
		ranks, err := strconv.Atoi(m.Label(LabelRanks))
		if err != nil {
			return 0, fmt.Errorf("monitor: ingest: %s has bad ranks label %q", m.Name, m.Label(LabelRanks))
		}
		doneT, err := strconv.ParseFloat(m.Label(LabelDoneT), 64)
		if err != nil {
			return 0, fmt.Errorf("monitor: ingest: %s has bad done_t label %q", m.Name, m.Label(LabelDoneT))
		}
		id := fmt.Sprintf("%g\x00%s\x00%s\x00%d\x00%s",
			doneT, m.Label(LabelWorkload), m.Label(LabelSystem), ranks, m.Label(LabelModel))
		g, ok := groups[id]
		if !ok {
			g = &group{sample: Sample{
				TimeS:    doneT,
				Workload: m.Label(LabelWorkload),
				System:   m.Label(LabelSystem),
				Model:    m.Label(LabelModel),
				Ranks:    ranks,
			}}
			groups[id] = g
			order = append(order, id)
		}
		switch m.Name {
		case MetricJobMFLUPS:
			g.sample.MFLUPS = m.Value
			g.seen = true
		case MetricJobPredMFLUPS:
			g.sample.Predicted = m.Value
		case MetricJobCostUSD:
			g.sample.CostUSD = m.Value
		case MetricJobWaitS:
			g.sample.WaitS = m.Value
		}
	}

	samples := make([]Sample, 0, len(order))
	for _, id := range order {
		g := groups[id]
		if !g.seen {
			return 0, fmt.Errorf("monitor: ingest: %s/%s/%d at t=%g has no %s gauge",
				g.sample.Workload, g.sample.System, g.sample.Ranks, g.sample.TimeS, MetricJobMFLUPS)
		}
		samples = append(samples, g.sample)
	}
	sort.SliceStable(samples, func(i, j int) bool {
		if samples[i].TimeS < samples[j].TimeS {
			return true
		}
		if samples[i].TimeS > samples[j].TimeS {
			return false
		}
		return samples[i].key() < samples[j].key()
	})
	added := 0
	for _, s := range samples {
		if err := st.Add(s); err != nil {
			return added, fmt.Errorf("monitor: ingest: %w", err)
		}
		added++
	}
	return added, nil
}
