package monitor

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/perfmodel"
)

func sample(t float64, mflups float64) Sample {
	return Sample{TimeS: t, Workload: "aorta", System: "CSP-2", Ranks: 36, MFLUPS: mflups}
}

func TestAddValidation(t *testing.T) {
	var st Store
	if err := st.Add(Sample{TimeS: 1, Workload: "a", System: "s", MFLUPS: 0}); err == nil {
		t.Error("want error for zero MFLUPS")
	}
	if err := st.Add(Sample{TimeS: 1, MFLUPS: 5}); err == nil {
		t.Error("want error for missing identity")
	}
	if err := st.Add(sample(10, 50)); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(sample(5, 50)); err == nil {
		t.Error("want error for time going backwards")
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d, want 1", st.Len())
	}
}

func TestSeriesAndConfigurations(t *testing.T) {
	var st Store
	for i := 0; i < 5; i++ {
		if err := st.Add(sample(float64(i), 50+float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	other := Sample{TimeS: 10, Workload: "cyl", System: "TRC", Ranks: 8, MFLUPS: 99}
	if err := st.Add(other); err != nil {
		t.Fatal(err)
	}
	if got := st.Series("aorta", "CSP-2", 36); len(got) != 5 {
		t.Errorf("series has %d samples, want 5", len(got))
	}
	if got := st.Series("aorta", "CSP-2", 8); len(got) != 0 {
		t.Error("wrong-rank series should be empty")
	}
	if got := st.Configurations(); len(got) != 2 {
		t.Errorf("configurations = %v, want 2 entries", got)
	}
}

func TestBaseline(t *testing.T) {
	var st Store
	for i, v := range []float64{50, 52, 48, 50} {
		if err := st.Add(sample(float64(i), v)); err != nil {
			t.Fatal(err)
		}
	}
	b, err := st.Baseline("aorta", "CSP-2", 36)
	if err != nil {
		t.Fatal(err)
	}
	if b.Mean != 50 {
		t.Errorf("baseline mean %v, want 50", b.Mean)
	}
	if _, err := st.Baseline("nope", "CSP-2", 36); err == nil {
		t.Error("want error for unknown configuration")
	}
}

func TestDetectRegressions(t *testing.T) {
	var st Store
	// Stable history around 50 with sd ~1, then a crash to 30.
	hist := []float64{50, 51, 49, 50.5, 49.5, 50, 51, 49}
	for i, v := range hist {
		if err := st.Add(sample(float64(i), v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Add(sample(100, 30)); err != nil {
		t.Fatal(err)
	}
	regs, err := st.DetectRegressions(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("detected %d regressions, want 1", len(regs))
	}
	r := regs[0]
	if r.LatestMFLUPS != 30 || math.Abs(r.BaselineMFLUPS-50) > 0.5 {
		t.Errorf("regression fields wrong: %+v", r)
	}
	if r.Sigmas < 3 {
		t.Errorf("sigmas %v, want > 3", r.Sigmas)
	}
}

func TestDetectRegressionsNoFalsePositive(t *testing.T) {
	var st Store
	for i, v := range []float64{50, 51, 49, 50.5, 49.5, 50.2} {
		if err := st.Add(sample(float64(i), v)); err != nil {
			t.Fatal(err)
		}
	}
	regs, err := st.DetectRegressions(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("false positive: %+v", regs)
	}
}

func TestDetectRegressionsValidation(t *testing.T) {
	var st Store
	if _, err := st.DetectRegressions(1, 3); err == nil {
		t.Error("want error for tiny history requirement")
	}
	if _, err := st.DetectRegressions(3, 0); err == nil {
		t.Error("want error for zero threshold")
	}
}

func TestRecordsAndFeedRefiner(t *testing.T) {
	var st Store
	s := sample(1, 80)
	s.Model = "direct"
	s.Predicted = 100
	if err := st.Add(s); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(sample(2, 85)); err != nil { // no prediction: skipped
		t.Fatal(err)
	}
	recs := st.Records()
	if len(recs) != 1 || recs[0].Predicted != 100 || recs[0].Measured != 80 {
		t.Fatalf("records wrong: %+v", recs)
	}
	var ref perfmodel.Refiner
	if err := st.FeedRefiner(&ref); err != nil {
		t.Fatal(err)
	}
	if ref.Len() != 1 {
		t.Errorf("refiner has %d records, want 1", ref.Len())
	}
	if c := ref.Correction("CSP-2", "direct", 36); math.Abs(c-0.8) > 1e-12 {
		t.Errorf("correction %v, want 0.8", c)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	var st Store
	for i := 0; i < 3; i++ {
		if err := st.Add(sample(float64(i), 50+float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var st2 Store
	if err := st2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 3 {
		t.Fatalf("loaded %d samples, want 3", st2.Len())
	}
	if err := st2.Load(bytes.NewBufferString("garbage")); err == nil {
		t.Error("want error for corrupt input")
	}
}

func TestRender(t *testing.T) {
	var st Store
	for i := 0; i < 3; i++ {
		if err := st.Add(sample(float64(i), 50+float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	out := st.Render()
	for _, want := range []string{"aorta|CSP-2|36", "mean MFLUPS", "51.00", "52.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
