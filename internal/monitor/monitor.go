// Package monitor is the performance-monitoring layer the paper's
// Discussion anticipates ("performance monitoring projects such as SONAR
// are expected to be extremely useful in helping to automate and track
// the measured performance against model predictions"): an append-only
// telemetry store of completed runs with their predictions, statistical
// baselines per configuration, regression detection, and export of
// prediction/measurement pairs into the model-refinement loop.
package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/fit"
	"repro/internal/perfmodel"
)

// Sample is one telemetry record from a completed run.
type Sample struct {
	TimeS     float64 `json:"time"` // simulated epoch seconds
	Workload  string  `json:"workload"`
	System    string  `json:"system"`
	Model     string  `json:"model,omitempty"` // which model predicted, if any
	Ranks     int     `json:"ranks"`
	MFLUPS    float64 `json:"mflups"`
	Predicted float64 `json:"predicted_mflups,omitempty"`
	CostUSD   float64 `json:"cost_usd"`
	// WaitS is the queue wait before the run first started, reported by
	// fleet-scheduled jobs (0 for directly submitted runs).
	WaitS float64 `json:"wait_s,omitempty"`
}

// escapeKeyPart makes a name safe for embedding in a "|"-separated
// configuration key: without it, workload "a|b" system "c" and workload
// "a" system "b|c" would collide on the same key.
func escapeKeyPart(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "|", `\|`)
}

// key identifies a monitored configuration.
func (s Sample) key() string {
	return fmt.Sprintf("%s|%s|%d", escapeKeyPart(s.Workload), escapeKeyPart(s.System), s.Ranks)
}

// Store is an append-only telemetry store.
type Store struct {
	samples []Sample
}

// Add appends a sample after validation. Samples must arrive in
// non-decreasing time order (the monitor tails a live system).
func (st *Store) Add(s Sample) error {
	// NaN slips past a plain <= 0 guard (every NaN comparison is false),
	// so non-finite fields need their own check.
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"time", s.TimeS}, {"MFLUPS", s.MFLUPS}, {"predicted MFLUPS", s.Predicted},
		{"cost", s.CostUSD}, {"wait", s.WaitS},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("monitor: sample for %s has non-finite %s (%g)", s.key(), f.name, f.v)
		}
	}
	if s.MFLUPS <= 0 {
		return fmt.Errorf("monitor: sample for %s has non-positive MFLUPS", s.key())
	}
	if s.Workload == "" || s.System == "" {
		return fmt.Errorf("monitor: sample missing workload or system")
	}
	if n := len(st.samples); n > 0 && s.TimeS < st.samples[n-1].TimeS {
		return fmt.Errorf("monitor: sample at t=%g arrives before t=%g", s.TimeS, st.samples[n-1].TimeS)
	}
	st.samples = append(st.samples, s)
	return nil
}

// Len returns the number of stored samples.
func (st *Store) Len() int { return len(st.samples) }

// Series returns the samples of one configuration in arrival order.
func (st *Store) Series(workload, system string, ranks int) []Sample {
	key := Sample{Workload: workload, System: system, Ranks: ranks}.key()
	var out []Sample
	for _, s := range st.samples {
		if s.key() == key {
			out = append(out, s)
		}
	}
	return out
}

// Configurations lists the distinct monitored configurations, sorted.
func (st *Store) Configurations() []string {
	seen := map[string]bool{}
	for _, s := range st.samples {
		seen[s.key()] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Baseline summarizes a configuration's throughput history.
func (st *Store) Baseline(workload, system string, ranks int) (fit.Summary, error) {
	series := st.Series(workload, system, ranks)
	if len(series) == 0 {
		return fit.Summary{}, fmt.Errorf("monitor: no samples for %s/%s/%d", workload, system, ranks)
	}
	vals := make([]float64, len(series))
	for i, s := range series {
		vals[i] = s.MFLUPS
	}
	return fit.Summarize(vals), nil
}

// Regression flags a configuration whose latest run fell significantly
// below its historical baseline.
type Regression struct {
	Workload       string
	System         string
	Ranks          int
	BaselineMFLUPS float64 // historical mean (excluding the latest run)
	LatestMFLUPS   float64
	Sigmas         float64 // how many baseline standard deviations below mean
}

// DetectRegressions scans every configuration with at least minHistory+1
// samples and reports those whose latest throughput sits more than
// threshold standard deviations below the mean of the preceding history.
func (st *Store) DetectRegressions(minHistory int, threshold float64) ([]Regression, error) {
	if minHistory < 2 {
		return nil, fmt.Errorf("monitor: need at least 2 history samples, got %d", minHistory)
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("monitor: non-positive threshold %g", threshold)
	}
	var out []Regression
	for _, key := range st.Configurations() {
		var series []Sample
		for _, s := range st.samples {
			if s.key() == key {
				series = append(series, s)
			}
		}
		if len(series) < minHistory+1 {
			continue
		}
		latest := series[len(series)-1]
		hist := make([]float64, len(series)-1)
		for i, s := range series[:len(series)-1] {
			hist[i] = s.MFLUPS
		}
		sum := fit.Summarize(hist)
		if sum.StdDev == 0 {
			continue // a perfectly flat history cannot grade deviations
		}
		sigmas := (sum.Mean - latest.MFLUPS) / sum.StdDev
		if sigmas > threshold {
			out = append(out, Regression{
				Workload:       latest.Workload,
				System:         latest.System,
				Ranks:          latest.Ranks,
				BaselineMFLUPS: sum.Mean,
				LatestMFLUPS:   latest.MFLUPS,
				Sigmas:         sigmas,
			})
		}
	}
	return out, nil
}

// Records exports every sample that carries a prediction as a refinement
// record — the automation loop the paper sketches: monitoring feeds the
// model store without human bookkeeping.
func (st *Store) Records() []perfmodel.Record {
	var out []perfmodel.Record
	for _, s := range st.samples {
		if s.Predicted <= 0 {
			continue
		}
		out = append(out, perfmodel.Record{
			Workload:  s.Workload,
			System:    s.System,
			Model:     s.Model,
			Ranks:     s.Ranks,
			Predicted: s.Predicted,
			Measured:  s.MFLUPS,
		})
	}
	return out
}

// FeedRefiner pushes all prediction-bearing samples into a refiner.
func (st *Store) FeedRefiner(r *perfmodel.Refiner) error {
	for _, rec := range st.Records() {
		if err := r.Add(rec); err != nil {
			return err
		}
	}
	return nil
}

// Render formats a status report: every monitored configuration with its
// baseline statistics and latest observation.
func (st *Store) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %8s %12s %10s %12s\n",
		"configuration", "samples", "mean MFLUPS", "cv", "latest")
	for _, key := range st.Configurations() {
		var series []Sample
		for _, s := range st.samples {
			if s.key() == key {
				series = append(series, s)
			}
		}
		vals := make([]float64, len(series))
		for i, s := range series {
			vals[i] = s.MFLUPS
		}
		sum := fit.Summarize(vals)
		fmt.Fprintf(&b, "%-40s %8d %12.2f %10.3f %12.2f\n",
			key, sum.N, sum.Mean, sum.CV, series[len(series)-1].MFLUPS)
	}
	return b.String()
}

// Save serializes the store as JSON.
func (st *Store) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(st.samples)
}

// Load replaces the store's contents from JSON written by Save.
func (st *Store) Load(r io.Reader) error {
	var samples []Sample
	if err := json.NewDecoder(r).Decode(&samples); err != nil {
		return fmt.Errorf("monitor: loading samples: %w", err)
	}
	restored := Store{}
	for _, s := range samples {
		if err := restored.Add(s); err != nil {
			return err
		}
	}
	*st = restored
	return nil
}
