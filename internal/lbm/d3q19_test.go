package lbm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLatticeSymmetry(t *testing.T) {
	// Weights must sum to 1.
	var sum float64
	for q := 0; q < NQ; q++ {
		sum += W[q]
	}
	if math.Abs(sum-1) > 1e-15 {
		t.Errorf("weights sum to %v, want 1", sum)
	}
	// First moment of the velocity set must vanish.
	var sx, sy, sz float64
	for q := 0; q < NQ; q++ {
		sx += W[q] * float64(Cx[q])
		sy += W[q] * float64(Cy[q])
		sz += W[q] * float64(Cz[q])
	}
	if sx != 0 || sy != 0 || sz != 0 {
		t.Errorf("weighted velocity sum = (%v,%v,%v), want 0", sx, sy, sz)
	}
	// Second moment: sum w_q c_qa c_qb = delta_ab / 3 (lattice speed of sound^2).
	var xx, yy, zz, xy, xz, yz float64
	for q := 0; q < NQ; q++ {
		xx += W[q] * float64(Cx[q]*Cx[q])
		yy += W[q] * float64(Cy[q]*Cy[q])
		zz += W[q] * float64(Cz[q]*Cz[q])
		xy += W[q] * float64(Cx[q]*Cy[q])
		xz += W[q] * float64(Cx[q]*Cz[q])
		yz += W[q] * float64(Cy[q]*Cz[q])
	}
	third := 1.0 / 3
	for _, v := range []float64{xx, yy, zz} {
		if math.Abs(v-third) > 1e-15 {
			t.Errorf("diagonal second moment %v, want 1/3", v)
		}
	}
	for _, v := range []float64{xy, xz, yz} {
		if v != 0 {
			t.Errorf("off-diagonal second moment %v, want 0", v)
		}
	}
}

func TestOppositeTable(t *testing.T) {
	for q := 0; q < NQ; q++ {
		p := Opp[q]
		if Cx[p] != -Cx[q] || Cy[p] != -Cy[q] || Cz[p] != -Cz[q] {
			t.Errorf("Opp[%d]=%d is not the opposite direction", q, p)
		}
		if Opp[p] != q {
			t.Errorf("Opp not involutive at %d", q)
		}
	}
	if Opp[0] != 0 {
		t.Errorf("rest direction opposite = %d, want 0", Opp[0])
	}
}

func TestEquilibriumMoments(t *testing.T) {
	// The equilibrium must reproduce its defining density and velocity.
	f := func(rhoRaw, uxRaw, uyRaw, uzRaw float64) bool {
		rho := 0.5 + math.Abs(math.Mod(rhoRaw, 1)) // in (0.5, 1.5)
		scale := 0.05
		ux := math.Mod(uxRaw, 1) * scale
		uy := math.Mod(uyRaw, 1) * scale
		uz := math.Mod(uzRaw, 1) * scale
		if math.IsNaN(ux + uy + uz + rho) {
			return true
		}
		var feq [NQ]float64
		Equilibrium(rho, ux, uy, uz, &feq)
		r, vx, vy, vz := Moments(&feq)
		tol := 1e-12
		return math.Abs(r-rho) < tol &&
			math.Abs(vx-ux) < tol && math.Abs(vy-uy) < tol && math.Abs(vz-uz) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEquilibriumRestState(t *testing.T) {
	var feq [NQ]float64
	Equilibrium(1, 0, 0, 0, &feq)
	for q := 0; q < NQ; q++ {
		if math.Abs(feq[q]-W[q]) > 1e-15 {
			t.Errorf("rest equilibrium f[%d] = %v, want weight %v", q, feq[q], W[q])
		}
	}
}

func TestMomentsZeroDensity(t *testing.T) {
	var f [NQ]float64
	rho, ux, uy, uz := Moments(&f)
	if rho != 0 || ux != 0 || uy != 0 || uz != 0 {
		t.Error("zero distribution must give zero moments without NaN")
	}
}

func TestParamsValidate(t *testing.T) {
	good := Params{Tau: 0.8, UMax: 0.05}
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Tau: 0.5},
		{Tau: 0.4},
		{Tau: 6},
		{Tau: 0.8, UMax: 0.5},
		{Tau: 0.8, UMax: -0.1},
		{Tau: 0.8, Force: [3]float64{0.5, 0, 0}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
}

func TestViscosity(t *testing.T) {
	p := Params{Tau: 1.1}
	if got := p.Viscosity(); math.Abs(got-0.2) > 1e-15 {
		t.Errorf("Viscosity = %v, want 0.2", got)
	}
}

func TestMFLUPS(t *testing.T) {
	if got := MFLUPS(1_000_000, 100, 10); got != 10 {
		t.Errorf("MFLUPS = %v, want 10", got)
	}
	if got := MFLUPS(100, 100, 0); got != 0 {
		t.Errorf("MFLUPS with zero time = %v, want 0", got)
	}
}

func TestMFLUPSScaleInvariance(t *testing.T) {
	// Eq. 7: MFLUPS depends only on the product points*steps per second.
	a := MFLUPS(1000, 500, 2)
	b := MFLUPS(500, 1000, 2)
	if a != b {
		t.Errorf("MFLUPS not invariant: %v vs %v", a, b)
	}
}
