// Package lbm implements the lattice Boltzmann solvers the paper measures:
// a HARVEY-like sparse production engine (indirect addressing over complex
// vascular geometries, D3Q19, BGK collision, Poiseuille inlets,
// zero-pressure outlets, halo-exchange parallelism via internal/par) and an
// lbm-proxy-app equivalent (dense cylinder-only kernels in AOS and SOA
// layouts with AB and AA propagation patterns, rolled and unrolled).
//
// Besides running real fluid dynamics, every engine counts its memory
// accesses per fluid point exactly as Eq. 9 of the paper requires, which is
// what the direct performance model consumes.
package lbm

import (
	"fmt"
	"math"
)

// NQ is the number of discrete velocities in the D3Q19 lattice.
const NQ = 19

// D3Q19 velocity set. Index 0 is the rest vector; 1..6 the face
// neighbors; 7..18 the edge neighbors.
var (
	Cx = [NQ]int{0, 1, -1, 0, 0, 0, 0, 1, -1, 1, -1, 1, -1, 1, -1, 0, 0, 0, 0}
	Cy = [NQ]int{0, 0, 0, 1, -1, 0, 0, 1, -1, -1, 1, 0, 0, 0, 0, 1, -1, 1, -1}
	Cz = [NQ]int{0, 0, 0, 0, 0, 1, -1, 0, 0, 0, 0, 1, -1, -1, 1, 1, -1, -1, 1}
)

// W holds the D3Q19 quadrature weights: 1/3 for rest, 1/18 for face
// directions, 1/36 for edge directions.
var W = [NQ]float64{
	1.0 / 3,
	1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18,
	1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36,
	1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36,
}

// Opp maps each direction to its opposite, used by bounce-back and the AA
// propagation pattern. Initialized at package load and verified by tests.
var Opp [NQ]int

func init() {
	for q := 0; q < NQ; q++ {
		found := false
		for p := 0; p < NQ; p++ {
			if Cx[p] == -Cx[q] && Cy[p] == -Cy[q] && Cz[p] == -Cz[q] {
				Opp[q] = p
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("lbm: no opposite for direction %d", q))
		}
	}
}

// Equilibrium fills feq with the Maxwell-Boltzmann equilibrium
// distribution for density rho and velocity (ux, uy, uz), the second-order
// expansion standard for isothermal LBM:
//
//	feq_q = w_q rho (1 + 3 c·u + 9/2 (c·u)^2 - 3/2 u·u)
//
//lint:hot
func Equilibrium(rho, ux, uy, uz float64, feq *[NQ]float64) {
	usq := 1.5 * (ux*ux + uy*uy + uz*uz)
	for q := 0; q < NQ; q++ {
		cu := 3 * (float64(Cx[q])*ux + float64(Cy[q])*uy + float64(Cz[q])*uz)
		feq[q] = W[q] * rho * (1 + cu + 0.5*cu*cu - usq)
	}
}

// Moments returns density and momentum-derived velocity of a distribution.
//
//lint:hot
func Moments(f *[NQ]float64) (rho, ux, uy, uz float64) {
	for q := 0; q < NQ; q++ {
		rho += f[q]
		ux += f[q] * float64(Cx[q])
		uy += f[q] * float64(Cy[q])
		uz += f[q] * float64(Cz[q])
	}
	//lint:ignore floateq exact-zero guard before division; rho is zero only at void sites
	if rho != 0 {
		ux /= rho
		uy /= rho
		uz /= rho
	}
	return rho, ux, uy, uz
}

// Params configures a solver run.
type Params struct {
	// Tau is the BGK relaxation time; kinematic viscosity is
	// (Tau - 0.5) / 3 in lattice units. Stability requires Tau > 0.5.
	Tau float64

	// UMax is the peak inlet velocity (lattice units) of the Poiseuille
	// profile. Keep well below 0.1 for accuracy.
	UMax float64

	// Force is an optional uniform body force density, used with periodic
	// domains for force-driven validation flows.
	Force [3]float64

	// PeriodicX wraps streaming across the x faces. Inlet/outlet sites are
	// treated as bulk fluid in periodic runs.
	PeriodicX bool

	// Collision selects the collision operator (BGK, the paper's HARVEY
	// configuration, or TRT).
	Collision CollisionOp

	// Pulsatile, when Period > 0, modulates the inlet velocity over the
	// cardiac cycle: u(t) = UMax * (1 + Amplitude*sin(2*pi*t/Period)),
	// with t the timestep count. Hemodynamic inflow is pulsatile; steady
	// bulk flow (the paper's benchmark setting) is Period == 0.
	Pulsatile Waveform
}

// Waveform parameterizes the periodic inlet modulation.
type Waveform struct {
	Period    float64 // timesteps per cardiac cycle (0 disables)
	Amplitude float64 // fractional modulation, in [0, 1)
}

// Scale returns the inlet velocity multiplier at timestep t.
func (w Waveform) Scale(t int) float64 {
	if w.Period <= 0 {
		return 1
	}
	return 1 + w.Amplitude*math.Sin(2*math.Pi*float64(t)/w.Period)
}

// Validate checks physical and numerical sanity.
func (p Params) Validate() error {
	if p.Tau <= 0.5 {
		return fmt.Errorf("lbm: tau %g must exceed 0.5 for stability", p.Tau)
	}
	if p.Tau > 5 {
		return fmt.Errorf("lbm: tau %g unreasonably large", p.Tau)
	}
	if p.UMax < 0 || p.UMax > 0.3 {
		return fmt.Errorf("lbm: inlet velocity %g outside [0, 0.3] lattice units", p.UMax)
	}
	for _, g := range p.Force {
		if g > 1e-2 || g < -1e-2 {
			return fmt.Errorf("lbm: body force %g too large for first-order forcing", g)
		}
	}
	if err := validateCollision(p); err != nil {
		return err
	}
	if p.Pulsatile.Period < 0 {
		return fmt.Errorf("lbm: pulsatile period %g negative", p.Pulsatile.Period)
	}
	if p.Pulsatile.Period > 0 {
		// Amplitudes above 1 reverse the inflow for part of the cycle, as
		// physiological flow does in diastole; 2 bounds the magnitude.
		if p.Pulsatile.Amplitude < 0 || p.Pulsatile.Amplitude > 2 {
			return fmt.Errorf("lbm: pulsatile amplitude %g outside [0, 2]", p.Pulsatile.Amplitude)
		}
		if peak := p.UMax * (1 + p.Pulsatile.Amplitude); peak > 0.3 {
			return fmt.Errorf("lbm: peak pulsatile velocity %g exceeds 0.3", peak)
		}
	}
	return nil
}

// Viscosity returns the kinematic viscosity in lattice units.
func (p Params) Viscosity() float64 { return (p.Tau - 0.5) / 3 }
