package lbm

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geometry"
)

func TestWriteVTKStructure(t *testing.T) {
	s := poiseuilleCase(t, 8, 4, 1e-5)
	s.Run(20)
	var buf bytes.Buffer
	if err := s.WriteVTK(&buf, "cylinder flow"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"DATASET STRUCTURED_POINTS",
		"SCALARS density double 1",
		"VECTORS velocity double",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VTK output missing %q", want)
		}
	}
	// One density line per site plus headers: count data lines.
	sites := s.Dom.Sites()
	lines := strings.Count(out, "\n")
	// 8 header-ish lines + sites densities + 1 vectors header + sites vectors.
	if lines < 2*sites {
		t.Errorf("VTK output has %d lines for %d sites", lines, sites)
	}
	// Fluid interior must carry nonzero density (solid rows are "0").
	if !strings.Contains(out, "1.0") && !strings.Contains(out, "0.99") {
		t.Error("no plausible density values found")
	}
}

func TestWriteProfileCSV(t *testing.T) {
	s := poiseuilleCase(t, 8, 4, 1e-5)
	s.Run(50)
	var buf bytes.Buffer
	if err := s.WriteProfileCSV(&buf, s.Dom.NX/2); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "y,z,ux,uy,uz,rho" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if len(lines) < 10 {
		t.Errorf("only %d profile rows", len(lines)-1)
	}
	if err := s.WriteProfileCSV(&buf, -1); err == nil {
		t.Error("want error for plane outside domain")
	}
	// A plane of pure solid must error: build a domain whose x=0 plane is
	// solid by slicing beyond... use a y/z margin trick: plane 0 of the
	// cylinder contains fluid, so instead check the error path with a
	// degenerate x beyond range only.
}

func TestCheckpointRoundTrip(t *testing.T) {
	s := poiseuilleCase(t, 10, 4, 1e-5)
	s.Run(37)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh solver over identical geometry restores to the same state.
	dom2, err := geometry.Cylinder(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSparse(dom2, Params{Tau: 0.9, PeriodicX: true, Force: [3]float64{1e-5, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.Steps() != 37 {
		t.Errorf("restored step counter %d, want 37", s2.Steps())
	}
	for si := 0; si < s.N(); si++ {
		if s.Cell(si) != s2.Cell(si) {
			t.Fatal("restored state differs")
		}
	}
	// Continued evolution must match bitwise.
	s.Run(10)
	s2.Run(10)
	for si := 0; si < s.N(); si++ {
		if s.Cell(si) != s2.Cell(si) {
			t.Fatal("post-restore trajectory diverges")
		}
	}
}

func TestRestoreRejectsMismatch(t *testing.T) {
	s := poiseuilleCase(t, 10, 4, 1e-5)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Different geometry.
	dom, err := geometry.Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewSparse(dom, Params{Tau: 0.9, PeriodicX: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("want error for mismatched geometry")
	}
	// Corrupt magic.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[0] ^= 0xFF
	if err := s.Restore(bytes.NewReader(bad)); err == nil {
		t.Error("want error for corrupt magic")
	}
	// Truncated stream.
	if err := s.Restore(bytes.NewReader(buf.Bytes()[:40])); err == nil {
		t.Error("want error for truncated checkpoint")
	}
}
