//lint:hot
package lbm

import "fmt"

// CollisionOp selects the collision operator.
type CollisionOp int

// Available collision operators.
const (
	// BGK is the single-relaxation-time operator the paper's HARVEY
	// configuration uses.
	BGK CollisionOp = iota
	// TRT is the two-relaxation-time operator: the antisymmetric moments
	// relax at a rate tied to tau through the "magic" parameter
	// Lambda = 1/4, which places the bounce-back wall exactly halfway
	// between nodes and improves accuracy and stability at low viscosity.
	TRT
)

// String names the operator.
func (c CollisionOp) String() string {
	if c == TRT {
		return "TRT"
	}
	return "BGK"
}

// trtMagic is the TRT "magic" combination Lambda = lambda_e * lambda_o
// fixing the wall location; 1/4 is the standard choice.
const trtMagic = 0.25

// CollideCell applies the configured collision operator plus first-order
// forcing to one cell, in place. It is THE collision arithmetic: the
// serial engine, the goroutine-parallel runner and the wall-force
// diagnostics all call it, which is what makes parallel runs bitwise
// equal to serial ones.
func CollideCell(cell *[NQ]float64, p Params, gx, gy, gz float64) {
	rho, ux, uy, uz := Moments(cell)
	var feq [NQ]float64
	Equilibrium(rho, ux, uy, uz, &feq)
	switch p.Collision {
	case TRT:
		omegaP := 1 / p.Tau
		// lambda_o from the magic relation: Lambda = (tau-1/2)(tauM-1/2).
		tauM := trtMagic/(p.Tau-0.5) + 0.5
		omegaM := 1 / tauM
		// Rest direction has no antisymmetric part.
		cell[0] -= omegaP * (cell[0] - feq[0])
		for q := 1; q < NQ; q++ {
			// The o >= NQ arm never fires (Opp is a permutation); it is
			// the bounds proof for the cell[o] accesses below.
			o := Opp[q]
			if o < q || o >= NQ {
				continue // each pair handled once
			}
			fp := 0.5 * (cell[q] + cell[o])
			fm := 0.5 * (cell[q] - cell[o])
			ep := 0.5 * (feq[q] + feq[o])
			em := 0.5 * (feq[q] - feq[o])
			dp := omegaP * (fp - ep)
			dm := omegaM * (fm - em)
			cell[q] -= dp + dm
			cell[o] -= dp - dm
		}
	default: // BGK
		omega := 1 / p.Tau
		for q := 0; q < NQ; q++ {
			cell[q] -= omega * (cell[q] - feq[q])
		}
	}
	//lint:ignore floateq exact zero skips the force term entirely; forces are configured, not computed
	if gx != 0 || gy != 0 || gz != 0 {
		for q := 0; q < NQ; q++ {
			cell[q] += 3 * W[q] * (float64(Cx[q])*gx + float64(Cy[q])*gy + float64(Cz[q])*gz)
		}
	}
}

// validateCollision extends Params.Validate for the operator choice.
func validateCollision(p Params) error {
	switch p.Collision {
	case BGK, TRT:
		return nil
	default:
		return fmt.Errorf("lbm: unknown collision operator %d", int(p.Collision))
	}
}
