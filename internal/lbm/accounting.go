package lbm

import "repro/internal/geometry"

// AccessModel quantifies memory accesses per fluid-point update for a
// kernel, the n_vectors * n_accesses * d_size counting of Eq. 9. The
// counts describe a production HARVEY-style kernel: wall-adjacent points
// store and move only their fluid-direction vectors, so they touch fewer
// bytes than bulk points (the reason the cerebral geometry performs best
// in Figure 3).
type AccessModel struct {
	DataSize  int // bytes per distribution value (8 for float64)
	IndexSize int // bytes per neighbor-table entry (0 for dense kernels)

	// ReadsPerVector and WritesPerVector count data accesses per stored
	// vector per timestep, averaged over the pattern's cycle (the AA
	// pattern alternates cheap and expensive steps).
	ReadsPerVector  float64
	WritesPerVector float64

	// IndexFraction is the fraction of timesteps on which the neighbor
	// index table is read (1 for AB, 0.5 for AA).
	IndexFraction float64

	// Efficiency scales how effectively the kernel uses memory bandwidth
	// (0 < Efficiency <= 1). Layout and loop structure change achieved
	// bandwidth without changing algorithmic bytes: on CPUs the AOS layout
	// streams better than rolled SOA, and unrolling recovers most of the
	// SOA penalty (Herschlag et al., and Figures 4/8 of the paper).
	// PointBytes folds it in as effective traffic.
	//lint:ignore unitsuffix dimensionless fraction; the comment mentions bytes only as context
	Efficiency float64
}

// HarveyAccess returns the access model of the sparse production engine:
// AB pattern, AOS layout, indirect addressing with 4-byte indices.
func HarveyAccess() AccessModel {
	return AccessModel{DataSize: 8, IndexSize: 4, ReadsPerVector: 1, WritesPerVector: 1, IndexFraction: 1, Efficiency: 1}
}

// ProxyAccess returns the access model for a proxy-app kernel variant.
// Dense kernels have no per-direction index table, but the AB pattern
// writes into a second array whose cache lines are read on store miss
// (write-allocate), counted as an extra read per vector; the AA pattern's
// single array avoids that, which is the paper's explanation for AA's
// higher throughput.
//
// The efficiency factors encode the layout findings of Figures 4 and 8:
// AOS streams best for the AB pattern on CPUs; rolled SOA pays loop and
// TLB overheads that cancel AA's traffic advantage (the paper observed the
// AA improvement "only for the unrolled kernels"); unrolling recovers most
// of the SOA penalty and makes SOA-AA the fastest variant.
func ProxyAccess(cfg KernelConfig) AccessModel {
	m := AccessModel{DataSize: 8, IndexSize: 0, ReadsPerVector: 1, WritesPerVector: 1}
	if cfg.Pattern == AB {
		m.ReadsPerVector = 2 // source read + destination write-allocate
		m.IndexFraction = 1
	} else {
		m.IndexFraction = 0.5
	}
	switch {
	case cfg.Layout == AOS && cfg.Pattern == AB:
		m.Efficiency = 1.0
	case cfg.Layout == AOS && cfg.Pattern == AA:
		m.Efficiency = 0.70
	case cfg.Unrolled && cfg.Pattern == AB:
		m.Efficiency = 0.92
	case cfg.Unrolled && cfg.Pattern == AA:
		m.Efficiency = 0.90
	case cfg.Pattern == AB: // rolled SOA
		m.Efficiency = 0.80
	default: // rolled SOA, AA
		m.Efficiency = 0.54
	}
	return m
}

// PointBytes returns the effective bytes accessed per timestep to update
// one fluid point that stores the given number of vectors (fluid links +
// rest), including the kernel's bandwidth-efficiency penalty.
func (m AccessModel) PointBytes(vectors int) float64 {
	v := float64(vectors)
	raw := v*(m.ReadsPerVector+m.WritesPerVector)*float64(m.DataSize) +
		v*m.IndexFraction*float64(m.IndexSize)
	eff := m.Efficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	return raw / eff
}

// CommBytesPerLink is the data communicated per crossing lattice link in a
// halo exchange: one float64 distribution value.
const CommBytesPerLink = 8

// Vectors returns the number of stored vectors at local site si of the
// sparse engine: the rest vector plus one per fluid link.
func (s *Sparse) Vectors(si int) int {
	v := 1 // rest
	for q := 1; q < NQ; q++ {
		if s.neigh[si*NQ+q] != solidNeighbor {
			v++
		}
	}
	return v
}

// Neighbor exposes the local index of the site one lattice link along q
// from si, or -1 when that link leaves the fluid. The decomposition
// package uses this to count halo crossings exactly.
func (s *Sparse) Neighbor(si, q int) int { return int(s.neigh[si*NQ+q]) }

// GlobalIndex returns the global linear index of local site si.
func (s *Sparse) GlobalIndex(si int) int { return int(s.gidx[si]) }

// BytesSerial returns the total bytes accessed per timestep by a serial
// run under access model m — the n_bytes-serial input of Eq. 10.
func (s *Sparse) BytesSerial(m AccessModel) float64 {
	var total float64
	for si := 0; si < s.n; si++ {
		total += m.PointBytes(s.Vectors(si))
	}
	return total
}

// CountTypes tallies fluid sites per classification.
func (s *Sparse) CountTypes() map[geometry.PointType]int {
	counts := make(map[geometry.PointType]int, 4)
	for _, t := range s.types {
		counts[t]++
	}
	return counts
}
