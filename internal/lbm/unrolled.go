//lint:hot
package lbm

// Hand-unrolled SOA kernels. The paper's proxy-app figures distinguish SOA
// kernels "with kernel internal for loops unrolled" from rolled ones
// (Figures 4 and 8); unrolling removes the per-direction loop and index
// table from the hot path. The direction constants below follow the
// package's velocity table:
//
//	q : ( cx, cy, cz)        opposite
//	0 : (  0,  0,  0)        0
//	1 : (  1,  0,  0)        2
//	3 : (  0,  1,  0)        4
//	5 : (  0,  0,  1)        6
//	7 : (  1,  1,  0)        8
//	9 : (  1, -1,  0)        10
//	11: (  1,  0,  1)        12
//	13: (  1,  0, -1)        14
//	15: (  0,  1,  1)        16
//	17: (  0,  1, -1)        18
//
// The kernels are also shaped for bounds-check elimination (gated by
// cmd/lint -perfbudget): every plane is re-sliced to the same length
// value n, the site index is guarded once per node by an unsigned
// compare against n, and neighbor indices are guarded by the fluid-mask
// test itself, so the per-node loop bodies carry no bounds checks.

// plane returns the direction-q view of the SOA array a, re-sliced so
// its length is the same value n the kernels guard site indices against
// — that shared length is what lets the prover drop the checks.
func plane(a []float64, q, n int) []float64 {
	return a[q*n:][:n:n]
}

// collideUnrolled performs BGK relaxation with first-order forcing on the
// gathered cell values, fully unrolled. It returns the post-collision
// values through the same variables by value semantics of the array.
func (p *Proxy) collideUnrolled(c *[NQ]float64) {
	omega := 1 / p.Params.Tau
	fx, fy, fz := p.Params.Force[0], p.Params.Force[1], p.Params.Force[2]

	rho := c[0] + c[1] + c[2] + c[3] + c[4] + c[5] + c[6] + c[7] + c[8] + c[9] +
		c[10] + c[11] + c[12] + c[13] + c[14] + c[15] + c[16] + c[17] + c[18]
	// Divide rather than multiply by a reciprocal so results match the
	// rolled kernels bitwise.
	ux := (c[1] - c[2] + c[7] - c[8] + c[9] - c[10] + c[11] - c[12] + c[13] - c[14]) / rho
	uy := (c[3] - c[4] + c[7] - c[8] - c[9] + c[10] + c[15] - c[16] + c[17] - c[18]) / rho
	uz := (c[5] - c[6] + c[11] - c[12] - c[13] + c[14] + c[15] - c[16] - c[17] + c[18]) / rho
	usq := 1.5 * (ux*ux + uy*uy + uz*uz)

	const w0, wf, we = 1.0 / 3, 1.0 / 18, 1.0 / 36
	r0, rf, re := w0*rho, wf*rho, we*rho

	// Rest.
	c[0] -= omega * (c[0] - r0*(1-usq))

	// Face pairs: (1,2)=±x, (3,4)=±y, (5,6)=±z.
	cu := 3 * ux
	c[1] -= omega * (c[1] - rf*(1+cu+0.5*cu*cu-usq))
	c[2] -= omega * (c[2] - rf*(1-cu+0.5*cu*cu-usq))
	cu = 3 * uy
	c[3] -= omega * (c[3] - rf*(1+cu+0.5*cu*cu-usq))
	c[4] -= omega * (c[4] - rf*(1-cu+0.5*cu*cu-usq))
	cu = 3 * uz
	c[5] -= omega * (c[5] - rf*(1+cu+0.5*cu*cu-usq))
	c[6] -= omega * (c[6] - rf*(1-cu+0.5*cu*cu-usq))

	// Edge pairs.
	cu = 3 * (ux + uy)
	c[7] -= omega * (c[7] - re*(1+cu+0.5*cu*cu-usq))
	c[8] -= omega * (c[8] - re*(1-cu+0.5*cu*cu-usq))
	cu = 3 * (ux - uy)
	c[9] -= omega * (c[9] - re*(1+cu+0.5*cu*cu-usq))
	c[10] -= omega * (c[10] - re*(1-cu+0.5*cu*cu-usq))
	cu = 3 * (ux + uz)
	c[11] -= omega * (c[11] - re*(1+cu+0.5*cu*cu-usq))
	c[12] -= omega * (c[12] - re*(1-cu+0.5*cu*cu-usq))
	cu = 3 * (ux - uz)
	c[13] -= omega * (c[13] - re*(1+cu+0.5*cu*cu-usq))
	c[14] -= omega * (c[14] - re*(1-cu+0.5*cu*cu-usq))
	cu = 3 * (uy + uz)
	c[15] -= omega * (c[15] - re*(1+cu+0.5*cu*cu-usq))
	c[16] -= omega * (c[16] - re*(1-cu+0.5*cu*cu-usq))
	cu = 3 * (uy - uz)
	c[17] -= omega * (c[17] - re*(1+cu+0.5*cu*cu-usq))
	c[18] -= omega * (c[18] - re*(1-cu+0.5*cu*cu-usq))

	if fx != 0 || fy != 0 || fz != 0 {
		c[1] += 3 * wf * fx
		c[2] -= 3 * wf * fx
		c[3] += 3 * wf * fy
		c[4] -= 3 * wf * fy
		c[5] += 3 * wf * fz
		c[6] -= 3 * wf * fz
		c[7] += 3 * we * (fx + fy)
		c[8] -= 3 * we * (fx + fy)
		c[9] += 3 * we * (fx - fy)
		c[10] -= 3 * we * (fx - fy)
		c[11] += 3 * we * (fx + fz)
		c[12] -= 3 * we * (fx + fz)
		c[13] += 3 * we * (fx - fz)
		c[14] -= 3 * we * (fx - fz)
		c[15] += 3 * we * (fy + fz)
		c[16] -= 3 * we * (fy + fz)
		c[17] += 3 * we * (fy - fz)
		c[18] -= 3 * we * (fy - fz)
	}
}

// stepABUnrolledRange is the AB kernel with the direction loop unrolled:
// pull-stream + collide from f into g using explicit row arithmetic.
func (p *Proxy) stepABUnrolledRange(zLo, zHi int) {
	n := p.nsites
	nx, ny := p.nx, p.ny
	fluid := p.fluid[:n]
	xm1, xp1 := p.xm1[:nx], p.xp1[:nx]
	fa, ga := p.f, p.g
	f0, f1, f2 := plane(fa, 0, n), plane(fa, 1, n), plane(fa, 2, n)
	f3, f4, f5 := plane(fa, 3, n), plane(fa, 4, n), plane(fa, 5, n)
	f6, f7, f8 := plane(fa, 6, n), plane(fa, 7, n), plane(fa, 8, n)
	f9, f10, f11 := plane(fa, 9, n), plane(fa, 10, n), plane(fa, 11, n)
	f12, f13, f14 := plane(fa, 12, n), plane(fa, 13, n), plane(fa, 14, n)
	f15, f16, f17 := plane(fa, 15, n), plane(fa, 16, n), plane(fa, 17, n)
	f18 := plane(fa, 18, n)
	g0, g1, g2 := plane(ga, 0, n), plane(ga, 1, n), plane(ga, 2, n)
	g3, g4, g5 := plane(ga, 3, n), plane(ga, 4, n), plane(ga, 5, n)
	g6, g7, g8 := plane(ga, 6, n), plane(ga, 7, n), plane(ga, 8, n)
	g9, g10, g11 := plane(ga, 9, n), plane(ga, 10, n), plane(ga, 11, n)
	g12, g13, g14 := plane(ga, 12, n), plane(ga, 13, n), plane(ga, 14, n)
	g15, g16, g17 := plane(ga, 15, n), plane(ga, 16, n), plane(ga, 17, n)
	g18 := plane(ga, 18, n)
	var c [NQ]float64
	for z := zLo; z < zHi; z++ {
		for y := 1; y < ny-1; y++ {
			row := (z*ny + y) * nx
			rowYM := (z*ny + y - 1) * nx
			rowYP := (z*ny + y + 1) * nx
			rowZM := ((z-1)*ny + y) * nx
			rowZP := ((z+1)*ny + y) * nx
			rowYMZM := ((z-1)*ny + y - 1) * nx
			rowYMZP := ((z+1)*ny + y - 1) * nx
			rowYPZM := ((z-1)*ny + y + 1) * nx
			rowYPZP := ((z+1)*ny + y + 1) * nx
			for x := 0; x < nx; x++ {
				site := row + x
				if uint(site) >= uint(n) || !fluid[site] {
					continue
				}
				xm, xp := xm1[x], xp1[x]

				c[0] = f0[site]
				pull(&c, f1, f2, fluid, 1, row+xm, site)
				pull(&c, f2, f1, fluid, 2, row+xp, site)
				pull(&c, f3, f4, fluid, 3, rowYM+x, site)
				pull(&c, f4, f3, fluid, 4, rowYP+x, site)
				pull(&c, f5, f6, fluid, 5, rowZM+x, site)
				pull(&c, f6, f5, fluid, 6, rowZP+x, site)
				pull(&c, f7, f8, fluid, 7, rowYM+xm, site)
				pull(&c, f8, f7, fluid, 8, rowYP+xp, site)
				pull(&c, f9, f10, fluid, 9, rowYP+xm, site)
				pull(&c, f10, f9, fluid, 10, rowYM+xp, site)
				pull(&c, f11, f12, fluid, 11, rowZM+xm, site)
				pull(&c, f12, f11, fluid, 12, rowZP+xp, site)
				pull(&c, f13, f14, fluid, 13, rowZP+xm, site)
				pull(&c, f14, f13, fluid, 14, rowZM+xp, site)
				pull(&c, f15, f16, fluid, 15, rowYMZM+x, site)
				pull(&c, f16, f15, fluid, 16, rowYPZP+x, site)
				pull(&c, f17, f18, fluid, 17, rowYMZP+x, site)
				pull(&c, f18, f17, fluid, 18, rowYPZM+x, site)

				p.collideUnrolled(&c)

				g0[site] = c[0]
				g1[site] = c[1]
				g2[site] = c[2]
				g3[site] = c[3]
				g4[site] = c[4]
				g5[site] = c[5]
				g6[site] = c[6]
				g7[site] = c[7]
				g8[site] = c[8]
				g9[site] = c[9]
				g10[site] = c[10]
				g11[site] = c[11]
				g12[site] = c[12]
				g13[site] = c[13]
				g14[site] = c[14]
				g15[site] = c[15]
				g16[site] = c[16]
				g17[site] = c[17]
				g18[site] = c[18]
			}
		}
	}
}

// pull loads direction q from the upstream site into c, or bounces back
// from the local cell's opposite slot when the upstream site is solid.
// fq is the plane of q, fopp the plane of q's opposite; the unsigned
// compare folds into the fluid test and doubles as the bounds proof.
func pull(c *[NQ]float64, fq, fopp []float64, fluid []bool, q, up, site int) {
	if uint(up) < uint(len(fluid)) && fluid[up] {
		c[q] = fq[up]
	} else {
		c[q] = fopp[site]
	}
}

// stepAAUnrolledRange is the AA kernel unrolled. Even steps are in-place
// collide-and-swap; odd steps gather from neighbors' opposite slots and
// scatter to neighbors' normal slots, exactly as the rolled stepAARange.
func (p *Proxy) stepAAUnrolledRange(zLo, zHi int) {
	n := p.nsites
	nx, ny := p.nx, p.ny
	fluid := p.fluid[:n]
	xm1, xp1 := p.xm1[:nx], p.xp1[:nx]
	fa := p.f
	f0, f1, f2 := plane(fa, 0, n), plane(fa, 1, n), plane(fa, 2, n)
	f3, f4, f5 := plane(fa, 3, n), plane(fa, 4, n), plane(fa, 5, n)
	f6, f7, f8 := plane(fa, 6, n), plane(fa, 7, n), plane(fa, 8, n)
	f9, f10, f11 := plane(fa, 9, n), plane(fa, 10, n), plane(fa, 11, n)
	f12, f13, f14 := plane(fa, 12, n), plane(fa, 13, n), plane(fa, 14, n)
	f15, f16, f17 := plane(fa, 15, n), plane(fa, 16, n), plane(fa, 17, n)
	f18 := plane(fa, 18, n)
	even := p.steps%2 == 0
	var c [NQ]float64
	for z := zLo; z < zHi; z++ {
		for y := 1; y < ny-1; y++ {
			row := (z*ny + y) * nx
			rowYM := (z*ny + y - 1) * nx
			rowYP := (z*ny + y + 1) * nx
			rowZM := ((z-1)*ny + y) * nx
			rowZP := ((z+1)*ny + y) * nx
			rowYMZM := ((z-1)*ny + y - 1) * nx
			rowYMZP := ((z+1)*ny + y - 1) * nx
			rowYPZM := ((z-1)*ny + y + 1) * nx
			rowYPZP := ((z+1)*ny + y + 1) * nx
			for x := 0; x < nx; x++ {
				site := row + x
				if uint(site) >= uint(n) || !fluid[site] {
					continue
				}
				if even {
					c[0] = f0[site]
					c[1] = f1[site]
					c[2] = f2[site]
					c[3] = f3[site]
					c[4] = f4[site]
					c[5] = f5[site]
					c[6] = f6[site]
					c[7] = f7[site]
					c[8] = f8[site]
					c[9] = f9[site]
					c[10] = f10[site]
					c[11] = f11[site]
					c[12] = f12[site]
					c[13] = f13[site]
					c[14] = f14[site]
					c[15] = f15[site]
					c[16] = f16[site]
					c[17] = f17[site]
					c[18] = f18[site]
					p.collideUnrolled(&c)
					f0[site] = c[0]
					f2[site] = c[1]
					f1[site] = c[2]
					f4[site] = c[3]
					f3[site] = c[4]
					f6[site] = c[5]
					f5[site] = c[6]
					f8[site] = c[7]
					f7[site] = c[8]
					f10[site] = c[9]
					f9[site] = c[10]
					f12[site] = c[11]
					f11[site] = c[12]
					f14[site] = c[13]
					f13[site] = c[14]
					f16[site] = c[15]
					f15[site] = c[16]
					f18[site] = c[17]
					f17[site] = c[18]
					continue
				}
				xm, xp := xm1[x], xp1[x]
				// Gather: f*_q(x-c_q) lives in slot opp(q) upstream, or
				// slot q locally after an even-step bounce.
				c[0] = f0[site]
				aaGather(&c, f2, f1, fluid, 1, row+xm, site)
				aaGather(&c, f1, f2, fluid, 2, row+xp, site)
				aaGather(&c, f4, f3, fluid, 3, rowYM+x, site)
				aaGather(&c, f3, f4, fluid, 4, rowYP+x, site)
				aaGather(&c, f6, f5, fluid, 5, rowZM+x, site)
				aaGather(&c, f5, f6, fluid, 6, rowZP+x, site)
				aaGather(&c, f8, f7, fluid, 7, rowYM+xm, site)
				aaGather(&c, f7, f8, fluid, 8, rowYP+xp, site)
				aaGather(&c, f10, f9, fluid, 9, rowYP+xm, site)
				aaGather(&c, f9, f10, fluid, 10, rowYM+xp, site)
				aaGather(&c, f12, f11, fluid, 11, rowZM+xm, site)
				aaGather(&c, f11, f12, fluid, 12, rowZP+xp, site)
				aaGather(&c, f14, f13, fluid, 13, rowZP+xm, site)
				aaGather(&c, f13, f14, fluid, 14, rowZM+xp, site)
				aaGather(&c, f16, f15, fluid, 15, rowYMZM+x, site)
				aaGather(&c, f15, f16, fluid, 16, rowYPZP+x, site)
				aaGather(&c, f18, f17, fluid, 17, rowYMZP+x, site)
				aaGather(&c, f17, f18, fluid, 18, rowYPZM+x, site)

				p.collideUnrolled(&c)

				// Scatter downstream (push), bouncing into the local
				// opposite slot at solid links.
				f0[site] = c[0]
				aaScatter(&c, f1, f2, fluid, 1, row+xp, site)
				aaScatter(&c, f2, f1, fluid, 2, row+xm, site)
				aaScatter(&c, f3, f4, fluid, 3, rowYP+x, site)
				aaScatter(&c, f4, f3, fluid, 4, rowYM+x, site)
				aaScatter(&c, f5, f6, fluid, 5, rowZP+x, site)
				aaScatter(&c, f6, f5, fluid, 6, rowZM+x, site)
				aaScatter(&c, f7, f8, fluid, 7, rowYP+xp, site)
				aaScatter(&c, f8, f7, fluid, 8, rowYM+xm, site)
				aaScatter(&c, f9, f10, fluid, 9, rowYM+xp, site)
				aaScatter(&c, f10, f9, fluid, 10, rowYP+xm, site)
				aaScatter(&c, f11, f12, fluid, 11, rowZP+xp, site)
				aaScatter(&c, f12, f11, fluid, 12, rowZM+xm, site)
				aaScatter(&c, f13, f14, fluid, 13, rowZM+xp, site)
				aaScatter(&c, f14, f13, fluid, 14, rowZP+xm, site)
				aaScatter(&c, f15, f16, fluid, 15, rowYPZP+x, site)
				aaScatter(&c, f16, f15, fluid, 16, rowYMZM+x, site)
				aaScatter(&c, f17, f18, fluid, 17, rowYPZM+x, site)
				aaScatter(&c, f18, f17, fluid, 18, rowYMZP+x, site)
			}
		}
	}
}

// aaGather reads direction q during an AA odd step: from the opposite
// plane fopp upstream, or the local slot in q's own plane fq after an
// even-step bounce. The unsigned compare folds into the fluid test and
// doubles as the bounds proof.
func aaGather(c *[NQ]float64, fopp, fq []float64, fluid []bool, q, up, site int) {
	if uint(up) < uint(len(fluid)) && fluid[up] {
		c[q] = fopp[up]
	} else {
		c[q] = fq[site]
	}
}

// aaScatter writes direction q during an AA odd step: to q's own plane
// fq downstream, or bounced into the opposite plane fopp locally.
func aaScatter(c *[NQ]float64, fq, fopp []float64, fluid []bool, q, down, site int) {
	if uint(down) < uint(len(fluid)) && fluid[down] {
		fq[down] = c[q]
	} else {
		fopp[site] = c[q]
	}
}
