//lint:hot
package lbm

// Hand-unrolled SOA kernels. The paper's proxy-app figures distinguish SOA
// kernels "with kernel internal for loops unrolled" from rolled ones
// (Figures 4 and 8); unrolling removes the per-direction loop and index
// table from the hot path. The direction constants below follow the
// package's velocity table:
//
//	q : ( cx, cy, cz)        opposite
//	0 : (  0,  0,  0)        0
//	1 : (  1,  0,  0)        2
//	3 : (  0,  1,  0)        4
//	5 : (  0,  0,  1)        6
//	7 : (  1,  1,  0)        8
//	9 : (  1, -1,  0)        10
//	11: (  1,  0,  1)        12
//	13: (  1,  0, -1)        14
//	15: (  0,  1,  1)        16
//	17: (  0,  1, -1)        18

// planes returns per-direction slice views of the SOA array a.
func (p *Proxy) planes(a []float64) [NQ][]float64 {
	var fs [NQ][]float64
	for q := 0; q < NQ; q++ {
		fs[q] = a[q*p.nsites : (q+1)*p.nsites]
	}
	return fs
}

// collideUnrolled performs BGK relaxation with first-order forcing on the
// gathered cell values, fully unrolled. It returns the post-collision
// values through the same variables by value semantics of the array.
func (p *Proxy) collideUnrolled(c *[NQ]float64) {
	omega := 1 / p.Params.Tau
	fx, fy, fz := p.Params.Force[0], p.Params.Force[1], p.Params.Force[2]

	rho := c[0] + c[1] + c[2] + c[3] + c[4] + c[5] + c[6] + c[7] + c[8] + c[9] +
		c[10] + c[11] + c[12] + c[13] + c[14] + c[15] + c[16] + c[17] + c[18]
	// Divide rather than multiply by a reciprocal so results match the
	// rolled kernels bitwise.
	ux := (c[1] - c[2] + c[7] - c[8] + c[9] - c[10] + c[11] - c[12] + c[13] - c[14]) / rho
	uy := (c[3] - c[4] + c[7] - c[8] - c[9] + c[10] + c[15] - c[16] + c[17] - c[18]) / rho
	uz := (c[5] - c[6] + c[11] - c[12] - c[13] + c[14] + c[15] - c[16] - c[17] + c[18]) / rho
	usq := 1.5 * (ux*ux + uy*uy + uz*uz)

	const w0, wf, we = 1.0 / 3, 1.0 / 18, 1.0 / 36
	r0, rf, re := w0*rho, wf*rho, we*rho

	// Rest.
	c[0] -= omega * (c[0] - r0*(1-usq))

	// Face pairs: (1,2)=±x, (3,4)=±y, (5,6)=±z.
	cu := 3 * ux
	c[1] -= omega * (c[1] - rf*(1+cu+0.5*cu*cu-usq))
	c[2] -= omega * (c[2] - rf*(1-cu+0.5*cu*cu-usq))
	cu = 3 * uy
	c[3] -= omega * (c[3] - rf*(1+cu+0.5*cu*cu-usq))
	c[4] -= omega * (c[4] - rf*(1-cu+0.5*cu*cu-usq))
	cu = 3 * uz
	c[5] -= omega * (c[5] - rf*(1+cu+0.5*cu*cu-usq))
	c[6] -= omega * (c[6] - rf*(1-cu+0.5*cu*cu-usq))

	// Edge pairs.
	cu = 3 * (ux + uy)
	c[7] -= omega * (c[7] - re*(1+cu+0.5*cu*cu-usq))
	c[8] -= omega * (c[8] - re*(1-cu+0.5*cu*cu-usq))
	cu = 3 * (ux - uy)
	c[9] -= omega * (c[9] - re*(1+cu+0.5*cu*cu-usq))
	c[10] -= omega * (c[10] - re*(1-cu+0.5*cu*cu-usq))
	cu = 3 * (ux + uz)
	c[11] -= omega * (c[11] - re*(1+cu+0.5*cu*cu-usq))
	c[12] -= omega * (c[12] - re*(1-cu+0.5*cu*cu-usq))
	cu = 3 * (ux - uz)
	c[13] -= omega * (c[13] - re*(1+cu+0.5*cu*cu-usq))
	c[14] -= omega * (c[14] - re*(1-cu+0.5*cu*cu-usq))
	cu = 3 * (uy + uz)
	c[15] -= omega * (c[15] - re*(1+cu+0.5*cu*cu-usq))
	c[16] -= omega * (c[16] - re*(1-cu+0.5*cu*cu-usq))
	cu = 3 * (uy - uz)
	c[17] -= omega * (c[17] - re*(1+cu+0.5*cu*cu-usq))
	c[18] -= omega * (c[18] - re*(1-cu+0.5*cu*cu-usq))

	if fx != 0 || fy != 0 || fz != 0 {
		c[1] += 3 * wf * fx
		c[2] -= 3 * wf * fx
		c[3] += 3 * wf * fy
		c[4] -= 3 * wf * fy
		c[5] += 3 * wf * fz
		c[6] -= 3 * wf * fz
		c[7] += 3 * we * (fx + fy)
		c[8] -= 3 * we * (fx + fy)
		c[9] += 3 * we * (fx - fy)
		c[10] -= 3 * we * (fx - fy)
		c[11] += 3 * we * (fx + fz)
		c[12] -= 3 * we * (fx + fz)
		c[13] += 3 * we * (fx - fz)
		c[14] -= 3 * we * (fx - fz)
		c[15] += 3 * we * (fy + fz)
		c[16] -= 3 * we * (fy + fz)
		c[17] += 3 * we * (fy - fz)
		c[18] -= 3 * we * (fy - fz)
	}
}

// stepABUnrolledSOA is the AB kernel with the direction loop unrolled:
// pull-stream + collide from f into g using explicit row arithmetic.
func (p *Proxy) stepABUnrolledSOA() {
	p.zSlabs(p.stepABUnrolledRange)
	p.f, p.g = p.g, p.f
}

func (p *Proxy) stepABUnrolledRange(zLo, zHi int) {
	fs := p.planes(p.f)
	gs := p.planes(p.g)
	nx, ny := p.nx, p.ny
	var c [NQ]float64
	for z := zLo; z < zHi; z++ {
		for y := 1; y < ny-1; y++ {
			row := (z*ny + y) * nx
			rowYM := (z*ny + y - 1) * nx
			rowYP := (z*ny + y + 1) * nx
			rowZM := ((z-1)*ny + y) * nx
			rowZP := ((z+1)*ny + y) * nx
			rowYMZM := ((z-1)*ny + y - 1) * nx
			rowYMZP := ((z+1)*ny + y - 1) * nx
			rowYPZM := ((z-1)*ny + y + 1) * nx
			rowYPZP := ((z+1)*ny + y + 1) * nx
			for x := 0; x < nx; x++ {
				site := row + x
				if !p.fluid[site] {
					continue
				}
				xm, xp := p.xm1[x], p.xp1[x]

				c[0] = fs[0][site]
				pull(&c, fs[:], p.fluid, 1, row+xm, site)
				pull(&c, fs[:], p.fluid, 2, row+xp, site)
				pull(&c, fs[:], p.fluid, 3, rowYM+x, site)
				pull(&c, fs[:], p.fluid, 4, rowYP+x, site)
				pull(&c, fs[:], p.fluid, 5, rowZM+x, site)
				pull(&c, fs[:], p.fluid, 6, rowZP+x, site)
				pull(&c, fs[:], p.fluid, 7, rowYM+xm, site)
				pull(&c, fs[:], p.fluid, 8, rowYP+xp, site)
				pull(&c, fs[:], p.fluid, 9, rowYP+xm, site)
				pull(&c, fs[:], p.fluid, 10, rowYM+xp, site)
				pull(&c, fs[:], p.fluid, 11, rowZM+xm, site)
				pull(&c, fs[:], p.fluid, 12, rowZP+xp, site)
				pull(&c, fs[:], p.fluid, 13, rowZP+xm, site)
				pull(&c, fs[:], p.fluid, 14, rowZM+xp, site)
				pull(&c, fs[:], p.fluid, 15, rowYMZM+x, site)
				pull(&c, fs[:], p.fluid, 16, rowYPZP+x, site)
				pull(&c, fs[:], p.fluid, 17, rowYMZP+x, site)
				pull(&c, fs[:], p.fluid, 18, rowYPZM+x, site)

				p.collideUnrolled(&c)

				gs[0][site] = c[0]
				gs[1][site] = c[1]
				gs[2][site] = c[2]
				gs[3][site] = c[3]
				gs[4][site] = c[4]
				gs[5][site] = c[5]
				gs[6][site] = c[6]
				gs[7][site] = c[7]
				gs[8][site] = c[8]
				gs[9][site] = c[9]
				gs[10][site] = c[10]
				gs[11][site] = c[11]
				gs[12][site] = c[12]
				gs[13][site] = c[13]
				gs[14][site] = c[14]
				gs[15][site] = c[15]
				gs[16][site] = c[16]
				gs[17][site] = c[17]
				gs[18][site] = c[18]
			}
		}
	}
}

// pull loads direction q from the upstream site, or bounces back from the
// local cell's opposite slot when the upstream site is solid.
func pull(c *[NQ]float64, fs [][]float64, fluid []bool, q, up, site int) {
	if fluid[up] {
		c[q] = fs[q][up]
	} else {
		c[q] = fs[Opp[q]][site]
	}
}

// stepAAUnrolledSOA is the AA kernel unrolled. Even steps are in-place
// collide-and-swap; odd steps gather from neighbors' opposite slots and
// scatter to neighbors' normal slots, exactly as the rolled stepAA.
func (p *Proxy) stepAAUnrolledSOA() {
	p.zSlabs(p.stepAAUnrolledRange)
}

func (p *Proxy) stepAAUnrolledRange(zLo, zHi int) {
	fs := p.planes(p.f)
	nx, ny := p.nx, p.ny
	even := p.steps%2 == 0
	var c [NQ]float64
	for z := zLo; z < zHi; z++ {
		for y := 1; y < ny-1; y++ {
			row := (z*ny + y) * nx
			rowYM := (z*ny + y - 1) * nx
			rowYP := (z*ny + y + 1) * nx
			rowZM := ((z-1)*ny + y) * nx
			rowZP := ((z+1)*ny + y) * nx
			rowYMZM := ((z-1)*ny + y - 1) * nx
			rowYMZP := ((z+1)*ny + y - 1) * nx
			rowYPZM := ((z-1)*ny + y + 1) * nx
			rowYPZP := ((z+1)*ny + y + 1) * nx
			for x := 0; x < nx; x++ {
				site := row + x
				if !p.fluid[site] {
					continue
				}
				if even {
					c[0] = fs[0][site]
					c[1] = fs[1][site]
					c[2] = fs[2][site]
					c[3] = fs[3][site]
					c[4] = fs[4][site]
					c[5] = fs[5][site]
					c[6] = fs[6][site]
					c[7] = fs[7][site]
					c[8] = fs[8][site]
					c[9] = fs[9][site]
					c[10] = fs[10][site]
					c[11] = fs[11][site]
					c[12] = fs[12][site]
					c[13] = fs[13][site]
					c[14] = fs[14][site]
					c[15] = fs[15][site]
					c[16] = fs[16][site]
					c[17] = fs[17][site]
					c[18] = fs[18][site]
					p.collideUnrolled(&c)
					fs[0][site] = c[0]
					fs[2][site] = c[1]
					fs[1][site] = c[2]
					fs[4][site] = c[3]
					fs[3][site] = c[4]
					fs[6][site] = c[5]
					fs[5][site] = c[6]
					fs[8][site] = c[7]
					fs[7][site] = c[8]
					fs[10][site] = c[9]
					fs[9][site] = c[10]
					fs[12][site] = c[11]
					fs[11][site] = c[12]
					fs[14][site] = c[13]
					fs[13][site] = c[14]
					fs[16][site] = c[15]
					fs[15][site] = c[16]
					fs[18][site] = c[17]
					fs[17][site] = c[18]
					continue
				}
				xm, xp := p.xm1[x], p.xp1[x]
				// Gather: f*_q(x-c_q) lives in slot opp(q) upstream, or
				// slot q locally after an even-step bounce.
				c[0] = fs[0][site]
				aaGather(&c, fs[:], p.fluid, 1, row+xm, site)
				aaGather(&c, fs[:], p.fluid, 2, row+xp, site)
				aaGather(&c, fs[:], p.fluid, 3, rowYM+x, site)
				aaGather(&c, fs[:], p.fluid, 4, rowYP+x, site)
				aaGather(&c, fs[:], p.fluid, 5, rowZM+x, site)
				aaGather(&c, fs[:], p.fluid, 6, rowZP+x, site)
				aaGather(&c, fs[:], p.fluid, 7, rowYM+xm, site)
				aaGather(&c, fs[:], p.fluid, 8, rowYP+xp, site)
				aaGather(&c, fs[:], p.fluid, 9, rowYP+xm, site)
				aaGather(&c, fs[:], p.fluid, 10, rowYM+xp, site)
				aaGather(&c, fs[:], p.fluid, 11, rowZM+xm, site)
				aaGather(&c, fs[:], p.fluid, 12, rowZP+xp, site)
				aaGather(&c, fs[:], p.fluid, 13, rowZP+xm, site)
				aaGather(&c, fs[:], p.fluid, 14, rowZM+xp, site)
				aaGather(&c, fs[:], p.fluid, 15, rowYMZM+x, site)
				aaGather(&c, fs[:], p.fluid, 16, rowYPZP+x, site)
				aaGather(&c, fs[:], p.fluid, 17, rowYMZP+x, site)
				aaGather(&c, fs[:], p.fluid, 18, rowYPZM+x, site)

				p.collideUnrolled(&c)

				// Scatter downstream (push), bouncing into the local
				// opposite slot at solid links.
				fs[0][site] = c[0]
				aaScatter(&c, fs[:], p.fluid, 1, row+xp, site)
				aaScatter(&c, fs[:], p.fluid, 2, row+xm, site)
				aaScatter(&c, fs[:], p.fluid, 3, rowYP+x, site)
				aaScatter(&c, fs[:], p.fluid, 4, rowYM+x, site)
				aaScatter(&c, fs[:], p.fluid, 5, rowZP+x, site)
				aaScatter(&c, fs[:], p.fluid, 6, rowZM+x, site)
				aaScatter(&c, fs[:], p.fluid, 7, rowYP+xp, site)
				aaScatter(&c, fs[:], p.fluid, 8, rowYM+xm, site)
				aaScatter(&c, fs[:], p.fluid, 9, rowYM+xp, site)
				aaScatter(&c, fs[:], p.fluid, 10, rowYP+xm, site)
				aaScatter(&c, fs[:], p.fluid, 11, rowZP+xp, site)
				aaScatter(&c, fs[:], p.fluid, 12, rowZM+xm, site)
				aaScatter(&c, fs[:], p.fluid, 13, rowZM+xp, site)
				aaScatter(&c, fs[:], p.fluid, 14, rowZP+xm, site)
				aaScatter(&c, fs[:], p.fluid, 15, rowYPZP+x, site)
				aaScatter(&c, fs[:], p.fluid, 16, rowYMZM+x, site)
				aaScatter(&c, fs[:], p.fluid, 17, rowYPZM+x, site)
				aaScatter(&c, fs[:], p.fluid, 18, rowYMZP+x, site)
			}
		}
	}
}

// aaGather reads direction q during an AA odd step.
func aaGather(c *[NQ]float64, fs [][]float64, fluid []bool, q, up, site int) {
	if fluid[up] {
		c[q] = fs[Opp[q]][up]
	} else {
		c[q] = fs[q][site]
	}
}

// aaScatter writes direction q during an AA odd step.
func aaScatter(c *[NQ]float64, fs [][]float64, fluid []bool, q, down, site int) {
	if fluid[down] {
		fs[q][down] = c[q]
	} else {
		fs[Opp[q]][site] = c[q]
	}
}
