package lbm

import "testing"

// TestThreadedProxyMatchesSerial verifies the slab-parallel kernels are
// bitwise identical to the serial ones for every variant — the hazard
// analysis in the code comments, checked.
func TestThreadedProxyMatchesSerial(t *testing.T) {
	const nx, r, g, steps = 12, 5.0, 1e-5, 24
	for _, cfg := range []KernelConfig{
		{Layout: AOS, Pattern: AB},
		{Layout: AOS, Pattern: AA},
		{Layout: SOA, Pattern: AB},
		{Layout: SOA, Pattern: AA},
		{Layout: SOA, Pattern: AB, Unrolled: true},
		{Layout: SOA, Pattern: AA, Unrolled: true},
	} {
		serial, err := NewProxy(cfg, nx, r, proxyParams(g))
		if err != nil {
			t.Fatal(err)
		}
		serial.Run(steps)

		threaded, err := NewProxy(cfg, nx, r, proxyParams(g))
		if err != nil {
			t.Fatal(err)
		}
		threaded.SetThreads(4)
		threaded.Run(steps)

		for i := range serial.f {
			if serial.f[i] != threaded.f[i] {
				t.Fatalf("%v: threaded run diverges from serial at slot %d", cfg, i)
			}
		}
	}
}

func TestSetThreadsClamp(t *testing.T) {
	p, err := NewProxy(KernelConfig{Layout: AOS, Pattern: AB}, 10, 4, proxyParams(0))
	if err != nil {
		t.Fatal(err)
	}
	p.SetThreads(0)
	if p.Threads() != 1 {
		t.Errorf("Threads = %d, want clamp to 1", p.Threads())
	}
	p.SetThreads(8)
	if p.Threads() != 8 {
		t.Errorf("Threads = %d, want 8", p.Threads())
	}
	// More threads than slabs still runs correctly.
	p.SetThreads(1000)
	p.Run(4)
	if p.Steps() != 4 {
		t.Error("oversubscribed run failed")
	}
}

func TestThreadedMassConservation(t *testing.T) {
	p, err := NewProxy(KernelConfig{Layout: SOA, Pattern: AA, Unrolled: true}, 10, 4, proxyParams(0))
	if err != nil {
		t.Fatal(err)
	}
	p.SetThreads(4)
	m0 := p.TotalMass()
	p.Run(50)
	if d := p.TotalMass() - m0; d > 1e-10 || d < -1e-10 {
		t.Errorf("threaded mass drifted by %v", d)
	}
}
