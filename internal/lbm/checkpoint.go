package lbm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// checkpointMagic identifies and versions the checkpoint format.
const checkpointMagic = uint64(0x4c424d434b505432) // "LBMCKPT2"

// Checkpoint serializes the solver state — geometry fingerprint,
// parameters, step counter and distributions — so long campaigns survive
// instance preemption and restarts, a practical requirement for
// production cloud simulation the paper's framework targets.
func (s *Sparse) Checkpoint(w io.Writer) error {
	bw := bufio.NewWriter(w)
	header := []uint64{
		checkpointMagic,
		uint64(s.Dom.NX), uint64(s.Dom.NY), uint64(s.Dom.NZ),
		uint64(s.n), uint64(s.steps),
	}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return fmt.Errorf("lbm: writing checkpoint header: %w", err)
		}
	}
	params := []float64{s.Params.Tau, s.Params.UMax,
		s.Params.Force[0], s.Params.Force[1], s.Params.Force[2],
		s.Params.Pulsatile.Period, s.Params.Pulsatile.Amplitude,
		float64(s.Params.Collision)}
	if err := binary.Write(bw, binary.LittleEndian, params); err != nil {
		return fmt.Errorf("lbm: writing checkpoint params: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, s.f); err != nil {
		return fmt.Errorf("lbm: writing checkpoint state: %w", err)
	}
	return bw.Flush()
}

// Restore loads a checkpoint previously written by Checkpoint into this
// solver. The solver must have been built over the same geometry (the
// dimensions and fluid-site count are verified); parameters are restored
// from the checkpoint.
func (s *Sparse) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	var header [6]uint64
	if err := binary.Read(br, binary.LittleEndian, &header); err != nil {
		return fmt.Errorf("lbm: reading checkpoint header: %w", err)
	}
	if header[0] != checkpointMagic {
		return fmt.Errorf("lbm: not a checkpoint (magic %x)", header[0])
	}
	if int(header[1]) != s.Dom.NX || int(header[2]) != s.Dom.NY || int(header[3]) != s.Dom.NZ {
		return fmt.Errorf("lbm: checkpoint geometry %dx%dx%d does not match solver %dx%dx%d",
			header[1], header[2], header[3], s.Dom.NX, s.Dom.NY, s.Dom.NZ)
	}
	if int(header[4]) != s.n {
		return fmt.Errorf("lbm: checkpoint has %d fluid sites, solver has %d", header[4], s.n)
	}
	var params [8]float64
	if err := binary.Read(br, binary.LittleEndian, &params); err != nil {
		return fmt.Errorf("lbm: reading checkpoint params: %w", err)
	}
	restored := Params{
		Tau: params[0], UMax: params[1],
		Force:     [3]float64{params[2], params[3], params[4]},
		PeriodicX: s.Params.PeriodicX, // geometry-level property, not stored
		Pulsatile: Waveform{Period: params[5], Amplitude: params[6]},
		Collision: CollisionOp(int(params[7])),
	}
	if err := restored.Validate(); err != nil {
		return fmt.Errorf("lbm: checkpoint params invalid: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, s.f); err != nil {
		return fmt.Errorf("lbm: reading checkpoint state: %w", err)
	}
	s.Params = restored
	s.steps = int(header[5])
	// Reset any externally injected per-site forces: they belong to the
	// coupling layer, which re-applies them each step.
	s.ClearSiteForces()
	return nil
}
