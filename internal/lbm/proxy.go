//lint:hot
package lbm

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/geometry"
)

// Layout selects the proxy app's fluid-point data layout.
type Layout int

// Data layouts offered by the proxy app, mirroring lbm-proxy-app.
const (
	AOS Layout = iota // array of structures: f[site*19+q]; favored on CPUs
	SOA               // structure of arrays: f[q*n+site]; favored on GPUs
)

// String names the layout as the paper's figures do.
func (l Layout) String() string {
	if l == AOS {
		return "AOS"
	}
	return "SOA"
}

// Pattern selects the propagation pattern.
type Pattern int

// Propagation patterns offered by the proxy app.
const (
	AB Pattern = iota // two arrays, pull streaming every step
	AA                // one array, alternating in-place/neighbor access
)

// String names the pattern as the paper's figures do.
func (p Pattern) String() string {
	if p == AB {
		return "AB"
	}
	return "AA"
}

// KernelConfig identifies one proxy-app kernel variant.
type KernelConfig struct {
	Layout   Layout
	Pattern  Pattern
	Unrolled bool // hand-unrolled inner q loop (SOA only, as in the paper)
}

// String renders the variant label used in Figures 4 and 8.
func (k KernelConfig) String() string {
	s := fmt.Sprintf("%v-%v", k.Layout, k.Pattern)
	if k.Unrolled {
		s += "-unrolled"
	}
	return s
}

// Proxy is the lbm-proxy-app equivalent: a dense fluid-only solver in a
// cylindrical geometry, periodic along the axis and driven by a body
// force, isolating the common LBM kernels from HARVEY's irregularity.
type Proxy struct {
	Config KernelConfig
	Params Params
	Dom    *geometry.Domain

	nx, ny, nz int
	nsites     int
	fluid      []bool    // dense mask
	xp1, xm1   []int     // periodic x neighbor tables
	f, g       []float64 // g is the second array for AB; unused for AA
	fluidCount int
	steps      int

	// rangeFn is the configured kernel's slab worker, bound once here:
	// binding a method value inside Step would allocate a closure every
	// timestep.
	rangeFn func(zLo, zHi int)

	// threads is the OpenMP-style worker count; kernels split the z range
	// into slabs. 1 (the default) runs serially. All kernel passes are
	// hazard-free across sites (AB writes a second array; both AA passes
	// touch only slots no other site reads or writes in the same pass),
	// so slab workers need no synchronization beyond the per-step join.
	threads int
}

// NewProxy builds a proxy-app solver on a cylinder of the given axial
// length and radius. The force must have a positive x component to drive
// flow; Params.PeriodicX is implied and UMax ignored.
func NewProxy(cfg KernelConfig, nxLen int, radius float64, p Params) (*Proxy, error) {
	if cfg.Unrolled && cfg.Layout != SOA {
		return nil, fmt.Errorf("lbm: unrolled kernels are provided for SOA only, got %v", cfg)
	}
	p.PeriodicX = true
	p.UMax = 0
	if p.Collision != BGK {
		return nil, fmt.Errorf("lbm: the proxy app implements BGK only, got %v", p.Collision)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	dom, err := geometry.Cylinder(nxLen, radius)
	if err != nil {
		return nil, err
	}
	pr := &Proxy{
		Config: cfg, Params: p, Dom: dom,
		nx: dom.NX, ny: dom.NY, nz: dom.NZ,
		threads: 1,
	}
	pr.nsites = pr.nx * pr.ny * pr.nz
	pr.fluid = make([]bool, pr.nsites)
	for i, t := range dom.Types {
		if t.IsFluid() {
			pr.fluid[i] = true
			pr.fluidCount++
		}
	}
	pr.xp1 = make([]int, pr.nx)
	pr.xm1 = make([]int, pr.nx)
	for x := 0; x < pr.nx; x++ {
		pr.xp1[x] = (x + 1) % pr.nx
		pr.xm1[x] = (x - 1 + pr.nx) % pr.nx
	}
	pr.f = make([]float64, pr.nsites*NQ)
	if cfg.Pattern == AB {
		pr.g = make([]float64, pr.nsites*NQ)
	}
	var feq [NQ]float64
	Equilibrium(1, 0, 0, 0, &feq)
	for i := 0; i < pr.nsites; i++ {
		if !pr.fluid[i] {
			continue
		}
		for q := 0; q < NQ; q++ {
			pr.f[pr.slot(i, q)] = feq[q]
		}
	}
	switch {
	case cfg.Pattern == AB && cfg.Unrolled:
		pr.rangeFn = pr.stepABUnrolledRange
	case cfg.Pattern == AB:
		pr.rangeFn = pr.stepABRange
	case cfg.Pattern == AA && cfg.Unrolled:
		pr.rangeFn = pr.stepAAUnrolledRange
	default:
		pr.rangeFn = pr.stepAARange
	}
	return pr, nil
}

// slot maps (site, direction) to the linear index for the configured layout.
func (p *Proxy) slot(site, q int) int {
	if p.Config.Layout == AOS {
		return site*NQ + q
	}
	return q*p.nsites + site
}

// idx returns the dense site index of (x, y, z).
func (p *Proxy) idx(x, y, z int) int { return (z*p.ny+y)*p.nx + x }

// neighbor returns the dense index of the site one step along q from
// (x, y, z) with periodic wrap in x, and whether it is fluid. The cylinder
// keeps a solid margin in y and z, so those coordinates never leave the
// array for fluid sites.
func (p *Proxy) neighbor(x, y, z, q int) (int, bool) {
	nx := x
	switch Cx[q] {
	case 1:
		nx = p.xp1[x]
	case -1:
		nx = p.xm1[x]
	}
	i := p.idx(nx, y+Cy[q], z+Cz[q])
	return i, p.fluid[i]
}

// SetThreads sets the worker count for subsequent steps (clamped below
// at 1). Like an OpenMP thread sweep, this is how the proxy app measures
// per-thread memory-bandwidth scaling on the host.
func (p *Proxy) SetThreads(n int) {
	if n < 1 {
		n = 1
	}
	p.threads = n
}

// Threads returns the current worker count.
func (p *Proxy) Threads() int { return p.threads }

// zSlabs partitions the interior z range [1, nz-1) into the configured
// number of contiguous slabs and runs fn on each concurrently.
func (p *Proxy) zSlabs(fn func(z0, z1 int)) {
	lo, hi := 1, p.nz-1
	n := p.threads
	if n > hi-lo {
		n = hi - lo
	}
	if n <= 1 {
		fn(lo, hi)
		return
	}
	var wg sync.WaitGroup
	span := hi - lo
	for t := 0; t < n; t++ {
		z0 := lo + span*t/n
		z1 := lo + span*(t+1)/n
		wg.Add(1)
		//lint:ignore hotpath one closure per worker slab, not per lattice site
		go func(z0, z1 int) {
			defer wg.Done()
			fn(z0, z1)
		}(z0, z1)
	}
	wg.Wait()
}

// FluidPoints returns the number of fluid lattice sites.
func (p *Proxy) FluidPoints() int { return p.fluidCount }

// Steps returns completed timesteps.
func (p *Proxy) Steps() int { return p.steps }

// Step advances one timestep using the kernel variant bound at
// construction. AB kernels pull-stream from f into g, so the arrays swap
// after the pass; AA kernels work in place.
func (p *Proxy) Step() {
	p.zSlabs(p.rangeFn)
	if p.Config.Pattern == AB {
		p.f, p.g = p.g, p.f
	}
	p.steps++
}

// Run advances the given number of timesteps.
func (p *Proxy) Run(steps int) {
	for i := 0; i < steps; i++ {
		p.Step()
	}
}

// collideForce applies BGK relaxation plus first-order forcing to cell.
func (p *Proxy) collideForce(cell *[NQ]float64) {
	omega := 1 / p.Params.Tau
	rho, ux, uy, uz := Moments(cell)
	var feq [NQ]float64
	Equilibrium(rho, ux, uy, uz, &feq)
	fx, fy, fz := p.Params.Force[0], p.Params.Force[1], p.Params.Force[2]
	for q := 0; q < NQ; q++ {
		cell[q] -= omega * (cell[q] - feq[q])
		cell[q] += 3 * W[q] * (float64(Cx[q])*fx + float64(Cy[q])*fy + float64(Cz[q])*fz)
	}
}

// stepABRange is the fused pull-stream + collide AB kernel from f into
// g over one z slab. Safe to run slab-parallel: f is read-only and each
// site writes only its own g slots.
func (p *Proxy) stepABRange(zLo, zHi int) {
	var cell [NQ]float64
	for z := zLo; z < zHi; z++ {
		for y := 1; y < p.ny-1; y++ {
			for x := 0; x < p.nx; x++ {
				site := p.idx(x, y, z)
				if !p.fluid[site] {
					continue
				}
				for q := 0; q < NQ; q++ {
					up, ok := p.neighbor(x, y, z, Opp[q]) // site at x - c_q
					if ok {
						cell[q] = p.f[p.slot(up, q)]
					} else {
						cell[q] = p.f[p.slot(site, Opp[q])] // bounce-back
					}
				}
				p.collideForce(&cell)
				for q := 0; q < NQ; q++ {
					p.g[p.slot(site, q)] = cell[q]
				}
			}
		}
	}
}

// stepAARange is Bailey's AA pattern on a single array, over one z slab.
// Even steps collide in place writing opposite slots; odd steps gather
// from neighbors' opposite slots, collide, and scatter to neighbors'
// normal slots. Site updates are hazard-free (each slot is read and
// written by exactly one site per pass).
func (p *Proxy) stepAARange(zLo, zHi int) {
	var cell [NQ]float64
	even := p.steps%2 == 0
	for z := zLo; z < zHi; z++ {
		for y := 1; y < p.ny-1; y++ {
			for x := 0; x < p.nx; x++ {
				site := p.idx(x, y, z)
				if !p.fluid[site] {
					continue
				}
				if even {
					for q := 0; q < NQ; q++ {
						cell[q] = p.f[p.slot(site, q)]
					}
					p.collideForce(&cell)
					for q := 0; q < NQ; q++ {
						p.f[p.slot(site, Opp[q])] = cell[q]
					}
					continue
				}
				// Odd step: gather f*_q(x-c_q) which lives in slot opp(q)
				// of the upstream site (or slot q locally after bounce).
				for q := 0; q < NQ; q++ {
					up, ok := p.neighbor(x, y, z, Opp[q])
					if ok {
						cell[q] = p.f[p.slot(up, Opp[q])]
					} else {
						cell[q] = p.f[p.slot(site, q)]
					}
				}
				p.collideForce(&cell)
				// Scatter f*_q(x) to slot q of the downstream site, so the
				// array returns to normal order; bounce writes locally.
				for q := 0; q < NQ; q++ {
					down, ok := p.neighbor(x, y, z, q)
					if ok {
						p.f[p.slot(down, q)] = cell[q]
					} else {
						p.f[p.slot(site, Opp[q])] = cell[q]
					}
				}
			}
		}
	}
}

// Macro returns density and velocity at dense site (x, y, z). For AA runs
// the caller should sample after an even number of steps, when the array
// is in normal order.
func (p *Proxy) Macro(x, y, z int) (rho, ux, uy, uz float64) {
	site := p.idx(x, y, z)
	var cell [NQ]float64
	for q := 0; q < NQ; q++ {
		cell[q] = p.f[p.slot(site, q)]
	}
	return Moments(&cell)
}

// CenterlineSpeed returns the axial velocity at the cylinder center, a
// convergence probe for force-driven runs.
func (p *Proxy) CenterlineSpeed() float64 {
	_, ux, uy, uz := p.Macro(p.nx/2, (p.ny-1)/2, (p.nz-1)/2)
	return math.Sqrt(ux*ux + uy*uy + uz*uz)
}

// TotalMass sums density over fluid sites.
func (p *Proxy) TotalMass() float64 {
	var m float64
	for site := 0; site < p.nsites; site++ {
		if !p.fluid[site] {
			continue
		}
		for q := 0; q < NQ; q++ {
			m += p.f[p.slot(site, q)]
		}
	}
	return m
}
