package lbm

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"repro/internal/units"
)

// OSI — the oscillatory shear index — grades how much the wall shear
// direction reverses over a cardiac cycle: 0 for unidirectional shear,
// approaching 0.5 for fully oscillatory shear. Alongside time-averaged
// WSS it is the standard hemodynamic risk marker (low, oscillatory shear
// correlates with atherogenesis), so pulsatile runs expose it.

// OSIAccumulator integrates wall forces over timesteps.
type OSIAccumulator struct {
	s     *Sparse
	sumFx []float64
	sumFy []float64
	sumFz []float64
	sumM  []float64 // sum of instantaneous shear magnitudes
	sites []int     // local site index per accumulator slot
	steps int
}

// NewOSIAccumulator prepares accumulation over the solver's wall-adjacent
// sites. Call Accumulate once per timestep (after Step), then OSI.
func NewOSIAccumulator(s *Sparse) *OSIAccumulator {
	forces := s.WallForces()
	acc := &OSIAccumulator{
		s:     s,
		sumFx: make([]float64, len(forces)),
		sumFy: make([]float64, len(forces)),
		sumFz: make([]float64, len(forces)),
		sumM:  make([]float64, len(forces)),
		sites: make([]int, len(forces)),
	}
	for i, f := range forces {
		acc.sites[i] = f.Site
	}
	return acc
}

// Accumulate samples the current wall forces. The wall-site set is fixed
// by the geometry, so slots line up across calls.
func (a *OSIAccumulator) Accumulate() {
	forces := a.s.WallForces()
	for i, f := range forces {
		// Tangential component only: OSI is about shear direction.
		fn := f.Fx*f.Nx + f.Fy*f.Ny + f.Fz*f.Nz
		tx := f.Fx - fn*f.Nx
		ty := f.Fy - fn*f.Ny
		tz := f.Fz - fn*f.Nz
		a.sumFx[i] += tx
		a.sumFy[i] += ty
		a.sumFz[i] += tz
		a.sumM[i] += math.Sqrt(tx*tx + ty*ty + tz*tz)
	}
	a.steps++
}

// SiteOSI is the oscillatory shear index at one wall site.
type SiteOSI struct {
	Site    int
	X, Y, Z int
	OSI     float64
	MeanWSS float64 // time-averaged shear magnitude
}

// OSI returns the per-site index: OSI = 0.5 * (1 - |mean F| / mean |F|).
// It errors if nothing was accumulated.
func (a *OSIAccumulator) OSI() ([]SiteOSI, error) {
	if a.steps == 0 {
		return nil, fmt.Errorf("lbm: OSI requested before any accumulation")
	}
	out := make([]SiteOSI, len(a.sites))
	for i, si := range a.sites {
		x, y, z := a.s.coords(si)
		meanMag := a.sumM[i] / float64(a.steps)
		netMag := math.Sqrt(a.sumFx[i]*a.sumFx[i]+a.sumFy[i]*a.sumFy[i]+a.sumFz[i]*a.sumFz[i]) / float64(a.steps)
		osi := 0.0
		if meanMag > 0 {
			osi = 0.5 * (1 - netMag/meanMag)
			if osi < 0 {
				osi = 0 // round-off guard: |mean| can exceed mean|.| by ulps
			}
		}
		out[i] = SiteOSI{Site: si, X: x, Y: y, Z: z, OSI: osi, MeanWSS: meanMag}
	}
	return out, nil
}

// WriteOSICSV writes the per-site index as CSV rows
// (x, y, z, osi, mean_wss) for downstream risk mapping.
func (a *OSIAccumulator) WriteOSICSV(w io.Writer) error {
	sites, err := a.OSI()
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "x,y,z,osi,mean_wss")
	for _, s := range sites {
		fmt.Fprintf(bw, "%d,%d,%d,%g,%g\n", s.X, s.Y, s.Z, s.OSI, s.MeanWSS)
	}
	return bw.Flush()
}

// MeanOSI returns the shear-weighted surface average of the index (the
// standard reporting convention): sites are weighted by their mean WSS so
// numerically noisy near-zero-shear staircase corners do not dominate.
func (a *OSIAccumulator) MeanOSI() (float64, error) {
	sites, err := a.OSI()
	if err != nil {
		return 0, err
	}
	var sum, weight float64
	for _, s := range sites {
		sum += s.OSI * s.MeanWSS
		weight += s.MeanWSS
	}
	if units.ApproxEqual(weight, 0, 1e-12) {
		return 0, fmt.Errorf("lbm: no wall sites carried shear")
	}
	return sum / weight, nil
}
