package lbm

import (
	"math"
	"testing"
)

func proxyParams(g float64) Params {
	return Params{Tau: 0.9, Force: [3]float64{g, 0, 0}}
}

// fieldDiff returns the largest absolute difference in macroscopic fields
// between two proxy runs over all fluid sites.
func fieldDiff(a, b *Proxy) float64 {
	var maxDiff float64
	for z := 1; z < a.nz-1; z++ {
		for y := 1; y < a.ny-1; y++ {
			for x := 0; x < a.nx; x++ {
				if !a.fluid[a.idx(x, y, z)] {
					continue
				}
				r0, u0, v0, w0 := a.Macro(x, y, z)
				r1, u1, v1, w1 := b.Macro(x, y, z)
				for _, d := range []float64{r1 - r0, u1 - u0, v1 - v0, w1 - w0} {
					maxDiff = math.Max(maxDiff, math.Abs(d))
				}
			}
		}
	}
	return maxDiff
}

func runVariant(t *testing.T, cfg KernelConfig, steps int) *Proxy {
	t.Helper()
	p, err := NewProxy(cfg, 10, 4, proxyParams(1e-5))
	if err != nil {
		t.Fatalf("%v: %v", cfg, err)
	}
	p.Run(steps)
	return p
}

func TestProxyVariantsSamePatternIdentical(t *testing.T) {
	// Within one propagation pattern all layout/unroll variants apply the
	// same per-site operator, so fields must agree to round-off.
	const steps = 20
	refAB := runVariant(t, KernelConfig{Layout: AOS, Pattern: AB}, steps)
	for _, cfg := range []KernelConfig{
		{Layout: SOA, Pattern: AB},
		{Layout: SOA, Pattern: AB, Unrolled: true},
	} {
		if d := fieldDiff(refAB, runVariant(t, cfg, steps)); d > 1e-9 {
			t.Errorf("%v diverges from AOS-AB by %v", cfg, d)
		}
	}
	refAA := runVariant(t, KernelConfig{Layout: AOS, Pattern: AA}, steps)
	for _, cfg := range []KernelConfig{
		{Layout: SOA, Pattern: AA},
		{Layout: SOA, Pattern: AA, Unrolled: true},
	} {
		if d := fieldDiff(refAA, runVariant(t, cfg, steps)); d > 1e-9 {
			t.Errorf("%v diverges from AOS-AA by %v", cfg, d)
		}
	}
}

func TestProxyAAMatchesABPhysically(t *testing.T) {
	// AA and AB trajectories are phase-shifted by one streaming operator
	// (after 2n steps the AA array holds the AB state streamed once), so
	// they agree physically, not bitwise: compare near steady state.
	const steps = 600
	ab := runVariant(t, KernelConfig{Layout: AOS, Pattern: AB}, steps)
	aa := runVariant(t, KernelConfig{Layout: AOS, Pattern: AA}, steps)
	scale := ab.CenterlineSpeed()
	if scale <= 0 {
		t.Fatal("no flow developed")
	}
	// The residual is the half-step offset: one un-streamed force
	// increment (O(g)) plus near-wall gradients, a few percent of scale.
	if d := fieldDiff(ab, aa); d > 0.05*scale {
		t.Errorf("AA deviates from AB by %v (flow scale %v)", d, scale)
	}
}

func TestProxyMassConservation(t *testing.T) {
	for _, cfg := range []KernelConfig{
		{Layout: AOS, Pattern: AB},
		{Layout: SOA, Pattern: AA},
		{Layout: SOA, Pattern: AB, Unrolled: true},
		{Layout: SOA, Pattern: AA, Unrolled: true},
	} {
		// Without forcing, bounce-back + BGK conserve mass to round-off.
		p, err := NewProxy(cfg, 8, 3.5, proxyParams(0))
		if err != nil {
			t.Fatal(err)
		}
		m0 := p.TotalMass()
		p.Run(50)
		if rel := math.Abs(p.TotalMass()-m0) / m0; rel > 1e-12 {
			t.Errorf("%v: unforced mass drifted by %v", cfg, rel)
		}
		// With forcing, the injected force terms cancel analytically but
		// not bitwise; drift must stay at accumulated round-off scale.
		p, err = NewProxy(cfg, 8, 3.5, proxyParams(1e-5))
		if err != nil {
			t.Fatal(err)
		}
		m0 = p.TotalMass()
		p.Run(50)
		if rel := math.Abs(p.TotalMass()-m0) / m0; rel > 1e-7 {
			t.Errorf("%v: forced mass drifted by %v", cfg, rel)
		}
	}
}

func TestProxyFlowDevelops(t *testing.T) {
	p, err := NewProxy(KernelConfig{Layout: SOA, Pattern: AB, Unrolled: true}, 8, 5, proxyParams(5e-6))
	if err != nil {
		t.Fatal(err)
	}
	p.Run(400)
	if v := p.CenterlineSpeed(); v <= 1e-5 {
		t.Errorf("centerline speed %v; force-driven flow failed to develop", v)
	}
	if v := p.CenterlineSpeed(); v > 0.3 {
		t.Errorf("centerline speed %v; unstable", v)
	}
}

func TestProxyRejectsUnrolledAOS(t *testing.T) {
	if _, err := NewProxy(KernelConfig{Layout: AOS, Pattern: AB, Unrolled: true}, 10, 4, proxyParams(0)); err == nil {
		t.Error("want error for unrolled AOS")
	}
}

func TestProxyRejectsBadParams(t *testing.T) {
	if _, err := NewProxy(KernelConfig{}, 10, 4, Params{Tau: 0.2}); err == nil {
		t.Error("want error for bad tau")
	}
	if _, err := NewProxy(KernelConfig{}, 2, 4, proxyParams(0)); err == nil {
		t.Error("want error for tiny domain")
	}
}

func TestKernelConfigString(t *testing.T) {
	cases := map[string]KernelConfig{
		"AOS-AB":          {Layout: AOS, Pattern: AB},
		"SOA-AA":          {Layout: SOA, Pattern: AA},
		"SOA-AB-unrolled": {Layout: SOA, Pattern: AB, Unrolled: true},
	}
	for want, cfg := range cases {
		if got := cfg.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestProxyFluidPoints(t *testing.T) {
	p, err := NewProxy(KernelConfig{Layout: AOS, Pattern: AB}, 16, 5, proxyParams(0))
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pi * 5 * 5 * 16
	got := float64(p.FluidPoints())
	if math.Abs(got-want)/want > 0.2 {
		t.Errorf("FluidPoints = %v, expected near %v", got, want)
	}
}

func TestProxyStepsCounter(t *testing.T) {
	p, err := NewProxy(KernelConfig{Layout: SOA, Pattern: AA}, 8, 3.5, proxyParams(0))
	if err != nil {
		t.Fatal(err)
	}
	p.Run(7)
	if p.Steps() != 7 {
		t.Errorf("Steps = %d, want 7", p.Steps())
	}
}

func TestLayoutPatternStrings(t *testing.T) {
	if AOS.String() != "AOS" || SOA.String() != "SOA" {
		t.Error("layout strings wrong")
	}
	if AB.String() != "AB" || AA.String() != "AA" {
		t.Error("pattern strings wrong")
	}
}
