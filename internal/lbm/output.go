package lbm

import (
	"bufio"
	"fmt"
	"io"
)

// WriteVTK writes the current macroscopic fields as a legacy-VTK
// structured-points dataset (ASCII): density and velocity at every
// lattice site, zeros at solid sites. The files load directly in
// ParaView/VisIt, the way hemodynamic results are actually inspected.
func (s *Sparse) WriteVTK(w io.Writer, title string) error {
	bw := bufio.NewWriter(w)
	nx, ny, nz := s.Dom.NX, s.Dom.NY, s.Dom.NZ
	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	fmt.Fprintln(bw, title)
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET STRUCTURED_POINTS")
	fmt.Fprintf(bw, "DIMENSIONS %d %d %d\n", nx, ny, nz)
	fmt.Fprintln(bw, "ORIGIN 0 0 0")
	fmt.Fprintln(bw, "SPACING 1 1 1")
	fmt.Fprintf(bw, "POINT_DATA %d\n", nx*ny*nz)

	// Precompute macroscopic fields once.
	rho := make([]float64, s.n)
	ux := make([]float64, s.n)
	uy := make([]float64, s.n)
	uz := make([]float64, s.n)
	for si := 0; si < s.n; si++ {
		rho[si], ux[si], uy[si], uz[si] = s.Macro(si)
	}

	fmt.Fprintln(bw, "SCALARS density double 1")
	fmt.Fprintln(bw, "LOOKUP_TABLE default")
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if si := s.SiteAt(x, y, z); si >= 0 {
					fmt.Fprintf(bw, "%g\n", rho[si])
				} else {
					fmt.Fprintln(bw, "0")
				}
			}
		}
	}
	fmt.Fprintln(bw, "VECTORS velocity double")
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if si := s.SiteAt(x, y, z); si >= 0 {
					fmt.Fprintf(bw, "%g %g %g\n", ux[si], uy[si], uz[si])
				} else {
					fmt.Fprintln(bw, "0 0 0")
				}
			}
		}
	}
	return bw.Flush()
}

// WriteProfileCSV writes the axial-velocity profile of the cross-section
// at plane x as CSV rows (y, z, ux, uy, uz, rho) — the quantitative view
// validation scripts diff against analytic profiles.
func (s *Sparse) WriteProfileCSV(w io.Writer, x int) error {
	if x < 0 || x >= s.Dom.NX {
		return fmt.Errorf("lbm: profile plane x=%d outside [0,%d)", x, s.Dom.NX)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "y,z,ux,uy,uz,rho")
	count := 0
	for z := 0; z < s.Dom.NZ; z++ {
		for y := 0; y < s.Dom.NY; y++ {
			si := s.SiteAt(x, y, z)
			if si < 0 {
				continue
			}
			rho, ux, uy, uz := s.Macro(si)
			fmt.Fprintf(bw, "%d,%d,%g,%g,%g,%g\n", y, z, ux, uy, uz, rho)
			count++
		}
	}
	if count == 0 {
		return fmt.Errorf("lbm: profile plane x=%d contains no fluid", x)
	}
	return bw.Flush()
}
