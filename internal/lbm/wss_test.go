package lbm

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestWallForceBalanceAtSteadyState(t *testing.T) {
	// In a periodic force-driven pipe at steady state, the momentum the
	// body force injects each step is transferred to the wall: the force
	// ON the wall satisfies sum(Fx) = +g * N (the wall, in reaction,
	// holds the fluid back).
	const g = 1e-5
	s := poiseuilleCase(t, 10, 6, g)
	prev := -1.0
	for i := 0; i < 200; i++ {
		s.Run(100)
		var umax float64
		for si := 0; si < s.N(); si++ {
			_, ux, _, _ := s.Macro(si)
			umax = math.Max(umax, ux)
		}
		if math.Abs(umax-prev) < 1e-12 {
			break
		}
		prev = umax
	}
	fx, fy, fz := s.TotalDrag()
	injected := g * float64(s.N())
	if rel := math.Abs(fx-injected) / injected; rel > 0.02 {
		t.Errorf("drag %v does not balance injected force %v (rel %v)", fx, injected, rel)
	}
	// Transverse drag vanishes by symmetry (up to staircase asymmetry).
	if math.Abs(fy) > 0.05*injected || math.Abs(fz) > 0.05*injected {
		t.Errorf("transverse drag (%v, %v) too large", fy, fz)
	}
}

func TestWallForcesZeroAtRest(t *testing.T) {
	s := poiseuilleCase(t, 8, 4, 0)
	for _, w := range s.WallForces() {
		// At uniform rest, opposing links cancel: only the staircase rim
		// produces tiny asymmetries, which must still be ~0 with no flow.
		if w.Magnitude() > 1e-12 {
			t.Fatalf("rest-state wall force %v at site %d", w.Magnitude(), w.Site)
		}
	}
}

func TestWallForcesOnlyAtWallSites(t *testing.T) {
	s := poiseuilleCase(t, 8, 4, 1e-5)
	s.Run(50)
	forces := s.WallForces()
	if len(forces) == 0 {
		t.Fatal("no wall forces on a cylinder")
	}
	for _, w := range forces {
		solid := false
		for q := 1; q < NQ; q++ {
			if s.Neighbor(w.Site, q) < 0 {
				solid = true
				break
			}
		}
		if !solid {
			t.Fatalf("site %d reported a wall force without solid links", w.Site)
		}
	}
}

func TestWallForcesDoNotPerturbState(t *testing.T) {
	s := poiseuilleCase(t, 8, 4, 1e-5)
	s.Run(20)
	before := make([][NQ]float64, s.N())
	for si := range before {
		before[si] = s.Cell(si)
	}
	s.WallForces()
	for si := range before {
		if s.Cell(si) != before[si] {
			t.Fatal("WallForces mutated solver state")
		}
	}
}

func TestWriteWSSCSV(t *testing.T) {
	s := poiseuilleCase(t, 8, 4, 1e-5)
	s.Run(50)
	var buf bytes.Buffer
	if err := s.WriteWSSCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "x,y,z,fx,fy,fz,shear,normal" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) < 20 {
		t.Errorf("only %d WSS rows", len(lines)-1)
	}
}

func TestWSSHigherNearWallThanAnalytic(t *testing.T) {
	// Poiseuille wall shear is tau = g*R/2 per unit area; per-site force
	// magnitudes at steady state should cluster near that scale (within
	// a staircase-geometry factor).
	const g = 1e-5
	s := poiseuilleCase(t, 8, 6, g)
	s.Run(4000)
	forces := s.WallForces()
	var mean float64
	for _, w := range forces {
		mean += w.Magnitude()
	}
	mean /= float64(len(forces))
	analytic := g * 6.5 / 2 // tau_wall = g R / 2
	if mean < analytic/10 || mean > analytic*10 {
		t.Errorf("mean wall force %v far from analytic shear scale %v", mean, analytic)
	}
}

func TestShearNormalDecomposition(t *testing.T) {
	s := poiseuilleCase(t, 10, 6, 1e-5)
	s.Run(2000)
	forces := s.WallForces()
	var shearSum, normSum float64
	for _, w := range forces {
		// Pythagoras: shear² + normal² == magnitude² (within round-off).
		m2 := w.Magnitude() * w.Magnitude()
		d2 := w.Shear()*w.Shear() + w.NormalForce()*w.NormalForce()
		if math.Abs(m2-d2) > 1e-15+1e-9*m2 {
			t.Fatalf("decomposition broken at site %d: %v vs %v", w.Site, m2, d2)
		}
		// The normal estimate is unit length for every wall site.
		n := math.Sqrt(w.Nx*w.Nx + w.Ny*w.Ny + w.Nz*w.Nz)
		if math.Abs(n-1) > 1e-12 {
			t.Fatalf("normal not unit length at site %d: %v", w.Site, n)
		}
		shearSum += w.Shear()
		normSum += math.Abs(w.NormalForce())
	}
	// In steady periodic Poiseuille the pressure is uniform, so the wall
	// load is predominantly tangential shear.
	if shearSum <= normSum {
		t.Errorf("shear (%v) should dominate normal load (%v) in Poiseuille", shearSum, normSum)
	}
}
