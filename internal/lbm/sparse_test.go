package lbm

import (
	"math"
	"testing"

	"repro/internal/fit"
	"repro/internal/geometry"
)

// poiseuilleCase builds a small periodic force-driven cylinder: the
// canonical validation flow with the analytic steady profile
// u(r) = G (R^2 - r^2) / (4 nu).
func poiseuilleCase(t *testing.T, nx int, radius float64, g float64) *Sparse {
	t.Helper()
	dom, err := geometry.Cylinder(nx, radius)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSparse(dom, Params{Tau: 0.9, PeriodicX: true, Force: [3]float64{g, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSparseMassConservationPeriodic(t *testing.T) {
	s := poiseuilleCase(t, 12, 5, 1e-5)
	m0 := s.TotalMass()
	s.Run(200)
	m1 := s.TotalMass()
	if rel := math.Abs(m1-m0) / m0; rel > 1e-10 {
		t.Errorf("mass drifted by %v in periodic bounce-back run", rel)
	}
}

func TestSparsePoiseuilleProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("long steady-state convergence")
	}
	// The analytic steady profile is u(r) = g (R_eff^2 - r^2) / (4 nu).
	// The staircase wall makes the effective radius R_eff geometry-
	// dependent, but the parabola's curvature g/(4 nu) is not: fitting
	// u against r^2 must recover the solver's viscosity.
	const g = 2e-6
	s := poiseuilleCase(t, 8, 9, g)
	nu := s.Params.Viscosity()

	// Run to steady state: monitor the peak velocity until it stalls.
	prev := -1.0
	for i := 0; i < 300; i++ {
		s.Run(100)
		var umax float64
		for si := 0; si < s.N(); si++ {
			_, ux, _, _ := s.Macro(si)
			umax = math.Max(umax, ux)
		}
		if math.Abs(umax-prev) < 1e-11 {
			break
		}
		prev = umax
	}

	// Collect (r^2, u) over the interior of the mid-length cross-section,
	// away from the staircase wall.
	cy := float64(s.Dom.NY-1) / 2
	cz := float64(s.Dom.NZ-1) / 2
	midX := s.Dom.NX / 2
	var r2s, us []float64
	for si := 0; si < s.N(); si++ {
		x, y, z := s.SiteCoords(si)
		if x != midX {
			continue
		}
		dy, dz := float64(y)-cy, float64(z)-cz
		r2 := dy*dy + dz*dz
		if r2 > 6.5*6.5 {
			continue
		}
		_, ux, _, _ := s.Macro(si)
		r2s = append(r2s, r2)
		us = append(us, ux)
	}
	if len(r2s) < 20 {
		t.Fatalf("only %d profile sites sampled", len(r2s))
	}
	line, err := fit.LinearLSQ(r2s, us)
	if err != nil {
		t.Fatal(err)
	}
	if line.R2 < 0.99 {
		t.Errorf("profile not parabolic: R² = %.4f", line.R2)
	}
	nuFit := -g / (4 * line.Slope)
	if rel := math.Abs(nuFit-nu) / nu; rel > 0.05 {
		t.Errorf("fitted viscosity %.4f deviates from %.4f by %.1f%%", nuFit, nu, rel*100)
	}
	// Implied effective radius must be near the nominal one.
	rEff := math.Sqrt(line.Intercept / -line.Slope)
	if rEff < 8 || rEff > 10 {
		t.Errorf("effective radius %.2f outside [8, 10]", rEff)
	}
}

func TestSparseInletOutletFlow(t *testing.T) {
	dom, err := geometry.Cylinder(24, 5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSparse(dom, Params{Tau: 0.9, UMax: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(600)
	if v := s.MaxSpeed(); v > 0.2 {
		t.Fatalf("flow unstable, max speed %v", v)
	}
	// Flow must move in +x through the middle of the pipe.
	var meanUx float64
	var n int
	for si := 0; si < s.N(); si++ {
		x, _, _ := s.SiteCoords(si)
		if x == dom.NX/2 {
			_, ux, _, _ := s.Macro(si)
			meanUx += ux
			n++
		}
	}
	meanUx /= float64(n)
	if meanUx <= 1e-4 {
		t.Errorf("mid-pipe mean axial velocity %v; inlet-driven flow not established", meanUx)
	}
}

func TestSparseRunStability(t *testing.T) {
	dom, err := geometry.Aorta(4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSparse(dom, Params{Tau: 0.95, UMax: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(150)
	for si := 0; si < s.N(); si++ {
		rho, _, _, _ := s.Macro(si)
		if math.IsNaN(rho) || rho <= 0 || rho > 2 {
			t.Fatalf("unphysical density %v at site %d", rho, si)
		}
	}
	if v := s.MaxSpeed(); v > 0.3 {
		t.Errorf("aorta flow unstable, max speed %v", v)
	}
}

func TestSparseRejectsBadParams(t *testing.T) {
	dom, err := geometry.Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSparse(dom, Params{Tau: 0.3}); err == nil {
		t.Error("want error for unstable tau")
	}
}

func TestSparseRejectsNoInletWithUMax(t *testing.T) {
	// A domain with no inlet sites and UMax > 0 is a configuration error.
	dom := &geometry.Domain{Name: "slab", NX: 6, NY: 6, NZ: 6,
		Types: make([]geometry.PointType, 216)}
	for i := range dom.Types {
		dom.Types[i] = geometry.Bulk
	}
	if _, err := NewSparse(dom, Params{Tau: 0.9, UMax: 0.05}); err == nil {
		t.Error("want error for UMax without inlet")
	}
}

func TestSparseNoFluid(t *testing.T) {
	dom := &geometry.Domain{Name: "void", NX: 4, NY: 4, NZ: 4,
		Types: make([]geometry.PointType, 64)}
	if _, err := NewSparse(dom, Params{Tau: 0.9}); err == nil {
		t.Error("want error for all-solid domain")
	}
}

func TestSparseNeighborTableSymmetry(t *testing.T) {
	// If site a sees site b along q, then b must see a along Opp[q].
	s := poiseuilleCase(t, 10, 4, 0)
	for si := 0; si < s.N(); si++ {
		for q := 0; q < NQ; q++ {
			nb := s.Neighbor(si, q)
			if nb < 0 {
				continue
			}
			if back := s.Neighbor(nb, Opp[q]); back != si {
				t.Fatalf("neighbor asymmetry: %d --%d--> %d --%d--> %d", si, q, nb, Opp[q], back)
			}
		}
	}
}

func TestSparseVectorsRange(t *testing.T) {
	s := poiseuilleCase(t, 10, 4, 0)
	bulkSeen := false
	for si := 0; si < s.N(); si++ {
		v := s.Vectors(si)
		if v < 1 || v > NQ {
			t.Fatalf("Vectors(%d) = %d outside [1,19]", si, v)
		}
		if v == NQ {
			bulkSeen = true
		}
	}
	if !bulkSeen {
		t.Error("no site with full 19 vectors; cylinder interior missing")
	}
}

func TestSparseWallPointsCheaper(t *testing.T) {
	// The Eq. 9 accounting must price wall points below bulk points.
	s := poiseuilleCase(t, 12, 6, 0)
	m := HarveyAccess()
	var bulkB, wallB float64
	var bulkN, wallN int
	for si := 0; si < s.N(); si++ {
		b := m.PointBytes(s.Vectors(si))
		switch s.Type(si) {
		case geometry.Bulk:
			bulkB += b
			bulkN++
		case geometry.Wall:
			wallB += b
			wallN++
		}
	}
	if bulkN == 0 || wallN == 0 {
		t.Fatal("missing point classes")
	}
	if wallB/float64(wallN) >= bulkB/float64(bulkN) {
		t.Errorf("wall points not cheaper: %.1f vs %.1f bytes",
			wallB/float64(wallN), bulkB/float64(bulkN))
	}
}

func TestBytesSerialPositive(t *testing.T) {
	s := poiseuilleCase(t, 10, 4, 0)
	if b := s.BytesSerial(HarveyAccess()); b <= 0 {
		t.Errorf("BytesSerial = %v, want positive", b)
	}
	counts := s.CountTypes()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != s.N() {
		t.Errorf("CountTypes total %d != N %d", total, s.N())
	}
}

func TestAccessModels(t *testing.T) {
	h := HarveyAccess()
	// Bulk point: 19 vectors, read+write+index.
	want := 19*(1+1)*8.0 + 19*1*4.0
	if got := h.PointBytes(19); got != want {
		t.Errorf("Harvey bulk PointBytes = %v, want %v", got, want)
	}
	ab := ProxyAccess(KernelConfig{Layout: SOA, Pattern: AB})
	aa := ProxyAccess(KernelConfig{Layout: SOA, Pattern: AA})
	if ab.PointBytes(19) <= aa.PointBytes(19) {
		t.Errorf("AB must touch more bytes than AA: %v vs %v", ab.PointBytes(19), aa.PointBytes(19))
	}
}
