package lbm

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geometry"
)

// runOSI drives a cylinder flow for whole cycles and returns the mean OSI.
func runOSI(t *testing.T, wave Waveform) float64 {
	t.Helper()
	dom, err := geometry.Cylinder(20, 5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSparse(dom, Params{Tau: 0.9, UMax: 0.03, Pulsatile: wave})
	if err != nil {
		t.Fatal(err)
	}
	warm := 300
	if wave.Period > 0 {
		warm = 2 * int(wave.Period)
	}
	s.Run(warm)
	acc := NewOSIAccumulator(s)
	span := 200
	if wave.Period > 0 {
		span = int(wave.Period)
	}
	for i := 0; i < span; i++ {
		s.Step()
		acc.Accumulate()
	}
	mean, err := acc.MeanOSI()
	if err != nil {
		t.Fatal(err)
	}
	return mean
}

func TestOSISteadyIsNearZero(t *testing.T) {
	if osi := runOSI(t, Waveform{}); osi > 0.02 {
		t.Errorf("steady-flow OSI %v, want ~0", osi)
	}
}

func TestOSIReversingFlowIsElevated(t *testing.T) {
	steady := runOSI(t, Waveform{})
	reversing := runOSI(t, Waveform{Period: 120, Amplitude: 1.6})
	if reversing <= steady+0.05 {
		t.Errorf("reversing-flow OSI %v not above steady %v", reversing, steady)
	}
}

func TestOSIBeforeAccumulationErrors(t *testing.T) {
	dom, err := geometry.Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSparse(dom, Params{Tau: 0.9, UMax: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	acc := NewOSIAccumulator(s)
	if _, err := acc.OSI(); err == nil {
		t.Error("want error before accumulation")
	}
	if _, err := acc.MeanOSI(); err == nil {
		t.Error("want error before accumulation (mean)")
	}
}

func TestOSIBounds(t *testing.T) {
	dom, err := geometry.Cylinder(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSparse(dom, Params{Tau: 0.9, UMax: 0.03, Pulsatile: Waveform{Period: 60, Amplitude: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(120)
	acc := NewOSIAccumulator(s)
	for i := 0; i < 60; i++ {
		s.Step()
		acc.Accumulate()
	}
	sites, err := acc.OSI()
	if err != nil {
		t.Fatal(err)
	}
	for _, site := range sites {
		if site.OSI < 0 || site.OSI > 0.5+1e-12 {
			t.Fatalf("OSI %v outside [0, 0.5] at site %d", site.OSI, site.Site)
		}
		if site.MeanWSS < 0 {
			t.Fatalf("negative mean WSS at site %d", site.Site)
		}
	}
}

func TestWriteOSICSV(t *testing.T) {
	dom, err := geometry.Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSparse(dom, Params{Tau: 0.9, UMax: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(50)
	acc := NewOSIAccumulator(s)
	for i := 0; i < 10; i++ {
		s.Step()
		acc.Accumulate()
	}
	var buf bytes.Buffer
	if err := acc.WriteOSICSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "x,y,z,osi,mean_wss" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) < 10 {
		t.Errorf("only %d OSI rows", len(lines)-1)
	}
}
