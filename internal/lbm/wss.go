package lbm

import (
	"bufio"
	"fmt"
	"io"
	"math"
)

// Wall-interaction diagnostics. Wall shear stress is the hemodynamic
// quantity clinicians actually read off simulations like these (aneurysm
// and plaque risk correlate with it), so the solver exposes the
// momentum-exchange wall forces behind it.

// WallForce is the force the fluid exerts on the solid boundary through
// one wall-adjacent fluid site, from the momentum-exchange method: every
// bounce-back link transfers 2 f*_j c_j per timestep. Nx/Ny/Nz is the
// unit wall normal estimated from the solid-link directions (pointing
// into the solid).
type WallForce struct {
	Site       int // local site index
	X, Y, Z    int // lattice coordinates
	Fx, Fy, Fz float64
	Nx, Ny, Nz float64
}

// Magnitude returns the total force magnitude (normal plus tangential).
func (w WallForce) Magnitude() float64 {
	return math.Sqrt(w.Fx*w.Fx + w.Fy*w.Fy + w.Fz*w.Fz)
}

// Shear returns the tangential force magnitude — the wall shear stress
// indicator clinicians read (the normal component is local pressure, not
// shear).
func (w WallForce) Shear() float64 {
	fn := w.Fx*w.Nx + w.Fy*w.Ny + w.Fz*w.Nz
	tx := w.Fx - fn*w.Nx
	ty := w.Fy - fn*w.Ny
	tz := w.Fz - fn*w.Nz
	return math.Sqrt(tx*tx + ty*ty + tz*tz)
}

// NormalForce returns the signed normal component (positive pushes into
// the wall — local pressure loading).
func (w WallForce) NormalForce() float64 {
	return w.Fx*w.Nx + w.Fy*w.Ny + w.Fz*w.Nz
}

// WallForces computes the momentum-exchange force at every fluid site
// with at least one solid link, using the current distributions. The
// post-collision values are recomputed locally (wall sites only), so the
// call does not disturb the simulation state. At steady state the summed
// x-force balances the total driving force exactly — the force-balance
// identity the tests verify.
func (s *Sparse) WallForces() []WallForce {
	fx, fy, fz := s.Params.Force[0], s.Params.Force[1], s.Params.Force[2]
	var out []WallForce
	var cell [NQ]float64
	for si := 0; si < s.n; si++ {
		// Collect solid links first; most sites have none.
		hasSolid := false
		for q := 1; q < NQ; q++ {
			if s.neigh[si*NQ+q] == solidNeighbor {
				hasSolid = true
				break
			}
		}
		if !hasSolid {
			continue
		}
		base := si * NQ
		copy(cell[:], s.f[base:base+NQ])
		gx, gy, gz := fx, fy, fz
		if s.siteForce != nil {
			gx += s.siteForce[si*3]
			gy += s.siteForce[si*3+1]
			gz += s.siteForce[si*3+2]
		}
		// Post-collision state on a scratch copy, with the same operator
		// the timestep uses (BGK or TRT).
		CollideCell(&cell, s.Params, gx, gy, gz)
		var wf WallForce
		wf.Site = si
		wf.X, wf.Y, wf.Z = s.coords(si)
		var nxs, nys, nzs float64
		for q := 1; q < NQ; q++ {
			if s.neigh[si*NQ+q] != solidNeighbor {
				continue
			}
			nxs += float64(Cx[q])
			nys += float64(Cy[q])
			nzs += float64(Cz[q])
			// Subtract the rest-state (reference hydrostatic) part so the
			// force reflects flow-induced shear and dynamic pressure, not
			// the uniform background pressure rho_ref c_s^2 that a closed
			// wall carries even in quiescent fluid.
			dyn := 2 * (cell[q] - W[q])
			wf.Fx += dyn * float64(Cx[q])
			wf.Fy += dyn * float64(Cy[q])
			wf.Fz += dyn * float64(Cz[q])
		}
		if n := math.Sqrt(nxs*nxs + nys*nys + nzs*nzs); n > 0 {
			wf.Nx, wf.Ny, wf.Nz = nxs/n, nys/n, nzs/n
		}
		out = append(out, wf)
	}
	return out
}

// TotalDrag sums the wall forces — the net force the fluid exerts on the
// vessel wall.
func (s *Sparse) TotalDrag() (fx, fy, fz float64) {
	for _, w := range s.WallForces() {
		fx += w.Fx
		fy += w.Fy
		fz += w.Fz
	}
	return fx, fy, fz
}

// WriteWSSCSV writes the per-site wall forces as CSV rows
// (x, y, z, fx, fy, fz, magnitude) for downstream shear-stress analysis.
func (s *Sparse) WriteWSSCSV(w io.Writer) error {
	forces := s.WallForces()
	if len(forces) == 0 {
		return fmt.Errorf("lbm: domain %q has no wall-adjacent sites", s.Dom.Name)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "x,y,z,fx,fy,fz,shear,normal")
	for _, f := range forces {
		fmt.Fprintf(bw, "%d,%d,%d,%g,%g,%g,%g,%g\n",
			f.X, f.Y, f.Z, f.Fx, f.Fy, f.Fz, f.Shear(), f.NormalForce())
	}
	return bw.Flush()
}
