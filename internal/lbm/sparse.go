//lint:hot
package lbm

import (
	"fmt"
	"math"

	"repro/internal/geometry"
)

// Sparse is the HARVEY-like engine: it stores only fluid sites, addresses
// neighbors through an index table (indirect addressing), and runs the AB
// propagation pattern with an array-of-structures layout — the production
// configuration the paper benchmarks. The zero value is not usable; create
// instances with NewSparse.
type Sparse struct {
	Dom    *geometry.Domain
	Params Params

	n     int                  // number of fluid sites
	gidx  []int32              // local site -> global linear index (ascending)
	types []geometry.PointType // local site -> classification

	// neigh[s*NQ+q] is the local index of the site at x + c_q, or solidNeighbor
	// when that site is solid (bounce-back), for every fluid site s.
	neigh []int32

	f, fnew []float64 // n*NQ distributions, AOS layout

	// Inlet machinery: per-inlet-site prescribed Poiseuille velocity.
	inletU []float64 // len n, nonzero only at inlet sites
	// Outlet sites are relaxed to equilibrium at reference density.

	// lookup maps global linear indices to local site indices (-1 for
	// solid), kept for spatial queries (immersed-boundary coupling).
	lookup []int32

	// siteForce, when non-nil, holds a per-site body force density
	// (fx, fy, fz per site) applied during collision in addition to the
	// uniform Params.Force. The immersed boundary method writes it.
	siteForce []float64

	steps int // timesteps completed
}

const solidNeighbor = int32(-1)

// NewSparse builds a solver for the domain. It indexes fluid sites, wires
// the neighbor table (honoring PeriodicX), and initializes the fluid at
// rest with unit density.
func NewSparse(dom *geometry.Domain, p Params) (*Sparse, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Sparse{Dom: dom, Params: p}

	// Local indexing of fluid sites in global scan order. The site tables
	// are pre-sized from a counting pass so the append loop never regrows
	// (NewSparse is budgeted by cmd/lint -perfbudget).
	nFluid := 0
	for _, t := range dom.Types {
		if t.IsFluid() {
			nFluid++
		}
	}
	s.gidx = make([]int32, 0, nFluid)
	s.types = make([]geometry.PointType, 0, nFluid)
	local := make([]int32, dom.Sites())
	for i := range local {
		local[i] = solidNeighbor
	}
	s.lookup = local
	for z := 0; z < dom.NZ; z++ {
		for y := 0; y < dom.NY; y++ {
			for x := 0; x < dom.NX; x++ {
				g := dom.Index(x, y, z)
				if dom.Types[g].IsFluid() {
					local[g] = int32(s.n)
					s.gidx = append(s.gidx, int32(g))
					s.types = append(s.types, dom.Types[g])
					s.n++
				}
			}
		}
	}
	if s.n == 0 {
		return nil, fmt.Errorf("lbm: domain %q has no fluid sites", dom.Name)
	}

	// Neighbor table.
	s.neigh = make([]int32, s.n*NQ)
	for si := 0; si < s.n; si++ {
		x, y, z := s.coords(si)
		for q := 0; q < NQ; q++ {
			nx, ny, nz := x+Cx[q], y+Cy[q], z+Cz[q]
			if p.PeriodicX {
				if nx < 0 {
					nx += dom.NX
				} else if nx >= dom.NX {
					nx -= dom.NX
				}
			}
			if nx < 0 || nx >= dom.NX || ny < 0 || ny >= dom.NY || nz < 0 || nz >= dom.NZ ||
				!dom.Types[dom.Index(nx, ny, nz)].IsFluid() {
				s.neigh[si*NQ+q] = solidNeighbor
			} else {
				s.neigh[si*NQ+q] = local[dom.Index(nx, ny, nz)]
			}
		}
	}

	if err := s.buildInletProfile(); err != nil {
		return nil, err
	}

	// Rest-state initialization.
	s.f = make([]float64, s.n*NQ)
	s.fnew = make([]float64, s.n*NQ)
	var feq [NQ]float64
	Equilibrium(1, 0, 0, 0, &feq)
	for si := 0; si < s.n; si++ {
		copy(s.f[si*NQ:si*NQ+NQ], feq[:])
	}
	return s, nil
}

// coords recovers (x, y, z) of local site si from its global index.
func (s *Sparse) coords(si int) (x, y, z int) {
	g := int(s.gidx[si])
	x = g % s.Dom.NX
	y = (g / s.Dom.NX) % s.Dom.NY
	z = g / (s.Dom.NX * s.Dom.NY)
	return x, y, z
}

// buildInletProfile computes the Poiseuille velocity for every inlet site:
// u(r) = UMax * (1 - (r/R)^2) about the inlet centroid.
func (s *Sparse) buildInletProfile() error {
	s.inletU = make([]float64, s.n)
	var cy, cz float64
	count := 0
	for si := 0; si < s.n; si++ {
		if s.types[si] == geometry.Inlet {
			_, y, z := s.coords(si)
			cy += float64(y)
			cz += float64(z)
			count++
		}
	}
	if count == 0 {
		if s.Params.UMax > 0 && !s.Params.PeriodicX {
			return fmt.Errorf("lbm: UMax set but domain %q has no inlet sites", s.Dom.Name)
		}
		return nil
	}
	cy /= float64(count)
	cz /= float64(count)
	var rMax float64
	for si := 0; si < s.n; si++ {
		if s.types[si] == geometry.Inlet {
			_, y, z := s.coords(si)
			dy, dz := float64(y)-cy, float64(z)-cz
			rMax = math.Max(rMax, math.Sqrt(dy*dy+dz*dz))
		}
	}
	//lint:ignore floateq exact zero means the loop found no off-axis site
	if rMax == 0 {
		rMax = 1 // single-site inlet: flat profile
	}
	// R is half a site beyond the outermost fluid site (the true wall).
	r2 := (rMax + 0.5) * (rMax + 0.5)
	for si := 0; si < s.n; si++ {
		if s.types[si] == geometry.Inlet {
			_, y, z := s.coords(si)
			dy, dz := float64(y)-cy, float64(z)-cz
			s.inletU[si] = s.Params.UMax * (1 - (dy*dy+dz*dz)/r2)
		}
	}
	return nil
}

// N returns the number of fluid sites.
func (s *Sparse) N() int { return s.n }

// Steps returns the number of completed timesteps.
func (s *Sparse) Steps() int { return s.steps }

// Type returns the classification of local site si.
func (s *Sparse) Type(si int) geometry.PointType { return s.types[si] }

// Step advances the simulation one timestep: BGK collision with optional
// first-order body forcing, then pull streaming with halfway bounce-back
// on solid links, then boundary-condition overrides at inlets and outlets.
//
// The loops are shaped so the compiler can prove every index in bounds
// (gated by cmd/lint -perfbudget): fixed-stride NQ-wide windows advance
// over the site arrays (w = w[NQ:] — slice bounds are checked against
// cap, and prove only eliminates the check when the window length is
// compared directly), and each neighbor gather is guarded by one
// unsigned compare that doubles as the solid test, since solidNeighbor
// converts to a huge uint.
func (s *Sparse) Step() {
	fx, fy, fz := s.Params.Force[0], s.Params.Force[1], s.Params.Force[2]

	// Collision, in place on s.f, one window per site.
	f := s.f
	sf := s.siteForce
	w := f
	for len(w) >= NQ {
		cell := (*[NQ]float64)(w[:NQ])
		w = w[NQ:]
		gx, gy, gz := fx, fy, fz
		if len(sf) >= 3 {
			gx += sf[0]
			gy += sf[1]
			gz += sf[2]
			sf = sf[3:]
		}
		CollideCell(cell, s.Params, gx, gy, gz)
	}

	// Pull streaming into s.fnew: f_q(x, t+1) = f*_q(x - c_q, t); when the
	// upstream site is solid, halfway bounce-back reads the opposite
	// distribution of the local cell. Direction pairs are unrolled so the
	// opposite index is a constant, not an Opp load the prover can't bound.
	fnew := s.fnew
	fw, nw, ww := f, fnew, s.neigh
	for len(fw) >= NQ && len(nw) >= NQ && len(ww) >= NQ {
		lw := (*[NQ]float64)(fw[:NQ])
		out := (*[NQ]float64)(nw[:NQ])
		nb := (*[NQ]int32)(ww[:NQ])
		fw, nw, ww = fw[NQ:], nw[NQ:], ww[NQ:]
		out[0] = lw[0]
		sparsePull(out, lw, f, nb, 1, 2)
		sparsePull(out, lw, f, nb, 2, 1)
		sparsePull(out, lw, f, nb, 3, 4)
		sparsePull(out, lw, f, nb, 4, 3)
		sparsePull(out, lw, f, nb, 5, 6)
		sparsePull(out, lw, f, nb, 6, 5)
		sparsePull(out, lw, f, nb, 7, 8)
		sparsePull(out, lw, f, nb, 8, 7)
		sparsePull(out, lw, f, nb, 9, 10)
		sparsePull(out, lw, f, nb, 10, 9)
		sparsePull(out, lw, f, nb, 11, 12)
		sparsePull(out, lw, f, nb, 12, 11)
		sparsePull(out, lw, f, nb, 13, 14)
		sparsePull(out, lw, f, nb, 14, 13)
		sparsePull(out, lw, f, nb, 15, 16)
		sparsePull(out, lw, f, nb, 16, 15)
		sparsePull(out, lw, f, nb, 17, 18)
		sparsePull(out, lw, f, nb, 18, 17)
	}

	// Boundary conditions by equilibrium override.
	if !s.Params.PeriodicX {
		var bc [NQ]float64
		scale := s.Params.Pulsatile.Scale(s.steps)
		inletU := s.inletU
		w := fnew
		for si, t := range s.types {
			if len(w) < NQ || si >= len(inletU) {
				break
			}
			cw := (*[NQ]float64)(w[:NQ])
			w = w[NQ:]
			switch t {
			case geometry.Inlet:
				Equilibrium(1, inletU[si]*scale, 0, 0, &bc)
				*cw = bc
			case geometry.Outlet:
				_, ux, uy, uz := Moments(cw)
				Equilibrium(1, ux, uy, uz, &bc) // zero-pressure: rho pinned to 1
				*cw = bc
			}
		}
	}

	s.f, s.fnew = s.fnew, s.f
	s.steps++
}

// sparsePull streams direction q into out: the upstream site along -c_q
// is the neighbor recorded at the opposite slot oq; a solid upstream
// bounces the local opposite distribution back instead. The unsigned
// compare is both the solid test and the bounds proof, so the gather
// carries no bounds check.
func sparsePull(out, lw *[NQ]float64, f []float64, nb *[NQ]int32, q, oq int) {
	if off := int(nb[oq])*NQ + q; uint(off) < uint(len(f)) {
		out[q] = f[off]
	} else {
		out[q] = lw[oq]
	}
}

// Run advances the given number of timesteps.
func (s *Sparse) Run(steps int) {
	for i := 0; i < steps; i++ {
		s.Step()
	}
}

// Macro returns density and velocity at local site si.
func (s *Sparse) Macro(si int) (rho, ux, uy, uz float64) {
	var cell [NQ]float64
	copy(cell[:], s.f[si*NQ:si*NQ+NQ])
	return Moments(&cell)
}

// TotalMass returns the sum of density over all fluid sites. In periodic
// force-driven runs mass is conserved to round-off; with open boundaries
// it approaches a steady value.
func (s *Sparse) TotalMass() float64 {
	var m float64
	for i := range s.f {
		m += s.f[i]
	}
	return m
}

// MaxSpeed returns the largest velocity magnitude over fluid sites, a
// cheap stability probe (blow-ups show up as speeds near or above 1).
func (s *Sparse) MaxSpeed() float64 {
	var vmax float64
	for si := 0; si < s.n; si++ {
		_, ux, uy, uz := s.Macro(si)
		v := math.Sqrt(ux*ux + uy*uy + uz*uz)
		vmax = math.Max(vmax, v)
	}
	return vmax
}

// SiteCoords exposes the lattice coordinates of local site si, for
// validation against analytic profiles.
func (s *Sparse) SiteCoords(si int) (x, y, z int) { return s.coords(si) }

// SiteAt returns the local index of the fluid site at lattice coordinates
// (x, y, z), or -1 when the site is solid or outside the domain. It backs
// the spatial queries of the immersed-boundary coupling.
func (s *Sparse) SiteAt(x, y, z int) int {
	if x < 0 || x >= s.Dom.NX || y < 0 || y >= s.Dom.NY || z < 0 || z >= s.Dom.NZ {
		return -1
	}
	return int(s.lookup[s.Dom.Index(x, y, z)])
}

// EnableSiteForces allocates (once) the per-site body-force field used by
// immersed-boundary coupling and returns it as a flat [n*3] slice of
// (fx, fy, fz) triplets. Callers typically zero and refill it each step.
func (s *Sparse) EnableSiteForces() []float64 {
	if s.siteForce == nil {
		s.siteForce = make([]float64, s.n*3)
	}
	return s.siteForce
}

// ClearSiteForces zeroes the per-site force field if enabled.
func (s *Sparse) ClearSiteForces() {
	for i := range s.siteForce {
		s.siteForce[i] = 0
	}
}

// Cell returns a copy of the distribution at local site si.
func (s *Sparse) Cell(si int) (c [NQ]float64) {
	copy(c[:], s.f[si*NQ:si*NQ+NQ])
	return c
}

// SetCell overwrites the distribution at local site si.
func (s *Sparse) SetCell(si int, c [NQ]float64) {
	copy(s.f[si*NQ:si*NQ+NQ], c[:])
}

// InletVelocity returns the prescribed Poiseuille axial velocity at local
// site si (zero for non-inlet sites).
func (s *Sparse) InletVelocity(si int) float64 { return s.inletU[si] }

// MFLUPS returns millions of fluid lattice-point updates per second for a
// run of the given number of steps and wall-clock seconds (Eq. 7).
func MFLUPS(points, steps int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(points) * float64(steps) / seconds / 1e6
}
