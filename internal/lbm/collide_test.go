package lbm

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/fit"
	"repro/internal/geometry"
)

func TestCollisionOpString(t *testing.T) {
	if BGK.String() != "BGK" || TRT.String() != "TRT" {
		t.Error("collision operator names wrong")
	}
}

func TestValidateCollision(t *testing.T) {
	bad := Params{Tau: 0.9, Collision: CollisionOp(9)}
	if err := bad.Validate(); err == nil {
		t.Error("want error for unknown collision operator")
	}
	good := Params{Tau: 0.9, Collision: TRT}
	if err := good.Validate(); err != nil {
		t.Errorf("TRT params rejected: %v", err)
	}
}

func TestCollideCellConservation(t *testing.T) {
	// Both operators conserve mass and (without forcing) momentum.
	for _, op := range []CollisionOp{BGK, TRT} {
		var cell [NQ]float64
		Equilibrium(1.05, 0.02, -0.01, 0.005, &cell)
		cell[3] += 0.01 // perturb off equilibrium
		cell[8] -= 0.004
		rho0, ux0, uy0, uz0 := Moments(&cell)
		work := cell
		CollideCell(&work, Params{Tau: 0.8, Collision: op}, 0, 0, 0)
		rho1, ux1, uy1, uz1 := Moments(&work)
		if math.Abs(rho1-rho0) > 1e-14 {
			t.Errorf("%v: mass not conserved: %v -> %v", op, rho0, rho1)
		}
		for _, d := range []float64{ux1 - ux0, uy1 - uy0, uz1 - uz0} {
			if math.Abs(d) > 1e-13 {
				t.Errorf("%v: momentum not conserved (delta %v)", op, d)
			}
		}
	}
}

func TestCollideCellEquilibriumIsFixedPoint(t *testing.T) {
	for _, op := range []CollisionOp{BGK, TRT} {
		var cell [NQ]float64
		Equilibrium(1, 0.03, 0.01, -0.02, &cell)
		work := cell
		CollideCell(&work, Params{Tau: 0.9, Collision: op}, 0, 0, 0)
		for q := 0; q < NQ; q++ {
			if math.Abs(work[q]-cell[q]) > 1e-14 {
				t.Fatalf("%v: equilibrium not a fixed point at q=%d", op, q)
			}
		}
	}
}

func TestTRTPoiseuilleViscosity(t *testing.T) {
	// TRT with the magic parameter must recover the analytic Poiseuille
	// curvature at least as accurately as BGK.
	const g = 2e-6
	run := func(op CollisionOp) float64 {
		dom, err := geometry.Cylinder(8, 6)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSparse(dom, Params{Tau: 0.9, PeriodicX: true,
			Force: [3]float64{g, 0, 0}, Collision: op})
		if err != nil {
			t.Fatal(err)
		}
		prev := -1.0
		for i := 0; i < 300; i++ {
			s.Run(100)
			var umax float64
			for si := 0; si < s.N(); si++ {
				_, ux, _, _ := s.Macro(si)
				umax = math.Max(umax, ux)
			}
			if math.Abs(umax-prev) < 1e-12 {
				break
			}
			prev = umax
		}
		cy := float64(dom.NY-1) / 2
		cz := float64(dom.NZ-1) / 2
		var r2s, us []float64
		for si := 0; si < s.N(); si++ {
			x, y, z := s.SiteCoords(si)
			if x != dom.NX/2 {
				continue
			}
			dy, dz := float64(y)-cy, float64(z)-cz
			if dy*dy+dz*dz > 4.5*4.5 {
				continue
			}
			_, ux, _, _ := s.Macro(si)
			r2s = append(r2s, dy*dy+dz*dz)
			us = append(us, ux)
		}
		line, err := fit.LinearLSQ(r2s, us)
		if err != nil {
			t.Fatal(err)
		}
		nuFit := -g / (4 * line.Slope)
		return math.Abs(nuFit-s.Params.Viscosity()) / s.Params.Viscosity()
	}
	bgkErr := run(BGK)
	trtErr := run(TRT)
	if trtErr > 0.05 {
		t.Errorf("TRT viscosity error %v above 5%%", trtErr)
	}
	if trtErr > bgkErr*1.5 {
		t.Errorf("TRT (%v) markedly worse than BGK (%v)", trtErr, bgkErr)
	}
}

func TestTRTStableAtLowViscosity(t *testing.T) {
	// Near tau = 0.5 BGK develops oscillations; TRT's magic parameter
	// keeps the run bounded. Only stability is asserted, not accuracy.
	dom, err := geometry.Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSparse(dom, Params{Tau: 0.51, PeriodicX: true,
		Force: [3]float64{1e-6, 0, 0}, Collision: TRT})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(400)
	if v := s.MaxSpeed(); math.IsNaN(v) || v > 0.5 {
		t.Errorf("TRT unstable at tau=0.51: max speed %v", v)
	}
}

func TestTRTInletFlowStable(t *testing.T) {
	dom, err := geometry.Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Tau: 0.9, UMax: 0.02, Collision: TRT}
	s, err := NewSparse(dom, p)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(20)
	if v := s.MaxSpeed(); v > 0.1 {
		t.Fatalf("TRT inlet flow unstable: %v", v)
	}
}

func TestProxyRejectsTRT(t *testing.T) {
	_, err := NewProxy(KernelConfig{Layout: AOS, Pattern: AB}, 10, 4,
		Params{Tau: 0.9, Collision: TRT})
	if err == nil {
		t.Error("proxy should reject TRT")
	}
}

func TestCheckpointPersistsCollisionOp(t *testing.T) {
	dom, err := geometry.Cylinder(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Tau: 0.9, UMax: 0.02, Collision: TRT}
	s, err := NewSparse(dom, p)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	dom2, err := geometry.Cylinder(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSparse(dom2, Params{Tau: 0.9, UMax: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.Params.Collision != TRT {
		t.Errorf("collision operator not restored: %v", s2.Params.Collision)
	}
}
