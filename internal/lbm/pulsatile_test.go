package lbm

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/geometry"
)

func TestWaveformScale(t *testing.T) {
	off := Waveform{}
	for _, step := range []int{0, 7, 100} {
		if off.Scale(step) != 1 {
			t.Errorf("disabled waveform scale at %d = %v", step, off.Scale(step))
		}
	}
	w := Waveform{Period: 100, Amplitude: 0.5}
	if got := w.Scale(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("Scale(0) = %v, want 1", got)
	}
	if got := w.Scale(25); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Scale(quarter period) = %v, want 1.5", got)
	}
	if got := w.Scale(75); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Scale(three quarters) = %v, want 0.5", got)
	}
	// Periodicity.
	if math.Abs(w.Scale(10)-w.Scale(110)) > 1e-12 {
		t.Error("waveform not periodic")
	}
}

func TestPulsatileValidation(t *testing.T) {
	bad := []Params{
		{Tau: 0.9, UMax: 0.05, Pulsatile: Waveform{Period: -1}},
		{Tau: 0.9, UMax: 0.05, Pulsatile: Waveform{Period: 100, Amplitude: -0.1}},
		{Tau: 0.9, UMax: 0.05, Pulsatile: Waveform{Period: 100, Amplitude: 2.5}},
		{Tau: 0.9, UMax: 0.2, Pulsatile: Waveform{Period: 100, Amplitude: 0.9}}, // peak 0.38
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad pulsatile params %d accepted", i)
		}
	}
	good := Params{Tau: 0.9, UMax: 0.05, Pulsatile: Waveform{Period: 200, Amplitude: 0.5}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid pulsatile params rejected: %v", err)
	}
}

// inletFlux sums the axial velocity over the inlet plane.
func inletFlux(s *Sparse) float64 {
	var flux float64
	for si := 0; si < s.N(); si++ {
		if s.Type(si) == geometry.Inlet {
			_, ux, _, _ := s.Macro(si)
			flux += ux
		}
	}
	return flux
}

func TestPulsatileFlowOscillates(t *testing.T) {
	dom, err := geometry.Cylinder(24, 5)
	if err != nil {
		t.Fatal(err)
	}
	const period = 120.0
	s, err := NewSparse(dom, Params{
		Tau: 0.9, UMax: 0.03,
		Pulsatile: Waveform{Period: period, Amplitude: 0.6},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let the cycle establish, then sample one full period.
	s.Run(2 * int(period))
	var fluxes []float64
	for i := 0; i < int(period); i++ {
		s.Step()
		fluxes = append(fluxes, inletFlux(s))
	}
	min, max := fluxes[0], fluxes[0]
	for _, f := range fluxes {
		min = math.Min(min, f)
		max = math.Max(max, f)
	}
	if max <= 0 {
		t.Fatal("no forward flow")
	}
	// Amplitude 0.6: peak/trough inlet flux ratio approaches 1.6/0.4 = 4.
	if ratio := max / min; ratio < 2 {
		t.Errorf("flux ratio %v shows no meaningful pulsatility (min %v, max %v)", ratio, min, max)
	}
	// The cycle repeats: flux one period apart matches closely.
	s.Run(int(period))
	if again := inletFlux(s); math.Abs(again-fluxes[len(fluxes)-1]) > 0.05*math.Abs(fluxes[len(fluxes)-1]) {
		t.Errorf("cycle does not repeat: %v vs %v", again, fluxes[len(fluxes)-1])
	}
	if v := s.MaxSpeed(); v > 0.2 {
		t.Errorf("pulsatile run unstable: %v", v)
	}
}

func TestPulsatileCheckpointRoundTrip(t *testing.T) {
	dom, err := geometry.Cylinder(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Tau: 0.9, UMax: 0.03, Pulsatile: Waveform{Period: 50, Amplitude: 0.4}}
	s, err := NewSparse(dom, p)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(37) // mid-cycle
	buf := &bytes.Buffer{}
	if err := s.Checkpoint(buf); err != nil {
		t.Fatal(err)
	}
	dom2, err := geometry.Cylinder(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSparse(dom2, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Restore(buf); err != nil {
		t.Fatal(err)
	}
	if s2.Params.Pulsatile != p.Pulsatile {
		t.Errorf("waveform not restored: %+v", s2.Params.Pulsatile)
	}
	// Continued pulsatile evolution matches bitwise (phase preserved).
	s.Run(25)
	s2.Run(25)
	for si := 0; si < s.N(); si++ {
		if s.Cell(si) != s2.Cell(si) {
			t.Fatal("post-restore pulsatile trajectory diverges")
		}
	}
}
