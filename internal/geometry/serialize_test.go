package geometry

import (
	"bytes"
	"testing"
)

func TestDomainRoundTrip(t *testing.T) {
	orig, err := Aorta(5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	// RLE should be much smaller than one byte per site.
	if buf.Len() >= orig.Sites() {
		t.Errorf("RLE file %d bytes not smaller than %d raw sites", buf.Len(), orig.Sites())
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.NX != orig.NX || got.NY != orig.NY || got.NZ != orig.NZ {
		t.Fatalf("identity mismatch: %+v", got)
	}
	for i := range orig.Types {
		if got.Types[i] != orig.Types[i] {
			t.Fatalf("type mismatch at site %d", i)
		}
	}
	// The restored domain produces identical stats.
	if got.Stats() != orig.Stats() {
		t.Errorf("stats differ: %+v vs %+v", got.Stats(), orig.Stats())
	}
}

func TestReadRejectsCorrupt(t *testing.T) {
	orig, err := Cylinder(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("want error for bad magic")
	}
	// Truncated stream.
	if _, err := Read(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Error("want error for truncation")
	}
	// Invalid point type inside a run: find the first run byte (after the
	// 5-uint64 header + name) and corrupt it.
	bad = append([]byte(nil), good...)
	runStart := 5*8 + len(orig.Name)
	bad[runStart] = 200
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("want error for invalid point type")
	}
	// Empty input.
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("want error for empty input")
	}
}
