package geometry

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointTypeString(t *testing.T) {
	cases := map[PointType]string{
		Solid: "solid", Bulk: "bulk", Wall: "wall", Inlet: "inlet", Outlet: "outlet",
		PointType(99): "PointType(99)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestIsFluid(t *testing.T) {
	if Solid.IsFluid() {
		t.Error("Solid.IsFluid() = true")
	}
	for _, p := range []PointType{Bulk, Wall, Inlet, Outlet} {
		if !p.IsFluid() {
			t.Errorf("%v.IsFluid() = false", p)
		}
	}
}

func TestAtOutOfRangeIsSolid(t *testing.T) {
	d, err := Cylinder(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range [][3]int{{-1, 0, 0}, {d.NX, 0, 0}, {0, -1, 0}, {0, d.NY, 0}, {0, 0, -1}, {0, 0, d.NZ}} {
		if got := d.At(c[0], c[1], c[2]); got != Solid {
			t.Errorf("At(%v) = %v, want Solid", c, got)
		}
	}
}

func TestIndexRoundTrip(t *testing.T) {
	d := &Domain{NX: 5, NY: 7, NZ: 3}
	seen := map[int]bool{}
	for z := 0; z < 3; z++ {
		for y := 0; y < 7; y++ {
			for x := 0; x < 5; x++ {
				i := d.Index(x, y, z)
				if i < 0 || i >= 105 || seen[i] {
					t.Fatalf("Index(%d,%d,%d) = %d invalid or duplicate", x, y, z, i)
				}
				seen[i] = true
			}
		}
	}
}

func TestCylinderBasics(t *testing.T) {
	d, err := Cylinder(40, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Fluid == 0 || s.Bulk == 0 || s.Wall == 0 {
		t.Fatalf("cylinder has empty classes: %+v", s)
	}
	if s.Inlet == 0 || s.Outlet == 0 {
		t.Fatalf("cylinder missing ports: %+v", s)
	}
	// Fluid volume should be near pi*r^2*L.
	want := math.Pi * 8 * 8 * 40
	got := float64(s.Fluid)
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("fluid volume %v deviates from analytic %v", got, want)
	}
	// All inlet sites sit on x=0; all outlet sites on x=NX-1.
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			for x := 1; x < d.NX-1; x++ {
				if tp := d.At(x, y, z); tp == Inlet || tp == Outlet {
					t.Fatalf("port site in interior at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

func TestCylinderTooSmall(t *testing.T) {
	if _, err := Cylinder(2, 8); err == nil {
		t.Error("want error for nx too small")
	}
	if _, err := Cylinder(40, 1); err == nil {
		t.Error("want error for radius too small")
	}
}

func TestWallSeparatesFluidFromSolid(t *testing.T) {
	// Invariant: no bulk site touches solid in the 26-neighborhood.
	d, err := Cylinder(24, 6)
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			for x := 0; x < d.NX; x++ {
				if d.At(x, y, z) != Bulk {
					continue
				}
				if hasSolidNeighbor(d, x, y, z) {
					t.Fatalf("bulk site (%d,%d,%d) touches solid", x, y, z)
				}
			}
		}
	}
}

func TestAortaBasics(t *testing.T) {
	d, err := Aorta(6)
	if err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Bulk == 0 || s.Wall == 0 || s.Inlet == 0 || s.Outlet == 0 {
		t.Fatalf("aorta missing classes: %+v", s)
	}
	// The aorta is a sparse shape in its bounding box.
	if s.FluidFraction > 0.5 {
		t.Errorf("aorta fluid fraction %v suspiciously dense", s.FluidFraction)
	}
}

func TestAortaTooSmall(t *testing.T) {
	if _, err := Aorta(1); err == nil {
		t.Error("want error for tiny scale")
	}
}

func TestCerebralBasics(t *testing.T) {
	d, err := Cerebral(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Bulk == 0 || s.Wall == 0 || s.Inlet == 0 || s.Outlet == 0 {
		t.Fatalf("cerebral missing classes: %+v", s)
	}
}

func TestCerebralValidation(t *testing.T) {
	if _, err := Cerebral(1, 3); err == nil {
		t.Error("want error for tiny scale")
	}
	if _, err := Cerebral(3, 0); err == nil {
		t.Error("want error for zero depth")
	}
	if _, err := Cerebral(3, 9); err == nil {
		t.Error("want error for absurd depth")
	}
}

func TestGeometryCharacterOrdering(t *testing.T) {
	// The paper's Figure 2 narrative: the cylinder packs fluid efficiently
	// (high bulk:wall, high fluid fraction); the cerebral tree is thin
	// vessels (low bulk:wall). The synthetic shapes must preserve this
	// ordering since it drives the communication and memory stories.
	cyl, err := Cylinder(48, 10)
	if err != nil {
		t.Fatal(err)
	}
	cer, err := Cerebral(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	sc, se := cyl.Stats(), cer.Stats()
	if sc.BulkWallRatio <= se.BulkWallRatio {
		t.Errorf("bulk:wall cylinder (%v) must exceed cerebral (%v)", sc.BulkWallRatio, se.BulkWallRatio)
	}
	if sc.FluidFraction <= se.FluidFraction {
		t.Errorf("fluid fraction cylinder (%v) must exceed cerebral (%v)", sc.FluidFraction, se.FluidFraction)
	}
}

func TestBuildValidation(t *testing.T) {
	caps := []Capsule{{A: Vec3{0, 4, 4}, B: Vec3{9, 4, 4}, R: 3}}
	if _, err := Build("x", 0, 10, 10, caps, nil); err == nil {
		t.Error("want error for zero dimension")
	}
	if _, err := Build("x", 10, 10, 10, nil, nil); err == nil {
		t.Error("want error for no capsules")
	}
	bad := []Port{{XPlane: 0, Center: Vec3{0, 4, 4}, Radius: 3, Type: Bulk}}
	if _, err := Build("x", 10, 10, 10, caps, bad); err == nil {
		t.Error("want error for non-port type")
	}
	out := []Port{{XPlane: 50, Center: Vec3{0, 4, 4}, Radius: 3, Type: Inlet}}
	if _, err := Build("x", 10, 10, 10, caps, out); err == nil {
		t.Error("want error for plane outside domain")
	}
	miss := []Port{{XPlane: 0, Center: Vec3{0, 100, 100}, Radius: 0.5, Type: Inlet}}
	if _, err := Build("x", 10, 10, 10, caps, miss); err == nil {
		t.Error("want error for port that marks nothing")
	}
}

func TestCapsuleDistance(t *testing.T) {
	c := Capsule{A: Vec3{0, 0, 0}, B: Vec3{10, 0, 0}, R: 2}
	if d := c.distance(Vec3{5, 3, 0}); math.Abs(d-3) > 1e-12 {
		t.Errorf("distance = %v, want 3", d)
	}
	// Beyond segment ends the distance is to the endpoint.
	if d := c.distance(Vec3{-3, 4, 0}); math.Abs(d-5) > 1e-12 {
		t.Errorf("distance = %v, want 5", d)
	}
	// Degenerate capsule (point).
	p := Capsule{A: Vec3{1, 1, 1}, B: Vec3{1, 1, 1}, R: 1}
	if d := p.distance(Vec3{1, 1, 3}); math.Abs(d-2) > 1e-12 {
		t.Errorf("point-capsule distance = %v, want 2", d)
	}
}

func TestCapsuleContainsProperty(t *testing.T) {
	// Any point within R of the segment midpoint is inside the capsule.
	c := Capsule{A: Vec3{0, 0, 0}, B: Vec3{20, 0, 0}, R: 5}
	f := func(dx, dy, dz float64) bool {
		v := Vec3{dx, dy, dz}
		n := v.Norm()
		if n == 0 || math.IsNaN(n) || math.IsInf(n, 0) {
			return true
		}
		scaled := Vec3{10 + v.X/n*4.9, v.Y / n * 4.9, v.Z / n * 4.9}
		return c.contains(scaled)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatsConsistency(t *testing.T) {
	d, err := Aorta(5)
	if err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Bulk+s.Wall+s.Inlet+s.Outlet != s.Fluid {
		t.Errorf("fluid count inconsistent: %+v", s)
	}
	if s.Fluid+s.Solid != d.Sites() {
		t.Errorf("site count inconsistent: %+v vs %d", s, d.Sites())
	}
}

func TestBoundRange(t *testing.T) {
	a, b := boundRange(-3.2, 5.7, 10)
	if a != 0 || b != 6 {
		t.Errorf("boundRange = %d,%d, want 0,6", a, b)
	}
	a, b = boundRange(8.1, 30, 10)
	if a != 8 || b != 9 {
		t.Errorf("boundRange = %d,%d, want 8,9", a, b)
	}
}

func TestStenosedCylinder(t *testing.T) {
	healthy, err := Cylinder(48, 8)
	if err != nil {
		t.Fatal(err)
	}
	sten, err := StenosedCylinder(48, 8, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	hs, ss := healthy.Stats(), sten.Stats()
	if ss.Fluid >= hs.Fluid {
		t.Errorf("stenosis did not remove lumen: %d vs %d", ss.Fluid, hs.Fluid)
	}
	if ss.Inlet == 0 || ss.Outlet == 0 {
		t.Error("stenosed vessel missing ports")
	}
	// The throat cross-section is the narrowest: count fluid per plane.
	planeFluid := func(d *Domain, x int) int {
		n := 0
		for z := 0; z < d.NZ; z++ {
			for y := 0; y < d.NY; y++ {
				if d.At(x, y, z).IsFluid() {
					n++
				}
			}
		}
		return n
	}
	mid := planeFluid(sten, 24)
	end := planeFluid(sten, 4)
	if mid >= end {
		t.Errorf("throat plane (%d points) not narrower than proximal (%d)", mid, end)
	}
	// Severity 0.5 halves the radius: throat area ~ a quarter.
	if ratio := float64(mid) / float64(end); ratio > 0.45 {
		t.Errorf("throat area ratio %v, want near 0.25", ratio)
	}
}

func TestStenosedCylinderValidation(t *testing.T) {
	if _, err := StenosedCylinder(4, 8, 0.5, 5); err == nil {
		t.Error("want error for tiny vessel")
	}
	if _, err := StenosedCylinder(48, 8, 0, 5); err == nil {
		t.Error("want error for zero severity")
	}
	if _, err := StenosedCylinder(48, 8, 0.95, 5); err == nil {
		t.Error("want error for near-total occlusion")
	}
	if _, err := StenosedCylinder(48, 8, 0.5, 0); err == nil {
		t.Error("want error for zero width")
	}
}

func TestBifurcation(t *testing.T) {
	d, err := Bifurcation(6)
	if err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Bulk == 0 || s.Wall == 0 || s.Inlet == 0 || s.Outlet == 0 {
		t.Fatalf("bifurcation missing classes: %+v", s)
	}
	// Downstream of the junction the cross-section splits into two lumens:
	// the fluid at a plane past the junction occupies two disjoint blobs.
	// Cheap proxy: total daughter area ~ 2 * (rd)^2 pi with rd = 6*2^(-1/3),
	// larger than the parent's area (Murray's law grows total area).
	plane := func(x int) int {
		n := 0
		for z := 0; z < d.NZ; z++ {
			for y := 0; y < d.NY; y++ {
				if d.At(x, y, z).IsFluid() {
					n++
				}
			}
		}
		return n
	}
	parent := plane(4)
	daughters := plane(d.NX - 6)
	if daughters <= parent {
		t.Errorf("daughter area %d not above parent %d (Murray's law)", daughters, parent)
	}
	if _, err := Bifurcation(1); err == nil {
		t.Error("want error for tiny scale")
	}
}

func TestBifurcationFlows(t *testing.T) {
	// The Y-branch must be simulable end to end (ports reachable).
	d, err := Bifurcation(5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Stats().Outlet < 10 {
		t.Errorf("only %d outlet sites; daughters may not reach the outlet plane", d.Stats().Outlet)
	}
}
