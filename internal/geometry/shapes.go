package geometry

import (
	"fmt"
	"math"
)

// Cylinder builds the idealized cylindrical vessel of Figure 2A: a straight
// tube along the x axis spanning the whole domain, inlet at x=0 and outlet
// at x=nx-1. It packs fluid efficiently into the bounding box (high bulk to
// wall ratio), which the paper identifies as the high-communication case:
// decomposed sub-domains have large contact surfaces.
//
// nx is the tube length in lattice sites; radius the tube radius. The
// cross-section dimensions are sized to fit the tube with a one-site solid
// margin so wall classification works at the rim.
func Cylinder(nx int, radius float64) (*Domain, error) {
	if nx < 4 || radius < 2 {
		return nil, fmt.Errorf("geometry: cylinder too small (nx=%d, r=%g)", nx, radius)
	}
	side := int(math.Ceil(2*radius)) + 5
	c := float64(side-1) / 2
	caps := []Capsule{{
		A: Vec3{-1, c, c}, // extend past the faces so ports are full disks
		B: Vec3{float64(nx), c, c},
		R: radius,
	}}
	ports := []Port{
		{XPlane: 0, Center: Vec3{0, c, c}, Radius: radius, Type: Inlet},
		{XPlane: nx - 1, Center: Vec3{0, c, c}, Radius: radius, Type: Outlet},
	}
	return Build("cylinder", nx, side, side, caps, ports)
}

// StenosedCylinder builds a cylindrical vessel with a smooth concentric
// narrowing at mid-length — the stenosis geometry behind fractional flow
// reserve assessment, the clinical application (FFR-CT) the paper's
// introduction motivates hemodynamic simulation with. severity is the
// fractional radius reduction at the throat (0.5 = half radius); width
// the axial half-width of the Gaussian narrowing in lattice sites.
func StenosedCylinder(nx int, radius, severity, width float64) (*Domain, error) {
	if nx < 8 || radius < 3 {
		return nil, fmt.Errorf("geometry: stenosed cylinder too small (nx=%d, r=%g)", nx, radius)
	}
	if severity <= 0 || severity >= 0.9 {
		return nil, fmt.Errorf("geometry: stenosis severity %g outside (0, 0.9)", severity)
	}
	if width <= 0 {
		return nil, fmt.Errorf("geometry: stenosis width %g must be positive", width)
	}
	side := int(math.Ceil(2*radius)) + 5
	c := float64(side-1) / 2
	mid := float64(nx-1) / 2
	// Chain of short capsules whose radius follows the Gaussian throat.
	var caps []Capsule
	prevX := -1.0
	prevR := radius
	for x := 0; x <= nx; x++ {
		fx := float64(x)
		r := radius * (1 - severity*math.Exp(-((fx-mid)*(fx-mid))/(2*width*width)))
		caps = append(caps, Capsule{
			A: Vec3{prevX, c, c},
			B: Vec3{fx, c, c},
			R: math.Min(prevR, r), // conservative: throat never widens a segment
		})
		prevX, prevR = fx, r
	}
	ports := []Port{
		{XPlane: 0, Center: Vec3{0, c, c}, Radius: radius, Type: Inlet},
		{XPlane: nx - 1, Center: Vec3{0, c, c}, Radius: radius, Type: Outlet},
	}
	d, err := Build("stenosis", nx, side, side, caps, ports)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// Aorta builds a synthetic aorta (Figure 2B): ascending segment, arch,
// descending segment, plus the three arch branches (brachiocephalic, left
// carotid, left subclavian analogues). Scale is the ascending-aorta radius
// in lattice sites; the rest of the anatomy is proportioned from it. The
// paper characterizes this as the typical-communication,
// typical-load-balance case.
func Aorta(scale float64) (*Domain, error) {
	if scale < 3 {
		return nil, fmt.Errorf("geometry: aorta scale %g too small", scale)
	}
	r := scale // ascending radius
	// Domain sized to hold the arch. x is the inferior-superior axis so the
	// inlet (aortic root) and outlet (descending aorta) sit on x planes.
	archR := 3.5 * r  // arch radius of curvature
	height := 7.0 * r // how far the arch rises along x
	nx := int(height + 2*r)
	ny := int(2*archR + 4*r)
	nz := int(2*r + 6)
	cz := float64(nz-1) / 2

	// Centerline: up (ascending), over (arch, a semicircle in the x-y
	// plane), down (descending). Sampled into short capsule segments.
	var caps []Capsule
	yAsc := 2 * r          // ascending limb y position
	yDesc := 2*r + 2*archR // descending limb y position
	top := height

	// Ascending aorta: from x=0 up to the arch start.
	caps = append(caps, Capsule{A: Vec3{-1, yAsc, cz}, B: Vec3{top - archR, yAsc, cz}, R: r})
	// Arch: semicircle from (top-archR, yAsc) to (top-archR, yDesc),
	// centered at (top-archR, (yAsc+yDesc)/2). Taper slightly.
	cyMid := (yAsc + yDesc) / 2
	const archSegs = 24
	prev := Vec3{top - archR, yAsc, cz}
	for i := 1; i <= archSegs; i++ {
		th := math.Pi * float64(i) / archSegs // 0..pi
		p := Vec3{
			X: top - archR + archR*math.Sin(th),
			Y: cyMid - archR*math.Cos(th),
			Z: cz,
		}
		taper := 1 - 0.15*float64(i)/archSegs
		caps = append(caps, Capsule{A: prev, B: p, R: r * taper})
		prev = p
	}
	// Descending aorta: back down to x=0 (outlet), tapered.
	caps = append(caps, Capsule{A: prev, B: Vec3{-1, yDesc, cz}, R: 0.85 * r})

	// Branch vessels off the arch crown, rising to the superior (x=nx-1)
	// face, as smaller outlets.
	branchR := 0.38 * r
	for i, frac := range []float64{0.30, 0.50, 0.70} {
		th := math.Pi * frac
		base := Vec3{
			X: top - archR + archR*math.Sin(th),
			Y: cyMid - archR*math.Cos(th),
			Z: cz,
		}
		tip := Vec3{X: float64(nx), Y: base.Y + float64(i-1)*2*branchR, Z: cz}
		caps = append(caps, Capsule{A: base, B: tip, R: branchR})
	}

	ports := []Port{
		{XPlane: 0, Center: Vec3{0, yAsc, cz}, Radius: r, Type: Inlet},
		{XPlane: 0, Center: Vec3{0, yDesc, cz}, Radius: 0.9 * r, Type: Outlet},
		// One catch-all outlet on the superior face covers all three
		// branch tips.
		{XPlane: nx - 1, Center: Vec3{0, cyMid, cz}, Radius: archR + 3*branchR, Type: Outlet},
	}
	return Build("aorta", nx, ny, nz, caps, ports)
}

// Bifurcation builds a symmetric Y-branch: a parent vessel that splits
// into two daughters whose radii follow Murray's law (r_d = r_p 2^{-1/3}),
// the canonical junction geometry of arterial trees and the simplest case
// where flow splitting and branch-point wall shear matter clinically.
func Bifurcation(scale float64) (*Domain, error) {
	if scale < 3 {
		return nil, fmt.Errorf("geometry: bifurcation scale %g too small", scale)
	}
	r := scale
	rd := r * math.Pow(2, -1.0/3.0)
	parentLen := 6 * r
	branchLen := 8 * r
	const spread = 0.45 // radians off axis per daughter

	nx := int(parentLen + branchLen*math.Cos(spread) + 2*r)
	ny := int(2*branchLen*math.Sin(spread) + 6*r)
	nz := int(2*r + 6)
	cy := float64(ny-1) / 2
	cz := float64(nz-1) / 2

	junction := Vec3{parentLen, cy, cz}
	caps := []Capsule{
		{A: Vec3{-1, cy, cz}, B: junction, R: r},
	}
	for s := -1.0; s <= 1.0; s += 2 {
		tip := Vec3{
			X: junction.X + branchLen*math.Cos(spread) + 2*r,
			Y: junction.Y + s*(branchLen+2*r)*math.Sin(spread),
			Z: cz,
		}
		caps = append(caps, Capsule{A: junction, B: tip, R: rd})
	}
	ports := []Port{
		{XPlane: 0, Center: Vec3{0, cy, cz}, Radius: r, Type: Inlet},
		{XPlane: nx - 1, Center: Vec3{0, cy, cz}, Radius: float64(ny), Type: Outlet},
	}
	return Build("bifurcation", nx, ny, nz, caps, ports)
}

// Cerebral builds a synthetic cerebral vasculature (Figure 2C): a
// deterministic bifurcating tree of thin vessels. Thin tubes spread over a
// large bounding box give many wall points, a low bulk-to-wall ratio and
// small communication cross-sections — the low-communication case in the
// paper, and the best-performing geometry because wall updates touch fewer
// bytes.
//
// scale is the root vessel radius in lattice sites; depth the number of
// bifurcation generations (4–6 is anatomy-like).
func Cerebral(scale float64, depth int) (*Domain, error) {
	if scale < 2.5 {
		return nil, fmt.Errorf("geometry: cerebral scale %g too small", scale)
	}
	if depth < 1 || depth > 8 {
		return nil, fmt.Errorf("geometry: cerebral depth %d outside [1,8]", depth)
	}
	segLen := 9 * scale
	// Estimate extent: the tree fans out in y/z while advancing in x.
	nx := int(segLen*float64(depth+1) + 4*scale)
	ny := int(segLen * math.Pow(1.55, float64(depth)))
	nz := ny
	cy, cz := float64(ny-1)/2, float64(nz-1)/2

	var caps []Capsule
	root := Vec3{-1, cy, cz}
	rootEnd := Vec3{segLen, cy, cz}
	caps = append(caps, Capsule{A: root, B: rootEnd, R: scale})
	grow(&caps, rootEnd, Vec3{1, 0, 0}, scale, segLen, depth, 0)

	ports := []Port{
		{XPlane: 0, Center: Vec3{0, cy, cz}, Radius: scale, Type: Inlet},
		{XPlane: nx - 1, Center: Vec3{0, cy, cz}, Radius: math.Max(float64(ny), float64(nz)), Type: Outlet},
	}
	return Build("cerebral", nx, ny, nz, caps, ports)
}

// grow recursively adds a bifurcating pair of child vessels. Murray's law
// thins children by 2^(-1/3); branch planes alternate between y and z so
// the tree fills three dimensions. gen counts completed generations.
func grow(caps *[]Capsule, base Vec3, dir Vec3, r, segLen float64, depth, gen int) {
	if gen >= depth || r < 1.6 {
		// Terminal vessel: run straight to beyond the +x face so it reaches
		// the outlet plane.
		tip := Vec3{base.X + 3*segLen, base.Y, base.Z}
		*caps = append(*caps, Capsule{A: base, B: tip, R: r})
		return
	}
	childR := r * math.Pow(2, -1.0/3.0)
	spread := 0.55 // radians off the parent direction
	for s := -1.0; s <= 1.0; s += 2 {
		var nd Vec3
		if gen%2 == 0 {
			nd = rotateY(dir, s*spread)
		} else {
			nd = rotateZ(dir, s*spread)
		}
		tip := Vec3{base.X + nd.X*segLen, base.Y + nd.Y*segLen, base.Z + nd.Z*segLen}
		*caps = append(*caps, Capsule{A: base, B: tip, R: childR})
		grow(caps, tip, nd, childR, segLen*0.92, depth, gen+1)
	}
}

// rotateY rotates v by angle a in the x-y plane.
func rotateY(v Vec3, a float64) Vec3 {
	c, s := math.Cos(a), math.Sin(a)
	return Vec3{c*v.X - s*v.Y, s*v.X + c*v.Y, v.Z}
}

// rotateZ rotates v by angle a in the x-z plane.
func rotateZ(v Vec3, a float64) Vec3 {
	c, s := math.Cos(a), math.Sin(a)
	return Vec3{c*v.X - s*v.Z, v.Y, s*v.X + c*v.Z}
}
