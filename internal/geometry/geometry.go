// Package geometry builds the voxelized simulation domains used in the
// paper's experiments: an idealized cylindrical vessel, an aorta, and a
// cerebral vasculature (Figure 2). The anatomical geometries in the paper
// come from the Open Source Medical Software repository; this reproduction
// synthesizes procedural equivalents that match the three properties the
// experiments exercise — bulk-to-wall fluid point ratio, decomposability /
// load balance, and communication surface area — as documented in
// DESIGN.md.
//
// A Domain classifies every lattice site as solid, bulk fluid, wall fluid
// (fluid adjacent to solid, which HARVEY updates with fewer memory
// accesses), inlet, or outlet.
package geometry

import (
	"fmt"
	"math"
)

// PointType classifies a lattice site.
type PointType uint8

// Lattice site classifications.
const (
	Solid  PointType = iota // outside the vessel; not simulated
	Bulk                    // interior fluid, full D3Q19 update
	Wall                    // fluid adjacent to solid; bounce-back, fewer accesses
	Inlet                   // velocity (Poiseuille) boundary
	Outlet                  // zero-pressure boundary
)

// String returns a short name for the point type.
func (p PointType) String() string {
	switch p {
	case Solid:
		return "solid"
	case Bulk:
		return "bulk"
	case Wall:
		return "wall"
	case Inlet:
		return "inlet"
	case Outlet:
		return "outlet"
	default:
		return fmt.Sprintf("PointType(%d)", uint8(p))
	}
}

// IsFluid reports whether the site participates in the LBM update.
func (p PointType) IsFluid() bool { return p != Solid }

// Domain is a voxelized simulation geometry.
type Domain struct {
	Name       string
	NX, NY, NZ int
	Types      []PointType // len NX*NY*NZ, indexed via Index
}

// Index returns the linear index of site (x, y, z). Sites are stored
// x-fastest so that x-slabs are contiguous, matching the slab
// decomposition used for parallel runs.
func (d *Domain) Index(x, y, z int) int { return (z*d.NY+y)*d.NX + x }

// At returns the type of site (x, y, z). Out-of-range coordinates are
// solid, so neighbor scans need no bounds checks.
func (d *Domain) At(x, y, z int) PointType {
	if x < 0 || x >= d.NX || y < 0 || y >= d.NY || z < 0 || z >= d.NZ {
		return Solid
	}
	return d.Types[d.Index(x, y, z)]
}

// Sites returns the total number of lattice sites, fluid and solid.
func (d *Domain) Sites() int { return d.NX * d.NY * d.NZ }

// Stats summarizes a domain's composition — the levers through which
// geometry affects performance in the paper's analysis.
type Stats struct {
	Bulk, Wall, Inlet, Outlet, Solid int
	Fluid                            int     // Bulk + Wall + Inlet + Outlet
	BulkWallRatio                    float64 // bulk : wall fluid points
	FluidFraction                    float64 // fluid sites / all sites (packing efficiency)
}

// Stats scans the domain and tallies its composition.
func (d *Domain) Stats() Stats {
	var s Stats
	for _, t := range d.Types {
		switch t {
		case Bulk:
			s.Bulk++
		case Wall:
			s.Wall++
		case Inlet:
			s.Inlet++
		case Outlet:
			s.Outlet++
		default:
			s.Solid++
		}
	}
	s.Fluid = s.Bulk + s.Wall + s.Inlet + s.Outlet
	if s.Wall > 0 {
		s.BulkWallRatio = float64(s.Bulk) / float64(s.Wall)
	}
	if n := d.Sites(); n > 0 {
		s.FluidFraction = float64(s.Fluid) / float64(n)
	}
	return s
}

// Vec3 is a point in continuous lattice coordinates.
type Vec3 struct{ X, Y, Z float64 }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Capsule is a line segment with radius: the voxelizer's primitive. Any
// tubular vessel is a chain of capsules along its centerline.
type Capsule struct {
	A, B Vec3
	R    float64
}

// distance returns the distance from p to the capsule's axis segment.
func (c Capsule) distance(p Vec3) float64 {
	ab := c.B.Sub(c.A)
	ap := p.Sub(c.A)
	den := ab.Dot(ab)
	t := 0.0
	if den > 0 {
		t = ap.Dot(ab) / den
	}
	t = math.Max(0, math.Min(1, t))
	closest := Vec3{c.A.X + t*ab.X, c.A.Y + t*ab.Y, c.A.Z + t*ab.Z}
	return p.Sub(closest).Norm()
}

// contains reports whether p lies inside the capsule.
func (c Capsule) contains(p Vec3) bool { return c.distance(p) <= c.R }

// Port marks an inlet or outlet: fluid sites on the given x-plane within
// Radius of Center become boundary sites of the given type.
type Port struct {
	XPlane int
	Center Vec3 // only Y and Z are used
	Radius float64
	Type   PointType // Inlet or Outlet
}

// Build voxelizes a set of capsules into a domain of the given size, then
// classifies fluid sites: sites adjacent (26-neighborhood, covering all
// D3Q19 directions) to solid become Wall; port planes become Inlet/Outlet.
func Build(name string, nx, ny, nz int, caps []Capsule, ports []Port) (*Domain, error) {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("geometry: non-positive dimensions %dx%dx%d", nx, ny, nz)
	}
	if len(caps) == 0 {
		return nil, fmt.Errorf("geometry: no capsules supplied for %q", name)
	}
	d := &Domain{Name: name, NX: nx, NY: ny, NZ: nz, Types: make([]PointType, nx*ny*nz)}

	// Pass 1: fluid mask. Limit each capsule's scan to its bounding box so
	// large domains stay affordable.
	for _, c := range caps {
		x0, x1 := boundRange(math.Min(c.A.X, c.B.X)-c.R, math.Max(c.A.X, c.B.X)+c.R, nx)
		y0, y1 := boundRange(math.Min(c.A.Y, c.B.Y)-c.R, math.Max(c.A.Y, c.B.Y)+c.R, ny)
		z0, z1 := boundRange(math.Min(c.A.Z, c.B.Z)-c.R, math.Max(c.A.Z, c.B.Z)+c.R, nz)
		for z := z0; z <= z1; z++ {
			for y := y0; y <= y1; y++ {
				for x := x0; x <= x1; x++ {
					if c.contains(Vec3{float64(x), float64(y), float64(z)}) {
						d.Types[d.Index(x, y, z)] = Bulk
					}
				}
			}
		}
	}

	// Pass 2: wall classification. A fluid site with any solid neighbor in
	// the 26-neighborhood is a wall site (bounce-back happens there).
	walls := make([]int, 0, nx*ny) // indices to flip after the scan
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if d.Types[d.Index(x, y, z)] != Bulk {
					continue
				}
				if hasSolidNeighbor(d, x, y, z) {
					walls = append(walls, d.Index(x, y, z))
				}
			}
		}
	}
	for _, i := range walls {
		d.Types[i] = Wall
	}

	// Pass 3: ports override wall/bulk classification on their planes.
	for _, p := range ports {
		if p.Type != Inlet && p.Type != Outlet {
			return nil, fmt.Errorf("geometry: port type %v is not Inlet or Outlet", p.Type)
		}
		if p.XPlane < 0 || p.XPlane >= nx {
			return nil, fmt.Errorf("geometry: port plane x=%d outside domain [0,%d)", p.XPlane, nx)
		}
		marked := 0
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				if d.At(p.XPlane, y, z) == Solid {
					continue
				}
				dy, dz := float64(y)-p.Center.Y, float64(z)-p.Center.Z
				if math.Sqrt(dy*dy+dz*dz) <= p.Radius {
					d.Types[d.Index(p.XPlane, y, z)] = p.Type
					marked++
				}
			}
		}
		if marked == 0 {
			return nil, fmt.Errorf("geometry: port at x=%d marked no sites", p.XPlane)
		}
	}
	return d, nil
}

// hasSolidNeighbor reports whether any 26-neighbor of (x,y,z) is solid.
func hasSolidNeighbor(d *Domain, x, y, z int) bool {
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				if d.At(x+dx, y+dy, z+dz) == Solid {
					return true
				}
			}
		}
	}
	return false
}

// boundRange clamps a continuous interval to valid integer site indices.
func boundRange(lo, hi float64, n int) (int, int) {
	a := int(math.Floor(lo))
	b := int(math.Ceil(hi))
	if a < 0 {
		a = 0
	}
	if b > n-1 {
		b = n - 1
	}
	return a, b
}
