package geometry

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// domainMagic identifies and versions the domain file format.
const domainMagic = uint64(0x564f58444f4d3156) // "VOXDOM1V"

// Write serializes the domain in a compact run-length-encoded binary
// format, so anatomies segmented elsewhere (or generated once at high
// resolution) can be shared between the tools instead of being rebuilt.
func (d *Domain) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	header := []uint64{domainMagic, uint64(d.NX), uint64(d.NY), uint64(d.NZ), uint64(len(d.Name))}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return fmt.Errorf("geometry: writing domain header: %w", err)
		}
	}
	if _, err := bw.WriteString(d.Name); err != nil {
		return fmt.Errorf("geometry: writing domain name: %w", err)
	}
	// Run-length encoding over the type array: (type byte, uint32 count).
	// Vascular domains are mostly long solid runs, so this shrinks files
	// by an order of magnitude over raw bytes.
	i := 0
	for i < len(d.Types) {
		t := d.Types[i]
		j := i + 1
		for j < len(d.Types) && d.Types[j] == t {
			j++
		}
		if err := bw.WriteByte(byte(t)); err != nil {
			return fmt.Errorf("geometry: writing run: %w", err)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(j-i)); err != nil {
			return fmt.Errorf("geometry: writing run length: %w", err)
		}
		i = j
	}
	return bw.Flush()
}

// Read deserializes a domain written by Write.
func Read(r io.Reader) (*Domain, error) {
	br := bufio.NewReader(r)
	var header [5]uint64
	if err := binary.Read(br, binary.LittleEndian, &header); err != nil {
		return nil, fmt.Errorf("geometry: reading domain header: %w", err)
	}
	if header[0] != domainMagic {
		return nil, fmt.Errorf("geometry: not a domain file (magic %x)", header[0])
	}
	nx, ny, nz := int(header[1]), int(header[2]), int(header[3])
	nameLen := int(header[4])
	const maxDim = 1 << 20
	if nx <= 0 || ny <= 0 || nz <= 0 || nx > maxDim || ny > maxDim || nz > maxDim || nameLen > 4096 {
		return nil, fmt.Errorf("geometry: implausible domain dimensions %dx%dx%d (name %d bytes)", nx, ny, nz, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("geometry: reading domain name: %w", err)
	}
	d := &Domain{Name: string(name), NX: nx, NY: ny, NZ: nz, Types: make([]PointType, nx*ny*nz)}
	i := 0
	for i < len(d.Types) {
		tb, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("geometry: reading run type: %w", err)
		}
		t := PointType(tb)
		if t > Outlet {
			return nil, fmt.Errorf("geometry: invalid point type %d in stream", tb)
		}
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("geometry: reading run length: %w", err)
		}
		if n == 0 || i+int(n) > len(d.Types) {
			return nil, fmt.Errorf("geometry: run of %d overflows domain at offset %d", n, i)
		}
		for k := 0; k < int(n); k++ {
			d.Types[i+k] = t
		}
		i += int(n)
	}
	return d, nil
}
