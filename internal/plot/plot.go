// Package plot renders data series as ASCII charts for terminal
// inspection of regenerated figures — strong-scaling curves, STREAM
// sweeps and model-vs-actual comparisons read at a glance without
// leaving the shell.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/units"
)

// Point is one (x, y) observation.
type Point struct {
	X, Y float64
}

// Series is one labeled curve.
type Series struct {
	Label  string
	Points []Point
}

// Options configures a chart.
type Options struct {
	Width  int  // plot area columns (default 64)
	Height int  // plot area rows (default 16)
	LogX   bool // logarithmic x axis (rank sweeps, message sizes)
	LogY   bool // logarithmic y axis
	Title  string
	XLabel string
	YLabel string
}

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '~', '^'}

// Render draws the series into a text chart. Series beyond the marker
// alphabet reuse markers cyclically. An empty input yields an error
// message rather than a panic, keeping CLI pipelines alive.
func Render(series []Series, opt Options) string {
	if opt.Width <= 0 {
		opt.Width = 64
	}
	if opt.Height <= 0 {
		opt.Height = 16
	}
	var pts int
	for _, s := range series {
		pts += len(s.Points)
	}
	if pts == 0 {
		return "(no data to plot)\n"
	}

	tx := transform(opt.LogX)
	ty := transform(opt.LogY)

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			x, okx := tx(p.X)
			y, oky := ty(p.Y)
			if !okx || !oky {
				continue
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if minX > maxX || minY > maxY {
		return "(no finite data to plot)\n"
	}
	if units.ApproxEqual(maxX, minX, 1e-12) {
		maxX = minX + 1
	}
	if units.ApproxEqual(maxY, minY, 1e-12) {
		maxY = minY + 1
	}

	grid := make([][]byte, opt.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for _, p := range s.Points {
			x, okx := tx(p.X)
			y, oky := ty(p.Y)
			if !okx || !oky {
				continue
			}
			col := int((x - minX) / (maxX - minX) * float64(opt.Width-1))
			row := opt.Height - 1 - int((y-minY)/(maxY-minY)*float64(opt.Height-1))
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	yLo, yHi := untransform(minY, opt.LogY), untransform(maxY, opt.LogY)
	fmt.Fprintf(&b, "%11.4g ┤%s\n", yHi, string(grid[0]))
	for r := 1; r < opt.Height-1; r++ {
		fmt.Fprintf(&b, "%11s │%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%11.4g ┤%s\n", yLo, string(grid[opt.Height-1]))
	fmt.Fprintf(&b, "%11s └%s\n", "", strings.Repeat("─", opt.Width))
	xLo, xHi := untransform(minX, opt.LogX), untransform(maxX, opt.LogX)
	axis := fmt.Sprintf("%.4g", xLo)
	right := fmt.Sprintf("%.4g", xHi)
	pad := opt.Width - len(axis) - len(right)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%12s%s%s%s", "", axis, strings.Repeat(" ", pad), right)
	if opt.XLabel != "" {
		fmt.Fprintf(&b, "  (%s)", opt.XLabel)
	}
	b.WriteByte('\n')

	// Legend, sorted by label for stable output.
	idx := make([]int, len(series))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, c int) bool { return series[idx[a]].Label < series[idx[c]].Label })
	for _, i := range idx {
		if len(series[i].Points) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %c %s\n", markers[i%len(markers)], series[i].Label)
	}
	if opt.YLabel != "" {
		fmt.Fprintf(&b, "  y: %s\n", opt.YLabel)
	}
	return b.String()
}

// transform returns the axis mapping (identity or log10) and whether the
// value is representable on it.
func transform(logScale bool) func(float64) (float64, bool) {
	if !logScale {
		return func(v float64) (float64, bool) {
			return v, !math.IsNaN(v) && !math.IsInf(v, 0)
		}
	}
	return func(v float64) (float64, bool) {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, false
		}
		return math.Log10(v), true
	}
}

// untransform inverts the axis mapping for tick labels.
func untransform(v float64, logScale bool) float64 {
	if logScale {
		return math.Pow(10, v)
	}
	return v
}
