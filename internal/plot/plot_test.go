package plot

import (
	"math"
	"strings"
	"testing"
)

func linear(label string, slope float64, n int) Series {
	s := Series{Label: label}
	for i := 1; i <= n; i++ {
		s.Points = append(s.Points, Point{X: float64(i), Y: slope * float64(i)})
	}
	return s
}

func TestRenderBasics(t *testing.T) {
	out := Render([]Series{linear("up", 2, 10)}, Options{Title: "test chart", XLabel: "ranks", YLabel: "MFLUPS"})
	for _, want := range []string{"test chart", "up", "*", "ranks", "MFLUPS", "└"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The max tick reflects the data range.
	if !strings.Contains(out, "20") {
		t.Errorf("y-axis tick for max value missing:\n%s", out)
	}
}

func TestRenderMultipleSeriesMarkers(t *testing.T) {
	out := Render([]Series{linear("a", 1, 5), linear("b", 3, 5)}, Options{})
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("distinct markers missing:\n%s", out)
	}
	// Legend is sorted.
	if strings.Index(out, "a\n") > strings.Index(out, "b\n") {
		t.Error("legend not sorted")
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := Render(nil, Options{}); !strings.Contains(out, "no data") {
		t.Errorf("empty input produced %q", out)
	}
	s := Series{Label: "nan", Points: []Point{{X: math.NaN(), Y: 1}}}
	if out := Render([]Series{s}, Options{}); !strings.Contains(out, "no finite data") {
		t.Errorf("NaN-only input produced %q", out)
	}
}

func TestRenderLogAxes(t *testing.T) {
	s := Series{Label: "pow"}
	for _, x := range []float64{1, 10, 100, 1000} {
		s.Points = append(s.Points, Point{X: x, Y: x * x})
	}
	out := Render([]Series{s}, Options{LogX: true, LogY: true, Width: 40, Height: 10})
	// On log-log axes a power law is a straight line: markers appear in
	// distinct rows and columns.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "*") {
			rows++
		}
	}
	if rows < 3 {
		t.Errorf("log-log power law occupies %d rows, want spread:\n%s", rows, out)
	}
	// Nonpositive values are dropped on log axes, not crashed on.
	bad := Series{Label: "bad", Points: []Point{{X: -1, Y: 5}, {X: 10, Y: 100}}}
	_ = Render([]Series{bad}, Options{LogX: true})
}

func TestRenderConstantSeries(t *testing.T) {
	s := Series{Label: "flat", Points: []Point{{X: 1, Y: 5}, {X: 2, Y: 5}}}
	out := Render([]Series{s}, Options{})
	if !strings.Contains(out, "*") {
		t.Errorf("flat series not plotted:\n%s", out)
	}
}

func TestRenderDimensionDefaults(t *testing.T) {
	out := Render([]Series{linear("d", 1, 3)}, Options{Width: -5, Height: 0})
	if len(strings.Split(out, "\n")) < 10 {
		t.Errorf("default dimensions not applied:\n%s", out)
	}
}
