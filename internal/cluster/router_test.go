package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoReplica is a stub replica handler that answers every /v1 path
// with its own name — enough to observe routing decisions without
// paying for calibrations.
func echoReplica(name string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"status":"ok","replica":%q}`, name)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"replica":%q,"path":%q}`, name, r.URL.Path)
	})
	return mux
}

// newEchoCluster builds a cluster of n stub replicas plus its httptest
// front end. Returns the cluster, the per-replica transports (the kill
// seam), and the router base URL.
func newEchoCluster(t *testing.T, n int, mutate func(*Config)) (*Cluster, []*HandlerTransport, string) {
	t.Helper()
	transports := make([]*HandlerTransport, n)
	replicas := make([]Replica, n)
	for i := range replicas {
		name := fmt.Sprintf("r%d", i)
		transports[i] = NewHandlerTransport(echoReplica(name))
		replicas[i] = Replica{Name: name, BaseURL: "http://" + name, Transport: transports[i]}
	}
	cfg := Config{Replicas: replicas, Seed: 11, DefaultSeed: 7}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	ts := httptest.NewServer(c.Router().Handler())
	t.Cleanup(ts.Close)
	return c, transports, ts.URL
}

func predictBodyFor(seed int) string {
	return fmt.Sprintf(`{"workload":{"geometry":"cylinder","scale":5},"systems":["CSP-2"],"ranks":[4],"seed":%d}`, seed)
}

func doPost(t *testing.T, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestRouterShardsByCalibrationKey: the same key always lands on the
// same replica, distinct keys spread across the fleet, and the
// placement matches the ring's own answer for the derived shard key.
func TestRouterShardsByCalibrationKey(t *testing.T) {
	c, _, url := newEchoCluster(t, 3, nil)

	owners := make(map[int]string)
	distinct := make(map[string]bool)
	for seed := 1; seed <= 24; seed++ {
		resp, data := doPost(t, url+"/v1/predict", predictBodyFor(seed), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d (%s)", seed, resp.StatusCode, data)
		}
		rep := resp.Header.Get("X-Replica")
		if rep == "" {
			t.Fatal("response missing X-Replica attribution")
		}
		wantKey := fmt.Sprintf("CSP-2|cylinder@5|%d|tier1", seed)
		if want := c.Ring().Owner(wantKey); rep != want {
			t.Errorf("seed %d served by %s, ring owner of %q is %s", seed, rep, wantKey, want)
		}
		owners[seed] = rep
		distinct[rep] = true
	}
	if len(distinct) < 2 {
		t.Errorf("24 keys all landed on one replica: %v", distinct)
	}
	// Stability: a second pass routes identically.
	for seed := 1; seed <= 24; seed++ {
		resp, _ := doPost(t, url+"/v1/predict", predictBodyFor(seed), nil)
		if rep := resp.Header.Get("X-Replica"); rep != owners[seed] {
			t.Errorf("seed %d moved %s -> %s between passes", seed, owners[seed], rep)
		}
	}
}

// TestRouterDefaultSeedMatchesExplicit: a request omitting seed must
// shard exactly like one naming the configured default — otherwise the
// same calibration would be cached on two replicas.
func TestRouterDefaultSeedMatchesExplicit(t *testing.T) {
	_, _, url := newEchoCluster(t, 3, nil)

	noSeed := `{"workload":{"geometry":"cylinder","scale":5},"systems":["CSP-2"],"ranks":[4]}`
	resp1, _ := doPost(t, url+"/v1/predict", noSeed, nil)
	resp2, _ := doPost(t, url+"/v1/predict", predictBodyFor(7), nil) // DefaultSeed: 7
	if a, b := resp1.Header.Get("X-Replica"), resp2.Header.Get("X-Replica"); a != b {
		t.Errorf("default-seed request on %s, explicit seed 7 on %s", a, b)
	}
}

// TestRouterRetriesOnceAroundRing: a dead owner's requests transparently
// fail over to the ring successor with no client-visible error; the
// retry counter records it.
func TestRouterRetriesOnceAroundRing(t *testing.T) {
	c, transports, url := newEchoCluster(t, 3, nil)

	// Find a seed owned by r1, then kill r1.
	victim := "r1"
	seed := 0
	for s := 1; s < 200; s++ {
		if c.Ring().Owner(fmt.Sprintf("CSP-2|cylinder@5|%d|tier1", s)) == victim {
			seed = s
			break
		}
	}
	if seed == 0 {
		t.Fatal("no key owned by r1 in 200 seeds")
	}
	transports[1].Close()

	resp, data := doPost(t, url+"/v1/predict", predictBodyFor(seed), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover request: status %d (%s)", resp.StatusCode, data)
	}
	got := resp.Header.Get("X-Replica")
	want := c.Ring().Successors(fmt.Sprintf("CSP-2|cylinder@5|%d|tier1", seed), 2)[1]
	if got != want {
		t.Errorf("failover served by %s, want ring successor %s", got, want)
	}
}

// TestRouterAllReplicasDead: both the owner and its successor down
// yields one 502, and an empty ring yields 503.
func TestRouterAllReplicasDead(t *testing.T) {
	c, transports, url := newEchoCluster(t, 2, func(cfg *Config) { cfg.HealthFailures = 100 })
	for _, tr := range transports {
		tr.Close()
	}
	resp, _ := doPost(t, url+"/v1/predict", predictBodyFor(1), nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("all-dead status %d, want 502", resp.StatusCode)
	}
	// Low threshold version: once health declares both dead the ring is
	// empty and the router sheds with 503 instead of trying at all.
	c.set.setState("r0", StateDead)
	c.set.setState("r1", StateDead)
	resp, _ = doPost(t, url+"/v1/predict", predictBodyFor(1), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty-ring status %d, want 503", resp.StatusCode)
	}
}

// TestTenantQuota: per-tenant token buckets admit burst then shed 429
// with a jittered Retry-After in [1,3]; a different tenant has its own
// bucket; quota applies before any replica sees the request.
func TestTenantQuota(t *testing.T) {
	_, _, url := newEchoCluster(t, 2, func(cfg *Config) {
		cfg.TenantRate = 1e-9 // effectively no refill within the test
		cfg.TenantBurst = 2
	})

	alice := map[string]string{"X-Tenant": "alice"}
	for i := 0; i < 2; i++ {
		if resp, data := doPost(t, url+"/v1/predict", predictBodyFor(1), alice); resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: %d (%s)", i, resp.StatusCode, data)
		}
	}
	resp, _ := doPost(t, url+"/v1/predict", predictBodyFor(1), alice)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 3 {
		t.Errorf("Retry-After %q, want integer in [1,3]", resp.Header.Get("Retry-After"))
	}
	if resp, _ := doPost(t, url+"/v1/predict", predictBodyFor(1), map[string]string{"X-Tenant": "bob"}); resp.StatusCode != http.StatusOK {
		t.Errorf("bob sharing alice's bucket: %d", resp.StatusCode)
	}
}

// TestRetryJitterDeterministic: two jitters with one seed deal the same
// backoff sequence; all values stay in [1, spread].
func TestRetryJitterDeterministic(t *testing.T) {
	a, b := newRetryJitter(5, 3), newRetryJitter(5, 3)
	seen := make(map[int]bool)
	for i := 0; i < 64; i++ {
		va, vb := a.next(), b.next()
		if va != vb {
			t.Fatalf("jitter diverged at %d: %d vs %d", i, va, vb)
		}
		if va < 1 || va > 3 {
			t.Fatalf("jitter %d outside [1,3]", va)
		}
		seen[va] = true
	}
	if len(seen) < 2 {
		t.Errorf("jitter never varied: %v", seen)
	}
}

// TestHealthCheckerKillsAndRevives: consecutive probe failures remove a
// replica from the ring; a successful probe restores it with identical
// placement (Add is deterministic).
func TestHealthCheckerKillsAndRevives(t *testing.T) {
	c, transports, _ := newEchoCluster(t, 3, nil)

	keyOwner := func() map[string]string {
		m := make(map[string]string)
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("k%d", i)
			m[k] = c.Ring().Owner(k)
		}
		return m
	}
	before := keyOwner()

	transports[2].Close()
	c.CheckHealthNow() // failure 1
	if st, _ := c.set.state("r2"); st != StateHealthy {
		t.Fatalf("r2 dead after one failure (threshold 2): %v", st)
	}
	c.CheckHealthNow() // failure 2 -> dead
	if st, _ := c.set.state("r2"); st != StateDead {
		t.Fatalf("r2 state %v after threshold, want dead", st)
	}
	if got := c.Ring().Members(); len(got) != 2 {
		t.Fatalf("ring still has %v", got)
	}
	for k, owner := range before {
		if owner != "r2" && c.Ring().Owner(k) != owner {
			t.Fatalf("key %q moved off surviving owner %q during failover", k, owner)
		}
	}

	transports[2].Reopen()
	c.CheckHealthNow()
	if st, _ := c.set.state("r2"); st != StateHealthy {
		t.Fatalf("r2 state %v after revival probe, want healthy", st)
	}
	after := keyOwner()
	for k := range before {
		if before[k] != after[k] {
			t.Fatalf("placement changed across kill/revive cycle: %q %q -> %q", k, before[k], after[k])
		}
	}
}

// TestHealthBackgroundLoop: a configured interval polls without manual
// ticks.
func TestHealthBackgroundLoop(t *testing.T) {
	c, transports, _ := newEchoCluster(t, 2, func(cfg *Config) {
		cfg.HealthInterval = 5 * time.Millisecond
	})
	transports[0].Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st, _ := c.set.state("r0"); st == StateDead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background health never declared r0 dead")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDrainEndpointAndTopology: draining via the admin endpoint empties
// the replica's arcs (new traffic avoids it) while topology and healthz
// report the state; undrain restores it.
func TestDrainEndpointAndTopology(t *testing.T) {
	_, _, url := newEchoCluster(t, 3, nil)

	resp, data := doPost(t, url+"/v1/cluster/drain?replica=r0", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %d (%s)", resp.StatusCode, data)
	}
	for seed := 1; seed <= 30; seed++ {
		resp, _ := doPost(t, url+"/v1/predict", predictBodyFor(seed), nil)
		if rep := resp.Header.Get("X-Replica"); rep == "r0" {
			t.Fatalf("seed %d routed to draining replica", seed)
		}
	}

	var topo TopologyResponse
	resp2, err := http.Get(url + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp2.Body).Decode(&topo); err != nil {
		t.Fatal(err)
	}
	if err := resp2.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if len(topo.RingMembers) != 2 || topo.Replicas[0].State != "draining" {
		t.Errorf("topology after drain: members %v states %+v", topo.RingMembers, topo.Replicas)
	}
	if share := topo.KeyShare["r1"] + topo.KeyShare["r2"]; share < 0.99 {
		t.Errorf("drained topology key share %v", topo.KeyShare)
	}

	if resp, data := doPost(t, url+"/v1/cluster/drain?replica=r0&undrain=1", "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("undrain: %d (%s)", resp.StatusCode, data)
	}
	if resp, _ := doPost(t, url+"/v1/cluster/drain?replica=ghost", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("drain unknown replica: %d, want 404", resp.StatusCode)
	}
}

// TestRouterHealthz: ok while any replica lives, degraded 503 when none
// do.
func TestRouterHealthz(t *testing.T) {
	c, _, url := newEchoCluster(t, 2, nil)

	var hr RouterHealthResponse
	resp, err := http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || hr.Status != "ok" || hr.Healthy != 2 {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, hr)
	}

	c.set.setState("r0", StateDead)
	c.set.setState("r1", StateDead)
	resp, err = http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-dead healthz %d, want 503", resp.StatusCode)
	}
}

// TestRouterInflightShed: with one forwarding slot held, the next
// planning request sheds 429 at the router without reaching a replica.
func TestRouterInflightShed(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/healthz" {
			once.Do(func() { close(entered) })
			<-release
		}
		fmt.Fprint(w, `{"replica":"slow"}`)
	})
	c, err := New(Config{
		Replicas:    []Replica{{Name: "slow", BaseURL: "http://slow", Transport: NewHandlerTransport(slow)}},
		MaxInflight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	ts := httptest.NewServer(c.Router().Handler())
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(predictBodyFor(1)))
		if err != nil {
			t.Errorf("slot-holding request: %v", err)
			return
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Error(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Error(err)
		}
	}()
	<-entered

	resp, _ := doPost(t, ts.URL+"/v1/predict", predictBodyFor(2), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	close(release)
	wg.Wait()
}

// TestRouterBodyTooLarge: the router's own cap answers 413 before
// forwarding.
func TestRouterBodyTooLarge(t *testing.T) {
	_, _, url := newEchoCluster(t, 2, func(cfg *Config) { cfg.MaxBodyBytes = 64 })
	resp, _ := doPost(t, url+"/v1/predict", strings.Repeat("x", 200), nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

// TestShardKeyFallbacks: undecodable bodies and multi-system requests
// still derive stable keys.
func TestShardKeyFallbacks(t *testing.T) {
	rt := &Router{cfg: Config{DefaultSeed: 7}}
	if k := rt.shardKey([]byte(`{"workload":{"geometry":"aorta","scale":6},"seed":3}`)); k != "*|aorta@6|3|tier1" {
		t.Errorf("catalog-wide key %q", k)
	}
	if k := rt.shardKey([]byte(`{"workload":{"geometry":"aorta","scale":6},"systems":["A","B"]}`)); k != "*|aorta@6|7|tier1" {
		t.Errorf("multi-system key %q", k)
	}
	if k := rt.shardKey([]byte(`{"workload":{"geometry":"aorta","scale":6},"systems":["A"]}`)); k != "A|aorta@6|7|tier1" {
		t.Errorf("single-system key %q", k)
	}
	// The tier is part of the key: different tiers shard independently,
	// matching serve's tier-qualified calibration cache.
	if k := rt.shardKey([]byte(`{"workload":{"geometry":"aorta","scale":6},"systems":["A"],"tier":"tier0"}`)); k != "A|aorta@6|7|tier0" {
		t.Errorf("tiered key %q", k)
	}
	if k := rt.shardKey([]byte(`{nope`)); k != `{nope` {
		t.Errorf("fallback key %q", k)
	}
}
