package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// ReplicaState is a replica's position in the routing lifecycle.
// Healthy replicas own ring arcs and receive traffic; draining replicas
// keep answering what they already hold (campaign status polls, the
// serve layer's own 503-on-new-campaigns drain semantics) but own no
// arcs, so no new shard keys land on them; dead replicas are out of the
// ring entirely until health probes see them recover.
type ReplicaState int

const (
	StateHealthy ReplicaState = iota
	StateDraining
	StateDead
)

func (s ReplicaState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDraining:
		return "draining"
	case StateDead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Replica names one serve.Server instance and the transport that
// reaches it. BaseURL is the scheme://host prefix requests are
// rewritten to; Transport carries them (an in-process handler adapter
// for tests and single-process clusters, an *http.Transport for real
// deployments).
type Replica struct {
	Name      string
	BaseURL   string
	Transport http.RoundTripper
}

// replicaSet is the mutable health view over the cluster's replicas,
// shared by the router (reads) and the health checker (writes). State
// transitions drive ring membership: leaving StateHealthy removes the
// replica's virtual points (its arcs fall to ring successors — the
// rebalance), re-entering adds them back.
type replicaSet struct {
	ring *Ring
	reg  *obs.Registry

	mu       sync.RWMutex
	replicas map[string]*replicaRec
	order    []string // configured order, for stable reporting
}

type replicaRec struct {
	Replica
	state    ReplicaState
	failures int // consecutive probe failures
}

func newReplicaSet(replicas []Replica, ring *Ring, reg *obs.Registry) (*replicaSet, error) {
	rs := &replicaSet{ring: ring, reg: reg, replicas: make(map[string]*replicaRec, len(replicas))}
	for _, r := range replicas {
		if r.Name == "" {
			return nil, fmt.Errorf("cluster: replica with empty name")
		}
		if r.Transport == nil {
			return nil, fmt.Errorf("cluster: replica %q has no transport", r.Name)
		}
		if _, dup := rs.replicas[r.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate replica %q", r.Name)
		}
		rs.replicas[r.Name] = &replicaRec{Replica: r, state: StateHealthy}
		rs.order = append(rs.order, r.Name)
		ring.Add(r.Name)
		rs.upGauge(r.Name).Set(1)
	}
	if len(rs.replicas) == 0 {
		return nil, fmt.Errorf("cluster: no replicas")
	}
	return rs, nil
}

func (rs *replicaSet) upGauge(name string) *obs.Gauge {
	return rs.reg.Gauge("cluster_replica_up", obs.L("replica", name))
}

// get resolves a replica by name.
func (rs *replicaSet) get(name string) (Replica, bool) {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	rec, ok := rs.replicas[name]
	if !ok {
		return Replica{}, false
	}
	return rec.Replica, true
}

// state reports a replica's current lifecycle state.
func (rs *replicaSet) state(name string) (ReplicaState, bool) {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	rec, ok := rs.replicas[name]
	if !ok {
		return StateDead, false
	}
	return rec.state, true
}

// setState transitions a replica and keeps the ring consistent:
// only healthy replicas hold virtual points.
func (rs *replicaSet) setState(name string, to ReplicaState) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rec, ok := rs.replicas[name]
	if !ok || rec.state == to {
		return ok
	}
	from := rec.state
	rec.state = to
	if to == StateHealthy {
		rec.failures = 0
		rs.ring.Add(name)
		rs.upGauge(name).Set(1)
	} else if from == StateHealthy {
		rs.ring.Remove(name)
		rs.upGauge(name).Set(0)
	}
	rs.reg.Counter("cluster_replica_transitions_total",
		obs.L("replica", name), obs.L("to", to.String())).Inc()
	return true
}

// reportFailure records one forward/probe failure against a replica;
// past the threshold a healthy replica is declared dead and its ring
// arcs rebalance to its successors. Draining replicas are left alone —
// they are already out of the ring and expected to go away.
func (rs *replicaSet) reportFailure(name string, threshold int) {
	rs.mu.Lock()
	rec, ok := rs.replicas[name]
	if !ok || rec.state != StateHealthy {
		rs.mu.Unlock()
		return
	}
	rec.failures++
	dead := rec.failures >= threshold
	rs.mu.Unlock()
	if dead {
		rs.setState(name, StateDead)
	}
}

// reportSuccess clears the failure streak and revives a dead replica.
func (rs *replicaSet) reportSuccess(name string) {
	rs.mu.Lock()
	rec, ok := rs.replicas[name]
	if !ok {
		rs.mu.Unlock()
		return
	}
	rec.failures = 0
	revive := rec.state == StateDead
	rs.mu.Unlock()
	if revive {
		rs.setState(name, StateHealthy)
	}
}

// snapshot returns the replica states in configured order.
func (rs *replicaSet) snapshot() []ReplicaStatus {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	out := make([]ReplicaStatus, 0, len(rs.order))
	for _, name := range rs.order {
		rec := rs.replicas[name]
		out = append(out, ReplicaStatus{
			Name:     name,
			BaseURL:  rec.BaseURL,
			State:    rec.state.String(),
			Failures: rec.failures,
		})
	}
	return out
}

// names returns every configured replica name (any state), sorted.
func (rs *replicaSet) names() []string {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	out := append([]string(nil), rs.order...)
	sort.Strings(out)
	return out
}

// healthChecker polls every replica's /v1/healthz and feeds the
// verdicts into the replicaSet: Failures consecutive misses kill a
// replica (rebalancing its arcs), one success revives it. Zero
// Interval disables the background loop — CheckNow remains available,
// which is how tests drive health deterministically.
type healthChecker struct {
	set       *replicaSet
	threshold int
	timeout   time.Duration

	cancel context.CancelFunc
	done   chan struct{}
}

func newHealthChecker(set *replicaSet, threshold int, timeout time.Duration) *healthChecker {
	if threshold <= 0 {
		threshold = 2
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &healthChecker{set: set, threshold: threshold, timeout: timeout}
}

// start launches the poll loop at interval; no-op when interval <= 0.
// The loop (and every probe it issues) derives from base, so the
// owner's shutdown cancels it alongside stop.
func (hc *healthChecker) start(base context.Context, interval time.Duration) {
	if interval <= 0 {
		return
	}
	ctx, cancel := context.WithCancel(base)
	hc.cancel = cancel
	hc.done = make(chan struct{})
	go func() {
		defer close(hc.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				hc.checkAll(ctx)
			}
		}
	}()
}

// stop halts the poll loop and waits for it to exit.
func (hc *healthChecker) stop() {
	if hc.cancel == nil {
		return
	}
	hc.cancel()
	<-hc.done
	hc.cancel = nil
}

// checkAll probes every replica once, including dead ones (that is the
// revival path). Draining replicas are skipped: their state is an
// operator decision, not a health verdict. A cancelled ctx aborts the
// sweep before any probe fires — a shut-down cluster must not record
// spurious failures.
func (hc *healthChecker) checkAll(ctx context.Context) {
	if ctx.Err() != nil {
		return
	}
	for _, name := range hc.set.names() {
		state, ok := hc.set.state(name)
		if !ok || state == StateDraining {
			continue
		}
		if hc.probe(ctx, name) {
			hc.set.reportSuccess(name)
		} else {
			hc.set.reportFailure(name, hc.threshold)
		}
	}
}

// probe issues one GET /v1/healthz through the replica's transport.
func (hc *healthChecker) probe(ctx context.Context, name string) bool {
	rep, ok := hc.set.get(name)
	if !ok {
		return false
	}
	ctx, cancel := context.WithTimeout(ctx, hc.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.BaseURL+"/v1/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := rep.Transport.RoundTrip(req)
	if err != nil {
		return false
	}
	_, cerr := io.Copy(io.Discard, resp.Body)
	if err := resp.Body.Close(); cerr == nil {
		cerr = err
	}
	return cerr == nil && resp.StatusCode == http.StatusOK
}
