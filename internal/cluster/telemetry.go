package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// telemetryAggregator periodically scrapes every live replica's
// GET /v1/telemetry snapshot, folds the raw counter/bucket state into
// one fleet-wide metric view (obs.MergeMetrics), derives RED rates
// from consecutive scrapes, and feeds the aggregated request stream to
// the SLO tracker. It mirrors healthChecker's lifecycle: start/stop
// around an optional background loop, with scrape as the synchronous
// deterministic path tests and on-demand handlers drive directly.
//
// Locking discipline: all network I/O happens before the mutex is
// taken; the lock only guards the published snapshot and rate state.
type telemetryAggregator struct {
	set       *replicaSet
	reg       *obs.Registry // the router's own registry, merged as "router"
	timeout   time.Duration
	slos      *obs.SLOTracker
	startWall time.Time

	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.Mutex
	last     *ClusterTelemetryResponse
	prevAtS  float64
	prevReq  float64
	prevErrs float64
}

// ClusterTelemetryResponse is the GET /v1/cluster/telemetry body: the
// merged fleet metrics plus the derived RED and SLO views.
type ClusterTelemetryResponse struct {
	AsOfS   float64                 `json:"as_of_s"`
	Sources []TelemetrySourceStatus `json:"sources"`
	Metrics []obs.Metric            `json:"metrics"`
	RED     REDSummary              `json:"red"`
	SLOs    []obs.SLOStatus         `json:"slos,omitempty"`
	Alerts  []obs.SLOAlert          `json:"alerts,omitempty"`
}

func newTelemetryAggregator(set *replicaSet, reg *obs.Registry, timeout time.Duration, slos []obs.SLO) *telemetryAggregator {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &telemetryAggregator{
		set:       set,
		reg:       reg,
		timeout:   timeout,
		slos:      obs.NewSLOTracker(slos),
		startWall: time.Now(),
	}
}

// simNow is the aggregator's timeline: seconds since router startup,
// the same clock the scrape intervals and SLO windows are measured on.
func (ta *telemetryAggregator) simNow() float64 { return time.Since(ta.startWall).Seconds() }

// start launches the scrape loop at interval; no-op when interval <= 0.
func (ta *telemetryAggregator) start(base context.Context, interval time.Duration) {
	if interval <= 0 {
		return
	}
	ctx, cancel := context.WithCancel(base)
	ta.cancel = cancel
	ta.done = make(chan struct{})
	go func() {
		defer close(ta.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				ta.scrape(ctx)
			}
		}
	}()
}

// stop halts the scrape loop and waits for it to exit.
func (ta *telemetryAggregator) stop() {
	if ta.cancel == nil {
		return
	}
	ta.cancel()
	<-ta.done
	ta.cancel = nil
}

// scrape performs one aggregation sweep and publishes the result. Dead
// replicas are skipped (their last state is gone with them); draining
// replicas still report — they are serving what they own. A replica
// whose snapshot fails to fetch, decode, or merge is recorded in
// Sources and excluded without poisoning the aggregate. Sources merge
// in sorted-name order, so the first snapshot carrying a histogram
// fixes its bucket layout and later deviants are the ones rejected —
// deterministic, if arbitrary; in practice every replica runs the same
// serve build and the layouts agree.
func (ta *telemetryAggregator) scrape(ctx context.Context) *ClusterTelemetryResponse {
	if ctx.Err() != nil {
		return ta.Last()
	}
	atS := ta.simNow()

	// Phase 1: fetch everything (network, no lock).
	type fetched struct {
		name string
		snap obs.TelemetrySnapshot
		err  error
	}
	var snaps []fetched
	for _, name := range ta.set.names() {
		state, ok := ta.set.state(name)
		if !ok || state == StateDead {
			continue
		}
		snap, err := ta.fetch(ctx, name)
		snaps = append(snaps, fetched{name: name, snap: snap, err: err})
	}

	// Phase 2: merge. The router's own registry joins as one more
	// source so the page is the whole data plane, not just replicas.
	var merged []obs.Metric
	var sources []TelemetrySourceStatus
	for _, f := range snaps {
		if f.err != nil {
			sources = append(sources, TelemetrySourceStatus{Name: f.name, Error: f.err.Error()})
			continue
		}
		next, err := obs.MergeMetrics(merged, f.snap.Metrics)
		if err != nil {
			sources = append(sources, TelemetrySourceStatus{Name: f.name, Error: err.Error()})
			continue
		}
		merged = next
		sources = append(sources, TelemetrySourceStatus{Name: f.name, OK: true, UptimeS: f.snap.UptimeS})
	}
	if next, err := obs.MergeMetrics(merged, ta.reg.Snapshot()); err != nil {
		sources = append(sources, TelemetrySourceStatus{Name: "router", Error: err.Error()})
	} else {
		merged = next
		sources = append(sources, TelemetrySourceStatus{Name: "router", OK: true, UptimeS: atS})
	}

	// Phase 3: derive RED + SLO state and publish under the lock.
	o := obs.RequestObs(atS, merged, "serve_requests_total", "serve_latency_seconds")

	ta.mu.Lock()
	defer ta.mu.Unlock()
	red := REDSummary{Requests: o.Total, Errors: o.Errors, IntervalS: atS - ta.prevAtS}
	if red.IntervalS > 0 {
		red.RatePerS = (o.Total - ta.prevReq) / red.IntervalS
		red.ErrorRatePerS = (o.Errors - ta.prevErrs) / red.IntervalS
	}
	// Quantiles come from the label-set-merged latency buckets that
	// RequestObs already accumulated — raw counts, quantiled here once.
	lat := obs.Metric{Type: "histogram", BucketLE: o.LatBounds, Counts: o.LatCounts, Count: o.LatCount}
	if lat.Count > 0 {
		red.P50S = lat.Quantile(0.50)
		red.P90S = lat.Quantile(0.90)
		red.P99S = lat.Quantile(0.99)
	}
	ta.prevAtS, ta.prevReq, ta.prevErrs = atS, o.Total, o.Errors

	ta.slos.Observe(o)
	resp := &ClusterTelemetryResponse{
		AsOfS:   atS,
		Sources: sources,
		Metrics: merged,
		RED:     red,
		SLOs:    ta.slos.Status(),
		Alerts:  ta.slos.Alerts(),
	}
	ta.last = resp
	return resp
}

// fetch pulls one replica's telemetry snapshot through its transport.
func (ta *telemetryAggregator) fetch(ctx context.Context, name string) (obs.TelemetrySnapshot, error) {
	var snap obs.TelemetrySnapshot
	rep, ok := ta.set.get(name)
	if !ok {
		return snap, fmt.Errorf("replica %q not configured", name)
	}
	ctx, cancel := context.WithTimeout(ctx, ta.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.BaseURL+"/v1/telemetry", nil)
	if err != nil {
		return snap, err
	}
	resp, err := rep.Transport.RoundTrip(req)
	if err != nil {
		return snap, err
	}
	defer func() {
		//lint:ignore droppederr the decode error below is the signal; close failure after a full decode has nothing to add
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("telemetry scrape: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("telemetry scrape: %w", err)
	}
	if snap.Source == "" {
		snap.Source = name
	}
	return snap, nil
}

// Last returns the most recently published aggregate, or nil before
// the first scrape.
func (ta *telemetryAggregator) Last() *ClusterTelemetryResponse {
	ta.mu.Lock()
	defer ta.mu.Unlock()
	return ta.last
}
