package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
)

// HandlerTransport is an http.RoundTripper that serves requests
// directly through an in-process http.Handler — no sockets, no
// serialization beyond the body bytes. It is the transport behind
// single-process clusters (tests, cmd/loadgen -cluster, cmd/cluster's
// in-process mode); real deployments use *http.Transport instead.
//
// Closed transports refuse with a transport-level error, which is
// indistinguishable from a dead process to the router — the seam the
// failover tests and cmd/cluster's kill path use.
type HandlerTransport struct {
	h      http.Handler
	closed atomic.Bool
}

// NewHandlerTransport wraps a handler as a RoundTripper.
func NewHandlerTransport(h http.Handler) *HandlerTransport {
	return &HandlerTransport{h: h}
}

// Close makes every subsequent RoundTrip fail like a dead host.
func (t *HandlerTransport) Close() { t.closed.Store(true) }

// Reopen undoes Close — the revival seam.
func (t *HandlerTransport) Reopen() { t.closed.Store(false) }

// RoundTrip serves the request through the wrapped handler and returns
// the recorded response. Like *http.Transport, it honors the request
// context: when the handler outlives req.Context(), RoundTrip abandons
// it and returns ctx.Err() — otherwise a hung replica would stall
// health probes and forwards past their deadlines forever.
//
//lint:hot
func (t *HandlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.closed.Load() {
		return nil, fmt.Errorf("cluster: transport to %s closed (replica down)", req.URL.Host)
	}
	ctx := req.Context()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rec := &recordedResponse{header: make(http.Header), code: http.StatusOK}
	served := make(chan struct{})
	go func() {
		defer close(served)
		t.h.ServeHTTP(rec, req)
	}()
	select {
	case <-served:
	case <-ctx.Done():
		// The handler goroutine may still be running; it writes only to
		// rec, whose mutex makes the abandonment safe.
		return nil, ctx.Err()
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return &http.Response{
		StatusCode: rec.code,
		Status:     fmt.Sprintf("%d %s", rec.code, http.StatusText(rec.code)),
		Proto:      req.Proto,
		ProtoMajor: req.ProtoMajor,
		ProtoMinor: req.ProtoMinor,
		Header:     rec.header.Clone(),
		Body:       io.NopCloser(bytes.NewReader(rec.body.Bytes())),
		Request:    req,
	}, nil
}

// recordedResponse is a minimal in-memory http.ResponseWriter. The
// mutex exists because a handler may legally write from a goroutine it
// spawned while RoundTrip reads the result after ServeHTTP returns.
type recordedResponse struct {
	mu     sync.Mutex
	header http.Header
	body   bytes.Buffer
	code   int
	wrote  bool
}

func (r *recordedResponse) Header() http.Header { return r.header }

func (r *recordedResponse) WriteHeader(code int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrote {
		r.wrote = true
		r.code = code
	}
}

func (r *recordedResponse) Write(b []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.wrote = true
	return r.body.Write(b)
}
