package cluster

// This file is the router's own JSON vocabulary. The /v1 planning
// endpoints proxied to replicas keep internal/serve's shapes untouched;
// these types cover only what the router adds: topology introspection,
// drain control, and the aggregate health view.

// ReplicaStatus is one replica's row in the topology report.
type ReplicaStatus struct {
	Name     string `json:"name"`
	BaseURL  string `json:"base_url,omitempty"`
	State    string `json:"state"`
	Failures int    `json:"failures,omitempty"`
}

// TopologyResponse is the GET /v1/cluster body: the fleet, the ring
// membership, and each healthy replica's share of a sampled keyspace —
// the operator's view of balance.
type TopologyResponse struct {
	Replicas    []ReplicaStatus    `json:"replicas"`
	RingMembers []string           `json:"ring_members"`
	Vnodes      int                `json:"vnodes"`
	Seed        int64              `json:"seed"`
	KeyShare    map[string]float64 `json:"key_share,omitempty"`
}

// DrainResponse acknowledges a drain/undrain transition.
type DrainResponse struct {
	Replica string `json:"replica"`
	State   string `json:"state"`
}

// RouterHealthResponse is the router's GET /v1/healthz body. Status is
// "ok" while at least one replica is healthy, "degraded" otherwise —
// the router itself is up either way, but a degraded cluster cannot
// place new shard keys.
type RouterHealthResponse struct {
	Status   string          `json:"status"`
	Healthy  int             `json:"healthy"`
	Total    int             `json:"total"`
	Replicas []ReplicaStatus `json:"replicas"`
}

// ErrorResponse mirrors serve's uniform error body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// TelemetrySourceStatus is one scrape target's row in the aggregated
// telemetry report: whether its snapshot merged, and why not if not.
type TelemetrySourceStatus struct {
	Name    string  `json:"name"`
	OK      bool    `json:"ok"`
	Error   string  `json:"error,omitempty"`
	UptimeS float64 `json:"uptime_s,omitempty"`
}

// REDSummary is the fleet-wide Rate/Errors/Duration view derived from
// the merged serve metrics: request and error throughput over the last
// scrape interval, and latency quantiles from the merged histogram
// buckets (computed at read time from raw buckets, never merged as
// quantiles).
type REDSummary struct {
	// Requests and Errors are cumulative fleet totals.
	Requests float64 `json:"requests"`
	Errors   float64 `json:"errors"`

	// IntervalS is the window the rates cover (time since the
	// previous scrape, or since startup for the first one).
	IntervalS     float64 `json:"interval_s"`
	RatePerS      float64 `json:"rate_per_s"`
	ErrorRatePerS float64 `json:"error_rate_per_s"`

	// Latency quantiles of the merged fleet histogram, in seconds.
	P50S float64 `json:"p50_s"`
	P90S float64 `json:"p90_s"`
	P99S float64 `json:"p99_s"`
}
