package cluster

// This file is the router's own JSON vocabulary. The /v1 planning
// endpoints proxied to replicas keep internal/serve's shapes untouched;
// these types cover only what the router adds: topology introspection,
// drain control, and the aggregate health view.

// ReplicaStatus is one replica's row in the topology report.
type ReplicaStatus struct {
	Name     string `json:"name"`
	BaseURL  string `json:"base_url,omitempty"`
	State    string `json:"state"`
	Failures int    `json:"failures,omitempty"`
}

// TopologyResponse is the GET /v1/cluster body: the fleet, the ring
// membership, and each healthy replica's share of a sampled keyspace —
// the operator's view of balance.
type TopologyResponse struct {
	Replicas    []ReplicaStatus    `json:"replicas"`
	RingMembers []string           `json:"ring_members"`
	Vnodes      int                `json:"vnodes"`
	Seed        int64              `json:"seed"`
	KeyShare    map[string]float64 `json:"key_share,omitempty"`
}

// DrainResponse acknowledges a drain/undrain transition.
type DrainResponse struct {
	Replica string `json:"replica"`
	State   string `json:"state"`
}

// RouterHealthResponse is the router's GET /v1/healthz body. Status is
// "ok" while at least one replica is healthy, "degraded" otherwise —
// the router itself is up either way, but a degraded cluster cannot
// place new shard keys.
type RouterHealthResponse struct {
	Status   string          `json:"status"`
	Healthy  int             `json:"healthy"`
	Total    int             `json:"total"`
	Replicas []ReplicaStatus `json:"replicas"`
}

// ErrorResponse mirrors serve's uniform error body.
type ErrorResponse struct {
	Error string `json:"error"`
}
