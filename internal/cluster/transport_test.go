package cluster

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// TestHandlerTransportHonorsContext pins the deadline contract that
// real *http.Transport gives callers: a handler that outlives the
// request context must not stall RoundTrip — health probes and
// forwards rely on their WithTimeout actually firing.
func TestHandlerTransportHonorsContext(t *testing.T) {
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	hung := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	})
	tr := NewHandlerTransport(hung)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://r0/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tr.RoundTrip(req)
	if err == nil {
		_ = resp.Body.Close()
		t.Fatal("RoundTrip returned a response from a hung handler; want ctx error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RoundTrip error = %v, want context.DeadlineExceeded", err)
	}
}

// TestHandlerTransportPreCancelledContext: an already-dead context
// fails fast without ever invoking the handler, matching net/http.
func TestHandlerTransportPreCancelledContext(t *testing.T) {
	var served atomic.Bool
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Store(true)
	})
	tr := NewHandlerTransport(h)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://r0/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.RoundTrip(req); !errors.Is(err, context.Canceled) {
		t.Fatalf("RoundTrip error = %v, want context.Canceled", err)
	}
	if served.Load() {
		t.Error("handler ran despite a pre-cancelled request context")
	}
}
