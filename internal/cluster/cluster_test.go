package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// newServeCluster builds n real serve.Server replicas (cheap
// calibrations: Samples 1) behind a router, all in-process. The
// returned transports are the kill seam; the servers allow drain tests
// to exercise serve's own shutdown semantics through the router.
func newServeCluster(t *testing.T, n int, mutate func(*Config)) (*Cluster, []*HandlerTransport, []*serve.Server, string) {
	t.Helper()
	transports := make([]*HandlerTransport, n)
	servers := make([]*serve.Server, n)
	replicas := make([]Replica, n)
	for i := range replicas {
		srv, err := serve.New(serve.Config{Samples: 1, DefaultSeed: 7})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		name := fmt.Sprintf("r%d", i)
		transports[i] = NewHandlerTransport(srv.Handler())
		replicas[i] = Replica{Name: name, BaseURL: "http://" + name, Transport: transports[i]}
	}
	cfg := Config{Replicas: replicas, Seed: 11, DefaultSeed: 7}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	ts := httptest.NewServer(c.Router().Handler())
	t.Cleanup(ts.Close)
	return c, transports, servers, ts.URL
}

// TestClusterDisjointWarmCaches is the sharding contract end to end:
// K distinct calibration keys cost exactly K cache misses fleet-wide on
// the first pass (no key calibrated twice, because exactly one replica
// owns it) and zero misses on the second (every key warm somewhere).
func TestClusterDisjointWarmCaches(t *testing.T) {
	_, _, _, url := newServeCluster(t, 3, nil)

	const keys = 8
	owners := make(map[int]string)
	misses, hits := 0, 0
	pass := func(record bool) {
		for seed := 1; seed <= keys; seed++ {
			resp, data := doPost(t, url+"/v1/predict", predictBodyFor(seed), nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("seed %d: status %d (%s)", seed, resp.StatusCode, data)
			}
			var pr serve.PredictResponse
			if err := json.Unmarshal(data, &pr); err != nil {
				t.Fatal(err)
			}
			misses += pr.CacheMisses
			hits += pr.CacheHits
			rep := resp.Header.Get("X-Replica")
			if record {
				owners[seed] = rep
			} else if owners[seed] != rep {
				t.Errorf("seed %d moved %s -> %s", seed, owners[seed], rep)
			}
		}
	}
	pass(true)
	if misses != keys || hits != 0 {
		t.Errorf("cold pass: %d misses %d hits, want %d/0", misses, hits, keys)
	}
	misses, hits = 0, 0
	pass(false)
	if misses != 0 || hits != keys {
		t.Errorf("warm pass: %d misses %d hits, want 0/%d", misses, hits, keys)
	}
	distinct := make(map[string]bool)
	for _, rep := range owners {
		distinct[rep] = true
	}
	if len(distinct) < 2 {
		t.Errorf("keys did not spread: %v", owners)
	}
}

// TestClusterFailoverE2E is the acceptance scenario: with one of three
// replicas killed mid-run, the router reroutes its ring segment and the
// run completes with zero client-visible 5xx — the in-flight retry is
// transparent, and health marks the corpse dead so later requests never
// touch it.
func TestClusterFailoverE2E(t *testing.T) {
	c, transports, _, url := newServeCluster(t, 3, nil)

	const keys = 6
	// Warm every key so the steady-state run is cache-hot.
	for seed := 1; seed <= keys; seed++ {
		if resp, data := doPost(t, url+"/v1/predict", predictBodyFor(seed), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup seed %d: %d (%s)", seed, resp.StatusCode, data)
		}
	}

	const (
		workers  = 4
		perGoro  = 40
		killIter = 10
	)
	var non2xx atomic.Int64
	var killOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				if w == 0 && i == killIter {
					killOnce.Do(func() { transports[2].Close() })
				}
				seed := (w*perGoro+i)%keys + 1
				resp, err := http.Post(url+"/v1/predict", "application/json",
					strings.NewReader(predictBodyFor(seed)))
				if err != nil {
					non2xx.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					non2xx.Add(1)
				}
				if err := drainAndClose(resp); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()

	if n := non2xx.Load(); n != 0 {
		t.Errorf("%d client-visible non-200 responses during failover, want 0", n)
	}
	// Forward failures alone must have declared the corpse dead and
	// rebalanced its arcs to the survivors.
	if st, _ := c.set.state("r2"); st != StateDead {
		t.Errorf("r2 state %v after failed forwards, want dead", st)
	}
	if members := c.Ring().Members(); len(members) != 2 {
		t.Errorf("ring members after failover: %v", members)
	}
	for seed := 1; seed <= keys; seed++ {
		resp, data := doPost(t, url+"/v1/predict", predictBodyFor(seed), nil)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("post-failover seed %d: %d (%s)", seed, resp.StatusCode, data)
		}
		if rep := resp.Header.Get("X-Replica"); rep == "r2" {
			t.Errorf("post-failover seed %d routed to dead replica", seed)
		}
	}
}

func drainAndClose(resp *http.Response) error {
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		if cerr := resp.Body.Close(); cerr != nil {
			return cerr
		}
		return err
	}
	return resp.Body.Close()
}

// TestClusterCampaignLifecycle: campaigns submitted through the router
// carry replica-qualified IDs, and status polls route back to the
// owner through to completion.
func TestClusterCampaignLifecycle(t *testing.T) {
	_, _, _, url := newServeCluster(t, 3, nil)

	body := `{"backend":"serial","config":{
	  "seed": 3, "budget_usd": 1.0, "objective": "min-cost",
	  "jobs": [{"name": "smoke", "geometry": "cylinder", "scale": 5, "ranks": 8, "steps": 200}]}}`
	resp, data := doPost(t, url+"/v1/campaigns", body, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", resp.StatusCode, data)
	}
	var ack struct{ ID, URL string }
	if err := json.Unmarshal(data, &ack); err != nil {
		t.Fatal(err)
	}
	owner, _, ok := strings.Cut(ack.ID, ".")
	if !ok || !strings.HasPrefix(owner, "r") {
		t.Fatalf("cluster campaign ID %q not replica-qualified", ack.ID)
	}
	if resp.Header.Get("X-Replica") != owner {
		t.Errorf("ack attributed to %q, ID names %q", resp.Header.Get("X-Replica"), owner)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, data := getBody(t, url+ack.URL)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status poll: %d (%s)", resp.StatusCode, data)
		}
		var st serve.CampaignStatusResponse
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == serve.CampaignDone {
			break
		}
		if st.State == serve.CampaignFailed {
			t.Fatalf("campaign failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck in %q", st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if resp, _ := getBody(t, url+"/v1/campaigns/unqualified-id"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unqualified ID: %d, want 404", resp.StatusCode)
	}
	if resp, _ := getBody(t, url+"/v1/campaigns/ghost.c-000001"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown replica ID: %d, want 404", resp.StatusCode)
	}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestClusterDrainPropagates503: serve's drain semantics survive the
// router. A replica whose serve.Server has begun shutdown answers new
// campaign submissions with 503; the router relays it untouched (503 is
// flow control, not a transport failure — no retry, no masking).
func TestClusterDrainPropagates503(t *testing.T) {
	c, _, servers, url := newServeCluster(t, 2, nil)

	// Close both serve servers: wherever the submission routes, the
	// answer must be the replica's own 503.
	for _, s := range servers {
		if err := s.Close(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	body := `{"backend":"serial","config":{
	  "seed": 3, "budget_usd": 1.0,
	  "jobs": [{"name": "late", "geometry": "cylinder", "scale": 5, "ranks": 8, "steps": 100}]}}`
	resp, data := doPost(t, url+"/v1/campaigns", body, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit to draining fleet: %d (%s), want 503", resp.StatusCode, data)
	}
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
		t.Errorf("503 body malformed: %s", data)
	}
	// Predictions still work on a draining fleet — drain stops intake of
	// new async work, not the hot stateless path.
	if resp, data := doPost(t, url+"/v1/predict", predictBodyFor(1), nil); resp.StatusCode != http.StatusOK {
		t.Errorf("predict on draining fleet: %d (%s)", resp.StatusCode, data)
	}
	_ = c
}

// TestClusterShed429Propagates: a replica's own 429 (inflight limiter)
// reaches the client through the router with its Retry-After intact —
// replica flow control is never retried into a second replica, which
// would defeat per-replica load shedding.
func TestClusterShed429Propagates(t *testing.T) {
	// A stub replica that always sheds.
	shed := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"server saturated"}`)
	})
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"replica":"calm"}`)
	})
	c, err := New(Config{
		Replicas: []Replica{
			{Name: "shedding", BaseURL: "http://shedding", Transport: NewHandlerTransport(shed)},
			{Name: "calm", BaseURL: "http://calm", Transport: NewHandlerTransport(ok)},
		},
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	ts := httptest.NewServer(c.Router().Handler())
	t.Cleanup(ts.Close)

	// Find a seed owned by the shedding replica.
	seed := 0
	for s := 1; s < 300; s++ {
		if c.Ring().Owner(fmt.Sprintf("CSP-2|cylinder@5|%d|tier1", s)) == "shedding" {
			seed = s
			break
		}
	}
	if seed == 0 {
		t.Fatal("no key owned by shedding replica")
	}
	resp, data := doPost(t, ts.URL+"/v1/predict", predictBodyFor(seed), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want relayed 429", resp.StatusCode, data)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After %q, want replica's own %q", got, "2")
	}
	if got := resp.Header.Get("X-Replica"); got != "shedding" {
		t.Errorf("attributed to %q", got)
	}
}
