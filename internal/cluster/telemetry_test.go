package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
)

// tracedServeCluster builds n serve replicas with individually seeded
// tracers and registries behind a router with its own seeded tracer —
// the full distributed-tracing topology, deterministic end to end.
func tracedServeCluster(t *testing.T, n int) (*Cluster, *obs.Tracer, []*obs.Tracer, string) {
	t.Helper()
	replicaTracers := make([]*obs.Tracer, n)
	replicas := make([]Replica, n)
	for i := range replicas {
		// Distinct tracer seeds per process: span IDs derive from
		// (seed, seq), so sharing a seed across processes would collide
		// IDs in the merged trace.
		replicaTracers[i] = obs.NewTracer(int64(101 + i))
		srv, err := serve.New(serve.Config{Samples: 1, DefaultSeed: 7, Tracer: replicaTracers[i]})
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("r%d", i)
		replicas[i] = Replica{Name: name, BaseURL: "http://" + name, Transport: NewHandlerTransport(srv.Handler())}
	}
	routerTracer := obs.NewTracer(11)
	c, err := New(Config{Replicas: replicas, Seed: 11, DefaultSeed: 7, Tracer: routerTracer})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	ts := httptest.NewServer(c.Router().Handler())
	t.Cleanup(ts.Close)
	return c, routerTracer, replicaTracers, ts.URL
}

// TestStitchedTraceParentChain is the propagation contract: one client
// request through the router yields one trace in which the router span
// parents the forward span and the forward span parents the replica's
// handler span — asserted programmatically on the merged records.
func TestStitchedTraceParentChain(t *testing.T) {
	_, routerTracer, replicaTracers, url := tracedServeCluster(t, 3)

	resp, data := doPost(t, url+"/v1/predict", predictBodyFor(1), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d (%s)", resp.StatusCode, data)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("response missing X-Trace-Id")
	}
	if got := resp.Header.Values("X-Trace-Id"); len(got) != 1 {
		t.Fatalf("X-Trace-Id duplicated across relay: %v", got)
	}

	merged := routerTracer.Spans()
	for _, tr := range replicaTracers {
		merged = append(merged, tr.Spans()...)
	}
	byName := func(prefix string) (obs.SpanRecord, bool) {
		for _, s := range merged {
			if strings.HasPrefix(s.Name, prefix) {
				return s, true
			}
		}
		return obs.SpanRecord{}, false
	}
	router, ok := byName("router /v1/predict")
	if !ok {
		t.Fatalf("no router span in %d merged spans", len(merged))
	}
	forward, ok := byName("forward ")
	if !ok {
		t.Fatal("no forward span")
	}
	handler, ok := byName("http /v1/predict")
	if !ok {
		t.Fatal("no replica handler span")
	}
	if forward.Parent != router.ID {
		t.Errorf("forward parent %q, want router span %q", forward.Parent, router.ID)
	}
	if handler.Parent != forward.ID {
		t.Errorf("handler parent %q, want forward span %q", handler.Parent, forward.ID)
	}
	for _, s := range []obs.SpanRecord{router, forward, handler} {
		if s.TraceID != router.TraceID {
			t.Errorf("span %q trace %q, want %q (one trace per request)", s.Name, s.TraceID, router.TraceID)
		}
	}
	if got := resp.Header.Get("X-Trace-Id"); got != router.TraceID {
		t.Errorf("X-Trace-Id %q, want %q", got, router.TraceID)
	}
}

// TestStitchedTraceByteIdentical runs the same-seed scenario twice and
// requires the rendered span trees to match byte for byte — the
// reproducibility contract extended across process boundaries.
func TestStitchedTraceByteIdentical(t *testing.T) {
	run := func() string {
		_, routerTracer, replicaTracers, url := tracedServeCluster(t, 3)
		for seed := 1; seed <= 3; seed++ {
			resp, data := doPost(t, url+"/v1/predict", predictBodyFor(seed), nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("predict seed %d: %d (%s)", seed, resp.StatusCode, data)
			}
		}
		merged := routerTracer.Spans()
		for _, tr := range replicaTracers {
			merged = append(merged, tr.Spans()...)
		}
		return obs.RenderSpanTree(merged)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed stitched traces differ:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
	if strings.Count(a, "trace ") != 3 {
		t.Fatalf("want 3 stitched traces (one per request), got:\n%s", a)
	}
}

// TestClusterTelemetryAggregation drives traffic through the fleet and
// checks the merged view: fleet-wide counters equal the sum over
// replicas, histogram counts add, all sources merge, RED populates.
func TestClusterTelemetryAggregation(t *testing.T) {
	c, _, _, url := tracedServeCluster(t, 3)

	const requests = 8
	for seed := 1; seed <= requests; seed++ {
		resp, data := doPost(t, url+"/v1/predict", predictBodyFor(seed), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict seed %d: %d (%s)", seed, resp.StatusCode, data)
		}
	}

	snap := c.ScrapeTelemetryNow()
	if snap == nil {
		t.Fatal("scrape returned nil")
	}
	if len(snap.Sources) != 4 { // 3 replicas + the router itself
		t.Fatalf("sources %+v, want 4", snap.Sources)
	}
	for _, s := range snap.Sources {
		if !s.OK {
			t.Errorf("source %s failed: %s", s.Name, s.Error)
		}
	}
	var predictOK float64
	var latCount uint64
	for _, m := range snap.Metrics {
		if m.Name == "serve_requests_total" && m.Label("endpoint") == "/v1/predict" && m.Label("code") == "200" {
			predictOK = m.Value
		}
		if m.Name == "serve_latency_seconds" && m.Label("endpoint") == "/v1/predict" {
			latCount = m.Count
		}
	}
	if predictOK != requests {
		t.Errorf("fleet-wide predict 200s = %v, want %d", predictOK, requests)
	}
	if latCount != requests {
		t.Errorf("fleet-wide latency count = %d, want %d", latCount, requests)
	}
	if snap.RED.Requests < requests {
		t.Errorf("RED requests %v, want >= %d", snap.RED.Requests, requests)
	}
	if snap.RED.RatePerS <= 0 || snap.RED.P99S <= 0 {
		t.Errorf("RED not derived: %+v", snap.RED)
	}
	if len(snap.SLOs) == 0 {
		t.Errorf("default SLOs missing from aggregate")
	}
	for _, a := range snap.Alerts {
		t.Errorf("healthy fleet raised alert: %+v", a)
	}
}

// TestClusterTelemetryEndpoint exercises GET /v1/cluster/telemetry:
// on-demand scrape with no background loop, JSON and Prometheus forms.
func TestClusterTelemetryEndpoint(t *testing.T) {
	_, _, _, url := tracedServeCluster(t, 2)

	if resp, data := doPost(t, url+"/v1/predict", predictBodyFor(1), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d (%s)", resp.StatusCode, data)
	}

	resp, err := http.Get(url + "/v1/cluster/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	var snap ClusterTelemetryResponse
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding telemetry: %v", err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(snap.Metrics) == 0 || len(snap.Sources) == 0 {
		t.Fatalf("telemetry response: %d, %d metrics, %d sources", resp.StatusCode, len(snap.Metrics), len(snap.Sources))
	}

	resp, err = http.Get(url + "/v1/cluster/telemetry?format=prom&refresh=1")
	if err != nil {
		t.Fatal(err)
	}
	page := readAll(t, resp)
	if !strings.Contains(page, "serve_requests_total") {
		t.Fatalf("prom page missing fleet metrics:\n%.500s", page)
	}
	if !strings.Contains(page, "cluster_requests_total") {
		t.Fatalf("prom page missing router metrics:\n%.500s", page)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// telemetryStub is a stub replica whose /v1/telemetry body is swappable
// between scrapes — the seam for injecting latency regressions and
// malformed snapshots.
type telemetryStub struct {
	mu   sync.Mutex
	body func() any
}

func (s *telemetryStub) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/v1/telemetry", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		body := s.body()
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if raw, ok := body.(string); ok {
			fmt.Fprint(w, raw)
			return
		}
		if err := json.NewEncoder(w).Encode(body); err != nil {
			return
		}
	})
	return mux
}

func (s *telemetryStub) set(body func() any) {
	s.mu.Lock()
	s.body = body
	s.mu.Unlock()
}

// stubSnapshot builds a telemetry body with the given cumulative
// request count and latency bucket counts over bounds {0.1, 0.25, 1}.
func stubSnapshot(total float64, latCounts []uint64) obs.TelemetrySnapshot {
	var n uint64
	for _, c := range latCounts {
		n += c
	}
	return obs.TelemetrySnapshot{
		UptimeS: 1,
		Metrics: []obs.Metric{
			{Name: "serve_latency_seconds", Type: "histogram",
				BucketLE: []float64{0.1, 0.25, 1}, Counts: latCounts, Count: n},
			{Name: "serve_requests_total", Type: "counter",
				Labels: []obs.Label{{Key: "code", Value: "200"}, {Key: "endpoint", Value: "/v1/predict"}},
				Value:  total},
		},
	}
}

// TestClusterSLOBurnRateAlert injects a deterministic latency
// regression through a stub replica's telemetry and requires the p99
// burn-rate alert to fire exactly once across repeated scrapes.
func TestClusterSLOBurnRateAlert(t *testing.T) {
	stub := &telemetryStub{}
	stub.set(func() any { return stubSnapshot(100, []uint64{90, 10, 0, 0}) })

	c, err := New(Config{
		Replicas: []Replica{{Name: "r0", BaseURL: "http://r0", Transport: NewHandlerTransport(stub.handler())}},
		Seed:     11,
		SLOs: []obs.SLO{
			{Name: "latency-p99", LatencyQuantile: 0.99, LatencyBoundS: 0.25, WindowS: 300},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	// Scrape 1: all requests under 250 ms — no alert.
	snap := c.ScrapeTelemetryNow()
	if len(snap.Alerts) != 0 {
		t.Fatalf("fast traffic alerted: %+v", snap.Alerts)
	}

	// Scrape 2: 5 of the next 100 requests land in the 1s bucket —
	// 2.5% bad against a 1% budget. Fires.
	stub.set(func() any { return stubSnapshot(200, []uint64{170, 25, 5, 0}) })
	snap = c.ScrapeTelemetryNow()
	if len(snap.Alerts) != 1 || snap.Alerts[0].State != "firing" || snap.Alerts[0].SLO != "latency-p99" {
		t.Fatalf("expected one firing alert, got %+v", snap.Alerts)
	}

	// Scrapes 3..5: regression persists — still exactly one alert.
	for i := 0; i < 3; i++ {
		snap = c.ScrapeTelemetryNow()
	}
	if len(snap.Alerts) != 1 {
		t.Fatalf("alert re-fired: %+v", snap.Alerts)
	}
	if len(snap.SLOs) != 1 || !snap.SLOs[0].Firing {
		t.Fatalf("SLO status not firing: %+v", snap.SLOs)
	}
}

// TestClusterTelemetryBadSourceIsolated: a replica serving garbage (or
// an incompatible bucket layout) is reported in Sources and excluded
// without poisoning the healthy replicas' aggregate.
func TestClusterTelemetryBadSourceIsolated(t *testing.T) {
	good := &telemetryStub{}
	good.set(func() any { return stubSnapshot(50, []uint64{50, 0, 0, 0}) })
	bad := &telemetryStub{}
	bad.set(func() any { return `{"metrics": not-json` })

	c, err := New(Config{
		Replicas: []Replica{
			{Name: "good", BaseURL: "http://good", Transport: NewHandlerTransport(good.handler())},
			{Name: "zbad", BaseURL: "http://zbad", Transport: NewHandlerTransport(bad.handler())},
		},
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	snap := c.ScrapeTelemetryNow()
	var goodOK, badFailed bool
	for _, s := range snap.Sources {
		if s.Name == "good" && s.OK {
			goodOK = true
		}
		if s.Name == "zbad" && !s.OK && s.Error != "" {
			badFailed = true
		}
	}
	if !goodOK || !badFailed {
		t.Fatalf("sources %+v, want good OK and bad failed", snap.Sources)
	}
	if snap.RED.Requests != 50 {
		t.Fatalf("aggregate poisoned or lost: RED %+v", snap.RED)
	}

	// Mismatched bucket layout from the bad replica: same isolation.
	bad.set(func() any {
		return obs.TelemetrySnapshot{Metrics: []obs.Metric{
			{Name: "serve_latency_seconds", Type: "histogram", BucketLE: []float64{9}, Counts: []uint64{1, 0}, Count: 1},
		}}
	})
	snap = c.ScrapeTelemetryNow()
	for _, s := range snap.Sources {
		if s.Name == "zbad" && s.OK {
			t.Fatalf("incompatible layout accepted: %+v", snap.Sources)
		}
	}
	if snap.RED.Requests != 50 {
		t.Fatalf("aggregate perturbed by rejected source: %+v", snap.RED)
	}
}

// TestRouterDebugEndpointsAbsent pins the pprof opt-in contract on the
// router mux, mirroring serve's test.
func TestRouterDebugEndpointsAbsent(t *testing.T) {
	_, _, url := newEchoCluster(t, 1, nil)
	for _, p := range []string{"/debug/pprof/", "/debug/pprof/heap"} {
		resp, err := http.Get(url + p)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s on the router mux: %d, want 404", p, resp.StatusCode)
		}
	}
}
