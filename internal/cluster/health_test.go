package cluster

import (
	"fmt"
	"net/http"
	"testing"
	"time"
)

// TestCheckHealthNowAfterClose: once the cluster is closed, manual
// health sweeps are inert. Before probes were rooted in the cluster's
// base context, a post-Close sweep against a dead transport would
// record bogus failures and flip healthy replicas dead.
func TestCheckHealthNowAfterClose(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	tr := NewHandlerTransport(h)
	c, err := New(Config{
		Replicas: []Replica{{Name: "r0", BaseURL: "http://r0", Transport: tr}},
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	tr.Close() // probes would now fail, if any still ran
	for i := 0; i < 5; i++ {
		c.CheckHealthNow()
	}
	if st := c.Replicas()[0].State; st != "healthy" {
		t.Errorf("replica marked %q by post-Close sweeps, want healthy", st)
	}
}

// TestClusterCloseCancelsInflightProbe: Close must not wait out a
// probe stuck in a hung replica. The base-context cancellation reaches
// through the poll loop into the in-flight RoundTrip, so shutdown is
// prompt even with a generous HealthTimeout.
func TestClusterCloseCancelsInflightProbe(t *testing.T) {
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	hung := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	})
	c, err := New(Config{
		Replicas:       []Replica{{Name: "r0", BaseURL: "http://r0", Transport: NewHandlerTransport(hung)}},
		Seed:           11,
		HealthInterval: 2 * time.Millisecond,
		HealthTimeout:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let the poll loop wedge a probe inside the hung handler.
	time.Sleep(30 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		_ = c.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close blocked behind a hung health probe")
	}
}
