package cluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real calibration keys: system|geometry@scale|seed.
		keys[i] = fmt.Sprintf("CSP-%d|cylinder@%d|%d", i%5, i%7, i)
	}
	return keys
}

// TestRingDeterministicPlacement: two rings built with the same seed,
// members, and vnode count agree on every key — including after a
// remove/re-add churn cycle, which must leave placement identical to a
// fresh build (the property that lets routers restart stateless).
func TestRingDeterministicPlacement(t *testing.T) {
	members := []string{"r0", "r1", "r2", "r3"}
	a := NewRing(42, 128)
	b := NewRing(42, 128)
	for _, m := range members {
		a.Add(m)
		b.Add(m)
	}
	b.Remove("r2")
	b.Add("r2")

	for _, k := range testKeys(2000) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("placement diverged for %q: %q vs %q", k, ao, bo)
		}
	}

	// A different seed must not (in general) agree — guard against the
	// seed being silently ignored.
	c := NewRing(43, 128)
	for _, m := range members {
		c.Add(m)
	}
	same := 0
	keys := testKeys(2000)
	for _, k := range keys {
		if a.Owner(k) == c.Owner(k) {
			same++
		}
	}
	if same == len(keys) {
		t.Error("seed 42 and 43 rings agree on every key; seed is ignored")
	}
}

// TestRingBalance: with DefaultVnodes the max/min owned-key ratio over
// a large keyspace stays bounded.
func TestRingBalance(t *testing.T) {
	r := NewRing(1, DefaultVnodes)
	members := []string{"r0", "r1", "r2", "r3"}
	for _, m := range members {
		r.Add(m)
	}
	counts := make(map[string]int)
	for _, k := range testKeys(20000) {
		counts[r.Owner(k)]++
	}
	if len(counts) != len(members) {
		t.Fatalf("only %d of %d members own keys: %v", len(counts), len(members), counts)
	}
	min, max := 1<<62, 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if ratio := float64(max) / float64(min); ratio > 2.0 {
		t.Errorf("owned-key ratio %0.2f exceeds 2.0: %v", ratio, counts)
	}
}

// TestRingMinimalRemapping: adding a member moves keys only TO the new
// member; removing one moves only ITS keys. Everything else stays put —
// the consistent-hashing contract that makes failover cheap.
func TestRingMinimalRemapping(t *testing.T) {
	keys := testKeys(10000)
	r := NewRing(7, DefaultVnodes)
	for _, m := range []string{"r0", "r1", "r2", "r3"} {
		r.Add(m)
	}
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}

	r.Add("r4")
	moved := 0
	for _, k := range keys {
		now := r.Owner(k)
		if now != before[k] {
			moved++
			if now != "r4" {
				t.Fatalf("key %q moved %q -> %q on add of r4", k, before[k], now)
			}
		}
	}
	// Expect ~1/5 of keys to move; far more means vnode placement is
	// broken, zero means the new member owns nothing.
	if frac := float64(moved) / float64(len(keys)); frac == 0 || frac > 0.40 {
		t.Errorf("add remapped %0.3f of keys; want ~0.20", frac)
	}

	after := make(map[string]string, len(keys))
	for _, k := range keys {
		after[k] = r.Owner(k)
	}
	r.Remove("r1")
	for _, k := range keys {
		now := r.Owner(k)
		if after[k] == "r1" {
			if now == "r1" {
				t.Fatalf("key %q still owned by removed member", k)
			}
		} else if now != after[k] {
			t.Fatalf("key %q moved %q -> %q on remove of r1", k, after[k], now)
		}
	}
}

// TestRingSuccessors: the retry order starts at the owner, lists
// distinct members, and matches post-removal placement — advancing to
// the successor is exactly where the ring rebalances the key.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(3, DefaultVnodes)
	for _, m := range []string{"r0", "r1", "r2"} {
		r.Add(m)
	}
	for _, k := range testKeys(500) {
		succ := r.Successors(k, 2)
		if len(succ) != 2 {
			t.Fatalf("successors(%q): %v", k, succ)
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("successors[0] %q != owner %q", succ[0], r.Owner(k))
		}
		if succ[0] == succ[1] {
			t.Fatalf("successors not distinct: %v", succ)
		}
		r.Remove(succ[0])
		if got := r.Owner(k); got != succ[1] {
			t.Fatalf("after removing owner, key %q went to %q, want successor %q", k, got, succ[1])
		}
		r.Add(succ[0])
	}
}

// TestRingEmptyAndSingle: degenerate fleets behave.
func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(0, 8)
	if o := r.Owner("k"); o != "" {
		t.Errorf("empty ring owner %q", o)
	}
	if s := r.Successors("k", 2); s != nil {
		t.Errorf("empty ring successors %v", s)
	}
	r.Add("only")
	if o := r.Owner("k"); o != "only" {
		t.Errorf("single-member owner %q", o)
	}
	if s := r.Successors("k", 3); len(s) != 1 || s[0] != "only" {
		t.Errorf("single-member successors %v", s)
	}
}
