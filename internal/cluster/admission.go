package cluster

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// admission is the router's front door: a per-tenant token bucket
// (identity from the X-Tenant header, "default" when absent) plus a
// global in-flight cap. Both shed with 429 + jittered Retry-After
// rather than queueing — the same no-collapse contract internal/serve
// makes, applied before any replica spends work on the request.
//
// The clock is injectable so quota tests are deterministic.
type admission struct {
	rate     float64 // tokens per second per tenant; <= 0 disables quotas
	burst    float64
	inflight chan struct{} // nil disables the cap
	now      func() time.Time
	reg      *obs.Registry

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newAdmission(rate, burst float64, maxInflight int, reg *obs.Registry) *admission {
	if burst <= 0 {
		burst = 1
	}
	a := &admission{
		rate:    rate,
		burst:   burst,
		now:     time.Now,
		reg:     reg,
		buckets: make(map[string]*tokenBucket),
	}
	if maxInflight > 0 {
		a.inflight = make(chan struct{}, maxInflight)
	}
	return a
}

// admitTenant spends one token from the tenant's bucket, reporting
// whether the request may proceed. Buckets refill continuously at rate
// up to burst; a new tenant starts full.
func (a *admission) admitTenant(tenant string) bool {
	if a.rate <= 0 {
		return true
	}
	if tenant == "" {
		tenant = "default"
	}
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b, ok := a.buckets[tenant]
	if !ok {
		b = &tokenBucket{tokens: a.burst, last: now}
		a.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * a.rate
		if b.tokens > a.burst {
			b.tokens = a.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		a.reg.Counter("cluster_admission_denied_total", obs.L("reason", "quota")).Inc()
		return false
	}
	b.tokens--
	return true
}

// acquire takes an in-flight slot without blocking; release undoes it.
// A nil limiter always admits.
func (a *admission) acquire() bool {
	if a.inflight == nil {
		return true
	}
	select {
	case a.inflight <- struct{}{}:
		return true
	default:
		a.reg.Counter("cluster_admission_denied_total", obs.L("reason", "inflight")).Inc()
		return false
	}
}

func (a *admission) release() {
	if a.inflight != nil {
		<-a.inflight
	}
}

// retryJitter deals deterministic Retry-After values in [1, spreadS]
// seconds from a seeded SplitMix64 stream. Seeding it per router (and
// per serve.Server, which has its own copy of this idea) decorrelates
// fleets of clients that would otherwise all sleep exactly 1s and
// stampede back in lockstep.
type retryJitter struct {
	spread uint64
	mu     sync.Mutex
	state  uint64
}

func newRetryJitter(seed int64, spreadS int) *retryJitter {
	if spreadS < 1 {
		spreadS = 3
	}
	return &retryJitter{spread: uint64(spreadS), state: uint64(seed)}
}

// next returns the following backoff in whole seconds, 1..spread.
func (j *retryJitter) next() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	// SplitMix64 step: well-distributed, cheap, and reproducible.
	j.state += 0x9e3779b97f4a7c15
	z := j.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z%j.spread) + 1
}
