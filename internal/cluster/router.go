package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/perfmodel"
)

// Router is the cluster's HTTP front end. It owns no model state: every
// planning request is admitted (per-tenant token bucket, global
// in-flight cap), assigned a shard key, and forwarded to the replica
// the ring places that key on. Replica-level flow control passes
// through untouched — a 429 shed or 503 drain from a replica reaches
// the client exactly as the replica wrote it — while transport-level
// failures (dead process, closed listener) are retried exactly once on
// the key's ring successor, the same replica the ring converges to once
// health marks the owner dead.
type Router struct {
	cfg       Config
	ring      *Ring
	set       *replicaSet
	admit     *admission
	jitter    *retryJitter
	health    *healthChecker
	telemetry *telemetryAggregator

	reg       *obs.Registry
	tracer    *obs.Tracer
	startWall time.Time
	mux       *http.ServeMux
}

func newRouter(cfg Config, ring *Ring, set *replicaSet, health *healthChecker, telemetry *telemetryAggregator, reg *obs.Registry, tracer *obs.Tracer) *Router {
	rt := &Router{
		cfg:       cfg,
		ring:      ring,
		set:       set,
		admit:     newAdmission(cfg.TenantRate, cfg.TenantBurst, cfg.MaxInflight, reg),
		jitter:    newRetryJitter(cfg.Seed, cfg.RetryAfterSpreadS),
		health:    health,
		telemetry: telemetry,
		reg:       reg,
		tracer:    tracer,
		startWall: time.Now(),
		mux:       http.NewServeMux(),
	}
	rt.mux.HandleFunc("GET /v1/healthz", rt.instrument("/v1/healthz", rt.handleHealthz))
	rt.mux.HandleFunc("GET /v1/metrics", rt.instrument("/v1/metrics", rt.handleMetrics))
	rt.mux.HandleFunc("GET /v1/cluster", rt.instrument("/v1/cluster", rt.handleTopology))
	rt.mux.HandleFunc("GET /v1/cluster/telemetry", rt.instrument("/v1/cluster/telemetry", rt.handleTelemetry))
	rt.mux.HandleFunc("POST /v1/cluster/drain", rt.instrument("/v1/cluster/drain", rt.handleDrain))
	rt.mux.HandleFunc("POST /v1/predict", rt.instrument("/v1/predict", rt.planning("/v1/predict")))
	rt.mux.HandleFunc("POST /v1/plan", rt.instrument("/v1/plan", rt.planning("/v1/plan")))
	rt.mux.HandleFunc("POST /v1/campaigns", rt.instrument("/v1/campaigns", rt.handleCampaignSubmit))
	rt.mux.HandleFunc("GET /v1/campaigns/{id}", rt.instrument("/v1/campaigns/status", rt.handleCampaignStatus))
	return rt
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// simNow is the router's span timeline: seconds of router uptime.
func (rt *Router) simNow() float64 { return time.Since(rt.startWall).Seconds() }

// instrument wraps every route with a span and the request/latency
// metric families, mirroring serve's middleware so cluster traces and
// replica traces read the same way.
func (rt *Router) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		sp := rt.startSpan(r, "router "+endpoint)
		if tid := sp.TraceID(); !tid.IsZero() {
			sw.Header().Set("X-Trace-Id", tid.String())
		}
		r = r.WithContext(obs.ContextWithSpan(r.Context(), sp))
		defer func() {
			code := sw.code
			if code == 0 {
				code = http.StatusOK
			}
			sp.SetAttr("code", strconv.Itoa(code))
			sp.End(rt.simNow())
			rt.reg.Counter("cluster_requests_total",
				obs.L("endpoint", endpoint), obs.L("code", strconv.Itoa(code))).Inc()
			rt.reg.Histogram("cluster_latency_seconds", routerLatencyBuckets,
				obs.L("endpoint", endpoint)).Observe(time.Since(start).Seconds())
		}()
		h(sw, r)
	}
}

var routerLatencyBuckets = obs.ExpBuckets(50e-6, 2, 25)

// startSpan opens the request's router span, honoring an incoming
// traceparent header (a client or upstream proxy propagating context)
// and falling back to a fresh root otherwise — malformed headers
// included, so junk from the network can't break a request.
func (rt *Router) startSpan(r *http.Request, name string) *obs.Span {
	if v := r.Header.Get(obs.TraceParentHeader); v != "" {
		if tp, err := obs.ParseTraceParent(v); err == nil {
			return rt.tracer.StartRemote(tp, name, rt.simNow())
		}
	}
	return rt.tracer.Start(name, rt.simNow())
}

// statusWriter records the response code for metrics and span attrs.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (rt *Router) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return // headers gone; the instrumented status already recorded
	}
}

func (rt *Router) writeError(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(rt.jitter.next()))
	}
	rt.writeJSON(w, status, ErrorResponse{Error: msg})
}

// shardProbe is the lenient view of a planning request body: just the
// fields that form the calibration identity. Lenient on purpose — the
// replica owns validation; the router only needs a stable key.
type shardProbe struct {
	Workload struct {
		Geometry string  `json:"geometry"`
		Scale    float64 `json:"scale"`
	} `json:"workload"`
	Systems []string `json:"systems"`
	Seed    int64    `json:"seed"`
	Tier    string   `json:"tier"`
}

// shardKey derives the routing key from a planning request body. For a
// single-system request it mirrors serve's calibration cache key
// "system|geometry@scale|seed|tier" exactly (an omitted tier normalizes
// to the calibrated default, as serve does), so each replica's LRU owns
// a disjoint key range. Multi-system (or whole-catalog) requests
// collapse the system part to "*": the workload's catalog-wide
// calibration set lands on one replica together, which is what lets its
// plan handler reuse them across the sweep. Undecodable bodies hash as
// raw bytes — any replica can answer 400.
func (rt *Router) shardKey(body []byte) string {
	var p shardProbe
	if err := json.Unmarshal(body, &p); err != nil || p.Workload.Geometry == "" {
		return string(body)
	}
	system := "*"
	if len(p.Systems) == 1 {
		system = p.Systems[0]
	}
	seed := p.Seed
	if seed == 0 {
		seed = rt.cfg.DefaultSeed
	}
	tier := p.Tier
	if tier == "" {
		tier = perfmodel.Tier1Calibrated
	}
	return fmt.Sprintf("%s|%s@%g|%d|%s", system, p.Workload.Geometry, p.Workload.Scale, seed, tier)
}

// planning returns the sharded forwarding handler for one planning
// endpoint: admit, derive the shard key, forward to the owner with one
// ring-successor retry.
func (rt *Router) planning(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !rt.admitPlanning(w, r) {
			return
		}
		defer rt.admit.release()
		body, ok := rt.readBody(w, r)
		if !ok {
			return
		}
		rt.forwardSharded(w, r, path, rt.shardKey(body), body)
	}
}

// admitPlanning runs admission control; on a shed it writes the 429 and
// reports false. The in-flight slot is held on true returns.
func (rt *Router) admitPlanning(w http.ResponseWriter, r *http.Request) bool {
	if !rt.admit.admitTenant(r.Header.Get("X-Tenant")) {
		rt.writeError(w, http.StatusTooManyRequests, "tenant quota exhausted; retry after backoff")
		return false
	}
	if !rt.admit.acquire() {
		rt.writeError(w, http.StatusTooManyRequests, "router saturated; retry after backoff")
		return false
	}
	return true
}

// readBody slurps the request body under the configured cap so it can
// be probed for a shard key and re-sent on retry.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.cfg.MaxBodyBytes+1))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return nil, false
	}
	if int64(len(body)) > rt.cfg.MaxBodyBytes {
		rt.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", rt.cfg.MaxBodyBytes))
		return nil, false
	}
	return body, true
}

// forwardSharded sends the request to the shard key's owner; a
// transport-level failure advances once around the ring to the key's
// successor. HTTP-level responses — including 429 shed and 503 drain —
// are never retried: replica flow control must reach the client.
func (rt *Router) forwardSharded(w http.ResponseWriter, r *http.Request, path, key string, body []byte) {
	targets := rt.ring.Successors(key, 2)
	if len(targets) == 0 {
		rt.writeError(w, http.StatusServiceUnavailable, "no healthy replicas in ring")
		return
	}
	for i, name := range targets {
		resp, err := rt.forwardOnce(r, name, path, r.URL.RawQuery, body)
		if err == nil {
			rt.relay(w, resp, name)
			return
		}
		rt.set.reportFailure(name, rt.cfg.HealthFailures)
		if i == 0 && len(targets) > 1 {
			rt.reg.Counter("cluster_retry_total", obs.L("endpoint", path)).Inc()
			continue
		}
		rt.writeError(w, http.StatusBadGateway,
			fmt.Sprintf("replica %s unreachable: %v", name, err))
		return
	}
}

// forwardOnce issues the upstream request to one replica, under a span.
func (rt *Router) forwardOnce(r *http.Request, name, path, rawQuery string, body []byte) (*http.Response, error) {
	rep, ok := rt.set.get(name)
	if !ok {
		return nil, fmt.Errorf("replica %q not configured", name)
	}
	// The forward span hangs under the request's router span (stashed
	// in the context by instrument), so the replica's handler span —
	// parented on this one via the injected traceparent — completes the
	// router → forward → handler chain in the stitched trace.
	sp := rt.tracer.StartChild(obs.SpanFromContext(r.Context()), "forward "+name, rt.simNow())
	sp.SetAttr("replica", name)
	sp.SetAttr("path", path)
	defer sp.End(rt.simNow())

	url := rep.BaseURL + path
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, reader)
	if err != nil {
		return nil, err
	}
	copyForwardHeaders(req.Header, r.Header)
	if tp := sp.TraceParent(); tp.Valid() {
		req.Header.Set(obs.TraceParentHeader, tp.String())
	}
	resp, err := rep.Transport.RoundTrip(req)
	code := "error"
	if err == nil {
		code = strconv.Itoa(resp.StatusCode)
	}
	sp.SetAttr("code", code)
	rt.reg.Counter("cluster_forward_total", obs.L("replica", name), obs.L("code", code)).Inc()
	return resp, err
}

// copyForwardHeaders propagates the handful of headers that matter
// upstream; hop-by-hop headers stay at the router.
func copyForwardHeaders(dst, src http.Header) {
	for _, k := range []string{"Content-Type", "Accept", "X-Tenant", "X-Request-Id"} {
		if v := src.Get(k); v != "" {
			dst.Set(k, v)
		}
	}
}

// relay copies a replica response to the client verbatim, adding the
// serving replica's name so clients and benchmarks can attribute work.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, replica string) {
	for k, vs := range resp.Header {
		if k == "X-Trace-Id" {
			// The router already stamped the trace ID (the same one the
			// replica echoes — context propagated); Add would duplicate.
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Replica", replica)
	w.WriteHeader(resp.StatusCode)
	_, copyErr := io.Copy(w, resp.Body)
	cerr := resp.Body.Close()
	if copyErr != nil || cerr != nil {
		// Client disconnect or upstream truncation mid-relay: the status
		// line is already written, so there is nothing left to signal.
		return
	}
}

// handleCampaignSubmit routes an async campaign submission. Campaigns
// are not calibration-key work, so placement hashes the raw config —
// deterministic, and spread across the fleet. The accepted ID is
// rewritten to "replica.id" so status polls route back to the replica
// that owns the record.
func (rt *Router) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) {
	if !rt.admitPlanning(w, r) {
		return
	}
	defer rt.admit.release()
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	key := "campaign|" + string(body)
	targets := rt.ring.Successors(key, 2)
	if len(targets) == 0 {
		rt.writeError(w, http.StatusServiceUnavailable, "no healthy replicas in ring")
		return
	}
	for i, name := range targets {
		resp, err := rt.forwardOnce(r, name, "/v1/campaigns", "", body)
		if err != nil {
			rt.set.reportFailure(name, rt.cfg.HealthFailures)
			if i == 0 && len(targets) > 1 {
				rt.reg.Counter("cluster_retry_total", obs.L("endpoint", "/v1/campaigns")).Inc()
				continue
			}
			rt.writeError(w, http.StatusBadGateway,
				fmt.Sprintf("replica %s unreachable: %v", name, err))
			return
		}
		rt.relayCampaignAck(w, resp, name)
		return
	}
}

// relayCampaignAck rewrites a 202 ack's ID to carry the owning replica;
// every other status relays verbatim.
func (rt *Router) relayCampaignAck(w http.ResponseWriter, resp *http.Response, replica string) {
	if resp.StatusCode != http.StatusAccepted {
		rt.relay(w, resp, replica)
		return
	}
	var ack struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}
	err := json.NewDecoder(resp.Body).Decode(&ack)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		rt.writeError(w, http.StatusBadGateway, "malformed ack from replica "+replica)
		return
	}
	id := replica + "." + ack.ID
	w.Header().Set("X-Replica", replica)
	rt.writeJSON(w, http.StatusAccepted, map[string]string{
		"id":  id,
		"url": "/v1/campaigns/" + id,
	})
}

// handleCampaignStatus routes "replica.id" status polls back to the
// owning replica — including draining replicas, which by design keep
// answering for work they already accepted. No ring, no retry: only the
// owner holds the record.
func (rt *Router) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	name, localID, ok := strings.Cut(id, ".")
	if !ok {
		rt.writeError(w, http.StatusNotFound,
			fmt.Sprintf("campaign %q not found (cluster IDs are replica.id)", id))
		return
	}
	if _, exists := rt.set.get(name); !exists {
		rt.writeError(w, http.StatusNotFound, fmt.Sprintf("campaign %q names unknown replica %q", id, name))
		return
	}
	resp, err := rt.forwardOnce(r, name, "/v1/campaigns/"+localID, "", nil)
	if err != nil {
		rt.set.reportFailure(name, rt.cfg.HealthFailures)
		rt.writeError(w, http.StatusBadGateway,
			fmt.Sprintf("replica %s unreachable: %v", name, err))
		return
	}
	rt.relay(w, resp, name)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	reps := rt.set.snapshot()
	healthy := 0
	for _, rep := range reps {
		if rep.State == StateHealthy.String() {
			healthy++
		}
	}
	status := "ok"
	code := http.StatusOK
	if healthy == 0 {
		status = "degraded"
		code = http.StatusServiceUnavailable
	}
	rt.writeJSON(w, code, RouterHealthResponse{
		Status: status, Healthy: healthy, Total: len(reps), Replicas: reps,
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := rt.reg.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		rt.writeJSON(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := obs.WriteMetricsText(w, snap); err != nil {
		return // mid-stream failure; status line already written
	}
}

// handleTelemetry serves the fleet-wide aggregated telemetry view.
// With no background scrape loop running (or ?refresh=1) it scrapes
// on demand, so the endpoint always answers with live data; otherwise
// it returns the loop's last published aggregate. ?format=prom
// renders the merged metrics as a Prometheus text exposition page.
func (rt *Router) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	snap := rt.telemetry.Last()
	if snap == nil || r.URL.Query().Get("refresh") == "1" {
		snap = rt.telemetry.scrape(r.Context())
	}
	if snap == nil {
		rt.writeError(w, http.StatusServiceUnavailable, "telemetry aggregation unavailable")
		return
	}
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := obs.WriteMetricsText(w, snap.Metrics); err != nil {
			return // mid-stream failure; status line already written
		}
		return
	}
	rt.writeJSON(w, http.StatusOK, snap)
}

// handleTopology reports membership plus each member's share of a
// sampled keyspace, so balance is observable without a benchmark.
func (rt *Router) handleTopology(w http.ResponseWriter, r *http.Request) {
	const samples = 4096
	share := make(map[string]float64)
	if rt.ring.Len() > 0 {
		for i := 0; i < samples; i++ {
			share[rt.ring.Owner(fmt.Sprintf("sample-key-%d", i))]++
		}
		for k := range share {
			share[k] /= samples
		}
	}
	rt.writeJSON(w, http.StatusOK, TopologyResponse{
		Replicas:    rt.set.snapshot(),
		RingMembers: rt.ring.Members(),
		Vnodes:      rt.cfg.VirtualNodes,
		Seed:        rt.cfg.Seed,
		KeyShare:    share,
	})
}

// handleDrain transitions ?replica=<name> into (or with ?undrain=1 out
// of) the draining state: its arcs rebalance away immediately while it
// keeps serving what it owns.
func (rt *Router) handleDrain(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("replica")
	if name == "" {
		rt.writeError(w, http.StatusBadRequest, "replica query parameter is required")
		return
	}
	to := StateDraining
	if r.URL.Query().Get("undrain") == "1" {
		to = StateHealthy
	}
	if !rt.set.setState(name, to) {
		rt.writeError(w, http.StatusNotFound, fmt.Sprintf("replica %q not configured", name))
		return
	}
	rt.writeJSON(w, http.StatusOK, DrainResponse{Replica: name, State: to.String()})
}
