// Package cluster is the horizontal-scaling layer above internal/serve:
// it runs N planning-service replicas behind a router that shards
// requests by calibration cache key over a consistent-hash ring.
//
// The economics mirror the serving layer's: a calibration costs seconds
// while a cache-warm prediction costs microseconds, so the scarce
// resource in a fleet is warm cache entries. The cache key
// (system, workload, seed) is a pure deterministic identity — two
// replicas that both calibrate it produce byte-identical state — which
// makes it an ideal shard key: routing each key to exactly one replica
// turns N replicas into N *disjoint* warm caches (fleet capacity
// N × entries) instead of N copies of the same one (capacity: entries).
//
// The subsystem has three parts: Ring (this file) places keys on
// replicas with minimal movement as membership changes; replicaSet +
// health checking (replica.go) tracks which replicas are alive,
// draining, or dead; Router (router.go) is the HTTP front end that
// extracts shard keys, applies per-tenant admission control, forwards,
// and retries exactly once around the ring when a replica fails.
package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring with virtual nodes. Each member owns
// the arcs preceding its virtual points, so keys spread evenly (more
// vnodes = tighter balance) and membership changes move only the arcs
// adjacent to the added or removed member's points — every other key
// keeps its owner.
//
// Placement is a pure function of (seed, members, vnodes): FNV-64a over
// a seed prefix plus the member or key bytes, with no map iteration or
// wall-clock anywhere, so two routers configured identically agree on
// every key's owner without coordination.
type Ring struct {
	mu     sync.RWMutex
	seed   int64
	vnodes int
	points []ringPoint // sorted ascending by hash
	member map[string]bool
}

type ringPoint struct {
	hash   uint64
	member string
}

// DefaultVnodes is the virtual-node count per member when a Ring is
// built with vnodes <= 0. 128 keeps the max/min owned-arc ratio small
// (empirically < 1.5 for small fleets) at negligible lookup cost.
const DefaultVnodes = 128

// NewRing builds an empty ring. The seed perturbs every hash, so
// distinct deployments can decorrelate their placements while any two
// rings sharing a seed agree exactly.
func NewRing(seed int64, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{seed: seed, vnodes: vnodes, member: make(map[string]bool)}
}

// hash64 is the ring's placement hash: FNV-64a over the 8-byte seed
// followed by s, finished with a SplitMix64 mix. FNV alone is stable
// but avalanches poorly on near-identical strings ("r0#1" vs "r0#2"),
// which clusters virtual points and skews arc ownership ~5×; the
// finalizer scrambles the low-entropy tail. Both pieces are fixed
// algorithms, so placement stays reproducible across processes and Go
// versions.
//
//lint:hot
func hash64(seed int64, s string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:]) // hash.Hash Write never errors
	h.Write([]byte(s))
	z := h.Sum64()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Add inserts a member's virtual points. Adding an existing member is a
// no-op, so health-driven re-adds are idempotent.
func (r *Ring) Add(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.member[name] {
		return
	}
	r.member[name] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash:   hash64(r.seed, fmt.Sprintf("%s#%d", name, i)),
			member: name,
		})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove deletes a member's virtual points; its arcs fall to the next
// points clockwise, leaving every other key's owner untouched.
func (r *Ring) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.member[name] {
		return
	}
	delete(r.member, name)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != name {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the current membership, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.member))
	for m := range r.member {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len reports the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.member)
}

// Owner returns the member owning key: the first virtual point at or
// clockwise past the key's hash. Empty string on an empty ring.
//
//lint:hot
func (r *Ring) Owner(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].member
}

// Successors returns up to n distinct members in clockwise order
// starting at key's owner — the retry order when the owner fails:
// advancing to the next distinct member is exactly the placement the
// ring converges to once the failed member is removed.
//
//lint:hot
func (r *Ring) Successors(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.member) {
		n = len(r.member)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.search(key); i < len(r.points) && len(out) < n; i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// search finds the index of the first point with hash >= key's hash,
// wrapping to 0. Caller holds a lock.
//
//lint:hot
func (r *Ring) search(key string) int {
	h := hash64(r.seed, key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
